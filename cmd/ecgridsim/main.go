// Command ecgridsim runs one MANET simulation and prints its results.
//
// Usage:
//
//	ecgridsim -protocol ecgrid -hosts 100 -speed 1 -pause 0 \
//	          -flows 10 -rate 1 -duration 590 -seed 1
//
// The defaults reproduce the paper's common setup: a 1000×1000 m region,
// 2 Mbps radio with 250 m range, 100 m grid, 500 J per host, and a
// 10 pkt/s aggregate CBR load.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ecgrid/internal/faults"
	"ecgrid/internal/prof"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/trace"
)

func main() {
	var (
		protocol = flag.String("protocol", "ecgrid", "protocol under test: ecgrid, grid, gaf, span, or aodv")
		hosts    = flag.Int("hosts", 100, "number of energy-limited hosts")
		speed    = flag.Float64("speed", 1, "random-waypoint top speed (m/s)")
		mobility = flag.String("mobility", "waypoint", "mobility model: waypoint or direction")
		pause    = flag.Float64("pause", 0, "random-waypoint pause time (s)")
		flows    = flag.Int("flows", 10, "number of CBR flows")
		rate     = flag.Float64("rate", 1, "packets per second per flow")
		duration = flag.Float64("duration", 590, "simulated seconds")
		energyJ  = flag.Float64("energy", 500, "initial battery per host (J)")
		seed     = flag.Int64("seed", 1, "random seed (runs are reproducible per seed)")
		verbose  = flag.Bool("v", false, "print protocol and radio counters")
		traceN   = flag.Int("trace", 0, "print the last N on-air events")
		confPath = flag.String("config", "", "load the scenario from a JSON file (other flags are ignored)")
		scenRef  = flag.String("scenario", "",
			"load a generated scenario: a JSON file path or a scenarios/<name> library entry (other flags are ignored)")
		savePath = flag.String("save", "", "write the resulting scenario to a JSON file and exit")
		faultArg = flag.String("faults", "",
			"inject faults: a preset ("+strings.Join(faults.PresetNames(), ", ")+") or a plan JSON file")
		shards = flag.Int("shards", 0,
			"run the spatially-sharded parallel engine with this many strips (results are byte-identical for every value; 0 or 1 run the serial reference)")
		noRxCache = flag.Bool("norxcache", false,
			"disable the receiver-plane cache and run the uncached reference scan (results are byte-identical either way)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	cfg := scenario.Default(scenario.ProtocolKind(*protocol))
	cfg.Hosts = *hosts
	cfg.MaxSpeedMS = *speed
	cfg.Mobility = *mobility
	cfg.PauseTime = *pause
	cfg.Flows = *flows
	cfg.RatePerFlow = *rate
	cfg.Duration = *duration
	cfg.InitialEnergyJ = *energyJ
	cfg.Seed = *seed
	if *confPath != "" {
		loaded, err := scenario.Load(*confPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = loaded
	}
	if *scenRef != "" {
		loaded, err := scenario.ResolveRef(*scenRef)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = loaded
	}
	if *faultArg != "" {
		plan, err := faults.Resolve(*faultArg, cfg.Hosts, cfg.AreaSize, cfg.Duration)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	if *shards != 0 {
		// Applied after -config/-scenario so the flag overrides a loaded
		// file; Validate below rejects negative or grid-exceeding counts.
		cfg.Shards = *shards
	}
	if *noRxCache {
		cfg.Radio.NoRxCache = true
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *savePath != "" {
		if err := cfg.Save(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *savePath)
		return
	}
	var rec *trace.Recorder
	if *traceN > 0 {
		rec = trace.NewRecorder(*traceN)
		cfg.Trace = rec
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	// A run is one uninterruptible call, so profiles on ^C need a
	// handler of their own.
	prof.StopOnInterrupt(stopProf)

	r := runner.Run(cfg)

	fmt.Printf("scenario        %v\n", cfg)
	fmt.Printf("packets         sent=%d delivered=%d duplicates=%d\n", r.Sent, r.Delivered, r.Duplicates)
	fmt.Printf("delivery rate   %.4f\n", r.DeliveryRate)
	fmt.Printf("latency         mean=%.2f ms  p50=%.2f ms  p99=%.2f ms  max=%.2f ms\n",
		r.MeanLatency*1000, r.Collector.LatencyPercentile(0.5)*1000,
		r.Collector.LatencyPercentile(0.99)*1000, r.MaxLatency*1000)
	first := "none"
	if r.FirstDeathAt >= 0 {
		first = fmt.Sprintf("%.1f s", r.FirstDeathAt)
	}
	fmt.Printf("hosts           deaths=%d first=%s alive-at-end=%.2f\n", r.Deaths, first, r.LastAlive)
	fmt.Printf("energy          aen(end)=%.3f of initial charge\n", r.Collector.Aen.Last())
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		fmt.Printf("faults          gw-crashes=%d reelections=%d reelect-latency=%s repair-time=%s\n",
			r.GatewayCrashes, r.Reelections,
			faultSeconds(r.MeanReelectionLatency), faultSeconds(r.MeanRouteRepairTime))
		fmt.Printf("fault delivery  in-window=%s out-window=%s (jammed=%d pages-dropped=%d)\n",
			faultRate(r.InFaultDeliveryRate), faultRate(r.OutFaultDeliveryRate),
			r.Radio.Jammed, r.PagesDropped)
	}

	if *verbose {
		fmt.Printf("\nradio           %+v\n", r.Radio)
		fmt.Println("protocol counters:")
		keys := make([]string, 0, len(r.Protocol))
		for k := range r.Protocol {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-12s %d\n", k, r.Protocol[k])
		}
	}

	if rec != nil {
		fmt.Printf("\nlast %d on-air events (%s):\n", rec.Len(), rec.Summarize())
		if err := trace.Write(os.Stdout, rec.Entries()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			stopProf() // os.Exit skips the defer
			os.Exit(1)
		}
	}
}

// faultSeconds formats a recovery time, where -1 means "never measured".
func faultSeconds(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fs", v)
}

// faultRate formats a delivery rate, where -1 means "no such traffic".
func faultRate(v float64) string {
	if v < 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}
