// Command sweep runs a parameter sweep over one scenario dimension and
// prints a CSV row per run: protocol, the swept value, delivery rate,
// mean latency, first death, final alive fraction, and aen.
//
// Usage:
//
//	sweep -param hosts -values 50,100,150,200 -protocols grid,ecgrid
//	sweep -param pause -values 0,100,200,300,400,500,600
//	sweep -param speed -values 1,2,5,10 -duration 590
//	sweep -param seed  -values 1,2,3,4,5 -protocols ecgrid
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

func main() {
	var (
		param     = flag.String("param", "hosts", "dimension to sweep: hosts, pause, speed, rate, flows, energy, seed")
		values    = flag.String("values", "50,100,150,200", "comma-separated values")
		protocols = flag.String("protocols", "grid,ecgrid,gaf", "comma-separated protocols")
		duration  = flag.Float64("duration", 590, "simulated seconds per run")
		seed      = flag.Int64("seed", 1, "base random seed")
	)
	flag.Parse()

	var vals []float64
	for _, v := range strings.Split(*values, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", v, err)
			os.Exit(2)
		}
		vals = append(vals, f)
	}

	fmt.Printf("protocol,%s,delivery_rate,mean_latency_ms,first_death_s,alive_end,aen_end\n", *param)
	for _, p := range strings.Split(*protocols, ",") {
		proto := scenario.ProtocolKind(strings.TrimSpace(p))
		for _, v := range vals {
			cfg := scenario.Default(proto)
			cfg.Duration = *duration
			cfg.Seed = *seed
			switch *param {
			case "hosts":
				cfg.Hosts = int(v)
			case "pause":
				cfg.PauseTime = v
			case "speed":
				cfg.MaxSpeedMS = v
			case "rate":
				cfg.RatePerFlow = v
			case "flows":
				cfg.Flows = int(v)
			case "energy":
				cfg.InitialEnergyJ = v
			case "seed":
				cfg.Seed = int64(v)
			default:
				fmt.Fprintf(os.Stderr, "unknown param %q\n", *param)
				os.Exit(2)
			}
			if err := cfg.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			r := runner.Run(cfg)
			fmt.Printf("%s,%g,%.4f,%.3f,%.1f,%.3f,%.4f\n",
				proto, v, r.DeliveryRate, r.MeanLatency*1000, r.FirstDeathAt, r.LastAlive, r.Collector.Aen.Last())
		}
	}
}
