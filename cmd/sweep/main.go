// Command sweep runs a parameter sweep over one scenario dimension and
// prints a CSV row per run: protocol, the swept value, delivery rate,
// mean latency, first death, final alive fraction, and aen.
//
// Runs fan out across a worker pool (-parallel; every worker count
// reproduces the serial results exactly), and -out records a JSONL
// manifest as runs complete so an interrupted sweep restarts where it
// left off with -resume.
//
// -shards runs each simulation on the spatially-sharded parallel
// engine; results stay byte-identical for every shard count. -parallel
// and -shards compose through a shared process-wide worker budget of
// GOMAXPROCS slots: each concurrent run holds one slot and its shard
// pool takes helpers only from what is left, so requesting
// `-parallel 8 -shards 4` on an 8-core machine runs 8 concurrent jobs
// whose shard phases execute serially (results unchanged) rather than
// 32 goroutines fighting for 8 cores. Prefer -parallel for many small
// runs and -shards for a few large ones.
//
// Usage:
//
//	sweep -param hosts -values 50,100,150,200 -protocols grid,ecgrid
//	sweep -param pause -values 0,100,200,300,400,500,600
//	sweep -param speed -values 1,2,5,10 -duration 590
//	sweep -param seed  -values 1,2,3,4,5 -protocols ecgrid
//	sweep -param hosts -values 50,100,150,200 -out sweep.jsonl -parallel 8
//	sweep -param hosts -values 50,100,150,200 -out sweep.jsonl -resume
//	sweep -scenario dense-manhattan-10k -param seed -values 1 -store results/
//
// -scenario bases every run on a generated scenario from the
// scenarios/ library (or any scenario JSON file); flags not explicitly
// passed keep the file's values, and the swept parameter still applies.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"ecgrid/internal/batch"
	"ecgrid/internal/faults"
	"ecgrid/internal/prof"
	"ecgrid/internal/scenario"
	"ecgrid/internal/store"
)

func main() {
	var (
		param     = flag.String("param", "hosts", "dimension to sweep: hosts, pause, speed, rate, flows, energy, seed")
		values    = flag.String("values", "50,100,150,200", "comma-separated values")
		protocols = flag.String("protocols", "grid,ecgrid,gaf", "comma-separated protocols")
		duration  = flag.Float64("duration", 590, "simulated seconds per run")
		seed      = flag.Int64("seed", 1, "base random seed")
		parallel  = flag.Int("parallel", 0, "concurrent runs; 0 uses all cores, 1 runs serially")
		out       = flag.String("out", "", "append a JSONL manifest of completed runs to this file")
		resume    = flag.Bool("resume", false, "skip runs already recorded in the -out manifest")
		storeDir  = flag.String("store", "", "content-addressed result store directory shared with simd; cached runs are skipped")
		scenRef   = flag.String("scenario", "",
			"base every run on a generated scenario: a JSON file path or a scenarios/<name> library entry")
		shards = flag.Int("shards", 0,
			"run every simulation on the sharded parallel engine with this many strips (byte-identical results; shares a GOMAXPROCS worker budget with -parallel)")
		noRxCache = flag.Bool("norxcache", false,
			"disable the receiver-plane cache in every run (uncached reference scan; byte-identical results)")
		retries  = flag.Int("retries", 0, "extra attempts for a failed run")
		faultArg = flag.String("faults", "",
			"inject a fault plan into every run: a preset ("+strings.Join(faults.PresetNames(), ", ")+") or a plan JSON file")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	// Validate the full request up front: an unknown protocol or value
	// must exit(2) immediately, not panic halfway through a sweep.
	//
	// With -scenario the loaded config is the per-job base instead of
	// scenario.Default, and flags the user did not explicitly pass keep
	// the file's values (flag.Visit distinguishes "default" from "typed
	// the default"). The swept parameter always applies.
	var base *scenario.Config
	if *scenRef != "" {
		loaded, err := scenario.ResolveRef(*scenRef)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		base = &loaded
	}
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	var protos []scenario.ProtocolKind
	if base != nil && !explicit["protocols"] {
		protos = []scenario.ProtocolKind{base.Protocol}
	} else {
		for _, p := range strings.Split(*protocols, ",") {
			proto, err := scenario.ParseProtocol(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			protos = append(protos, proto)
		}
	}
	var vals []float64
	for _, v := range strings.Split(*values, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", v, err)
			os.Exit(2)
		}
		vals = append(vals, f)
	}
	var jobs []batch.Job
	for _, proto := range protos {
		for _, v := range vals {
			cfg := scenario.Default(proto)
			if base != nil {
				cfg = *base
				cfg.Protocol = proto
			}
			if base == nil || explicit["duration"] {
				cfg.Duration = *duration
			}
			if base == nil || explicit["seed"] {
				cfg.Seed = *seed
			}
			switch *param {
			case "hosts":
				cfg.Hosts = int(v)
			case "pause":
				cfg.PauseTime = v
			case "speed":
				cfg.MaxSpeedMS = v
			case "rate":
				cfg.RatePerFlow = v
			case "flows":
				cfg.Flows = int(v)
			case "energy":
				cfg.InitialEnergyJ = v
			case "seed":
				cfg.Seed = int64(v)
			default:
				fmt.Fprintf(os.Stderr, "unknown param %q\n", *param)
				os.Exit(2)
			}
			if *shards != 0 {
				cfg.Shards = *shards
			}
			if *noRxCache {
				cfg.Radio.NoRxCache = true
			}
			if *faultArg != "" {
				// Resolved per job: presets scale with the job's host
				// count, area, and duration.
				plan, err := faults.Resolve(*faultArg, cfg.Hosts, cfg.AreaSize, cfg.Duration)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(2)
				}
				cfg.Faults = plan
			}
			if err := cfg.Validate(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			jobs = append(jobs, batch.Job{Tag: fmt.Sprintf("%s %s=%g", proto, *param, v), Cfg: cfg})
		}
	}

	if *resume && *out == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -out to name the manifest")
		os.Exit(2)
	}
	opt := batch.Options{
		Workers: *parallel,
		Retries: *retries,
		// The batch layer already says what each line means ("tag",
		// "tag (resumed)", retry notices), so print it unadorned.
		Progress: batch.NewSink(func(s string) { fmt.Fprintln(os.Stderr, s) }),
	}
	if *out != "" {
		if *resume {
			entries, err := batch.LoadManifest(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			opt.Resume = entries
		}
		m, err := batch.CreateManifest(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer m.Close()
		opt.Manifest = m
	}
	if *shards >= 2 {
		if w, cores := opt.WorkerCount(), runtime.GOMAXPROCS(0); w**shards > cores {
			fmt.Fprintf(os.Stderr,
				"note: -parallel %d × -shards %d wants %d workers on %d cores; the shared budget clamps shard pools to the free slots (possibly zero) — results are unchanged\n",
				w, *shards, w**shards, cores)
		}
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.DefaultCacheEntries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt.Store = st
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiling starts once the sweep is validated and about to run.
	// SIGINT cancels the batch context and unwinds through here, so the
	// deferred stop covers both clean exits and interrupted ones.
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	results, sum := batch.Run(ctx, jobs, opt)

	fmt.Printf("protocol,%s,delivery_rate,mean_latency_ms,first_death_s,alive_end,aen_end\n", *param)
	i := 0
	for _, proto := range protos {
		for _, v := range vals {
			res := results[i]
			i++
			if res.Err != nil {
				fmt.Fprintf(os.Stderr, "failed %s: %v\n", res.Tag, res.Err)
				continue
			}
			r := res.Res
			fmt.Printf("%s,%g,%.4f,%.3f,%.1f,%.3f,%.4f\n",
				proto, v, r.DeliveryRate, r.MeanLatency*1000, r.FirstDeathAt, r.LastAlive, r.Collector.Aen.Last())
		}
	}
	if err := sum.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		stopProf() // os.Exit skips the defer
		os.Exit(1)
	}
}
