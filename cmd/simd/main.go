// Command simd runs the simulator as a resident HTTP/JSON service
// backed by a persistent content-addressed result store: POST scenario
// configs to /v1/run, get runner.Results back — recomputed at most once
// per distinct config, ever, because determinism makes a content-key
// cache hit exact (DESIGN.md §12).
//
// Usage:
//
//	simd -addr :8171 -store simd-store
//	simd -addr :8171 -store simd-store -workers 8 -queue 128 -max-n 1000
//
// Endpoints:
//
//	POST /v1/run            run (or fetch) a scenario; body = scenario
//	                        JSON, ?base=<protocol> starts from defaults,
//	                        ?wait=0 for async 202 + poll URL
//	GET  /v1/result/{key}   fetch a result by content key
//	GET  /v1/jobs           in-flight jobs
//	POST /v1/generate       validate a scenario (incl. its generator
//	                        spec) and preview its result key, no run
//	GET  /healthz           liveness
//	GET  /metrics           counters + latency histograms (JSON)
//
// SIGINT/SIGTERM drains gracefully: the listener stops accepting,
// in-flight requests get -drain to finish, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecgrid/internal/server"
	"ecgrid/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8171", "listen address")
		dir       = flag.String("store", "simd-store", "result store directory (created if absent)")
		workers   = flag.Int("workers", 0, "concurrent simulations; 0 uses all cores")
		queue     = flag.Int("queue", 64, "max distinct in-flight jobs before 429")
		perCli    = flag.Int("per-client", 0, "max in-flight jobs per client token; 0 = queue/4")
		maxN      = flag.Int("max-n", 0, "reject configs with more hosts than this; 0 = unlimited")
		shards    = flag.Int("shards", 0, "run configs that don't pick a shard count on the sharded parallel engine with this many strips (byte-identical results)")
		noRxCache = flag.Bool("norxcache", false, "run configs that don't disable it themselves with the receiver-plane cache off (uncached reference scan; byte-identical results)")
		cache     = flag.Int("cache", store.DefaultCacheEntries, "in-memory LRU entries fronting the store")
		runTO     = flag.Duration("run-timeout", 0, "per-job execution budget; 0 = unbounded")
		maxWait   = flag.Duration("max-wait", 2*time.Minute, "longest a blocking request may hold its connection")
		drain     = flag.Duration("drain", 30*time.Second, "graceful shutdown budget on SIGTERM")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "-shards %d: shard count cannot be negative\n", *shards)
		os.Exit(2)
	}
	if err := run(*addr, *dir, *workers, *queue, *perCli, *maxN, *shards, *noRxCache, *cache, *runTO, *maxWait, *drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers, queue, perCli, maxN, shards int, noRxCache bool, cache int, runTO, maxWait, drain time.Duration) error {
	st, err := store.Open(dir, cache)
	if err != nil {
		return err
	}
	entries, err := st.Len()
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Store:      st,
		Workers:    workers,
		QueueDepth: queue,
		PerClient:  perCli,
		MaxHosts:   maxN,
		Shards:     shards,
		NoRxCache:  noRxCache,
		RunTimeout: runTO,
		MaxWait:    maxWait,
	})
	if err != nil {
		return err
	}

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "simd: listening on %s, store %s (%d results)\n", addr, dir, entries)
		errc <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// ListenAndServe never returns nil; any early return is fatal.
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "simd: draining (up to %s)\n", drain)
	shCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err = hs.Shutdown(shCtx) // stop accepting, let in-flight requests finish
	srv.Close()              // then fail anything still queued internally
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "simd: bye")
	return nil
}
