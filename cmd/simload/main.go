// Command simload load-tests a running simd daemon: K concurrent
// clients fire a stream of POST /v1/run requests whose unique-config
// count is derived from a target cache-hit ratio, then the tool reports
// status counts, the observed hit ratio, and p50/p95/p99 latency.
//
//	simload -addr http://127.0.0.1:8171 -clients 8 -requests 400 -hit 0.9
//
// Exit status is non-zero when any request ends in a status other than
// 200 (429s are retried per Retry-After, up to -retries), or when the
// p99 latency exceeds -max-p99 (if set) — which is what lets CI use a
// simload run as a pass/fail smoke gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ecgrid/internal/scenario"
	"ecgrid/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8171", "simd base URL")
		clients  = flag.Int("clients", 8, "concurrent clients")
		requests = flag.Int("requests", 400, "total requests")
		hit      = flag.Float64("hit", 0.9, "target cache-hit ratio in [0,1); sets the unique-config count")
		base     = flag.String("base", "ecgrid", "protocol for the generated configs")
		hosts    = flag.Int("hosts", 12, "hosts per generated config")
		simDur   = flag.Float64("sim-duration", 20, "simulated seconds per generated config")
		seed0    = flag.Int64("seed0", 1, "first seed; unique configs use seed0, seed0+1, …")
		timeout  = flag.Duration("timeout", 2*time.Minute, "per-request client timeout")
		retries  = flag.Int("retries", 5, "retry budget per request for 429 responses")
		maxP99   = flag.Duration("max-p99", 0, "fail if p99 latency exceeds this; 0 disables the gate")
	)
	flag.Parse()

	if *requests <= 0 || *clients <= 0 {
		fmt.Fprintln(os.Stderr, "simload: -requests and -clients must be positive")
		os.Exit(2)
	}
	if *hit < 0 || *hit >= 1 {
		fmt.Fprintln(os.Stderr, "simload: -hit must be in [0, 1)")
		os.Exit(2)
	}
	proto, err := scenario.ParseProtocol(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// hit ratio → unique configs: U uniques over R requests leave R−U
	// repeat requests, so the expected hit+join ratio is 1 − U/R.
	unique := int(float64(*requests)*(1-*hit) + 0.5)
	if unique < 1 {
		unique = 1
	}
	if unique > *requests {
		unique = *requests
	}
	bodies := make([][]byte, unique)
	for i := range bodies {
		cfg := scenario.Default(proto)
		cfg.Hosts = *hosts
		cfg.Flows = 2
		cfg.Duration = *simDur
		cfg.Seed = *seed0 + int64(i)
		b, err := json.Marshal(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bodies[i] = b
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		lat      []float64 // seconds, successful requests only
		byCache  = map[string]int{}
		byStatus = map[int]int{}
		retried  int
		failures int
	)
	client := &http.Client{Timeout: *timeout}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			token := fmt.Sprintf("client-%d", w)
			for {
				i := int(next.Add(1)) - 1
				if i >= *requests {
					return
				}
				status, cache, d, nretry, err := fire(client, *addr, token, bodies[i%unique], *retries)
				mu.Lock()
				retried += nretry
				if err != nil {
					failures++
					fmt.Fprintf(os.Stderr, "simload: request %d: %v\n", i, err)
				} else {
					byStatus[status]++
					if status == http.StatusOK {
						lat = append(lat, d.Seconds())
						byCache[cache]++
					} else {
						failures++
					}
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Float64s(lat)
	p50 := time.Duration(stats.Percentile(lat, 0.50) * float64(time.Second))
	p95 := time.Duration(stats.Percentile(lat, 0.95) * float64(time.Second))
	p99 := time.Duration(stats.Percentile(lat, 0.99) * float64(time.Second))

	fmt.Printf("simload: %d requests, %d clients, %d unique configs, %.1fs wall (%.0f req/s)\n",
		*requests, *clients, unique, elapsed.Seconds(), float64(*requests)/elapsed.Seconds())
	var statuses []int
	for s := range byStatus {
		statuses = append(statuses, s)
	}
	sort.Ints(statuses)
	fmt.Printf("status:")
	for _, s := range statuses {
		fmt.Printf(" %d×%d", s, byStatus[s])
	}
	fmt.Printf("  (429 retries: %d, failures: %d)\n", retried, failures)
	ok := byStatus[http.StatusOK]
	if ok > 0 {
		served := byCache["hit"]
		fmt.Printf("cache: hits %d, misses %d, joins %d → observed hit ratio %.3f\n",
			served, byCache["miss"], byCache["join"], float64(served)/float64(ok))
	}
	fmt.Printf("latency: p50=%s p95=%s p99=%s\n",
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "simload: FAIL: %d requests did not end in 200\n", failures)
		os.Exit(1)
	}
	if *maxP99 > 0 && p99 > *maxP99 {
		fmt.Fprintf(os.Stderr, "simload: FAIL: p99 %s exceeds budget %s\n", p99, *maxP99)
		os.Exit(1)
	}
}

// fire sends one request, retrying 429s per their Retry-After (or 1 s),
// and returns the final status, the X-Cache header, the latency of the
// final attempt, and how many retries it took.
func fire(client *http.Client, addr, token string, body []byte, budget int) (status int, cache string, d time.Duration, retries int, err error) {
	for {
		t0 := time.Now()
		req, err := http.NewRequest(http.MethodPost, addr+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return 0, "", 0, retries, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client", token)
		resp, err := client.Do(req)
		if err != nil {
			return 0, "", 0, retries, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		d = time.Since(t0)
		if resp.StatusCode != http.StatusTooManyRequests || retries >= budget {
			return resp.StatusCode, resp.Header.Get("X-Cache"), d, retries, nil
		}
		retries++
		wait := time.Second
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			wait = time.Duration(ra) * time.Second
		}
		time.Sleep(wait)
	}
}
