// Command figures regenerates the paper's evaluation figures (Figs 4–8,
// both speed variants) as text tables or CSV. Each figure's simulations
// (protocols × sweep points × seed replicates) fan out across a worker
// pool; results are independent of the worker count.
//
// Usage:
//
//	figures                 # all ten figures, text tables
//	figures -fig 4a         # one figure
//	figures -csv -fig 7b    # CSV output
//	figures -fast           # shrunken sweeps (shape-preserving)
//	figures -parallel 1     # serial execution
//	figures -manifest runs.jsonl -resume   # record runs; skip completed on rerun
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ecgrid/internal/experiment"
	"ecgrid/internal/scenario"
	"ecgrid/internal/store"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure to regenerate (4a..8b); empty runs all")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		fast     = flag.Bool("fast", false, "shrunken sweeps for quick runs")
		seed     = flag.Int64("seed", 1, "random seed")
		seeds    = flag.Int("seeds", 1, "repeat across this many seeds and report mean±CI")
		out      = flag.String("out", "", "also write one CSV per figure into this directory")
		parallel = flag.Int("parallel", 0, "concurrent simulations; 0 uses all cores, 1 runs serially")
		manifest = flag.String("manifest", "", "append a JSONL manifest of completed runs to this file")
		resume   = flag.Bool("resume", false, "skip runs already recorded in the -manifest file")
		storeDir = flag.String("store", "", "content-addressed result store directory shared with simd; cached runs are skipped")
		quiet    = flag.Bool("q", false, "suppress per-run progress on stderr")
		scenRef  = flag.String("scenario", "",
			"overlay the generator spec of this scenario (a JSON file or scenarios/<name> entry) onto every figure run")
		shards = flag.Int("shards", 0,
			"run every figure simulation on the sharded parallel engine with this many strips (byte-identical results; shares a GOMAXPROCS worker budget with -parallel)")
		noRxCache = flag.Bool("norxcache", false,
			"run every figure simulation with the receiver-plane cache disabled (uncached reference scan; byte-identical results)")
	)
	flag.Parse()

	if *resume && *manifest == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -manifest to name the file")
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "-shards %d: shard count cannot be negative\n", *shards)
		os.Exit(2)
	}

	var figs []experiment.Figure
	overhead := false
	switch *fig {
	case "":
		figs = experiment.All()
		overhead = true
	case "overhead":
		overhead = true
	default:
		figs = []experiment.Figure{experiment.Figure(*fig)}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := experiment.Options{
		Seed:      *seed,
		Seeds:     *seeds,
		Fast:      *fast,
		Workers:   *parallel,
		Shards:    *shards,
		NoRxCache: *noRxCache,
		Manifest:  *manifest,
		Resume:    *resume,
		Context:   ctx,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.DefaultCacheEntries)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opt.Store = st
	}
	if *scenRef != "" {
		loaded, err := scenario.ResolveRef(*scenRef)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if loaded.Gen.Empty() {
			fmt.Fprintf(os.Stderr, "scenario %q carries no generator spec to overlay\n", *scenRef)
			os.Exit(2)
		}
		opt.Gen = loaded.Gen
	}
	if !*quiet {
		// The batch layer serializes calls, so this closure needs no
		// locking even with -parallel > 1.
		opt.Progress = func(s string) {
			fmt.Fprintf(os.Stderr, "running %s\n", s)
		}
	}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, f := range figs {
		res, err := experiment.Run(f, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *out != "" {
			if err := writeCSVFile(*out, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *csv {
			fmt.Printf("# figure %s: %s\n", res.Figure, res.Title)
			if err := res.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println()
			continue
		}
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if overhead && !*csv {
		res := experiment.RunOverhead(opt)
		if err := res.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeCSVFile stores one figure's CSV as <dir>/fig<id>.csv.
func writeCSVFile(dir string, res *experiment.Result) error {
	f, err := os.Create(filepath.Join(dir, fmt.Sprintf("fig%s.csv", res.Figure)))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "# %s\n", res.Title); err != nil {
		return err
	}
	return res.WriteCSV(f)
}
