// Command repro checks the paper's evaluation claims against fresh
// simulation runs and prints a PASS/FAIL checklist — the repository's
// reproduction status as a program.
//
//	repro            # full horizons (a couple of minutes)
//	repro -fast      # shrunken horizons
//	repro -v         # show each simulation as it runs
package main

import (
	"flag"
	"fmt"
	"os"

	"ecgrid/internal/claims"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		fast    = flag.Bool("fast", false, "shrunken horizons")
		verbose = flag.Bool("v", false, "print each simulation run")
	)
	flag.Parse()

	env := claims.NewEnv(*seed, *fast)
	if *verbose {
		env.Progress = func(s string) { fmt.Fprintf(os.Stderr, "running %s\n", s) }
	}

	failures := 0
	for _, c := range claims.All() {
		v := c.Check(env)
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %s\n       %s\n       measured: %s\n\n", status, c.ID, c.Statement, v.Detail)
	}
	if failures > 0 {
		fmt.Printf("%d of %d claims failed\n", failures, len(claims.All()))
		os.Exit(1)
	}
	fmt.Printf("all %d claims reproduced\n", len(claims.All()))
}
