// Command repro checks the paper's evaluation claims against fresh
// simulation runs and prints a PASS/FAIL checklist — the repository's
// reproduction status as a program. Claims are checked concurrently; the
// simulations they share are deduplicated and capped by -parallel, and
// the checklist prints in claim order regardless of completion order.
//
//	repro            # full horizons (a couple of minutes)
//	repro -fast      # shrunken horizons
//	repro -v         # show each simulation as it runs
//	repro -parallel 1                 # serial execution
//	repro -out runs.jsonl -resume     # record runs; skip completed on rerun
package main

import (
	"flag"
	"fmt"
	"os"

	"ecgrid/internal/claims"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		fast     = flag.Bool("fast", false, "shrunken horizons")
		verbose  = flag.Bool("v", false, "print each simulation run")
		parallel = flag.Int("parallel", 0, "concurrent simulations; 0 uses all cores, 1 runs serially")
		out      = flag.String("out", "", "append a JSONL manifest of completed runs to this file")
		resume   = flag.Bool("resume", false, "skip runs already recorded in the -out manifest")
	)
	flag.Parse()

	if *resume && *out == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -out to name the manifest")
		os.Exit(2)
	}

	env := claims.NewEnv(*seed, *fast)
	env.Workers = *parallel
	env.Manifest = *out
	env.Resume = *resume
	if *verbose {
		env.Progress = func(s string) { fmt.Fprintf(os.Stderr, "running %s\n", s) }
	}

	all := claims.All()
	verdicts := claims.CheckAll(env, all, *parallel)
	if err := env.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}

	failures := 0
	for i, c := range all {
		v := verdicts[i]
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %s\n       %s\n       measured: %s\n\n", status, c.ID, c.Statement, v.Detail)
	}
	if failures > 0 {
		fmt.Printf("%d of %d claims failed\n", failures, len(all))
		os.Exit(1)
	}
	fmt.Printf("all %d claims reproduced\n", len(all))
}
