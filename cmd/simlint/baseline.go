package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ecgrid/internal/lint"
)

// A findings summary maps "kind name relpath" keys to counts, where kind
// is "finding" (diagnostics per analyzer per file) or "suppress"
// (//simlint: annotations per directive per file). The baseline file is
// the summary serialized one key per line, sorted:
//
//	finding  <analyzer>  <relpath> <count>
//	suppress <directive> <relpath> <count>
//
// Tracking suppressions alongside findings means a new //simlint:
// annotation is just as visible in review as a new diagnostic — you
// cannot silence an analyzer without the baseline (a committed file)
// changing under you.
type summary map[string]int

// buildSummary derives the current summary from the run's diagnostics
// and the annotation directives present in the analyzed files. Paths are
// recorded relative to baseDir so the file is stable across checkouts.
func buildSummary(pkgs []*lint.Package, diags []lint.Diagnostic, baseDir string) summary {
	s := make(summary)
	for _, d := range diags {
		s[fmt.Sprintf("finding %s %s", d.Analyzer, relTo(baseDir, d.Pos.Filename))]++
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			for directive, n := range lint.DirectivesInFile(f) {
				s[fmt.Sprintf("suppress %s %s", directive, relTo(baseDir, name))] += n
			}
		}
	}
	return s
}

func relTo(base, filename string) string {
	if r, err := filepath.Rel(base, filename); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(filename)
}

// writeBaseline serializes the summary, sorted, with a regeneration hint.
func writeBaseline(path string, s summary) error {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# simlint findings baseline: one \"kind name relpath count\" per line.\n")
	b.WriteString("# Regenerate with: go run ./cmd/simlint -write-baseline .simlint-baseline ./...\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, s[k])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBaseline parses a baseline file. Blank lines and #-comments are
// ignored; anything else must be "kind name relpath count".
func readBaseline(path string) (summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := make(summary)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || (fields[0] != "finding" && fields[0] != "suppress") {
			return nil, fmt.Errorf("%s:%d: malformed baseline line %q", path, i+1, line)
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%s:%d: bad count in %q", path, i+1, line)
		}
		s[strings.Join(fields[:3], " ")] += n
	}
	return s, nil
}

// diffBaseline compares the current summary against the recorded one and
// returns human-readable drift lines, new findings first. Empty means
// exact match — the baseline must track reality in both directions, so
// fixing a finding (or deleting an annotation) also requires
// regenerating the file.
func diffBaseline(base, cur summary) []string {
	keys := make(map[string]bool, len(base)+len(cur))
	for k := range base {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	var grown, shrunk []string
	for k := range keys {
		b, c := base[k], cur[k]
		switch {
		case c > b:
			grown = append(grown, fmt.Sprintf("new since baseline: %s %d (baseline %d)", k, c, b))
		case c < b:
			shrunk = append(shrunk, fmt.Sprintf("stale baseline entry: %s %d (now %d)", k, b, c))
		}
	}
	sort.Strings(grown)
	sort.Strings(shrunk)
	return append(grown, shrunk...)
}
