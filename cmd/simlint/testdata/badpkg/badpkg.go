// Package badpkg is a driver-test fixture carrying a deliberate
// globalrand violation (the one analyzer whose scope is the whole repo,
// so it fires even under cmd/...).
package badpkg

import "math/rand"

// Draw perturbs every other consumer of the global source.
func Draw() int { return rand.Intn(6) }
