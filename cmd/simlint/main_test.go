package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistersFullSuite pins the driver's registry: every analyzer of
// the suite must be wired in, exactly once.
func TestRegistersFullSuite(t *testing.T) {
	want := map[string]bool{
		"maprange":    false,
		"walltime":    false,
		"globalrand":  false,
		"floateq":     false,
		"framelease":  false,
		"handlestale": false,
		"rngstream":   false,
		"ctxerr":      false,
	}
	as := analyzers()
	if len(as) != len(want) {
		t.Fatalf("driver registers %d analyzers, want %d", len(as), len(want))
	}
	for _, a := range as {
		seen, known := want[a.Name]
		if !known {
			t.Errorf("unknown analyzer %q registered", a.Name)
		}
		if seen {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		want[a.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %q not registered", name)
		}
	}
}

func TestRunFlagsViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"testdata/badpkg"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "global rand.Intn") || !strings.Contains(stdout.String(), "globalrand") {
		t.Errorf("diagnostic output missing globalrand finding:\n%s", stdout.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestBaselineRoundTrip writes a baseline over the deliberately broken
// fixture, re-checks against it (accounted findings pass), and then
// verifies an empty baseline flags the same findings as drift.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", base, "testdata/badpkg"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "finding globalrand testdata/badpkg/") {
		t.Fatalf("baseline missing the badpkg finding:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, "testdata/badpkg"}, &stdout, &stderr); code != 0 {
		t.Fatalf("accounted finding failed the baseline check: exit %d\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}

	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", empty, "testdata/badpkg"}, &stdout, &stderr); code != 1 {
		t.Fatalf("new finding passed an empty baseline: exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "new since baseline: finding globalrand") {
		t.Errorf("drift output missing the new-finding line:\n%s", stdout.String())
	}
}

// TestBaselineStaleEntryFails pins the two-way contract: an entry the
// tree no longer justifies is drift too, so fixes force a regenerate.
func TestBaselineStaleEntryFails(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline")
	stale := "finding globalrand testdata/badpkg/bad.go 99\nsuppress ordered gone/gone.go 2\n"
	if err := os.WriteFile(base, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "testdata/badpkg"}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale baseline passed: exit %d\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "stale baseline entry: suppress ordered gone/gone.go") {
		t.Errorf("drift output missing the stale-entry line:\n%s", stdout.String())
	}
}

func TestMalformedBaseline(t *testing.T) {
	base := filepath.Join(t.TempDir(), "baseline")
	if err := os.WriteFile(base, []byte("finding onlythree fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-baseline", base, "testdata/badpkg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("malformed baseline: exit %d, want 2\nstderr: %s", code, stderr.String())
	}
}

// TestRepoMatchesCommittedBaseline is the CI contract in miniature: the
// committed .simlint-baseline must exactly account for the shipped
// tree's findings and suppression annotations.
func TestRepoMatchesCommittedBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo from source")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "-baseline", ".simlint-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline drift: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}

// TestRepoIsClean is the shipped-tree guarantee: the full suite over the
// whole repo reports nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo from source")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint over the repo: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
