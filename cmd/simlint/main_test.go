package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistersAllFour pins the driver's registry: every analyzer of the
// suite must be wired in, exactly once.
func TestRegistersAllFour(t *testing.T) {
	want := map[string]bool{
		"maprange":   false,
		"walltime":   false,
		"globalrand": false,
		"floateq":    false,
	}
	as := analyzers()
	if len(as) != len(want) {
		t.Fatalf("driver registers %d analyzers, want %d", len(as), len(want))
	}
	for _, a := range as {
		seen, known := want[a.Name]
		if !known {
			t.Errorf("unknown analyzer %q registered", a.Name)
		}
		if seen {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		want[a.Name] = true
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("analyzer %q not registered", name)
		}
	}
}

func TestRunFlagsViolation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"testdata/badpkg"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "global rand.Intn") || !strings.Contains(stdout.String(), "globalrand") {
		t.Errorf("diagnostic output missing globalrand finding:\n%s", stdout.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestRepoIsClean is the shipped-tree guarantee: the full suite over the
// whole repo reports nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repo from source")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("simlint over the repo: exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
