// Command simlint runs the simulator's determinism-and-safety analyzer
// suite (internal/lint/...) over the given packages and fails on any
// diagnostic. It is the repo's answer to "the engine is bit-deterministic
// per seed" being a claim worth machine-enforcing:
//
//	maprange    range over maps in simulation packages
//	walltime    wall-clock reads and host timers in simulation packages
//	globalrand  global math/rand functions anywhere but internal/sim/rng.go
//	floateq     exact float ==/!= in geom, energy, and metrics
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -tests ./internal/core/...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ecgrid/internal/lint"
	"ecgrid/internal/lint/floateq"
	"ecgrid/internal/lint/globalrand"
	"ecgrid/internal/lint/maprange"
	"ecgrid/internal/lint/walltime"
)

// analyzers returns the full registered suite, in reporting order.
func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		maprange.Analyzer,
		walltime.Analyzer,
		globalrand.Analyzer,
		floateq.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "directory to resolve package patterns against (default: current directory)")
	tests := fs.Bool("tests", false, "also analyze *_test.go files declared in the package under test")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-C dir] [-tests] [packages]\n\n")
		fmt.Fprintf(stderr, "Packages default to ./... . Analyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(lint.LoadConfig{Dir: *dir, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d issue(s) in %d package(s) analyzed\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
