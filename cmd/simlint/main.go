// Command simlint runs the simulator's determinism-and-safety analyzer
// suite (internal/lint/...) over the given packages and fails on any
// diagnostic. It is the repo's answer to "the engine is bit-deterministic
// per seed" being a claim worth machine-enforcing:
//
//	maprange     range over maps in simulation packages
//	walltime     wall-clock reads and host timers in simulation packages
//	globalrand   global math/rand functions anywhere but internal/sim/rng.go
//	floateq      exact float ==/!= in geom, energy, and metrics
//	framelease   pooled NewFrame results released/handed off on every path (CFG dataflow)
//	handlestale  canceled sim.Handle fields zeroed before return, never read stale (CFG dataflow)
//	rngstream    RNG stream names minted by the internal/sim/streams.go registry
//	ctxerr       dropped errors and context-free goroutines in server/batch
//
// Usage:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -tests ./internal/core/...
//	go run ./cmd/simlint -baseline .simlint-baseline ./...
//
// Exit status: 0 clean, 1 diagnostics reported (or baseline drift),
// 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ecgrid/internal/lint"
	"ecgrid/internal/lint/ctxerr"
	"ecgrid/internal/lint/floateq"
	"ecgrid/internal/lint/framelease"
	"ecgrid/internal/lint/globalrand"
	"ecgrid/internal/lint/handlestale"
	"ecgrid/internal/lint/maprange"
	"ecgrid/internal/lint/rngstream"
	"ecgrid/internal/lint/walltime"
)

// analyzers returns the full registered suite, in reporting order.
func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		maprange.Analyzer,
		walltime.Analyzer,
		globalrand.Analyzer,
		floateq.Analyzer,
		framelease.Analyzer,
		handlestale.Analyzer,
		rngstream.Analyzer,
		ctxerr.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", "", "directory to resolve package patterns against (default: current directory)")
	tests := fs.Bool("tests", false, "also analyze *_test.go files declared in the package under test")
	baseline := fs.String("baseline", "", "compare findings and suppressions against this baseline file; any drift fails")
	writeBase := fs.String("write-baseline", "", "write the current findings/suppressions summary to this file and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-C dir] [-tests] [-baseline file | -write-baseline file] [packages]\n\n")
		fmt.Fprintf(stderr, "Packages default to ./... . Analyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(lint.LoadConfig{Dir: *dir, Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}

	// Baseline paths resolve against -C like the package patterns do.
	resolve := func(p string) string {
		if *dir != "" && !filepath.IsAbs(p) {
			return filepath.Join(*dir, p)
		}
		return p
	}
	root := *dir
	if root == "" {
		root = "."
	}
	baseDir, err := filepath.Abs(root)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	cur := buildSummary(pkgs, diags, baseDir)

	if *writeBase != "" {
		if err := writeBaseline(resolve(*writeBase), cur); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "simlint: wrote %d baseline entries to %s\n", len(cur), *writeBase)
		return 0
	}
	if *baseline != "" {
		base, err := readBaseline(resolve(*baseline))
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		drift := diffBaseline(base, cur)
		if len(drift) > 0 {
			for _, line := range drift {
				fmt.Fprintln(stdout, line)
			}
			fmt.Fprintf(stderr, "simlint: %d baseline drift line(s); regenerate with -write-baseline %s after review\n", len(drift), *baseline)
			return 1
		}
		fmt.Fprintf(stderr, "simlint: %d finding(s) in %d package(s), all accounted for in %s\n", len(diags), len(pkgs), *baseline)
		return 0
	}

	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d issue(s) in %d package(s) analyzed\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
