// Command benchgate fails CI when a benchmark's allocations regress
// past the recorded budget. It reads `go test -bench -benchmem` output
// on stdin, extracts one benchmark's allocs/op, and compares it
// against the "after" number recorded in a BENCH_*.json ledger, with a
// relative slack for machine noise.
//
// Usage (the CI bench job):
//
//	go test -bench BenchmarkFig8a -benchtime 1x -benchmem -run '^$' . |
//	    go run ./cmd/benchgate -bench BenchmarkFig8a -budget BENCH_5.json
//
// allocs/op is the gated metric on purpose: unlike ns/op it is exactly
// reproducible across runners, so a 10% slack catches a real
// regression (a lost pool, a new per-event closure) without flaking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		bench  = flag.String("bench", "BenchmarkFig8a", "benchmark name to gate")
		budget = flag.String("budget", "BENCH_5.json", "benchmark ledger with the allocs/op budget")
		slack  = flag.Float64("slack", 0.10, "allowed relative regression over the budget")
	)
	flag.Parse()

	want, err := loadBudget(*budget, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	input, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	os.Stdout.Write(input) // keep the benchmark output visible in the CI log
	got, err := parseAllocs(string(input), *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	limit := int64(float64(want) * (1 + *slack))
	if got > limit {
		fmt.Fprintf(os.Stderr, "benchgate: %s allocated %d allocs/op, budget %d (+%.0f%% slack = %d)\n",
			*bench, got, want, *slack*100, limit)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %s at %d allocs/op, within budget %d (+%.0f%% slack = %d)\n",
		*bench, got, want, *slack*100, limit)
}

// ledger mirrors the slice of BENCH_*.json that the gate needs.
type ledger struct {
	Benchmarks map[string]struct {
		After struct {
			AllocsOp int64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// loadBudget returns the recorded "after" allocs/op for bench.
func loadBudget(path, bench string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var l ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	b, ok := l.Benchmarks[bench]
	if !ok {
		return 0, fmt.Errorf("%s: no benchmark %q in ledger", path, bench)
	}
	if b.After.AllocsOp <= 0 {
		return 0, fmt.Errorf("%s: benchmark %q has no allocs_op budget", path, bench)
	}
	return b.After.AllocsOp, nil
}
