// Command benchgate fails CI when a benchmark regresses past its
// recorded budget. It reads `go test -bench -benchmem` output on
// stdin, extracts one benchmark's allocs/op and ns/op, and compares
// them against the "after" numbers recorded in a BENCH_*.json ledger,
// each with a relative slack for machine noise.
//
// Usage (the CI bench job):
//
//	go test -bench BenchmarkFig8a -benchtime 1x -benchmem -run '^$' . |
//	    go run ./cmd/benchgate -bench BenchmarkFig8a -budget BENCH_5.json
//
// allocs/op is the primary gate: unlike ns/op it is exactly
// reproducible across runners, so a 10% slack catches a real
// regression (a lost pool, a new per-event closure) without flaking.
// ns/op is gated too, but with a wide guard (25% by default) sized for
// shared-runner noise: it only trips on a wholesale slowdown — a dead
// cache, a lost fast path — not on jitter. A ledger entry without an
// ns_op budget skips the time gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		bench   = flag.String("bench", "BenchmarkFig8a", "benchmark name to gate")
		budget  = flag.String("budget", "BENCH_5.json", "benchmark ledger with the allocs/op and ns/op budgets")
		slack   = flag.Float64("slack", 0.10, "allowed relative regression over the allocs/op budget")
		nsSlack = flag.Float64("ns-slack", 0.25, "allowed relative regression over the ns/op budget")
	)
	flag.Parse()

	want, err := loadBudget(*budget, *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	input, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	os.Stdout.Write(input) // keep the benchmark output visible in the CI log
	got, err := parseAllocs(string(input), *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	limit := int64(float64(want.AllocsOp) * (1 + *slack))
	if got > limit {
		fmt.Fprintf(os.Stderr, "benchgate: %s allocated %d allocs/op, budget %d (+%.0f%% slack = %d)\n",
			*bench, got, want.AllocsOp, *slack*100, limit)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %s at %d allocs/op, within budget %d (+%.0f%% slack = %d)\n",
		*bench, got, want.AllocsOp, *slack*100, limit)

	if want.NsOp <= 0 {
		return
	}
	gotNs, err := parseNsOp(string(input), *bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	nsLimit := int64(float64(want.NsOp) * (1 + *nsSlack))
	if gotNs > nsLimit {
		fmt.Fprintf(os.Stderr, "benchgate: %s took %d ns/op, budget %d (+%.0f%% guard = %d)\n",
			*bench, gotNs, want.NsOp, *nsSlack*100, nsLimit)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %s at %d ns/op, within budget %d (+%.0f%% guard = %d)\n",
		*bench, gotNs, want.NsOp, *nsSlack*100, nsLimit)
}

// budgets is the "after" slice of one ledger entry that the gate needs.
type budgets struct {
	NsOp     int64 `json:"ns_op"`
	AllocsOp int64 `json:"allocs_op"`
}

// ledger mirrors the slice of BENCH_*.json that the gate needs.
type ledger struct {
	Benchmarks map[string]struct {
		After budgets `json:"after"`
	} `json:"benchmarks"`
}

// loadBudget returns the recorded "after" budgets for bench. An
// allocs/op budget is required; ns/op is optional (zero skips the time
// gate — some ledger rows record wall-clock of whole CLI runs, not
// go-bench output).
func loadBudget(path, bench string) (budgets, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return budgets{}, err
	}
	var l ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return budgets{}, fmt.Errorf("%s: %w", path, err)
	}
	b, ok := l.Benchmarks[bench]
	if !ok {
		return budgets{}, fmt.Errorf("%s: no benchmark %q in ledger", path, bench)
	}
	if b.After.AllocsOp <= 0 {
		return budgets{}, fmt.Errorf("%s: benchmark %q has no allocs_op budget", path, bench)
	}
	return b.After, nil
}
