package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ecgrid
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig8a-8   	       1	3569090224 ns/op	277689960 B/op	 5829015 allocs/op
BenchmarkFig8b-8   	       1	5808052109 ns/op	471706384 B/op	 8389619 allocs/op
PASS
ok  	ecgrid	9.456s
`

func TestParseAllocs(t *testing.T) {
	got, err := parseAllocs(sample, "BenchmarkFig8a")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5829015 {
		t.Fatalf("allocs = %d, want 5829015", got)
	}
	// The -8 GOMAXPROCS suffix must not let Fig8a match Fig8b.
	if got, _ := parseAllocs(sample, "BenchmarkFig8b"); got != 8389619 {
		t.Fatalf("Fig8b allocs = %d, want 8389619", got)
	}
}

func TestParseNsOp(t *testing.T) {
	got, err := parseNsOp(sample, "BenchmarkFig8a")
	if err != nil {
		t.Fatal(err)
	}
	if got != 3569090224 {
		t.Fatalf("ns/op = %d, want 3569090224", got)
	}
}

func TestParseAllocsMissingBenchmark(t *testing.T) {
	if _, err := parseAllocs(sample, "BenchmarkFig4a"); err == nil {
		t.Fatal("missing benchmark did not error")
	}
}

func TestParseAllocsNoBenchmem(t *testing.T) {
	if _, err := parseAllocs("BenchmarkFig8a-8 1 3569090224 ns/op\n", "BenchmarkFig8a"); err == nil {
		t.Fatal("missing allocs/op column did not error")
	}
}

func TestLoadBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{
		"benchmarks": {
			"BenchmarkFig8a": {
				"before": {"ns_op": 4000000000, "allocs_op": 5829015},
				"after":  {"ns_op": 3000000000, "allocs_op": 2000000}
			},
			"BenchmarkNoTime": {
				"after": {"allocs_op": 1000}
			}
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBudget(path, "BenchmarkFig8a")
	if err != nil {
		t.Fatal(err)
	}
	if got.AllocsOp != 2000000 {
		t.Fatalf("allocs budget = %d, want 2000000", got.AllocsOp)
	}
	if got.NsOp != 3000000000 {
		t.Fatalf("ns budget = %d, want 3000000000", got.NsOp)
	}
	// A row without an ns_op budget still gates allocs (the time gate
	// is skipped by main).
	noTime, err := loadBudget(path, "BenchmarkNoTime")
	if err != nil {
		t.Fatal(err)
	}
	if noTime.AllocsOp != 1000 || noTime.NsOp != 0 {
		t.Fatalf("no-time budgets = %+v, want allocs 1000, ns 0", noTime)
	}
	if _, err := loadBudget(path, "BenchmarkFig4a"); err == nil {
		t.Fatal("unknown benchmark did not error")
	}
	if _, err := loadBudget(filepath.Join(t.TempDir(), "nope.json"), "BenchmarkFig8a"); err == nil {
		t.Fatal("missing ledger did not error")
	}
}
