package main

import (
	"fmt"
	"strconv"
	"strings"
)

// parseAllocs extracts the allocs/op value for the named benchmark
// from `go test -bench -benchmem` output. Benchmark lines look like
//
//	BenchmarkFig8a-8   1   3569090224 ns/op   277689960 B/op   5829015 allocs/op
//
// where the "-8" suffix is GOMAXPROCS; the name is matched exactly up
// to that suffix. A missing benchmark is an error so the gate also
// catches the benchmark itself rotting away.
func parseAllocs(output, bench string) (int64, error) {
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, _, _ := strings.Cut(fields[0], "-")
		if name != bench {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("bad allocs/op on %q: %w", line, err)
			}
			return v, nil
		}
		return 0, fmt.Errorf("benchmark %s has no allocs/op column (run go test with -benchmem)", bench)
	}
	return 0, fmt.Errorf("benchmark %s not found in input", bench)
}
