package main

import (
	"fmt"
	"strconv"
	"strings"
)

// parseMetric extracts one per-op metric column ("allocs/op", "ns/op",
// "B/op") for the named benchmark from `go test -bench -benchmem`
// output. Benchmark lines look like
//
//	BenchmarkFig8a-8   1   3569090224 ns/op   277689960 B/op   5829015 allocs/op
//
// where the "-8" suffix is GOMAXPROCS; the name is matched exactly up
// to that suffix. A missing benchmark is an error so the gate also
// catches the benchmark itself rotting away.
func parseMetric(output, bench, unit string) (int64, error) {
	for _, line := range strings.Split(output, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name, _, _ := strings.Cut(fields[0], "-")
		if name != bench {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != unit {
				continue
			}
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("bad %s on %q: %w", unit, line, err)
			}
			return v, nil
		}
		return 0, fmt.Errorf("benchmark %s has no %s column (run go test with -benchmem)", bench, unit)
	}
	return 0, fmt.Errorf("benchmark %s not found in input", bench)
}

// parseAllocs extracts the allocs/op value for the named benchmark.
func parseAllocs(output, bench string) (int64, error) {
	return parseMetric(output, bench, "allocs/op")
}

// parseNsOp extracts the ns/op value for the named benchmark.
func parseNsOp(output, bench string) (int64, error) {
	return parseMetric(output, bench, "ns/op")
}
