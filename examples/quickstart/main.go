// Quickstart: run one small ECGRID simulation and print a summary.
//
// This is the shortest path through the public surface: build a scenario,
// run it, read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

func main() {
	// The paper's common setup, scaled down for a fast first run:
	// 50 hosts in 1 km², 10 CBR flows of 1 pkt/s, 2 simulated minutes.
	cfg := scenario.Default(scenario.ECGRID)
	cfg.Hosts = 50
	cfg.Duration = 120
	cfg.Seed = 42

	fmt.Printf("running %v ...\n", cfg)
	r := runner.Run(cfg)

	fmt.Printf("delivered %d of %d packets (%.1f%%), mean latency %.1f ms\n",
		r.Delivered, r.Sent, 100*r.DeliveryRate, r.MeanLatency*1000)
	fmt.Printf("energy consumed per host: %.1f%% of the 500 J battery\n",
		100*r.Collector.Aen.Last())
	fmt.Printf("gateway elections: %d, hosts that served as gateway: %d, sleeps entered: %d\n",
		r.Protocol["elections"], r.Protocol["gateways"], r.Protocol["sleeps"])
	fmt.Printf("RAS pages sent: %d (on-demand wakeups of sleeping hosts)\n",
		r.Protocol["pages"])

	// Reproducibility: the same seed gives the identical run.
	again := runner.Run(cfg)
	fmt.Printf("re-run with the same seed: delivered %d (identical: %v)\n",
		again.Delivered, again.Delivered == r.Delivered)
}
