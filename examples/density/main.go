// Density: the paper's Figure 8 effect — ECGRID's network lifetime grows
// with host density (more hosts per grid share the gateway duty), while
// GRID gains nothing from extra hosts. Beyond raw host count, WHERE the
// hosts stand matters too, so this example also sweeps the generator's
// deployment axis (internal/scengen) at a fixed population:
//
//   - uniform:   the paper's placement — independent uniform draws
//   - clustered: hotspot neighborhoods, some grids crowded, some empty
//   - grid:      one host region per routing cell (best case for election)
//
// The committed scenarios/ library holds the extreme version of this
// axis: dense-manhattan-10k.json, the 10 000-host CI soak workload.
//
//	go run ./examples/density
package main

import (
	"fmt"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
)

func main() {
	fmt.Println("first battery death and alive fraction at t=900 s, by host count")
	fmt.Printf("%-8s %-8s %-14s %-14s\n", "proto", "hosts", "firstDeath(s)", "alive@900s")
	for _, p := range []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID} {
		for _, n := range []int{50, 100, 200} {
			cfg := scenario.Default(p)
			cfg.Hosts = n
			cfg.Duration = 1000
			r := runner.Run(cfg)
			fmt.Printf("%-8s %-8d %-14.0f %-14.2f\n", p, n, r.FirstDeathAt, r.Collector.Alive.At(900))
		}
	}

	deployments := []struct {
		name string
		d    *scengen.Deployment
	}{
		{"uniform", nil},
		{"clustered", &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 5, StdDevM: 80}},
		{"grid", &scengen.Deployment{Kind: scengen.DeployGrid, JitterM: 20}},
	}
	fmt.Println("\nECGRID, 100 hosts: the same population, redeployed")
	fmt.Printf("%-10s %-14s %-14s\n", "deploy", "firstDeath(s)", "alive@900s")
	for _, dep := range deployments {
		cfg := scenario.Default(scenario.ECGRID)
		cfg.Duration = 1000
		if dep.d != nil {
			cfg.Gen = &scengen.Spec{Deployment: dep.d}
		}
		r := runner.Run(cfg)
		fmt.Printf("%-10s %-14.0f %-14.2f\n", dep.name, r.FirstDeathAt, r.Collector.Alive.At(900))
	}

	fmt.Println("\nexpected shape (paper Fig. 8): GRID's numbers barely move with density")
	fmt.Println("(every host idles regardless), while ECGRID keeps more hosts alive as")
	fmt.Println("density rises — only one host per grid is awake, and a fuller grid")
	fmt.Println("rotates the gateway burden across more batteries. The deployment")
	fmt.Println("sweep shows the same mechanism at fixed population: clustering packs")
	fmt.Println("cells with rotation partners, while grid-aligned placement spreads")
	fmt.Println("hosts one per cell, each carrying its gateway duty alone.")
}
