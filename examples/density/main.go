// Density: the paper's Figure 8 effect — ECGRID's network lifetime grows
// with host density (more hosts per grid share the gateway duty), while
// GRID gains nothing from extra hosts.
//
//	go run ./examples/density
package main

import (
	"fmt"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

func main() {
	densities := []int{50, 100, 200}
	fmt.Println("first battery death and alive fraction at t=900 s, by host count")
	fmt.Printf("%-8s %-8s %-14s %-14s\n", "proto", "hosts", "firstDeath(s)", "alive@900s")
	for _, p := range []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID} {
		for _, n := range densities {
			cfg := scenario.Default(p)
			cfg.Hosts = n
			cfg.Duration = 1000
			r := runner.Run(cfg)
			fmt.Printf("%-8s %-8d %-14.0f %-14.2f\n", p, n, r.FirstDeathAt, r.Collector.Alive.At(900))
		}
	}
	fmt.Println("\nexpected shape (paper Fig. 8): GRID's numbers barely move with density")
	fmt.Println("(every host idles regardless), while ECGRID keeps more hosts alive as")
	fmt.Println("density rises — only one host per grid is awake, and a fuller grid")
	fmt.Println("rotates the gateway burden across more batteries.")
}
