// Trace: watch ECGRID work at the packet level. A five-host, two-grid
// network runs for a minute with a 1 pkt/s flow while a trace recorder
// sniffs every transmission; the program then prints an annotated excerpt
// showing the paper's §3 machinery in action: the HELLO-based election,
// sleep notices, the ACQ handshake of a waking source, route discovery,
// and the page-buffer-flush delivery to a sleeping destination.
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"os"

	"ecgrid/internal/core"
	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
	"ecgrid/internal/trace"
)

func main() {
	engine := sim.NewEngine()
	rng := sim.NewRNG(7)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	rcfg := radio.DefaultConfig()
	channel := radio.NewChannel(engine, rng, rcfg)
	bus := ras.NewBus(engine, part, rcfg.Range, ras.DefaultLatency)

	rec := trace.NewRecorder(4096)
	rec.AttachRadio(channel)

	// Five stationary hosts: three in cell (1,1), two in cell (2,1).
	positions := []geom.Point{
		{X: 150, Y: 150}, {X: 170, Y: 170}, {X: 130, Y: 140}, // cell (1,1)
		{X: 250, Y: 150}, {X: 270, Y: 170}, //                   cell (2,1)
	}
	var hosts []*node.Host
	var protos []*core.Protocol
	delivered := 0
	for i, pos := range positions {
		h := node.New(node.Config{
			ID: hostid.ID(i), Engine: engine, RNG: rng, Channel: channel,
			Bus: bus, Partition: part,
			Mobility: mobility.Stationary{At: pos},
			Battery:  energy.NewBattery(energy.PaperModel(), 500),
		})
		p := core.New(h, core.DefaultOptions())
		p.OnDeliver = func(pkt *routing.DataPacket) {
			delivered++
			rec.Record(engine.Now(), "deliver", pkt.Src, pkt.Dst,
				"seq=%d after %.1f ms", pkt.Seq, (engine.Now()-pkt.SentAt)*1000)
		}
		h.SetProtocol(p)
		hosts = append(hosts, h)
		protos = append(protos, p)
	}
	for _, h := range hosts {
		h.Start()
	}

	// One flow: host 1 (a member of cell (1,1) that sleeps between
	// packets) sends to host 4 (a member of cell (2,1) that must be
	// paged awake).
	seq := 0
	sim.NewTicker(engine, 1, 5, func() {
		seq++
		s := seq
		protos[1].SubmitData(&routing.DataPacket{
			Flow: 1, Seq: s, Src: hosts[1].ID(), Dst: hosts[4].ID(),
			Bytes: 512, SentAt: engine.Now(),
		})
	})

	engine.Run(60)

	fmt.Printf("60 simulated seconds, %d packets delivered\n", delivered)
	fmt.Printf("on-air event totals: %s\n\n", rec.Summarize())
	for i, p := range protos {
		fmt.Printf("host-%d: %-8s  sleeps=%-3d pages-sent=%d\n",
			i, p.Role(), p.Stats.SleepsEntered, p.Stats.PagesSent)
	}

	fmt.Println("\n--- the election and first sleep (t < 2 s) ---")
	show(rec, trace.Between(0, 2), trace.ByKind("hello", "sleep", "retire"))

	fmt.Println("\n--- one end-to-end delivery (ACQ wake, discovery, page, flush) ---")
	show(rec, trace.Between(5.9, 7.2),
		trace.ByKind("acq", "awake", "rreq", "rrep", "data", "deliver", "sleep"))
}

func show(rec *trace.Recorder, preds ...func(trace.Entry) bool) {
	entries := rec.Filter(preds...)
	const cap = 40
	if len(entries) > cap {
		entries = entries[:cap]
	}
	if err := trace.Write(os.Stdout, entries); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
