// Lifetime: compare how long the network survives under GRID, ECGRID and
// GAF — the paper's Figure 4 scenario, printed as an alive-fraction
// timeline.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

func main() {
	const horizon = 1200.0
	fmt.Println("fraction of alive hosts over time (100 hosts, 10 pkt/s, pause 0, speed ≤1 m/s)")
	fmt.Printf("%-8s", "t(s)")
	results := make(map[scenario.ProtocolKind]*runner.Results)
	order := []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID, scenario.GAF}
	for _, p := range order {
		cfg := scenario.Default(p)
		cfg.Duration = horizon
		results[p] = runner.Run(cfg)
		fmt.Printf("%10s", p)
	}
	fmt.Println()
	for t := 0.0; t <= horizon; t += 100 {
		fmt.Printf("%-8.0f", t)
		for _, p := range order {
			fmt.Printf("%10.2f", results[p].Collector.Alive.At(t))
		}
		fmt.Println()
	}

	fmt.Println()
	for _, p := range order {
		r := results[p]
		first := "none"
		if r.FirstDeathAt >= 0 {
			first = fmt.Sprintf("%.0f s", r.FirstDeathAt)
		}
		fmt.Printf("%-7s first death %s, %d dead by %.0f s\n", p, first, r.Deaths, horizon)
	}
	fmt.Println("\nexpected shape (paper Fig. 4): GRID collapses at ≈590 s; ECGRID and")
	fmt.Println("GAF extend the lifetime well past it, with GAF slightly ahead because")
	fmt.Println("ECGRID's gateways pay for the HELLO exchange that guarantees delivery.")
}
