// Mobility: how the movement model shapes delivery and latency. The
// paper's Figures 6–7 vary pause time under random waypoint; this
// example holds the paper's common setup fixed and swaps the mobility
// model itself using the scenario generator (internal/scengen):
//
//   - waypoint:  the paper's model — independent hosts, straight legs
//   - manhattan: hosts confined to a street lattice (urban topology)
//   - group:     RPGM — squads move together, topology churns in blocks
//
// Usage:
//
//	go run ./examples/mobility
package main

import (
	"fmt"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
)

func main() {
	models := []struct {
		name string
		gen  *scengen.Spec
	}{
		{"waypoint", nil},
		{"manhattan", &scengen.Spec{
			Mobility: &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 200},
		}},
		{"group", &scengen.Spec{
			Mobility: &scengen.Mobility{Kind: scengen.MobilityGroup, GroupSize: 10, RadiusM: 100},
		}},
	}
	order := []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID, scenario.GAF}

	fmt.Println("delivery rate / mean latency by mobility model (100 hosts, speed ≤1 m/s, 300 s)")
	fmt.Printf("%-10s", "model")
	for _, p := range order {
		fmt.Printf("%22s", p)
	}
	fmt.Println()
	for _, m := range models {
		fmt.Printf("%-10s", m.name)
		for _, p := range order {
			cfg := scenario.Default(p)
			cfg.Duration = 300
			if m.gen != nil {
				cfg.Gen = m.gen
				cfg.Mobility = "" // the generator spec supplies the model
			}
			r := runner.Run(cfg)
			fmt.Printf("%14.1f%% %5.1fms", 100*r.DeliveryRate, r.MeanLatency*1000)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape: all three protocols keep delivering under every")
	fmt.Println("model. Street-constrained movement concentrates hosts along lattice")
	fmt.Println("lines, and group mobility moves whole neighborhoods of the routing")
	fmt.Println("grid at once — yet gateway election re-converges each time, so the")
	fmt.Println("rates stay high; only latency shifts with the topology churn.")
}
