// Mobility: the paper's Figures 6 and 7 scenario — how pause time (and
// thus mobility) affects packet delivery rate and latency for the three
// protocols.
//
//	go run ./examples/mobility
package main

import (
	"fmt"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

func main() {
	pauses := []float64{0, 300, 600}
	fmt.Println("delivery rate / mean latency by pause time (100 hosts, 10 pkt/s, speed ≤1 m/s, 590 s)")
	fmt.Printf("%-8s", "pause(s)")
	order := []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID, scenario.GAF}
	for _, p := range order {
		fmt.Printf("%22s", p)
	}
	fmt.Println()
	for _, pause := range pauses {
		fmt.Printf("%-8.0f", pause)
		for _, p := range order {
			cfg := scenario.Default(p)
			cfg.PauseTime = pause
			r := runner.Run(cfg)
			fmt.Printf("%14.1f%% %5.1fms", 100*r.DeliveryRate, r.MeanLatency*1000)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Figs. 6–7): all three protocols deliver the")
	fmt.Println("bulk of their packets at every pause time with single-digit to")
	fmt.Println("low-double-digit millisecond typical latency; ECGRID achieves this")
	fmt.Println("despite almost all hosts sleeping, because the RAS pages sleeping")
	fmt.Println("destinations awake on demand.")
}
