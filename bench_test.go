package ecgrid

import (
	"fmt"
	"testing"

	"ecgrid/internal/core"
	"ecgrid/internal/experiment"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/sim"
)

// Repository-wide benchmarks.
//
// One benchmark regenerates each figure of the paper's evaluation (§4) in
// the experiment harness's fast mode — the sweeps are shrunk but keep
// their shape, so `go test -bench Fig` exercises every experiment
// end-to-end. cmd/figures runs the full-size sweeps.
//
// The Ablation* benchmarks quantify the design choices called out in
// DESIGN.md §5, and the Engine*/Sim* ones are micro-benchmarks of the
// hot substrate paths.

func benchFigure(b *testing.B, fig experiment.Figure) {
	benchFigureOpts(b, fig, experiment.Options{Fast: true})
}

func benchFigureOpts(b *testing.B, fig experiment.Figure, opt experiment.Options) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opt.Seed = int64(i + 1)
		res, err := experiment.Run(fig, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig4a(b *testing.B) { benchFigure(b, experiment.Fig4a) }
func BenchmarkFig4b(b *testing.B) { benchFigure(b, experiment.Fig4b) }
func BenchmarkFig5a(b *testing.B) { benchFigure(b, experiment.Fig5a) }
func BenchmarkFig5b(b *testing.B) { benchFigure(b, experiment.Fig5b) }
func BenchmarkFig6a(b *testing.B) { benchFigure(b, experiment.Fig6a) }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, experiment.Fig6b) }
func BenchmarkFig7a(b *testing.B) { benchFigure(b, experiment.Fig7a) }
func BenchmarkFig7b(b *testing.B) { benchFigure(b, experiment.Fig7b) }
func BenchmarkFig8a(b *testing.B) { benchFigure(b, experiment.Fig8a) }
func BenchmarkFig8b(b *testing.B) { benchFigure(b, experiment.Fig8b) }

// BenchmarkFig8aShards{2,4} rerun the densest figure sweep on the
// spatially-sharded parallel engine (DESIGN.md §15). The series are
// byte-identical to BenchmarkFig8a's by construction, so these measure
// pure engine overhead/speedup; the figure harness's own batch
// parallelism shares the worker budget with the shard pools, exactly as
// `cmd/figures -parallel N -shards K` would. Serial batch (Workers: 1)
// hands the whole budget to each run's shard pool.
func BenchmarkFig8aShards2(b *testing.B) {
	benchFigureOpts(b, experiment.Fig8a, experiment.Options{Fast: true, Workers: 1, Shards: 2})
}

func BenchmarkFig8aShards4(b *testing.B) {
	benchFigureOpts(b, experiment.Fig8a, experiment.Options{Fast: true, Workers: 1, Shards: 4})
}

// benchScenario runs one simulation per iteration and reports
// domain-specific metrics alongside wall time.
func benchScenario(b *testing.B, cfg scenario.Config) {
	b.ReportAllocs()
	var rate, aen float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r := runner.Run(cfg)
		rate += r.DeliveryRate
		aen += r.Collector.Aen.Last()
	}
	b.ReportMetric(rate/float64(b.N), "delivery-rate")
	b.ReportMetric(aen/float64(b.N), "aen")
}

func shortScenario(p scenario.ProtocolKind) scenario.Config {
	cfg := scenario.Default(p)
	cfg.Duration = 200
	return cfg
}

// BenchmarkProtocolECGRID / GRID / GAF measure a 200-simulated-second run
// of the paper's common setup under each protocol.
func BenchmarkProtocolECGRID(b *testing.B) { benchScenario(b, shortScenario(scenario.ECGRID)) }
func BenchmarkProtocolGRID(b *testing.B)   { benchScenario(b, shortScenario(scenario.GRID)) }
func BenchmarkProtocolGAF(b *testing.B)    { benchScenario(b, shortScenario(scenario.GAF)) }
func BenchmarkProtocolAODV(b *testing.B)   { benchScenario(b, shortScenario(scenario.AODV)) }
func BenchmarkProtocolSpan(b *testing.B)   { benchScenario(b, shortScenario(scenario.SPAN)) }

// --- ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkAblationNoCollision runs ECGRID on the idealized channel.
func BenchmarkAblationNoCollision(b *testing.B) {
	cfg := shortScenario(scenario.ECGRID)
	cfg.Radio.CollisionsEnabled = false
	benchScenario(b, cfg)
}

// BenchmarkAblationNoRAS disables on-demand paging: sleeping destinations
// receive buffered traffic only when their own dwell timers wake them,
// GAF-style. Quantifies what the RAS buys ECGRID.
func BenchmarkAblationNoRAS(b *testing.B) {
	cfg := shortScenario(scenario.ECGRID)
	o := core.DefaultOptions()
	o.UseRAS = false
	cfg.ECGRIDOptions = &o
	benchScenario(b, cfg)
}

// BenchmarkAblationNoLoadBalance disables band-drop retirement.
func BenchmarkAblationNoLoadBalance(b *testing.B) {
	cfg := shortScenario(scenario.ECGRID)
	o := core.DefaultOptions()
	o.LoadBalance = false
	cfg.ECGRIDOptions = &o
	benchScenario(b, cfg)
}

// BenchmarkAblationGlobalFlood removes search-area confinement: every
// RREQ floods the whole partition.
func BenchmarkAblationGlobalFlood(b *testing.B) {
	cfg := shortScenario(scenario.ECGRID)
	o := core.DefaultOptions()
	o.GlobalFloodOnly = true
	cfg.ECGRIDOptions = &o
	benchScenario(b, cfg)
}

// BenchmarkAblationHelloPeriod sweeps the HELLO period, the overhead the
// paper blames for ECGRID's lifetime gap against GAF.
func BenchmarkAblationHelloPeriod(b *testing.B) {
	for _, hp := range []float64{0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("period=%gs", hp), func(b *testing.B) {
			cfg := shortScenario(scenario.ECGRID)
			o := core.DefaultOptions()
			o.HelloPeriod = hp
			o.ElectionWait = hp / 2
			o.GatewayTimeout = 2.5 * hp
			o.NeighborGWTTL = 3 * hp
			o.MemberActiveTTL = 2.5 * hp
			cfg.ECGRIDOptions = &o
			benchScenario(b, cfg)
		})
	}
}

// BenchmarkAblationInterRREP lets intermediate gateways answer RREQs from
// fresh routes, AODV-style.
func BenchmarkAblationInterRREP(b *testing.B) {
	cfg := shortScenario(scenario.ECGRID)
	o := core.DefaultOptions()
	o.InterRREP = true
	cfg.ECGRIDOptions = &o
	benchScenario(b, cfg)
}

// --- substrate micro-benchmarks ------------------------------------------------

// BenchmarkEngineScheduleRun measures raw event throughput.
func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	n := 0
	for i := 0; i < b.N; i++ {
		e.Schedule(float64(i), func() { n++ })
	}
	e.RunAll()
	if n != b.N {
		b.Fatalf("fired %d of %d", n, b.N)
	}
}

// BenchmarkEngineTimerChurn measures timer reset/cancel patterns typical
// of protocol code.
func BenchmarkEngineTimerChurn(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	tm := sim.NewTimer(e, func() {})
	for i := 0; i < b.N; i++ {
		tm.Reset(1)
	}
	tm.Stop()
	e.RunAll()
}

// BenchmarkMobilityPosition measures random-waypoint position queries.
func BenchmarkMobilityPosition(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(1)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	w := mobility.NewRandomWaypoint(area, geom.Point{X: 500, Y: 500}, 10, 5, rng.Stream("m"))
	for i := 0; i < b.N; i++ {
		w.Position(float64(i % 10000))
	}
}

// BenchmarkMobilityNextCellChange measures the exact boundary-crossing
// solver that drives grid entry/exit events.
func BenchmarkMobilityNextCellChange(b *testing.B) {
	b.ReportAllocs()
	rng := sim.NewRNG(1)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	w := mobility.NewRandomWaypoint(area, geom.Point{X: 500, Y: 500}, 10, 5, rng.Stream("m"))
	t := 0.0
	for i := 0; i < b.N; i++ {
		t = mobility.NextCellChange(w, t, part, t+3600)
		if t > 1e7 {
			t = 0
		}
	}
}

// BenchmarkGridCellOf measures the position→cell mapping on the hot path
// of every frame delivery.
func BenchmarkGridCellOf(b *testing.B) {
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	p := geom.Point{X: 123.4, Y: 567.8}
	for i := 0; i < b.N; i++ {
		part.CellOf(p)
	}
}

// BenchmarkExtensionLoadSweep exercises the heavy-traffic extension
// experiment (per-flow rate up to the paper's 10 pkt/s).
func BenchmarkExtensionLoadSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunLoadSweep(experiment.Options{Seed: int64(i + 1), Fast: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionOverhead exercises the air-usage breakdown experiment.
func BenchmarkExtensionOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := experiment.RunOverhead(experiment.Options{Seed: int64(i + 1), Fast: true})
		if len(res.Rows) != 3 {
			b.Fatal("bad overhead result")
		}
	}
}

// BenchmarkAblationMobilityModel compares the paper's random waypoint
// against the uniform-density random-direction model.
func BenchmarkAblationMobilityModel(b *testing.B) {
	for _, model := range []string{"waypoint", "direction"} {
		b.Run(model, func(b *testing.B) {
			cfg := shortScenario(scenario.ECGRID)
			cfg.Mobility = model
			benchScenario(b, cfg)
		})
	}
}

// BenchmarkAblationDesignate enables designated successors in RETIRE
// handovers (off by default; see the option's comment).
func BenchmarkAblationDesignate(b *testing.B) {
	cfg := shortScenario(scenario.ECGRID)
	o := core.DefaultOptions()
	o.DesignateSuccessor = true
	cfg.ECGRIDOptions = &o
	benchScenario(b, cfg)
}
