module ecgrid

go 1.22
