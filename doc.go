// Package ecgrid is a from-scratch Go reproduction of "Energy-Conserving
// Grid Routing Protocol in Mobile Ad Hoc Networks" (Chao, Sheu, Hu;
// ICPP 2003).
//
// The repository contains a deterministic discrete-event wireless network
// simulator, the ECGRID protocol (internal/core), the GRID and GAF
// baselines it is evaluated against, and a harness that regenerates every
// figure of the paper's evaluation. See README.md for a tour, DESIGN.md
// for the system inventory, and EXPERIMENTS.md for paper-vs-measured
// results. The root package holds only the repository-wide benchmarks in
// bench_test.go.
package ecgrid
