package grid

import (
	"math"
	"testing"
	"testing/quick"

	"ecgrid/internal/geom"
)

func paperPartition() *Partition {
	// The paper's setup: 1000×1000 m area, grid size 100 m.
	return NewPartition(geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 1000, Y: 1000}), 100)
}

func TestRecommendedSize(t *testing.T) {
	// d = √2·250/3 ≈ 117.85; the paper rounds down to 100.
	d := RecommendedSize(250)
	if math.Abs(d-117.8511) > 0.001 {
		t.Fatalf("RecommendedSize(250) = %v, want ≈117.851", d)
	}
}

// The paper's reachability guarantee: with d ≤ √2·r/3, a gateway at the
// center of a cell reaches any point of its eight neighboring cells.
func TestCenterReachesAllNeighborCells(t *testing.T) {
	const r = 250.0
	d := RecommendedSize(r)
	// Worst case: center of a cell to the far corner of a diagonal
	// neighbor = 1.5·√2·d.
	worst := 1.5 * math.Sqrt2 * d
	if worst > r+1e-9 {
		t.Fatalf("worst-case distance %v exceeds range %v", worst, r)
	}
	// And any larger d breaks the guarantee.
	if w := 1.5 * math.Sqrt2 * (d * 1.01); w <= r {
		t.Fatalf("d is not tight: %v still within range", w)
	}
}

func TestPartitionDimensions(t *testing.T) {
	p := paperPartition()
	if p.Cols() != 10 || p.Rows() != 10 {
		t.Fatalf("Cols,Rows = %d,%d, want 10,10", p.Cols(), p.Rows())
	}
	if p.CellSize() != 100 {
		t.Fatalf("CellSize = %v", p.CellSize())
	}
	if got := p.Area(); got.Width() != 1000 || got.Height() != 1000 {
		t.Fatalf("Area = %v", got)
	}
}

func TestPartitionNonDividingArea(t *testing.T) {
	p := NewPartition(geom.NewRect(geom.Point{}, geom.Point{X: 250, Y: 150}), 100)
	if p.Cols() != 3 || p.Rows() != 2 {
		t.Fatalf("Cols,Rows = %d,%d, want 3,2", p.Cols(), p.Rows())
	}
	// Bounds of an edge cell clip to the area.
	b := p.Bounds(Coord{2, 1})
	if b.Max.X != 250 || b.Max.Y != 150 {
		t.Fatalf("edge cell bounds = %v", b)
	}
}

func TestCellOf(t *testing.T) {
	p := paperPartition()
	cases := []struct {
		pt   geom.Point
		want Coord
	}{
		{geom.Point{X: 0, Y: 0}, Coord{0, 0}},
		{geom.Point{X: 99.99, Y: 99.99}, Coord{0, 0}},
		{geom.Point{X: 100, Y: 0}, Coord{1, 0}},
		{geom.Point{X: 550, Y: 350}, Coord{5, 3}},
		{geom.Point{X: 999.99, Y: 999.99}, Coord{9, 9}},
		// Clamping: the exact max corner and beyond map to the last cell.
		{geom.Point{X: 1000, Y: 1000}, Coord{9, 9}},
		{geom.Point{X: -5, Y: 2000}, Coord{0, 9}},
	}
	for _, c := range cases {
		if got := p.CellOf(c.pt); got != c.want {
			t.Errorf("CellOf(%v) = %v, want %v", c.pt, got, c.want)
		}
	}
}

func TestCenterRoundTripsProperty(t *testing.T) {
	p := paperPartition()
	f := func(x, y uint8) bool {
		c := Coord{int(x) % p.Cols(), int(y) % p.Rows()}
		return p.CellOf(p.Center(c)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEveryPointMapsToContainingCellProperty(t *testing.T) {
	p := paperPartition()
	f := func(xr, yr uint16) bool {
		pt := geom.Point{X: float64(xr) / 65535 * 1000, Y: float64(yr) / 65535 * 1000}
		c := p.CellOf(pt)
		return p.Valid(c) && p.Bounds(c).Contains(pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCenter(t *testing.T) {
	p := paperPartition()
	if got := p.Center(Coord{0, 0}); got != (geom.Point{X: 50, Y: 50}) {
		t.Fatalf("Center(0,0) = %v", got)
	}
	if got := p.Center(Coord{9, 9}); got != (geom.Point{X: 950, Y: 950}) {
		t.Fatalf("Center(9,9) = %v", got)
	}
}

func TestNeighborsInterior(t *testing.T) {
	p := paperPartition()
	n := p.Neighbors(Coord{5, 5})
	if len(n) != 8 {
		t.Fatalf("interior cell has %d neighbors, want 8", len(n))
	}
	for _, c := range n {
		if !c.IsNeighbor(Coord{5, 5}) {
			t.Errorf("%v is not adjacent to (5,5)", c)
		}
	}
}

func TestNeighborsCornerAndEdge(t *testing.T) {
	p := paperPartition()
	if n := p.Neighbors(Coord{0, 0}); len(n) != 3 {
		t.Fatalf("corner cell has %d neighbors, want 3", len(n))
	}
	if n := p.Neighbors(Coord{0, 5}); len(n) != 5 {
		t.Fatalf("edge cell has %d neighbors, want 5", len(n))
	}
}

func TestIsNeighbor(t *testing.T) {
	c := Coord{3, 3}
	if c.IsNeighbor(c) {
		t.Error("cell is neighbor of itself")
	}
	if !c.IsNeighbor(Coord{4, 4}) || !c.IsNeighbor(Coord{2, 3}) {
		t.Error("adjacent cells not recognized")
	}
	if c.IsNeighbor(Coord{5, 3}) {
		t.Error("cell two columns away recognized as neighbor")
	}
}

func TestChebyshevDist(t *testing.T) {
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{1, 1}, 1},
		{Coord{1, 1}, Coord{5, 3}, 4},
		{Coord{5, 3}, Coord{1, 1}, 4},
	}
	for _, c := range cases {
		if got := c.a.ChebyshevDist(c.b); got != c.want {
			t.Errorf("ChebyshevDist(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValid(t *testing.T) {
	p := paperPartition()
	for _, c := range []Coord{{0, 0}, {9, 9}, {5, 0}} {
		if !p.Valid(c) {
			t.Errorf("Valid(%v) = false", c)
		}
	}
	for _, c := range []Coord{{-1, 0}, {10, 0}, {0, 10}, {-1, -1}} {
		if p.Valid(c) {
			t.Errorf("Valid(%v) = true", c)
		}
	}
}

func TestSearchAreaCoversEndpoints(t *testing.T) {
	// Paper example: S in (1,1), D in (5,3) → rectangle (1,1)-(5,3).
	s := NewSearchArea(Coord{1, 1}, Coord{5, 3})
	if s.Min != (Coord{1, 1}) || s.Max != (Coord{5, 3}) {
		t.Fatalf("SearchArea = %v", s)
	}
	if !s.Contains(Coord{3, 2}) || !s.Contains(Coord{1, 1}) || !s.Contains(Coord{5, 3}) {
		t.Error("search area does not contain interior/corner cells")
	}
	if s.Contains(Coord{0, 2}) || s.Contains(Coord{6, 3}) || s.Contains(Coord{3, 0}) {
		t.Error("search area contains outside cells")
	}
	if s.Cells() != 15 {
		t.Fatalf("Cells() = %d, want 15", s.Cells())
	}
}

func TestSearchAreaOrderIndependent(t *testing.T) {
	a := NewSearchArea(Coord{5, 3}, Coord{1, 1})
	b := NewSearchArea(Coord{1, 1}, Coord{5, 3})
	if a != b {
		t.Fatalf("search area depends on argument order: %v vs %v", a, b)
	}
}

func TestSearchAreaExpand(t *testing.T) {
	p := paperPartition()
	s := NewSearchArea(Coord{1, 1}, Coord{2, 2}).Expand(1, p)
	if s.Min != (Coord{0, 0}) || s.Max != (Coord{3, 3}) {
		t.Fatalf("Expand = %v", s)
	}
	// Expansion clips at the partition border.
	s = NewSearchArea(Coord{0, 0}, Coord{9, 9}).Expand(5, p)
	if s.Min != (Coord{0, 0}) || s.Max != (Coord{9, 9}) {
		t.Fatalf("clipped Expand = %v", s)
	}
}

func TestGlobalSearchArea(t *testing.T) {
	p := paperPartition()
	g := GlobalSearchArea(p)
	if g.Cells() != 100 {
		t.Fatalf("global area covers %d cells, want 100", g.Cells())
	}
	f := func(x, y uint8) bool {
		return g.Contains(Coord{int(x) % 10, int(y) % 10})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSearchAreaContainsEndpointsProperty(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		a := Coord{int(ax), int(ay)}
		b := Coord{int(bx), int(by)}
		s := NewSearchArea(a, b)
		return s.Contains(a) && s.Contains(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewPartitionPanics(t *testing.T) {
	area := geom.NewRect(geom.Point{}, geom.Point{X: 10, Y: 10})
	for name, fn := range map[string]func(){
		"zero size":  func() { NewPartition(area, 0) },
		"empty area": func() { NewPartition(geom.Rect{}, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCoordAndSearchAreaString(t *testing.T) {
	if s := (Coord{2, 3}).String(); s != "(2, 3)" {
		t.Errorf("Coord.String() = %q", s)
	}
	if s := NewSearchArea(Coord{1, 1}, Coord{2, 2}).String(); s != "[(1, 1)..(2, 2)]" {
		t.Errorf("SearchArea.String() = %q", s)
	}
}
