// Package grid implements the 2D logical grid partition that GRID, ECGRID,
// and GAF all share. The geographic area is divided into square cells of
// side d; cells are addressed by integer (x, y) coordinates following the
// conventional coordinate system with (0, 0) at the south-west corner.
//
// The paper chooses d = √2·r/3 where r is the radio range, so that a
// gateway at the center of a cell can reach any host anywhere in its eight
// neighboring cells (center-to-far-corner of a diagonal neighbor is
// 1.5·√2·d ≤ r). Its simulations round down to d = 100 m for r = 250 m.
package grid

import (
	"fmt"
	"math"

	"ecgrid/internal/geom"
)

// Coord is a logical grid coordinate.
type Coord struct {
	X, Y int
}

// String formats the coordinate as (x, y).
func (c Coord) String() string { return fmt.Sprintf("(%d, %d)", c.X, c.Y) }

// IsNeighbor reports whether o is one of c's eight surrounding cells
// (or c itself is not considered a neighbor).
func (c Coord) IsNeighbor(o Coord) bool {
	dx, dy := abs(c.X-o.X), abs(c.Y-o.Y)
	return dx <= 1 && dy <= 1 && !(dx == 0 && dy == 0)
}

// ChebyshevDist returns the L∞ distance between two coordinates: the
// number of grid-by-grid hops needed when every hop may be diagonal.
func (c Coord) ChebyshevDist(o Coord) int {
	return max(abs(c.X-o.X), abs(c.Y-o.Y))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// RecommendedSize returns the largest grid side d = √2·r/3 guaranteeing
// that a gateway at a cell center reaches any host in the eight
// neighboring cells, for radio range r.
func RecommendedSize(r float64) float64 {
	return math.Sqrt2 * r / 3
}

// Partition maps plane positions to grid coordinates over a bounded area.
type Partition struct {
	area geom.Rect
	d    float64
	nx   int // number of columns
	ny   int // number of rows
}

// NewPartition partitions area into square cells of side d. It panics on a
// non-positive d or an empty area, which are configuration bugs.
func NewPartition(area geom.Rect, d float64) *Partition {
	if d <= 0 {
		panic("grid: non-positive cell size")
	}
	if area.Width() <= 0 || area.Height() <= 0 {
		panic("grid: empty area")
	}
	return &Partition{
		area: area,
		d:    d,
		nx:   int(math.Ceil(area.Width() / d)),
		ny:   int(math.Ceil(area.Height() / d)),
	}
}

// Area returns the partitioned region.
func (p *Partition) Area() geom.Rect { return p.area }

// CellSize returns the side length d.
func (p *Partition) CellSize() float64 { return p.d }

// Cols returns the number of grid columns.
func (p *Partition) Cols() int { return p.nx }

// Rows returns the number of grid rows.
func (p *Partition) Rows() int { return p.ny }

// CellOf returns the coordinate of the cell containing pt. Points outside
// the area are clamped to the nearest cell, so hosts that graze the border
// during movement still map to a valid cell.
func (p *Partition) CellOf(pt geom.Point) Coord {
	cx := int(math.Floor((pt.X - p.area.Min.X) / p.d))
	cy := int(math.Floor((pt.Y - p.area.Min.Y) / p.d))
	return Coord{X: clamp(cx, 0, p.nx-1), Y: clamp(cy, 0, p.ny-1)}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Valid reports whether c addresses a cell inside the partition.
func (p *Partition) Valid(c Coord) bool {
	return c.X >= 0 && c.X < p.nx && c.Y >= 0 && c.Y < p.ny
}

// Center returns the physical center of cell c. For edge cells that the
// area only partially covers, this is still the geometric center of the
// full d×d cell, matching the paper's "distance to grid center" rule.
func (p *Partition) Center(c Coord) geom.Point {
	return geom.Point{
		X: p.area.Min.X + (float64(c.X)+0.5)*p.d,
		Y: p.area.Min.Y + (float64(c.Y)+0.5)*p.d,
	}
}

// Bounds returns the rectangle covered by cell c, clipped to the area.
func (p *Partition) Bounds(c Coord) geom.Rect {
	r := geom.Rect{
		Min: geom.Point{X: p.area.Min.X + float64(c.X)*p.d, Y: p.area.Min.Y + float64(c.Y)*p.d},
		Max: geom.Point{X: p.area.Min.X + float64(c.X+1)*p.d, Y: p.area.Min.Y + float64(c.Y+1)*p.d},
	}
	r.Max.X = math.Min(r.Max.X, p.area.Max.X)
	r.Max.Y = math.Min(r.Max.Y, p.area.Max.Y)
	return r
}

// Neighbors returns the valid coordinates among the eight cells
// surrounding c, in deterministic row-major order.
func (p *Partition) Neighbors(c Coord) []Coord {
	out := make([]Coord, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			n := Coord{c.X + dx, c.Y + dy}
			if p.Valid(n) {
				out = append(out, n)
			}
		}
	}
	return out
}

// SearchArea is the rectangle of grid cells that participate in a route
// search. The paper's default confinement is the smallest rectangle
// covering the source and destination cells; Expand grows it by a margin
// of cells for re-tries.
type SearchArea struct {
	Min, Max Coord // inclusive corner cells
}

// NewSearchArea returns the smallest cell rectangle covering a and b.
func NewSearchArea(a, b Coord) SearchArea {
	return SearchArea{
		Min: Coord{min(a.X, b.X), min(a.Y, b.Y)},
		Max: Coord{max(a.X, b.X), max(a.Y, b.Y)},
	}
}

// GlobalSearchArea covers the entire partition, used when a confined
// search fails or the source lacks destination location information.
func GlobalSearchArea(p *Partition) SearchArea {
	return SearchArea{Min: Coord{0, 0}, Max: Coord{p.Cols() - 1, p.Rows() - 1}}
}

// Contains reports whether cell c participates in the search.
func (s SearchArea) Contains(c Coord) bool {
	return c.X >= s.Min.X && c.X <= s.Max.X && c.Y >= s.Min.Y && c.Y <= s.Max.Y
}

// Expand grows the area by n cells on every side, clipped to the partition.
func (s SearchArea) Expand(n int, p *Partition) SearchArea {
	return SearchArea{
		Min: Coord{clamp(s.Min.X-n, 0, p.Cols()-1), clamp(s.Min.Y-n, 0, p.Rows()-1)},
		Max: Coord{clamp(s.Max.X+n, 0, p.Cols()-1), clamp(s.Max.Y+n, 0, p.Rows()-1)},
	}
}

// Cells returns the number of cells inside the search area.
func (s SearchArea) Cells() int {
	return (s.Max.X - s.Min.X + 1) * (s.Max.Y - s.Min.Y + 1)
}

// String formats the search area as its corner cells.
func (s SearchArea) String() string {
	return fmt.Sprintf("[%v..%v]", s.Min, s.Max)
}
