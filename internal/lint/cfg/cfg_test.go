package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a single function and returns its
// CFG. src is the function body without braces.
func parseBody(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachesExit reports whether Exit is reachable from Entry.
func reachesExit(g *Graph) bool {
	seen := make(map[*Block]bool)
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if seen[b] {
			return false
		}
		seen[b] = true
		if b == g.Exit {
			return true
		}
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

func TestStraightLine(t *testing.T) {
	g := parseBody(t, "x := 1\ny := 2\n_ = x + y")
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(g.Entry.Nodes))
	}
	if !reachesExit(g) {
		t.Fatal("exit unreachable")
	}
}

func TestIfElseJoins(t *testing.T) {
	g := parseBody(t, `
x := 0
if x > 0 {
	x = 1
} else {
	x = 2
}
_ = x`)
	// Entry (x:=0, cond) must have two successors: then and else.
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond successors = %d, want 2", n)
	}
	if !reachesExit(g) {
		t.Fatal("exit unreachable")
	}
}

func TestIfWithoutElseHasSkipEdge(t *testing.T) {
	g := parseBody(t, `
x := 0
if x > 0 {
	x = 1
}
_ = x`)
	if n := len(g.Entry.Succs); n != 2 {
		t.Fatalf("cond successors = %d, want 2 (then + skip)", n)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := parseBody(t, `
for i := 0; i < 10; i++ {
	_ = i
}`)
	// Find a cycle: some block must be its own ancestor.
	onPath := make(map[*Block]bool)
	seen := make(map[*Block]bool)
	var cyclic bool
	var walk func(b *Block)
	walk = func(b *Block) {
		if onPath[b] {
			cyclic = true
			return
		}
		if seen[b] {
			return
		}
		seen[b] = true
		onPath[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		onPath[b] = false
	}
	walk(g.Entry)
	if !cyclic {
		t.Fatal("for loop produced no back edge")
	}
	if !reachesExit(g) {
		t.Fatal("exit unreachable")
	}
}

func TestReturnEndsPath(t *testing.T) {
	g := parseBody(t, `
x := 1
if x > 0 {
	return
}
_ = x`)
	// The then-block's only successor must be Exit.
	var then *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				then = b
			}
		}
	}
	if then == nil {
		t.Fatal("no block holds the return")
	}
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Fatalf("return block succs = %v, want [Exit]", then.Succs)
	}
}

func TestPanicIsTerminal(t *testing.T) {
	g := parseBody(t, `
x := 1
if x > 0 {
	panic("boom")
}
_ = x`)
	var pb *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if c, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
						pb = b
					}
				}
			}
		}
	}
	if pb == nil {
		t.Fatal("no block holds the panic")
	}
	if len(pb.Succs) != 0 {
		t.Fatalf("panic block has %d successors, want 0", len(pb.Succs))
	}
}

func TestBreakSkipsLoopTail(t *testing.T) {
	g := parseBody(t, `
for {
	break
}
_ = 1`)
	if !reachesExit(g) {
		t.Fatal("break did not reach loop exit")
	}
}

func TestInfiniteLoopUnreachableExit(t *testing.T) {
	g := parseBody(t, `
for {
	_ = 1
}`)
	// for{} with no break: the statement after the loop (none here, so
	// the implicit return) is unreachable. Entry feeds the loop head
	// which cycles; no path reaches Exit through the loop... except the
	// builder links the dead after-block to Exit. Exit reachability
	// from Entry must be false.
	if reachesExit(g) {
		t.Fatal("exit reachable through infinite loop")
	}
}

func TestLabeledContinue(t *testing.T) {
	g := parseBody(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == i {
			continue outer
		}
	}
}`)
	if !reachesExit(g) {
		t.Fatal("exit unreachable with labeled continue")
	}
}

func TestSwitchWithDefaultNoSkipEdge(t *testing.T) {
	gDef := parseBody(t, `
x := 1
switch x {
case 1:
	x = 2
default:
	x = 3
}
_ = x`)
	gNoDef := parseBody(t, `
x := 1
switch x {
case 1:
	x = 2
}
_ = x`)
	// With default, head has exactly the clause bodies as successors;
	// without, one extra skip edge.
	nDef := len(gDef.Entry.Succs)
	nNoDef := len(gNoDef.Entry.Succs)
	if nDef != 2 {
		t.Fatalf("switch-with-default head succs = %d, want 2", nDef)
	}
	if nNoDef != 2 { // one clause + skip edge
		t.Fatalf("switch-no-default head succs = %d, want 2", nNoDef)
	}
}

func TestFallthroughEdge(t *testing.T) {
	g := parseBody(t, `
x := 1
y := 0
switch x {
case 1:
	y = 1
	fallthrough
case 2:
	y = 2
}
_ = y`)
	// The block containing y=1 must have an edge into a block whose
	// nodes include y=2's assignment.
	var from, to *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					switch lit.Value {
					case "1":
						if _, isDefine := n.(*ast.AssignStmt); isDefine && as.Tok.String() == "=" {
							from = b
						}
					case "2":
						if as.Tok.String() == "=" {
							to = b
						}
					}
				}
			}
		}
	}
	if from == nil || to == nil {
		t.Fatal("could not locate case bodies")
	}
	found := false
	for _, s := range from.Succs {
		if s == to {
			found = true
		}
	}
	if !found {
		t.Fatal("no fallthrough edge between consecutive cases")
	}
}

func TestGotoForwardsAndBack(t *testing.T) {
	g := parseBody(t, `
i := 0
loop:
i++
if i < 3 {
	goto loop
}
_ = i`)
	if !reachesExit(g) {
		t.Fatal("exit unreachable with goto loop")
	}
}

func TestSolveReachingAssignment(t *testing.T) {
	// A trivial "is x definitely assigned 2" analysis: fact = set of
	// variables assigned the literal 2 on ALL paths (must-analysis via
	// intersection join).
	g := parseBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 2
}
_ = x`)
	type fact map[string]bool
	clone := func(f fact) fact {
		c := make(fact, len(f))
		for k, v := range f {
			c[k] = v
		}
		return c
	}
	join := func(dst, src fact) (fact, bool) {
		changed := false
		for k := range dst {
			if !src[k] {
				delete(dst, k)
				changed = true
			}
		}
		return dst, changed
	}
	transfer := func(n ast.Node, f fact) fact {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return f
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return f
		}
		if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "2" {
			f[id.Name] = true
		} else {
			delete(f, id.Name)
		}
		return f
	}
	// Seed every block's potential fact with the universe via init on
	// entry only; for a must-analysis the first join at a merge point
	// intersects, which is what we verify below.
	in := Solve(g, fact{}, clone, join, transfer)
	exitFact := in[g.Exit]
	if exitFact == nil || !exitFact["x"] {
		t.Fatalf("x=2 on both branches but exit fact = %v", exitFact)
	}

	// Now only one branch assigns 2: must-fact at exit loses x.
	g2 := parseBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	in2 := Solve(g2, fact{}, clone, join, transfer)
	if f := in2[g2.Exit]; f != nil && f["x"] {
		t.Fatalf("x=2 on one branch only but exit fact = %v", f)
	}
}

func TestSolveLoopTerminates(t *testing.T) {
	// Gen-set analysis over a loop must reach fixpoint (finite lattice).
	g := parseBody(t, `
x := 0
for i := 0; i < 10; i++ {
	x = 2
}
_ = x`)
	type fact map[string]bool
	clone := func(f fact) fact {
		c := make(fact, len(f))
		for k, v := range f {
			c[k] = v
		}
		return c
	}
	// May-analysis: union join.
	join := func(dst, src fact) (fact, bool) {
		changed := false
		for k := range src {
			if !dst[k] {
				dst[k] = true
				changed = true
			}
		}
		return dst, changed
	}
	transfer := func(n ast.Node, f fact) fact {
		if as, ok := n.(*ast.AssignStmt); ok {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok && lit.Value == "2" {
					f[id.Name] = true
				}
			}
		}
		return f
	}
	in := Solve(g, fact{}, clone, join, transfer)
	if f := in[g.Exit]; f == nil || !f["x"] {
		t.Fatalf("may-assigned set at exit = %v, want x present", in[g.Exit])
	}
}

func TestFuncBodies(t *testing.T) {
	src := `package p
func a() { _ = 1 }
func b() {
	f := func() { _ = 2 }
	f()
}`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	bodies := FuncBodies(f)
	if len(bodies) != 3 { // a, b, and the literal inside b
		t.Fatalf("FuncBodies = %d, want 3", len(bodies))
	}
}

func TestSelectClauses(t *testing.T) {
	g := parseBody(t, `
ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}
_ = ch`)
	if !reachesExit(g) {
		t.Fatal("exit unreachable through select")
	}
}

func TestDeterministicBlockOrder(t *testing.T) {
	src := `
x := 0
if x > 0 {
	x = 1
}
for x < 5 {
	x++
}
_ = x`
	g1 := parseBody(t, src)
	g2 := parseBody(t, src)
	if len(g1.Blocks) != len(g2.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(g1.Blocks), len(g2.Blocks))
	}
	for i := range g1.Blocks {
		s1 := succIndexes(g1.Blocks[i])
		s2 := succIndexes(g2.Blocks[i])
		if s1 != s2 {
			t.Fatalf("block %d succs differ: %s vs %s", i, s1, s2)
		}
	}
}

func succIndexes(b *Block) string {
	var parts []string
	for _, s := range b.Succs {
		parts = append(parts, string(rune('a'+s.Index)))
	}
	return strings.Join(parts, ",")
}
