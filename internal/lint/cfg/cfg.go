// Package cfg builds intra-procedural control-flow graphs over the
// standard library's go/ast and runs forward dataflow analyses on them.
// It is the engine behind the lifetime- and staleness-checking analyzers
// (framelease, handlestale): where the original simlint suite matched
// single statements, these checks are assertions about *paths* — "every
// path from this NewFrame reaches exactly one ReleaseFrame", "no path
// reads this handle after Cancel without a reassignment in between" —
// and need the statement order, branch structure, and loop back-edges
// made explicit.
//
// The graph is deliberately lightweight: basic blocks hold the original
// ast.Node statements (plus loose condition expressions) in execution
// order, and edges cover if/else, for/range loops with break/continue
// (labeled or not), switch/type-switch with fallthrough, select, goto,
// and return. A `panic(...)` statement — and the well-known
// never-return calls os.Exit, log.Fatal*, and runtime.Goexit — ends its
// block with no successors, so facts on a panicking path never merge
// into the exit state (a frame need not be released on a path that
// dies).
//
// Function literals are NOT inlined: a FuncLit appearing inside a
// statement is control-flow-opaque at this level (its body runs at some
// other time). Analyzers analyze each literal's body as its own graph
// and must skip FuncLit subtrees when transferring facts over a
// statement.
package cfg

import (
	"go/ast"
)

// Block is one basic block: a maximal straight-line sequence of
// statements. Nodes holds ast.Stmt and bare ast.Expr entries (loop and
// if conditions) in execution order.
type Block struct {
	// Index orders blocks by construction; reporting passes iterate in
	// Index order so diagnostics are deterministic.
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// Graph is the control-flow graph of one function body. Entry starts
// the body; Exit is a synthetic empty block every return (and the fall
// off the end of the body) feeds into.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.labels = make(map[string]*labelInfo)
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label string
	brk   *Block // break target
	cont  *Block // continue target; nil for switch/select
}

// labelInfo tracks a label's block (created on demand by goto or by the
// labeled statement itself).
type labelInfo struct {
	block *Block
}

type builder struct {
	g      *Graph
	cur    *Block
	scopes []scope
	labels map[string]*labelInfo
	// pendingLabel carries a statement label into the loop/switch it
	// annotates, so labeled break/continue resolve to the right scope.
	pendingLabel string
	// fallthroughTo is the next case body while building a switch
	// clause.
	fallthroughTo *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock switches building to a fresh block WITHOUT linking it to
// the current one (used after return/panic/goto: following statements
// are unreachable until something jumps to them).
func (b *builder) startBlock() {
	b.cur = b.newBlock()
}

func (b *builder) labelBlock(name string) *Block {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock()}
		b.labels[name] = li
	}
	return li.block
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, head)
			cont = post
		}
		body := b.newBlock()
		b.edge(head, body)
		b.scopes = append(b.scopes, scope{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, cont)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt itself carries X and the Key/Value bindings;
		// analyzers see it once per iteration.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)
		b.scopes = append(b.scopes, scope{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edge(b.cur, head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(s.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		b.switchClauses(s.Body.List, label, true)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.startBlock()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.ExprStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if terminalStmt(s) {
			b.startBlock()
		}

	default:
		// Unknown statement kinds are treated as straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses builds the clause structure shared by switch,
// type-switch (isSelect=false) and select (isSelect=true). head is the
// current block when called.
func (b *builder) switchClauses(clauses []ast.Stmt, label string, isSelect bool) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false

	// First pass: create each clause's body block so fallthrough can
	// target the next one.
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		body := bodies[i]
		b.edge(head, body)
		b.scopes = append(b.scopes, scope{label: label, brk: after})
		b.cur = body
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				body.Nodes = append(body.Nodes, e)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				body.Nodes = append(body.Nodes, cs.Comm)
			}
			stmts = cs.Body
		}
		if i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(stmts)
		b.fallthroughTo = nil
		b.edge(b.cur, after)
		b.scopes = b.scopes[:len(b.scopes)-1]
	}
	// A switch without a default (or an empty select) may execute no
	// clause at all. A select without a default always runs one clause,
	// but treating the no-clause edge as possible is a safe
	// over-approximation either way.
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, after)
	}
	_ = isSelect
	b.cur = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if s.Label == nil || sc.label == s.Label.Name {
				b.edge(b.cur, sc.brk)
				b.startBlock()
				return
			}
		}
	case "continue":
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.cont == nil {
				continue
			}
			if s.Label == nil || sc.label == s.Label.Name {
				b.edge(b.cur, sc.cont)
				b.startBlock()
				return
			}
		}
	case "goto":
		if s.Label != nil {
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		}
		b.startBlock()
		return
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.edge(b.cur, b.fallthroughTo)
		}
		b.startBlock()
		return
	}
	// Unresolvable break/continue (malformed source): fall through as
	// straight-line.
	b.startBlock()
}

// terminalStmt reports whether the statement never returns control:
// panic(...) and the conventional never-return calls. Purely syntactic —
// the builder has no type information — but these names are
// unambiguous in practice.
func terminalStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}

// Solve runs a forward dataflow analysis over g to fixpoint and returns
// the fact holding at the ENTRY of each reachable block. Analyzers then
// make a deterministic reporting pass: walk Blocks in Index order,
// re-apply transfer from each block's entry fact, and report as they
// go.
//
//   - init is the fact at function entry.
//   - clone must deep-copy a fact (transfer may mutate its argument).
//   - join merges src into dst, reporting whether dst changed; it must
//     be monotone over a finite-height lattice or Solve will not
//     terminate.
//   - transfer applies one Block node (a statement or a bare condition
//     expression) to the fact and returns the outgoing fact.
//
// Blocks unreachable from Entry have no map entry.
func Solve[F any](g *Graph, init F, clone func(F) F, join func(dst, src F) (F, bool), transfer func(n ast.Node, f F) F) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = init
	queued := make([]bool, len(g.Blocks))
	work := []*Block{g.Entry}
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		f := clone(in[blk])
		for _, n := range blk.Nodes {
			f = transfer(n, f)
		}
		for _, s := range blk.Succs {
			cur, ok := in[s]
			changed := false
			if !ok {
				in[s] = clone(f)
				changed = true
			} else if merged, ch := join(cur, f); ch {
				in[s] = merged
				changed = true
			}
			if changed && !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// FuncBodies returns every function body in the file in source order:
// declarations first at their position, then each function literal —
// the unit the CFG analyzers iterate over. Literal bodies are returned
// separately (and must be skipped while walking the enclosing body's
// statements, see the package comment).
func FuncBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}
