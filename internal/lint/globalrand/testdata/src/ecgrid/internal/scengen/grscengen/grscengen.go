// Package grscengen exercises globalrand inside the scenario-generator
// package path: every draw a placer or mobility factory makes must come
// from a named sim.RNG stream, never the process-global source — one
// stray global draw would shift every other consumer's sequence and
// change the expanded scenario.
package grscengen

import "math/rand"

func hits() (float64, float64) {
	x := rand.Float64()     // want `global rand.Float64 draws from the process-wide source`
	y := rand.NormFloat64() // want `global rand.NormFloat64`
	rand.Shuffle(2, noop)   // want `global rand.Shuffle`
	return x, y
}

func noop(i, j int) {}

func clean(stream *rand.Rand) (float64, float64) {
	// Drawing from an injected stream is the generator's contract.
	return stream.Float64(), stream.NormFloat64()
}
