// Package grshard exercises globalrand inside the sharded-engine
// package path: the audit's sampling draws must come from a named
// sim.RNG stream — a global draw would consume from the process-wide
// source in worker-scheduling order and break run-twice determinism.
package grshard

import "math/rand"

func hits(k int) int {
	s := rand.Intn(k)     // want `global rand.Intn draws from the process-wide source`
	_ = rand.Float64()    // want `global rand.Float64`
	rand.Shuffle(k, noop) // want `global rand.Shuffle`
	return s
}

func noop(i, j int) {}

func clean(r *rand.Rand, k int) int {
	// Sampling from an injected per-run stream is the audit's contract.
	return r.Intn(k)
}
