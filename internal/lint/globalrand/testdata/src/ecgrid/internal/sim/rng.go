// Package sim mirrors internal/sim: rng.go is the one file exempt from
// the globalrand ban (it is the stream factory itself).
package sim

import "math/rand"

// FromGlobal would be flagged anywhere else in the repo.
func FromGlobal() int { return rand.Intn(3) }
