package sim

import "math/rand"

// sameDirHit proves the exemption is per-file, not per-package.
func sameDirHit() int {
	return rand.Intn(3) // want `global rand.Intn`
}
