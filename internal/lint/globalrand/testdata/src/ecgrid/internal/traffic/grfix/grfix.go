// Package grfix exercises globalrand: the ban applies in every package,
// but private generators and *rand.Rand methods stay legal.
package grfix

import "math/rand"

func hits() int {
	rand.Seed(7)          // want `global rand.Seed draws from the process-wide source`
	x := rand.Intn(10)    // want `global rand.Intn`
	_ = rand.Float64()    // want `global rand.Float64`
	rand.Shuffle(3, noop) // want `global rand.Shuffle`
	_ = rand.Perm(4)      // want `global rand.Perm`
	f := rand.ExpFloat64  // want `global rand.ExpFloat64`
	_ = f
	return x
}

func noop(i, j int) {}

func clean(r *rand.Rand) int {
	// Constructing and using a private, explicitly seeded generator is
	// exactly what sim.RNG streams do.
	s := rand.New(rand.NewSource(42))
	return s.Intn(10) + r.Intn(10)
}
