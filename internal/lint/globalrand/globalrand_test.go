package globalrand_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "testdata", globalrand.Analyzer,
		"ecgrid/internal/traffic/grfix",     // banned everywhere; constructors legal
		"ecgrid/internal/scengen/grscengen", // generator draws must come from streams
		"ecgrid/internal/shard/grshard",     // audit sampling must come from streams
		"ecgrid/internal/sim",               // rng.go exempt, sibling file not
	)
}
