// Package globalrand bans the top-level math/rand convenience functions
// (rand.Intn, rand.Float64, rand.Seed, ...) everywhere in the repo
// except internal/sim/rng.go. Those functions draw from a process-global
// source, so one extra draw anywhere perturbs every other consumer —
// the opposite of the named, independently-seeded sim.RNG streams the
// simulator is built on. Constructing private generators
// (rand.New(rand.NewSource(seed))) is allowed; that is exactly what
// sim.RNG does.
package globalrand

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"ecgrid/internal/lint"
)

// Analyzer is the globalrand check.
var Analyzer = &lint.Analyzer{
	Name: "globalrand",
	Doc:  "bans global math/rand functions; randomness must flow through named sim.RNG streams",
	Run:  run,
}

// banned lists the math/rand (and math/rand/v2) package-level functions
// that draw from the shared global source. Constructors (New, NewSource,
// NewZipf, NewPCG, NewChaCha8) stay legal.
var banned = map[string]bool{
	"Seed":        true,
	"Int":         true,
	"Intn":        true,
	"IntN":        true,
	"Int31":       true,
	"Int31n":      true,
	"Int32":       true,
	"Int32N":      true,
	"Int63":       true,
	"Int63n":      true,
	"Int64":       true,
	"Int64N":      true,
	"Uint":        true,
	"UintN":       true,
	"Uint32":      true,
	"Uint32N":     true,
	"Uint64":      true,
	"Uint64N":     true,
	"Float32":     true,
	"Float64":     true,
	"ExpFloat64":  true,
	"NormFloat64": true,
	"Perm":        true,
	"Shuffle":     true,
	"Read":        true,
	"N":           true,
}

// exemptSuffix is the one file allowed to touch math/rand globals: the
// stream factory itself.
const exemptSuffix = "/internal/sim/rng.go"

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !banned[fn.Name()] {
				return true
			}
			if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // *rand.Rand methods are fine: that is a named stream
			}
			file := filepath.ToSlash(pass.Pkg.Fset.Position(sel.Pos()).Filename)
			if strings.HasSuffix(file, exemptSuffix) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"global rand.%s draws from the process-wide source; use a named sim.RNG stream instead",
				fn.Name())
			return true
		})
	}
	return nil
}
