// Package wtfaults exercises walltime inside the fault-injection
// package path: fault timing must come from the simulation clock, never
// the host's.
package wtfaults

import "time"

func hit() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

func suppressed() time.Time {
	return time.Now() //simlint:walltime stamps a debug trace, never enters sim state
}

func clean(downtime float64) time.Duration {
	return time.Duration(downtime * float64(time.Second))
}
