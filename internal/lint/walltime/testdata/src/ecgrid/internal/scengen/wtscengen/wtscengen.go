// Package wtscengen exercises walltime inside the scenario-generator
// package path: generated mobility and traffic run on simulated time,
// so a wall-clock read during expansion would tie the scenario to the
// host instead of the seed.
package wtscengen

import "time"

func hit() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

func suppressed() time.Time {
	return time.Now() //simlint:walltime generation progress log, never enters the scenario
}

func clean(meanOnS float64) time.Duration {
	return time.Duration(meanOnS * float64(time.Second))
}
