// Package wtradio exercises walltime inside the radio package path:
// drift deadlines and the carrier-sense memo are keyed by simulation
// instants, and a wall-clock read there would tie cache validity to
// host time instead of event time.
package wtradio

import "time"

func hit() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

func suppressed() time.Time {
	return time.Now() //simlint:walltime cache-telemetry timestamp, never reaches the engine
}

func clean(safeUntil, now float64) bool {
	return now < safeUntil
}
