// Package wtshard exercises walltime inside the sharded-engine package
// path: window boundaries and lookahead horizons are simulation time,
// never the host clock. The one legitimate wall-clock use — stall
// telemetry around the commit barrier — must carry a suppression.
package wtshard

import "time"

func hit() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

func suppressed() time.Duration {
	start := time.Now() //simlint:walltime stall telemetry only, never simulation state
	return time.Since(start)
}

func clean(window, lookahead float64) float64 {
	return window + lookahead
}
