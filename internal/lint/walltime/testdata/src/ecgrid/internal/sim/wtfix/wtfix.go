// Package wtfix exercises walltime inside a simulation-scoped package
// path.
package wtfix

import "time"

func hits() time.Duration {
	start := time.Now()          // want `time.Now in a simulation package`
	time.Sleep(time.Millisecond) // want `time.Sleep in a simulation package`
	elapsed := time.Since(start) // want `time.Since in a simulation package`
	t := time.NewTimer(elapsed)  // want `time.NewTimer in a simulation package`
	t.Reset(elapsed)             // method on Timer: not a wall-clock read
	<-time.After(elapsed)        // want `time.After in a simulation package`
	return elapsed
}

func suppressed() time.Time {
	return time.Now() //simlint:walltime log timestamp for a debug dump, never enters sim state
}

func clean(d time.Duration) time.Duration {
	// Types, constants, and conversions from package time are fine;
	// only wall-clock reads and host timers are banned.
	return d + 2*time.Second
}
