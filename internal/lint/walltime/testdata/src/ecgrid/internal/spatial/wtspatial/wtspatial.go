// Package wtspatial exercises walltime inside the spatial-index package
// path: re-bucket events are scheduled in simulation time, and any
// wall-clock read there would leak host time into event order.
package wtspatial

import "time"

func hit() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

func suppressed() time.Time {
	return time.Now() //simlint:walltime profiling aid, never reaches the engine
}

func clean(rebucketDelay float64) time.Duration {
	return time.Duration(rebucketDelay * float64(time.Second))
}
