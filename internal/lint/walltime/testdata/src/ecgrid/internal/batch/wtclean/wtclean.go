// Package wtclean lives outside the simulation scope: tooling code may
// read the wall clock (progress reporting, manifest timestamps).
package wtclean

import "time"

func Stamp() time.Time {
	time.Sleep(0)
	return time.Now()
}
