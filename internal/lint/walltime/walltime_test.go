package walltime_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/walltime"
)

func TestWallTime(t *testing.T) {
	analysistest.Run(t, "testdata", walltime.Analyzer,
		"ecgrid/internal/sim/wtfix",         // in scope: hits and suppressions
		"ecgrid/internal/faults/wtfaults",   // in scope: fault timing is sim time
		"ecgrid/internal/spatial/wtspatial", // in scope: re-bucketing is sim time
		"ecgrid/internal/scengen/wtscengen", // in scope: generation is sim-seeded
		"ecgrid/internal/shard/wtshard",     // in scope: windows are sim time
		"ecgrid/internal/radio/wtradio",     // in scope: drift deadlines are sim time
		"ecgrid/internal/batch/wtclean",     // out of scope: no diagnostics
	)
}
