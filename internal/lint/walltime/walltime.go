// Package walltime bans wall-clock and host-timer calls inside
// simulation packages. Simulated time advances only through the
// discrete-event engine (sim.Engine.Now / Schedule); a time.Now or
// time.Sleep in protocol code couples results to host load and makes
// runs irreproducible. The ban covers reading the clock (Now, Since,
// Until) and host-time scheduling (Sleep, After, Tick, AfterFunc,
// NewTimer, NewTicker).
//
// Tooling code that genuinely needs host time does not belong in a
// simulation package; in the rare legitimate case annotate the line:
//
//	start := time.Now() //simlint:walltime profiling a debug build
package walltime

import (
	"go/ast"
	"go/types"

	"ecgrid/internal/lint"
)

// Analyzer is the walltime check.
var Analyzer = &lint.Analyzer{
	Name: "walltime",
	Doc:  "bans time.Now/Since/Sleep and host timers in simulation packages; simulated time comes from the engine",
	Run:  run,
}

var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *lint.Pass) error {
	if !lint.InScope(pass.Pkg.Path, lint.SimPackages) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method like Timer.Reset, not package-level
			}
			if pass.Suppressed(sel, "walltime") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in a simulation package: simulated time must come from the engine (host.Now / Engine.Schedule)",
				fn.Name())
			return true
		})
	}
	return nil
}
