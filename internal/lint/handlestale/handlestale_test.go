package handlestale_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/handlestale"
)

func TestHandleStale(t *testing.T) {
	analysistest.Run(t, "testdata", handlestale.Analyzer,
		"ecgrid/internal/sim")
}
