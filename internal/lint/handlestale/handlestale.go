// Package handlestale checks the generation-counter handle discipline
// around the pooled event engine (DESIGN.md §7): after canceling the
// event behind a `sim.Handle` *field*, the owner must zero or reassign
// the field before the function returns, and must not read it again on
// the same path. A handle that survives its Cancel points at a pooled
// event that will be recycled; a later Reschedule or Cancel through it
// is at best a silent no-op and at worst re-targets an unrelated event
// once the generation counter wraps into a newly scheduled one.
//
// The canonical idiom the analyzer pins (internal/node/node.go,
// internal/spatial/spatial.go):
//
//	h.engine.Cancel(h.cellEv)
//	h.cellEv = sim.Handle{}
//
// Only selector expressions (fields) are tracked: a local handle dies
// with its stack frame, so cancel-and-return on a local is harmless.
// The analysis is a may-analysis over the control-flow graph — a path
// that cancels and a path that doesn't merge into "maybe canceled", and
// any read or fall-off-the-end on the canceled side is reported.
//
// Deliberate exceptions carry an annotation on the Cancel line:
//
//	//simlint:stale <one-line justification>
package handlestale

import (
	"go/ast"
	"go/token"
	"go/types"

	"ecgrid/internal/lint"
	"ecgrid/internal/lint/cfg"
)

// Analyzer is the handlestale check.
var Analyzer = &lint.Analyzer{
	Name: "handlestale",
	Doc:  "checks that canceled sim.Handle fields are zeroed before return and never read after Cancel",
	Run:  run,
}

// fact maps the canceled field's textual key (types.ExprString) to the
// position of the Cancel that dirtied it.
type fact map[string]token.Pos

func cloneFact(f fact) fact {
	c := make(fact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// joinFact unions (may-analysis): a field canceled on any incoming path
// is dirty. The recorded position is the earliest token.Pos for
// determinism when two Cancels merge.
func joinFact(dst, src fact) (fact, bool) {
	changed := false
	for k, p := range src {
		if old, ok := dst[k]; !ok || p < old {
			dst[k] = p
			changed = true
		}
	}
	return dst, changed
}

func run(pass *lint.Pass) error {
	if !lint.InScope(pass.Pkg.Path, lint.SimPackages) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, body := range cfg.FuncBodies(f) {
			checkBody(pass, body)
		}
	}
	return nil
}

func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	a := &analysis{pass: pass}
	g := cfg.New(body)
	in := cfg.Solve(g, fact{}, cloneFact, joinFact,
		func(n ast.Node, f fact) fact { return a.transfer(n, f, nil) })
	if !a.sawCancel {
		return
	}

	reported := make(map[string]bool)
	reportf := func(pos token.Pos, format string, args ...any) {
		key := pass.Pkg.Fset.Position(pos).String() + format
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, format, args...)
	}
	for _, blk := range g.Blocks {
		f, ok := in[blk]
		if !ok {
			continue
		}
		f = cloneFact(f)
		for _, n := range blk.Nodes {
			f = a.transfer(n, f, reportf)
		}
		if blk == g.Exit {
			continue
		}
		for _, s := range blk.Succs {
			if s != g.Exit {
				continue
			}
			for key, pos := range f {
				reportf(pos,
					"canceled handle %s is not cleared before return: assign sim.Handle{} (or annotate //simlint:stale)",
					key)
			}
		}
	}
}

type analysis struct {
	pass      *lint.Pass
	sawCancel bool
}

type reporter func(pos token.Pos, format string, args ...any)

func (a *analysis) transfer(n ast.Node, f fact, report reporter) fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Reads on the RHS first, then LHS assignments clear.
		for _, rhs := range n.Rhs {
			a.checkReads(rhs, f, report)
		}
		for _, lhs := range n.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				delete(f, types.ExprString(sel))
			}
			// Reads inside an index expression on the LHS (m[h.x] = ...)
			// still count.
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				a.checkReads(ix.Index, f, report)
			}
		}
	case *ast.ExprStmt:
		a.stmtExpr(n.X, n, f, report)
	case *ast.DeferStmt:
		a.stmtExpr(n.Call, n, f, report)
	case *ast.GoStmt:
		a.stmtExpr(n.Call, n, f, report)
	case ast.Stmt:
		a.checkReads(n, f, report)
	case ast.Expr:
		a.checkReads(n, f, report)
	}
	return f
}

// stmtExpr handles an expression statement: a Cancel call marks its
// handle dirty; anything else is scanned for reads.
func (a *analysis) stmtExpr(e ast.Expr, at ast.Node, f fact, report reporter) {
	if call, ok := e.(*ast.CallExpr); ok {
		if key, ok := a.cancelKey(call); ok {
			// Arguments other than the handle itself are still reads;
			// re-canceling an already-dirty handle is a harmless no-op
			// (generation counters make Cancel idempotent), so the
			// handle argument is not treated as a read.
			if !a.pass.Suppressed(at, "stale") {
				a.sawCancel = true
				if _, dirty := f[key]; !dirty {
					f[key] = call.Pos()
				}
			}
			return
		}
	}
	a.checkReads(e, f, report)
}

// cancelKey matches `<recv>.Cancel(x.field)` where the argument's type
// is the named type Handle from a package named "sim", and returns the
// field's textual key.
func (a *analysis) cancelKey(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Cancel" || len(call.Args) != 1 {
		return "", false
	}
	arg, ok := call.Args[0].(*ast.SelectorExpr)
	if !ok {
		return "", false // locals die with the frame; only fields tracked
	}
	if !isSimHandle(a.pass.Pkg.Info.Types[arg].Type) {
		return "", false
	}
	return types.ExprString(arg), true
}

func isSimHandle(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Handle" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// checkReads reports any use of a dirty handle key inside the subtree,
// skipping nested function literals (they execute later, typically as
// the rescheduled callback that re-arms the field).
func (a *analysis) checkReads(n ast.Node, f fact, report reporter) {
	if n == nil || len(f) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectorExpr:
			key := types.ExprString(n)
			if pos, dirty := f[key]; dirty {
				if report != nil {
					_ = pos
					report(n.Pos(), "handle %s read after Cancel without reassignment on this path", key)
				}
				return false
			}
		}
		return true
	})
}
