// Fixture for the handlestale analyzer. The package is named sim so the
// locally defined Handle type satisfies the analyzer's "named type
// Handle from a package named sim" shape — fixtures cannot import the
// real module packages.
package sim

type Handle struct{ gen uint64 }

type Engine struct{}

func (e *Engine) Cancel(h Handle)                      {}
func (e *Engine) Schedule(d float64, fn func()) Handle { return Handle{} }
func (e *Engine) Reschedule(h Handle, d float64) bool  { return false }
func (e *Engine) At(t float64, fn func()) Handle       { return Handle{} }

type owner struct {
	engine *Engine
	ev     Handle
	aux    Handle
}

// stopClean is the canonical idiom: cancel, then zero.
func (o *owner) stopClean() {
	o.engine.Cancel(o.ev)
	o.ev = Handle{}
}

// stopLeak cancels without clearing: the field keeps pointing at a
// recycled pooled event.
func (o *owner) stopLeak() {
	o.engine.Cancel(o.ev) // want `canceled handle o\.ev is not cleared before return`
}

// readAfterCancel uses the stale handle before reassigning it.
func (o *owner) readAfterCancel() {
	o.engine.Cancel(o.ev)
	o.engine.Reschedule(o.ev, 1) // want `handle o\.ev read after Cancel without reassignment`
	o.ev = Handle{}
}

// branchLeak clears on one path only; the other reaches return dirty.
func (o *owner) branchLeak(b bool) {
	o.engine.Cancel(o.ev) // want `canceled handle o\.ev is not cleared before return`
	if b {
		o.ev = Handle{}
	}
}

// rearm reassigns from a fresh Schedule — as good as zeroing.
func (o *owner) rearm() {
	o.engine.Cancel(o.ev)
	o.ev = o.engine.Schedule(1, func() {})
}

// rearmBothBranches clears on every path.
func (o *owner) rearmBothBranches(b bool) {
	o.engine.Cancel(o.ev)
	if b {
		o.ev = Handle{}
	} else {
		o.ev = o.engine.At(2, func() {})
	}
}

// localHandle is not tracked: a local dies with the stack frame.
func (o *owner) localHandle() {
	h := o.engine.Schedule(1, func() {})
	o.engine.Cancel(h)
}

// annotated carries a justification for leaving the field dirty.
func (o *owner) annotated() {
	o.engine.Cancel(o.ev) //simlint:stale owner struct is discarded by the caller
}

// twoFields tracks each field independently.
func (o *owner) twoFields() {
	o.engine.Cancel(o.ev)
	o.engine.Cancel(o.aux) // want `canceled handle o\.aux is not cleared before return`
	o.ev = Handle{}
}

// callbackMayTouch: reads inside a function literal are not reads on
// this path — the literal runs later, typically as the rescheduled
// callback that re-arms the field.
func (o *owner) callbackMayTouch() {
	o.engine.Cancel(o.ev)
	o.ev = o.engine.Schedule(1, func() { o.ev = Handle{} })
}
