// Package lintfix is a framework-test fixture: it carries //simlint:
// directives in every supported placement plus look-alike comments that
// must NOT register as directives.
package lintfix

func Sweep(m map[string]int) {
	for k := range m { //simlint:ordered deletion-only sweep
		delete(m, k)
	}
	//simlint:ordered annotated on the line above
	for k := range m {
		delete(m, k)
	}
	// simlint:ordered has a space after the slashes: not a directive
	for k := range m {
		delete(m, k)
	}
	for k := range m {
		delete(m, k)
	}
}
