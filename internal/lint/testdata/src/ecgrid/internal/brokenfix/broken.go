// Package brokenfix deliberately fails type-checking in two distinct
// places; the loader test asserts both errors surface in one pass.
package brokenfix

func wrongReturn() int {
	return "not an int"
}

func callsUndefined() {
	definitelyNotDefined()
}
