package rngstream_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/rngstream"
)

func TestRNGStream(t *testing.T) {
	analysistest.Run(t, "testdata", rngstream.Analyzer,
		"ecgrid/internal/sim",           // registry constants legal; rng.go exempt
		"ecgrid/internal/runner/rsuse",  // non-sim constants flagged
		"ecgrid/internal/shard/rsshard", // improvised audit-family names flagged
		"ecgrid/internal/shard/rshoist", // hoisted registry names need annotation
	)
}
