// Package rngstream enforces the RNG stream-name registry: every call
// to an RNG method that names a stream (Stream, Uniform, Intn, Exp,
// Perm) must pass a constant declared in the sim package — directly, or
// as the format of an fmt.Sprintf over such a constant for indexed
// families like per-host mobility streams.
//
// Stream names partition the deterministic random sequence (DESIGN.md
// §8): two call sites that improvise the same literal silently share a
// stream and perturb each other's draws, and a renamed ad-hoc literal
// changes every figure downstream. Centralizing the names in
// internal/sim/streams.go makes collisions a compile-time duplicate
// and drift a lint failure — a prerequisite for sharding streams
// across parallel-DES partitions, where per-shard suffixes must be
// derived from one registry.
//
// Legal:
//
//	rng.Uniform(sim.StreamPlacement, 0, w)
//	rng.Stream(fmt.Sprintf(sim.StreamMobility, i))
//
// Flagged:
//
//	rng.Uniform("place", 0, w)            // raw literal
//	rng.Stream(fmt.Sprintf("mob.%d", i))  // literal format
//
// The RNG's own method bodies forward the caller's name parameter and
// are exempt by file (internal/sim/rng.go). Other exceptions annotate
// the call line with //simlint:stream <why>.
package rngstream

import (
	"go/ast"
	"go/types"
	"strings"

	"ecgrid/internal/lint"
)

// Analyzer is the rngstream check.
var Analyzer = &lint.Analyzer{
	Name: "rngstream",
	Doc:  "requires RNG stream names to be constants from the sim package registry (internal/sim/streams.go)",
	Run:  run,
}

// streamMethods are the RNG methods whose first argument names a stream.
var streamMethods = map[string]bool{
	"Stream":  true,
	"Uniform": true,
	"Intn":    true,
	"Exp":     true,
	"Perm":    true,
}

// exemptSuffix: the RNG implementation itself forwards its name
// parameter (Uniform calls r.Stream(name)); those interior calls cannot
// be registry constants.
const exemptSuffix = "/internal/sim/rng.go"

func run(pass *lint.Pass) error {
	for _, f := range pass.Pkg.Files {
		filename := pass.Pkg.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, exemptSuffix) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !streamMethods[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if !isRNGReceiver(pass.Pkg.Info, sel.X) {
				return true
			}
			if registryName(pass.Pkg.Info, call.Args[0]) {
				return true
			}
			if pass.Suppressed(call, "stream") {
				return true
			}
			pass.Reportf(call.Args[0].Pos(),
				"RNG stream name must be a sim package constant (internal/sim/streams.go) or fmt.Sprintf over one; got %s",
				types.ExprString(call.Args[0]))
			return true
		})
	}
	return nil
}

// isRNGReceiver reports whether e's type is (a pointer to) a named type
// RNG.
func isRNGReceiver(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "RNG"
}

// registryName reports whether e is a constant declared in a package
// named "sim", or fmt.Sprintf whose format argument is one.
func registryName(info *types.Info, e ast.Expr) bool {
	if isSimConst(info, e) {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" {
		return false
	}
	if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "fmt" {
		return false
	}
	return isSimConst(info, call.Args[0])
}

// isSimConst resolves e to a declared constant whose package is named
// "sim". (Fixture mini-packages named sim satisfy this the same way the
// real registry does.)
func isSimConst(info *types.Info, e ast.Expr) bool {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj, ok := info.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}
