// Package rshoist checks rngstream against the hoisted-name pattern
// the shard coordinator uses: per-shard audit stream names are minted
// once from the registry (fmt.Sprintf over sim.StreamShardAudit) and
// stored in a slice, so the draw site passes a variable the analyzer
// cannot trace to the registry and must be annotated — while an
// unannotated variable name is still flagged, keeping improvised
// caches visible.
package rshoist

type RNG struct{}

func (r *RNG) Intn(name string, n int) int { return 0 }

type coordinator struct {
	rng     *RNG
	streams []string
}

func audit(c *coordinator, s, n int) int {
	//simlint:stream streams[s] is fmt.Sprintf(sim.StreamShardAudit, s), hoisted at construction
	i := c.rng.Intn(c.streams[s], n)
	return i
}

func unannotated(c *coordinator, s, n int) int {
	return c.rng.Intn(c.streams[s], n) // want `RNG stream name must be a sim package constant`
}
