// Package rsshard checks rngstream in the sharded-engine package path:
// the per-shard audit stream family must be minted by the central
// registry (sim.StreamShardAudit), never an improvised literal — two
// shards formatting the same ad-hoc name would silently share a stream.
package rsshard

import "fmt"

type RNG struct{}

func (r *RNG) Intn(name string, n int) int { return 0 }

const localAudit = "shard.audit.%d" // a local const is not the registry

func use(r *RNG, s int) {
	r.Intn(fmt.Sprintf(localAudit, s), 8)       // want `RNG stream name must be a sim package constant`
	r.Intn(fmt.Sprintf("shard.audit.%d", s), 8) // want `RNG stream name must be a sim package constant`
}
