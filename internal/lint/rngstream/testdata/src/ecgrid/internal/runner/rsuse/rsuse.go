// Package rsuse checks that constants declared OUTSIDE the sim package
// do not satisfy rngstream: only the central registry
// (internal/sim/streams.go) may mint stream names.
package rsuse

type RNG struct{}

func (r *RNG) Uniform(name string, lo, hi float64) float64 { return lo }

const localPlace = "place" // a local const is not the registry

func use(r *RNG) {
	r.Uniform(localPlace, 0, 1) // want `RNG stream name must be a sim package constant`
	r.Uniform("raw", 0, 1)      // want `RNG stream name must be a sim package constant`
}
