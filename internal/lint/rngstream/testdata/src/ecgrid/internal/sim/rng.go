// The RNG implementation file is exempt by suffix: its methods forward
// the caller-supplied name parameter, which can never be a registry
// constant at this level.
package sim

func (r *RNG) forwarded(name string) float64 {
	r.Stream(name)
	return r.Uniform(name, 0, 1)
}
