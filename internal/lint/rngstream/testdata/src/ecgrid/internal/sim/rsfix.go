// Fixture for the rngstream analyzer. The package is named sim so its
// constants count as registry constants, the same way the real
// internal/sim/streams.go does.
package sim

import "fmt"

type RNG struct{}

func (r *RNG) Stream(name string) *RNG                     { return r }
func (r *RNG) Uniform(name string, lo, hi float64) float64 { return lo }
func (r *RNG) Intn(name string, n int) int                 { return 0 }
func (r *RNG) Exp(name string, mean float64) float64       { return mean }
func (r *RNG) Perm(name string, n int) []int               { return nil }

const (
	StreamPlacement = "place"
	StreamMobility  = "mob.%d"
)

func use(r *RNG, i int) {
	r.Uniform(StreamPlacement, 0, 1)         // registry constant
	r.Stream(fmt.Sprintf(StreamMobility, i)) // Sprintf over a registry constant
	r.Uniform("place", 0, 1)                 // want `RNG stream name must be a sim package constant`
	r.Stream(fmt.Sprintf("mob.%d", i))       // want `RNG stream name must be a sim package constant`
	name := "adhoc"
	r.Intn(name, 3)         // want `RNG stream name must be a sim package constant`
	r.Perm(pick(), 4)       // want `RNG stream name must be a sim package constant`
	r.Exp("one-off", 2)     //simlint:stream scratch stream in a throwaway experiment
	notRNG{}.Stream("free") // non-RNG receiver: out of scope
}

func pick() string { return "p" }

type notRNG struct{}

func (notRNG) Stream(name string) {}
