// Package mrfaults exercises maprange inside the fault-injection
// package path, which joined the simulation scope when internal/faults
// began scheduling events and drawing from seeded RNG streams.
package mrfaults

import "sort"

type plan struct {
	crashed map[int]float64
}

func hit(p *plan) float64 {
	total := 0.0
	for _, at := range p.crashed { // want `range over map p.crashed`
		total += at
	}
	return total
}

func suppressed(p *plan) []int {
	hosts := make([]int, 0, len(p.crashed))
	//simlint:ordered hosts are sorted before scheduling
	for h := range p.crashed {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	return hosts
}

func clean(crashes []float64) float64 {
	last := 0.0
	for _, at := range crashes {
		if at > last {
			last = at
		}
	}
	return last
}
