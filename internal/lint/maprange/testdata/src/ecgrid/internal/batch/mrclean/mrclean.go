// Package mrclean lives outside the simulation scope: map ranges here
// never reach simulation state and must not be flagged.
package mrclean

func Sum(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
