// Package mrspatial exercises maprange inside the spatial-index package
// path: the index promises candidate order independent of map hash
// order, so a range over its id-keyed bookkeeping is exactly the bug
// the analyzer exists to catch.
package mrspatial

type index struct {
	byID  map[int]*struct{ cell int }
	cells [][]int
}

func hit(ix *index) int {
	n := 0
	for range ix.byID { // want `range over map ix.byID`
		n++
	}
	return n
}

func suppressed(ix *index) int {
	worst := -1
	//simlint:ordered existence scan only; the max is order-free
	for _, e := range ix.byID {
		if e.cell > worst {
			worst = e.cell
		}
	}
	return worst
}

func clean(ix *index) int {
	n := 0
	for _, bucket := range ix.cells {
		n += len(bucket)
	}
	return n
}
