// Package mrradio exercises maprange inside the radio package path,
// which joined the simulation scope with the receiver-plane cache: the
// channel rebuilds order-sensitive candidate lists from its station
// map, where iteration order leaking into the admitted receiver order
// would change metric bytes run to run.
package mrradio

import "sort"

type station struct{ listening bool }

type channel struct {
	stations map[int]*station
}

func admitOrder(c *channel) []int {
	var ids []int
	for id := range c.stations { // want `range over map c.stations`
		ids = append(ids, id)
	}
	return ids
}

func suppressed(c *channel) []int {
	ids := make([]int, 0, len(c.stations))
	//simlint:ordered candidate keys are sorted before any admission
	for id := range c.stations {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func clean(order []int, c *channel) int {
	n := 0
	for _, id := range order {
		if c.stations[id].listening {
			n++
		}
	}
	return n
}
