// Package mrshard exercises maprange inside the sharded-engine package
// path, which joined the simulation scope when internal/shard began
// partitioning hosts and committing events on the engine's clock: a
// map-ordered iteration over group membership would reorder ownership
// handoffs between runs.
package mrshard

import "sort"

type plan struct {
	members map[int][]int
}

func hit(p *plan) int {
	total := 0
	for _, hosts := range p.members { // want `range over map p.members`
		total += len(hosts)
	}
	return total
}

func suppressed(p *plan) []int {
	groups := make([]int, 0, len(p.members))
	//simlint:ordered groups are sorted before any handoff is applied
	for g := range p.members {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	return groups
}

func clean(lists [][]int) int {
	total := 0
	for _, hosts := range lists {
		total += len(hosts)
	}
	return total
}
