// Package mrras exercises maprange inside the paging-bus package path,
// in scope since the bus began caching its sorted ID list: a page
// sweep waking hosts in map order instead of the rebuilt sorted cache
// would consume paging-loss draws in a different order every process.
package mrras

import "sort"

type sw struct{ asleep bool }

type bus struct {
	switches map[int]*sw
}

func wakeSweep(b *bus) int {
	woken := 0
	for _, s := range b.switches { // want `range over map b.switches`
		if s.asleep {
			woken++
		}
	}
	return woken
}

func rebuildIDs(b *bus) []int {
	ids := make([]int, 0, len(b.switches))
	//simlint:ordered output is sorted below
	for id := range b.switches {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func clean(ids []int, b *bus) int {
	woken := 0
	for _, id := range ids {
		if b.switches[id].asleep {
			woken++
		}
	}
	return woken
}
