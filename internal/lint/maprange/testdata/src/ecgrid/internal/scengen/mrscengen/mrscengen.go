// Package mrscengen exercises maprange inside the scenario-generator
// package path: generated placements and group references are built from
// maps keyed by cluster and group ids, and ranging over them would make
// the expansion depend on map hash order — the exact nondeterminism the
// generator's stream discipline exists to prevent.
package mrscengen

type expansion struct {
	groups map[int]*struct{ size int }
	order  []int
}

func hit(e *expansion) int {
	n := 0
	for range e.groups { // want `range over map e.groups`
		n++
	}
	return n
}

func suppressed(e *expansion) int {
	largest := 0
	//simlint:ordered pure max over sizes; result is order-free
	for _, g := range e.groups {
		if g.size > largest {
			largest = g.size
		}
	}
	return largest
}

func clean(e *expansion) int {
	n := 0
	for _, id := range e.order {
		n += e.groups[id].size
	}
	return n
}
