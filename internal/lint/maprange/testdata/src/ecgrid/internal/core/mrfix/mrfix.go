// Package mrfix exercises maprange inside a simulation-scoped package
// path: plain hits, annotated suppressions, and clean non-map ranges.
package mrfix

import "sort"

func hits(m map[string]int, nested map[int]map[string]bool) int {
	sum := 0
	for _, v := range m { // want `range over map m: iteration order is randomized`
		sum += v
	}
	for _, inner := range nested { // want `range over map nested`
		for k := range inner { // want `range over map inner`
			_ = k
		}
	}
	return sum
}

type table struct {
	entries map[string]int
}

func (t *table) methodHit() {
	for k := range t.entries { // want `range over map t.entries`
		delete(t.entries, k)
	}
}

func suppressedTrailing(m map[string]int) {
	for k := range m { //simlint:ordered deletion-only sweep
		delete(m, k)
	}
}

func suppressedAbove(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//simlint:ordered keys are sorted before use below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func clean(xs []int, s string, ch chan int) int {
	sum := 0
	for _, x := range xs {
		sum += x
	}
	for range s {
		sum++
	}
	for x := range ch {
		sum += x
	}
	return sum
}
