package maprange_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/maprange"
)

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer,
		"ecgrid/internal/core/mrfix",        // in scope: hits and suppressions
		"ecgrid/internal/faults/mrfaults",   // in scope: fault plans feed sim state
		"ecgrid/internal/spatial/mrspatial", // in scope: index order must not leak
		"ecgrid/internal/scengen/mrscengen", // in scope: generated placement order
		"ecgrid/internal/shard/mrshard",     // in scope: handoff order must not leak
		"ecgrid/internal/radio/mrradio",     // in scope: receiver-cache candidate order
		"ecgrid/internal/ras/mrras",         // in scope: page-sweep wake/draw order
		"ecgrid/internal/batch/mrclean",     // out of scope: no diagnostics
	)
}
