// Package maprange flags `for ... range` over map values inside
// simulation packages. Go randomizes map iteration order on every range
// statement, so any protocol decision, packet emission, or event
// scheduling that depends on the visit order differs from run to run
// even under the same seed — the exact hazard that made the repair,
// forward, and AODV paths nondeterministic before this suite existed.
//
// Iterate a sorted key slice instead, or — when the loop body is
// provably order-insensitive (a pure deletion sweep, an existential
// scan, an argmax under a strict total order, output sorted before
// use) — annotate the statement:
//
//	for k := range m { //simlint:ordered deletion-only sweep
package maprange

import (
	"go/ast"
	"go/types"

	"ecgrid/internal/lint"
)

// Analyzer is the maprange check.
var Analyzer = &lint.Analyzer{
	Name: "maprange",
	Doc:  "flags range over maps in simulation packages; iteration order is randomized per process",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InScope(pass.Pkg.Path, lint.SimPackages) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Suppressed(rs, "ordered") {
				return true
			}
			pass.Reportf(rs.Pos(),
				"range over map %s: iteration order is randomized per process; iterate sorted keys or annotate //simlint:ordered with a justification",
				types.ExprString(rs.X))
			return true
		})
	}
	return nil
}
