// Package analysistest runs a lint.Analyzer over fixture packages and
// checks its diagnostics against `// want` expectations embedded in the
// fixture source, mirroring the golang.org/x/tools analysistest
// convention on top of the dependency-free internal/lint framework.
//
// Fixtures live under <testdata>/src/<importpath>/, one package per
// directory; the import-path label chooses which package-scoped
// analyzers fire (e.g. a fixture under src/ecgrid/internal/core/ is
// inside maprange's simulation scope). A line expecting a diagnostic
// carries a trailing comment with one or more quoted regular
// expressions:
//
//	for k := range m { // want `range over map`
//
// Every reported diagnostic must match a want on its line and every
// want must be matched, otherwise the test fails.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ecgrid/internal/lint"
)

// wantRx extracts the quoted patterns of a `// want` comment: Go string
// literals, either back-quoted or double-quoted.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads each fixture package and applies the analyzer, failing t on
// any mismatch between reported diagnostics and `// want` expectations.
func Run(t *testing.T, testdata string, a *lint.Analyzer, importPaths ...string) {
	t.Helper()
	for _, ip := range importPaths {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(ip))
		pkg, err := lint.LoadDir(dir, ip)
		if err != nil {
			t.Errorf("loading fixture %s: %v", ip, err)
			continue
		}
		diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, ip, err)
			continue
		}
		checkWants(t, pkg, diags)
	}
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func collectWants(pkg *lint.Package) ([]*want, error) {
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lits := wantRx.FindAllString(rest, -1)
				if len(lits) == 0 {
					return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, lit := range lits {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants, nil
}
