// Package lint is a small, dependency-free static-analysis framework
// modeled on the golang.org/x/tools/go/analysis vocabulary (Analyzer,
// Pass, Diagnostic), built entirely on the standard library's go/ast and
// go/types so the simulator's determinism rules can be machine-enforced
// without adding a module dependency.
//
// The suite exists because every figure in the ECGRID reproduction rests
// on the claim that the discrete-event engine is bit-deterministic per
// seed. Go randomizes map iteration order per range statement, seeds the
// global math/rand source differently per process, and wall-clock calls
// leak host time into simulated time — all three silently break run-for-run
// reproducibility. The analyzers under internal/lint/... turn those
// conventions into CI failures.
//
// Intentional exceptions are annotated in source with a directive
// comment on the offending line (or the line directly above it):
//
//	//simlint:ordered <one-line justification>   (maprange)
//	//simlint:exact <one-line justification>     (floateq)
//	//simlint:walltime <one-line justification>  (walltime)
//	//simlint:leased <one-line justification>    (framelease)
//	//simlint:stale <one-line justification>     (handlestale)
//	//simlint:stream <one-line justification>    (rngstream)
//	//simlint:err <one-line justification>       (ctxerr)
//	//simlint:ctx <one-line justification>       (ctxerr)
//
// Like //go: directives, the comment must start exactly with
// "//simlint:" — no space after the slashes.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	// Path is the package's import path (for testdata fixtures, the
	// label it was loaded under).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives maps file name -> line -> directive names present on
	// that line. Built lazily by directivesFor.
	directives map[string]map[int]map[string]bool
}

// A Pass connects one Analyzer to one Package and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether node n carries the named //simlint:
// directive, either trailing on n's first line or on the line directly
// above it.
func (p *Pass) Suppressed(n ast.Node, name string) bool {
	pos := p.Pkg.Fset.Position(n.Pos())
	lines := p.Pkg.directivesFor(pos.Filename)
	return lines[pos.Line][name] || lines[pos.Line-1][name]
}

// Directives enumerates every suppression directive and the analyzer it
// silences. The simlint findings baseline counts annotated exceptions
// per file with this table, so adding a directive here is part of
// adding an analyzer.
var Directives = map[string]string{
	"ordered":  "maprange",
	"walltime": "walltime",
	"exact":    "floateq",
	"leased":   "framelease",
	"stale":    "handlestale",
	"stream":   "rngstream",
	"err":      "ctxerr",
	"ctx":      "ctxerr",
}

// DirectivesInFile scans one parsed file for //simlint: annotation
// comments and returns the count per directive name (only names listed
// in Directives are counted — an unknown name is likely a typo and is
// ignored rather than silently tracked).
func DirectivesInFile(f *ast.File) map[string]int {
	counts := make(map[string]int)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSpace(name)
			if _, known := Directives[name]; known {
				counts[name]++
			}
		}
	}
	return counts
}

// directivePrefix introduces an annotation comment. The directive name
// runs to the first whitespace; the remainder is a free-form
// justification.
const directivePrefix = "//simlint:"

func (pkg *Package) directivesFor(filename string) map[int]map[string]bool {
	if pkg.directives == nil {
		pkg.directives = make(map[string]map[int]map[string]bool)
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, directivePrefix)
					if !ok {
						continue
					}
					name, _, _ := strings.Cut(rest, " ")
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					cpos := pkg.Fset.Position(c.Pos())
					byLine := pkg.directives[cpos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						pkg.directives[cpos.Filename] = byLine
					}
					names := byLine[cpos.Line]
					if names == nil {
						names = make(map[string]bool)
						byLine[cpos.Line] = names
					}
					names[name] = true
				}
			}
		}
	}
	return pkg.directives[filename]
}

// Run applies every analyzer to every package and returns the combined
// diagnostics sorted by position (then analyzer name), so output and CI
// failures are stable.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// SimPackages lists the package trees whose code runs inside the
// discrete-event simulation. Determinism analyzers (maprange, walltime)
// apply only here: tooling packages (batch, experiment, cmd/...) may
// legitimately consult the wall clock or iterate maps whose order never
// reaches simulation state.
var SimPackages = []string{
	"ecgrid/internal/sim",
	"ecgrid/internal/core",
	"ecgrid/internal/routing",
	"ecgrid/internal/grid",
	"ecgrid/internal/node",
	"ecgrid/internal/protocols",
	"ecgrid/internal/faults",
	"ecgrid/internal/spatial",
	"ecgrid/internal/scengen",
	"ecgrid/internal/shard",
	// radio and ras joined the scope with the receiver-plane cache
	// (DESIGN.md §16): both now keep order-sensitive caches (receiver
	// lists, the paging bus's sorted-ID list) rebuilt from maps, where
	// iteration order leaking into simulation state would be exactly
	// the nondeterminism these analyzers exist to catch.
	"ecgrid/internal/radio",
	"ecgrid/internal/ras",
}

// FloatPackages lists the package trees where floating-point ==/!= is
// flagged (floateq): geometry and the energy/metrics accounting, where
// accumulated rounding makes exact comparison a correctness hazard.
var FloatPackages = []string{
	"ecgrid/internal/geom",
	"ecgrid/internal/energy",
	"ecgrid/internal/metrics",
}

// ServicePackages lists the package trees that face real concurrent
// traffic (the HTTP daemon and the batch runner). The ctxerr analyzer
// applies only here: dropped errors and context-free goroutines are
// service-tier hazards, while the simulation loop is single-threaded
// and panics on internal errors by design.
var ServicePackages = []string{
	"ecgrid/internal/server",
	"ecgrid/internal/batch",
}

// InScope reports whether the import path lies in one of the listed
// package trees (the tree root or any package below it).
func InScope(path string, trees []string) bool {
	for _, t := range trees {
		if path == t || strings.HasPrefix(path, t+"/") {
			return true
		}
	}
	return false
}
