package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// rangeStmts returns every range statement of the package in source
// order.
func rangeStmts(pkg *Package) []*ast.RangeStmt {
	var out []*ast.RangeStmt
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				out = append(out, rs)
			}
			return true
		})
	}
	return out
}

func TestSuppressedPlacements(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ecgrid", "internal", "lintfix"), "ecgrid/internal/lintfix")
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{Analyzer: &Analyzer{Name: "test"}, Pkg: pkg}
	ranges := rangeStmts(pkg)
	if len(ranges) != 4 {
		t.Fatalf("fixture has %d range statements, want 4", len(ranges))
	}
	want := []bool{true, true, false, false} // trailing, line-above, spaced look-alike, bare
	for i, rs := range ranges {
		if got := pass.Suppressed(rs, "ordered"); got != want[i] {
			pos := pkg.Fset.Position(rs.Pos())
			t.Errorf("range #%d at %s: Suppressed = %v, want %v", i, pos, got, want[i])
		}
		if pass.Suppressed(rs, "exact") {
			t.Errorf("range #%d suppressed under the wrong directive name", i)
		}
	}
}

func TestInScope(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"ecgrid/internal/sim", true},
		{"ecgrid/internal/core", true},
		{"ecgrid/internal/protocols/gaf", true},
		{"ecgrid/internal/protocols", true},
		{"ecgrid/internal/faults", true},
		{"ecgrid/internal/shard", true},
		{"ecgrid/internal/shardmap", false},  // prefix of a tree name, not inside it
		{"ecgrid/internal/simulator", false}, // prefix of a tree name, not inside it
		{"ecgrid/internal/batch", false},
		{"ecgrid/cmd/sweep", false},
	}
	for _, c := range cases {
		if got := InScope(c.path, SimPackages); got != c.want {
			t.Errorf("InScope(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestLoadReportsAllTypeErrors(t *testing.T) {
	_, err := LoadDir(filepath.Join("testdata", "src", "ecgrid", "internal", "brokenfix"), "ecgrid/internal/brokenfix")
	if err == nil {
		t.Fatal("loading the deliberately broken fixture succeeded")
	}
	msg := err.Error()
	for _, want := range []string{"cannot use", "definitelyNotDefined"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error omits %q; the loader stopped at the first type error:\n%s", want, msg)
		}
	}
}

func TestLoadSkipsTestdataAndLoadsRepo(t *testing.T) {
	pkgs, err := Load(LoadConfig{Dir: "."}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	if !byPath["ecgrid/internal/lint"] {
		t.Errorf("Load ./... from internal/lint missed the package itself; got %d packages", len(pkgs))
	}
	for p := range byPath {
		if filepath.Base(p) == "lintfix" {
			t.Errorf("Load ./... descended into testdata: %s", p)
		}
	}
}
