package framelease_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/framelease"
)

func TestFrameLease(t *testing.T) {
	analysistest.Run(t, "testdata", framelease.Analyzer,
		"ecgrid/internal/radio/flfix")
}

// TestSeededTailDropDefect is the acceptance check that the analyzer
// catches a deliberately dropped ReleaseFrame on one path: the flseed
// fixture is the real radio Send tail-drop code with its release
// removed, and the embedded want assertion fails this test if the
// analyzer misses the leak.
func TestSeededTailDropDefect(t *testing.T) {
	analysistest.Run(t, "testdata", framelease.Analyzer,
		"ecgrid/internal/radio/flseed")
}
