// Package framelease checks pooled radio-frame lifetimes with a
// path-sensitive dataflow analysis over the internal/lint/cfg engine.
//
// `Channel.NewFrame` hands out a pool-owned *radio.Frame; the pool's
// zero-allocation guarantee (DESIGN.md §7) holds only if every frame
// eventually flows back through exactly one `ReleaseFrame` or is handed
// to a consumer that assumes ownership (the send queue, a transmission,
// the caller via return). The analyzer tracks each local variable bound
// directly to a NewFrame result through the function's control-flow
// graph and reports:
//
//   - a path that reaches function exit with the frame still owned
//     (leak — the pool never gets it back);
//   - a second ReleaseFrame on a path where it was already released
//     (double-free: the frame is re-pooled twice and aliased);
//   - a ReleaseFrame after ownership was handed off, or a handoff after
//     release (use of a frame the function no longer owns);
//   - a NewFrame result dropped on the floor (bare call statement or
//     assignment to _).
//
// Ownership transfers are recognized by callee name — Send, SendFrame,
// pushBack, pushFront, Enqueue, Push — plus returning the frame,
// storing it into a field/index/channel, taking its address, or placing
// it in a composite literal (after which the function is no longer the
// sole owner and the analysis stops tracking). Passing the frame to any
// other call is a borrow: Deliver(f) followed by ReleaseFrame(f) is the
// radio's own idiom and stays legal.
//
// False positives (e.g. ownership transferred through a helper the
// analyzer cannot see) are annotated at the NewFrame line:
//
//	f := c.NewFrame(...) //simlint:leased stored in tx table, released in endTransmission
package framelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"ecgrid/internal/lint"
	"ecgrid/internal/lint/cfg"
)

// Analyzer is the framelease check.
var Analyzer = &lint.Analyzer{
	Name: "framelease",
	Doc:  "checks that every pooled NewFrame result is released or handed off exactly once on every path",
	Run:  run,
}

// scope: the radio package owning the pool plus every simulation tree
// that sends frames through it.
func inScope(path string) bool {
	return lint.InScope(path, lint.SimPackages) ||
		lint.InScope(path, []string{"ecgrid/internal/radio"})
}

// handoffNames are callees that take ownership of a frame argument.
var handoffNames = map[string]bool{
	"Send":      true,
	"SendFrame": true,
	"pushBack":  true,
	"pushFront": true,
	"Enqueue":   true,
	"Push":      true,
}

// Ownership states. The dataflow fact is a may-set: at a merge point a
// variable can carry several bits, one per incoming path.
const (
	owned    uint8 = 1 << iota // holds the pool's lease
	released                   // returned to the pool
	handed                     // ownership transferred away
)

type fact map[types.Object]uint8

func cloneFact(f fact) fact {
	c := make(fact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func joinFact(dst, src fact) (fact, bool) {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return dst, changed
}

func run(pass *lint.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, body := range cfg.FuncBodies(f) {
			checkBody(pass, body)
		}
	}
	return nil
}

// checkBody analyzes one function body. Nested function literals are
// control-flow-opaque here (they run later); cfg.FuncBodies returns
// them separately, and the transfer function skips their subtrees.
func checkBody(pass *lint.Pass, body *ast.BlockStmt) {
	a := &analysis{
		pass:    pass,
		origins: make(map[types.Object]token.Pos),
	}
	g := cfg.New(body)
	transfer := func(n ast.Node, f fact) fact { return a.transfer(n, f, nil) }
	in := cfg.Solve(g, fact{}, cloneFact, joinFact, transfer)
	if !a.sawNewFrame {
		return // no frame activity anywhere in this function
	}

	// Deterministic reporting pass: re-run each reachable block from its
	// solved entry fact with reporting enabled, in block-index order.
	reported := make(map[string]bool)
	reportf := func(pos token.Pos, format string, args ...any) {
		key := pass.Pkg.Fset.Position(pos).String() + format
		if reported[key] {
			return
		}
		reported[key] = true
		pass.Reportf(pos, format, args...)
	}
	for _, blk := range g.Blocks {
		f, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		f = cloneFact(f)
		for _, n := range blk.Nodes {
			f = a.transfer(n, f, reportf)
		}
		if blk == g.Exit {
			continue
		}
		// A block flowing into Exit ends a path: anything still owned
		// there leaks. (Exit itself is empty; checking predecessors via
		// the edge keeps the leak attributed to the path's final fact.)
		for _, s := range blk.Succs {
			if s != g.Exit {
				continue
			}
			for obj, st := range f {
				if st&owned != 0 {
					reportf(a.origins[obj],
						"pooled frame %s may not be released on every path: add ReleaseFrame, hand it off, or annotate //simlint:leased with a justification",
						obj.Name())
				}
			}
		}
	}
}

type analysis struct {
	pass *lint.Pass
	// origins records where each tracked variable acquired its lease,
	// for leak reports.
	origins map[types.Object]token.Pos
	// sawNewFrame gates the reporting pass: functions that never touch
	// the pool are skipped.
	sawNewFrame bool
}

type reporter func(pos token.Pos, format string, args ...any)

// transfer applies one CFG node to the fact. With report == nil it only
// computes facts (solver phase); otherwise it also emits diagnostics.
func (a *analysis) transfer(n ast.Node, f fact, report reporter) fact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, f, report)
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			if a.isNewFrame(call) && !a.pass.Suppressed(n, "leased") {
				if report != nil {
					report(call.Pos(), "NewFrame result dropped: the pooled frame is never released")
				}
			} else {
				a.call(call, f, report)
			}
		} else {
			a.scanUses(n.X, f)
		}
	case *ast.DeferStmt:
		// defer c.ReleaseFrame(f) releases on every path out of the
		// function; model it as an immediate release.
		a.call(n.Call, f, report)
	case *ast.GoStmt:
		a.call(n.Call, f, report)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if obj := a.trackedIdent(res, f); obj != nil {
				f[obj] = handed
			} else {
				a.scanUses(res, f)
			}
		}
	case *ast.SendStmt:
		if obj := a.trackedIdent(n.Value, f); obj != nil {
			f[obj] = handed
		}
	case ast.Stmt:
		a.scanUses(n, f)
	case ast.Expr:
		a.scanUses(n, f)
	}
	return f
}

// assign handles x := NewFrame(...), aliasing, and stores.
func (a *analysis) assign(n *ast.AssignStmt, f fact, report reporter) {
	// Single-value forms only: multi-assign from NewFrame cannot occur
	// (one result), and tracked frames on the RHS of multi-assigns are
	// handled by the generic cases below.
	if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok && a.isNewFrame(call) {
			lhs := n.Lhs[0]
			if id, ok := lhs.(*ast.Ident); ok {
				if id.Name == "_" {
					if !a.pass.Suppressed(n, "leased") && report != nil {
						report(call.Pos(), "NewFrame result dropped: the pooled frame is never released")
					}
					return
				}
				obj := a.defOrUse(id)
				if obj != nil {
					if a.pass.Suppressed(n, "leased") {
						return // annotated: trust the justification
					}
					if _, seen := a.origins[obj]; !seen {
						a.origins[obj] = call.Pos()
					}
					f[obj] = owned
					return
				}
			}
			// NewFrame assigned straight into a field/index: shared
			// storage takes ownership; nothing to track.
			return
		}
		// Alias: y := x or y = x where x is tracked. Ownership moves to
		// y; x stops being the owner.
		if src := a.trackedIdent(n.Rhs[0], f); src != nil {
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if dst := a.defOrUse(id); dst != nil {
					f[dst] = f[src]
					if _, seen := a.origins[dst]; !seen {
						a.origins[dst] = a.origins[src]
					}
					f[src] = handed
					return
				}
			}
			// Stored into a field, slice element, or map: the store
			// takes ownership.
			f[src] = handed
			return
		}
	}
	for _, rhs := range n.Rhs {
		a.scanUses(rhs, f)
	}
	// Reassigning a tracked variable drops its old lease state: the
	// variable now holds something else. A still-owned old value is a
	// leak, surfaced when the owned bit merged along this path reaches
	// exit — here we can only reset tracking.
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := a.defOrUse(id); obj != nil {
				if _, tracked := f[obj]; tracked {
					delete(f, obj)
				}
			}
		}
	}
}

// call applies one call expression: ReleaseFrame transitions, handoffs,
// and borrows of tracked frames, including calls nested in arguments.
func (a *analysis) call(call *ast.CallExpr, f fact, report reporter) {
	name := calleeName(call)
	switch {
	case name == "ReleaseFrame" && len(call.Args) == 1:
		if obj := a.trackedIdent(call.Args[0], f); obj != nil {
			st := f[obj]
			if report != nil {
				if st&released != 0 {
					report(call.Pos(), "double ReleaseFrame of %s: already released on this path", obj.Name())
				}
				if st&handed != 0 {
					report(call.Pos(), "ReleaseFrame of %s after ownership was handed off", obj.Name())
				}
			}
			f[obj] = released
			return
		}
	case handoffNames[name]:
		for _, arg := range call.Args {
			if obj := a.trackedIdent(arg, f); obj != nil {
				st := f[obj]
				if report != nil && st&released != 0 {
					report(call.Pos(), "%s of %s after it was released to the pool", name, obj.Name())
				}
				f[obj] = handed
			} else {
				a.scanUses(arg, f)
			}
		}
		return
	}
	// Unknown call: arguments are borrows (state unchanged), but taking
	// the address or embedding in a composite literal escapes.
	for _, arg := range call.Args {
		if a.trackedIdent(arg, f) != nil {
			continue // plain borrow
		}
		a.scanUses(arg, f)
	}
	// Nested calls in the function expression (rare) and arguments.
	for _, arg := range call.Args {
		if inner, ok := arg.(*ast.CallExpr); ok {
			a.call(inner, f, report)
		}
	}
}

// scanUses walks an expression/statement subtree (skipping function
// literals) for escapes of tracked variables: &x, composite literals,
// and nested calls are conservative ownership transfers.
func (a *analysis) scanUses(n ast.Node, f fact) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures capturing the frame escape it: stop tracking.
			for obj := range f {
				if capturedIn(n, obj, a.pass.Pkg.Info) {
					f[obj] = handed
				}
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := a.trackedIdent(n.X, f); obj != nil {
					f[obj] = handed
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := a.trackedIdent(e, f); obj != nil {
					f[obj] = handed
				}
			}
		}
		return true
	})
}

// capturedIn reports whether the function literal references obj.
func capturedIn(lit *ast.FuncLit, obj types.Object, info *types.Info) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// trackedIdent resolves e to a tracked variable's object, or nil.
func (a *analysis) trackedIdent(e ast.Expr, f fact) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := a.defOrUse(id)
	if obj == nil {
		return nil
	}
	if _, tracked := f[obj]; tracked {
		return obj
	}
	return nil
}

func (a *analysis) defOrUse(id *ast.Ident) types.Object {
	info := a.pass.Pkg.Info
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isNewFrame reports whether call is Channel.NewFrame: a method call
// named NewFrame whose single result is a *Frame. The shape is matched
// by name plus result type so fixture packages with their own mini
// Frame/Channel types exercise the analyzer without importing the real
// radio package.
func (a *analysis) isNewFrame(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "NewFrame" {
		return false
	}
	tv, ok := a.pass.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Frame" {
		return false
	}
	a.sawNewFrame = true
	return true
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}
