// Package flseed reproduces internal/radio's Send tail-drop path with
// the ReleaseFrame deliberately removed: when the queue is full the
// frame is dropped but never returned to the pool. This is the
// seeded-defect acceptance fixture — framelease must catch exactly this
// mutation of the real code.
package flseed

type Frame struct{ Bytes int }

type Channel struct{ limit int }

type queued struct{ frame *Frame }

type queue struct{ items []queued }

func (q *queue) len() int          { return len(q.items) }
func (q *queue) pushBack(x queued) { q.items = append(q.items, x) }

func (c *Channel) NewFrame(bytes int) *Frame { return &Frame{Bytes: bytes} }
func (c *Channel) ReleaseFrame(f *Frame)     {}

// send mirrors radio.Channel.Send with the tail-drop release removed.
func (c *Channel) send(q *queue, bytes int) {
	f := c.NewFrame(bytes) // want `pooled frame f may not be released on every path`
	if c.limit > 0 && q.len() >= c.limit {
		// BUG (seeded): the real radio calls c.ReleaseFrame(f) here
		// before dropping the frame.
		return
	}
	q.pushBack(queued{frame: f})
}
