// Package flfix exercises the framelease analyzer against mini
// Channel/Frame types mirroring internal/radio's pool API (fixtures
// cannot import the real module packages; the analyzer matches the
// NewFrame/*Frame shape by name and result type).
package flfix

type Frame struct {
	Kind string
}

type Channel struct{ limit int }

func (c *Channel) NewFrame(kind string) *Frame { return &Frame{Kind: kind} }
func (c *Channel) ReleaseFrame(f *Frame)       {}
func (c *Channel) Send(src int, f *Frame)      {}
func (c *Channel) Deliver(f *Frame)            {}

type queue struct{ items []*Frame }

func (q *queue) pushBack(f *Frame) { q.items = append(q.items, f) }

func helper(f *Frame) {}

func cleanRelease(c *Channel) {
	f := c.NewFrame("a")
	c.ReleaseFrame(f)
}

func cleanHandoff(c *Channel) {
	f := c.NewFrame("a")
	c.Send(1, f)
}

func cleanQueueHandoff(c *Channel, q *queue) {
	f := c.NewFrame("a")
	q.pushBack(f)
}

func leakEarlyReturn(c *Channel, drop bool) {
	f := c.NewFrame("a") // want `pooled frame f may not be released on every path`
	if drop {
		return
	}
	c.ReleaseFrame(f)
}

func leakBranch(c *Channel, b bool) {
	f := c.NewFrame("a") // want `pooled frame f may not be released on every path`
	if b {
		c.ReleaseFrame(f)
	}
}

func doubleRelease(c *Channel, b bool) {
	f := c.NewFrame("a")
	if b {
		c.ReleaseFrame(f)
	}
	c.ReleaseFrame(f) // want `double ReleaseFrame of f: already released on this path`
}

func releaseAfterHandoff(c *Channel) {
	f := c.NewFrame("a")
	c.Send(1, f)
	c.ReleaseFrame(f) // want `ReleaseFrame of f after ownership was handed off`
}

func handoffAfterRelease(c *Channel) {
	f := c.NewFrame("a")
	c.ReleaseFrame(f)
	c.Send(1, f) // want `Send of f after it was released to the pool`
}

func droppedBare(c *Channel) {
	c.NewFrame("a") // want `NewFrame result dropped`
}

func droppedBlank(c *Channel) {
	_ = c.NewFrame("a") // want `NewFrame result dropped`
}

func annotated(c *Channel) {
	f := c.NewFrame("a") //simlint:leased helper stores it in the tx table; released at endTransmission
	helper(f)
}

func returned(c *Channel) *Frame {
	f := c.NewFrame("a")
	return f
}

func borrowThenRelease(c *Channel) {
	f := c.NewFrame("a")
	c.Deliver(f) // borrow: the radio's deliver-then-release idiom
	c.ReleaseFrame(f)
}

func loopClean(c *Channel) {
	for i := 0; i < 3; i++ {
		f := c.NewFrame("a")
		c.ReleaseFrame(f)
	}
}

func panicPathNeedsNoRelease(c *Channel, bad bool) {
	f := c.NewFrame("a")
	if bad {
		panic("protocol bug")
	}
	c.ReleaseFrame(f)
}

func deferRelease(c *Channel, b bool) {
	f := c.NewFrame("a")
	defer c.ReleaseFrame(f)
	if b {
		return
	}
	helper(f)
}

func aliasRelease(c *Channel) {
	f := c.NewFrame("a")
	g := f
	c.ReleaseFrame(g)
}

func escapeAddr(c *Channel, sink func(**Frame)) {
	f := c.NewFrame("a")
	sink(&f)
}

func escapeComposite(c *Channel) []*Frame {
	f := c.NewFrame("a")
	return append([]*Frame(nil), []*Frame{f}...)
}
