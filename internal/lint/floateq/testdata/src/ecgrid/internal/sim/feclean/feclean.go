// Package feclean lives outside the floateq scope (the engine compares
// event timestamps exactly by design), so nothing here is flagged.
package feclean

func Same(a, b float64) bool { return a == b }
