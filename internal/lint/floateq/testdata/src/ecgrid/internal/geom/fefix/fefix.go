// Package fefix exercises floateq inside a float-scoped package path.
package fefix

import "math"

func hits(a, b float64, f float32) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if f != 0 { // want `floating-point != comparison`
		return false
	}
	return a != b-1 // want `floating-point != comparison`
}

func suppressedTrailing(l float64) float64 {
	if l == 0 { //simlint:exact only exact zero cannot be inverted
		return 0
	}
	return 1 / l
}

func suppressedAbove(v, sentinel float64) bool {
	//simlint:exact sentinel is assigned, never computed
	return v == sentinel
}

func clean(i, j int, s string, a, b float64) bool {
	const eps = 1e-9
	if i == j || s == "x" {
		return true
	}
	if 1.5 == 3.0/2.0 { // both constant: folded at compile time
		return math.Abs(a-b) <= eps
	}
	return a < b
}
