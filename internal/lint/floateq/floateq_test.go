package floateq_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer,
		"ecgrid/internal/geom/fefix",  // in scope: hits and suppressions
		"ecgrid/internal/sim/feclean", // out of scope: no diagnostics
	)
}
