// Package floateq flags == and != between floating-point operands in the
// geometry, energy, and metrics packages, where values are accumulated
// over thousands of events and exact equality silently depends on
// rounding. Compare with a tolerance (math.Abs(a-b) <= eps) instead, or
// annotate the comparison when exactness is the point (a guard against
// division by exactly zero, a sentinel value never produced by
// arithmetic):
//
//	if l == 0 { //simlint:exact only exact zero cannot be normalized
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"

	"ecgrid/internal/lint"
)

// Analyzer is the floateq check.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= between floating-point operands where tolerance comparison is required",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InScope(pass.Pkg.Path, lint.FloatPackages) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, xok := pass.Pkg.Info.Types[be.X]
			y, yok := pass.Pkg.Info.Types[be.Y]
			if !xok || !yok || (!isFloat(x.Type) && !isFloat(y.Type)) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				return true // both constant: folded at compile time
			}
			if pass.Suppressed(be, "exact") {
				return true
			}
			pass.Reportf(be.Pos(),
				"floating-point %s comparison: use a tolerance or annotate //simlint:exact with a justification",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
