package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir is the directory patterns are resolved against; "" means the
	// current directory. The enclosing module root (the nearest parent
	// with a go.mod) supplies the import-path prefix.
	Dir string
	// Tests includes *_test.go files declared in the package under test
	// (external _test packages are never loaded: fixtures and assertions
	// do not feed simulation state).
	Tests bool
}

// Load parses and type-checks the packages matched by the patterns.
// A pattern is a directory, or a directory followed by "/..." to include
// every package below it ("./..." covers the whole tree). Directories
// named "testdata" or starting with "." or "_" are skipped during
// expansion, following the go tool's convention — analyzer fixtures
// contain deliberate violations.
//
// Type-checking uses the standard library's source importer, so Load
// needs no pre-built export data and no dependency outside std; it does
// require running inside a module (import paths of dependencies are
// resolved through the go command).
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(absDir)
	if err != nil {
		return nil, err
	}

	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	var loadErrs []error
	for _, d := range dirs {
		rel, err := filepath.Rel(modRoot, d)
		if err != nil {
			return nil, err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loadPackage(fset, imp, d, importPath, cfg.Tests)
		if err != nil {
			// Keep loading the remaining packages so one broken package
			// reports alongside the rest instead of masking them.
			loadErrs = append(loadErrs, err)
			continue
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(loadErrs) > 0 {
		return nil, errors.Join(loadErrs...)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import-path label, with its own file set and importer. It is the
// entry point used by the analysistest harness to load fixtures.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := loadPackage(fset, imp, dir, importPath, false)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return pkg, nil
}

// loadPackage parses dir's Go files and type-checks them. It returns
// (nil, nil) when the directory holds no eligible files.
func loadPackage(fset *token.FileSet, imp types.Importer, dir, importPath string, tests bool) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !tests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)

	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		if strings.HasSuffix(name, "_test") {
			// External test package: skip (see LoadConfig.Tests).
			continue
		}
		if pkgName == "" {
			pkgName = name
		} else if name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed packages %q and %q", dir, pkgName, name)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	// Collect every type error in the package rather than stopping at
	// the first: a broken file usually breaks in several places at once,
	// and round-tripping one error per lint run is miserable. Setting
	// conf.Error makes Check keep going after an error.
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n%w", importPath, errors.Join(typeErrs...))
	}
	return &Package{
		Path:  importPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// expandPatterns resolves the pattern list to a sorted, deduplicated set
// of package directories.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, p := range patterns {
		recursive := false
		if p == "..." {
			p, recursive = ".", true
		} else if strings.HasSuffix(p, "/...") {
			p, recursive = strings.TrimSuffix(p, "/..."), true
		}
		root := p
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		st, err := os.Stat(root)
		if err != nil {
			return nil, fmt.Errorf("lint: bad pattern %q: %w", p, err)
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", p)
		}
		if !recursive {
			add(filepath.Clean(root))
			continue
		}
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(filepath.Clean(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}
