// Package ctxerr applies two service-tier hygiene checks to the HTTP
// daemon and the batch runner (internal/server, internal/batch) — the
// packages that face real concurrent traffic rather than the
// single-threaded simulation loop:
//
//  1. Dropped errors: a statement that calls a function whose final
//     result is an error and discards every result. In a request
//     handler a swallowed write error means a client sees a truncated
//     body with a 200 status; in the batch runner it means a lost
//     manifest record. Handle the error or annotate the line:
//
//     w.Write(b) //simlint:err response write; client gone, nothing to do
//
//  2. Context-free goroutines: a `go` statement inside a function that
//     receives a context.Context but does not thread any context into
//     the goroutine. Such a goroutine outlives request cancellation and
//     server drain. Pass the context (or a derived one) in, or
//     annotate with //simlint:ctx and a reason the goroutine's
//     lifetime is bounded some other way.
//
// Writes into in-memory buffers (*strings.Builder, *bytes.Buffer) never
// fail and are exempt from the dropped-error check, both as methods on
// the buffer and as the writer argument of fmt.Fprint*.
package ctxerr

import (
	"go/ast"
	"go/types"

	"ecgrid/internal/lint"
)

// Analyzer is the ctxerr check.
var Analyzer = &lint.Analyzer{
	Name: "ctxerr",
	Doc:  "flags dropped error returns and context-free goroutines in the service packages",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if !lint.InScope(pass.Pkg.Path, lint.ServicePackages) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		checkDroppedErrors(pass, f)
		checkGoroutineContext(pass, f)
	}
	return nil
}

// checkDroppedErrors flags expression statements (and defers/go
// statements) whose call returns an error as its last result.
func checkDroppedErrors(pass *lint.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var call *ast.CallExpr
		var at ast.Node
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
			at = n
		case *ast.DeferStmt:
			call, at = n.Call, n
		case *ast.GoStmt:
			call, at = n.Call, n
		default:
			return true
		}
		if call == nil || !returnsError(pass.Pkg.Info, call) || infallibleWriter(pass.Pkg.Info, call) {
			return true
		}
		if pass.Suppressed(at, "err") {
			return true
		}
		pass.Reportf(call.Pos(),
			"error result of %s dropped: handle it or annotate //simlint:err with a justification",
			types.ExprString(call.Fun))
		return true
	})
}

// returnsError reports whether the call's final result type is error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	var last types.Type
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() == 0 {
			return false
		}
		last = t.At(t.Len() - 1).Type()
	default:
		last = t
	}
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil // the universe error type
}

// infallibleWriter exempts writes that cannot fail: methods on
// *strings.Builder / *bytes.Buffer, and fmt.Fprint* with such a buffer
// as the writer.
func infallibleWriter(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if isBuffer(info, sel.X) {
		return true
	}
	if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" && len(call.Args) > 0 {
		switch sel.Sel.Name {
		case "Fprint", "Fprintf", "Fprintln":
			return isBuffer(info, call.Args[0])
		}
	}
	return false
}

func isBuffer(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// checkGoroutineContext flags `go` statements in context-carrying
// functions that do not thread a context through.
func checkGoroutineContext(pass *lint.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasContextParam(pass.Pkg.Info, fd.Type) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if usesContext(pass.Pkg.Info, gs.Call) {
				return true
			}
			if pass.Suppressed(gs, "ctx") {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine launched without the request context: thread ctx through or annotate //simlint:ctx with a justification")
			return true
		})
	}
}

func hasContextParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(info.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

// usesContext reports whether any expression in the go statement's call
// (including a function-literal body) has type context.Context.
func usesContext(info *types.Info, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(call, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
