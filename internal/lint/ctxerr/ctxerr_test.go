package ctxerr_test

import (
	"testing"

	"ecgrid/internal/lint/analysistest"
	"ecgrid/internal/lint/ctxerr"
)

func TestCtxErr(t *testing.T) {
	analysistest.Run(t, "testdata", ctxerr.Analyzer,
		"ecgrid/internal/server/cefix")
}
