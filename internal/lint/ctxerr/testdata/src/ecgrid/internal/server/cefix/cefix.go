// Package cefix exercises the ctxerr analyzer's two checks: dropped
// error returns and context-free goroutines in the service packages.
package cefix

import (
	"bytes"
	"context"
	"fmt"
	"strings"
)

func work() error             { return nil }
func value() (int, error)     { return 0, nil }
func count() int              { return 0 }
func tick()                   {}
func job(ctx context.Context) {}

func handler(ctx context.Context) {
	work()  // want `error result of work dropped`
	value() // want `error result of value dropped`
	count() // no error result

	if err := work(); err != nil { // handled
		_ = err
	}
	_ = work() // explicitly discarded: a visible decision, not flagged

	defer work() // want `error result of work dropped`

	var b strings.Builder
	fmt.Fprintf(&b, "x") // in-memory writer: infallible
	b.WriteString("y")   // method on *strings.Builder: infallible
	var buf bytes.Buffer
	buf.WriteString("z") // method on *bytes.Buffer: infallible

	go tick()                    // want `goroutine launched without the request context`
	go job(ctx)                  // context threaded through
	go func() { <-ctx.Done() }() // context captured by the closure
	go tick()                    //simlint:ctx lifetime bounded by the worker channel close
	work()                       //simlint:err response write; client already gone
}

func noContext() {
	go tick() // enclosing function has no context: out of scope
}

func goroutineDropsError(ctx context.Context) {
	go func() {
		<-ctx.Done()
		work() // want `error result of work dropped`
	}()
}
