package metrics

import (
	"math"
	"testing"

	"ecgrid/internal/grid"
)

func TestFaultWindowClassification(t *testing.T) {
	c := New()
	c.SetFaultWindows([]Window{{From: 10, Until: 20}, {From: 30, Until: 40}})

	c.PacketSent(pkt(0, 1, 5))  // outside
	c.PacketSent(pkt(0, 2, 15)) // in first window
	c.PacketSent(pkt(0, 3, 35)) // in second window
	c.PacketSent(pkt(0, 4, 20)) // boundary: Until is exclusive → outside

	c.PacketDelivered(pkt(0, 1, 5), 6)
	c.PacketDelivered(pkt(0, 2, 15), 16)
	// packet 3 is lost, packet 4 delivered.
	c.PacketDelivered(pkt(0, 4, 20), 21)

	if c.SentInWindows() != 2 || c.SentOutsideWindows() != 2 {
		t.Fatalf("sent in/out = %d/%d, want 2/2", c.SentInWindows(), c.SentOutsideWindows())
	}
	if c.DeliveredInWindows() != 1 || c.DeliveredOutsideWindows() != 2 {
		t.Fatalf("delivered in/out = %d/%d, want 1/2", c.DeliveredInWindows(), c.DeliveredOutsideWindows())
	}
	if got := c.InWindowDeliveryRate(); got != 0.5 {
		t.Fatalf("InWindowDeliveryRate = %g, want 0.5", got)
	}
	if got := c.OutWindowDeliveryRate(); got != 1.0 {
		t.Fatalf("OutWindowDeliveryRate = %g, want 1.0", got)
	}
}

func TestWindowRatesUnmeasurableWithoutTraffic(t *testing.T) {
	c := New()
	if c.InWindowDeliveryRate() != -1 || c.OutWindowDeliveryRate() != -1 {
		t.Fatal("rates should be -1 with no traffic")
	}
	// Without windows every packet is out-of-window.
	c.PacketSent(pkt(0, 1, 5))
	if c.InWindowDeliveryRate() != -1 {
		t.Fatal("in-window rate should stay -1 without windows")
	}
	if c.OutWindowDeliveryRate() != 0 {
		t.Fatal("out-window rate should be 0 (sent, none delivered)")
	}
}

func TestDuplicateDeliveriesDoNotDoubleCountWindows(t *testing.T) {
	c := New()
	c.SetFaultWindows([]Window{{From: 0, Until: 100}})
	c.PacketSent(pkt(0, 1, 5))
	c.PacketDelivered(pkt(0, 1, 5), 6)
	c.PacketDelivered(pkt(0, 1, 5), 7) // duplicate
	if c.DeliveredInWindows() != 1 {
		t.Fatalf("DeliveredInWindows = %d, want 1", c.DeliveredInWindows())
	}
}

func TestReelectionLatencyPairing(t *testing.T) {
	c := New()
	g1 := grid.Coord{X: 1, Y: 1}
	g2 := grid.Coord{X: 2, Y: 2}

	c.GatewayCrashed(g1, 100)
	c.GatewayDeclared(g2, 101) // different grid: ignored
	c.GatewayDeclared(g1, 104) // closes the pending crash
	c.GatewayDeclared(g1, 110) // no pending crash: a normal election, ignored

	if c.GatewayCrashes() != 1 {
		t.Fatalf("GatewayCrashes = %d", c.GatewayCrashes())
	}
	lats := c.ReelectionLatencies()
	if len(lats) != 1 || lats[0] != 4 {
		t.Fatalf("latencies = %v, want [4]", lats)
	}
	if got := c.MeanReelectionLatency(); got != 4 {
		t.Fatalf("mean = %g, want 4", got)
	}
}

func TestDoubleCrashKeepsEarliestTimestamp(t *testing.T) {
	c := New()
	g := grid.Coord{X: 1, Y: 1}
	c.GatewayCrashed(g, 100)
	c.GatewayCrashed(g, 105) // grid has been headless since 100
	c.GatewayDeclared(g, 108)
	if lats := c.ReelectionLatencies(); len(lats) != 1 || lats[0] != 8 {
		t.Fatalf("latencies = %v, want [8]", lats)
	}
	if c.GatewayCrashes() != 2 {
		t.Fatalf("GatewayCrashes = %d, want 2", c.GatewayCrashes())
	}
}

func TestMeanReelectionUnmeasurable(t *testing.T) {
	c := New()
	c.GatewayCrashed(grid.Coord{X: 1, Y: 1}, 100) // never re-elected
	if got := c.MeanReelectionLatency(); got != -1 {
		t.Fatalf("mean with no re-election = %g, want -1", got)
	}
}

func TestRouteRepairTime(t *testing.T) {
	c := New()
	c.FaultInjected(100)
	c.FaultInjected(105) // still unrepaired: earliest timestamp wins
	c.PacketSent(pkt(0, 1, 90))
	c.PacketDelivered(pkt(0, 1, 90), 112)
	c.PacketDelivered(pkt(0, 2, 90), 150) // repair already closed

	reps := c.RouteRepairTimes()
	if len(reps) != 1 || reps[0] != 12 {
		t.Fatalf("repairs = %v, want [12]", reps)
	}
	if got := c.MeanRouteRepairTime(); math.Abs(got-12) > 1e-12 {
		t.Fatalf("mean repair = %g", got)
	}

	// A second fault opens a new interval.
	c.FaultInjected(200)
	c.PacketDelivered(pkt(0, 3, 190), 203)
	if got := c.MeanRouteRepairTime(); math.Abs(got-7.5) > 1e-12 {
		t.Fatalf("mean after second repair = %g, want 7.5", got)
	}
}

func TestMeanRouteRepairUnmeasurable(t *testing.T) {
	c := New()
	if got := c.MeanRouteRepairTime(); got != -1 {
		t.Fatalf("mean with no faults = %g, want -1", got)
	}
	c.FaultInjected(100) // no delivery ever follows
	if got := c.MeanRouteRepairTime(); got != -1 {
		t.Fatalf("mean with unrepaired fault = %g, want -1", got)
	}
}
