package metrics

import "ecgrid/internal/grid"

// Window is a [From, Until) interval of simulation time during which an
// injected fault is active. The collector classifies traffic by whether
// the packet was *emitted* inside such a window: a packet sent mid-fault
// that arrives after recovery still counts as in-window, because it is
// the fault's handling — buffering, re-election, repair — that carried it.
type Window struct {
	From, Until float64
}

// SetFaultWindows installs the fault-activity windows used to classify
// traffic. Call before the run starts; overlapping windows are fine.
func (c *Collector) SetFaultWindows(ws []Window) { c.faultWindows = ws }

func (c *Collector) inFaultWindow(t float64) bool {
	for _, w := range c.faultWindows {
		if t >= w.From && t < w.Until {
			return true
		}
	}
	return false
}

// GatewayCrashed records that the gateway of grid g was lost to an
// injected fault at time at. The next gateway declaration in g closes
// the interval as one re-election latency. A second crash in the same
// grid before any re-election keeps the earlier timestamp (the grid has
// been headless since then).
func (c *Collector) GatewayCrashed(g grid.Coord, at float64) {
	c.gwCrashes++
	if _, pending := c.crashPending[g]; !pending {
		c.crashPending[g] = at
	}
}

// GatewayDeclared records that some host declared itself gateway of grid
// g at time at. If a crash in g is awaiting re-election this measures the
// recovery latency; declarations with no pending crash (normal elections)
// are ignored.
func (c *Collector) GatewayDeclared(g grid.Coord, at float64) {
	crashAt, pending := c.crashPending[g]
	if !pending {
		return
	}
	delete(c.crashPending, g)
	c.reelections = append(c.reelections, at-crashAt)
}

// FaultInjected records a disruptive fault event at time at (crash,
// shock, jam onset, …). The time until the next unique delivery is
// recorded as a route-repair time: how long the network needed to get a
// packet through again. Consecutive faults before any delivery keep the
// earliest timestamp.
func (c *Collector) FaultInjected(at float64) {
	if c.repairPending < 0 {
		c.repairPending = at
	}
}

// GatewayCrashes returns the number of gateway losses recorded.
func (c *Collector) GatewayCrashes() int { return c.gwCrashes }

// ReelectionLatencies returns the measured crash-to-redeclaration
// latencies, in order of occurrence.
func (c *Collector) ReelectionLatencies() []float64 { return c.reelections }

// MeanReelectionLatency returns the mean re-election latency, or -1 when
// no crashed gateway was ever replaced.
func (c *Collector) MeanReelectionLatency() float64 {
	if len(c.reelections) == 0 {
		return -1
	}
	sum := 0.0
	for _, v := range c.reelections {
		sum += v
	}
	return sum / float64(len(c.reelections))
}

// RouteRepairTimes returns the fault-to-next-delivery intervals.
func (c *Collector) RouteRepairTimes() []float64 { return c.repairs }

// MeanRouteRepairTime returns the mean route-repair time, or -1 when no
// delivery ever followed a fault.
func (c *Collector) MeanRouteRepairTime() float64 {
	if len(c.repairs) == 0 {
		return -1
	}
	sum := 0.0
	for _, v := range c.repairs {
		sum += v
	}
	return sum / float64(len(c.repairs))
}

// SentInWindows returns the number of packets emitted during fault
// windows; SentOutsideWindows the remainder.
func (c *Collector) SentInWindows() int      { return c.sentIn }
func (c *Collector) SentOutsideWindows() int { return c.sent - c.sentIn }

// DeliveredInWindows returns the unique deliveries of packets emitted
// during fault windows; DeliveredOutsideWindows the remainder.
func (c *Collector) DeliveredInWindows() int      { return c.deliveredIn }
func (c *Collector) DeliveredOutsideWindows() int { return c.delivered - c.deliveredIn }

// InWindowDeliveryRate returns delivered/sent restricted to packets
// emitted during fault windows, or -1 with no such traffic.
func (c *Collector) InWindowDeliveryRate() float64 {
	if c.sentIn == 0 {
		return -1
	}
	return float64(c.deliveredIn) / float64(c.sentIn)
}

// OutWindowDeliveryRate returns delivered/sent restricted to packets
// emitted outside every fault window, or -1 with no such traffic.
func (c *Collector) OutWindowDeliveryRate() float64 {
	out := c.sent - c.sentIn
	if out == 0 {
		return -1
	}
	return float64(c.delivered-c.deliveredIn) / float64(out)
}
