// Package metrics collects the four quantities the paper's evaluation
// reports: the fraction of alive hosts over time (Figs. 4 and 8), the
// mean energy consumption per host aen (Fig. 5), the packet delivery
// rate (Fig. 7), and the average packet delivery latency (Fig. 6).
package metrics

import (
	"ecgrid/internal/grid"
	"ecgrid/internal/routing"
	"ecgrid/internal/stats"
)

// Collector accumulates one simulation run's measurements.
type Collector struct {
	// Alive is the fraction-of-alive-hosts time series.
	Alive stats.Series
	// Aen is the paper's Eq. (2): aen(t) = (E0 − Et) / n, the mean
	// energy consumed per (counted) host by time t, in joules.
	Aen stats.Series

	sent       int
	delivered  int
	duplicates int
	latency    stats.Accumulator
	latencies  []float64
	seen       map[pktKey]bool

	deaths     int
	firstDeath float64
	lastDeath  float64

	// recovery observables (fault injection); see recovery.go
	faultWindows  []Window
	sentIn        int // packets emitted during a fault window
	deliveredIn   int // unique deliveries of packets emitted in a window
	gwCrashes     int
	crashPending  map[grid.Coord]float64 // crash time awaiting re-election
	reelections   []float64              // re-election latencies, seconds
	repairPending float64                // last unrepaired fault time, or -1
	repairs       []float64              // route-repair times, seconds
}

type pktKey struct {
	flow, seq int
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		Alive:         stats.Series{Name: "alive-fraction"},
		Aen:           stats.Series{Name: "aen"},
		seen:          make(map[pktKey]bool),
		firstDeath:    -1,
		lastDeath:     -1,
		crashPending:  make(map[grid.Coord]float64),
		repairPending: -1,
	}
}

// PacketSent records a source emission.
func (c *Collector) PacketSent(pkt *routing.DataPacket) {
	c.sent++
	if c.inFaultWindow(pkt.SentAt) {
		c.sentIn++
	}
}

// PacketDelivered records a packet reaching its final destination at time
// now. Duplicate deliveries of the same (flow, seq) are counted
// separately and excluded from rate and latency.
func (c *Collector) PacketDelivered(pkt *routing.DataPacket, now float64) {
	k := pktKey{pkt.Flow, pkt.Seq}
	if c.seen[k] {
		c.duplicates++
		return
	}
	c.seen[k] = true
	c.delivered++
	c.latency.Add(now - pkt.SentAt)
	c.latencies = append(c.latencies, now-pkt.SentAt)
	if c.inFaultWindow(pkt.SentAt) {
		c.deliveredIn++
	}
	if c.repairPending >= 0 {
		c.repairs = append(c.repairs, now-c.repairPending)
		c.repairPending = -1
	}
}

// LatencyPercentile returns the p-quantile of observed delays, or 0 with
// no deliveries.
func (c *Collector) LatencyPercentile(p float64) float64 {
	if len(c.latencies) == 0 {
		return 0
	}
	return stats.Percentile(c.latencies, p)
}

// HostDied records a battery exhaustion at time now.
func (c *Collector) HostDied(now float64) {
	c.deaths++
	if c.firstDeath < 0 {
		c.firstDeath = now
	}
	c.lastDeath = now
}

// SampleAlive appends an alive-fraction sample.
func (c *Collector) SampleAlive(now, fraction float64) {
	c.Alive.Append(now, fraction)
}

// SampleAen appends an aen sample (joules consumed per host).
func (c *Collector) SampleAen(now, aen float64) {
	c.Aen.Append(now, aen)
}

// Sent returns the number of packets sources emitted.
func (c *Collector) Sent() int { return c.sent }

// Delivered returns the number of unique packets that reached their
// destinations.
func (c *Collector) Delivered() int { return c.delivered }

// Duplicates returns the number of redundant deliveries.
func (c *Collector) Duplicates() int { return c.duplicates }

// DeliveryRate returns delivered/sent, or 0 with no traffic.
func (c *Collector) DeliveryRate() float64 {
	if c.sent == 0 {
		return 0
	}
	return float64(c.delivered) / float64(c.sent)
}

// MeanLatencySeconds returns the average end-to-end delay of delivered
// packets.
func (c *Collector) MeanLatencySeconds() float64 { return c.latency.Mean() }

// MaxLatencySeconds returns the worst observed delay.
func (c *Collector) MaxLatencySeconds() float64 { return c.latency.Max() }

// Latency exposes the full latency accumulator.
func (c *Collector) Latency() *stats.Accumulator { return &c.latency }

// Deaths returns the number of host deaths recorded.
func (c *Collector) Deaths() int { return c.deaths }

// FirstDeathAt returns the time of the first death, or -1 if none.
func (c *Collector) FirstDeathAt() float64 { return c.firstDeath }

// LastDeathAt returns the time of the most recent death, or -1 if none.
func (c *Collector) LastDeathAt() float64 { return c.lastDeath }
