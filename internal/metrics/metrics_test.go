package metrics

import (
	"math"
	"testing"

	"ecgrid/internal/routing"
)

func pkt(flow, seq int, sentAt float64) *routing.DataPacket {
	return &routing.DataPacket{Flow: flow, Seq: seq, SentAt: sentAt}
}

func TestDeliveryRateAndLatency(t *testing.T) {
	c := New()
	c.PacketSent(pkt(1, 1, 0))
	c.PacketSent(pkt(1, 2, 1))
	c.PacketSent(pkt(1, 3, 2))
	c.PacketDelivered(pkt(1, 1, 0), 0.010)
	c.PacketDelivered(pkt(1, 2, 1), 1.030)
	if c.Sent() != 3 || c.Delivered() != 2 {
		t.Fatalf("sent=%d delivered=%d", c.Sent(), c.Delivered())
	}
	if got := c.DeliveryRate(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("DeliveryRate = %v", got)
	}
	if got := c.MeanLatencySeconds(); math.Abs(got-0.020) > 1e-12 {
		t.Fatalf("MeanLatency = %v", got)
	}
	if got := c.MaxLatencySeconds(); math.Abs(got-0.030) > 1e-12 {
		t.Fatalf("MaxLatency = %v", got)
	}
	if got := c.LatencyPercentile(1.0); math.Abs(got-0.030) > 1e-12 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestDuplicateDeliveriesExcluded(t *testing.T) {
	c := New()
	c.PacketSent(pkt(1, 1, 0))
	c.PacketDelivered(pkt(1, 1, 0), 0.01)
	c.PacketDelivered(pkt(1, 1, 0), 5.00) // duplicate: must not skew latency
	if c.Delivered() != 1 || c.Duplicates() != 1 {
		t.Fatalf("delivered=%d dups=%d", c.Delivered(), c.Duplicates())
	}
	if c.MeanLatencySeconds() != 0.01 {
		t.Fatalf("duplicate polluted latency: %v", c.MeanLatencySeconds())
	}
	// Same seq on a different flow is a distinct packet.
	c.PacketDelivered(pkt(2, 1, 0), 0.02)
	if c.Delivered() != 2 {
		t.Fatal("cross-flow packet treated as duplicate")
	}
}

func TestEmptyCollector(t *testing.T) {
	c := New()
	if c.DeliveryRate() != 0 || c.MeanLatencySeconds() != 0 || c.LatencyPercentile(0.5) != 0 {
		t.Fatal("empty collector not zero")
	}
	if c.FirstDeathAt() != -1 || c.LastDeathAt() != -1 || c.Deaths() != 0 {
		t.Fatal("death stats not empty")
	}
}

func TestDeathTracking(t *testing.T) {
	c := New()
	c.HostDied(100)
	c.HostDied(50) // out of order is fine; first is min of arrival order
	c.HostDied(200)
	if c.Deaths() != 3 {
		t.Fatalf("Deaths = %d", c.Deaths())
	}
	if c.FirstDeathAt() != 100 {
		t.Fatalf("FirstDeathAt = %v (records first call)", c.FirstDeathAt())
	}
	if c.LastDeathAt() != 200 {
		t.Fatalf("LastDeathAt = %v", c.LastDeathAt())
	}
}

func TestSeriesSampling(t *testing.T) {
	c := New()
	c.SampleAlive(0, 1.0)
	c.SampleAlive(10, 0.9)
	c.SampleAen(0, 0)
	c.SampleAen(10, 0.1)
	if c.Alive.At(5) != 1.0 || c.Alive.At(10) != 0.9 {
		t.Fatal("alive series wrong")
	}
	if c.Aen.Last() != 0.1 {
		t.Fatal("aen series wrong")
	}
}

func TestDeliveredNeverExceedsSentInPractice(t *testing.T) {
	// The collector does not enforce delivered ≤ sent (duplicates are
	// separated), but with unique packets the invariant holds.
	c := New()
	for i := 1; i <= 50; i++ {
		p := pkt(1, i, float64(i))
		c.PacketSent(p)
		if i%2 == 0 {
			c.PacketDelivered(p, float64(i)+0.01)
		}
	}
	if c.Delivered() > c.Sent() {
		t.Fatal("delivered exceeds sent")
	}
	if c.DeliveryRate() != 0.5 {
		t.Fatalf("rate = %v", c.DeliveryRate())
	}
}
