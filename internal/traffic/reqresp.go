package traffic

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// ReqResp is a request/response flow pair: host A sends a request to
// host B every Interval seconds, and B answers each delivered request
// with a response packet after a fixed service delay. Requests travel
// on flow Flow, responses on flow RespFlow — two flows in the metrics,
// so delivery rate and latency account both directions.
//
// The environment must feed every data delivery at B back into
// Delivered (the runner chains it off the protocol's OnDeliver hook);
// responses to requests that never arrive are, correctly, never sent.
type ReqResp struct {
	Flow     int // request flow id
	RespFlow int // response flow id (distinct from every request flow)
	A        hostid.ID
	B        hostid.ID
	Interval float64 // seconds between requests
	Bytes    int     // request payload size
	// RespBytes is the response payload size (a typical fetch: small
	// request, larger response).
	RespBytes int
	// RespDelayS is B's service time between delivery of a request and
	// emission of its response.
	RespDelayS float64

	engine       *sim.Engine
	aSend, bSend Sender
	ticker       *sim.Ticker
	seqReq       int
	seqResp      int
	stopped      bool

	// OnSend observes every emitted packet, requests and responses
	// alike; GateA/GateB suppress emission from a dead endpoint.
	OnSend func(pkt *routing.DataPacket)
	GateA  func() bool
	GateB  func() bool
}

// Start begins the request clock: the first request fires after one
// interval plus the given phase.
func (r *ReqResp) Start(engine *sim.Engine, aSend, bSend Sender, phase float64) {
	if r.Interval <= 0 || r.Bytes <= 0 || r.RespBytes <= 0 || r.RespDelayS < 0 {
		panic("traffic: invalid request/response parameters")
	}
	if aSend == nil || bSend == nil {
		panic("traffic: nil sender")
	}
	if r.RespFlow == r.Flow {
		panic("traffic: response flow id must differ from the request's")
	}
	r.engine = engine
	r.aSend = aSend
	r.bSend = bSend
	r.ticker = sim.NewTicker(engine, r.Interval, phase, r.request)
}

func (r *ReqResp) request() {
	if r.GateA != nil && !r.GateA() {
		return
	}
	r.seqReq++
	pkt := &routing.DataPacket{
		Flow:   r.Flow,
		Seq:    r.seqReq,
		Src:    r.A,
		Dst:    r.B,
		Bytes:  r.Bytes,
		SentAt: r.engine.Now(),
	}
	if r.OnSend != nil {
		r.OnSend(pkt)
	}
	r.aSend.SubmitData(pkt)
}

// Delivered must be called for every data packet delivered anywhere in
// the run (the runner multiplexes); packets that are not this pair's
// requests are ignored. A delivered request schedules its response.
func (r *ReqResp) Delivered(pkt *routing.DataPacket) {
	if pkt.Flow != r.Flow || pkt.Dst != r.B {
		return
	}
	r.engine.Schedule(r.RespDelayS, r.respond)
}

func (r *ReqResp) respond() {
	if r.stopped {
		return
	}
	if r.GateB != nil && !r.GateB() {
		return
	}
	r.seqResp++
	pkt := &routing.DataPacket{
		Flow:   r.RespFlow,
		Seq:    r.seqResp,
		Src:    r.B,
		Dst:    r.A,
		Bytes:  r.RespBytes,
		SentAt: r.engine.Now(),
	}
	if r.OnSend != nil {
		r.OnSend(pkt)
	}
	r.bSend.SubmitData(pkt)
}

// Stop halts the request clock and suppresses responses still in the
// service queue.
func (r *ReqResp) Stop() {
	r.stopped = true
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

// Emitted returns how many packets the pair generated in total
// (requests plus responses).
func (r *ReqResp) Emitted() int { return r.seqReq + r.seqResp }
