// Package traffic generates the paper's workload: constant-bit-rate (CBR)
// flows of 512-byte packets between chosen source and destination hosts.
package traffic

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// Sender is the protocol-side entry point for application packets. Every
// protocol in this repository implements it.
type Sender interface {
	SubmitData(pkt *routing.DataPacket)
}

// PaperPacketBytes is the payload size used throughout the evaluation.
const PaperPacketBytes = 512

// CBR is one constant-bit-rate flow.
type CBR struct {
	Flow  int
	Src   hostid.ID
	Dst   hostid.ID
	Rate  float64 // packets per second
	Bytes int

	engine *sim.Engine
	sender Sender
	ticker *sim.Ticker
	seq    int

	// OnSend, if set, observes every packet the source emits (the
	// metrics collector counts them there).
	OnSend func(pkt *routing.DataPacket)
	// Gate, if set, is consulted before each emission; returning false
	// suppresses the packet (used to stop sources whose host died).
	Gate func() bool
}

// Start begins emitting packets at the flow's rate, with the first packet
// after one period plus the given phase offset.
func (c *CBR) Start(engine *sim.Engine, sender Sender, phase float64) {
	if c.Rate <= 0 || c.Bytes <= 0 {
		panic("traffic: invalid CBR rate or size")
	}
	if sender == nil {
		panic("traffic: nil sender")
	}
	c.engine = engine
	c.sender = sender
	c.ticker = sim.NewTicker(engine, 1/c.Rate, phase, c.emit)
}

func (c *CBR) emit() {
	if c.Gate != nil && !c.Gate() {
		return
	}
	c.seq++
	pkt := &routing.DataPacket{
		Flow:   c.Flow,
		Seq:    c.seq,
		Src:    c.Src,
		Dst:    c.Dst,
		Bytes:  c.Bytes,
		SentAt: c.engine.Now(),
	}
	if c.OnSend != nil {
		c.OnSend(pkt)
	}
	c.sender.SubmitData(pkt)
}

// Stop halts the flow.
func (c *CBR) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
	}
}

// Emitted returns how many packets the flow has generated.
func (c *CBR) Emitted() int { return c.seq }
