package traffic

import (
	"testing"

	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// capture collects submitted packets.
type capture struct {
	pkts []*routing.DataPacket
}

func (c *capture) SubmitData(pkt *routing.DataPacket) { c.pkts = append(c.pkts, pkt) }

func TestCBREmitsAtRate(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	flow := &CBR{Flow: 1, Src: 3, Dst: 7, Rate: 10, Bytes: 512}
	flow.Start(e, snk, 0)
	e.Run(10)
	// 10 pkt/s over 10 s with first packet at t=0.1: 100 packets.
	if len(snk.pkts) != 100 {
		t.Fatalf("emitted %d packets, want 100", len(snk.pkts))
	}
	if flow.Emitted() != 100 {
		t.Fatalf("Emitted() = %d", flow.Emitted())
	}
}

func TestCBRPacketContents(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	flow := &CBR{Flow: 2, Src: 3, Dst: 7, Rate: 1, Bytes: 512}
	flow.Start(e, snk, 0.5)
	e.Run(2)
	if len(snk.pkts) != 1 {
		t.Fatalf("emitted %d packets", len(snk.pkts))
	}
	p := snk.pkts[0]
	if p.Flow != 2 || p.Src != 3 || p.Dst != 7 || p.Bytes != 512 || p.Seq != 1 {
		t.Fatalf("packet = %+v", p)
	}
	if p.SentAt != 1.5 {
		t.Fatalf("SentAt = %v, want 1.5 (period + phase)", p.SentAt)
	}
}

func TestCBRSequencesIncrease(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	flow := &CBR{Flow: 1, Src: 1, Dst: 2, Rate: 5, Bytes: 100}
	flow.Start(e, snk, 0)
	e.Run(3)
	for i, p := range snk.pkts {
		if p.Seq != i+1 {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
	}
}

func TestCBROnSendObserver(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	n := 0
	flow := &CBR{Flow: 1, Src: 1, Dst: 2, Rate: 2, Bytes: 100}
	flow.OnSend = func(pkt *routing.DataPacket) { n++ }
	flow.Start(e, snk, 0)
	e.Run(5)
	if n != len(snk.pkts) || n == 0 {
		t.Fatalf("OnSend saw %d, sink saw %d", n, len(snk.pkts))
	}
}

func TestCBRGateSuppresses(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	open := true
	flow := &CBR{Flow: 1, Src: 1, Dst: 2, Rate: 1, Bytes: 100}
	flow.Gate = func() bool { return open }
	flow.Start(e, snk, 0)
	e.Run(3.5) // 3 packets
	open = false
	e.Run(10)
	if len(snk.pkts) != 3 {
		t.Fatalf("gate leaked: %d packets", len(snk.pkts))
	}
}

func TestCBRStop(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	flow := &CBR{Flow: 1, Src: 1, Dst: 2, Rate: 1, Bytes: 100}
	flow.Start(e, snk, 0)
	e.Run(2.5)
	flow.Stop()
	e.Run(10)
	if len(snk.pkts) != 2 {
		t.Fatalf("stopped flow emitted %d packets, want 2", len(snk.pkts))
	}
}

func TestCBRValidation(t *testing.T) {
	for name, flow := range map[string]*CBR{
		"zero rate":  {Rate: 0, Bytes: 100},
		"zero bytes": {Rate: 1, Bytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			flow.Start(sim.NewEngine(), &capture{}, 0)
		}()
	}
}

func TestCBRNilSenderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil sender did not panic")
		}
	}()
	(&CBR{Rate: 1, Bytes: 1}).Start(sim.NewEngine(), nil, 0)
}
