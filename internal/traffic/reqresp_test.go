package traffic

import (
	"testing"

	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// loop is a Sender that delivers every submitted packet straight into a
// ReqResp pair's Delivered hook, modeling a lossless network, while
// also recording the packet.
type loop struct {
	pkts []*routing.DataPacket
	rr   *ReqResp
}

func (l *loop) SubmitData(pkt *routing.DataPacket) {
	l.pkts = append(l.pkts, pkt)
	l.rr.Delivered(pkt)
}

// TestReqRespPairsRequests: over a lossless network every request gets
// exactly one response, on the response flow, after the service delay.
func TestReqRespPairsRequests(t *testing.T) {
	e := sim.NewEngine()
	rr := &ReqResp{Flow: 1, RespFlow: 2, A: 4, B: 8, Interval: 1, Bytes: 64, RespBytes: 1024, RespDelayS: 0.25}
	net := &loop{rr: rr}
	rr.Start(e, net, net, 0)
	e.Run(10.5)
	var reqs, resps []*routing.DataPacket
	for _, p := range net.pkts {
		switch p.Flow {
		case 1:
			reqs = append(reqs, p)
		case 2:
			resps = append(resps, p)
		default:
			t.Fatalf("packet on unexpected flow %d", p.Flow)
		}
	}
	if len(reqs) != 10 || len(resps) != 10 {
		t.Fatalf("%d requests, %d responses; want 10 each", len(reqs), len(resps))
	}
	for i := range reqs {
		q, s := reqs[i], resps[i]
		if q.Src != 4 || q.Dst != 8 || q.Bytes != 64 {
			t.Fatalf("request %d = %+v", i, q)
		}
		if s.Src != 8 || s.Dst != 4 || s.Bytes != 1024 {
			t.Fatalf("response %d = %+v", i, s)
		}
		if s.SentAt != q.SentAt+0.25 {
			t.Fatalf("response %d at %v, request at %v: service delay wrong", i, s.SentAt, q.SentAt)
		}
		if q.Seq != i+1 || s.Seq != i+1 {
			t.Fatalf("pair %d has seqs %d/%d", i, q.Seq, s.Seq)
		}
	}
	if rr.Emitted() != 20 {
		t.Fatalf("Emitted() = %d, want 20", rr.Emitted())
	}
}

// TestReqRespLostRequestNoResponse: requests that never reach B produce
// no response — Delivered drives responses, not the send clock.
func TestReqRespLostRequestNoResponse(t *testing.T) {
	e := sim.NewEngine()
	rr := &ReqResp{Flow: 1, RespFlow: 2, A: 4, B: 8, Interval: 1, Bytes: 64, RespBytes: 64, RespDelayS: 0.1}
	drop := &capture{} // records but never delivers
	rr.Start(e, drop, drop, 0)
	e.Run(5.5)
	for _, p := range drop.pkts {
		if p.Flow == 2 {
			t.Fatalf("response emitted for an undelivered request: %+v", p)
		}
	}
	if len(drop.pkts) != 5 {
		t.Fatalf("emitted %d packets, want 5 requests", len(drop.pkts))
	}
}

// TestReqRespIgnoresForeignDeliveries: deliveries of other flows (or of
// this pair's own responses arriving back at A) never trigger a
// response.
func TestReqRespIgnoresForeignDeliveries(t *testing.T) {
	e := sim.NewEngine()
	rr := &ReqResp{Flow: 1, RespFlow: 2, A: 4, B: 8, Interval: 100, Bytes: 64, RespBytes: 64, RespDelayS: 0.1}
	snk := &capture{}
	rr.Start(e, snk, snk, 0)
	rr.Delivered(&routing.DataPacket{Flow: 3, Dst: 8})
	rr.Delivered(&routing.DataPacket{Flow: 2, Dst: 4}) // own response at A
	rr.Delivered(&routing.DataPacket{Flow: 1, Dst: 4}) // request flow, wrong endpoint
	e.Run(50)
	if len(snk.pkts) != 0 {
		t.Fatalf("foreign deliveries produced %d packets", len(snk.pkts))
	}
}

// TestReqRespGates: GateA suppresses requests, GateB responses — a dead
// endpoint stops its direction only.
func TestReqRespGates(t *testing.T) {
	e := sim.NewEngine()
	rr := &ReqResp{Flow: 1, RespFlow: 2, A: 4, B: 8, Interval: 1, Bytes: 64, RespBytes: 64, RespDelayS: 0.1}
	net := &loop{rr: rr}
	bAlive := true
	rr.GateB = func() bool { return bAlive }
	rr.Start(e, net, net, 0)
	e.Run(3.5) // 3 requests, 3 responses
	bAlive = false
	e.Run(3) // 3 more requests, no responses
	resps := 0
	for _, p := range net.pkts {
		if p.Flow == 2 {
			resps++
		}
	}
	if resps != 3 {
		t.Fatalf("%d responses after B died at t=3.5, want 3", resps)
	}
}

// TestReqRespStop halts both the request clock and pending responses.
func TestReqRespStop(t *testing.T) {
	e := sim.NewEngine()
	rr := &ReqResp{Flow: 1, RespFlow: 2, A: 4, B: 8, Interval: 1, Bytes: 64, RespBytes: 64, RespDelayS: 5}
	net := &loop{rr: rr}
	rr.Start(e, net, net, 0)
	e.Run(2.5) // 2 requests in flight, responses due at 6 and 7
	rr.Stop()
	e.Run(20)
	if len(net.pkts) != 2 {
		t.Fatalf("stopped pair emitted %d packets, want the 2 pre-stop requests", len(net.pkts))
	}
}

func TestReqRespValidation(t *testing.T) {
	for name, rr := range map[string]*ReqResp{
		"zero interval":   {RespFlow: 1, Interval: 0, Bytes: 1, RespBytes: 1},
		"zero bytes":      {RespFlow: 1, Interval: 1, Bytes: 0, RespBytes: 1},
		"zero resp bytes": {RespFlow: 1, Interval: 1, Bytes: 1, RespBytes: 0},
		"negative delay":  {RespFlow: 1, Interval: 1, Bytes: 1, RespBytes: 1, RespDelayS: -1},
		"same flow ids":   {Flow: 3, RespFlow: 3, Interval: 1, Bytes: 1, RespBytes: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			rr.Start(sim.NewEngine(), &capture{}, &capture{}, 0)
		}()
	}
}
