package traffic

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// OnOff is a bursty on/off flow: while "on" it emits packets at Rate
// like a CBR source, while "off" it is silent, and the on/off period
// lengths are exponentially distributed with the given means. The
// classic interrupted-Poisson workload shape — bursts stress MAC
// contention and route caches in a way smooth CBR never does.
//
// Determinism: period lengths draw from the run RNG's dedicated
// "scengen.traffic" stream inside engine events, so two runs of the
// same scenario toggle at identical times.
type OnOff struct {
	Flow  int
	Src   hostid.ID
	Dst   hostid.ID
	Rate  float64 // packets per second while on
	Bytes int
	// MeanOnS / MeanOffS are the mean burst and silence durations in
	// seconds.
	MeanOnS  float64
	MeanOffS float64

	engine *sim.Engine
	sender Sender
	rng    *sim.RNG
	ticker *sim.Ticker
	toggle *sim.Timer
	on     bool
	seq    int

	// OnSend observes every emitted packet (metrics); Gate suppresses
	// emission when it returns false (dead source). Both as in CBR.
	OnSend func(pkt *routing.DataPacket)
	Gate   func() bool
}

// Start begins the flow: the source is "on" from the first tick, with
// the first toggle one mean burst length (drawn) later. The emission
// clock runs at the flow rate with the given phase, exactly like CBR,
// and is simply gated off during silences.
func (o *OnOff) Start(engine *sim.Engine, sender Sender, rng *sim.RNG, phase float64) {
	if o.Rate <= 0 || o.Bytes <= 0 || o.MeanOnS <= 0 || o.MeanOffS <= 0 {
		panic("traffic: invalid on/off parameters")
	}
	if sender == nil || rng == nil {
		panic("traffic: nil sender or rng")
	}
	o.engine = engine
	o.sender = sender
	o.rng = rng
	o.on = true
	o.toggle = sim.NewTimer(engine, o.flip)
	o.toggle.Reset(o.rng.Exp(sim.StreamScengenTraffic, o.MeanOnS))
	o.ticker = sim.NewTicker(engine, 1/o.Rate, phase, o.emit)
}

func (o *OnOff) flip() {
	o.on = !o.on
	mean := o.MeanOffS
	if o.on {
		mean = o.MeanOnS
	}
	o.toggle.Reset(o.rng.Exp(sim.StreamScengenTraffic, mean))
}

func (o *OnOff) emit() {
	if !o.on {
		return
	}
	if o.Gate != nil && !o.Gate() {
		return
	}
	o.seq++
	pkt := &routing.DataPacket{
		Flow:   o.Flow,
		Seq:    o.seq,
		Src:    o.Src,
		Dst:    o.Dst,
		Bytes:  o.Bytes,
		SentAt: o.engine.Now(),
	}
	if o.OnSend != nil {
		o.OnSend(pkt)
	}
	o.sender.SubmitData(pkt)
}

// Stop halts the flow and its toggle clock.
func (o *OnOff) Stop() {
	if o.ticker != nil {
		o.ticker.Stop()
	}
	if o.toggle != nil {
		o.toggle.Stop()
	}
}

// Emitted returns how many packets the flow has generated.
func (o *OnOff) Emitted() int { return o.seq }

// On reports whether the source is currently in a burst.
func (o *OnOff) On() bool { return o.on }
