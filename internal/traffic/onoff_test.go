package traffic

import (
	"testing"

	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

func runOnOff(seed int64) []*routing.DataPacket {
	e := sim.NewEngine()
	snk := &capture{}
	flow := &OnOff{Flow: 1, Src: 2, Dst: 9, Rate: 20, Bytes: 256, MeanOnS: 2, MeanOffS: 3}
	flow.Start(e, snk, sim.NewRNG(seed), 0)
	e.Run(120)
	return snk.pkts
}

// TestOnOffDeterministic: two runs with the same seed emit identical
// packet sequences (flow clocks draw only from the named RNG stream).
func TestOnOffDeterministic(t *testing.T) {
	a, b := runOnOff(7), runOnOff(7)
	if len(a) != len(b) {
		t.Fatalf("runs emitted %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestOnOffIsBursty: the flow actually goes silent — over a long run it
// emits meaningfully fewer packets than an always-on CBR at the same
// rate, but not zero, and there is at least one inter-packet gap much
// longer than the emission period (an off phase).
func TestOnOffIsBursty(t *testing.T) {
	pkts := runOnOff(3)
	alwaysOn := 20 * 120
	if len(pkts) == 0 {
		t.Fatal("flow never emitted")
	}
	if len(pkts) >= alwaysOn {
		t.Fatalf("emitted %d packets, as many as an always-on source", len(pkts))
	}
	longest := 0.0
	for i := 1; i < len(pkts); i++ {
		if gap := pkts[i].SentAt - pkts[i-1].SentAt; gap > longest {
			longest = gap
		}
	}
	if longest < 0.5 { // period is 1/20 s; an off phase means a ≫period gap
		t.Fatalf("longest inter-packet gap %v s: no silences observed", longest)
	}
}

// TestOnOffSequencesAndContents: seqs are contiguous from 1 and the
// addressing fields survive the gating.
func TestOnOffSequencesAndContents(t *testing.T) {
	pkts := runOnOff(11)
	for i, p := range pkts {
		if p.Seq != i+1 {
			t.Fatalf("packet %d has seq %d", i, p.Seq)
		}
		if p.Flow != 1 || p.Src != 2 || p.Dst != 9 || p.Bytes != 256 {
			t.Fatalf("packet %d = %+v", i, p)
		}
	}
}

// TestOnOffGateAndStop mirror the CBR behaviors.
func TestOnOffGateAndStop(t *testing.T) {
	e := sim.NewEngine()
	snk := &capture{}
	open := true
	flow := &OnOff{Flow: 1, Src: 1, Dst: 2, Rate: 10, Bytes: 64, MeanOnS: 1000, MeanOffS: 1}
	flow.Gate = func() bool { return open }
	flow.Start(e, snk, sim.NewRNG(1), 0)
	e.Run(2)
	open = false
	e.Run(4)
	n := len(snk.pkts)
	if n == 0 {
		t.Fatal("gated flow never emitted while open")
	}
	open = true
	flow.Stop()
	e.Run(10)
	if len(snk.pkts) != n {
		t.Fatalf("stopped flow kept emitting: %d -> %d", n, len(snk.pkts))
	}
}

func TestOnOffValidation(t *testing.T) {
	for name, flow := range map[string]*OnOff{
		"zero rate":     {Rate: 0, Bytes: 1, MeanOnS: 1, MeanOffS: 1},
		"zero bytes":    {Rate: 1, Bytes: 0, MeanOnS: 1, MeanOffS: 1},
		"zero on mean":  {Rate: 1, Bytes: 1, MeanOnS: 0, MeanOffS: 1},
		"zero off mean": {Rate: 1, Bytes: 1, MeanOnS: 1, MeanOffS: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			flow.Start(sim.NewEngine(), &capture{}, sim.NewRNG(1), 0)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil rng: no panic")
			}
		}()
		(&OnOff{Rate: 1, Bytes: 1, MeanOnS: 1, MeanOffS: 1}).Start(sim.NewEngine(), &capture{}, nil, 0)
	}()
}
