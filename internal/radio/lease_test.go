package radio

import (
	"testing"

	"ecgrid/internal/hostid"
)

func TestFrameLeaseAccounting(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		f := r.channel.NewFrame("data", 0, hostid.Broadcast, 64, nil)
		r.channel.Send(0, f)
	})
	r.engine.Run(1)
	c := r.channel.Counters()
	if c.FramesPooled != 1 || c.FramesReleased != 1 {
		t.Fatalf("pooled/released = %d/%d, want 1/1", c.FramesPooled, c.FramesReleased)
	}
	if n := r.channel.OutstandingFrames(); n != 0 {
		t.Fatalf("OutstandingFrames = %d after delivery, want 0", n)
	}
}

func TestShutdownReclaimsQueuedAndInFlight(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		// One long frame on the air plus several queued behind it; the
		// engine stops before any of them finishes.
		for i := 0; i < 4; i++ {
			r.channel.Send(0, r.channel.NewFrame("data", 0, hostid.Broadcast, 2000, nil))
		}
	})
	r.engine.Run(0.002) // inside the first frame's airtime
	if n := r.channel.OutstandingFrames(); n != 4 {
		t.Fatalf("OutstandingFrames = %d mid-flight, want 4", n)
	}
	r.channel.Shutdown()
	if n := r.channel.OutstandingFrames(); n != 0 {
		t.Fatalf("OutstandingFrames = %d after Shutdown, want 0", n)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	r := newRig(DefaultConfig())
	f := r.channel.NewFrame("data", 0, 1, 64, nil)
	r.channel.ReleaseFrame(f)
	defer func() {
		if recover() == nil {
			t.Fatal("second ReleaseFrame did not panic")
		}
	}()
	r.channel.ReleaseFrame(f)
}

func TestLiteralFramesIgnoreLeaseAccounting(t *testing.T) {
	r := newRig(DefaultConfig())
	f := &Frame{Kind: "data", Dst: 1, Bytes: 64}
	r.channel.ReleaseFrame(f) // non-pooled: no-op, no panic
	r.channel.ReleaseFrame(f)
	if n := r.channel.OutstandingFrames(); n != 0 {
		t.Fatalf("OutstandingFrames = %d with only literal frames, want 0", n)
	}
}
