package radio

// sendQueue is the per-station MAC transmit queue: a slice-backed deque
// with an explicit head index. The seed kept a plain slice and
// re-queued unicast retries with append([]*queued{...}, queue...),
// reallocating and copying the whole queue on every retry — O(queue)
// per retry, quadratic under a retry storm. Here popFront advances the
// head and pushFront backs it up into the dead prefix it left behind,
// so the retry path (always pop first, push its retry later) is O(1).
type sendQueue struct {
	items []queued
	head  int
}

func (q *sendQueue) len() int { return len(q.items) - q.head }

func (q *sendQueue) empty() bool { return q.head == len(q.items) }

func (q *sendQueue) pushBack(it queued) {
	q.items = append(q.items, it)
}

// pushFront is used only for MAC retries, which follow a popFront of
// the same frame: the head slot it vacated is normally still free, so
// the common case writes in place.
func (q *sendQueue) pushFront(it queued) {
	if q.head > 0 {
		q.head--
		q.items[q.head] = it
		return
	}
	q.items = append(q.items, queued{})
	copy(q.items[1:], q.items)
	q.items[0] = it
}

func (q *sendQueue) popFront() queued {
	it := q.items[q.head]
	q.items[q.head] = queued{} // release the frame pointer
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head > 32 && q.head*2 >= len(q.items):
		// The dead prefix dominates: slide the live tail down so append
		// growth never copies garbage. Each slide moves at most the live
		// elements and the head must grow by as much again to re-trigger,
		// so the cost stays amortized O(1) per operation.
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = queued{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return it
}

// clear drops all queued frames and releases their pointers.
func (q *sendQueue) clear() {
	for i := range q.items {
		q.items[i] = queued{}
	}
	q.items = q.items[:0]
	q.head = 0
}
