package radio

import (
	"math"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// pacer is a Mover- and SpeedBounded-capable endpoint moving in a
// straight line at constant velocity; its position is a pure function
// of engine time, like the real node layer's.
type pacer struct {
	id       hostid.ID
	engine   *sim.Engine
	battery  *energy.Battery
	x0, y0   float64
	vx, vy   float64
	received []*Frame
}

func (h *pacer) ID() hostid.ID            { return h.id }
func (h *pacer) Battery() *energy.Battery { return h.battery }
func (h *pacer) Deliver(f *Frame)         { h.received = append(h.received, f) }
func (h *pacer) MaxSpeedMS() float64      { return math.Hypot(h.vx, h.vy) }

func (h *pacer) Position() geom.Point {
	t := h.engine.Now()
	return geom.Point{X: h.x0 + h.vx*t, Y: h.y0 + h.vy*t}
}

// NextExit is the conservative straight-line bound: the current
// distance to the nearest edge of bounds over the speed.
func (h *pacer) NextExit(t float64, bounds geom.Rect) float64 {
	v := math.Hypot(h.vx, h.vy)
	if v == 0 {
		return math.Inf(1)
	}
	p := geom.Point{X: h.x0 + h.vx*t, Y: h.y0 + h.vy*t}
	d := math.Min(math.Min(p.X-bounds.Min.X, bounds.Max.X-p.X),
		math.Min(p.Y-bounds.Min.Y, bounds.Max.Y-p.Y))
	if d < 0 {
		return t
	}
	return t + d/v
}

// cacheRig is a rig over pacer hosts (indexed, speed-bounded), the
// population the receiver cache is built for.
type cacheRig struct {
	engine  *sim.Engine
	channel *Channel
	hosts   map[hostid.ID]*pacer
}

func newCacheRig(cfg Config) *cacheRig {
	e := sim.NewEngine()
	return &cacheRig{
		engine:  e,
		channel: NewChannel(e, sim.NewRNG(1), cfg),
		hosts:   make(map[hostid.ID]*pacer),
	}
}

func (r *cacheRig) addPacer(id hostid.ID, x, y, vx, vy float64) *pacer {
	h := &pacer{
		id: id, engine: r.engine,
		battery: energy.NewBattery(energy.PaperModel(), 1e6),
		x0:      x, y0: y, vx: vx, vy: vy,
	}
	r.hosts[id] = h
	r.channel.Attach(h)
	return h
}

func (r *cacheRig) sendAt(t float64, from hostid.ID) {
	r.engine.Schedule(t, func() {
		r.channel.Send(from, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
}

// TestRxCacheMissOnMembershipEvents is the property the epoch scheme
// must provide: any membership event touching a covered cell — an
// attach, a detach, a re-bucket — or any chEpoch-guarded event (an
// unindexed attach) between two transmissions from the same sender
// forces the second scan to miss. (Listen/sleep flips deliberately do
// NOT miss; see TestRxCacheListenFlipStaysHit.)
func TestRxCacheMissOnMembershipEvents(t *testing.T) {
	stats := func(r *cacheRig) RxCacheStats { return r.channel.RxCacheStats() }

	t.Run("baseline-hit", func(t *testing.T) {
		r := newCacheRig(DefaultConfig())
		r.addPacer(0, 500, 500, 0, 0)
		r.addPacer(1, 560, 500, 0, 0)
		r.sendAt(0.1, 0)
		r.sendAt(0.3, 0)
		r.engine.Run(1)
		if s := stats(r); s.Misses != 1 || s.Hits != 1 {
			t.Fatalf("misses=%d hits=%d, want 1 miss then 1 hit", s.Misses, s.Hits)
		}
	})

	t.Run("attach-forces-miss", func(t *testing.T) {
		r := newCacheRig(DefaultConfig())
		r.addPacer(0, 500, 500, 0, 0)
		r.addPacer(1, 560, 500, 0, 0)
		r.sendAt(0.1, 0)
		r.engine.Schedule(0.2, func() { r.addPacer(2, 440, 500, 0, 0) })
		r.sendAt(0.3, 0)
		r.engine.Run(1)
		if s := stats(r); s.Misses != 2 || s.Hits != 0 {
			t.Fatalf("misses=%d hits=%d, want attach to force a second miss", s.Misses, s.Hits)
		}
		if got := len(r.hosts[2].received); got != 1 {
			t.Fatalf("late attacher received %d frames, want 1", got)
		}
	})

	t.Run("detach-forces-miss", func(t *testing.T) {
		r := newCacheRig(DefaultConfig())
		r.addPacer(0, 500, 500, 0, 0)
		r.addPacer(1, 560, 500, 0, 0)
		r.addPacer(2, 440, 500, 0, 0)
		r.sendAt(0.1, 0)
		r.engine.Schedule(0.2, func() { r.channel.Detach(2) })
		r.sendAt(0.3, 0)
		r.engine.Run(1)
		if s := stats(r); s.Misses != 2 || s.Hits != 0 {
			t.Fatalf("misses=%d hits=%d, want detach to force a second miss", s.Misses, s.Hits)
		}
		if got := len(r.hosts[2].received); got != 1 {
			t.Fatalf("detached host received %d frames, want only the first", got)
		}
	})

	t.Run("rebucket-forces-miss", func(t *testing.T) {
		// Host 1 walks +x at 20 m/s from x=560: its bucket's loose bounds
		// end at x=656.25 (cell side 125, slack 31.25), so it re-buckets
		// at t≈4.8, bumping both the departed and the arrival cell inside
		// the sender's cover.
		r := newCacheRig(DefaultConfig())
		r.addPacer(0, 500, 500, 0, 0)
		r.addPacer(1, 560, 500, 20, 0)
		r.sendAt(0.1, 0)
		r.sendAt(6.0, 0)
		r.engine.Run(7)
		if s := stats(r); s.Misses != 2 || s.Hits != 0 {
			t.Fatalf("misses=%d hits=%d, want the re-bucket to force a second miss", s.Misses, s.Hits)
		}
	})

	t.Run("unindexed-attach-forces-miss", func(t *testing.T) {
		// A Mover-less endpoint has no cell to bump; the channel-wide
		// epoch must invalidate every entry instead.
		r := newCacheRig(DefaultConfig())
		r.addPacer(0, 500, 500, 0, 0)
		r.addPacer(1, 560, 500, 0, 0)
		r.sendAt(0.1, 0)
		r.engine.Schedule(0.2, func() {
			h := &fakeHost{id: 9, pos: geom.Point{X: 430, Y: 500},
				battery: energy.NewBattery(energy.PaperModel(), 1e6)}
			r.channel.Attach(h)
		})
		r.sendAt(0.3, 0)
		r.engine.Run(1)
		if s := stats(r); s.Misses != 2 || s.Hits != 0 {
			t.Fatalf("misses=%d hits=%d, want the unindexed attach to force a miss", s.Misses, s.Hits)
		}
	})

	// Property sweep: random stationary populations, a random covered
	// attach or detach between two transmissions — the second scan must
	// never replay a stale candidate set. Every host is placed within
	// the padded query radius of the sender, so its own cell is covered
	// (the cover argument) and its membership events must be seen; an
	// event outside the cover is allowed to — and should — keep the hit.
	t.Run("random-attach-detach", func(t *testing.T) {
		rng := sim.NewRNG(42)
		for trial := 0; trial < 25; trial++ {
			r := newCacheRig(DefaultConfig())
			r.addPacer(0, 500, 500, 0, 0)
			n := 5 + rng.Intn("trial", 20)
			for i := 1; i <= n; i++ {
				x := rng.Uniform("x", 350, 650)
				y := rng.Uniform("y", 350, 650)
				r.addPacer(hostid.ID(i), x, y, 0, 0)
			}
			r.sendAt(0.1, 0)
			if trial%2 == 0 {
				// Attach inside the padded cover (within Range of the
				// sender, so its own cell is covered).
				x := rng.Uniform("ax", 350, 650)
				y := rng.Uniform("ay", 350, 650)
				r.engine.Schedule(0.2, func() { r.addPacer(hostid.ID(n+1), x, y, 0, 0) })
			} else {
				victim := hostid.ID(1 + rng.Intn("victim", n))
				r.engine.Schedule(0.2, func() { r.channel.Detach(victim) })
			}
			r.sendAt(0.3, 0)
			r.engine.Run(1)
			if s := r.channel.RxCacheStats(); s.Misses != 2 {
				t.Fatalf("trial %d: misses=%d hits=%d, want 2 misses", trial, s.Misses, s.Hits)
			}
		}
	})
}

// TestRxCacheListenFlipStaysHit pins the deliberate design deviation:
// sleep/wake transitions do not invalidate entries. The candidate list
// caches sleeping hosts too, and replay reads the listening bit live —
// so duty-cycled protocols (SPAN/GAF put most of the population to
// sleep) keep their hit rate while delivery stays byte-identical to the
// reference scan, which reads the same bit at the same instant.
func TestRxCacheListenFlipStaysHit(t *testing.T) {
	r := newCacheRig(DefaultConfig())
	r.addPacer(0, 500, 500, 0, 0)
	b := r.addPacer(1, 560, 500, 0, 0)
	r.sendAt(0.1, 0)
	r.engine.Schedule(0.2, func() { r.channel.SetListening(1, false) })
	r.sendAt(0.3, 0)
	r.engine.Schedule(0.4, func() { r.channel.SetListening(1, true) })
	r.sendAt(0.5, 0)
	r.engine.Run(1)
	s := r.channel.RxCacheStats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("misses=%d hits=%d, want listen flips to replay from cache", s.Misses, s.Hits)
	}
	if got := len(b.received); got != 2 {
		t.Fatalf("flipping host received %d frames, want 2 (asleep for the middle one)", got)
	}
}

// TestRxCacheDriftRecheck pins the margin machinery: a cached decision
// is only trusted strictly before its drift deadline; past it the
// decision is re-derived from the live position inside the hit, so a
// boundary host moving out of range stops receiving without a miss.
func TestRxCacheDriftRecheck(t *testing.T) {
	r := newCacheRig(DefaultConfig())
	r.addPacer(0, 500, 500, 0, 0)
	// In range by 1 m at the first send, walking away at 10 m/s: out of
	// range at the second send, but still inside its bucket's loose
	// bounds, so the cover is unchanged and the scan replays.
	b := r.addPacer(1, 749, 500, 10, 0)
	r.sendAt(0.0, 0)
	r.sendAt(0.5, 0)
	r.engine.Run(1)
	s := r.channel.RxCacheStats()
	if s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("misses=%d hits=%d, want the second scan to replay", s.Misses, s.Hits)
	}
	if s.Rechecks == 0 {
		t.Fatal("no drift rechecks recorded for a boundary host past its deadline")
	}
	if got := len(b.received); got != 1 {
		t.Fatalf("boundary host received %d frames, want only the in-range one", got)
	}
}

// TestStationBusyMemo exercises the same-instant carrier-sense memo
// directly: two probes by one station at one instant cost one index
// scan, and a transmission starting in between (txEpoch bump)
// invalidates the memo even within the instant.
func TestStationBusyMemo(t *testing.T) {
	r := newCacheRig(DefaultConfig())
	r.addPacer(0, 500, 500, 0, 0)
	r.addPacer(1, 560, 500, 0, 0)
	st := r.channel.stations[0]
	pos := geom.Point{X: 500, Y: 500}
	r.engine.Schedule(0.1, func() {
		b1 := r.channel.stationBusy(st, pos)
		b2 := r.channel.stationBusy(st, pos)
		if b1 || b2 {
			t.Error("idle medium probed busy")
		}
		if s := r.channel.RxCacheStats(); s.BusyHits != 1 {
			t.Errorf("BusyHits=%d after back-to-back probes, want 1", s.BusyHits)
		}
		// A same-instant carrier-sense set change must not replay.
		r.channel.txEpoch++
		r.channel.stationBusy(st, pos)
		if s := r.channel.RxCacheStats(); s.BusyHits != 1 {
			t.Errorf("BusyHits=%d after txEpoch bump, want still 1", s.BusyHits)
		}
	})
	// A later instant re-probes: the memo is same-instant only.
	r.engine.Schedule(0.2, func() {
		r.channel.stationBusy(st, pos)
		if s := r.channel.RxCacheStats(); s.BusyHits != 1 {
			t.Errorf("BusyHits=%d at a later instant, want still 1", s.BusyHits)
		}
	})
	r.engine.Run(1)

	// The reference path must not memo at all.
	cfg := DefaultConfig()
	cfg.NoRxCache = true
	ref := newCacheRig(cfg)
	ref.addPacer(0, 500, 500, 0, 0)
	rst := ref.channel.stations[0]
	ref.engine.Schedule(0.1, func() {
		ref.channel.stationBusy(rst, pos)
		ref.channel.stationBusy(rst, pos)
	})
	ref.engine.Run(1)
	if s := ref.channel.RxCacheStats(); s.BusyHits != 0 {
		t.Fatalf("NoRxCache path recorded %d BusyHits, want 0", s.BusyHits)
	}
}
