package radio

import (
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
)

func TestInterceptorCorruptsVetoedReceptions(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.channel.Interceptor = func(f *Frame, from, to geom.Point) bool { return false }
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(b.received) != 0 {
		t.Fatal("vetoed frame was delivered")
	}
	c := r.channel.Counters()
	if c.Jammed != 1 {
		t.Fatalf("Jammed = %d, want 1", c.Jammed)
	}
	if c.Deliveries != 0 {
		t.Fatalf("Deliveries = %d, want 0", c.Deliveries)
	}
}

func TestInterceptorIsPositional(t *testing.T) {
	// Veto only receptions whose receiver sits west of x=150: the near
	// host is jammed, the far (but in-range) host still receives.
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	near := r.addHost(1, 100, 0)
	far := r.addHost(2, 200, 0)
	r.channel.Interceptor = func(f *Frame, from, to geom.Point) bool { return to.X >= 150 }
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(near.received) != 0 {
		t.Fatal("jammed receiver got the frame")
	}
	if len(far.received) != 1 {
		t.Fatal("clear receiver missed the frame")
	}
}

func TestInterceptorJammedReceiverStillPaysEnergy(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.channel.Interceptor = func(f *Frame, from, to geom.Point) bool { return false }
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 512})
	})
	r.engine.Run(0.05)
	now := r.engine.Now()
	if got := b.battery.ConsumedIn(now, energy.Receive); got <= 0 {
		t.Fatalf("jammed receiver consumed %g J in receive mode, want > 0", got)
	}
}

func TestNilInterceptorDeliversNormally(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(b.received) != 1 {
		t.Fatal("frame lost without an interceptor")
	}
	if r.channel.Counters().Jammed != 0 {
		t.Fatal("Jammed counted without an interceptor")
	}
}
