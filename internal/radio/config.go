package radio

// Config sets the physical and MAC parameters of the channel.
type Config struct {
	// Range is the transmission (and carrier-sense) distance in meters.
	// The paper uses 250 m.
	Range float64
	// BitrateBps is the channel bitrate in bits per second. The paper's
	// Cabletron card runs at 2 Mbps.
	BitrateBps float64
	// PropDelay is the fixed propagation delay in seconds. At 250 m it
	// is under a microsecond; it exists so latency is never exactly
	// zero.
	PropDelay float64
	// SlotTime is the backoff slot duration in seconds (802.11 DS: 20 µs).
	SlotTime float64
	// DIFS is the idle period sensed before any transmission attempt.
	DIFS float64
	// MinBackoffSlots and MaxBackoffSlots bound the contention window.
	// The window starts at MinBackoffSlots and doubles per deferral or
	// retry up to MaxBackoffSlots.
	MinBackoffSlots int
	MaxBackoffSlots int
	// MACRetries is how many times a unicast frame is retransmitted
	// when its destination failed to receive it. The channel emulates
	// the ACK/timeout loop without simulating ACK frames: it knows
	// ground truth about reception.
	MACRetries int
	// CollisionsEnabled toggles collision corruption. Disabling it
	// yields the idealized channel used by the ablation benchmark.
	CollisionsEnabled bool
	// QueueLimit caps each host's MAC transmit queue; further Sends are
	// dropped (tail drop), as a real interface would.
	QueueLimit int
	// BruteForce disables the spatial neighbor index and scans the full
	// population per transmission, as the seed implementation did. The
	// two paths are byte-identical (see internal/runner's equivalence
	// test); brute force exists as the reference oracle and for
	// debugging, not for production runs.
	BruteForce bool `json:",omitempty"`
	// IndexCellM and IndexSlackM override the spatial index cell side
	// and staleness slack, in meters. Zero selects defaults derived from
	// Range. They tune performance only — results are identical for any
	// positive values.
	IndexCellM  float64 `json:",omitempty"`
	IndexSlackM float64 `json:",omitempty"`
	// NoRxCache disables the receiver-plane cache (rxcache.go) and runs
	// every transmission through the uncached scan, as the live
	// reference oracle for the cache's byte-identity — the same role
	// BruteForce plays for the spatial index. BruteForce implies it (the
	// cache needs the index).
	NoRxCache bool `json:",omitempty"`
	// RxCachePadM widens the cached receiver scan beyond Range, in
	// meters: the pad is the distance margin boundary hosts get before
	// their cached admit decision must be re-derived. Zero selects
	// Range/8; negative is invalid. Performance-only — results are
	// identical for any value.
	RxCachePadM float64 `json:",omitempty"`
}

// DefaultConfig returns parameters matching the paper's simulation setup.
func DefaultConfig() Config {
	return Config{
		Range:             250,
		BitrateBps:        2e6,
		PropDelay:         1e-6,
		SlotTime:          20e-6,
		DIFS:              50e-6,
		MinBackoffSlots:   4,
		MaxBackoffSlots:   64,
		MACRetries:        3,
		CollisionsEnabled: true,
		QueueLimit:        64,
	}
}

// AirTime returns the seconds a frame of the given size occupies the
// medium.
func (c Config) AirTime(bytes int) float64 {
	return float64(bytes*8) / c.BitrateBps
}

// OnAirInterval returns the longest interval between a transmission
// start and its final reception instant for frames up to maxBytes:
// serialization of the largest frame plus the propagation delay. It
// bounds how far into the future a committed send can still deliver,
// which is what internal/shard's conservative lookahead is built from.
func (c Config) OnAirInterval(maxBytes int) float64 {
	return c.AirTime(maxBytes) + c.PropDelay
}
