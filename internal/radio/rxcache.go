package radio

// The receiver-plane cache: between membership changes and sleep
// transitions a sender's neighborhood is identical frame after frame, so
// startTransmission can replay its last admitted receiver list instead
// of re-running the spatial query, the listening/detached filter, the
// exact distance checks, and the ID sort. The design (and the proof
// sketch of byte-identity against the NoRxCache reference path) is
// documented in DESIGN.md §16; the short form:
//
//   - Each station's entry caches every host bucketed in the cells of a
//     padded scan (radius Range + rxPad) at fill time — sleeping hosts
//     included, but left unevaluated — ID-sorted, each listening host
//     with its in-range decision and a drift deadline (safeUntil)
//     derived from its distance margin |d − Range| and the channel-wide
//     speed bound vmax. Listening and detached are read live at replay,
//     so duty-cycle flips (SPAN/GAF sleeping most of the population)
//     never invalidate an entry; a candidate found listening for the
//     first time is evaluated then, from its live position.
//   - The entry is keyed by the exact (cell, epoch) cover of the padded
//     scan (spatial.Index.CoverEpochs). Any add/remove/re-bucket through
//     a covered cell bumps a covered epoch and forces a miss. A host
//     bucketed outside the cover cannot be in range (its position would
//     place its own cell inside the cover), so the cover makes the
//     cached candidate *set* exact; the margins make the cached
//     *decisions* exact between fills.
//   - Stations without spatial info (no Mover) and speed-bound changes
//     are guarded by a channel-wide epoch (chEpoch); hosts that cannot
//     bound their speed degrade vmax to +Inf, which restricts hits to
//     the same instant as the fill — always sound, because positions are
//     pure functions of time and the (when, seq) total order interleaves
//     no motion between same-instant events.
//
// The replay path makes exactly the RNG draws and Interceptor calls of
// the reference path (one Interceptor call per admitted receiver, in ID
// order, with live positions), so faulted runs stay byte-identical too.

import (
	"math"
	"slices"

	"ecgrid/internal/geom"
	"ecgrid/internal/spatial"
)

// rxMarginGuard (meters) is shaved off every cached distance margin so
// the drift bound survives floating-point slop in position
// interpolation, mirroring spatial's slackGuard: one millimeter dwarfs
// accumulated rounding and is far below radio-range scale.
const rxMarginGuard = 1e-3

// rxCand is one cached candidate: a host bucketed inside the entry's
// cover at fill time (sleeping ones included — listening is read live
// at replay, so sleep/wake flips never invalidate an entry).
type rxCand struct {
	st *station
	// eval reports whether inRange/safeUntil have ever been derived.
	// Sleeping candidates are cached unevaluated — the reference scan
	// never reads a sleeping host's position, so the fill must not
	// either (it would turn the fill into a full-population position
	// sweep on duty-cycled protocols). They are evaluated on the first
	// replay that finds them listening.
	eval    bool
	inRange bool
	// safeUntil is the earliest instant the distance decision could
	// flip: derivation instant plus distance margin over the maximal
	// closing speed. Strictly before it the decision is trusted; at or
	// past it the decision is re-derived from the live position (and the
	// deadline refreshed), which keeps boundary hosts exact without a
	// full miss.
	safeUntil float64
}

// rxCache is one station's receiver-set cache entry. Embedded by value
// in station; its slices are recycled across fills.
type rxCache struct {
	valid bool
	at    float64 // fill instant
	epoch uint64  // Channel.chEpoch at fill
	cover []spatial.CellEpoch
	list  []rxCand // ID-sorted candidates (sleeping included)
}

// SpeedBounded is an optional Endpoint extension: hosts that can bound
// their own speed for the whole run implement it (the node layer
// delegates to mobility.SpeedBoundOf). The receiver cache uses the
// loosest bound over all attached hosts to turn distance margins into
// time; endpoints without it degrade the cache to same-instant replays.
type SpeedBounded interface {
	// MaxSpeedMS returns an upper bound, in meters per second, on the
	// host's speed at every time ≥ 0.
	MaxSpeedMS() float64
}

// RxCacheStats is receiver-cache telemetry. Pure observability: none of
// it feeds back into the simulation, and it is deliberately kept out of
// Counters so cached and reference runs fingerprint identically.
type RxCacheStats struct {
	// Hits and Misses count startTransmission receiver scans replayed
	// from cache versus recomputed (and refilled).
	Hits   uint64
	Misses uint64
	// Rechecks counts per-candidate admit decisions re-derived inside a
	// hit because the candidate's drift deadline had passed.
	Rechecks uint64
	// BusyHits counts carrier-sense probes answered by the same-instant
	// busyAround memo.
	BusyHits uint64
}

// RxCacheStats returns the channel's receiver-cache telemetry.
func (c *Channel) RxCacheStats() RxCacheStats { return c.rxStats }

// safeHorizon converts a distance margin at instant now into the
// earliest future instant the margin could be consumed: two hosts close
// on each other at most 2·vmax meters per second. A zero vmax means
// nothing ever moves, so every decision holds forever; an infinite vmax
// (some host's speed is unbounded) collapses the horizon to now, i.e.
// same-instant trust only.
func (c *Channel) safeHorizon(now, margin float64) float64 {
	if margin < 0 {
		margin = 0
	}
	if c.vmax == 0 {
		return math.Inf(1)
	}
	return now + margin/(2*c.vmax)
}

// cachedReceivers is startTransmission's receiver scan when the cache is
// enabled: replay the sender's cached entry if its cover still holds,
// otherwise run the reference scan (padded) and refill. Both paths admit
// the identical receiver set in identical ID order as the NoRxCache
// reference.
func (c *Channel) cachedReceivers(tx *transmission, st *station, pos geom.Point, r2 float64) {
	now := c.engine.Now()
	rq := c.cfg.Range + c.rxPad
	c.cover = c.index.CoverEpochs(pos, rq, c.cover[:0])
	if c.replayFromCache(tx, st, pos, r2, now) {
		c.rxStats.Hits++
		return
	}
	c.rxStats.Misses++
	c.fillCache(tx, st, pos, r2, rq, now)
}

// replayFromCache validates the sender's entry against the freshly
// computed cover (in c.cover) and, on a hit, admits the cached receivers
// with zero querying, filtering, or sorting. Candidates whose drift
// deadline passed have their decision re-derived in place.
func (c *Channel) replayFromCache(tx *transmission, st *station, pos geom.Point, r2, now float64) bool {
	e := &st.rxc
	if !e.valid || e.epoch != c.chEpoch || len(e.cover) != len(c.cover) {
		return false
	}
	// Exact cover comparison, not a hash: a digest collision would
	// silently break byte-identity, and the cover is a few dozen entries.
	for i := range c.cover {
		if c.cover[i] != e.cover[i] {
			return false
		}
	}
	tx.rx = c.rxBuf(len(e.list))
	sameInstant := now == e.at
	for i := range e.list {
		cd := &e.list[i]
		// Listening and detached are read live, exactly as the reference
		// scan reads them at this instant — a sleeping candidate costs
		// two boolean loads instead of an entry invalidation.
		if !cd.st.listening || cd.st.detached {
			continue
		}
		if !cd.eval || (!sameInstant && now >= cd.safeUntil) {
			c.rxStats.Rechecks++
			opos := cd.st.ep.Position()
			d2 := pos.Dist2(opos)
			cd.eval = true
			cd.inRange = d2 <= r2
			cd.safeUntil = c.safeHorizon(now, math.Abs(math.Sqrt(d2)-c.cfg.Range)-rxMarginGuard)
			if cd.inRange {
				c.admitReception(tx, cd.st, pos, opos)
			}
			continue
		}
		if cd.inRange {
			// The receiver position is only consumed by an Interceptor;
			// read it live so fault hooks see exactly what the reference
			// path would hand them.
			var opos geom.Point
			if c.Interceptor != nil {
				opos = cd.st.ep.Position()
			}
			c.admitReception(tx, cd.st, pos, opos)
		}
	}
	return true
}

// fillCache runs the padded reference scan, admits the in-range
// receivers exactly as the NoRxCache path would, and rebuilds the
// sender's entry from the scan. The pad widens only what is cached —
// admission still uses the exact Range — buying each boundary candidate
// a distance margin before its decision needs re-deriving.
func (c *Channel) fillCache(tx *transmission, st *station, pos geom.Point, r2, rq, now float64) {
	c.cand = c.index.NearbyAppend(pos, rq, c.cand[:0])
	for _, oid := range c.unindexed {
		c.cand = append(c.cand, spatial.Candidate[*station]{ID: oid, Payload: c.stations[oid]})
	}
	c.keys = c.keys[:0]
	for i := range c.cand {
		cd := &c.cand[i]
		// Sleeping candidates are cached too (their listening bit is read
		// live at replay); only the sender itself is excluded.
		if cd.Payload == st {
			continue
		}
		c.keys = append(c.keys, int64(cd.ID)<<32|int64(i))
	}
	slices.Sort(c.keys)
	e := &st.rxc
	e.cover = append(e.cover[:0], c.cover...)
	// Grow once instead of doubling through the append loop: first fills
	// otherwise allocate log(len) times per station, which at dense
	// populations is real GC churn.
	e.list = slices.Grow(e.list[:0], len(c.keys))
	e.at = now
	e.epoch = c.chEpoch
	e.valid = true
	tx.rx = c.rxBuf(len(c.keys))
	for _, k := range c.keys {
		other := c.cand[k&(1<<32-1)].Payload
		if !other.listening || other.detached {
			// Cached unevaluated: the reference scan skips sleeping hosts
			// before reading their position, and so must the fill.
			e.list = append(e.list, rxCand{st: other})
			continue
		}
		opos := other.ep.Position()
		d2 := pos.Dist2(opos)
		inRange := d2 <= r2
		e.list = append(e.list, rxCand{
			st:        other,
			eval:      true,
			inRange:   inRange,
			safeUntil: c.safeHorizon(now, math.Abs(math.Sqrt(d2)-c.cfg.Range)-rxMarginGuard),
		})
		if inRange {
			c.admitReception(tx, other, pos, opos)
		}
	}
}

// noteSpeedBound folds one attaching endpoint's speed bound into the
// channel-wide vmax. Raising vmax loosens every cached drift deadline,
// so it must invalidate all entries; chEpoch does that wholesale.
func (c *Channel) noteSpeedBound(ep Endpoint) {
	v := math.Inf(1)
	if sb, ok := ep.(SpeedBounded); ok {
		if b := sb.MaxSpeedMS(); b >= 0 && !math.IsNaN(b) {
			v = b
		}
	}
	if v > c.vmax {
		c.vmax = v
		c.chEpoch++
	}
}
