package radio

import (
	"math"
	"testing"
	"testing/quick"

	"ecgrid/internal/energy"
	"ecgrid/internal/hostid"
)

// Additional channel tests: ordering, energy conservation, per-kind
// accounting, and randomized-traffic properties.

func TestUnicastOrderingPreserved(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		for i := 0; i < 10; i++ {
			kind := string(rune('a' + i))
			r.channel.Send(0, &Frame{Kind: kind, Dst: 1, Bytes: 100})
		}
	})
	r.engine.Run(2)
	if len(b.received) != 10 {
		t.Fatalf("delivered %d/10", len(b.received))
	}
	for i, f := range b.received {
		if f.Kind != string(rune('a'+i)) {
			t.Fatalf("frame %d out of order: %q", i, f.Kind)
		}
	}
}

func TestEnergyModesReturnToIdle(t *testing.T) {
	r := newRig(DefaultConfig())
	a := r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "x", Dst: 1, Bytes: 1000})
	})
	r.engine.Run(1)
	if a.battery.Mode() != energy.Idle || b.battery.Mode() != energy.Idle {
		t.Fatalf("modes after quiet period: %v, %v", a.battery.Mode(), b.battery.Mode())
	}
}

func TestBystanderPaysReceiveEnergyForOverheardUnicast(t *testing.T) {
	// Overhearers inside range decode the frame (and pay rx power) even
	// when it is not addressed to them — the Feeney measurement the
	// energy model comes from behaves this way.
	cfg := DefaultConfig()
	r := newRig(cfg)
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	c := r.addHost(2, 50, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "x", Dst: 1, Bytes: 2000})
	})
	r.engine.Run(1)
	if got := c.battery.ConsumedIn(1, energy.Receive); got <= 0 {
		t.Fatalf("bystander receive energy = %v", got)
	}
	if len(c.received) != 0 {
		t.Fatal("bystander received the unicast payload")
	}
}

func TestPerKindAccounting(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 50})
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 50})
		r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 500})
	})
	r.engine.Run(1)
	pk := r.channel.PerKind()
	if pk["hello"].Frames != 2 || pk["hello"].Bytes != 100 {
		t.Fatalf("hello = %+v", pk["hello"])
	}
	if pk["data"].Frames != 1 || pk["data"].Bytes != 500 {
		t.Fatalf("data = %+v", pk["data"])
	}
	// The snapshot is a copy: mutating it must not affect the channel.
	pk["hello"] = KindCount{}
	if r.channel.PerKind()["hello"].Frames != 2 {
		t.Fatal("PerKind returned a live reference")
	}
}

func TestEnergyConservationUnderRandomTraffic(t *testing.T) {
	// Total consumed across hosts must equal the sum of per-mode
	// consumption, and every host's consumed+remaining must equal its
	// initial charge — under arbitrary traffic.
	f := func(seed int64, n uint8) bool {
		cfg := DefaultConfig()
		r := newRig(cfg)
		hosts := make([]*fakeHost, 0, 5)
		for i := 0; i < 5; i++ {
			hosts = append(hosts, r.addHost(hostid.ID(i), float64(i)*80, 0))
		}
		rng := newTestRand(seed)
		for i := 0; i < int(n%40); i++ {
			src := hostid.ID(rng.Intn(5))
			dst := hostid.Broadcast
			if rng.Intn(2) == 0 {
				dst = hostid.ID(rng.Intn(5))
			}
			at := rng.Float64() * 2
			bytes := 20 + rng.Intn(1000)
			r.engine.Schedule(at, func() {
				if r.channel.Listening(src) {
					r.channel.Send(src, &Frame{Kind: "x", Dst: dst, Bytes: bytes})
				}
			})
		}
		r.engine.Run(5)
		for _, h := range hosts {
			consumed := h.battery.Consumed(5)
			remaining := h.battery.Remaining(5)
			if math.Abs(consumed+remaining-1e6) > 1e-6 {
				return false
			}
			perMode := 0.0
			for _, m := range []energy.Mode{energy.Idle, energy.Transmit, energy.Receive, energy.Sleep} {
				perMode += h.battery.ConsumedIn(5, m)
			}
			if math.Abs(perMode-consumed) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveriesNeverExceedQueuedProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		cfg := DefaultConfig()
		r := newRig(cfg)
		for i := 0; i < 4; i++ {
			r.addHost(hostid.ID(i), float64(i)*60, 0)
		}
		rng := newTestRand(seed)
		sends := int(n % 30)
		for i := 0; i < sends; i++ {
			src := hostid.ID(rng.Intn(4))
			at := rng.Float64()
			r.engine.Schedule(at, func() {
				r.channel.Send(src, &Frame{Kind: "x", Dst: hostid.Broadcast, Bytes: 64})
			})
		}
		r.engine.Run(3)
		ct := r.channel.Counters()
		// Each broadcast can be delivered to at most 3 receivers.
		return ct.Deliveries <= ct.FramesSent*3 && ct.FramesSent <= ct.FramesQueued+ct.Retries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// newTestRand gives tests a local deterministic source.
func newTestRand(seed int64) *testRand { return &testRand{state: uint64(seed)*2654435761 + 1} }

type testRand struct{ state uint64 }

func (r *testRand) next() uint64 {
	r.state ^= r.state << 13
	r.state ^= r.state >> 7
	r.state ^= r.state << 17
	return r.state
}

func (r *testRand) Intn(n int) int   { return int(r.next() % uint64(n)) }
func (r *testRand) Float64() float64 { return float64(r.next()%1e9) / 1e9 }
