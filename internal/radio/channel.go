package radio

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
	"ecgrid/internal/spatial"
)

// Endpoint is what the channel needs from an attached host. The node
// layer implements it.
type Endpoint interface {
	// ID returns the host identifier.
	ID() hostid.ID
	// Position returns the host's current location.
	Position() geom.Point
	// Battery returns the host's battery; the channel drives its
	// radio-mode transitions.
	Battery() *energy.Battery
	// Deliver hands a successfully received frame to the host's
	// protocol stack.
	Deliver(f *Frame)
}

// Mover is an optional Endpoint extension: hosts that can bound their
// own future movement implement it so the channel's spatial index can
// re-bucket them event-driven instead of scanning. NextExit must return
// a conservative (never late) estimate of the earliest time ≥ t at
// which the host's position may leave bounds, or +Inf if it never will.
// Endpoints without it (test stubs) are kept on a brute-force side list
// and still receive correctly.
type Mover interface {
	NextExit(t float64, bounds geom.Rect) float64
}

// transmission is a frame in flight. Transmissions are pooled: by the
// end of endTransmission nothing references the struct (the carrier
// sense set, the sender, and every receiving list have let go), so it is
// recycled for the next startTransmission.
type transmission struct {
	frame   *Frame
	sender  *station
	from    geom.Point // sender position at transmission start
	ends    float64
	rx      []reception // fixed-capacity: receiving maps hold &rx[i]
	seq     uint64      // carrier-sense index key
	attempt int         // retry count for unicast
	live    int         // position in Channel.liveTx (swap-delete index)
	endFn   func()      // endTransmission(self), bound once per pooled struct
}

// reception is one receiver's view of a transmission.
type reception struct {
	tx        *transmission
	st        *station
	corrupted bool
}

// station is the channel-side state of an attached endpoint.
type station struct {
	ep        Endpoint
	listening bool
	detached  bool

	transmitting *transmission
	// tryFn is the backoff-expiry callback bound once at Attach, so each
	// medium-access cycle schedules without allocating a closure.
	tryFn func()
	// receiving holds the in-progress receptions at this station. It is
	// a slice, not a map: stations overhear at most a handful of frames
	// at once, so a linear scan beats hashing, and every consumer is
	// either a pure existence check or an order-insensitive corruption
	// sweep, so insertion order (which is deterministic) never shows.
	receiving []*reception
	queue     sendQueue
	accessing bool // backoff event pending
	cwSlots   int  // current contention window

	// unidx marks a station on the channel's unindexed side list; its
	// listen flips invalidate caches via the channel-wide epoch instead
	// of a cell epoch (see rxcache.go).
	unidx bool
	// rxc is the station's receiver-set cache entry (rxcache.go).
	rxc rxCache
	// Same-instant carrier-sense memo: busyVal answers busyAround for
	// this station while the clock reads busyAt and no transmission has
	// started or ended since (busyEpoch == Channel.txEpoch).
	busyAt    float64
	busyEpoch uint64
	busyVal   bool
	busySet   bool
}

// dropReceiving removes one reception from the station's in-progress
// list by identity. Swap-delete: order is not meaningful (see receiving).
func (s *station) dropReceiving(r *reception) bool {
	for j, o := range s.receiving {
		if o == r {
			last := len(s.receiving) - 1
			s.receiving[j] = s.receiving[last]
			s.receiving[last] = nil
			s.receiving = s.receiving[:last]
			return true
		}
	}
	return false
}

// abortReceiving corrupts and clears every in-progress reception (the
// station slept or died mid-frame).
func (s *station) abortReceiving() {
	for i, r := range s.receiving {
		r.corrupted = true
		s.receiving[i] = nil
	}
	s.receiving = s.receiving[:0]
}

// queued is a frame waiting for medium access.
type queued struct {
	frame   *Frame
	attempt int
}

// mode derives the energy mode the station should be charged at.
func (s *station) mode() energy.Mode {
	switch {
	case !s.listening:
		return energy.Sleep
	case s.transmitting != nil:
		return energy.Transmit
	case len(s.receiving) > 0:
		return energy.Receive
	default:
		return energy.Idle
	}
}

// Channel is the shared wireless medium. All methods must be called from
// simulation events (the engine is single-threaded).
type Channel struct {
	engine   *sim.Engine
	rng      *sim.RNG
	cfg      Config
	stations map[hostid.ID]*station
	order    []hostid.ID // attached IDs, sorted: deterministic iteration
	active   map[*transmission]struct{}
	counters Counters
	perKind  map[string]KindCount

	// Spatial acceleration (nil when cfg.BruteForce): index buckets the
	// Mover-capable stations for receiver discovery, txIdx holds the
	// origins of in-flight transmissions for carrier sense, and
	// unindexed lists stations without motion info (sorted; scanned
	// brute-force and merged into the candidate set).
	index     *spatial.Index[*station]
	txIdx     *spatial.PointSet
	unindexed []hostid.ID
	// Receiver-scan scratch: cand collects the index's unsorted
	// candidates; cpos holds each admitted candidate's position (parallel
	// to cand); keys imposes host-ID iteration order by sorting packed
	// (ID, candidate-index) int64s over only the candidates that passed
	// the receiver filter — a plain integer sort over the survivors, an
	// order of magnitude cheaper than sorting all candidate structs with
	// a comparison closure. rxFree recycles reception buffers (their
	// pointers leave the receiving lists before the buffer is pooled).
	cand   []spatial.Candidate[*station]
	cpos   []geom.Point
	keys   []int64
	rxFree [][]reception
	// Receiver-set cache state (rxcache.go). rxCacheOn gates the whole
	// plane: it requires the spatial index and is switched off by
	// cfg.NoRxCache, the live reference path. cover is the per-scan
	// cover-digest scratch; chEpoch guards everything cell epochs cannot
	// see (unindexed stations, vmax increases); txEpoch versions the
	// carrier-sense set for the busyAround memo; vmax is the loosest
	// speed bound over all hosts ever attached.
	rxCacheOn bool
	rxPad     float64
	cover     []spatial.CellEpoch
	chEpoch   uint64
	txEpoch   uint64
	vmax      float64
	rxStats   RxCacheStats
	// txFree and frameFree recycle transmission and pooled-Frame structs
	// the same way rxFree recycles reception buffers: everything leaves
	// the live structures before the struct returns to its pool.
	txFree    []*transmission
	frameFree []*Frame
	txSeq     uint64
	// liveTx tracks every in-flight transmission (both carrier-sense
	// modes, including ones whose sender has since detached) so Shutdown
	// can return their frames to the pool. Removal is swap-delete via
	// transmission.live.
	liveTx []*transmission

	// Sniffer, when non-nil, observes every transmission start. Tests
	// and the trace layer use it.
	Sniffer func(f *Frame, at float64)

	// Interceptor, when non-nil, vets every potential reception at
	// transmission start: it is called once per in-range listening
	// receiver with the frame and the sender and receiver positions, and
	// returning false corrupts the frame at that receiver (fault
	// injection: jamming). The receiver still pays the reception energy,
	// exactly as with a real collision; corrupted unicasts go through the
	// normal MAC retry/failure path.
	Interceptor func(f *Frame, from, to geom.Point) bool
}

// NewChannel creates a medium with the given parameters.
func NewChannel(engine *sim.Engine, rng *sim.RNG, cfg Config) *Channel {
	if cfg.Range <= 0 || cfg.BitrateBps <= 0 || cfg.RxCachePadM < 0 || math.IsNaN(cfg.RxCachePadM) {
		panic("radio: invalid config")
	}
	if cfg.MinBackoffSlots < 1 {
		cfg.MinBackoffSlots = 1
	}
	if cfg.MaxBackoffSlots < cfg.MinBackoffSlots {
		cfg.MaxBackoffSlots = cfg.MinBackoffSlots
	}
	c := &Channel{
		engine:   engine,
		rng:      rng,
		cfg:      cfg,
		stations: make(map[hostid.ID]*station),
		active:   make(map[*transmission]struct{}),
		perKind:  make(map[string]KindCount),
	}
	if !cfg.BruteForce {
		// Cell side and slack trade query breadth against maintenance
		// rate; any positive values are correct (see internal/spatial),
		// so the defaults just balance the two at the paper's geometry.
		side := cfg.IndexCellM
		if side <= 0 {
			side = cfg.Range / 2
		}
		slack := cfg.IndexSlackM
		if slack <= 0 {
			slack = cfg.Range / 8
		}
		c.index = spatial.NewIndex[*station](engine, side, slack)
		c.txIdx = spatial.NewPointSet(side)
		if !cfg.NoRxCache {
			c.rxCacheOn = true
			c.rxPad = cfg.RxCachePadM
			if c.rxPad <= 0 {
				c.rxPad = cfg.Range / 8
			}
		}
	}
	return c
}

// Counters returns a snapshot of the channel-wide MAC statistics.
func (c *Channel) Counters() Counters { return c.counters }

// PerKind returns a copy of the per-frame-kind air usage (transmissions,
// including MAC retries).
func (c *Channel) PerKind() map[string]KindCount {
	out := make(map[string]KindCount, len(c.perKind))
	for k, v := range c.perKind { //simlint:ordered map-to-map copy, order never observed
		out[k] = v
	}
	return out
}

// Config returns the channel parameters.
func (c *Channel) Config() Config { return c.cfg }

// Attach registers an endpoint. Hosts start in listening (awake) state.
func (c *Channel) Attach(ep Endpoint) {
	id := ep.ID()
	if _, dup := c.stations[id]; dup {
		panic(fmt.Sprintf("radio: duplicate attach of %v", id))
	}
	if c.index != nil && (id < 0 || int64(id) > int64(1<<31-1)) {
		// The receiver scan packs IDs into the top 32 bits of a sort key.
		panic(fmt.Sprintf("radio: host id %v outside [0, 2^31) — use Config.BruteForce for exotic id spaces", id))
	}
	st := &station{
		ep:        ep,
		listening: true,
		cwSlots:   c.cfg.MinBackoffSlots,
	}
	st.tryFn = func() { c.tryTransmit(st) }
	c.stations[id] = st
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
	if c.index != nil {
		if mv, ok := ep.(Mover); ok {
			// Insert bumps the cell's epoch, so covers over the arrival
			// cell miss and re-scan.
			c.index.Insert(id, st, ep.Position, mv.NextExit)
		} else {
			st.unidx = true
			j := sort.Search(len(c.unindexed), func(j int) bool { return c.unindexed[j] >= id })
			c.unindexed = append(c.unindexed, 0)
			copy(c.unindexed[j+1:], c.unindexed[j:])
			c.unindexed[j] = id
			if c.rxCacheOn {
				c.chEpoch++ // a new brute-force candidate: no cell to bump
			}
		}
		if c.rxCacheOn {
			c.noteSpeedBound(ep)
		}
	}
}

// Detach removes a host (battery death). In-flight receptions at the host
// are dropped; its in-flight transmission, if any, completes on the air
// but is never retried.
func (c *Channel) Detach(id hostid.ID) {
	st, ok := c.stations[id]
	if !ok {
		return
	}
	st.detached = true
	if c.rxCacheOn && st.unidx {
		c.chEpoch++ // indexed stations bump their cell via Remove below
	}
	for !st.queue.empty() {
		c.ReleaseFrame(st.queue.popFront().frame)
	}
	st.queue.clear()
	st.abortReceiving()
	delete(c.stations, id)
	if i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id }); i < len(c.order) && c.order[i] == id {
		c.order = append(c.order[:i], c.order[i+1:]...)
	}
	if c.index != nil {
		c.index.Remove(id)
		if j := sort.Search(len(c.unindexed), func(j int) bool { return c.unindexed[j] >= id }); j < len(c.unindexed) && c.unindexed[j] == id {
			c.unindexed = append(c.unindexed[:j], c.unindexed[j+1:]...)
		}
	}
}

// SetListening flips a host between awake (true) and asleep (false).
// Falling asleep aborts any receptions in progress; the host keeps any
// transmission it already started (protocols never sleep mid-send).
// The battery mode is updated accordingly.
func (c *Channel) SetListening(id hostid.ID, on bool) {
	st, ok := c.stations[id]
	if !ok {
		return
	}
	if st.listening == on {
		return
	}
	st.listening = on
	if !on {
		st.abortReceiving()
	}
	c.updateMode(st)
}

// Listening reports whether the host is attached and awake.
func (c *Channel) Listening(id hostid.ID) bool {
	st, ok := c.stations[id]
	return ok && st.listening
}

func (c *Channel) updateMode(st *station) {
	if st.detached {
		return
	}
	st.ep.Battery().SetMode(c.engine.Now(), st.mode())
}

// Send queues a frame for transmission from src. The frame goes on air
// after carrier sense and backoff. Sending from a sleeping or detached
// host is a protocol bug and panics.
func (c *Channel) Send(src hostid.ID, f *Frame) {
	st, ok := c.stations[src]
	if !ok {
		panic(fmt.Sprintf("radio: Send from detached host %v", src))
	}
	if !st.listening {
		panic(fmt.Sprintf("radio: Send from sleeping host %v", src))
	}
	if f.Bytes <= 0 {
		panic(fmt.Sprintf("radio: frame with non-positive size: %v", f))
	}
	f.Src = src
	if c.cfg.QueueLimit > 0 && st.queue.len() >= c.cfg.QueueLimit {
		c.ReleaseFrame(f) // tail drop
		return
	}
	c.counters.FramesQueued++
	st.queue.pushBack(queued{frame: f})
	c.maybeAccess(st)
}

// maybeAccess starts the medium-access procedure if the station is idle
// with work queued.
func (c *Channel) maybeAccess(st *station) {
	if st.accessing || st.transmitting != nil || st.queue.empty() || st.detached || !st.listening {
		return
	}
	st.accessing = true
	wait := c.cfg.DIFS + float64(c.rng.Intn(sim.StreamRadioBackoff, st.cwSlots))*c.cfg.SlotTime
	c.engine.Schedule(wait, st.tryFn)
}

// busyAround reports whether any transmission is audible at p. With the
// spatial index, carrier sense probes only the cells within range of p;
// the brute-force reference scans every active transmission (order-free:
// the result is a bare existence check).
func (c *Channel) busyAround(p geom.Point) bool {
	if c.txIdx != nil {
		return c.txIdx.AnyWithin(p, c.cfg.Range)
	}
	r2 := c.cfg.Range * c.cfg.Range
	for tx := range c.active { //simlint:ordered bare existence check, any order gives the same bool
		if tx.from.Dist2(p) <= r2 {
			return true
		}
	}
	return false
}

// stationBusy is busyAround with a per-station same-instant memo:
// back-to-back probes at one station within a single event instant — a
// queue drain fanning out several maybeAccess cycles — rescan the tx
// index only when a transmission started or ended in between (txEpoch).
// The memo is part of the cached plane; the NoRxCache reference path
// probes the index every time.
func (c *Channel) stationBusy(st *station, pos geom.Point) bool {
	if !c.rxCacheOn {
		return c.busyAround(pos)
	}
	now := c.engine.Now()
	if st.busySet && st.busyAt == now && st.busyEpoch == c.txEpoch {
		c.rxStats.BusyHits++
		return st.busyVal
	}
	st.busySet = true
	st.busyAt = now
	st.busyEpoch = c.txEpoch
	st.busyVal = c.busyAround(pos)
	return st.busyVal
}

// tryTransmit fires after backoff: sense the medium and either transmit
// or defer with a doubled window.
func (c *Channel) tryTransmit(st *station) {
	st.accessing = false
	if st.detached || !st.listening || st.queue.empty() || st.transmitting != nil {
		return
	}
	pos := st.ep.Position()
	if c.stationBusy(st, pos) || len(st.receiving) > 0 {
		// Medium busy: defer, exponentially widening the window.
		c.counters.DeferredAccess++
		st.cwSlots = min(st.cwSlots*2, c.cfg.MaxBackoffSlots)
		c.maybeAccess(st)
		return
	}
	q := st.queue.popFront()
	st.cwSlots = c.cfg.MinBackoffSlots
	c.startTransmission(st, q, pos)
}

func (c *Channel) newTransmission() *transmission {
	if n := len(c.txFree); n > 0 {
		tx := c.txFree[n-1]
		c.txFree[n-1] = nil
		c.txFree = c.txFree[:n-1]
		return tx
	}
	tx := &transmission{}
	tx.endFn = func() { c.endTransmission(tx) }
	return tx
}

func (c *Channel) recycleTransmission(tx *transmission) {
	tx.frame = nil
	tx.sender = nil
	c.txFree = append(c.txFree, tx)
}

func (c *Channel) startTransmission(st *station, q queued, pos geom.Point) {
	air := c.cfg.AirTime(q.frame.Bytes)
	tx := c.newTransmission()
	tx.frame = q.frame
	tx.sender = st
	tx.from = pos
	tx.ends = c.engine.Now() + air + c.cfg.PropDelay
	tx.seq = c.txSeq
	tx.attempt = q.attempt
	c.txSeq++
	st.transmitting = tx
	// Carrier sense reads exactly one of the two structures (busyAround),
	// so only the one in use is maintained.
	if c.txIdx != nil {
		c.txIdx.Add(tx.seq, pos)
	} else {
		c.active[tx] = struct{}{}
	}
	c.txEpoch++ // carrier-sense set changed: busyAround memos are stale
	tx.live = len(c.liveTx)
	c.liveTx = append(c.liveTx, tx)
	c.counters.FramesSent++
	c.counters.BytesOnAir += uint64(q.frame.Bytes)
	kc := c.perKind[q.frame.Kind]
	kc.Frames++
	kc.Bytes += uint64(q.frame.Bytes)
	c.perKind[q.frame.Kind] = kc
	if c.Sniffer != nil {
		c.Sniffer(q.frame, c.engine.Now())
	}
	c.updateMode(st)

	// Establish receptions at every listening host in range, in ID
	// order so runs are reproducible. The spatial index yields a sorted
	// superset of the in-range hosts; the exact distance check below is
	// the same one the brute-force path applies to the whole population,
	// so both paths admit the identical receiver set in identical order.
	r2 := c.cfg.Range * c.cfg.Range
	if c.rxCacheOn {
		// Receiver-plane cache: replay the cached admit loop, or run the
		// padded reference scan and refill (rxcache.go). Byte-identical
		// to both branches below by the §16 invalidation argument.
		c.cachedReceivers(tx, st, pos, r2)
	} else if c.index != nil {
		c.cand = c.index.NearbyAppend(pos, c.cfg.Range, c.cand[:0])
		for _, oid := range c.unindexed {
			c.cand = append(c.cand, spatial.Candidate[*station]{ID: oid, Payload: c.stations[oid]})
		}
		// Filter first, sort second: the range and listening checks are
		// order-free (Position is pure per instant), so applying them
		// before imposing ID order shrinks the sort to the hosts that
		// actually receive — in a duty-cycled protocol, a small fraction
		// of the candidates.
		if cap(c.cpos) < len(c.cand) {
			c.cpos = make([]geom.Point, len(c.cand))
		}
		c.cpos = c.cpos[:len(c.cand)]
		c.keys = c.keys[:0]
		for i := range c.cand {
			cd := &c.cand[i]
			other := cd.Payload
			if other == st || !other.listening || other.detached {
				continue
			}
			// A Sure candidate's whole cell is inside the range disc, so
			// the distance check is settled; its position is only needed
			// when an Interceptor wants the receiver coordinates.
			if !cd.Sure || c.Interceptor != nil {
				otherPos := other.ep.Position()
				if pos.Dist2(otherPos) > r2 {
					continue
				}
				c.cpos[i] = otherPos
			}
			// Pack (ID, candidate index) so a plain integer sort yields
			// the iteration order the brute-force path walks c.order in.
			c.keys = append(c.keys, int64(cd.ID)<<32|int64(i))
		}
		slices.Sort(c.keys)
		tx.rx = c.rxBuf(len(c.keys))
		for _, k := range c.keys {
			i := k & (1<<32 - 1)
			c.admitReception(tx, c.cand[i].Payload, pos, c.cpos[i])
		}
	} else {
		tx.rx = c.rxBuf(len(c.order))
		for _, oid := range c.order {
			other := c.stations[oid]
			if other == st || !other.listening || other.detached {
				continue
			}
			otherPos := other.ep.Position()
			if pos.Dist2(otherPos) > r2 {
				continue
			}
			c.admitReception(tx, other, pos, otherPos)
		}
	}

	c.engine.Schedule(air+c.cfg.PropDelay, tx.endFn)
}

// rxBuf returns a reception buffer with at least the given capacity,
// recycling one retired by endTransmission when it fits. The capacity
// is a hard ceiling: receiving maps hold pointers into the buffer, so
// it must never grow (admitReception enforces this).
func (c *Channel) rxBuf(capacity int) []reception {
	if n := len(c.rxFree); n > 0 {
		buf := c.rxFree[n-1]
		if cap(buf) >= capacity {
			c.rxFree[n-1] = nil
			c.rxFree = c.rxFree[:n-1]
			return buf
		}
	}
	return make([]reception, 0, capacity)
}

// recycleRx returns a transmission's reception buffer to the pool. All
// pointers into it have left the receiving maps by end of transmission;
// entries are zeroed so pooled buffers don't retain frames.
func (c *Channel) recycleRx(tx *transmission) {
	buf := tx.rx
	tx.rx = nil
	for i := range buf {
		buf[i] = reception{}
	}
	c.rxFree = append(c.rxFree, buf[:0])
}

// admitReception records that other hears tx, applying interception and
// collision corruption. tx.rx must have spare capacity: receiving maps
// hold pointers into it, so growth would invalidate them.
func (c *Channel) admitReception(tx *transmission, other *station, from, to geom.Point) {
	if len(tx.rx) == cap(tx.rx) {
		panic("radio: reception buffer capacity underestimated")
	}
	rx := reception{tx: tx, st: other}
	if c.Interceptor != nil && !c.Interceptor(tx.frame, from, to) {
		rx.corrupted = true
		c.counters.Jammed++
	}
	if c.cfg.CollisionsEnabled {
		if other.transmitting != nil {
			// Half-duplex: a transmitting host cannot receive.
			rx.corrupted = true
		}
		if len(other.receiving) > 0 {
			// Overlap: every concurrent reception is corrupted.
			rx.corrupted = true
			for _, o := range other.receiving {
				if !o.corrupted {
					o.corrupted = true
					c.counters.Collisions++
				}
			}
			c.counters.Collisions++
		}
	}
	tx.rx = append(tx.rx, rx)
	other.receiving = append(other.receiving, &tx.rx[len(tx.rx)-1])
	c.updateMode(other)
}

func (c *Channel) endTransmission(tx *transmission) {
	st := tx.sender
	if c.txIdx != nil {
		c.txIdx.Remove(tx.seq, tx.from)
	} else {
		delete(c.active, tx)
	}
	c.txEpoch++ // carrier-sense set changed: busyAround memos are stale
	last := len(c.liveTx) - 1
	c.liveTx[tx.live] = c.liveTx[last]
	c.liveTx[tx.live].live = tx.live
	c.liveTx[last] = nil
	c.liveTx = c.liveTx[:last]
	if st.transmitting == tx {
		st.transmitting = nil
	}
	c.updateMode(st)

	dstOK := false
	for i := range tx.rx {
		rx := &tx.rx[i]
		// The reception may have been aborted by sleep/detach, in which
		// case it is no longer in the receiving list.
		if rx.st.dropReceiving(rx) {
			c.updateMode(rx.st)
			if rx.corrupted || rx.st.detached || !rx.st.listening {
				continue
			}
			if tx.frame.Dst == hostid.Broadcast || tx.frame.Dst == rx.st.ep.ID() {
				if tx.frame.Dst == rx.st.ep.ID() {
					dstOK = true
				}
				c.counters.Deliveries++
				rx.st.ep.Deliver(tx.frame)
			}
		}
	}

	// Emulated ACK/timeout loop: retry failed unicast frames. A retried
	// frame stays alive on the queue; any other frame is done with the
	// air and, if pool-owned, returns to the pool (Deliver/TxFailed run
	// before the release and must not retain the frame — the Protocol
	// contract).
	retried := false
	if tx.frame.Dst.IsUnicast() && !dstOK && !st.detached && st.listening {
		if tx.attempt < c.cfg.MACRetries {
			c.counters.Retries++
			st.cwSlots = min(st.cwSlots*2, c.cfg.MaxBackoffSlots)
			// Retries go to the queue front to preserve ordering.
			st.queue.pushFront(queued{frame: tx.frame, attempt: tx.attempt + 1})
			retried = true
		} else {
			c.counters.UnicastFailed++
			// Link-layer feedback: tell the sender its frame died, as
			// a real 802.11 interface reports exhausted ACK retries.
			if fb, ok := st.ep.(TxFeedback); ok {
				fb.TxFailed(tx.frame)
			}
		}
	}
	if !retried {
		c.ReleaseFrame(tx.frame)
	}
	c.recycleRx(tx)
	c.recycleTransmission(tx)
	c.maybeAccess(st)
}

// NewFrame returns a frame owned by the channel's pool, initialized with
// the given header fields and payload. The channel reclaims the struct
// once it is done with the air (delivered, dropped, or failed); per the
// node.Protocol contract receivers must not retain the frame past the
// Receive call, though payloads may be shared. Frames built with a plain
// composite literal keep working — ReleaseFrame ignores them.
func (c *Channel) NewFrame(kind string, src, dst hostid.ID, bytes int, payload any) *Frame {
	var f *Frame
	if n := len(c.frameFree); n > 0 {
		f = c.frameFree[n-1]
		c.frameFree[n-1] = nil
		c.frameFree = c.frameFree[:n-1]
	} else {
		f = &Frame{pooled: true}
	}
	f.Kind, f.Src, f.Dst, f.Bytes, f.Payload = kind, src, dst, bytes, payload
	f.leased = true
	c.counters.FramesPooled++
	return f
}

// ReleaseFrame returns a pool-owned frame (see NewFrame). Frames not
// created by NewFrame are left alone.
func (c *Channel) ReleaseFrame(f *Frame) {
	if f == nil || !f.pooled {
		return
	}
	if !f.leased {
		panic(fmt.Sprintf("radio: double ReleaseFrame of %v", f))
	}
	f.leased = false
	f.Payload = nil
	c.counters.FramesReleased++
	c.frameFree = append(c.frameFree, f)
}

// OutstandingFrames is the number of pooled frames currently checked
// out (leased by NewFrame and not yet released). During a run it counts
// queued and in-flight frames; after Shutdown it must be zero — any
// remainder is a frame some component minted and lost, the runtime
// cross-check of the framelease static analyzer.
func (c *Channel) OutstandingFrames() int {
	return int(c.counters.FramesPooled - c.counters.FramesReleased)
}

// Shutdown returns every frame the channel still holds — queued at
// stations or in flight on the air — to the pool. Call it once after
// the engine has stopped (pending end-of-transmission events never fire
// past the horizon, so their frames are reclaimed here); the channel
// must not carry traffic afterwards.
func (c *Channel) Shutdown() {
	for _, id := range c.order {
		st := c.stations[id]
		for !st.queue.empty() {
			c.ReleaseFrame(st.queue.popFront().frame)
		}
	}
	for i, tx := range c.liveTx {
		c.ReleaseFrame(tx.frame)
		tx.frame = nil
		c.liveTx[i] = nil
	}
	c.liveTx = c.liveTx[:0]
}

// TxFeedback is implemented by endpoints that want link-layer failure
// notifications for their unicast frames (the 802.11 "max retries
// exceeded" indication routing protocols use for route repair).
type TxFeedback interface {
	TxFailed(f *Frame)
}

// InRange reports whether two attached hosts are currently within
// transmission range of each other. Protocol code uses it only through
// higher-level abstractions; tests use it directly.
func (c *Channel) InRange(a, b hostid.ID) bool {
	sa, oka := c.stations[a]
	sb, okb := c.stations[b]
	if !oka || !okb {
		return false
	}
	return sa.ep.Position().Dist2(sb.ep.Position()) <= c.cfg.Range*c.cfg.Range
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
