package radio

import (
	"fmt"
	"sort"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// Endpoint is what the channel needs from an attached host. The node
// layer implements it.
type Endpoint interface {
	// ID returns the host identifier.
	ID() hostid.ID
	// Position returns the host's current location.
	Position() geom.Point
	// Battery returns the host's battery; the channel drives its
	// radio-mode transitions.
	Battery() *energy.Battery
	// Deliver hands a successfully received frame to the host's
	// protocol stack.
	Deliver(f *Frame)
}

// transmission is a frame in flight.
type transmission struct {
	frame   *Frame
	sender  *station
	from    geom.Point // sender position at transmission start
	ends    float64
	rx      []*reception
	attempt int // retry count for unicast
}

// reception is one receiver's view of a transmission.
type reception struct {
	tx        *transmission
	st        *station
	corrupted bool
}

// station is the channel-side state of an attached endpoint.
type station struct {
	ep        Endpoint
	listening bool
	detached  bool

	transmitting *transmission
	receiving    map[*transmission]*reception
	queue        []*queued
	accessing    bool // backoff event pending
	cwSlots      int  // current contention window
}

// queued is a frame waiting for medium access.
type queued struct {
	frame   *Frame
	attempt int
}

// mode derives the energy mode the station should be charged at.
func (s *station) mode() energy.Mode {
	switch {
	case !s.listening:
		return energy.Sleep
	case s.transmitting != nil:
		return energy.Transmit
	case len(s.receiving) > 0:
		return energy.Receive
	default:
		return energy.Idle
	}
}

// Channel is the shared wireless medium. All methods must be called from
// simulation events (the engine is single-threaded).
type Channel struct {
	engine   *sim.Engine
	rng      *sim.RNG
	cfg      Config
	stations map[hostid.ID]*station
	order    []hostid.ID // attached IDs, sorted: deterministic iteration
	active   map[*transmission]struct{}
	counters Counters
	perKind  map[string]KindCount

	// Sniffer, when non-nil, observes every transmission start. Tests
	// and the trace layer use it.
	Sniffer func(f *Frame, at float64)

	// Interceptor, when non-nil, vets every potential reception at
	// transmission start: it is called once per in-range listening
	// receiver with the frame and the sender and receiver positions, and
	// returning false corrupts the frame at that receiver (fault
	// injection: jamming). The receiver still pays the reception energy,
	// exactly as with a real collision; corrupted unicasts go through the
	// normal MAC retry/failure path.
	Interceptor func(f *Frame, from, to geom.Point) bool
}

// NewChannel creates a medium with the given parameters.
func NewChannel(engine *sim.Engine, rng *sim.RNG, cfg Config) *Channel {
	if cfg.Range <= 0 || cfg.BitrateBps <= 0 {
		panic("radio: invalid config")
	}
	if cfg.MinBackoffSlots < 1 {
		cfg.MinBackoffSlots = 1
	}
	if cfg.MaxBackoffSlots < cfg.MinBackoffSlots {
		cfg.MaxBackoffSlots = cfg.MinBackoffSlots
	}
	return &Channel{
		engine:   engine,
		rng:      rng,
		cfg:      cfg,
		stations: make(map[hostid.ID]*station),
		active:   make(map[*transmission]struct{}),
		perKind:  make(map[string]KindCount),
	}
}

// Counters returns a snapshot of the channel-wide MAC statistics.
func (c *Channel) Counters() Counters { return c.counters }

// PerKind returns a copy of the per-frame-kind air usage (transmissions,
// including MAC retries).
func (c *Channel) PerKind() map[string]KindCount {
	out := make(map[string]KindCount, len(c.perKind))
	for k, v := range c.perKind {
		out[k] = v
	}
	return out
}

// Config returns the channel parameters.
func (c *Channel) Config() Config { return c.cfg }

// Attach registers an endpoint. Hosts start in listening (awake) state.
func (c *Channel) Attach(ep Endpoint) {
	id := ep.ID()
	if _, dup := c.stations[id]; dup {
		panic(fmt.Sprintf("radio: duplicate attach of %v", id))
	}
	c.stations[id] = &station{
		ep:        ep,
		listening: true,
		receiving: make(map[*transmission]*reception),
		cwSlots:   c.cfg.MinBackoffSlots,
	}
	i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id })
	c.order = append(c.order, 0)
	copy(c.order[i+1:], c.order[i:])
	c.order[i] = id
}

// Detach removes a host (battery death). In-flight receptions at the host
// are dropped; its in-flight transmission, if any, completes on the air
// but is never retried.
func (c *Channel) Detach(id hostid.ID) {
	st, ok := c.stations[id]
	if !ok {
		return
	}
	st.detached = true
	st.queue = nil
	for tx, r := range st.receiving {
		r.corrupted = true
		delete(st.receiving, tx)
	}
	delete(c.stations, id)
	if i := sort.Search(len(c.order), func(i int) bool { return c.order[i] >= id }); i < len(c.order) && c.order[i] == id {
		c.order = append(c.order[:i], c.order[i+1:]...)
	}
}

// SetListening flips a host between awake (true) and asleep (false).
// Falling asleep aborts any receptions in progress; the host keeps any
// transmission it already started (protocols never sleep mid-send).
// The battery mode is updated accordingly.
func (c *Channel) SetListening(id hostid.ID, on bool) {
	st, ok := c.stations[id]
	if !ok {
		return
	}
	if st.listening == on {
		return
	}
	st.listening = on
	if !on {
		for tx, r := range st.receiving {
			r.corrupted = true
			delete(st.receiving, tx)
		}
	}
	c.updateMode(st)
}

// Listening reports whether the host is attached and awake.
func (c *Channel) Listening(id hostid.ID) bool {
	st, ok := c.stations[id]
	return ok && st.listening
}

func (c *Channel) updateMode(st *station) {
	if st.detached {
		return
	}
	st.ep.Battery().SetMode(c.engine.Now(), st.mode())
}

// Send queues a frame for transmission from src. The frame goes on air
// after carrier sense and backoff. Sending from a sleeping or detached
// host is a protocol bug and panics.
func (c *Channel) Send(src hostid.ID, f *Frame) {
	st, ok := c.stations[src]
	if !ok {
		panic(fmt.Sprintf("radio: Send from detached host %v", src))
	}
	if !st.listening {
		panic(fmt.Sprintf("radio: Send from sleeping host %v", src))
	}
	if f.Bytes <= 0 {
		panic(fmt.Sprintf("radio: frame with non-positive size: %v", f))
	}
	f.Src = src
	if c.cfg.QueueLimit > 0 && len(st.queue) >= c.cfg.QueueLimit {
		return // tail drop
	}
	c.counters.FramesQueued++
	st.queue = append(st.queue, &queued{frame: f})
	c.maybeAccess(st)
}

// maybeAccess starts the medium-access procedure if the station is idle
// with work queued.
func (c *Channel) maybeAccess(st *station) {
	if st.accessing || st.transmitting != nil || len(st.queue) == 0 || st.detached || !st.listening {
		return
	}
	st.accessing = true
	wait := c.cfg.DIFS + float64(c.rng.Intn("radio.backoff", st.cwSlots))*c.cfg.SlotTime
	c.engine.Schedule(wait, func() { c.tryTransmit(st) })
}

// busyAround reports whether any transmission is audible at p.
func (c *Channel) busyAround(p geom.Point) bool {
	r2 := c.cfg.Range * c.cfg.Range
	for tx := range c.active {
		if tx.from.Dist2(p) <= r2 {
			return true
		}
	}
	return false
}

// tryTransmit fires after backoff: sense the medium and either transmit
// or defer with a doubled window.
func (c *Channel) tryTransmit(st *station) {
	st.accessing = false
	if st.detached || !st.listening || len(st.queue) == 0 || st.transmitting != nil {
		return
	}
	pos := st.ep.Position()
	if c.busyAround(pos) || len(st.receiving) > 0 {
		// Medium busy: defer, exponentially widening the window.
		c.counters.DeferredAccess++
		st.cwSlots = min(st.cwSlots*2, c.cfg.MaxBackoffSlots)
		c.maybeAccess(st)
		return
	}
	q := st.queue[0]
	st.queue = st.queue[1:]
	st.cwSlots = c.cfg.MinBackoffSlots
	c.startTransmission(st, q, pos)
}

func (c *Channel) startTransmission(st *station, q *queued, pos geom.Point) {
	air := c.cfg.AirTime(q.frame.Bytes)
	tx := &transmission{
		frame:   q.frame,
		sender:  st,
		from:    pos,
		ends:    c.engine.Now() + air + c.cfg.PropDelay,
		attempt: q.attempt,
	}
	st.transmitting = tx
	c.active[tx] = struct{}{}
	c.counters.FramesSent++
	c.counters.BytesOnAir += uint64(q.frame.Bytes)
	kc := c.perKind[q.frame.Kind]
	kc.Frames++
	kc.Bytes += uint64(q.frame.Bytes)
	c.perKind[q.frame.Kind] = kc
	if c.Sniffer != nil {
		c.Sniffer(q.frame, c.engine.Now())
	}
	c.updateMode(st)

	// Establish receptions at every listening host in range, in ID
	// order so runs are reproducible.
	r2 := c.cfg.Range * c.cfg.Range
	for _, oid := range c.order {
		other := c.stations[oid]
		if other == st || !other.listening || other.detached {
			continue
		}
		otherPos := other.ep.Position()
		if pos.Dist2(otherPos) > r2 {
			continue
		}
		rx := &reception{tx: tx, st: other}
		if c.Interceptor != nil && !c.Interceptor(tx.frame, pos, otherPos) {
			rx.corrupted = true
			c.counters.Jammed++
		}
		if c.cfg.CollisionsEnabled {
			if other.transmitting != nil {
				// Half-duplex: a transmitting host cannot receive.
				rx.corrupted = true
			}
			if len(other.receiving) > 0 {
				// Overlap: every concurrent reception is corrupted.
				rx.corrupted = true
				for _, o := range other.receiving {
					if !o.corrupted {
						o.corrupted = true
						c.counters.Collisions++
					}
				}
				c.counters.Collisions++
			}
		}
		tx.rx = append(tx.rx, rx)
		other.receiving[tx] = rx
		c.updateMode(other)
	}

	c.engine.Schedule(air+c.cfg.PropDelay, func() { c.endTransmission(tx) })
}

func (c *Channel) endTransmission(tx *transmission) {
	st := tx.sender
	delete(c.active, tx)
	if st.transmitting == tx {
		st.transmitting = nil
	}
	c.updateMode(st)

	dstOK := false
	for _, rx := range tx.rx {
		// The reception may have been aborted by sleep/detach, in which
		// case it is no longer in the receiving map.
		if cur, ok := rx.st.receiving[tx]; ok && cur == rx {
			delete(rx.st.receiving, tx)
			c.updateMode(rx.st)
			if rx.corrupted || rx.st.detached || !rx.st.listening {
				continue
			}
			if tx.frame.Dst == hostid.Broadcast || tx.frame.Dst == rx.st.ep.ID() {
				if tx.frame.Dst == rx.st.ep.ID() {
					dstOK = true
				}
				c.counters.Deliveries++
				rx.st.ep.Deliver(tx.frame)
			}
		}
	}

	// Emulated ACK/timeout loop: retry failed unicast frames.
	if tx.frame.Dst.IsUnicast() && !dstOK && !st.detached && st.listening {
		if tx.attempt < c.cfg.MACRetries {
			c.counters.Retries++
			st.cwSlots = min(st.cwSlots*2, c.cfg.MaxBackoffSlots)
			// Retries go to the queue front to preserve ordering.
			st.queue = append([]*queued{{frame: tx.frame, attempt: tx.attempt + 1}}, st.queue...)
		} else {
			c.counters.UnicastFailed++
			// Link-layer feedback: tell the sender its frame died, as
			// a real 802.11 interface reports exhausted ACK retries.
			if fb, ok := st.ep.(TxFeedback); ok {
				fb.TxFailed(tx.frame)
			}
		}
	}
	c.maybeAccess(st)
}

// TxFeedback is implemented by endpoints that want link-layer failure
// notifications for their unicast frames (the 802.11 "max retries
// exceeded" indication routing protocols use for route repair).
type TxFeedback interface {
	TxFailed(f *Frame)
}

// InRange reports whether two attached hosts are currently within
// transmission range of each other. Protocol code uses it only through
// higher-level abstractions; tests use it directly.
func (c *Channel) InRange(a, b hostid.ID) bool {
	sa, oka := c.stations[a]
	sb, okb := c.stations[b]
	if !oka || !okb {
		return false
	}
	return sa.ep.Position().Dist2(sb.ep.Position()) <= c.cfg.Range*c.cfg.Range
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
