// Package radio simulates the shared wireless medium of the paper's
// testbed: a 2 Mbps 802.11-DS-style channel with a 250 m transmission
// disc, CSMA medium access with randomized backoff, collision corruption
// at receivers inside two overlapping transmissions, and MAC-level
// retransmission for unicast frames.
//
// The channel also owns the radio-related energy accounting: it switches
// each attached host's battery among transmit/receive/idle as frames flow,
// so energy consumption is exactly the time integral the paper's model
// prescribes.
package radio

import (
	"fmt"

	"ecgrid/internal/hostid"
)

// Frame is one over-the-air transmission unit. Protocols put their
// messages in Payload; Bytes (payload plus MAC/PHY framing) determines
// airtime.
type Frame struct {
	Kind    string    // message kind for tracing and per-type counters
	Src     hostid.ID // transmitting host
	Dst     hostid.ID // destination host or hostid.Broadcast
	Bytes   int       // total size on air, in bytes
	Payload any       // protocol message, delivered untouched

	// pooled marks frames owned by a Channel's frame pool (NewFrame);
	// the channel reclaims them in ReleaseFrame. Literal-built frames
	// leave it false and are garbage-collected as before.
	pooled bool
	// leased is set while a pooled frame is checked out of the pool.
	// ReleaseFrame panics if it is already false — a double release
	// would alias the frame across two future NewFrame calls, the
	// hardest pool corruption to debug after the fact.
	leased bool
}

// String summarizes the frame for traces.
func (f *Frame) String() string {
	return fmt.Sprintf("%s %v->%v (%dB)", f.Kind, f.Src, f.Dst, f.Bytes)
}

// MACHeaderBytes approximates the 802.11 MAC+PHY framing overhead added
// to every payload. Protocols add this when sizing frames.
const MACHeaderBytes = 34

// KindCount is the per-frame-kind share of the air.
type KindCount struct {
	Frames uint64
	Bytes  uint64
}

// Counters aggregates channel-wide MAC statistics, used by the overhead
// metrics and the ablation benchmarks.
type Counters struct {
	FramesSent     uint64 // transmissions started (including retries)
	FramesQueued   uint64 // Send calls accepted
	Deliveries     uint64 // successful frame receptions delivered upward
	Collisions     uint64 // receptions corrupted by overlap
	Retries        uint64 // unicast MAC retransmissions
	UnicastFailed  uint64 // unicast frames dropped after all retries
	BytesOnAir     uint64 // total bytes transmitted
	DeferredAccess uint64 // times carrier sense found the medium busy
	Jammed         uint64 // receptions killed by an injected jamming fault
	FramesPooled   uint64 // NewFrame leases handed out
	FramesReleased uint64 // pooled frames returned via ReleaseFrame
}
