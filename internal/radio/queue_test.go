package radio

import (
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

func frameN(n int) *Frame { return &Frame{Kind: "t", Dst: hostid.Broadcast, Bytes: n} }

func TestSendQueueFIFO(t *testing.T) {
	var q sendQueue
	if !q.empty() || q.len() != 0 {
		t.Fatal("zero queue not empty")
	}
	for i := 1; i <= 5; i++ {
		q.pushBack(queued{frame: frameN(i)})
	}
	for i := 1; i <= 5; i++ {
		if got := q.popFront(); got.frame.Bytes != i {
			t.Fatalf("popFront = %d, want %d", got.frame.Bytes, i)
		}
	}
	if !q.empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestSendQueuePushFrontAfterPop(t *testing.T) {
	// The MAC retry pattern: pop a frame, then push its retry back to
	// the front; it must come out before everything queued behind it.
	var q sendQueue
	for i := 1; i <= 3; i++ {
		q.pushBack(queued{frame: frameN(i)})
	}
	first := q.popFront()
	q.pushFront(queued{frame: first.frame, attempt: first.attempt + 1})
	if got := q.popFront(); got.frame.Bytes != 1 || got.attempt != 1 {
		t.Fatalf("retry came out as (bytes=%d, attempt=%d), want (1, 1)", got.frame.Bytes, got.attempt)
	}
	if got := q.popFront(); got.frame.Bytes != 2 {
		t.Fatalf("popFront = %d, want 2", got.frame.Bytes)
	}
	// pushFront on a queue with no vacated head (head == 0) must still work.
	q.pushFront(queued{frame: frameN(9)})
	if got := q.popFront(); got.frame.Bytes != 9 {
		t.Fatalf("popFront = %d, want the front-pushed 9", got.frame.Bytes)
	}
	if got := q.popFront(); got.frame.Bytes != 3 {
		t.Fatalf("popFront = %d, want 3", got.frame.Bytes)
	}
}

// TestSendQueueCompaction drives the head index deep enough to trigger
// the dead-prefix slide and checks no element is lost or reordered.
func TestSendQueueCompaction(t *testing.T) {
	var q sendQueue
	next := 0
	expect := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 5; i++ {
			next++
			q.pushBack(queued{frame: frameN(next)})
		}
		for i := 0; i < 3; i++ {
			expect++
			if got := q.popFront(); got.frame.Bytes != expect {
				t.Fatalf("round %d: popFront = %d, want %d", round, got.frame.Bytes, expect)
			}
		}
		if q.len() != next-expect {
			t.Fatalf("round %d: len = %d, want %d", round, q.len(), next-expect)
		}
	}
	for !q.empty() {
		expect++
		if got := q.popFront(); got.frame.Bytes != expect {
			t.Fatalf("drain: popFront = %d, want %d", got.frame.Bytes, expect)
		}
	}
	q.pushBack(queued{frame: frameN(1)})
	q.clear()
	if !q.empty() {
		t.Fatal("queue not empty after clear")
	}
}

// BenchmarkRetryStorm measures the worst case the deque exists for: a
// station with a deep backlog of unicasts to an unreachable destination,
// so every frame burns through the full MAC retry budget and every
// retry re-queues at the head. The seed's slice re-allocation made this
// O(queue) per retry.
func BenchmarkRetryStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := DefaultConfig()
		cfg.QueueLimit = 0 // unbounded: the backlog is the point
		engine := sim.NewEngine()
		c := NewChannel(engine, sim.NewRNG(1), cfg)
		h := &fakeHost{id: 0, battery: energy.NewBattery(energy.PaperModel(), 1e6)}
		c.Attach(h)
		b.StartTimer()
		for n := 0; n < 2000; n++ {
			c.Send(0, &Frame{Kind: "data", Dst: 42, Bytes: 1024}) // host 42 does not exist
		}
		engine.Run(600)
	}
}
