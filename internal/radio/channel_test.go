package radio

import (
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// fakeHost is a minimal Endpoint for channel tests.
type fakeHost struct {
	id       hostid.ID
	pos      geom.Point
	battery  *energy.Battery
	received []*Frame
}

func (h *fakeHost) ID() hostid.ID            { return h.id }
func (h *fakeHost) Position() geom.Point     { return h.pos }
func (h *fakeHost) Battery() *energy.Battery { return h.battery }
func (h *fakeHost) Deliver(f *Frame)         { h.received = append(h.received, f) }

type rig struct {
	engine  *sim.Engine
	channel *Channel
	hosts   map[hostid.ID]*fakeHost
}

func newRig(cfg Config) *rig {
	e := sim.NewEngine()
	return &rig{
		engine:  e,
		channel: NewChannel(e, sim.NewRNG(1), cfg),
		hosts:   make(map[hostid.ID]*fakeHost),
	}
}

func (r *rig) addHost(id hostid.ID, x, y float64) *fakeHost {
	h := &fakeHost{id: id, pos: geom.Point{X: x, Y: y}, battery: energy.NewBattery(energy.PaperModel(), 1e6)}
	r.hosts[id] = h
	r.channel.Attach(h)
	return h
}

func TestBroadcastReachesInRangeHosts(t *testing.T) {
	r := newRig(DefaultConfig())
	a := r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0) // in range
	c := r.addHost(2, 400, 0) // out of range (>250)
	d := r.addHost(3, 249, 0) // just in range
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(a.received) != 0 {
		t.Error("sender received its own frame")
	}
	if len(b.received) != 1 || len(d.received) != 1 {
		t.Errorf("in-range hosts received %d, %d frames, want 1, 1", len(b.received), len(d.received))
	}
	if len(c.received) != 0 {
		t.Error("out-of-range host received the frame")
	}
}

func TestUnicastOnlyDeliveredToDestination(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	c := r.addHost(2, 50, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 512})
	})
	r.engine.Run(1)
	if len(b.received) != 1 {
		t.Fatalf("destination received %d frames, want 1", len(b.received))
	}
	if len(c.received) != 0 {
		t.Fatal("bystander received a unicast frame")
	}
}

func TestSleepingHostDoesNotReceive(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.channel.SetListening(1, false)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(b.received) != 0 {
		t.Fatal("sleeping host received a frame")
	}
	if r.channel.Listening(1) {
		t.Fatal("Listening(1) = true after SetListening(false)")
	}
}

func TestWakeMidFrameDoesNotReceive(t *testing.T) {
	// A host that wakes during a frame's airtime missed its start and
	// must not receive it.
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.channel.SetListening(1, false)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: hostid.Broadcast, Bytes: 2000}) // 8 ms airtime
	})
	r.engine.Schedule(0.004, func() { r.channel.SetListening(1, true) })
	r.engine.Run(1)
	if len(b.received) != 0 {
		t.Fatal("host that woke mid-frame received it")
	}
}

func TestSleepMidFrameAbortsReception(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: hostid.Broadcast, Bytes: 2000})
	})
	r.engine.Schedule(0.004, func() { r.channel.SetListening(1, false) })
	r.engine.Run(1)
	if len(b.received) != 0 {
		t.Fatal("host that slept mid-frame still received it")
	}
}

func TestTransmitterPaysTransmitEnergy(t *testing.T) {
	cfg := DefaultConfig()
	r := newRig(cfg)
	a := r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 1000})
	})
	r.engine.Run(1)
	air := cfg.AirTime(1000)
	wantTx := air * energy.PaperModel().Power(energy.Transmit)
	gotTx := a.battery.ConsumedIn(1, energy.Transmit)
	if diff := gotTx - wantTx; diff < -1e-9 || diff > wantTx*0.5 {
		t.Errorf("transmit energy = %v, want ≈%v", gotTx, wantTx)
	}
	gotRx := b.battery.ConsumedIn(1, energy.Receive)
	wantRx := air * energy.PaperModel().Power(energy.Receive)
	if diff := gotRx - wantRx; diff < -1e-9 || diff > wantRx*0.5 {
		t.Errorf("receive energy = %v, want ≈%v", gotRx, wantRx)
	}
}

func TestCollisionCorruptsOverlappingReceptions(t *testing.T) {
	// Hidden terminal: two senders out of range of each other, both in
	// range of the middle receiver, transmitting simultaneously.
	cfg := DefaultConfig()
	cfg.MACRetries = 0
	r := newRig(cfg)
	r.addHost(0, 0, 0)
	mid := r.addHost(1, 200, 0)
	r.addHost(2, 400, 0) // 400 m from host 0: mutually hidden
	big := 5000          // 20 ms airtime so overlap is certain
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "a", Dst: hostid.Broadcast, Bytes: big})
	})
	r.engine.Schedule(0.002, func() {
		r.channel.Send(2, &Frame{Kind: "b", Dst: hostid.Broadcast, Bytes: big})
	})
	r.engine.Run(1)
	if len(mid.received) != 0 {
		t.Fatalf("middle host received %d frames despite collision", len(mid.received))
	}
	if r.channel.Counters().Collisions == 0 {
		t.Fatal("no collisions counted")
	}
}

func TestCollisionsDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollisionsEnabled = false
	r := newRig(cfg)
	r.addHost(0, 0, 0)
	mid := r.addHost(1, 200, 0)
	r.addHost(2, 400, 0)
	big := 5000
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "a", Dst: hostid.Broadcast, Bytes: big})
	})
	r.engine.Schedule(0.002, func() {
		r.channel.Send(2, &Frame{Kind: "b", Dst: hostid.Broadcast, Bytes: big})
	})
	r.engine.Run(1)
	if len(mid.received) != 2 {
		t.Fatalf("idealized channel delivered %d frames, want 2", len(mid.received))
	}
}

func TestCSMADefersToBusyMedium(t *testing.T) {
	// Two in-range senders: the second must defer, so both frames are
	// delivered sequentially without collision.
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	c := r.addHost(2, 50, 0)
	big := 5000
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "a", Dst: hostid.Broadcast, Bytes: big})
	})
	r.engine.Schedule(0.002, func() {
		r.channel.Send(1, &Frame{Kind: "b", Dst: hostid.Broadcast, Bytes: big})
	})
	r.engine.Run(1)
	if len(c.received) != 2 {
		t.Fatalf("receiver got %d frames, want 2 (CSMA should serialize)", len(c.received))
	}
	if r.channel.Counters().DeferredAccess == 0 {
		t.Fatal("no deferrals counted")
	}
}

func TestUnicastRetryAfterCollision(t *testing.T) {
	// Hidden-terminal collision corrupts the first attempt; MAC retries
	// must eventually deliver the unicast frame.
	cfg := DefaultConfig()
	r := newRig(cfg)
	r.addHost(0, 0, 0)
	mid := r.addHost(1, 200, 0)
	r.addHost(2, 400, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 5000})
	})
	r.engine.Schedule(0.002, func() {
		r.channel.Send(2, &Frame{Kind: "noise", Dst: hostid.Broadcast, Bytes: 5000})
	})
	r.engine.Run(1)
	if len(mid.received) == 0 {
		t.Fatal("unicast frame never delivered despite retries")
	}
	if r.channel.Counters().Retries == 0 {
		t.Fatal("no retries counted")
	}
}

func TestUnicastToOutOfRangeFails(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	far := r.addHost(1, 500, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 512})
	})
	r.engine.Run(1)
	if len(far.received) != 0 {
		t.Fatal("out-of-range unicast delivered")
	}
	if r.channel.Counters().UnicastFailed == 0 {
		t.Fatal("failed unicast not counted")
	}
}

func TestDetachStopsTraffic(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.channel.Detach(1)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "data", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(b.received) != 0 {
		t.Fatal("detached host received a frame")
	}
	if r.channel.Listening(1) {
		t.Fatal("detached host reported listening")
	}
	r.channel.Detach(1) // double detach is a no-op
}

func TestSendFromSleepingPanics(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.channel.SetListening(0, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Send from sleeping host did not panic")
		}
	}()
	r.channel.Send(0, &Frame{Kind: "x", Dst: hostid.Broadcast, Bytes: 10})
}

func TestSendFromDetachedPanics(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.channel.Detach(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Send from detached host did not panic")
		}
	}()
	r.channel.Send(0, &Frame{Kind: "x", Dst: hostid.Broadcast, Bytes: 10})
}

func TestDuplicateAttachPanics(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach did not panic")
		}
	}()
	r.channel.Attach(&fakeHost{id: 0, battery: energy.NewBattery(energy.PaperModel(), 1)})
}

func TestQueueLimitTailDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueLimit = 2
	r := newRig(cfg)
	r.addHost(0, 0, 0)
	b := r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		for i := 0; i < 10; i++ {
			r.channel.Send(0, &Frame{Kind: "data", Dst: 1, Bytes: 512})
		}
	})
	r.engine.Run(5)
	// First frame starts transmitting almost immediately (leaves the
	// queue), then the queue holds 2; total delivered is small.
	if len(b.received) > 3 {
		t.Fatalf("delivered %d frames with queue limit 2, want ≤ 3", len(b.received))
	}
	if len(b.received) == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestAirTime(t *testing.T) {
	cfg := DefaultConfig()
	// 512 bytes at 2 Mbps = 2.048 ms.
	if got := cfg.AirTime(512); got != 512*8/2e6 {
		t.Fatalf("AirTime(512) = %v", got)
	}
}

func TestInRange(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 250, 0)
	r.addHost(2, 251, 0)
	if !r.channel.InRange(0, 1) {
		t.Error("hosts at exactly 250 m not in range")
	}
	if r.channel.InRange(0, 2) {
		t.Error("hosts at 251 m in range")
	}
	if r.channel.InRange(0, 99) {
		t.Error("unknown host in range")
	}
}

func TestSnifferSeesTransmissions(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	var sniffed []string
	r.channel.Sniffer = func(f *Frame, at float64) { sniffed = append(sniffed, f.Kind) }
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	r.engine.Run(1)
	if len(sniffed) != 1 || sniffed[0] != "hello" {
		t.Fatalf("sniffed = %v", sniffed)
	}
}

func TestCountersAccounting(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	r.addHost(1, 100, 0)
	r.engine.Schedule(0.001, func() {
		r.channel.Send(0, &Frame{Kind: "a", Dst: 1, Bytes: 100})
		r.channel.Send(0, &Frame{Kind: "b", Dst: hostid.Broadcast, Bytes: 50})
	})
	r.engine.Run(1)
	ct := r.channel.Counters()
	if ct.FramesQueued != 2 || ct.FramesSent != 2 {
		t.Errorf("FramesQueued,Sent = %d,%d, want 2,2", ct.FramesQueued, ct.FramesSent)
	}
	if ct.Deliveries != 2 {
		t.Errorf("Deliveries = %d, want 2", ct.Deliveries)
	}
	if ct.BytesOnAir != 150 {
		t.Errorf("BytesOnAir = %d, want 150", ct.BytesOnAir)
	}
}

func TestFrameString(t *testing.T) {
	f := &Frame{Kind: "data", Src: 1, Dst: 2, Bytes: 512}
	if got := f.String(); got != "data host-1->host-2 (512B)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestZeroByteFramePanics(t *testing.T) {
	r := newRig(DefaultConfig())
	r.addHost(0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-byte frame did not panic")
		}
	}()
	r.channel.Send(0, &Frame{Kind: "x", Dst: hostid.Broadcast})
}
