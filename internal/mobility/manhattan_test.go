package mobility

import (
	"math"
	"math/rand"
	"testing"

	"ecgrid/internal/geom"
)

func newManhattan(seed int64, block, maxSpeed, pause float64) *Manhattan {
	return NewManhattan(testArea(), geom.Point{X: 437, Y: 291}, block, maxSpeed, pause,
		rand.New(rand.NewSource(seed)))
}

// TestManhattanOnStreet is the model's defining invariant: at every
// instant the host lies on a street line — at least one coordinate is a
// multiple of the block size (within float slop) — and inside the
// lattice.
func TestManhattanOnStreet(t *testing.T) {
	const block = 100.0
	m := newManhattan(3, block, 12, 1.5)
	onLattice := func(v float64) bool {
		k := math.Round(v / block)
		return math.Abs(v-k*block) < 1e-6
	}
	for u := 0.0; u < 2000; u += 0.37 {
		p := m.Position(u)
		if !onLattice(p.X) && !onLattice(p.Y) {
			t.Fatalf("t=%v: position %v off the street lattice", u, p)
		}
		if p.X < -1e-6 || p.X > 1000+1e-6 || p.Y < -1e-6 || p.Y > 1000+1e-6 {
			t.Fatalf("t=%v: position %v outside the area", u, p)
		}
	}
}

// TestManhattanDeterministic: two instances with the same seed agree at
// every query, and the memo never diverges from a cold model.
func TestManhattanDeterministic(t *testing.T) {
	warm := newManhattan(11, 50, 8, 0.5)
	times := make([]float64, 0, 1200)
	r := rand.New(rand.NewSource(4))
	base := 0.0
	for i := 0; i < 300; i++ {
		base += r.Float64() * 3
		times = append(times, base, base+0.05, math.Max(0, base-40), base)
	}
	for _, u := range times {
		cold := newManhattan(11, 50, 8, 0.5)
		if got, want := warm.Position(u), cold.Position(u); got != want {
			t.Fatalf("Position(%v): memoized %v != fresh %v", u, got, want)
		}
		if got, want := warm.Velocity(u), cold.Velocity(u); got != want {
			t.Fatalf("Velocity(%v): memoized %v != fresh %v", u, got, want)
		}
	}
}

// TestManhattanVelocityAxisAligned: street motion is axis-parallel, at
// a speed in (0, max], and zero during intersection pauses.
func TestManhattanVelocityAxisAligned(t *testing.T) {
	const max = 9.0
	m := newManhattan(17, 125, max, 1)
	for u := 0.0; u < 600; u += 0.19 {
		v := m.Velocity(u)
		if v.DX != 0 && v.DY != 0 {
			t.Fatalf("t=%v: diagonal street velocity %v", u, v)
		}
		if s := v.Len(); s > max+1e-9 {
			t.Fatalf("t=%v: speed %v above the %v cap", u, s, max)
		}
	}
}

// TestManhattanNextTurnMonotone: NextTurn is strictly ahead of the
// query time and the heading really is constant until it.
func TestManhattanNextTurnMonotone(t *testing.T) {
	m := newManhattan(23, 80, 6, 0)
	u := 0.0
	for u < 500 {
		turn := m.NextTurn(u)
		if turn <= u {
			t.Fatalf("t=%v: NextTurn %v not in the future", u, turn)
		}
		v0 := m.Velocity(u)
		mid := u + (turn-u)/2
		if v := m.Velocity(mid); v != v0 {
			t.Fatalf("t=%v: velocity changed from %v to %v before NextTurn %v", u, v0, v, turn)
		}
		u = turn + 1e-9
	}
}

// TestManhattanDegenerateLattice: a block larger than one dimension
// collapses the lattice to a single line (or point) without hanging.
func TestManhattanDegenerateLattice(t *testing.T) {
	narrow := geom.NewRect(geom.Point{}, geom.Point{X: 40, Y: 1000})
	m := NewManhattan(narrow, geom.Point{X: 20, Y: 500}, 100, 5, 0, rand.New(rand.NewSource(2)))
	for u := 0.0; u < 300; u += 1 {
		p := m.Position(u)
		if math.Abs(p.X) > 1e-6 {
			t.Fatalf("t=%v: host left the single vertical street: %v", u, p)
		}
	}
	point := geom.NewRect(geom.Point{}, geom.Point{X: 40, Y: 40})
	defer func() {
		if recover() == nil {
			t.Fatal("block larger than both dimensions should panic")
		}
	}()
	NewManhattan(point, geom.Point{X: 20, Y: 20}, 100, 5, 0, rand.New(rand.NewSource(2)))
}
