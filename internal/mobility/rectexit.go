package mobility

import (
	"math"

	"ecgrid/internal/geom"
)

// NextRectExit returns a conservative estimate of the earliest time
// u ≥ t at which the host's position may leave rect: the result may be
// early (costing the caller a redundant check) but is never later than
// the true exit. It returns +Inf when the host provably stays inside
// rect forever, and at most horizon otherwise, so callers re-check
// periodically instead of trusting an unbounded extrapolation.
//
// This is the re-bucketing oracle behind spatial.Index: the radio
// channel hands each host's model to the index, which asks when the
// host may escape its loose cell bounds.
//
//   - Stationary hosts answer exactly: +Inf when inside, t when not.
//   - TurnAware models (waypoint, direction, scripted) are walked
//     analytically leg by leg with rayExitTime, the same primitive the
//     dwell estimator uses.
//   - Anything else falls back to sampling + bisection and returns the
//     last instant known to be inside — conservative, at the cost of
//     one extra re-check per crossing.
func NextRectExit(m Model, t float64, rect geom.Rect, horizon float64) float64 {
	switch s := m.(type) {
	case Stationary:
		return stationaryRectExit(s, t, rect)
	case *Stationary:
		return stationaryRectExit(*s, t, rect)
	}
	ta, ok := m.(TurnAware)
	if !ok {
		return sampleRectExit(m, t, rect, horizon)
	}
	u := t
	for u < horizon {
		pos := m.Position(u)
		if !rect.Contains(pos) {
			return u
		}
		// Straight-line crossing of the current leg. rayExitTime is exact
		// for the leg's constant velocity; the crossing only binds if it
		// happens before the host turns.
		exit := u + rayExitTime(pos, m.Velocity(u), rect)
		turn := ta.NextTurn(u)
		if exit <= turn {
			if exit >= horizon {
				return horizon
			}
			return exit
		}
		if turn <= u {
			// A turn exactly at u (e.g. a border bounce at this instant)
			// must not stall the walk; eps of travel cannot jump the
			// slack-sized margin the caller queries with.
			turn = u + eps
		}
		u = turn
	}
	return horizon
}

// ProvablyWithin reports whether the host provably remains inside rect
// over the whole interval [from, until]. This is a strictly stronger
// statement than NextRectExit(from) ≥ until: the sampling fallback is
// conservative about the crossings it detects but can miss a brief
// excursion between samples, so ProvablyWithin only trusts the models
// the oracle analyzes exactly — Stationary and the TurnAware leg walk —
// and answers false for everything else. The sharded engine's scan
// pruning (internal/shard) rests on this: a host it pins to a strip
// must be inside the strip at every instant a probe could observe it.
func ProvablyWithin(m Model, from, until float64, rect geom.Rect) bool {
	if until <= from {
		return false
	}
	switch m.(type) {
	case Stationary, *Stationary:
	default:
		if _, ok := m.(TurnAware); !ok {
			return false
		}
	}
	return NextRectExit(m, from, rect, until) >= until
}

func stationaryRectExit(s Stationary, t float64, rect geom.Rect) float64 {
	if rect.Contains(s.At) {
		return math.Inf(1)
	}
	return t
}

// sampleRectExit is the model-agnostic fallback: march in fixed steps
// until a sample lands outside rect, then bisect the crossing. It
// returns the last instant still known inside, keeping the result
// conservative (never later than the true exit).
func sampleRectExit(m Model, t float64, rect geom.Rect, horizon float64) float64 {
	if !rect.Contains(m.Position(t)) {
		return t
	}
	const step = 0.25
	for u := t + step; ; u += step {
		if u > horizon {
			u = horizon
		}
		if !rect.Contains(m.Position(u)) {
			lo, hi := u-step, u
			for hi-lo > eps {
				mid := (lo + hi) / 2
				if rect.Contains(m.Position(mid)) {
					lo = mid
				} else {
					hi = mid
				}
			}
			return lo
		}
		if u >= horizon {
			return horizon
		}
	}
}
