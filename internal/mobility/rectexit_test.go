package mobility

import (
	"math"
	"math/rand"
	"testing"

	"ecgrid/internal/geom"
)

// TestLegMemoMatchesFreshModel pins the legAt memo down: a model that
// has answered thousands of clustered and interleaved queries must
// report exactly the positions and velocities a fresh model (same seed,
// so identical legs) reports when asked cold. Any memo staleness would
// surface as a bit-level difference.
func TestLegMemoMatchesFreshModel(t *testing.T) {
	// Query times deliberately jump backward and forward so the memo
	// misses, re-seeks, and re-hits across leg boundaries.
	times := make([]float64, 0, 4000)
	r := rand.New(rand.NewSource(99))
	base := 0.0
	for i := 0; i < 1000; i++ {
		base += r.Float64() * 2
		times = append(times, base, base+0.01, math.Max(0, base-30), base)
	}

	t.Run("waypoint", func(t *testing.T) {
		warm := newRWP(7, 12, 3)
		for _, u := range times {
			cold := newRWP(7, 12, 3) // no memo, no cached legs beyond the first
			if got, want := warm.Position(u), cold.Position(u); got != want {
				t.Fatalf("Position(%v): memoized %v != fresh %v", u, got, want)
			}
			if got, want := warm.Velocity(u), cold.Velocity(u); got != want {
				t.Fatalf("Velocity(%v): memoized %v != fresh %v", u, got, want)
			}
		}
	})
	t.Run("direction", func(t *testing.T) {
		mk := func() *RandomDirection {
			return NewRandomDirection(testArea(), geom.Point{X: 500, Y: 500}, 8, 15, 2, rand.New(rand.NewSource(11)))
		}
		warm := mk()
		for _, u := range times {
			cold := mk()
			if got, want := warm.Position(u), cold.Position(u); got != want {
				t.Fatalf("Position(%v): memoized %v != fresh %v", u, got, want)
			}
			if got, want := warm.Velocity(u), cold.Velocity(u); got != want {
				t.Fatalf("Velocity(%v): memoized %v != fresh %v", u, got, want)
			}
		}
	})
}

func TestNextRectExitStationary(t *testing.T) {
	rect := geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 10})
	inside := Stationary{At: geom.Point{X: 5, Y: 5}}
	if got := NextRectExit(inside, 3, rect, 1e6); !math.IsInf(got, 1) {
		t.Errorf("stationary inside: exit = %v, want +Inf", got)
	}
	outside := Stationary{At: geom.Point{X: 50, Y: 5}}
	if got := NextRectExit(outside, 3, rect, 1e6); got != 3 {
		t.Errorf("stationary outside: exit = %v, want the query time 3", got)
	}
	if got := NextRectExit(&inside, 3, rect, 1e6); !math.IsInf(got, 1) {
		t.Errorf("*Stationary inside: exit = %v, want +Inf", got)
	}
}

// TestNextRectExitConservative is the oracle's contract: at every
// sampled instant strictly before the reported exit, the host is still
// inside the rectangle. Checked for the analytic (TurnAware) walk and
// the sampling fallback alike.
func TestNextRectExitConservative(t *testing.T) {
	models := map[string]Model{
		"waypoint":  newRWP(21, 15, 2),
		"direction": NewRandomDirection(testArea(), geom.Point{X: 200, Y: 700}, 10, 20, 1, rand.New(rand.NewSource(5))),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			const horizon = 600.0
			u := 0.0
			for u < horizon {
				pos := m.Position(u)
				rect := geom.NewRect(
					geom.Point{X: pos.X - 40, Y: pos.Y - 40},
					geom.Point{X: pos.X + 40, Y: pos.Y + 40},
				)
				exit := NextRectExit(m, u, rect, u+horizon)
				if exit < u {
					t.Fatalf("t=%v: exit %v in the past", u, exit)
				}
				// Sample the open interval [u, exit): the position must not
				// have left the rect yet (tolerating the walk's eps nudge).
				for i := 0; i < 32; i++ {
					s := u + (exit-u-2*eps)*float64(i)/32
					if s < u {
						break
					}
					if p := m.Position(s); !rect.Contains(p) {
						t.Fatalf("t=%v: position %v outside rect %v at %v, before reported exit %v",
							u, p, rect, s, exit)
					}
				}
				if exit <= u {
					exit = u + 0.5 // boundary case: force progress in the test loop
				}
				u = exit + 1
			}
		})
	}
}

// TestNextRectExitFallback exercises the sampling path with a model
// that is deliberately not TurnAware.
type driftModel struct{ v geom.Vector }

func (d driftModel) Position(t float64) geom.Point {
	return geom.Point{X: d.v.DX * t, Y: d.v.DY * t}
}
func (d driftModel) Velocity(float64) geom.Vector { return d.v }

func TestNextRectExitFallback(t *testing.T) {
	m := driftModel{v: geom.Vector{DX: 2, DY: 0}} // crosses x=10 at t=5
	rect := geom.NewRect(geom.Point{X: -10, Y: -10}, geom.Point{X: 10, Y: 10})
	exit := NextRectExit(m, 0, rect, 100)
	if exit > 5 || exit < 4 {
		t.Fatalf("fallback exit = %v, want just below the true crossing at 5", exit)
	}
	// Confined forever within the horizon: must report the horizon, not +Inf,
	// so the caller re-checks.
	still := driftModel{}
	if got := NextRectExit(still, 0, rect, 100); got != 100 {
		t.Fatalf("confined fallback exit = %v, want horizon 100", got)
	}
}
