package mobility

import (
	"math"

	"ecgrid/internal/geom"
)

// Group mobility (Reference Point Group Mobility, RPGM): a group of
// hosts shares one reference point that follows a random-waypoint
// trajectory, and each member adds its own small local motion around
// that moving reference. The composition of two piecewise-linear
// trajectories is piecewise linear with knots at the union of their
// knots, so a GroupMember is TurnAware and the NextRectExit oracle
// walks it analytically, leg by leg, exactly as it walks the primitive
// models.
//
// The caller keeps member positions inside the simulation area by
// running the reference waypoint over the area inset by the group
// radius (see NewGroupReference).

// GroupReference is the shared trajectory of one group: a random
// waypoint process over the area shrunk by the member offset radius, so
// reference + offset never leaves the full area.
type GroupReference struct {
	rwp *RandomWaypoint
}

// NewGroupReference creates a group's reference trajectory. The
// reference moves like a waypoint host with the given top speed and
// pause over area inset by radiusM on every side; start is clamped into
// that inset. It panics when twice the radius exceeds an area dimension
// (the inset would be empty) — a spec-validation bug.
func NewGroupReference(area geom.Rect, start geom.Point, radiusM, maxSpeed, pause float64, rng randSource) *GroupReference {
	if radiusM <= 0 {
		panic("mobility: non-positive group radius")
	}
	inset := geom.NewRect(
		geom.Point{X: area.Min.X + radiusM, Y: area.Min.Y + radiusM},
		geom.Point{X: area.Max.X - radiusM, Y: area.Max.Y - radiusM},
	)
	if inset.Width() <= 0 || inset.Height() <= 0 {
		panic("mobility: group radius too large for the area")
	}
	return &GroupReference{rwp: NewRandomWaypoint(inset, inset.Clamp(start), maxSpeed, pause, rng)}
}

// GroupMember is one host of a group: reference trajectory plus a
// private local waypoint motion inside the [-R, R]² offset box.
type GroupMember struct {
	ref   *GroupReference
	local *RandomWaypoint
}

// NewGroupMember attaches a member to ref. The member's local motion is
// a waypoint process over the offset box [-radiusM, radiusM]² at
// localSpeed, starting at a uniform offset drawn from rng — so members
// of a group spread out around the reference instead of stacking on it.
func NewGroupMember(ref *GroupReference, radiusM, localSpeed, pause float64, rng randSource) *GroupMember {
	if radiusM <= 0 || localSpeed <= 0 {
		panic("mobility: invalid group member parameters")
	}
	box := geom.NewRect(geom.Point{X: -radiusM, Y: -radiusM}, geom.Point{X: radiusM, Y: radiusM})
	start := geom.Point{
		X: -radiusM + rng.Float64()*2*radiusM,
		Y: -radiusM + rng.Float64()*2*radiusM,
	}
	return &GroupMember{ref: ref, local: NewRandomWaypoint(box, start, localSpeed, pause, rng)}
}

// Position implements Model: the reference position displaced by the
// member's current local offset.
func (g *GroupMember) Position(t float64) geom.Point {
	p := g.ref.rwp.Position(t)
	o := g.local.Position(t)
	return geom.Point{X: p.X + o.X, Y: p.Y + o.Y}
}

// Velocity implements Model: the vector sum of the reference and local
// velocities.
func (g *GroupMember) Velocity(t float64) geom.Vector {
	v := g.ref.rwp.Velocity(t)
	w := g.local.Velocity(t)
	return geom.Vector{DX: v.DX + w.DX, DY: v.DY + w.DY}
}

// NextTurn implements TurnAware: the earlier of the reference's and the
// local motion's next course change — between two such knots both
// components are constant-velocity, so the summed trajectory is a
// straight leg.
func (g *GroupMember) NextTurn(t float64) float64 {
	return math.Min(g.ref.rwp.NextTurn(t), g.local.NextTurn(t))
}
