package mobility

import (
	"math"
	"sort"

	"ecgrid/internal/geom"
)

// This file holds the mobility models beyond the paper's random waypoint:
// the random-direction model common in MANET sensitivity studies, and a
// scripted path model for deterministic tests and reproducible demos.

// RandomDirection moves at a constant speed in a uniformly random
// direction, reflecting off the area borders like a billiard ball, and
// picks a fresh direction (plus an optional pause) every epoch. Unlike
// random waypoint it produces a uniform spatial distribution, making it a
// useful robustness check against waypoint's center bias.
type RandomDirection struct {
	area  geom.Rect
	speed float64
	epoch float64
	pause float64
	rng   randSource
	legs  []dirLeg
	cur   int // index of the last leg returned by legAt (memo)
}

type dirLeg struct {
	start    float64
	from     geom.Point
	v        geom.Vector
	moveEnd  float64 // start + epoch
	pauseEnd float64 // moveEnd + pause
}

// NewRandomDirection creates the model: each epoch lasts epochSecs of
// movement at exactly speed m/s followed by pauseSecs standing still.
func NewRandomDirection(area geom.Rect, start geom.Point, speed, epochSecs, pauseSecs float64, rng randSource) *RandomDirection {
	if speed <= 0 || epochSecs <= 0 || pauseSecs < 0 {
		panic("mobility: invalid random-direction parameters")
	}
	m := &RandomDirection{area: area, speed: speed, epoch: epochSecs, pause: pauseSecs, rng: rng}
	m.legs = append(m.legs, m.nextLeg(0, start))
	return m
}

func (m *RandomDirection) nextLeg(start float64, from geom.Point) dirLeg {
	theta := m.rng.Float64() * 2 * math.Pi
	return dirLeg{
		start:    start,
		from:     from,
		v:        geom.Vector{DX: math.Cos(theta) * m.speed, DY: math.Sin(theta) * m.speed},
		moveEnd:  start + m.epoch,
		pauseEnd: start + m.epoch + m.pause,
	}
}

func (m *RandomDirection) legAt(t float64) dirLeg {
	if t < 0 {
		panic("mobility: negative time")
	}
	// Same memo as RandomWaypoint.legAt: legs tile [start, pauseEnd), so
	// the cached index answers clustered queries without searching.
	if l := m.legs[m.cur]; l.start <= t && t < l.pauseEnd {
		return l
	}
	last := m.legs[len(m.legs)-1]
	for last.pauseEnd <= t {
		next := m.nextLeg(last.pauseEnd, m.positionInLeg(last, last.pauseEnd))
		m.legs = append(m.legs, next)
		last = next
	}
	i := sort.Search(len(m.legs), func(i int) bool { return m.legs[i].pauseEnd > t })
	m.cur = i
	return m.legs[i]
}

// positionInLeg folds the unbounded straight-line position back into the
// area by mirror reflection.
func (m *RandomDirection) positionInLeg(l dirLeg, t float64) geom.Point {
	dt := math.Min(t, l.moveEnd) - l.start
	raw := l.from.Add(l.v.Scale(dt))
	return geom.Point{
		X: reflect(raw.X, m.area.Min.X, m.area.Max.X),
		Y: reflect(raw.Y, m.area.Min.Y, m.area.Max.Y),
	}
}

// reflect maps an unbounded coordinate into [lo, hi] by mirroring at the
// borders (sawtooth folding).
func reflect(x, lo, hi float64) float64 {
	w := hi - lo
	if w <= 0 {
		return lo
	}
	// Shift into a 2w-periodic triangle wave.
	y := math.Mod(x-lo, 2*w)
	if y < 0 {
		y += 2 * w
	}
	if y > w {
		y = 2*w - y
	}
	return lo + y
}

// Position implements Model.
func (m *RandomDirection) Position(t float64) geom.Point {
	l := m.legAt(t)
	return m.positionInLeg(l, t)
}

// Velocity implements Model. During pauses it is zero; while moving, the
// folded direction flips sign at each reflection.
func (m *RandomDirection) Velocity(t float64) geom.Vector {
	l := m.legAt(t)
	if t >= l.moveEnd {
		return geom.Vector{}
	}
	dt := t - l.start
	raw := l.from.Add(l.v.Scale(dt))
	v := l.v
	if reflectSign(raw.X, m.area.Min.X, m.area.Max.X) < 0 {
		v.DX = -v.DX
	}
	if reflectSign(raw.Y, m.area.Min.Y, m.area.Max.Y) < 0 {
		v.DY = -v.DY
	}
	return v
}

// reflectSign reports whether the folded coordinate currently moves with
// (+1) or against (-1) the raw coordinate.
func reflectSign(x, lo, hi float64) float64 {
	w := hi - lo
	if w <= 0 {
		return 1
	}
	y := math.Mod(x-lo, 2*w)
	if y < 0 {
		y += 2 * w
	}
	if y > w {
		return -1
	}
	return 1
}

// NextTurn implements TurnAware: movement direction is constant until the
// epoch ends or the next border reflection, whichever is earlier.
func (m *RandomDirection) NextTurn(t float64) float64 {
	l := m.legAt(t)
	if t >= l.moveEnd {
		return l.pauseEnd
	}
	next := l.moveEnd
	pos := m.Position(t)
	vel := m.Velocity(t)
	if bounce := t + rayExitTime(pos, vel, m.area); bounce < next {
		next = bounce
	}
	return next
}

// ScriptedPath visits fixed waypoints at fixed times, interpolating
// linearly between them, and stays at the last waypoint afterwards. It
// exists for deterministic tests: the trajectory is fully specified by
// its inputs.
type ScriptedPath struct {
	times  []float64
	points []geom.Point
}

// NewScriptedPath creates a path passing through points[i] at times[i].
// Times must be strictly increasing and the slices non-empty and of equal
// length.
func NewScriptedPath(times []float64, points []geom.Point) *ScriptedPath {
	if len(times) == 0 || len(times) != len(points) {
		panic("mobility: scripted path needs equal, non-empty times and points")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			panic("mobility: scripted path times must be strictly increasing")
		}
	}
	return &ScriptedPath{times: times, points: points}
}

// Position implements Model.
func (s *ScriptedPath) Position(t float64) geom.Point {
	if t <= s.times[0] {
		return s.points[0]
	}
	n := len(s.times)
	if t >= s.times[n-1] {
		return s.points[n-1]
	}
	i := sort.SearchFloat64s(s.times, t)
	// times[i-1] < t ≤ times[i]
	frac := (t - s.times[i-1]) / (s.times[i] - s.times[i-1])
	d := s.points[i].Sub(s.points[i-1])
	return s.points[i-1].Add(d.Scale(frac))
}

// Velocity implements Model.
func (s *ScriptedPath) Velocity(t float64) geom.Vector {
	n := len(s.times)
	if t < s.times[0] || t >= s.times[n-1] {
		return geom.Vector{}
	}
	i := sort.SearchFloat64s(s.times, t)
	if s.times[i] == t {
		i++ // at a knot, report the upcoming segment's velocity
	}
	if i == 0 || i >= n {
		return geom.Vector{}
	}
	d := s.points[i].Sub(s.points[i-1])
	return d.Scale(1 / (s.times[i] - s.times[i-1]))
}

// NextTurn implements TurnAware: the next waypoint time.
func (s *ScriptedPath) NextTurn(t float64) float64 {
	for _, u := range s.times {
		if u > t {
			return u
		}
	}
	return math.Inf(1)
}
