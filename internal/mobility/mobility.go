// Package mobility implements host movement models, chiefly the random
// waypoint model used by the paper's simulations: a host picks a uniform
// random destination in the area and a uniform random speed in (0, vmax],
// travels there in a straight line, pauses for a fixed pause time, and
// repeats.
//
// The package also provides the two position-derived quantities protocol
// code needs:
//
//   - EstimateDwell: the paper's GPS-based estimate of how long the host
//     will remain in its current grid cell, computed from instantaneous
//     location and velocity only (a host cannot see its own future
//     waypoints). Sleeping hosts set their wake timers from this value.
//   - NextCellChange: the exact simulation time at which the host's grid
//     cell next changes, used by the simulator to drive grid entry/exit
//     events.
package mobility

import (
	"math"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
)

// Model yields a host's position and velocity as functions of time.
// Implementations must be consistent: Position must be continuous and
// Velocity its derivative wherever defined.
type Model interface {
	// Position returns the host location at time t.
	Position(t float64) geom.Point
	// Velocity returns the instantaneous velocity at time t. During a
	// pause it is the zero vector.
	Velocity(t float64) geom.Vector
}

// Stationary is a host that never moves. Used in tests and for fixed
// infrastructure-like scenarios.
type Stationary struct {
	At geom.Point
}

// Position returns the fixed location.
func (s Stationary) Position(float64) geom.Point { return s.At }

// Velocity returns the zero vector.
func (s Stationary) Velocity(float64) geom.Vector { return geom.Vector{} }

// randSource is the subset of math/rand used by the waypoint generator.
type randSource interface {
	Float64() float64
}

// leg is one movement segment of the waypoint process: travel from `from`
// to `to` at `speed`, then pause until pauseEnd.
type leg struct {
	start    float64 // time movement begins
	from, to geom.Point
	speed    float64
	arrive   float64 // time the destination is reached
	pauseEnd float64 // arrive + pause
}

func (l *leg) positionAt(t float64) geom.Point {
	if t >= l.arrive {
		return l.to
	}
	frac := (t - l.start) / (l.arrive - l.start)
	d := l.to.Sub(l.from)
	return l.from.Add(d.Scale(frac))
}

func (l *leg) velocityAt(t float64) geom.Vector {
	if t >= l.arrive {
		return geom.Vector{}
	}
	return l.to.Sub(l.from).Unit().Scale(l.speed)
}

// RandomWaypoint is the paper's mobility model. It is deterministic given
// its random source: legs are generated lazily and cached, so position
// queries at any time always agree.
type RandomWaypoint struct {
	area     geom.Rect
	maxSpeed float64
	pause    float64
	rng      randSource
	legs     []leg
	cur      int // index of the last leg returned by legAt (memo)
}

// NewRandomWaypoint creates a waypoint process starting at `start` at time
// zero. Speeds are uniform in (0, maxSpeed]; each arrival is followed by a
// fixed pause (the paper's "pause time"). It panics on non-positive
// maxSpeed or negative pause, which are configuration bugs.
func NewRandomWaypoint(area geom.Rect, start geom.Point, maxSpeed, pause float64, rng randSource) *RandomWaypoint {
	if maxSpeed <= 0 {
		panic("mobility: non-positive max speed")
	}
	if pause < 0 {
		panic("mobility: negative pause time")
	}
	w := &RandomWaypoint{area: area, maxSpeed: maxSpeed, pause: pause, rng: rng}
	w.legs = append(w.legs, w.nextLeg(0, start))
	return w
}

func (w *RandomWaypoint) nextLeg(start float64, from geom.Point) leg {
	to := geom.Point{
		X: w.area.Min.X + w.rng.Float64()*w.area.Width(),
		Y: w.area.Min.Y + w.rng.Float64()*w.area.Height(),
	}
	// Uniform in (0, maxSpeed]: 1-Float64() is in (0, 1].
	speed := (1 - w.rng.Float64()) * w.maxSpeed
	dist := from.Dist(to)
	dur := dist / speed
	if dist == 0 {
		dur = 0
	}
	arrive := start + dur
	return leg{start: start, from: from, to: to, speed: speed, arrive: arrive, pauseEnd: arrive + w.pause}
}

// legAt returns the leg containing time t, generating legs as needed.
// The last hit is memoized: legs tile time contiguously as
// [start, pauseEnd), so a containment check on the cached index gives
// the same answer the binary search would, and simulation queries are
// overwhelmingly clustered within one leg. The returned pointer is into
// w.legs and is only valid until the next legAt call (growth may move
// the backing array).
func (w *RandomWaypoint) legAt(t float64) *leg {
	if t < 0 {
		panic("mobility: negative time")
	}
	if l := &w.legs[w.cur]; l.start <= t && t < l.pauseEnd {
		return l
	}
	last := w.legs[len(w.legs)-1]
	for last.pauseEnd <= t {
		// Degenerate guard: a zero-length leg with zero pause would not
		// advance time; the uniform destination draw makes repeats
		// measure-zero, but loop anyway until time advances.
		next := w.nextLeg(last.pauseEnd, last.to)
		w.legs = append(w.legs, next)
		last = next
	}
	// Binary search: first leg with pauseEnd > t.
	lo, hi := 0, len(w.legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.legs[mid].pauseEnd > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w.cur = lo
	return &w.legs[lo]
}

// Position returns the host location at time t.
func (w *RandomWaypoint) Position(t float64) geom.Point {
	return w.legAt(t).positionAt(t)
}

// Velocity returns the instantaneous velocity at time t (zero during
// pauses).
func (w *RandomWaypoint) Velocity(t float64) geom.Vector {
	return w.legAt(t).velocityAt(t)
}

// NextTurn implements TurnAware: while moving it returns the arrival time
// at the current waypoint; while paused, the end of the pause.
func (w *RandomWaypoint) NextTurn(t float64) float64 {
	l := w.legAt(t)
	if t < l.arrive {
		return l.arrive
	}
	return l.pauseEnd
}

// TurnAware is implemented by mobility models whose hosts know their own
// movement plan: NextTurn returns the time at which the current straight
// leg (or pause) ends. A host choosing a sleep duration uses it so the
// linear dwell extrapolation is never trusted past the point where the
// host itself will change course.
type TurnAware interface {
	NextTurn(t float64) float64
}

// EstimateDwell is the paper's dwell-duration estimate: how long the host
// expects to stay inside its current grid cell, extrapolating its current
// position along its current velocity. The extrapolation is only valid
// until the host's next course change, so TurnAware models are re-checked
// there. A paused host (zero velocity) cannot see beyond its pause, so
// the estimate is capped at maxDwell; the protocol re-checks and
// re-estimates when the timer expires, exactly as §3.2 prescribes.
func EstimateDwell(m Model, t float64, p *grid.Partition, maxDwell float64) float64 {
	pos := m.Position(t)
	vel := m.Velocity(t)
	bounds := p.Bounds(p.CellOf(pos))
	exit := rayExitTime(pos, vel, bounds)
	if ta, ok := m.(TurnAware); ok {
		if turn := ta.NextTurn(t) - t; turn >= 0 && turn < exit {
			exit = turn
		}
	}
	if exit > maxDwell {
		return maxDwell
	}
	if exit <= 0 {
		return 0 // on a boundary moving out: re-check immediately
	}
	return exit
}

// rayExitTime returns the time until a point moving at v from pos crosses
// out of rect, or +Inf if it never does (zero velocity or contained ray).
func rayExitTime(pos geom.Point, v geom.Vector, rect geom.Rect) float64 {
	exit := math.Inf(1)
	if v.DX > 0 {
		exit = math.Min(exit, (rect.Max.X-pos.X)/v.DX)
	} else if v.DX < 0 {
		exit = math.Min(exit, (rect.Min.X-pos.X)/v.DX)
	}
	if v.DY > 0 {
		exit = math.Min(exit, (rect.Max.Y-pos.Y)/v.DY)
	} else if v.DY < 0 {
		exit = math.Min(exit, (rect.Min.Y-pos.Y)/v.DY)
	}
	return exit
}

// NextCellChange returns the exact earliest time u in (t, horizon] at
// which the host's grid cell differs from its cell at t, or +Inf if the
// cell does not change before the horizon. The simulator uses this to
// schedule grid entry/exit processing without polling.
//
// It works for any Model by walking movement analytically when the model
// is a *RandomWaypoint and by bisection for other models.
func NextCellChange(m Model, t float64, p *grid.Partition, horizon float64) float64 {
	if w, ok := m.(*RandomWaypoint); ok {
		return w.nextCellChange(t, p, horizon)
	}
	return bisectCellChange(m, t, p, horizon)
}

// eps nudges a crossing time just past a cell boundary so that CellOf,
// which floors, reports the new cell. One microsecond of travel at any
// realistic speed is well under a millimeter.
const eps = 1e-6

func (w *RandomWaypoint) nextCellChange(t float64, p *grid.Partition, horizon float64) float64 {
	cur := p.CellOf(w.Position(t))
	for t < horizon {
		l := w.legAt(t)
		if t >= l.arrive {
			// Paused at l.to: no movement until pauseEnd.
			t = l.pauseEnd
			continue
		}
		// Moving. Find the first boundary crossing within this leg.
		pos := l.positionAt(t)
		vel := l.velocityAt(t)
		bounds := p.Bounds(p.CellOf(pos))
		exit := rayExitTime(pos, vel, bounds)
		cross := t + exit + eps
		if cross >= l.arrive {
			// No crossing before arrival; skip to the pause.
			if c := p.CellOf(l.to); c != cur {
				// Arrived in a different cell: the crossing happened at
				// or before arrival (numerically at the boundary).
				at := math.Min(cross, l.arrive)
				if at > horizon {
					return math.Inf(1)
				}
				return at
			}
			t = l.pauseEnd
			continue
		}
		if c := p.CellOf(w.Position(cross)); c != cur {
			if cross > horizon {
				return math.Inf(1)
			}
			return cross
		}
		// Grazed a boundary without changing cell (corner touch); advance.
		t = cross
	}
	return math.Inf(1)
}

// bisectCellChange finds a cell change by sampling then bisecting. The
// step is a quarter cell at the model's observed speed, floored to keep
// progress when paused.
func bisectCellChange(m Model, t float64, p *grid.Partition, horizon float64) float64 {
	cur := p.CellOf(m.Position(t))
	step := 0.25
	for u := t + step; u <= horizon; u += step {
		if p.CellOf(m.Position(u)) != cur {
			// Bisect within (u-step, u].
			lo, hi := u-step, u
			for hi-lo > eps {
				mid := (lo + hi) / 2
				if p.CellOf(m.Position(mid)) != cur {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi
		}
	}
	return math.Inf(1)
}
