package mobility

import (
	"math"
	"math/rand"
	"testing"

	"ecgrid/internal/geom"
)

func newGroup(seed int64) (*GroupReference, []*GroupMember) {
	const radius = 80.0
	rng := rand.New(rand.NewSource(seed))
	ref := NewGroupReference(testArea(), geom.Point{X: 300, Y: 640}, radius, 10, 2, rng)
	members := make([]*GroupMember, 4)
	for i := range members {
		members[i] = NewGroupMember(ref, radius, 2, 0.5, rand.New(rand.NewSource(seed+int64(i)+1)))
	}
	return ref, members
}

// TestGroupMemberStaysNearReference: every member stays within the
// offset radius of the shared reference point, and therefore inside the
// full area (the reference runs over the inset).
func TestGroupMemberStaysNearReference(t *testing.T) {
	ref, members := newGroup(9)
	area := testArea()
	for u := 0.0; u < 800; u += 0.53 {
		rp := ref.rwp.Position(u)
		for i, m := range members {
			p := m.Position(u)
			if d := p.Dist(rp); d > 80*math.Sqrt2+1e-6 {
				t.Fatalf("t=%v: member %d strayed %v m from the reference", u, i, d)
			}
			if !area.Contains(p) {
				t.Fatalf("t=%v: member %d outside the area at %v", u, i, p)
			}
		}
	}
}

// TestGroupMembersCohere: distinct members of one group do not collapse
// onto a single trajectory (each has private local motion), yet move
// together: the spread between members is bounded by twice the radius
// box diagonal.
func TestGroupMembersCohere(t *testing.T) {
	_, members := newGroup(31)
	distinct := false
	for u := 10.0; u < 400; u += 10 {
		a := members[0].Position(u)
		b := members[1].Position(u)
		if a.Dist(b) > 1 {
			distinct = true
		}
		if d := a.Dist(b); d > 2*80*math.Sqrt2+1e-6 {
			t.Fatalf("t=%v: members %v apart, beyond the group diameter", u, d)
		}
	}
	if !distinct {
		t.Fatal("members never separated: local motion is not private")
	}
}

// TestGroupMemberVelocityIsDerivative checks the Model consistency
// contract numerically: the position moves by roughly velocity·dt over
// a small dt away from knots.
func TestGroupMemberVelocityIsDerivative(t *testing.T) {
	_, members := newGroup(5)
	m := members[2]
	const dt = 1e-5
	for u := 0.5; u < 200; u += 3.1 {
		// Skip samples too close to a knot for a one-sided difference.
		if m.NextTurn(u)-u < 2*dt {
			continue
		}
		v := m.Velocity(u)
		p0, p1 := m.Position(u), m.Position(u+dt)
		gotDX := (p1.X - p0.X) / dt
		gotDY := (p1.Y - p0.Y) / dt
		if math.Abs(gotDX-v.DX) > 1e-3 || math.Abs(gotDY-v.DY) > 1e-3 {
			t.Fatalf("t=%v: velocity %v but finite difference (%v, %v)", u, v, gotDX, gotDY)
		}
	}
}

// TestNextRectExitConservativeGenerated mirrors the waypoint/direction
// conservativeness property test for the two generated-scenario models:
// at every sampled instant strictly before the reported exit the host
// must still be inside the rectangle. This is the contract that lets
// the spatial index trust the models for event-driven re-bucketing.
func TestNextRectExitConservativeGenerated(t *testing.T) {
	_, members := newGroup(13)
	models := map[string]Model{
		"manhattan": newManhattan(41, 60, 14, 0.5),
		"group":     members[0],
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			const horizon = 600.0
			u := 0.0
			for u < horizon {
				pos := m.Position(u)
				rect := geom.NewRect(
					geom.Point{X: pos.X - 35, Y: pos.Y - 35},
					geom.Point{X: pos.X + 35, Y: pos.Y + 35},
				)
				exit := NextRectExit(m, u, rect, u+horizon)
				if exit < u {
					t.Fatalf("t=%v: exit %v in the past", u, exit)
				}
				for i := 0; i < 32; i++ {
					s := u + (exit-u-2*eps)*float64(i)/32
					if s < u {
						break
					}
					if p := m.Position(s); !rect.Contains(p) {
						t.Fatalf("t=%v: position %v outside rect %v at %v, before reported exit %v",
							u, p, rect, s, exit)
					}
				}
				if exit <= u {
					exit = u + 0.5
				}
				u = exit + 1
			}
		})
	}
}
