package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
)

func testArea() geom.Rect {
	return geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 1000, Y: 1000})
}

func testPartition() *grid.Partition {
	return grid.NewPartition(testArea(), 100)
}

func newRWP(seed int64, maxSpeed, pause float64) *RandomWaypoint {
	return NewRandomWaypoint(testArea(), geom.Point{X: 500, Y: 500}, maxSpeed, pause, rand.New(rand.NewSource(seed)))
}

func TestStationary(t *testing.T) {
	s := Stationary{At: geom.Point{X: 3, Y: 4}}
	if s.Position(0) != s.Position(100) || s.Position(0) != (geom.Point{X: 3, Y: 4}) {
		t.Fatal("stationary host moved")
	}
	if s.Velocity(50) != (geom.Vector{}) {
		t.Fatal("stationary host has velocity")
	}
}

func TestRWPStartsAtStart(t *testing.T) {
	w := newRWP(1, 10, 0)
	if got := w.Position(0); got != (geom.Point{X: 500, Y: 500}) {
		t.Fatalf("Position(0) = %v", got)
	}
}

func TestRWPStaysInAreaProperty(t *testing.T) {
	w := newRWP(2, 10, 5)
	area := testArea()
	f := func(tr uint16) bool {
		return area.Contains(w.Position(float64(tr) / 10))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRWPSpeedBoundProperty(t *testing.T) {
	const vmax = 10.0
	w := newRWP(3, vmax, 0)
	f := func(tr uint16) bool {
		v := w.Velocity(float64(tr) / 10).Len()
		return v >= 0 && v <= vmax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRWPContinuity(t *testing.T) {
	// Position must be (Lipschitz-)continuous: over dt the host moves at
	// most vmax·dt.
	const vmax = 10.0
	w := newRWP(4, vmax, 2)
	const dt = 0.01
	prev := w.Position(0)
	for u := dt; u < 500; u += dt {
		cur := w.Position(u)
		if d := cur.Dist(prev); d > vmax*dt+1e-9 {
			t.Fatalf("jump of %v m over %v s at t=%v", d, dt, u)
		}
		prev = cur
	}
}

func TestRWPPauses(t *testing.T) {
	// With a long pause, the host must be stationary (zero velocity) a
	// sizable fraction of the time.
	w := newRWP(5, 10, 50)
	paused := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if w.Velocity(float64(i)).Len() == 0 {
			paused++
		}
	}
	if paused == 0 {
		t.Fatal("host with pause 50 never paused over 5000 s")
	}
}

func TestRWPZeroPauseKeepsMoving(t *testing.T) {
	// With zero pause the velocity should be nonzero at almost all times.
	w := newRWP(6, 10, 0)
	moving := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if w.Velocity(float64(i)*1.37).Len() > 0 {
			moving++
		}
	}
	if moving < n*9/10 {
		t.Fatalf("host with pause 0 moving only %d/%d samples", moving, n)
	}
}

func TestRWPQueriesAreConsistent(t *testing.T) {
	// Querying out of order must return identical positions (legs are
	// cached, not regenerated).
	w := newRWP(7, 10, 1)
	p100a := w.Position(100)
	_ = w.Position(500)
	p100b := w.Position(100)
	if p100a != p100b {
		t.Fatalf("Position(100) changed after later query: %v vs %v", p100a, p100b)
	}
}

func TestRWPDeterministicPerSeed(t *testing.T) {
	a := newRWP(8, 10, 1)
	b := newRWP(8, 10, 1)
	for i := 0; i < 100; i++ {
		u := float64(i) * 3.3
		if a.Position(u) != b.Position(u) {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestRWPNegativeTimePanics(t *testing.T) {
	w := newRWP(9, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Position(-1) did not panic")
		}
	}()
	w.Position(-1)
}

func TestNewRWPValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero speed":     func() { newRWP(1, 0, 0) },
		"negative pause": func() { newRWP(1, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEstimateDwellMovingHost(t *testing.T) {
	// A host at the center of cell (5,5) moving east at 10 m/s reaches
	// the cell edge (x=600) after 5 s.
	p := testPartition()
	// Build a deterministic model: stationary won't do, so construct a
	// waypoint moving due east by hand via a two-point area... instead
	// use a synthetic model.
	m := linearModel{from: geom.Point{X: 550, Y: 550}, v: geom.Vector{DX: 10}}
	got := EstimateDwell(m, 0, p, 1000)
	if math.Abs(got-5) > 1e-9 {
		t.Fatalf("EstimateDwell = %v, want 5", got)
	}
}

func TestEstimateDwellDiagonal(t *testing.T) {
	p := testPartition()
	m := linearModel{from: geom.Point{X: 550, Y: 590}, v: geom.Vector{DX: 5, DY: 10}}
	// North edge at y=600 reached after 1 s; east edge at x=600 after 10 s.
	got := EstimateDwell(m, 0, p, 1000)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("EstimateDwell = %v, want 1", got)
	}
}

func TestEstimateDwellPausedHostCapped(t *testing.T) {
	p := testPartition()
	m := Stationary{At: geom.Point{X: 550, Y: 550}}
	if got := EstimateDwell(m, 0, p, 30); got != 30 {
		t.Fatalf("EstimateDwell for paused host = %v, want cap 30", got)
	}
}

func TestEstimateDwellWestward(t *testing.T) {
	p := testPartition()
	m := linearModel{from: geom.Point{X: 550, Y: 550}, v: geom.Vector{DX: -25}}
	// West edge at x=500 reached after 2 s.
	if got := EstimateDwell(m, 0, p, 1000); math.Abs(got-2) > 1e-9 {
		t.Fatalf("EstimateDwell = %v, want 2", got)
	}
}

// linearModel moves in a straight line forever (test helper).
type linearModel struct {
	from geom.Point
	v    geom.Vector
}

func (l linearModel) Position(t float64) geom.Point  { return l.from.Add(l.v.Scale(t)) }
func (l linearModel) Velocity(t float64) geom.Vector { return l.v }

func TestNextCellChangeExact(t *testing.T) {
	p := testPartition()
	w := newRWP(10, 10, 2)
	t0 := 0.0
	for i := 0; i < 25; i++ {
		tc := NextCellChange(w, t0, p, 1e6)
		if math.IsInf(tc, 1) {
			t.Fatalf("no cell change found from t=%v", t0)
		}
		before := p.CellOf(w.Position(math.Max(t0, tc-1e-3)))
		after := p.CellOf(w.Position(tc))
		if before == after {
			t.Fatalf("NextCellChange(%v) = %v but cell did not change (%v)", t0, tc, after)
		}
		if tc <= t0 {
			t.Fatalf("NextCellChange went backwards: %v -> %v", t0, tc)
		}
		t0 = tc
	}
}

func TestNextCellChangeRespectsHorizon(t *testing.T) {
	p := testPartition()
	// Slow host: at ≤0.01 m/s it takes ≥ hundreds of seconds to cross
	// 100 m; horizon 1 s must report no change.
	w := NewRandomWaypoint(testArea(), geom.Point{X: 550, Y: 550}, 0.01, 0, rand.New(rand.NewSource(11)))
	if tc := NextCellChange(w, 0, p, 1); !math.IsInf(tc, 1) {
		t.Fatalf("NextCellChange = %v, want +Inf within 1 s horizon", tc)
	}
}

func TestNextCellChangeBisectionPath(t *testing.T) {
	// Non-waypoint models use the bisection fallback.
	p := testPartition()
	m := linearModel{from: geom.Point{X: 550, Y: 550}, v: geom.Vector{DX: 10}}
	tc := NextCellChange(m, 0, p, 100)
	if math.Abs(tc-5) > 1e-3 {
		t.Fatalf("bisection NextCellChange = %v, want ≈5", tc)
	}
}

func TestNextCellChangeBisectionStationary(t *testing.T) {
	p := testPartition()
	m := Stationary{At: geom.Point{X: 550, Y: 550}}
	if tc := NextCellChange(m, 0, p, 10); !math.IsInf(tc, 1) {
		t.Fatalf("NextCellChange for stationary host = %v, want +Inf", tc)
	}
}

func TestNextCellChangeAgreesWithDenseSampling(t *testing.T) {
	p := testPartition()
	w := newRWP(12, 10, 1)
	tc := NextCellChange(w, 0, p, 1e6)
	cur := p.CellOf(w.Position(0))
	// Sample densely: no cell change may occur before tc.
	const dt = 0.05
	for u := dt; u < tc-1e-3; u += dt {
		if p.CellOf(w.Position(u)) != cur {
			t.Fatalf("cell changed at %v, before reported %v", u, tc)
		}
	}
}

func TestRayExitTime(t *testing.T) {
	rect := geom.NewRect(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 10})
	cases := []struct {
		pos  geom.Point
		v    geom.Vector
		want float64
	}{
		{geom.Point{X: 5, Y: 5}, geom.Vector{DX: 1}, 5},
		{geom.Point{X: 5, Y: 5}, geom.Vector{DX: -1}, 5},
		{geom.Point{X: 5, Y: 5}, geom.Vector{DY: 2}, 2.5},
		{geom.Point{X: 5, Y: 5}, geom.Vector{DX: 1, DY: 1}, 5},
		{geom.Point{X: 2, Y: 5}, geom.Vector{DX: 1, DY: -1}, 5},
		{geom.Point{X: 5, Y: 5}, geom.Vector{}, math.Inf(1)},
	}
	for _, c := range cases {
		if got := rayExitTime(c.pos, c.v, rect); math.Abs(got-c.want) > 1e-9 && got != c.want {
			t.Errorf("rayExitTime(%v, %v) = %v, want %v", c.pos, c.v, got, c.want)
		}
	}
}
