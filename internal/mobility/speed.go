package mobility

import "math"

// SpeedBound is an optional Model extension: models that can bound their
// own instantaneous speed for the entire run implement it. The bound
// must cover legs not yet generated — every draw the model will ever
// make, not just the history so far — because consumers (the radio
// channel's receiver cache) use it to bound position drift between two
// instants without materializing the path in between.
type SpeedBound interface {
	// MaxSpeedMS returns an upper bound, in meters per second, on the
	// model's instantaneous speed at every time ≥ 0.
	MaxSpeedMS() float64
}

// SpeedBoundOf returns a bound on the model's instantaneous speed, or
// +Inf when the model cannot provide one (a conservative answer that
// merely disables drift-based optimizations).
func SpeedBoundOf(m Model) float64 {
	if sb, ok := m.(SpeedBound); ok {
		return sb.MaxSpeedMS()
	}
	return math.Inf(1)
}

// MaxSpeedMS returns 0: a stationary host never moves.
func (s Stationary) MaxSpeedMS() float64 { return 0 }

// MaxSpeedMS returns the waypoint speed cap: leg speeds are drawn
// uniform in (0, maxSpeed].
func (w *RandomWaypoint) MaxSpeedMS() float64 { return w.maxSpeed }

// MaxSpeedMS returns the constant epoch speed.
func (m *RandomDirection) MaxSpeedMS() float64 { return m.speed }

// MaxSpeedMS returns the street speed cap: segment speeds are drawn
// uniform in (0, maxSpeed].
func (m *Manhattan) MaxSpeedMS() float64 { return m.maxSpeed }

// MaxSpeedMS bounds the member by the triangle inequality: its velocity
// is the sum of the group reference's velocity and the local roaming
// velocity, each capped by its own waypoint process.
func (g *GroupMember) MaxSpeedMS() float64 {
	return g.ref.rwp.maxSpeed + g.local.maxSpeed
}

// MaxSpeedMS returns the fastest segment speed of the script. The whole
// path is known at construction, so the bound is exact.
func (s *ScriptedPath) MaxSpeedMS() float64 {
	top := 0.0
	for i := 1; i < len(s.times); i++ {
		dt := s.times[i] - s.times[i-1]
		if dt <= 0 {
			continue // coincident timestamps: a jump would be a script bug
		}
		if v := math.Sqrt(s.points[i].Dist2(s.points[i-1])) / dt; v > top {
			top = v
		}
	}
	return top
}
