package mobility

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ecgrid/internal/geom"
)

func newRD(seed int64, speed, epoch, pause float64) *RandomDirection {
	return NewRandomDirection(testArea(), geom.Point{X: 500, Y: 500}, speed, epoch, pause,
		rand.New(rand.NewSource(seed)))
}

func TestRandomDirectionStaysInAreaProperty(t *testing.T) {
	m := newRD(1, 10, 30, 5)
	area := testArea()
	f := func(tr uint16) bool {
		return area.Contains(m.Position(float64(tr) / 8))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDirectionConstantSpeedWhileMoving(t *testing.T) {
	m := newRD(2, 7, 1000, 0) // one long epoch: always moving
	for i := 0; i < 200; i++ {
		v := m.Velocity(float64(i) * 3.7).Len()
		if math.Abs(v-7) > 1e-9 {
			t.Fatalf("speed %v at sample %d, want 7", v, i)
		}
	}
}

func TestRandomDirectionPauses(t *testing.T) {
	m := newRD(3, 10, 5, 5) // 5 s moving, 5 s paused
	paused := 0
	for i := 0; i < 100; i++ {
		if m.Velocity(float64(i)).Len() == 0 {
			paused++
		}
	}
	if paused < 30 || paused > 70 {
		t.Fatalf("paused %d/100 samples, want ≈50", paused)
	}
}

func TestRandomDirectionContinuity(t *testing.T) {
	const vmax = 10.0
	m := newRD(4, vmax, 20, 2)
	const dt = 0.01
	prev := m.Position(0)
	for u := dt; u < 300; u += dt {
		cur := m.Position(u)
		if d := cur.Dist(prev); d > vmax*dt+1e-9 {
			t.Fatalf("jump of %v m at t=%v (reflection must not teleport)", d, u)
		}
		prev = cur
	}
}

func TestRandomDirectionVelocityMatchesMotion(t *testing.T) {
	m := newRD(5, 10, 100, 0)
	const h = 1e-4
	for _, u := range []float64{1, 7.3, 33.3, 80} {
		v := m.Velocity(u)
		num := m.Position(u + h).Sub(m.Position(u)).Scale(1 / h)
		if math.Abs(v.DX-num.DX) > 0.01 || math.Abs(v.DY-num.DY) > 0.01 {
			t.Fatalf("at t=%v velocity %v but numeric derivative %v", u, v, num)
		}
	}
}

func TestRandomDirectionNextTurn(t *testing.T) {
	m := newRD(6, 10, 50, 5)
	turn := m.NextTurn(1)
	if turn <= 1 {
		t.Fatalf("NextTurn(1) = %v", turn)
	}
	// Direction (sign pattern included) is constant until the turn.
	v0 := m.Velocity(1)
	mid := 1 + (turn-1)/2
	if m.Velocity(mid) != v0 {
		t.Fatalf("velocity changed before the reported turn: %v vs %v", v0, m.Velocity(mid))
	}
}

func TestRandomDirectionDwellIntegration(t *testing.T) {
	// EstimateDwell must respect random-direction turns too.
	p := testPartition()
	m := NewRandomDirection(testArea(), geom.Point{X: 550, Y: 550}, 10, 60, 0,
		rand.New(rand.NewSource(7)))
	d := EstimateDwell(m, 0, p, 60)
	if d <= 0 || d > 60 {
		t.Fatalf("EstimateDwell = %v", d)
	}
}

func TestRandomDirectionValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero speed":     func() { newRD(1, 0, 10, 0) },
		"zero epoch":     func() { newRD(1, 1, 0, 0) },
		"negative pause": func() { newRD(1, 1, 10, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReflectFolding(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{5, 5},
		{0, 0},
		{10, 10},
		{12, 8},  // past hi: mirrored
		{-3, 3},  // past lo: mirrored
		{23, 3},  // two wraps: 23 -> mod 20 = 3
		{-12, 8}, // negative wrap
	}
	for _, c := range cases {
		if got := reflect(c.x, 0, 10); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("reflect(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestScriptedPathInterpolation(t *testing.T) {
	s := NewScriptedPath(
		[]float64{0, 10, 20},
		[]geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 50}},
	)
	if s.Position(-5) != (geom.Point{X: 0, Y: 0}) {
		t.Fatal("before start not clamped")
	}
	if got := s.Position(5); got != (geom.Point{X: 50, Y: 0}) {
		t.Fatalf("Position(5) = %v", got)
	}
	if got := s.Position(15); got != (geom.Point{X: 100, Y: 25}) {
		t.Fatalf("Position(15) = %v", got)
	}
	if got := s.Position(99); got != (geom.Point{X: 100, Y: 50}) {
		t.Fatalf("after end not clamped: %v", got)
	}
}

func TestScriptedPathVelocity(t *testing.T) {
	s := NewScriptedPath(
		[]float64{0, 10, 20},
		[]geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100, Y: 50}},
	)
	if got := s.Velocity(5); got != (geom.Vector{DX: 10}) {
		t.Fatalf("Velocity(5) = %v", got)
	}
	if got := s.Velocity(15); got != (geom.Vector{DY: 5}) {
		t.Fatalf("Velocity(15) = %v", got)
	}
	if got := s.Velocity(10); got != (geom.Vector{DY: 5}) {
		t.Fatalf("Velocity at knot = %v, want upcoming segment", got)
	}
	if s.Velocity(25) != (geom.Vector{}) || s.Velocity(-1) != (geom.Vector{}) {
		t.Fatal("velocity outside the script not zero")
	}
}

func TestScriptedPathNextTurn(t *testing.T) {
	s := NewScriptedPath([]float64{0, 10, 20}, []geom.Point{{}, {X: 1}, {X: 2}})
	if s.NextTurn(5) != 10 || s.NextTurn(10) != 20 {
		t.Fatal("NextTurn wrong")
	}
	if !math.IsInf(s.NextTurn(25), 1) {
		t.Fatal("NextTurn after end not +Inf")
	}
}

func TestScriptedPathCellChangeIntegration(t *testing.T) {
	// The generic bisection solver must work on scripted paths.
	p := testPartition()
	s := NewScriptedPath(
		[]float64{0, 10},
		[]geom.Point{{X: 150, Y: 150}, {X: 350, Y: 150}},
	)
	tc := NextCellChange(s, 0, p, 100)
	// Crosses x=200 at t=2.5.
	if math.Abs(tc-2.5) > 0.01 {
		t.Fatalf("NextCellChange = %v, want ≈2.5", tc)
	}
}

func TestScriptedPathValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":          func() { NewScriptedPath(nil, nil) },
		"length":         func() { NewScriptedPath([]float64{0}, []geom.Point{{}, {}}) },
		"non-increasing": func() { NewScriptedPath([]float64{0, 0}, []geom.Point{{}, {}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
