package mobility

import "ecgrid/internal/geom"

// Manhattan is the city-grid (street-constrained) mobility model used in
// urban MANET studies: hosts move only along the lines of a square
// street lattice of the given block size, choosing at every intersection
// whether to continue straight, turn left, or turn right, with an
// optional fixed pause (a traffic light) at each intersection. Speeds
// are redrawn per street segment, uniform in (0, maxSpeed], exactly as
// random waypoint draws its leg speeds.
//
// Like the other stochastic models it is deterministic given its random
// source, and it reuses the waypoint leg machinery: movement is a lazily
// generated, contiguous sequence of constant-velocity legs, so the model
// is TurnAware and the NextRectExit oracle walks it analytically.
type Manhattan struct {
	origin geom.Point // lattice origin (area minimum)
	block  float64
	nx, ny int // intersection lattice is (nx+1) x (ny+1) points

	maxSpeed float64
	pause    float64
	rng      randSource

	legs []leg
	cur  int // index of the last leg returned by legAt (memo)

	// Generator state: the intersection and heading after the last
	// generated leg. Headings are lattice steps in {-1, 0, 1}².
	ix, iy     int
	dirX, dirY int
}

// NewManhattan creates a street-mobility process over the given area
// with the given block size. The start position snaps to the nearest
// lattice intersection (streets are where hosts live; free-space starts
// are an artifact of the placement draw). It panics on non-positive
// block size or speed, or a block larger than the area — configuration
// bugs a generator spec validation should have caught.
func NewManhattan(area geom.Rect, start geom.Point, blockM, maxSpeed, pause float64, rng randSource) *Manhattan {
	if blockM <= 0 || maxSpeed <= 0 || pause < 0 {
		panic("mobility: invalid manhattan parameters")
	}
	nx := int(area.Width() / blockM)
	ny := int(area.Height() / blockM)
	if nx < 1 && ny < 1 {
		panic("mobility: manhattan block larger than the area")
	}
	m := &Manhattan{
		origin:   area.Min,
		block:    blockM,
		nx:       nx,
		ny:       ny,
		maxSpeed: maxSpeed,
		pause:    pause,
		rng:      rng,
	}
	m.ix = clampIdx(int((start.X-area.Min.X)/blockM+0.5), nx)
	m.iy = clampIdx(int((start.Y-area.Min.Y)/blockM+0.5), ny)
	m.legs = append(m.legs, m.nextLeg(0))
	return m
}

func clampIdx(i, max int) int {
	if i < 0 {
		return 0
	}
	if i > max {
		return max
	}
	return i
}

func (m *Manhattan) point(ix, iy int) geom.Point {
	return geom.Point{
		X: m.origin.X + float64(ix)*m.block,
		Y: m.origin.Y + float64(iy)*m.block,
	}
}

// nextLeg advances the generator by one street segment: pick a heading
// at the current intersection, draw a speed, and travel to the adjacent
// intersection, then pause. Heading weights follow the classic
// Manhattan model — straight 0.5, left 0.25, right 0.25 — renormalized
// over the directions the lattice border leaves open; reversing is a
// last resort (dead ends only, which a 1-D lattice produces).
func (m *Manhattan) nextLeg(start float64) leg {
	type option struct {
		dx, dy int
		w      float64
	}
	options := make([]option, 0, 4)
	add := func(dx, dy int, w float64) {
		jx, jy := m.ix+dx, m.iy+dy
		if jx < 0 || jx > m.nx || jy < 0 || jy > m.ny {
			return
		}
		options = append(options, option{dx, dy, w})
	}
	if m.dirX == 0 && m.dirY == 0 {
		// First leg: no heading yet, all open directions equal.
		add(1, 0, 1)
		add(-1, 0, 1)
		add(0, 1, 1)
		add(0, -1, 1)
	} else {
		add(m.dirX, m.dirY, 0.5)   // straight
		add(-m.dirY, m.dirX, 0.25) // left
		add(m.dirY, -m.dirX, 0.25) // right
		if len(options) == 0 {
			add(-m.dirX, -m.dirY, 1) // dead end: turn back
		}
	}
	from := m.point(m.ix, m.iy)
	if len(options) == 0 {
		// Degenerate 1x1 lattice: nowhere to go. Idle in place; the
		// positive dwell keeps legAt's generation loop advancing.
		dwell := m.pause
		if dwell <= 0 {
			dwell = 1
		}
		return leg{start: start, from: from, to: from, speed: 0, arrive: start, pauseEnd: start + dwell}
	}
	total := 0.0
	for _, o := range options {
		total += o.w
	}
	r := m.rng.Float64() * total
	choice := options[len(options)-1]
	for _, o := range options {
		if r < o.w {
			choice = o
			break
		}
		r -= o.w
	}
	m.dirX, m.dirY = choice.dx, choice.dy
	m.ix += choice.dx
	m.iy += choice.dy
	to := m.point(m.ix, m.iy)
	// Uniform in (0, maxSpeed]: 1-Float64() is in (0, 1].
	speed := (1 - m.rng.Float64()) * m.maxSpeed
	arrive := start + from.Dist(to)/speed
	return leg{start: start, from: from, to: to, speed: speed, arrive: arrive, pauseEnd: arrive + m.pause}
}

// legAt returns the leg containing time t, generating legs as needed.
// Same memo-then-search scheme as RandomWaypoint.legAt: legs tile time
// contiguously as [start, pauseEnd).
func (m *Manhattan) legAt(t float64) *leg {
	if t < 0 {
		panic("mobility: negative time")
	}
	if l := &m.legs[m.cur]; l.start <= t && t < l.pauseEnd {
		return l
	}
	for m.legs[len(m.legs)-1].pauseEnd <= t {
		m.legs = append(m.legs, m.nextLeg(m.legs[len(m.legs)-1].pauseEnd))
	}
	lo, hi := 0, len(m.legs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if m.legs[mid].pauseEnd > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	m.cur = lo
	return &m.legs[lo]
}

// Position implements Model.
func (m *Manhattan) Position(t float64) geom.Point {
	return m.legAt(t).positionAt(t)
}

// Velocity implements Model (zero while paused at an intersection).
func (m *Manhattan) Velocity(t float64) geom.Vector {
	return m.legAt(t).velocityAt(t)
}

// NextTurn implements TurnAware: the arrival at the next intersection
// while moving, the end of the pause while stopped.
func (m *Manhattan) NextTurn(t float64) float64 {
	l := m.legAt(t)
	if t < l.arrive {
		return l.arrive
	}
	return l.pauseEnd
}
