package ras

import (
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

type fakeSwitch struct {
	pos    geom.Point
	asleep bool
	wakes  []WakeReason
}

func (f *fakeSwitch) register(b *Bus, id hostid.ID) {
	b.Attach(id, &Switch{
		Position: func() geom.Point { return f.pos },
		Asleep:   func() bool { return f.asleep },
		Wake: func(r WakeReason) {
			f.asleep = false
			f.wakes = append(f.wakes, r)
		},
	})
}

func newBus(e *sim.Engine) *Bus {
	p := grid.NewPartition(geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000}), 100)
	return NewBus(e, p, 250, DefaultLatency)
}

func TestPageWakesSleepingHost(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: true}
	f.register(b, 1)
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Run(1)
	if len(f.wakes) != 1 || f.wakes[0] != PagedDirectly {
		t.Fatalf("wakes = %v, want [paged-directly]", f.wakes)
	}
	if f.asleep {
		t.Fatal("host still asleep after page")
	}
	if b.PagesSent != 1 {
		t.Fatalf("PagesSent = %d", b.PagesSent)
	}
}

func TestPageHasLatency(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: true}
	f.register(b, 1)
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Run(DefaultLatency / 2)
	if len(f.wakes) != 0 {
		t.Fatal("wake delivered before paging latency elapsed")
	}
	e.Run(1)
	if len(f.wakes) != 1 {
		t.Fatal("wake not delivered after latency")
	}
}

func TestPageOutOfRangeIgnored(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 900, Y: 900}, asleep: true}
	f.register(b, 1)
	b.Page(geom.Point{X: 0, Y: 0}, 1)
	e.Run(1)
	if len(f.wakes) != 0 {
		t.Fatal("out-of-range page delivered")
	}
}

func TestPageAwakeHostNoOp(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: false}
	f.register(b, 1)
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Run(1)
	if len(f.wakes) != 0 {
		t.Fatal("awake host was woken")
	}
}

func TestPageUnknownHostNoOp(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	b.Page(geom.Point{}, 42)
	e.Run(1) // must not panic
}

func TestPageGridWakesOnlyHostsInCell(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	inCell := &fakeSwitch{pos: geom.Point{X: 150, Y: 150}, asleep: true}  // cell (1,1)
	alsoIn := &fakeSwitch{pos: geom.Point{X: 199, Y: 101}, asleep: true}  // cell (1,1)
	outside := &fakeSwitch{pos: geom.Point{X: 250, Y: 150}, asleep: true} // cell (2,1)
	awake := &fakeSwitch{pos: geom.Point{X: 120, Y: 120}, asleep: false}  // cell (1,1), awake
	inCell.register(b, 1)
	alsoIn.register(b, 2)
	outside.register(b, 3)
	awake.register(b, 4)
	b.PageGrid(geom.Point{X: 150, Y: 150}, grid.Coord{X: 1, Y: 1})
	e.Run(1)
	if len(inCell.wakes) != 1 || inCell.wakes[0] != PagedGrid {
		t.Fatalf("in-cell host wakes = %v", inCell.wakes)
	}
	if len(alsoIn.wakes) != 1 {
		t.Fatal("second in-cell host not woken")
	}
	if len(outside.wakes) != 0 {
		t.Fatal("host outside cell was woken")
	}
	if len(awake.wakes) != 0 {
		t.Fatal("awake host was woken")
	}
	if b.GridPagesSent != 1 {
		t.Fatalf("GridPagesSent = %d", b.GridPagesSent)
	}
}

func TestPageGridRespectsRange(t *testing.T) {
	e := sim.NewEngine()
	// Tiny range: the in-cell host is too far from the pager.
	p := grid.NewPartition(geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000}), 100)
	b := NewBus(e, p, 10, DefaultLatency)
	f := &fakeSwitch{pos: geom.Point{X: 199, Y: 199}, asleep: true}
	f.register(b, 1)
	b.PageGrid(geom.Point{X: 101, Y: 101}, grid.Coord{X: 1, Y: 1})
	e.Run(1)
	if len(f.wakes) != 0 {
		t.Fatal("page delivered beyond paging range")
	}
}

func TestDetachStopsPaging(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: true}
	f.register(b, 1)
	b.Detach(1)
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Run(1)
	if len(f.wakes) != 0 {
		t.Fatal("detached host was paged")
	}
}

func TestMovedHostPagedAtCurrentPosition(t *testing.T) {
	// Position is evaluated at delivery time: a host that moved out of
	// range between page and delivery is missed.
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: true}
	f.register(b, 1)
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Schedule(DefaultLatency/2, func() { f.pos = geom.Point{X: 900, Y: 900} })
	e.Run(1)
	if len(f.wakes) != 0 {
		t.Fatal("host paged at stale position")
	}
}

func TestAttachValidation(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete switch registration did not panic")
		}
	}()
	b.Attach(1, &Switch{})
}

func TestNewBusValidation(t *testing.T) {
	e := sim.NewEngine()
	p := grid.NewPartition(geom.NewRect(geom.Point{}, geom.Point{X: 100, Y: 100}), 10)
	defer func() {
		if recover() == nil {
			t.Fatal("NewBus with zero range did not panic")
		}
	}()
	NewBus(e, p, 0, 0.001)
}

func TestWakeReasonString(t *testing.T) {
	if PagedDirectly.String() != "paged-directly" || PagedGrid.String() != "paged-grid" {
		t.Error("wake reason names wrong")
	}
	if WakeReason(7).String() != "WakeReason(7)" {
		t.Error("unknown wake reason string wrong")
	}
}
