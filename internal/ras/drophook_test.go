package ras

import (
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

func TestDropHookSuppressesPage(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: true}
	f.register(b, 1)
	consulted := 0
	b.DropHook = func(target hostid.ID) bool {
		consulted++
		if target != 1 {
			t.Errorf("hook target = %v, want 1", target)
		}
		return true
	}
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Run(1)
	if len(f.wakes) != 0 {
		t.Fatal("dropped page still woke the host")
	}
	if consulted != 1 {
		t.Fatalf("hook consulted %d times, want 1", consulted)
	}
	if b.PagesDropped != 1 {
		t.Fatalf("PagesDropped = %d, want 1", b.PagesDropped)
	}
}

func TestDropHookFalseStillWakes(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	f := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: true}
	f.register(b, 1)
	b.DropHook = func(hostid.ID) bool { return false }
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	e.Run(1)
	if len(f.wakes) != 1 {
		t.Fatal("non-dropping hook suppressed the wake")
	}
	if b.PagesDropped != 0 {
		t.Fatalf("PagesDropped = %d, want 0", b.PagesDropped)
	}
}

func TestDropHookNotConsultedForAwakeOrOutOfRange(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	awake := &fakeSwitch{pos: geom.Point{X: 100, Y: 100}, asleep: false}
	awake.register(b, 1)
	farAway := &fakeSwitch{pos: geom.Point{X: 900, Y: 900}, asleep: true}
	farAway.register(b, 2)
	b.DropHook = func(hostid.ID) bool {
		t.Error("hook consulted for a wakeup that would not be delivered")
		return true
	}
	b.Page(geom.Point{X: 50, Y: 50}, 1)
	b.Page(geom.Point{X: 50, Y: 50}, 2)
	e.Run(1)
}

func TestDropHookOnGridPageIsPerHost(t *testing.T) {
	e := sim.NewEngine()
	b := newBus(e)
	lost := &fakeSwitch{pos: geom.Point{X: 150, Y: 150}, asleep: true}
	woken := &fakeSwitch{pos: geom.Point{X: 180, Y: 180}, asleep: true}
	lost.register(b, 1)
	woken.register(b, 2)
	b.DropHook = func(target hostid.ID) bool { return target == 1 }
	b.PageGrid(geom.Point{X: 150, Y: 150}, grid.Coord{X: 1, Y: 1})
	e.Run(1)
	if len(lost.wakes) != 0 {
		t.Fatal("dropped grid page still woke host 1")
	}
	if len(woken.wakes) != 1 {
		t.Fatal("host 2's grid page was also dropped")
	}
	if b.PagesDropped != 1 {
		t.Fatalf("PagesDropped = %d, want 1", b.PagesDropped)
	}
}
