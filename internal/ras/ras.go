// Package ras models the Remotely Activated Switch of the paper's §2
// (Chiasserini & Rao's RF-tag paging hardware): a tiny always-on receiver
// that can switch a sleeping host's transceiver back on when it hears the
// host's paging sequence.
//
// Two kinds of paging signals exist:
//
//   - a per-host paging sequence, equal to the host's unique ID, which
//     wakes exactly that host ("the gateway will actively wake the host
//     up" before forwarding buffered packets), and
//   - a per-grid broadcast sequence, equal to the grid coordinate, which
//     wakes every sleeping host currently inside that grid (used before
//     gateway handover so all hosts can run the election).
//
// Following the paper, the RAS consumes no accountable energy ("the power
// consumption of RAS is much lower than the transmitting/receiving power
// consumption, and can thus be ignored") and paging delivery takes a
// small fixed latency. Paging signals still respect radio range: a pager
// can only reach switches within its transmission distance.
package ras

import (
	"fmt"
	"math"
	"slices"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// Switch is the per-host RAS module: the node layer registers one per
// host. Position is queried at delivery time (hosts move); Wake is
// invoked when a matching paging signal arrives and the host is asleep.
type Switch struct {
	// Position returns the host's current location.
	Position func() geom.Point
	// Asleep reports whether the host is currently in sleep mode. Wake
	// is only delivered to sleeping hosts; paging an active host is a
	// no-op (it is already listening).
	Asleep func() bool
	// Wake brings the host back to active mode. The reason tells the
	// protocol whether it was paged individually or as part of a grid
	// broadcast.
	Wake func(reason WakeReason)
}

// WakeReason says why a sleeping host was woken.
type WakeReason int

const (
	// PagedDirectly means the host's own paging sequence was received
	// (the gateway has traffic for it).
	PagedDirectly WakeReason = iota
	// PagedGrid means the grid's broadcast sequence was received (a
	// gateway election is starting).
	PagedGrid
)

// String names the wake reason.
func (r WakeReason) String() string {
	switch r {
	case PagedDirectly:
		return "paged-directly"
	case PagedGrid:
		return "paged-grid"
	default:
		return fmt.Sprintf("WakeReason(%d)", int(r))
	}
}

// Bus is the out-of-band paging medium shared by all hosts.
type Bus struct {
	engine    *sim.Engine
	partition *grid.Partition
	rangeM    float64 // paging reach in meters
	latency   float64 // seconds from page to wake
	switches  map[hostid.ID]*Switch

	// ids caches the attached IDs in ascending order for PageGrid's
	// reference sweep; rebuilt lazily after a membership change.
	// Iterating and sorting the whole map per page event is O(N log N)
	// per page, which dominates dense scenarios.
	ids      []hostid.ID
	idsDirty bool

	// PagesSent counts individual paging transmissions, for overhead
	// reporting.
	PagesSent uint64
	// GridPagesSent counts broadcast-sequence transmissions.
	GridPagesSent uint64
	// PagesDropped counts wakeups suppressed by DropHook.
	PagesDropped uint64

	// DropHook, when non-nil, is consulted once for each wakeup the bus
	// would otherwise deliver (the target is in range and asleep);
	// returning true suppresses that wakeup (fault injection: paging
	// loss). Dropped wakeups are counted in PagesDropped.
	DropHook func(target hostid.ID) bool

	// Scan, when non-nil, replaces PageGrid's allocate-sort-sweep over
	// every attached switch with a caller-supplied scanner (the sharded
	// engine's worker pool): Scan must call probe for each candidate
	// host — in any order, concurrently if it likes, since the probe is
	// a pure read of position, cell and range — and return the IDs that
	// passed, in ascending order. [xlo, xhi] bounds the x-coordinates a
	// passing host can have: the probe provably rejects any host whose
	// position x lies outside it, so the scanner may skip hosts it can
	// prove are elsewhere. The
	// stateful tail (sleep check, drop draw, wake) stays here, serial
	// and in ID order, so the hosts woken and the randomness consumed
	// are byte-identical to the reference sweep.
	Scan func(probe func(target hostid.ID) bool, xlo, xhi float64) []hostid.ID
}

// DefaultLatency is the paging delay: the time for the RAS to receive a
// paging sequence and power the transceiver up. A couple of milliseconds
// is generous for RF-tag hardware and small against packet timescales.
const DefaultLatency = 2e-3

// NewBus creates a paging bus over the given grid partition. rangeM
// bounds paging reach (use the radio range) and latency is the
// page-to-wake delay.
func NewBus(engine *sim.Engine, partition *grid.Partition, rangeM, latency float64) *Bus {
	if rangeM <= 0 || latency < 0 {
		panic("ras: invalid range or latency")
	}
	return &Bus{
		engine:    engine,
		partition: partition,
		rangeM:    rangeM,
		latency:   latency,
		switches:  make(map[hostid.ID]*Switch),
	}
}

// Attach registers a host's switch. Re-attaching replaces the previous
// registration.
func (b *Bus) Attach(id hostid.ID, sw *Switch) {
	if sw == nil || sw.Position == nil || sw.Asleep == nil || sw.Wake == nil {
		panic("ras: incomplete switch registration")
	}
	b.switches[id] = sw
	b.idsDirty = true
}

// Detach removes a host's switch (battery death).
func (b *Bus) Detach(id hostid.ID) {
	delete(b.switches, id)
	b.idsDirty = true
}

// sortedIDs returns every attached ID in ascending order, rebuilding
// the cached slice only after Attach/Detach changed membership.
func (b *Bus) sortedIDs() []hostid.ID {
	if b.idsDirty {
		b.ids = b.ids[:0]
		for id := range b.switches { //simlint:ordered output is sorted below

			b.ids = append(b.ids, id)
		}
		slices.Sort(b.ids)
		b.idsDirty = false
	}
	return b.ids
}

// wakeAll applies the stateful tail of a grid page to the hosts a Scan
// admitted: sleep check, paging-loss draw, wakeup — serial, in the
// given (ascending) order, matching the reference sweep draw for draw.
func (b *Bus) wakeAll(ids []hostid.ID) {
	for _, id := range ids {
		sw := b.switches[id]
		if sw.Asleep() {
			if b.DropHook != nil && b.DropHook(id) {
				b.PagesDropped++
				continue
			}
			sw.Wake(PagedGrid)
		}
	}
}

// Page transmits the paging sequence of the target host from the given
// location. If the target is within paging range and asleep when the
// signal arrives, it wakes with reason PagedDirectly.
func (b *Bus) Page(from geom.Point, target hostid.ID) {
	b.PagesSent++
	b.engine.Schedule(b.latency, func() {
		sw, ok := b.switches[target]
		if !ok {
			return
		}
		if from.Dist(sw.Position()) > b.rangeM {
			return
		}
		if sw.Asleep() {
			if b.DropHook != nil && b.DropHook(target) {
				b.PagesDropped++
				return
			}
			sw.Wake(PagedDirectly)
		}
	})
}

// PageGrid transmits the broadcast sequence of cell c from the given
// location: every sleeping host currently inside c and within paging
// range wakes with reason PagedGrid.
func (b *Bus) PageGrid(from geom.Point, c grid.Coord) {
	b.GridPagesSent++
	b.engine.Schedule(b.latency, func() {
		if b.Scan != nil {
			// Probe/apply split: the probe is a pure function of the
			// delivery instant (position, cell membership, range), so the
			// scanner may evaluate it in parallel — and, given the paged
			// cell's x-span, skip hosts provably outside it; the stateful
			// apply below runs serial in ascending ID order, which is
			// exactly the order the reference sweep visits, wakes, and
			// draws in.
			// The admissible x-span is the paged cell's bounds — except
			// that CellOf clamps out-of-area positions into the edge
			// cells, so the outermost columns admit any overhang on
			// their open side.
			span := b.partition.Bounds(c)
			xlo, xhi := span.Min.X, span.Max.X
			if c.X == 0 {
				xlo = math.Inf(-1)
			}
			if c.X == b.partition.Cols()-1 {
				xhi = math.Inf(1)
			}
			ids := b.Scan(func(id hostid.ID) bool {
				sw, ok := b.switches[id]
				if !ok {
					return false
				}
				pos := sw.Position()
				return b.partition.CellOf(pos) == c && from.Dist(pos) <= b.rangeM
			}, xlo, xhi)
			b.wakeAll(ids)
			return
		}
		// Wake in ID order so runs are reproducible.
		for _, id := range b.sortedIDs() {
			sw := b.switches[id]
			pos := sw.Position()
			if b.partition.CellOf(pos) != c {
				continue
			}
			if from.Dist(pos) > b.rangeM {
				continue
			}
			if sw.Asleep() {
				if b.DropHook != nil && b.DropHook(id) {
					b.PagesDropped++
					continue
				}
				sw.Wake(PagedGrid)
			}
		}
	})
}
