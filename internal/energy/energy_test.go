package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPaperModelConstants(t *testing.T) {
	m := PaperModel()
	// The figures of the paper's §4, in watts.
	if m.TransmitW != 1.4 || m.ReceiveW != 1.0 || m.IdleW != 0.83 || m.SleepW != 0.13 || m.GPSW != 0.033 {
		t.Fatalf("PaperModel = %+v", m)
	}
}

func TestPowerIncludesGPS(t *testing.T) {
	m := PaperModel()
	if !almost(m.Power(Transmit), 1.433) {
		t.Errorf("Power(Transmit) = %v", m.Power(Transmit))
	}
	if !almost(m.Power(Sleep), 0.163) {
		t.Errorf("Power(Sleep) = %v", m.Power(Sleep))
	}
	if !almost(m.Power(Idle), 0.863) {
		t.Errorf("Power(Idle) = %v", m.Power(Idle))
	}
	if !almost(m.Power(Receive), 1.033) {
		t.Errorf("Power(Receive) = %v", m.Power(Receive))
	}
}

func TestPowerUnknownModePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Power(99) did not panic")
		}
	}()
	PaperModel().Power(Mode(99))
}

func TestClassifyRbrc(t *testing.T) {
	cases := []struct {
		r    float64
		want Level
	}{
		{1.0, Upper},
		{0.61, Upper},
		{0.6, Boundary}, // paper: boundary if 0.2 < R ≤ 0.6
		{0.3, Boundary},
		{0.21, Boundary},
		{0.2, Lower},
		{0.05, Lower},
		{0, Lower},
	}
	for _, c := range cases {
		if got := ClassifyRbrc(c.r); got != c.want {
			t.Errorf("ClassifyRbrc(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestLevelBandsPartitionUnitIntervalProperty(t *testing.T) {
	f := func(v uint16) bool {
		r := float64(v) / 65535
		l := ClassifyRbrc(r)
		return l == Lower || l == Boundary || l == Upper
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryIdleDrain(t *testing.T) {
	b := NewBattery(PaperModel(), 500)
	// One hour idle: 0.863 W × 3600 s = 3106.8 J > 500 J, so check a
	// shorter interval: 100 s idle = 86.3 J.
	if got := b.Remaining(100); !almost(got, 500-86.3) {
		t.Fatalf("Remaining(100) = %v, want %v", got, 500-86.3)
	}
}

func TestBatteryModeSwitchAccrual(t *testing.T) {
	b := NewBattery(PaperModel(), 500)
	b.SetMode(10, Transmit) // 10 s idle
	b.SetMode(12, Sleep)    // 2 s transmit
	got := b.Remaining(112) // 100 s sleep
	want := 500 - 10*0.863 - 2*1.433 - 100*0.163
	if !almost(got, want) {
		t.Fatalf("Remaining = %v, want %v", got, want)
	}
	if !almost(b.ConsumedIn(112, Idle), 8.63) {
		t.Errorf("ConsumedIn(Idle) = %v", b.ConsumedIn(112, Idle))
	}
	if !almost(b.ConsumedIn(112, Transmit), 2.866) {
		t.Errorf("ConsumedIn(Transmit) = %v", b.ConsumedIn(112, Transmit))
	}
	if !almost(b.Consumed(112), 500-got) {
		t.Errorf("Consumed = %v, want %v", b.Consumed(112), 500-got)
	}
}

func TestBatteryMonotoneNonIncreasingProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		b := NewBattery(PaperModel(), 500)
		now := 0.0
		prev := 500.0
		for i, s := range steps {
			now += float64(s%50) / 10
			b.SetMode(now, Mode(i%4))
			r := b.Remaining(now)
			if r > prev+1e-9 || r < 0 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryConservationProperty(t *testing.T) {
	// consumed + remaining == full, exactly, while alive.
	f := func(steps []uint8) bool {
		b := NewBattery(PaperModel(), 1e6) // large enough to stay alive
		now := 0.0
		for i, s := range steps {
			now += float64(s) / 10
			b.SetMode(now, Mode(i%4))
		}
		return math.Abs(b.Consumed(now)+b.Remaining(now)-1e6) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryDies(t *testing.T) {
	b := NewBattery(PaperModel(), 500)
	// 500 J at idle draw 0.863 W → dead after ≈579.4 s.
	tte := b.TimeToEmpty(0, Idle)
	if !almost(tte, 500/0.863) {
		t.Fatalf("TimeToEmpty = %v, want %v", tte, 500/0.863)
	}
	if b.Dead(tte - 1) {
		t.Fatal("dead before exhaustion")
	}
	if !b.Dead(tte + 1) {
		t.Fatal("alive after exhaustion")
	}
	if b.Remaining(tte+100) != 0 {
		t.Fatalf("Remaining after death = %v, want 0", b.Remaining(tte+100))
	}
	// Consumption stops at death: total equals capacity.
	if !almost(b.Consumed(tte+1000), 500) {
		t.Fatalf("Consumed after death = %v, want 500", b.Consumed(tte+1000))
	}
}

func TestBatteryRbrcAndLevel(t *testing.T) {
	b := NewBattery(PaperModel(), 500)
	if b.Rbrc(0) != 1.0 || b.Level(0) != Upper {
		t.Fatal("fresh battery not at upper level")
	}
	// Drain idle to just under 60%: need to consume >200 J → >231.7 s.
	if lvl := b.Level(240); lvl != Boundary {
		t.Fatalf("Level after 240 s idle = %v (Rbrc=%v), want boundary", lvl, b.Rbrc(240))
	}
	// Below 20%: consume >400 J → >463.5 s.
	if lvl := b.Level(470); lvl != Lower {
		t.Fatalf("Level after 470 s idle = %v (Rbrc=%v), want lower", lvl, b.Rbrc(470))
	}
}

func TestInfiniteBattery(t *testing.T) {
	b := NewInfiniteBattery(PaperModel())
	if !b.IsInfinite() {
		t.Fatal("IsInfinite = false")
	}
	b.SetMode(0, Transmit)
	if b.Dead(1e9) {
		t.Fatal("infinite battery died")
	}
	if b.Rbrc(1e9) != 1.0 {
		t.Fatalf("Rbrc = %v, want 1", b.Rbrc(1e9))
	}
	if b.Level(1e9) != Upper {
		t.Fatal("infinite battery not at upper level")
	}
	if !math.IsInf(b.TimeToEmpty(1e9, Transmit), 1) {
		t.Fatal("TimeToEmpty not infinite")
	}
	// Consumption is still tracked (needed for aen under GAF Model 1).
	if got := b.ConsumedIn(1e9, Transmit); got <= 0 {
		t.Fatalf("ConsumedIn(Transmit) = %v, want > 0", got)
	}
}

func TestBatteryTimeBackwardsPanics(t *testing.T) {
	b := NewBattery(PaperModel(), 500)
	b.SetMode(10, Idle)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	b.Remaining(5)
}

func TestNewBatteryInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBattery(0) did not panic")
		}
	}()
	NewBattery(PaperModel(), 0)
}

func TestModeAndLevelStrings(t *testing.T) {
	if Idle.String() != "idle" || Transmit.String() != "transmit" ||
		Receive.String() != "receive" || Sleep.String() != "sleep" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode string wrong")
	}
	if Lower.String() != "lower" || Boundary.String() != "boundary" || Upper.String() != "upper" {
		t.Error("level names wrong")
	}
	if Level(9).String() != "Level(9)" {
		t.Error("unknown level string wrong")
	}
}

func TestBatteryModeGetterAndFull(t *testing.T) {
	b := NewBattery(PaperModel(), 500)
	if b.Mode() != Idle {
		t.Fatalf("initial Mode = %v", b.Mode())
	}
	b.SetMode(1, Sleep)
	if b.Mode() != Sleep {
		t.Fatalf("Mode after SetMode = %v", b.Mode())
	}
	if b.Full() != 500 {
		t.Fatalf("Full = %v", b.Full())
	}
}
