// Package energy models the battery of a mobile host.
//
// It implements the linear, state-based consumption model the paper takes
// from Feeney's measurements of the Cabletron Roamabout 802.11 DS card
// (via the Span paper): a host draws constant power determined by its
// radio mode, plus a constant GPS draw while awake. The remaining charge
// is the time integral of that power.
//
// The paper classifies remaining capacity R_brc = remaining/full into
// three bands used by the gateway election rules: upper (R_brc > 0.6),
// boundary (0.2 < R_brc ≤ 0.6) and lower (R_brc ≤ 0.2).
package energy

import (
	"fmt"
	"math"
)

// Mode is the radio state a host is in. Each mode has a constant power
// draw.
type Mode int

const (
	// Idle: transceiver on, neither transmitting nor receiving.
	Idle Mode = iota
	// Transmit: actively sending a frame.
	Transmit
	// Receive: actively receiving a frame.
	Receive
	// Sleep: transceiver off. Only the RAS (free) can wake the host.
	Sleep
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Idle:
		return "idle"
	case Transmit:
		return "transmit"
	case Receive:
		return "receive"
	case Sleep:
		return "sleep"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Level is the paper's three-band classification of remaining capacity.
type Level int

const (
	// Lower: R_brc ≤ 0.2.
	Lower Level = iota
	// Boundary: 0.2 < R_brc ≤ 0.6.
	Boundary
	// Upper: R_brc > 0.6.
	Upper
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case Lower:
		return "lower"
	case Boundary:
		return "boundary"
	case Upper:
		return "upper"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ClassifyRbrc maps a remaining-capacity ratio to its level band.
func ClassifyRbrc(rbrc float64) Level {
	switch {
	case rbrc > 0.6:
		return Upper
	case rbrc > 0.2:
		return Boundary
	default:
		return Lower
	}
}

// Model holds the power draw of each mode in watts, plus the GPS draw
// charged whenever the host is not asleep.
type Model struct {
	TransmitW float64 // power while transmitting
	ReceiveW  float64 // power while receiving
	IdleW     float64 // power while idle (transceiver on)
	SleepW    float64 // power while asleep (transceiver off)
	GPSW      float64 // additional draw of the positioning device
}

// PaperModel returns the exact constants of the paper's §4: 1400/1000/830/
// 130 mW for transmit/receive/idle/sleep and 33 mW for GPS.
func PaperModel() Model {
	return Model{
		TransmitW: 1.400,
		ReceiveW:  1.000,
		IdleW:     0.830,
		SleepW:    0.130,
		GPSW:      0.033,
	}
}

// Power returns the total draw in mode m, including the GPS device. The
// paper charges GPS to every protocol (GRID, ECGRID, GAF alike); we charge
// it in every mode including sleep, which matches charging it uniformly
// across protocols and cancels out in comparisons.
func (m Model) Power(mode Mode) float64 {
	base := 0.0
	switch mode {
	case Transmit:
		base = m.TransmitW
	case Receive:
		base = m.ReceiveW
	case Idle:
		base = m.IdleW
	case Sleep:
		base = m.SleepW
	default:
		panic(fmt.Sprintf("energy: unknown mode %d", int(mode)))
	}
	return base + m.GPSW
}

// Battery tracks a host's remaining charge. The host (or its protocol)
// reports mode changes with SetMode; the battery accrues consumption
// lazily, integrating power over the time spent in each mode.
//
// A Battery with infinite capacity (IsInfinite) never depletes; GAF's
// Model 1 uses these for its always-on endpoint hosts.
type Battery struct {
	model     Model
	full      float64 // initial charge in joules; +Inf for infinite hosts
	remaining float64
	mode      Mode
	lastT     float64 // sim time of the last accrual
	dead      bool

	// consumedByMode records joules spent per mode, for diagnostics and
	// the energy-breakdown metrics.
	consumedByMode [4]float64
}

// NewBattery returns a battery with the given initial charge in joules,
// starting in Idle mode at time zero.
func NewBattery(model Model, fullJoules float64) *Battery {
	if fullJoules <= 0 {
		panic("energy: non-positive capacity")
	}
	return &Battery{model: model, full: fullJoules, remaining: fullJoules, mode: Idle}
}

// NewInfiniteBattery returns a battery that never depletes, used for GAF
// Model 1 endpoint hosts. Its R_brc stays 1.0 forever.
func NewInfiniteBattery(model Model) *Battery {
	return &Battery{model: model, full: math.Inf(1), remaining: math.Inf(1), mode: Idle}
}

// IsInfinite reports whether the battery never depletes.
func (b *Battery) IsInfinite() bool { return math.IsInf(b.full, 1) }

// Mode returns the current mode.
func (b *Battery) Mode() Mode { return b.mode }

// accrue charges consumption for the interval [lastT, now].
func (b *Battery) accrue(now float64) {
	dt := now - b.lastT
	if dt < 0 {
		panic(fmt.Sprintf("energy: time moved backwards: %v -> %v", b.lastT, now))
	}
	b.lastT = now
	if b.dead || dt <= 0 {
		return
	}
	spent := b.model.Power(b.mode) * dt
	if !b.IsInfinite() {
		if spent >= b.remaining {
			spent = b.remaining
		}
		b.remaining -= spent
		if b.remaining <= 0 {
			b.remaining = 0
			b.dead = true
		}
	}
	b.consumedByMode[b.mode] += spent
}

// SetMode switches the battery to the given mode at simulation time now,
// charging the time spent in the previous mode first.
func (b *Battery) SetMode(now float64, mode Mode) {
	b.accrue(now)
	b.mode = mode
}

// Drain removes joules from the remaining charge at time now, on top of
// the modal consumption (fault injection: battery shock). The drained
// energy is accounted to the current mode; draining to zero kills the
// battery like any other exhaustion. Infinite batteries ignore it.
func (b *Battery) Drain(now, joules float64) {
	b.accrue(now)
	if b.dead || b.IsInfinite() || joules <= 0 {
		return
	}
	if joules >= b.remaining {
		joules = b.remaining
	}
	b.remaining -= joules
	b.consumedByMode[b.mode] += joules
	if b.remaining <= 0 {
		b.remaining = 0
		b.dead = true
	}
}

// Remaining returns the charge left at time now, in joules.
func (b *Battery) Remaining(now float64) float64 {
	b.accrue(now)
	return b.remaining
}

// Consumed returns the total joules spent up to time now. For infinite
// batteries this is still finite and meaningful (it is what aen measures
// under GAF Model 1 for the forwarder population).
func (b *Battery) Consumed(now float64) float64 {
	b.accrue(now)
	total := 0.0
	for _, v := range b.consumedByMode {
		total += v
	}
	return total
}

// ConsumedIn returns the joules spent in a particular mode up to time now.
func (b *Battery) ConsumedIn(now float64, mode Mode) float64 {
	b.accrue(now)
	return b.consumedByMode[mode]
}

// Rbrc returns the ratio of remaining to full capacity at time now.
// Infinite batteries always report 1.0.
func (b *Battery) Rbrc(now float64) float64 {
	if b.IsInfinite() {
		return 1.0
	}
	b.accrue(now)
	return b.remaining / b.full
}

// Level returns the paper's election band for the battery at time now.
func (b *Battery) Level(now float64) Level {
	return ClassifyRbrc(b.Rbrc(now))
}

// Dead reports whether the battery is exhausted at time now. A dead host
// can no longer transmit, receive, or act as gateway.
func (b *Battery) Dead(now float64) bool {
	b.accrue(now)
	return b.dead
}

// TimeToEmpty returns how long the battery lasts from time now if it stays
// in the given mode. Infinite batteries return +Inf.
func (b *Battery) TimeToEmpty(now float64, mode Mode) float64 {
	if b.IsInfinite() {
		return math.Inf(1)
	}
	b.accrue(now)
	return b.remaining / b.model.Power(mode)
}

// Full returns the initial capacity in joules.
func (b *Battery) Full() float64 { return b.full }
