package node

import (
	"math"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/sim"
)

// recorder is a Protocol that records every callback.
type recorder struct {
	started     bool
	received    []*radio.Frame
	wakes       []WakeCause
	cellChanges []grid.Coord
	stopped     bool
}

func (r *recorder) Start()                      { r.started = true }
func (r *recorder) Receive(f *radio.Frame)      { r.received = append(r.received, f) }
func (r *recorder) Woken(c WakeCause)           { r.wakes = append(r.wakes, c) }
func (r *recorder) CellChanged(_, c grid.Coord) { r.cellChanges = append(r.cellChanges, c) }
func (r *recorder) Stopped()                    { r.stopped = true }

type world struct {
	engine    *sim.Engine
	rng       *sim.RNG
	channel   *radio.Channel
	bus       *ras.Bus
	partition *grid.Partition
}

func newWorld() *world {
	e := sim.NewEngine()
	rng := sim.NewRNG(1)
	p := grid.NewPartition(geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000}), 100)
	cfg := radio.DefaultConfig()
	return &world{
		engine:    e,
		rng:       rng,
		channel:   radio.NewChannel(e, rng, cfg),
		bus:       ras.NewBus(e, p, cfg.Range, ras.DefaultLatency),
		partition: p,
	}
}

func (w *world) host(id hostid.ID, mob mobility.Model, joules float64) (*Host, *recorder) {
	var b *energy.Battery
	if math.IsInf(joules, 1) {
		b = energy.NewInfiniteBattery(energy.PaperModel())
	} else {
		b = energy.NewBattery(energy.PaperModel(), joules)
	}
	h := New(Config{
		ID: id, Engine: w.engine, RNG: w.rng, Channel: w.channel,
		Bus: w.bus, Partition: w.partition, Mobility: mob, Battery: b,
	})
	rec := &recorder{}
	h.SetProtocol(rec)
	h.Start()
	return h, rec
}

func at(x, y float64) mobility.Model { return mobility.Stationary{At: geom.Point{X: x, Y: y}} }

func TestHostStartRunsProtocol(t *testing.T) {
	w := newWorld()
	_, rec := w.host(1, at(150, 150), 500)
	if !rec.started {
		t.Fatal("protocol not started")
	}
}

func TestHostSensors(t *testing.T) {
	w := newWorld()
	h, _ := w.host(1, at(150, 170), 500)
	if h.ID() != 1 {
		t.Fatalf("ID = %v", h.ID())
	}
	if h.Cell() != (grid.Coord{X: 1, Y: 1}) {
		t.Fatalf("Cell = %v", h.Cell())
	}
	// Cell center is (150,150); host is 20 m north of it.
	if d := h.DistToCellCenter(); math.Abs(d-20) > 1e-9 {
		t.Fatalf("DistToCellCenter = %v, want 20", d)
	}
	if h.Level() != energy.Upper {
		t.Fatalf("Level = %v", h.Level())
	}
	if h.Partition() != w.partition {
		t.Fatal("Partition accessor wrong")
	}
}

func TestHostSendReceive(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 500)
	_, recB := w.host(2, at(150, 150), 500)
	w.engine.Schedule(0.001, func() {
		a.Send(&radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	w.engine.Run(1)
	if len(recB.received) != 1 {
		t.Fatalf("receiver got %d frames, want 1", len(recB.received))
	}
}

func TestSleepStopsReceptionAndSavesEnergy(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 500)
	b, recB := w.host(2, at(150, 150), 500)
	b.Sleep()
	if !b.Asleep() {
		t.Fatal("not asleep after Sleep")
	}
	w.engine.Schedule(0.001, func() {
		a.Send(&radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	w.engine.Run(100)
	if len(recB.received) != 0 {
		t.Fatal("sleeping host received a frame")
	}
	// Sleeping battery drains at 0.163 W; an idle host would have spent
	// 0.863 W.
	consumed := b.Battery().Consumed(100)
	if consumed > 0.163*100+0.5 {
		t.Fatalf("sleeping host consumed %v J over 100 s, want ≈16.3", consumed)
	}
}

func TestWakeByTimer(t *testing.T) {
	w := newWorld()
	h, rec := w.host(1, at(100, 100), 500)
	h.Sleep()
	w.engine.Schedule(10, h.WakeByTimer)
	w.engine.Run(20)
	if h.Asleep() {
		t.Fatal("still asleep after WakeByTimer")
	}
	if len(rec.wakes) != 1 || rec.wakes[0] != WakeSelf {
		t.Fatalf("wakes = %v, want [self-timer]", rec.wakes)
	}
	if h.Sleeps != 1 || h.Wakes != 1 {
		t.Fatalf("Sleeps,Wakes = %d,%d", h.Sleeps, h.Wakes)
	}
}

func TestWakeByPage(t *testing.T) {
	w := newWorld()
	gw, _ := w.host(1, at(100, 100), 500)
	b, recB := w.host(2, at(150, 150), 500)
	b.Sleep()
	w.engine.Schedule(1, func() { gw.Page(2) })
	w.engine.Run(5)
	if b.Asleep() {
		t.Fatal("still asleep after page")
	}
	if len(recB.wakes) != 1 || recB.wakes[0] != WakePage {
		t.Fatalf("wakes = %v, want [paged]", recB.wakes)
	}
}

func TestWakeByGridPage(t *testing.T) {
	w := newWorld()
	gw, _ := w.host(1, at(120, 120), 500)
	b, recB := w.host(2, at(150, 150), 500)
	other, recOther := w.host(3, at(250, 150), 500) // different cell
	b.Sleep()
	other.Sleep()
	w.engine.Schedule(1, func() { gw.PageGrid(grid.Coord{X: 1, Y: 1}) })
	w.engine.Run(5)
	if len(recB.wakes) != 1 || recB.wakes[0] != WakeGridPage {
		t.Fatalf("in-grid wakes = %v, want [grid-paged]", recB.wakes)
	}
	if len(recOther.wakes) != 0 {
		t.Fatal("host in another grid was grid-paged")
	}
}

func TestDoubleSleepAndWakeAreIdempotent(t *testing.T) {
	w := newWorld()
	h, rec := w.host(1, at(100, 100), 500)
	h.Sleep()
	h.Sleep()
	if h.Sleeps != 1 {
		t.Fatalf("Sleeps = %d after double Sleep", h.Sleeps)
	}
	h.WakeByTimer()
	h.WakeByTimer()
	if h.Wakes != 1 || len(rec.wakes) != 1 {
		t.Fatalf("Wakes = %d, protocol wakes = %d", h.Wakes, len(rec.wakes))
	}
}

func TestHostDiesWhenBatteryEmpties(t *testing.T) {
	w := newWorld()
	var diedAt float64 = -1
	h, rec := w.host(1, at(100, 100), 10) // 10 J idle ≈ 11.6 s
	h.Died = func(id hostid.ID, atT float64) { diedAt = atT }
	w.engine.Run(60)
	if !h.Dead() {
		t.Fatal("host alive after battery exhaustion")
	}
	if !rec.stopped {
		t.Fatal("protocol not stopped on death")
	}
	want := 10 / 0.863
	if math.Abs(diedAt-want) > deathCheckPeriod+0.1 {
		t.Fatalf("died at %v, want ≈%v", diedAt, want)
	}
}

func TestDeadHostIsDetached(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 500)
	b, recB := w.host(2, at(150, 150), 5) // dies in ≈5.8 s
	_ = b
	w.engine.Run(30)
	w.engine.Schedule(0.001, func() {
		a.Send(&radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	w.engine.Run(31)
	if len(recB.received) != 0 {
		t.Fatal("dead host received a frame")
	}
	// Sending from a dead host is silently dropped (it can't transmit).
	b.Send(&radio.Frame{Kind: "x", Dst: hostid.Broadcast, Bytes: 10})
}

func TestInfiniteBatteryHostNeverDies(t *testing.T) {
	w := newWorld()
	h, rec := w.host(1, at(100, 100), math.Inf(1))
	w.engine.Run(5000)
	if h.Dead() || rec.stopped {
		t.Fatal("infinite-energy host died")
	}
}

func TestCellChangeCallbackWhileAwake(t *testing.T) {
	w := newWorld()
	// Move east at 10 m/s from x=150: crosses x=200 after 5 s.
	mob := constVelModel{from: geom.Point{X: 150, Y: 150}, v: geom.Vector{DX: 10}}
	_, rec := w.host(1, mob, 500)
	w.engine.Run(6)
	if len(rec.cellChanges) != 1 || rec.cellChanges[0] != (grid.Coord{X: 2, Y: 1}) {
		t.Fatalf("cellChanges = %v, want [(2, 1)]", rec.cellChanges)
	}
	w.engine.Run(16)
	if len(rec.cellChanges) != 2 || rec.cellChanges[1] != (grid.Coord{X: 3, Y: 1}) {
		t.Fatalf("cellChanges = %v, want second (3, 1)", rec.cellChanges)
	}
}

func TestNoCellChangeCallbackWhileAsleep(t *testing.T) {
	w := newWorld()
	mob := constVelModel{from: geom.Point{X: 150, Y: 150}, v: geom.Vector{DX: 10}}
	h, rec := w.host(1, mob, 500)
	h.Sleep()
	w.engine.Run(30) // crosses three boundaries while asleep
	if len(rec.cellChanges) != 0 {
		t.Fatalf("sleeping host got cell changes: %v", rec.cellChanges)
	}
	h.WakeByTimer()
	// After waking at t=30 (x=450, cell 4), tracking resumes from the
	// current cell: crossings at x=500 (t=35) and x=600 (t=45).
	w.engine.Run(46)
	want := []grid.Coord{{X: 5, Y: 1}, {X: 6, Y: 1}}
	if len(rec.cellChanges) != 2 || rec.cellChanges[0] != want[0] || rec.cellChanges[1] != want[1] {
		t.Fatalf("cellChanges after wake = %v, want %v", rec.cellChanges, want)
	}
}

func TestEstimateDwellDelegates(t *testing.T) {
	w := newWorld()
	mob := constVelModel{from: geom.Point{X: 150, Y: 150}, v: geom.Vector{DX: 10}}
	h, _ := w.host(1, mob, 500)
	if got := h.EstimateDwell(1000); math.Abs(got-5) > 1e-9 {
		t.Fatalf("EstimateDwell = %v, want 5", got)
	}
}

func TestSendWhileAsleepPanics(t *testing.T) {
	w := newWorld()
	h, _ := w.host(1, at(100, 100), 500)
	h.Sleep()
	defer func() {
		if recover() == nil {
			t.Fatal("Send while asleep did not panic")
		}
	}()
	h.Send(&radio.Frame{Kind: "x", Dst: hostid.Broadcast, Bytes: 10})
}

func TestStartWithoutProtocolPanics(t *testing.T) {
	w := newWorld()
	h := New(Config{
		ID: 9, Engine: w.engine, RNG: w.rng, Channel: w.channel,
		Bus: w.bus, Partition: w.partition, Mobility: at(1, 1),
		Battery: energy.NewBattery(energy.PaperModel(), 500),
	})
	defer func() {
		if recover() == nil {
			t.Fatal("Start without protocol did not panic")
		}
	}()
	h.Start()
}

func TestIncompleteConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil engine did not panic")
		}
	}()
	New(Config{})
}

func TestWakeCauseString(t *testing.T) {
	if WakeSelf.String() != "self-timer" || WakePage.String() != "paged" || WakeGridPage.String() != "grid-paged" {
		t.Error("wake cause names wrong")
	}
	if WakeCause(9).String() != "WakeCause(9)" {
		t.Error("unknown wake cause string wrong")
	}
}

// constVelModel moves forever in a straight line.
type constVelModel struct {
	from geom.Point
	v    geom.Vector
}

func (m constVelModel) Position(t float64) geom.Point  { return m.from.Add(m.v.Scale(t)) }
func (m constVelModel) Velocity(t float64) geom.Vector { return m.v }

func TestPageDuringGraceWindowIsNoOp(t *testing.T) {
	// A page that arrives while the host is still awake (e.g. in a
	// protocol's sleep-grace window) must not wake anything or break
	// later sleeps.
	w := newWorld()
	gw, _ := w.host(1, at(100, 100), 500)
	b, recB := w.host(2, at(150, 150), 500)
	w.engine.Schedule(1, func() { gw.Page(2) }) // b is awake
	w.engine.Run(2)
	if len(recB.wakes) != 0 {
		t.Fatal("awake host got a wake callback")
	}
	b.Sleep()
	w.engine.Schedule(0.1, func() { gw.Page(2) })
	w.engine.Run(5)
	if len(recB.wakes) != 1 {
		t.Fatal("later page did not wake the sleeping host")
	}
}

func TestSleepAbortsOngoingReception(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 500)
	b, recB := w.host(2, at(150, 150), 500)
	// Long frame: 20 ms airtime; b sleeps mid-reception.
	w.engine.Schedule(0.001, func() {
		a.Send(&radio.Frame{Kind: "big", Dst: hostid.Broadcast, Bytes: 5000})
	})
	w.engine.Schedule(0.010, func() { b.Sleep() })
	w.engine.Run(1)
	if len(recB.received) != 0 {
		t.Fatal("frame delivered despite mid-reception sleep")
	}
}

func TestDistToCellCenterChangesWithMovement(t *testing.T) {
	w := newWorld()
	mob := constVelModel{from: geom.Point{X: 150, Y: 150}, v: geom.Vector{DX: 10}}
	h, _ := w.host(1, mob, 500)
	d0 := h.DistToCellCenter()
	w.engine.Run(3) // x=180: 30 m from center
	d1 := h.DistToCellCenter()
	if !(d0 == 0 && math.Abs(d1-30) < 1e-9) {
		t.Fatalf("DistToCellCenter: %v then %v", d0, d1)
	}
}

func TestHostLevelDropsWithConsumption(t *testing.T) {
	w := newWorld()
	h, _ := w.host(1, at(100, 100), 500)
	if h.Level() != energy.Upper {
		t.Fatal("fresh host not upper")
	}
	w.engine.Run(300) // idle ≈0.863 W → 259 J consumed → 48 %
	if h.Level() != energy.Boundary {
		t.Fatalf("Level after 300 s = %v", h.Level())
	}
}

func TestHostAccessors(t *testing.T) {
	w := newWorld()
	h, _ := w.host(1, at(100, 100), 500)
	if h.Engine() != w.engine || h.RNG() != w.rng {
		t.Fatal("Engine/RNG accessors wrong")
	}
	w.engine.Run(3)
	if h.Now() != 3 {
		t.Fatalf("Now = %v", h.Now())
	}
}

// failureRecorder also captures TxFailed callbacks.
type failureRecorder struct {
	recorder
	failed []*radio.Frame
}

func (f *failureRecorder) TxFailed(fr *radio.Frame) { f.failed = append(f.failed, fr) }

func TestTxFailedForwardedToProtocol(t *testing.T) {
	w := newWorld()
	b := energy.NewBattery(energy.PaperModel(), 500)
	h := New(Config{
		ID: 1, Engine: w.engine, RNG: w.rng, Channel: w.channel,
		Bus: w.bus, Partition: w.partition, Mobility: at(100, 100), Battery: b,
	})
	rec := &failureRecorder{}
	h.SetProtocol(rec)
	h.Start()
	// Unicast to a nonexistent host: after MAC retries the protocol
	// must see the failure.
	w.engine.Schedule(0.001, func() {
		h.Send(&radio.Frame{Kind: "data", Dst: 42, Bytes: 100})
	})
	w.engine.Run(2)
	if len(rec.failed) != 1 {
		t.Fatalf("protocol saw %d failures, want 1", len(rec.failed))
	}
	if rec.failed[0].Dst != 42 {
		t.Fatalf("failed frame = %v", rec.failed[0])
	}
}

func TestTxFailedIgnoredWithoutInterface(t *testing.T) {
	// A protocol that does not implement FailureAware must simply not
	// be called — no panic.
	w := newWorld()
	h, _ := w.host(1, at(100, 100), 500)
	w.engine.Schedule(0.001, func() {
		h.Send(&radio.Frame{Kind: "data", Dst: 42, Bytes: 100})
	})
	w.engine.Run(2)
}

func TestPageFromDeadHostIsNoOp(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 5) // dies in ≈5.8 s
	b, recB := w.host(2, at(150, 150), 500)
	b.Sleep()
	w.engine.Run(30)
	if !a.Dead() {
		t.Fatal("setup: a alive")
	}
	a.Page(2)
	a.PageGrid(grid.Coord{X: 1, Y: 1})
	w.engine.Run(31)
	if len(recB.wakes) != 0 {
		t.Fatal("dead host's page woke someone")
	}
}
