package node

import (
	"math"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
)

func TestCrashDetachesHost(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 500)
	b, recB := w.host(2, at(150, 150), 500)
	w.engine.Schedule(0.001, func() { b.Crash() })
	w.engine.Schedule(0.01, func() {
		a.Send(&radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	w.engine.Run(1)
	if !b.Crashed() || b.Dead() {
		t.Fatalf("Crashed=%v Dead=%v, want crashed and not dead", b.Crashed(), b.Dead())
	}
	if !recB.stopped {
		t.Fatal("protocol not stopped on crash")
	}
	if len(recB.received) != 0 {
		t.Fatal("crashed host received a frame")
	}
	if b.Battery().Mode() != energy.Sleep {
		t.Fatalf("crashed battery mode = %v, want sleep", b.Battery().Mode())
	}
}

func TestCrashedHostOpsAreNoOps(t *testing.T) {
	w := newWorld()
	b, _ := w.host(2, at(150, 150), 500)
	w.engine.Schedule(0.001, func() {
		b.Crash()
		// None of these may panic or take effect.
		b.Send(&radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
		b.Sleep()
		b.Page(1)
		b.PageGrid(grid.Coord{X: 1, Y: 1})
		b.WakeByTimer()
		b.Crash() // double crash
	})
	w.engine.Run(1)
	if b.Asleep() {
		t.Fatal("crashed host went to sleep")
	}
	if !b.Crashed() {
		t.Fatal("host not crashed")
	}
}

func TestRecoverRejoinsCold(t *testing.T) {
	w := newWorld()
	a, _ := w.host(1, at(100, 100), 500)
	b, oldRec := w.host(2, at(150, 150), 500)
	fresh := &recorder{}
	w.engine.Schedule(0.001, func() { b.Crash() })
	w.engine.Schedule(0.1, func() {
		// The caller installs a fresh protocol: a power cycle loses all
		// volatile state.
		b.SetProtocol(fresh)
		b.Recover()
	})
	w.engine.Schedule(0.2, func() {
		a.Send(&radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 64})
	})
	w.engine.Run(1)
	if b.Crashed() || b.Dead() {
		t.Fatalf("Crashed=%v Dead=%v after recovery", b.Crashed(), b.Dead())
	}
	if !fresh.started {
		t.Fatal("fresh protocol not started on recovery")
	}
	if len(fresh.received) != 1 {
		t.Fatalf("recovered host received %d frames, want 1", len(fresh.received))
	}
	if len(oldRec.received) != 0 {
		t.Fatal("pre-crash protocol received post-recovery traffic")
	}
	if b.Battery().Mode() != energy.Idle {
		t.Fatalf("recovered battery mode = %v, want idle", b.Battery().Mode())
	}
}

func TestRecoverWithoutCrashIsNoOp(t *testing.T) {
	w := newWorld()
	b, _ := w.host(2, at(150, 150), 500)
	w.engine.Schedule(0.001, func() { b.Recover() })
	w.engine.Run(0.01) // must not panic or double-attach
	if b.Crashed() || b.Dead() {
		t.Fatal("no-op recover changed state")
	}
}

func TestRecoverAfterBatteryDeathStaysDown(t *testing.T) {
	w := newWorld()
	b, _ := w.host(2, at(150, 150), 500)
	fresh := &recorder{}
	died := false
	b.Died = func(id hostid.ID, atT float64) { died = true }
	w.engine.Schedule(0.001, func() {
		b.Crash()
		b.DrainBattery(1.0) // empties the battery while down
	})
	w.engine.Schedule(0.1, func() {
		b.SetProtocol(fresh)
		b.Recover()
	})
	w.engine.Run(1)
	if !b.Dead() {
		t.Fatal("host with an empty battery came back")
	}
	if b.Crashed() {
		t.Fatal("dead host still marked crashed")
	}
	if !died {
		t.Fatal("Died callback not invoked")
	}
	if !fresh.stopped {
		t.Fatal("fresh protocol not stopped by the death")
	}
}

func TestDrainBatteryShock(t *testing.T) {
	w := newWorld()
	b, rec := w.host(2, at(150, 150), 500)
	w.engine.Schedule(0.001, func() {
		b.DrainBattery(0.5)
		r := b.Battery().Rbrc(w.engine.Now())
		if math.Abs(r-0.5) > 0.01 {
			t.Errorf("Rbrc after 0.5 shock = %g", r)
		}
	})
	w.engine.Run(0.01)
	if b.Dead() {
		t.Fatal("half shock killed the host")
	}
	w.engine.Schedule(0, func() { b.DrainBattery(1.0) })
	w.engine.Run(0.1)
	if !b.Dead() {
		t.Fatal("full drain did not kill the host through the death path")
	}
	if !rec.stopped {
		t.Fatal("protocol not stopped on shock death")
	}
}

func TestGPSNoiseShiftsReportedPositionOnly(t *testing.T) {
	w := newWorld()
	// True position (95, 150) is in cell (0, 1), 45 m east of nothing —
	// 10 m of eastward noise pushes the reading into cell (1, 1).
	b, _ := w.host(2, at(95, 150), 500)
	b.SetGPSNoise(func(tm float64) (dx, dy float64) { return 10, 0 })
	if got := b.Position(); got.X != 95 {
		t.Fatalf("true position perturbed: %v", got)
	}
	if got := b.GPS(); got.X != 105 {
		t.Fatalf("GPS reading = %v, want x=105", got)
	}
	if got := b.Cell(); got != (grid.Coord{X: 1, Y: 1}) {
		// Cell is derived from the GPS reading, not the true position.
		t.Fatalf("Cell = %v, want (1,1)", got)
	}
	b.SetGPSNoise(nil)
	if got := b.GPS(); got.X != 95 {
		t.Fatalf("GPS after noise removal = %v, want x=95", got)
	}
}
