// Package node implements the mobile host: the glue between the physical
// substrates (battery, mobility, radio channel, RAS paging) and a routing
// protocol. A Host owns no policy — when to sleep, whom to elect, how to
// route — that is the attached Protocol's job. The Host provides:
//
//   - identity, position and grid-cell queries (the "GPS"),
//   - radio send plus frame delivery to the protocol,
//   - sleep/wake state transitions wired to the channel and the RAS,
//   - exact cell-change callbacks while awake,
//   - battery-death detection and teardown.
package node

import (
	"fmt"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/sim"
)

// WakeCause says why a sleeping host returned to active mode.
type WakeCause int

const (
	// WakeSelf: the host's own dwell/wake timer expired.
	WakeSelf WakeCause = iota
	// WakePage: the gateway paged this host's paging sequence.
	WakePage
	// WakeGridPage: the grid's broadcast sequence was paged (election).
	WakeGridPage
)

// String names the wake cause.
func (w WakeCause) String() string {
	switch w {
	case WakeSelf:
		return "self-timer"
	case WakePage:
		return "paged"
	case WakeGridPage:
		return "grid-paged"
	default:
		return fmt.Sprintf("WakeCause(%d)", int(w))
	}
}

// Protocol is the behaviour a Host runs. All methods are invoked from
// simulation events; implementations must not retain frames past the
// call (payloads may be shared).
type Protocol interface {
	// Start runs once when the simulation begins, after the host is
	// attached to the channel.
	Start()
	// Receive handles a successfully received frame.
	Receive(f *radio.Frame)
	// Woken is called after a sleeping host returns to active mode,
	// with the cause. The host is already listening when this runs.
	Woken(cause WakeCause)
	// CellChanged is called when an awake host crosses a grid boundary.
	// Sleeping hosts do not get this callback; they discover movement
	// when they wake, as the paper prescribes.
	CellChanged(old, cur grid.Coord)
	// Stopped is called once when the host dies (battery exhausted).
	Stopped()
}

// Host is one mobile host.
type Host struct {
	id        hostid.ID
	engine    *sim.Engine
	rng       *sim.RNG
	channel   *radio.Channel
	bus       *ras.Bus
	partition *grid.Partition
	mob       mobility.Model
	battery   *energy.Battery
	protocol  Protocol

	asleep  bool
	dead    bool
	crashed bool

	// gpsNoise, when non-nil, perturbs the position the host's GPS
	// reports (fault injection). The radio keeps using the true position.
	gpsNoise func(t float64) (dx, dy float64)

	cellEv   sim.Handle // pending cell-change event
	deathEv  sim.Handle // pending death-check event
	lastCell grid.Coord

	// cellFn/deathFn are the timer callbacks bound once at construction;
	// re-arming them reuses the queued event (or a pooled one) without
	// allocating a closure per cycle.
	cellFn  func()
	deathFn func()

	// Position memo: mobility is a pure function of time, and the radio
	// path asks for the same host's position many times within one event
	// (receiver scan, carrier sense, GPS reads), so the leg lookup and
	// interpolation run once per (host, event time).
	posAt  float64
	posPt  geom.Point
	posSet bool

	// Died, if set, is called once when the battery empties.
	Died func(id hostid.ID, at float64)

	// SleepLog counts sleep transitions, for diagnostics.
	Sleeps, Wakes uint64
}

// Config collects the dependencies of a Host.
type Config struct {
	ID        hostid.ID
	Engine    *sim.Engine
	RNG       *sim.RNG
	Channel   *radio.Channel
	Bus       *ras.Bus
	Partition *grid.Partition
	Mobility  mobility.Model
	Battery   *energy.Battery
}

// New creates a host and attaches it to the channel and the paging bus.
// The protocol is set separately (SetProtocol) because protocols need the
// host reference at construction.
func New(cfg Config) *Host {
	if cfg.Engine == nil || cfg.Channel == nil || cfg.Partition == nil || cfg.Mobility == nil || cfg.Battery == nil {
		panic("node: incomplete config")
	}
	h := &Host{
		id:        cfg.ID,
		engine:    cfg.Engine,
		rng:       cfg.RNG,
		channel:   cfg.Channel,
		bus:       cfg.Bus,
		partition: cfg.Partition,
		mob:       cfg.Mobility,
		battery:   cfg.Battery,
	}
	h.cellFn = h.cellChanged
	h.deathFn = h.checkDeath
	h.lastCell = h.Cell()
	h.channel.Attach(h)
	h.attachSwitch()
	return h
}

// attachSwitch registers the host's RAS switch on the paging bus. Used
// at construction and again when recovering from an injected crash.
func (h *Host) attachSwitch() {
	if h.bus == nil {
		return
	}
	h.bus.Attach(h.id, &ras.Switch{
		Position: h.Position,
		Asleep:   func() bool { return h.asleep && !h.dead && !h.crashed },
		Wake: func(reason ras.WakeReason) {
			switch reason {
			case ras.PagedDirectly:
				h.wake(WakePage)
			case ras.PagedGrid:
				h.wake(WakeGridPage)
			}
		},
	})
}

// SetProtocol attaches the protocol. Must be called before Start.
func (h *Host) SetProtocol(p Protocol) { h.protocol = p }

// Start begins the host's life: death monitoring, cell-change tracking,
// and the protocol.
func (h *Host) Start() {
	if h.protocol == nil {
		panic("node: Start without protocol")
	}
	h.scheduleDeathCheck()
	h.scheduleCellChange()
	h.protocol.Start()
}

// --- identity and sensors -----------------------------------------------

// ID returns the host identifier.
func (h *Host) ID() hostid.ID { return h.id }

// Now returns the current simulation time.
func (h *Host) Now() float64 { return h.engine.Now() }

// Engine exposes the event engine for protocol timers.
func (h *Host) Engine() *sim.Engine { return h.engine }

// RNG exposes the simulation's random streams (for protocol jitter).
func (h *Host) RNG() *sim.RNG { return h.rng }

// Partition returns the grid partition.
func (h *Host) Partition() *grid.Partition { return h.partition }

// Position returns the host's true current location, memoized per event
// time. The radio channel and the RAS bus range checks use it.
func (h *Host) Position() geom.Point {
	now := h.engine.Now()
	if !h.posSet || h.posAt != now {
		h.posPt = h.mob.Position(now)
		h.posAt = now
		h.posSet = true
	}
	return h.posPt
}

// AdvanceMobility materializes the host's movement history out to time
// t without touching the event-time position memo. The sharded engine's
// workers (internal/shard) call it in the parallel advance phase, so
// every Position read during the following serial commit window is a
// pure lookup into legs that already exist. Mobility models draw from
// the host's private stream and keep their full history, so early
// materialization is byte-identical to materializing on demand.
func (h *Host) AdvanceMobility(t float64) {
	if h.dead {
		return
	}
	h.mob.Position(t)
}

// NextExit implements radio.Mover for the channel's spatial index: the
// earliest time ≥ t the host's position may leave bounds, bounded by a
// one-hour re-check horizon.
func (h *Host) NextExit(t float64, bounds geom.Rect) float64 {
	const horizon = 3600.0
	return mobility.NextRectExit(h.mob, t, bounds, t+horizon)
}

// StaysWithin reports whether the host provably remains inside bounds
// over the whole interval [from, until]. The sharded engine's scan
// pruning (internal/shard) uses it as the per-window pin test; call it
// only after AdvanceMobility(until) or later, so the proof walks legs
// that already exist and draws nothing from the mobility stream.
func (h *Host) StaysWithin(from, until float64, bounds geom.Rect) bool {
	return mobility.ProvablyWithin(h.mob, from, until, bounds)
}

// MaxSpeedMS implements radio.SpeedBounded: a bound on the host's speed
// for the whole run, from its mobility model, or +Inf when the model
// cannot bound itself.
func (h *Host) MaxSpeedMS() float64 { return mobility.SpeedBoundOf(h.mob) }

// GPS returns the position the host's positioning device reports: the
// true position plus any injected noise. Everything the protocol derives
// from geography — grid membership, distance to the cell center — reads
// the GPS, so a GPS-error fault degrades routing decisions without
// bending physics.
func (h *Host) GPS() geom.Point {
	p := h.Position()
	if h.gpsNoise != nil {
		dx, dy := h.gpsNoise(h.engine.Now())
		p.X += dx
		p.Y += dy
	}
	return p
}

// SetGPSNoise installs (or, with nil, removes) a position-noise function
// applied to every GPS reading (fault injection).
func (h *Host) SetGPSNoise(fn func(t float64) (dx, dy float64)) { h.gpsNoise = fn }

// Cell returns the grid cell the host believes it is in (GPS reading;
// out-of-area readings clamp to the nearest cell).
func (h *Host) Cell() grid.Coord { return h.partition.CellOf(h.GPS()) }

// DistToCellCenter returns the distance from the host's reported
// position to the physical center of its current cell (the HELLO "dist"
// field).
func (h *Host) DistToCellCenter() float64 {
	return h.GPS().Dist(h.partition.Center(h.Cell()))
}

// Battery returns the host battery.
func (h *Host) Battery() *energy.Battery { return h.battery }

// Level returns the current battery level band.
func (h *Host) Level() energy.Level { return h.battery.Level(h.engine.Now()) }

// EstimateDwell returns the paper's GPS dwell estimate: the expected time
// the host remains in its current cell, capped at maxDwell.
func (h *Host) EstimateDwell(maxDwell float64) float64 {
	return mobility.EstimateDwell(h.mob, h.engine.Now(), h.partition, maxDwell)
}

// Dead reports whether the host's battery is exhausted.
func (h *Host) Dead() bool { return h.dead }

// Crashed reports whether the host is powered off by an injected crash
// fault (recoverable, unlike battery death).
func (h *Host) Crashed() bool { return h.crashed }

// Asleep reports whether the host is in sleep mode.
func (h *Host) Asleep() bool { return h.asleep }

// --- radio ---------------------------------------------------------------

// Send transmits a frame. The host must be awake and alive.
func (h *Host) Send(f *radio.Frame) {
	if h.dead || h.crashed {
		return
	}
	if h.asleep {
		panic(fmt.Sprintf("node: %v sent %v while asleep", h.id, f))
	}
	h.channel.Send(h.id, f)
}

// SendFrame builds a frame from the channel's pool and transmits it —
// the allocation-free equivalent of Send(&radio.Frame{...}). The channel
// reclaims the frame struct when it is done with the air; the payload is
// untouched and may be shared or retained by receivers.
func (h *Host) SendFrame(kind string, dst hostid.ID, bytes int, payload any) {
	if h.dead || h.crashed {
		return
	}
	if h.asleep {
		panic(fmt.Sprintf("node: %v sent %s while asleep", h.id, kind))
	}
	h.channel.Send(h.id, h.channel.NewFrame(kind, h.id, dst, bytes, payload))
}

// Deliver implements radio.Endpoint: frames go to the protocol.
func (h *Host) Deliver(f *radio.Frame) {
	if h.dead || h.crashed {
		return
	}
	h.protocol.Receive(f)
}

// FailureAware is implemented by protocols that react to link-layer
// transmit failures (route repair).
type FailureAware interface {
	TxFailed(f *radio.Frame)
}

// TxFailed implements radio.TxFeedback by forwarding to the protocol.
func (h *Host) TxFailed(f *radio.Frame) {
	if h.dead || h.crashed {
		return
	}
	if fa, ok := h.protocol.(FailureAware); ok {
		fa.TxFailed(f)
	}
}

// --- RAS paging ----------------------------------------------------------

// Page sends the paging sequence of target from this host's position.
func (h *Host) Page(target hostid.ID) {
	if h.bus == nil || h.dead || h.crashed {
		return
	}
	h.bus.Page(h.Position(), target)
}

// PageGrid sends the broadcast sequence of cell c from this host's
// position.
func (h *Host) PageGrid(c grid.Coord) {
	if h.bus == nil || h.dead || h.crashed {
		return
	}
	h.bus.PageGrid(h.Position(), c)
}

// --- sleep and wake -------------------------------------------------------

// Sleep turns the transceiver off. The protocol remains responsible for
// scheduling its own wake timer. Sleeping while dead or already asleep is
// a no-op.
func (h *Host) Sleep() {
	if h.dead || h.crashed || h.asleep {
		return
	}
	h.asleep = true
	h.Sleeps++
	h.channel.SetListening(h.id, false)
	h.cancelCellChange()
	h.scheduleDeathCheck()
}

// WakeByTimer returns the host to active mode from its own timer. It is
// what protocol wake timers call. No-op if already awake or dead.
func (h *Host) WakeByTimer() { h.wake(WakeSelf) }

func (h *Host) wake(cause WakeCause) {
	if h.dead || h.crashed || !h.asleep {
		return
	}
	h.asleep = false
	h.Wakes++
	h.channel.SetListening(h.id, true)
	h.lastCell = h.Cell()
	h.scheduleCellChange()
	h.scheduleDeathCheck()
	h.protocol.Woken(cause)
}

// --- cell-change tracking --------------------------------------------------

func (h *Host) cancelCellChange() {
	h.engine.Cancel(h.cellEv)
	h.cellEv = sim.Handle{}
}

func (h *Host) scheduleCellChange() {
	if h.dead || h.asleep {
		h.cancelCellChange()
		return
	}
	const horizon = 3600.0
	next := mobility.NextCellChange(h.mob, h.engine.Now(), h.partition, h.engine.Now()+horizon)
	var delay float64
	if next > h.engine.Now()+horizon { // +Inf: re-arm at the horizon
		delay = horizon
	} else {
		delay = next - h.engine.Now()
	}
	if h.engine.Reschedule(h.cellEv, delay) {
		return
	}
	h.cellEv = h.engine.Schedule(delay, h.cellFn)
}

func (h *Host) cellChanged() {
	h.cellEv = sim.Handle{}
	if h.dead || h.asleep {
		return
	}
	old := h.lastCell
	cur := h.Cell()
	h.lastCell = cur
	h.scheduleCellChange()
	if cur != old {
		h.protocol.CellChanged(old, cur)
	}
}

// --- death -----------------------------------------------------------------

// deathCheckPeriod bounds how stale a death prediction can be: the host
// re-predicts at least this often, so death is detected within one
// period even if the radio got busier than predicted.
const deathCheckPeriod = 1.0

func (h *Host) scheduleDeathCheck() {
	if h.dead || h.battery.IsInfinite() {
		return
	}
	now := h.engine.Now()
	eta := h.battery.TimeToEmpty(now, h.battery.Mode())
	delay := eta
	if delay > deathCheckPeriod {
		delay = deathCheckPeriod
	}
	if delay < 1e-9 {
		delay = 1e-9
	}
	if h.engine.Reschedule(h.deathEv, delay) {
		return
	}
	h.deathEv = h.engine.Schedule(delay, h.deathFn)
}

func (h *Host) checkDeath() {
	h.deathEv = sim.Handle{}
	if h.dead {
		return
	}
	if !h.battery.Dead(h.engine.Now()) {
		h.scheduleDeathCheck()
		return
	}
	h.die()
}

func (h *Host) die() {
	h.dead = true
	h.cancelCellChange()
	h.channel.Detach(h.id)
	if h.bus != nil {
		h.bus.Detach(h.id)
	}
	h.protocol.Stopped()
	if h.Died != nil {
		h.Died(h.id, h.engine.Now())
	}
}

// --- fault injection --------------------------------------------------------

// Crash powers the host off abruptly (fault injection): it detaches from
// the channel and the paging bus, drops in-flight receptions, and stops
// the protocol, exactly like battery death — except the host can come
// back via Recover. While crashed the battery drains at the sleep rate
// (the transceiver is off). Crashing a dead or already-crashed host is a
// no-op.
func (h *Host) Crash() {
	if h.dead || h.crashed {
		return
	}
	h.crashed = true
	h.asleep = false
	h.cancelCellChange()
	h.engine.Cancel(h.deathEv)
	h.deathEv = sim.Handle{}
	h.channel.Detach(h.id)
	if h.bus != nil {
		h.bus.Detach(h.id)
	}
	h.battery.SetMode(h.engine.Now(), energy.Sleep)
	h.protocol.Stopped()
}

// Recover brings a crashed host back: it re-attaches to the channel and
// the paging bus and starts the protocol from scratch — all volatile
// protocol state was lost in the crash, so the caller must install a
// fresh protocol instance (SetProtocol) before calling Recover. A host
// whose battery died while crashed stays down.
func (h *Host) Recover() {
	if h.dead || !h.crashed {
		return
	}
	if h.battery.Dead(h.engine.Now()) {
		h.crashed = false
		h.die()
		return
	}
	h.crashed = false
	h.asleep = false
	h.battery.SetMode(h.engine.Now(), energy.Idle)
	h.channel.Attach(h)
	h.attachSwitch()
	h.lastCell = h.Cell()
	h.scheduleDeathCheck()
	h.scheduleCellChange()
	h.protocol.Start()
}

// DrainBattery removes the given fraction of the battery's full capacity
// instantly (fault injection: battery shock). Draining to zero triggers
// the normal death path at the next death check.
func (h *Host) DrainBattery(fraction float64) {
	if h.dead || h.battery.IsInfinite() {
		return
	}
	h.battery.Drain(h.engine.Now(), fraction*h.battery.Full())
	if h.crashed {
		return // death check resumes on recovery
	}
	h.scheduleDeathCheck()
}
