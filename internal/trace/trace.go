// Package trace records simulation events as structured entries, for
// debugging protocol behaviour and for the annotated example runs. It
// formalizes the ad-hoc frame sniffing used while developing the
// protocols: a Recorder subscribes to the radio channel (and to protocol
// hooks) and keeps a bounded in-memory log that can be filtered and
// printed.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
)

// Entry is one recorded event.
type Entry struct {
	T    float64   // simulation time
	Kind string    // event kind ("hello", "data", "rreq", "page", ...)
	Src  hostid.ID // originating host (hostid.None when not applicable)
	Dst  hostid.ID // addressed host (hostid.Broadcast / hostid.None)
	Note string    // human-readable detail
	// Bytes carries a frame size for radio entries. It renders as the
	// note ("%dB") when Note is empty — stored typed so the hot sniffer
	// path records without formatting; rendering pays the Sprintf only
	// for entries that are actually printed.
	Bytes int
}

// String renders the entry as one log line.
func (e Entry) String() string {
	note := e.Note
	if note == "" && e.Bytes != 0 {
		note = strconv.Itoa(e.Bytes) + "B"
	}
	return fmt.Sprintf("%10.4f  %-9s %-9s -> %-9s %s", e.T, e.Kind, e.Src, e.Dst, note)
}

// Recorder accumulates entries up to a capacity; past it, the oldest
// entries are discarded (it is a ring).
type Recorder struct {
	cap     int
	entries []Entry
	start   int // ring start index
	total   uint64
}

// NewRecorder returns a recorder holding at most capacity entries.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	return &Recorder{cap: capacity}
}

// Add records one entry.
func (r *Recorder) Add(e Entry) {
	r.total++
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, e)
		return
	}
	r.entries[r.start] = e
	r.start = (r.start + 1) % r.cap
}

// Record is a convenience Add.
func (r *Recorder) Record(t float64, kind string, src, dst hostid.ID, format string, args ...any) {
	r.Add(Entry{T: t, Kind: kind, Src: src, Dst: dst, Note: fmt.Sprintf(format, args...)})
}

// Len returns the number of retained entries.
func (r *Recorder) Len() int { return len(r.entries) }

// Total returns the number of entries ever recorded (including ones the
// ring has discarded).
func (r *Recorder) Total() uint64 { return r.total }

// Entries returns the retained entries in chronological order. The
// returned slice is owned by the caller.
func (r *Recorder) Entries() []Entry {
	out := make([]Entry, 0, len(r.entries))
	out = append(out, r.entries[r.start:]...)
	out = append(out, r.entries[:r.start]...)
	return out
}

// Filter returns the retained entries matching every provided predicate.
func (r *Recorder) Filter(preds ...func(Entry) bool) []Entry {
	var out []Entry
outer:
	for _, e := range r.Entries() {
		for _, p := range preds {
			if !p(e) {
				continue outer
			}
		}
		out = append(out, e)
	}
	return out
}

// ByKind matches entries whose kind is one of the given kinds.
func ByKind(kinds ...string) func(Entry) bool {
	return func(e Entry) bool {
		for _, k := range kinds {
			if e.Kind == k {
				return true
			}
		}
		return false
	}
}

// ByHost matches entries that involve the given host as source or
// destination.
func ByHost(id hostid.ID) func(Entry) bool {
	return func(e Entry) bool { return e.Src == id || e.Dst == id }
}

// Between matches entries with lo ≤ T ≤ hi.
func Between(lo, hi float64) func(Entry) bool {
	return func(e Entry) bool { return e.T >= lo && e.T <= hi }
}

// Write prints entries one per line.
func Write(w io.Writer, entries []Entry) error {
	for _, e := range entries {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Summarize returns per-kind counts of the retained entries, formatted
// as "kind=N" pairs sorted by kind name.
func (r *Recorder) Summarize() string {
	counts := map[string]int{}
	for _, e := range r.Entries() {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return strings.Join(parts, " ")
}

// AttachRadio subscribes the recorder to every transmission on the
// channel. It overwrites any previous sniffer. The sniffer stores the
// frame's fields typed — no formatting on the hot path; Entry.String
// renders the byte count lazily and byte-identically.
func (r *Recorder) AttachRadio(c *radio.Channel) {
	c.Sniffer = func(f *radio.Frame, at float64) {
		r.Add(Entry{T: at, Kind: f.Kind, Src: f.Src, Dst: f.Dst, Bytes: f.Bytes})
	}
}
