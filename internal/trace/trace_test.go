package trace

import (
	"bytes"
	"strings"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/sim"
)

func entry(t float64, kind string, src, dst hostid.ID) Entry {
	return Entry{T: t, Kind: kind, Src: src, Dst: dst}
}

func TestRecorderKeepsEntriesInOrder(t *testing.T) {
	r := NewRecorder(10)
	r.Add(entry(1, "a", 1, 2))
	r.Add(entry(2, "b", 2, 3))
	r.Add(entry(3, "c", 3, 4))
	got := r.Entries()
	if len(got) != 3 || got[0].Kind != "a" || got[2].Kind != "c" {
		t.Fatalf("Entries = %v", got)
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("Len=%d Total=%d", r.Len(), r.Total())
	}
}

func TestRecorderRingDiscardsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Add(entry(float64(i), "k", hostid.ID(i), 0))
	}
	got := r.Entries()
	if len(got) != 3 {
		t.Fatalf("kept %d entries, want 3", len(got))
	}
	if got[0].T != 3 || got[2].T != 5 {
		t.Fatalf("ring order wrong: %v", got)
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d", r.Total())
	}
}

func TestFilterPredicates(t *testing.T) {
	r := NewRecorder(10)
	r.Add(entry(1, "hello", 1, hostid.Broadcast))
	r.Add(entry(2, "data", 1, 2))
	r.Add(entry(3, "data", 3, 4))
	r.Add(entry(9, "rreq", 2, hostid.Broadcast))

	if got := r.Filter(ByKind("data")); len(got) != 2 {
		t.Fatalf("ByKind(data) = %v", got)
	}
	if got := r.Filter(ByKind("hello", "rreq")); len(got) != 2 {
		t.Fatalf("ByKind(hello,rreq) = %v", got)
	}
	if got := r.Filter(ByHost(1)); len(got) != 2 {
		t.Fatalf("ByHost(1) = %v", got)
	}
	if got := r.Filter(Between(2, 3)); len(got) != 2 {
		t.Fatalf("Between(2,3) = %v", got)
	}
	if got := r.Filter(ByKind("data"), ByHost(3)); len(got) != 1 {
		t.Fatalf("combined = %v", got)
	}
}

func TestRecordFormatsNote(t *testing.T) {
	r := NewRecorder(2)
	r.Record(1.5, "page", 1, 2, "wake %d", 42)
	e := r.Entries()[0]
	if e.Note != "wake 42" {
		t.Fatalf("Note = %q", e.Note)
	}
	if !strings.Contains(e.String(), "page") || !strings.Contains(e.String(), "host-1") {
		t.Fatalf("String = %q", e.String())
	}
}

func TestWriteAndSummarize(t *testing.T) {
	r := NewRecorder(10)
	r.Add(entry(1, "hello", 1, hostid.Broadcast))
	r.Add(entry(2, "data", 1, 2))
	r.Add(entry(3, "data", 2, 1))
	var buf bytes.Buffer
	if err := Write(&buf, r.Entries()); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("wrote %d lines", lines)
	}
	if s := r.Summarize(); s != "data=2 hello=1" {
		t.Fatalf("Summarize = %q", s)
	}
}

func TestNewRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(0) did not panic")
		}
	}()
	NewRecorder(0)
}

// fakeEp is a minimal radio endpoint.
type fakeEp struct {
	id  hostid.ID
	bat *energy.Battery
}

func (f *fakeEp) ID() hostid.ID            { return f.id }
func (f *fakeEp) Position() geom.Point     { return geom.Point{} }
func (f *fakeEp) Battery() *energy.Battery { return f.bat }
func (f *fakeEp) Deliver(*radio.Frame)     {}

func TestAttachRadioRecordsTransmissions(t *testing.T) {
	e := sim.NewEngine()
	ch := radio.NewChannel(e, sim.NewRNG(1), radio.DefaultConfig())
	ch.Attach(&fakeEp{id: 1, bat: energy.NewBattery(energy.PaperModel(), 100)})
	r := NewRecorder(10)
	r.AttachRadio(ch)
	e.Schedule(0.001, func() {
		ch.Send(1, &radio.Frame{Kind: "hello", Dst: hostid.Broadcast, Bytes: 20})
	})
	e.Run(1)
	got := r.Filter(ByKind("hello"))
	if len(got) != 1 || got[0].Src != 1 {
		t.Fatalf("recorded = %v", got)
	}
	// The byte count is stored typed (no formatting on the sniffer hot
	// path) and must render exactly as the old eager "%dB" note did.
	if got[0].Bytes != 20 {
		t.Fatalf("bytes = %d", got[0].Bytes)
	}
	if s := got[0].String(); !strings.HasSuffix(s, " 20B") {
		t.Fatalf("rendered entry = %q, want trailing \" 20B\"", s)
	}
}

// TestEntryStringLazyBytesIdentical pins the lazy render: a typed Bytes
// field must produce exactly the line the old eager Sprintf("%dB") note
// produced, and an explicit Note must win over Bytes.
func TestEntryStringLazyBytesIdentical(t *testing.T) {
	lazy := Entry{T: 12.3456, Kind: "data", Src: 3, Dst: 9, Bytes: 148}
	eager := Entry{T: 12.3456, Kind: "data", Src: 3, Dst: 9, Note: "148B"}
	if lazy.String() != eager.String() {
		t.Fatalf("lazy render %q != eager render %q", lazy.String(), eager.String())
	}
	noted := Entry{T: 1, Kind: "x", Src: 1, Dst: 2, Note: "hand-written", Bytes: 99}
	if !strings.HasSuffix(noted.String(), "hand-written") {
		t.Fatalf("explicit note lost: %q", noted.String())
	}
}

func TestSummarizeRingWraparound(t *testing.T) {
	r := NewRecorder(4)
	// 7 entries through a 4-slot ring: the first three fall off the
	// front, and the retained window wraps the backing array.
	kinds := []string{"a", "b", "a", "c", "b", "c", "c"}
	for i, k := range kinds {
		r.Add(entry(float64(i), k, 1, 2))
	}
	if r.Len() != 4 || r.Total() != 7 {
		t.Fatalf("Len=%d Total=%d, want 4 and 7", r.Len(), r.Total())
	}
	// Retained: b, c, c at the wrap plus b — i.e. kinds[3:] = c b c c.
	if got, want := r.Summarize(), "b=1 c=3"; got != want {
		t.Fatalf("Summarize() = %q, want %q", got, want)
	}
}
