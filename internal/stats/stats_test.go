package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if !almost(a.Mean(), 5) {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if !almost(a.Variance(), 32.0/7) {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if !almost(a.StdDev(), math.Sqrt(32.0/7)) {
		t.Fatalf("StdDev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("Min,Max = %v,%v", a.Min(), a.Max())
	}
	if !almost(a.Sum(), 40) {
		t.Fatalf("Sum = %v, want 40", a.Sum())
	}
}

func TestAccumulatorSingleObservation(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Min() != 3.5 || a.Max() != 3.5 || a.Variance() != 0 {
		t.Fatal("single-observation accumulator wrong")
	}
}

func TestAccumulatorMatchesDirectComputationProperty(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		var a Accumulator
		vals := make([]float64, len(xs))
		for i, x := range xs {
			vals[i] = float64(x)
			a.Add(vals[i])
		}
		return math.Abs(a.Mean()-Mean(vals)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15},
		{1, 50},
		{0.5, 35},
		{0.25, 20},
		{0.75, 40},
		{0.4, 29}, // interpolated: idx 1.6 → 20 + 0.6·15
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be modified.
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatal("Percentile modified its input")
	}
}

func TestPercentileSingle(t *testing.T) {
	if got := Percentile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("Percentile single = %v", got)
	}
}

func TestMedianUnsortedInput(t *testing.T) {
	if got := Median([]float64{9, 1, 5}); got != 5 {
		t.Fatalf("Median = %v, want 5", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty": func() { Percentile(nil, 0.5) },
		"p>1":   func() { Percentile([]float64{1}, 1.5) },
		"p<0":   func() { Percentile([]float64{1}, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(xs []int8, pr uint8) bool {
		if len(xs) == 0 {
			return true
		}
		vals := make([]float64, len(xs))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, x := range xs {
			vals[i] = float64(x)
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		p := float64(pr) / 255
		v := Percentile(vals, p)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
}

func TestSeriesAppendAndAt(t *testing.T) {
	var s Series
	if s.At(5) != 0 || s.Last() != 0 {
		t.Fatal("empty series not zero")
	}
	s.Append(0, 1.0)
	s.Append(10, 0.8)
	s.Append(20, 0.5)
	cases := []struct{ t, want float64 }{
		{0, 1.0},
		{5, 1.0},
		{10, 0.8},
		{15, 0.8},
		{20, 0.5},
		{100, 0.5},
		{-1, 0},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if s.Last() != 0.5 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestSeriesEqualTimestampAllowed(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(1, 3) // same timestamp replaces observation for At purposes
	if got := s.At(1); got != 3 {
		t.Fatalf("At(1) = %v, want 3 (latest)", got)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	var s Series
	s.Append(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(5, 1)
}

func TestSeriesResample(t *testing.T) {
	var s Series
	s.Append(0, 1.0)
	s.Append(100, 0.9)
	s.Append(250, 0.7)
	pts := s.Resample(0, 300, 100)
	want := []SeriesPoint{{0, 1.0}, {100, 0.9}, {200, 0.9}, {300, 0.7}}
	if len(pts) != len(want) {
		t.Fatalf("Resample returned %d points, want %d: %v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("Resample[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestSeriesResamplePanics(t *testing.T) {
	var s Series
	defer func() {
		if recover() == nil {
			t.Fatal("Resample(step=0) did not panic")
		}
	}()
	s.Resample(0, 10, 0)
}
