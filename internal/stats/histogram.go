package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram counts observations into fixed-width bins over [Min, Max);
// observations outside the range land in under/overflow bins. Used by the
// latency reporting in cmd/ecgridsim.
type Histogram struct {
	min, max  float64
	bins      []int
	width     float64
	under     int
	over      int
	n         int
	underflow bool
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if max <= min || bins <= 0 {
		panic("stats: invalid histogram range or bin count")
	}
	return &Histogram{
		min:   min,
		max:   max,
		bins:  make([]int, bins),
		width: (max - min) / float64(bins),
	}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	switch {
	case x < h.min:
		h.under++
	case x >= h.max:
		h.over++
	default:
		i := int((x - h.min) / h.width)
		if i >= len(h.bins) { // guard float rounding at the top edge
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns the number of observations.
func (h *Histogram) N() int { return h.n }

// Bin returns the count of bin i and its [lo, hi) range.
func (h *Histogram) Bin(i int) (count int, lo, hi float64) {
	return h.bins[i], h.min + float64(i)*h.width, h.min + float64(i+1)*h.width
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// String renders an ASCII bar chart, one line per non-empty bin.
func (h *Histogram) String() string {
	maxCount := 1
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		if c == 0 {
			continue
		}
		_, lo, hi := h.Bin(i)
		bar := strings.Repeat("#", 1+c*40/maxCount)
		fmt.Fprintf(&b, "%10.4g..%-10.4g %6d %s\n", lo, hi, c, bar)
	}
	if h.under > 0 {
		fmt.Fprintf(&b, "%21s %6d\n", "(underflow)", h.under)
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%21s %6d\n", "(overflow)", h.over)
	}
	return b.String()
}

// MeanCI returns the sample mean of xs and the half-width of its normal
// 95 % confidence interval (1.96·s/√n). With fewer than two observations
// the half-width is 0.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	if a.N() < 2 {
		return a.Mean(), 0
	}
	return a.Mean(), 1.96 * a.StdDev() / math.Sqrt(float64(a.N()))
}

// MedianOfMeans splits xs into k groups (in order) and returns the median
// of the group means — a robust location estimate for multi-seed results
// with occasional outlier runs.
func MedianOfMeans(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if k <= 1 || k >= len(xs) {
		return Median(xs)
	}
	means := make([]float64, 0, k)
	per := (len(xs) + k - 1) / k
	for i := 0; i < len(xs); i += per {
		end := i + per
		if end > len(xs) {
			end = len(xs)
		}
		means = append(means, Mean(xs[i:end]))
	}
	sort.Float64s(means)
	return Median(means)
}
