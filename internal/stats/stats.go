// Package stats provides the small statistical toolkit the metrics and
// benchmark layers use: streaming accumulators, percentiles, and
// time-series resampling.
package stats

import (
	"math"
	"sort"
)

// Accumulator is a streaming mean/variance/min/max tracker using
// Welford's algorithm. The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		a.min = math.Min(a.min, x)
		a.max = math.Max(a.max, x)
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean, or 0 with no observations.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation, or 0 with no observations.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation, or 0 with no observations.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance (n-1 denominator); 0 for
// fewer than two observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Sum returns the total of all observations.
func (a *Accumulator) Sum() float64 { return a.mean * float64(a.n) }

// Percentile returns the p-quantile (p in [0, 1]) of xs using linear
// interpolation between order statistics. It panics on an empty slice or
// p outside [0, 1]. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 1 {
		panic("stats: Percentile with p outside [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	idx := p * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Percentile(xs, 0.5) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// SeriesPoint is one sample of a time series.
type SeriesPoint struct {
	T float64 // sample time, seconds
	V float64 // value
}

// Series is an ordered sequence of samples. Append keeps it ordered as
// long as callers append with non-decreasing timestamps, which all
// simulator samplers do.
type Series struct {
	Name   string
	Points []SeriesPoint
}

// Append adds a sample. It panics if t precedes the last sample, catching
// out-of-order sampler bugs.
func (s *Series) Append(t, v float64) {
	if n := len(s.Points); n > 0 && t < s.Points[n-1].T {
		panic("stats: out-of-order series append")
	}
	s.Points = append(s.Points, SeriesPoint{T: t, V: v})
}

// At returns the value at time t using step interpolation (the value of
// the latest sample at or before t). It returns 0 before the first sample.
func (s *Series) At(t float64) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return 0
	}
	return s.Points[i-1].V
}

// Last returns the final sample value, or 0 if empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// Resample returns the series sampled at times start, start+step, ...,
// up to and including end (within half a step), using step interpolation.
func (s *Series) Resample(start, end, step float64) []SeriesPoint {
	if step <= 0 {
		panic("stats: non-positive resample step")
	}
	var out []SeriesPoint
	for t := start; t <= end+step/2; t += step {
		out = append(out, SeriesPoint{T: t, V: s.At(t)})
	}
	return out
}
