package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins of width 2
	for _, x := range []float64{0, 1.9, 2, 5, 9.99} {
		h.Add(x)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if c, _, _ := h.Bin(i); c != want {
			t.Errorf("bin %d = %d, want %d", i, c, want)
		}
	}
	if h.N() != 5 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d", h.Bins())
	}
	_, lo, hi := h.Bin(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bin 1 range = [%v, %v)", lo, hi)
	}
}

func TestHistogramOutliers(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-1)
	h.Add(10) // max is exclusive
	h.Add(100)
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Fatalf("outliers = %d, %d", under, over)
	}
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramTopEdgeRounding(t *testing.T) {
	// A value infinitesimally below max must land in the last bin, even
	// if float division rounds up.
	h := NewHistogram(0, 0.3, 3)
	h.Add(math.Nextafter(0.3, 0))
	if c, _, _ := h.Bin(2); c != 1 {
		t.Fatalf("top-edge value not in last bin")
	}
}

func TestHistogramAllInProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(0, 256, 16)
		for _, v := range vals {
			h.Add(float64(v))
		}
		total := 0
		for i := 0; i < h.Bins(); i++ {
			c, _, _ := h.Bin(i)
			total += c
		}
		under, over := h.Outliers()
		return total+under+over == len(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(1)
	h.Add(7)
	h.Add(-5)
	s := h.String()
	if !strings.Contains(s, "#") || !strings.Contains(s, "underflow") {
		t.Fatalf("String = %q", s)
	}
}

func TestHistogramValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"inverted": func() { NewHistogram(10, 0, 5) },
		"no bins":  func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-9 {
		t.Fatalf("mean = %v", mean)
	}
	want := 1.96 * math.Sqrt(32.0/7) / math.Sqrt(8)
	if math.Abs(hw-want) > 1e-9 {
		t.Fatalf("halfWidth = %v, want %v", hw, want)
	}
	if m, h := MeanCI([]float64{3}); m != 3 || h != 0 {
		t.Fatalf("single obs: %v ± %v", m, h)
	}
	if m, h := MeanCI(nil); m != 0 || h != 0 {
		t.Fatalf("empty: %v ± %v", m, h)
	}
}

func TestMedianOfMeans(t *testing.T) {
	// One outlier group must not drag the estimate.
	xs := []float64{1, 1, 1, 1, 100, 100, 1, 1, 1}
	mom := MedianOfMeans(xs, 3)
	if mom > 10 {
		t.Fatalf("MedianOfMeans = %v, outlier not suppressed", mom)
	}
	if MedianOfMeans(nil, 3) != 0 {
		t.Fatal("empty input not zero")
	}
	if got := MedianOfMeans([]float64{5, 7}, 1); got != 6 {
		t.Fatalf("k=1 should be plain median: %v", got)
	}
}
