package sim

import "testing"

// The event pool recycles fired and canceled events under a bumped
// generation. These tests pin the safety contract: a Handle kept past
// its event's lifetime must be inert, even after the underlying struct
// has been reissued to an unrelated caller.

func TestPoolReusesFiredEvents(t *testing.T) {
	e := NewEngine()
	h1 := e.Schedule(1, func() {})
	e.RunAll()
	h2 := e.Schedule(1, func() {})
	if h1.ev != h2.ev {
		t.Fatal("fired event was not recycled for the next Schedule")
	}
	if h1.gen == h2.gen {
		t.Fatal("recycled event reissued under the same generation")
	}
}

func TestPoolCancelAfterFire(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(1, func() {})
	e.RunAll()
	// h is stale; the struct is on the free list. Cancel must no-op.
	e.Cancel(h)
	fired := false
	h2 := e.Schedule(1, func() { fired = true })
	_ = h2
	e.RunAll()
	if !fired {
		t.Fatal("stale Cancel leaked onto the recycled event")
	}
}

func TestPoolCancelAfterRecycle(t *testing.T) {
	e := NewEngine()
	h1 := e.Schedule(1, func() {})
	e.RunAll()

	// The same struct now backs an unrelated event. A stale Cancel via
	// h1 must not touch it, and stale accessors must read as inert.
	fired := false
	h2 := e.Schedule(1, func() { fired = true })
	if h1.ev != h2.ev {
		t.Fatal("test setup: expected the pooled struct to be reissued")
	}
	e.Cancel(h1)
	if h1.Pending() || h1.Canceled() || h1.When() != 0 {
		t.Fatalf("stale handle not inert: Pending=%v Canceled=%v When=%v",
			h1.Pending(), h1.Canceled(), h1.When())
	}
	if !h2.Pending() {
		t.Fatal("stale Cancel canceled the recycled event")
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled event did not fire after a stale Cancel")
	}
}

func TestPoolCancelCanceledThenRecycled(t *testing.T) {
	e := NewEngine()
	h1 := e.Schedule(1, func() {})
	e.Cancel(h1)
	e.RunAll() // drops the canceled event, recycles the struct

	fired := false
	h2 := e.Schedule(1, func() { fired = true })
	e.Cancel(h1) // stale: generation bumped on recycle
	e.RunAll()
	if !fired {
		t.Fatal("stale Cancel of a canceled-then-recycled event leaked")
	}
	_ = h2
}

func TestRescheduleReusesEvent(t *testing.T) {
	e := NewEngine()
	fired := -1.0
	h := e.Schedule(1, func() { fired = e.Now() })
	if !e.Reschedule(h, 5) {
		t.Fatal("Reschedule of a pending event reported false")
	}
	if h.When() != 5 {
		t.Fatalf("When() after Reschedule = %v, want 5", h.When())
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d after Reschedule, want 1 (slot reuse)", got)
	}
	e.RunAll()
	if fired != 5 {
		t.Fatalf("rescheduled event fired at %v, want 5", fired)
	}
}

func TestRescheduleStaleOrCanceled(t *testing.T) {
	e := NewEngine()
	h := e.Schedule(1, func() {})
	e.RunAll()
	if e.Reschedule(h, 1) {
		t.Fatal("Reschedule of a fired (stale) handle reported true")
	}
	h2 := e.Schedule(1, func() {})
	e.Cancel(h2)
	if e.Reschedule(h2, 1) {
		t.Fatal("Reschedule of a canceled event reported true")
	}
	e.RunAll()
}

// Rescheduling must take a fresh sequence number so the event orders
// among equal timestamps exactly as cancel-plus-Schedule would.
func TestRescheduleOrdersAsFreshSchedule(t *testing.T) {
	for _, kind := range []SchedulerKind{Heap, Calendar} {
		e := NewEngineWith(kind)
		var got []string
		h := e.Schedule(1, func() { got = append(got, "moved") })
		e.Schedule(3, func() { got = append(got, "first") })
		e.Reschedule(h, 3) // same instant as "first", but rescheduled later
		e.RunAll()
		if len(got) != 2 || got[0] != "first" || got[1] != "moved" {
			t.Fatalf("kind %v: fire order %v, want [first moved]", kind, got)
		}
	}
}

func TestTimerResetReusesEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	tm := NewTimer(e, func() { count++ })
	tm.Reset(1)
	ev := tm.h.ev
	tm.Reset(2) // pending: must reuse the queued event in place
	if tm.h.ev != ev || !tm.h.Pending() {
		t.Fatal("Timer.Reset on a pending timer did not reuse its event")
	}
	if tm.Deadline() != 2 {
		t.Fatalf("Deadline = %v, want 2", tm.Deadline())
	}
	e.RunAll()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	if tm.Active() {
		t.Fatal("timer still Active after firing")
	}
	tm.Reset(1) // fired handle is stale: falls back to a fresh Schedule
	e.RunAll()
	if count != 2 {
		t.Fatalf("timer fired %d times after re-arm, want 2", count)
	}
}
