package sim

import "container/heap"

// heapQueue is the binary-heap scheduler: the original event queue, kept
// as the reference implementation (sim's analog of Radio.BruteForce).
// O(log n) per push/pop, ordered by (when, seq).
type heapQueue struct {
	events []*event
}

// eventLess is the one total order both schedulers implement: earlier
// timestamp first, FIFO (scheduling order) among equal timestamps.
func eventLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *heapQueue) Len() int           { return len(q.events) }
func (q *heapQueue) Less(i, j int) bool { return eventLess(q.events[i], q.events[j]) }
func (q *heapQueue) Swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].slot = i
	q.events[j].slot = j
}

func (q *heapQueue) Push(x any) {
	ev := x.(*event)
	ev.slot = len(q.events)
	q.events = append(q.events, ev)
}

func (q *heapQueue) Pop() any {
	n := len(q.events)
	ev := q.events[n-1]
	q.events[n-1] = nil
	q.events = q.events[:n-1]
	ev.slot = -1
	return ev
}

func (q *heapQueue) push(ev *event) { heap.Push(q, ev) }

func (q *heapQueue) popLE(limit Time) *event {
	if len(q.events) == 0 || q.events[0].when > limit {
		return nil
	}
	return heap.Pop(q).(*event)
}

func (q *heapQueue) remove(ev *event) { heap.Remove(q, ev.slot) }

func (q *heapQueue) size() int { return len(q.events) }

// sweep drops every canceled event, preserving the survivors' heap
// invariant by rebuilding in place.
func (q *heapQueue) sweep(recycle func(*event)) {
	kept := q.events[:0]
	for _, ev := range q.events {
		if ev.canceled {
			recycle(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(q.events); i++ {
		q.events[i] = nil
	}
	q.events = kept
	for i, ev := range q.events {
		ev.slot = i
	}
	heap.Init(q)
}
