package sim

// Timer is a restartable one-shot timer bound to an engine. Protocol code
// uses timers for HELLO periods, dwell wakeups, retransmissions, and the
// like. Unlike raw events, a Timer can be rescheduled: Reset cancels any
// outstanding firing and schedules a fresh one. The common reschedule
// path reuses the timer's queued event in place, so a steady Reset churn
// allocates nothing.
type Timer struct {
	engine *Engine
	fn     func()
	h      Handle
}

// NewTimer returns a stopped timer that runs fn when it fires.
func NewTimer(engine *Engine, fn func()) *Timer {
	if engine == nil || fn == nil {
		panic("sim: NewTimer with nil engine or callback")
	}
	return &Timer{engine: engine, fn: fn}
}

// Reset (re)schedules the timer to fire after delay seconds, canceling any
// previously scheduled firing.
func (t *Timer) Reset(delay Time) {
	if t.engine.Reschedule(t.h, delay) {
		return
	}
	t.h = t.engine.Schedule(delay, t.fn)
}

// Stop cancels a pending firing. Stopping an inactive timer is a no-op.
func (t *Timer) Stop() {
	t.engine.Cancel(t.h)
	t.h = Handle{}
}

// Active reports whether a firing is pending.
func (t *Timer) Active() bool { return t.h.Pending() }

// Deadline returns the absolute firing time. It is only meaningful when
// Active reports true.
func (t *Timer) Deadline() Time { return t.h.When() }

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	tickFn  func() // t.tick bound once; rescheduling it allocates nothing
	h       Handle
	stopped bool
}

// NewTicker starts a ticker whose first tick fires after one full period
// plus the given phase offset. A phase of zero gives strictly periodic
// ticks at t0+period, t0+2·period, .... Protocols use a small random phase
// to de-synchronize periodic traffic across hosts.
func NewTicker(engine *Engine, period, phase Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	t := &Ticker{engine: engine, period: period, fn: fn}
	t.tickFn = t.tick
	t.h = engine.Schedule(period+phase, t.tickFn)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped { // fn may stop the ticker
		return
	}
	t.h = t.engine.Schedule(t.period, t.tickFn)
}

// Stop permanently halts the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.engine.Cancel(t.h)
	t.h = Handle{}
}
