package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministicPerSeedAndName(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Stream("mobility").Float64() != b.Stream("mobility").Float64() {
			t.Fatal("same (seed, name) produced different sequences")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	// Drawing extra values from one stream must not perturb another.
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 50; i++ {
		a.Stream("traffic").Float64() // extra draws on a different stream
	}
	for i := 0; i < 20; i++ {
		if a.Stream("mobility").Float64() != b.Stream("mobility").Float64() {
			t.Fatal("draws on one stream perturbed another stream")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := true
	for i := 0; i < 10; i++ {
		if a.Stream("x").Float64() != b.Stream("x").Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRNGDifferentNamesDiffer(t *testing.T) {
	r := NewRNG(1)
	same := true
	x, y := r.Stream("x"), r.Stream("y")
	for i := 0; i < 10; i++ {
		if x.Float64() != y.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different stream names produced identical sequences")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(3)
	f := func(a, b int32) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		v := r.Uniform("u", lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGUniformDegenerate(t *testing.T) {
	r := NewRNG(3)
	if v := r.Uniform("u", 5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
}

func TestRNGUniformInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform with hi<lo did not panic")
		}
	}()
	NewRNG(1).Uniform("u", 2, 1)
}

func TestRNGExpPositiveMean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp("e", 2.0)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 1.8 || mean > 2.2 {
		t.Fatalf("Exp empirical mean %v, want ≈2.0", mean)
	}
}

func TestRNGIntnAndPerm(t *testing.T) {
	r := NewRNG(4)
	for i := 0; i < 100; i++ {
		if v := r.Intn("i", 10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	p := r.Perm("p", 8)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 8 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
	if r.Seed() != 4 {
		t.Fatalf("Seed() = %d, want 4", r.Seed())
	}
}
