package sim

import (
	"math/rand"
	"testing"
)

// schedulerTrace drives one engine through a seeded random workload of
// schedules, cancels, reschedules and nested scheduling, and records the
// exact fire sequence. Both scheduler kinds must produce identical
// traces: the calendar queue is only correct if its pop order is the
// same (when, seq) total order the heap reference implements.
func schedulerTrace(t *testing.T, kind SchedulerKind, seed int64) []float64 {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	e := NewEngineWith(kind)
	var fired []float64
	var handles []Handle

	// A recursive-ish workload: some events schedule follow-ups, which
	// exercises pool reuse under a live queue.
	var spawn func(depth int) func()
	spawn = func(depth int) func() {
		id := float64(len(fired))
		_ = id
		return func() {
			fired = append(fired, e.Now())
			if depth > 0 && r.Intn(3) == 0 {
				h := e.Schedule(r.Float64()*float64(r.Intn(50)+1), spawn(depth-1))
				handles = append(handles, h)
			}
		}
	}

	const n = 600
	for i := 0; i < n; i++ {
		switch r.Intn(10) {
		case 0: // burst of simultaneous events (FIFO tie-break)
			when := r.Float64() * 100
			for j := 0; j < 3; j++ {
				handles = append(handles, e.At(when, spawn(1)))
			}
		case 1: // far-future event (stresses calendar year jumps)
			handles = append(handles, e.Schedule(1000+r.Float64()*1e6, spawn(0)))
		case 2: // cancel a random earlier handle (often stale: no-op)
			if len(handles) > 0 {
				e.Cancel(handles[r.Intn(len(handles))])
			}
		case 3: // reschedule a random earlier handle
			if len(handles) > 0 {
				e.Reschedule(handles[r.Intn(len(handles))], r.Float64()*200)
			}
		case 4: // microsecond-scale clustering (stresses width adaptation)
			handles = append(handles, e.Schedule(r.Float64()*1e-4, spawn(1)))
		default:
			handles = append(handles, e.Schedule(r.Float64()*300, spawn(2)))
		}
	}
	e.Run(750) // leave some events beyond the horizon unfired
	e.RunAll()
	return fired
}

// TestSchedulerEquivalence is the cross-scheduler property test: for
// many random workloads, heap and calendar queue fire the identical
// sequence of timestamps in the identical order.
func TestSchedulerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		heap := schedulerTrace(t, Heap, seed)
		cal := schedulerTrace(t, Calendar, seed)
		if len(heap) != len(cal) {
			t.Fatalf("seed %d: heap fired %d events, calendar %d", seed, len(heap), len(cal))
		}
		for i := range heap {
			if heap[i] != cal[i] {
				t.Fatalf("seed %d: fire %d diverges: heap %v, calendar %v", seed, i, heap[i], cal[i])
			}
		}
	}
}

// TestCalendarResizeCycles forces the ring through growth and shrink
// while checking order against a sorted oracle.
func TestCalendarResizeCycles(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(7))
	var fired []float64
	// Grow well past several doublings...
	for i := 0; i < 500; i++ {
		e.Schedule(r.Float64()*50, func() { fired = append(fired, e.Now()) })
	}
	// ...drain most of it so the ring shrinks...
	e.Run(40)
	// ...and refill at a different timescale so the width readapts.
	for i := 0; i < 500; i++ {
		e.Schedule(100+r.Float64()*0.01, func() { fired = append(fired, e.Now()) })
	}
	e.RunAll()
	if len(fired) != 1000 {
		t.Fatalf("fired %d events, want 1000", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("order violated at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
}

// TestCalendarInfiniteTimestamp pins the overflow-window clamp: events
// at +Inf (or absurdly far out) must queue, order after everything
// finite, and only fire under RunAll.
func TestCalendarInfiniteTimestamp(t *testing.T) {
	for _, kind := range []SchedulerKind{Heap, Calendar} {
		e := NewEngineWith(kind)
		var got []string
		inf := 1e300
		e.At(inf, func() { got = append(got, "far") })
		e.Schedule(1, func() { got = append(got, "near") })
		e.Run(100)
		if len(got) != 1 || got[0] != "near" {
			t.Fatalf("kind %v: after Run(100) got %v, want [near]", kind, got)
		}
		e.RunAll()
		if len(got) != 2 || got[1] != "far" {
			t.Fatalf("kind %v: after RunAll got %v, want [near far]", kind, got)
		}
	}
}
