package sim

// Central registry of RNG stream names (DESIGN.md §8, §13).
//
// Every named stream in the simulator is minted here: a stream name
// partitions the deterministic random sequence, so two call sites that
// improvise the same string silently share a stream and perturb each
// other's draws, while a drifting ad-hoc name changes every figure
// downstream. Centralizing the names makes a collision a reviewable
// diff in one file and lets the rngstream analyzer reject any RNG call
// whose stream argument is not (a Sprintf over) one of these constants.
// The upcoming parallel-DES sharding derives per-shard stream suffixes
// from this registry, which is only sound if the registry is complete.
//
// The string values are frozen: they feed the FNV hash that seeds each
// stream, so renaming one changes every simulation result at the same
// seed.
const (
	// StreamPlacement draws initial host positions.
	StreamPlacement = "place"
	// StreamMobility is the per-host waypoint stream family; expand
	// with fmt.Sprintf(StreamMobility, hostIndex).
	StreamMobility = "mob.%d"
	// StreamFlows draws traffic flow endpoints.
	StreamFlows = "flows"
	// StreamFlowPhase jitters each flow's start phase.
	StreamFlowPhase = "flowphase"
	// StreamFaultJam places jamming fault epicenters.
	StreamFaultJam = "faults.jam"
	// StreamFaultPaging draws paging-loss coin flips.
	StreamFaultPaging = "faults.page"
	// StreamGAFAnnounce jitters GAF discovery announcements.
	StreamGAFAnnounce = "gaf.ann"
	// StreamSpanPhase staggers SPAN election phases.
	StreamSpanPhase = "span.phase"
	// StreamSpanBackoff draws SPAN announcement backoff.
	StreamSpanBackoff = "span.backoff"
	// StreamHelloPhase staggers the first HELLO of each host.
	StreamHelloPhase = "core.hellophase"
	// StreamHelloJitter jitters subsequent HELLO intervals.
	StreamHelloJitter = "core.hellojitter"
	// StreamRadioBackoff draws CSMA contention-window slots.
	StreamRadioBackoff = "radio.backoff"
	// StreamScengenDeploy draws generated host deployments (cluster
	// centers, per-host placement) for internal/scengen.
	StreamScengenDeploy = "scengen.deploy"
	// StreamScengenManhattan is the per-host street-mobility stream
	// family; expand with fmt.Sprintf(StreamScengenManhattan, hostIndex).
	StreamScengenManhattan = "scengen.manhattan.%d"
	// StreamScengenGroup is the group-mobility stream family: one stream
	// per group reference point and one per member's local motion;
	// expand with fmt.Sprintf(StreamScengenGroup, key) where key is
	// "ref.<group>" or "m.<hostIndex>".
	StreamScengenGroup = "scengen.group.%s"
	// StreamScengenTraffic draws generated traffic: flow endpoints,
	// start phases, and bursty on/off period lengths.
	StreamScengenTraffic = "scengen.traffic"
	// StreamShardAudit is the per-shard sampling-audit stream family of
	// the parallel coordinator (internal/shard): each synchronization
	// window, shard s draws from fmt.Sprintf(StreamShardAudit, s) to
	// pick which owned host gets its ownership and safe-horizon
	// invariants spot-checked. The draws feed no simulation decision —
	// results are byte-identical with auditing on or off — but the
	// names are registered here so the streams can never collide with
	// (and perturb) a result-bearing sequence.
	StreamShardAudit = "shard.audit.%d"
)

// StreamRegistry enumerates every registered stream name (format
// families appear once, unexpanded). The companion test asserts the
// entries are pairwise distinct so a new stream cannot silently collide
// with an existing sequence.
var StreamRegistry = []string{
	StreamPlacement,
	StreamMobility,
	StreamFlows,
	StreamFlowPhase,
	StreamFaultJam,
	StreamFaultPaging,
	StreamGAFAnnounce,
	StreamSpanPhase,
	StreamSpanBackoff,
	StreamHelloPhase,
	StreamHelloJitter,
	StreamRadioBackoff,
	StreamScengenDeploy,
	StreamScengenManhattan,
	StreamScengenGroup,
	StreamScengenTraffic,
	StreamShardAudit,
}
