package sim

import "testing"

// TestCancelCompactsQueue checks that mass cancellation shrinks the
// queue eagerly instead of carrying dead events until they surface at
// the heap top — and that compaction does not perturb the firing order
// or drop a live event.
func TestCancelCompactsQueue(t *testing.T) {
	e := NewEngine()
	const n = 200
	events := make([]Handle, n)
	var fired []int
	for i := 0; i < n; i++ {
		i := i
		events[i] = e.Schedule(float64(i), func() { fired = append(fired, i) })
	}
	// Cancel every index not divisible by 4: 150 of 200, well past the
	// half-queue threshold.
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			e.Cancel(events[i])
		}
	}
	// Compaction keeps the invariant "canceled ≤ half the queue", so the
	// queue can never exceed twice the live population (it would be the
	// full 200 without compaction).
	if live := n / 4; e.Pending() > 2*live {
		t.Fatalf("Pending = %d after mass cancel, want ≤ %d (twice the %d live events)", e.Pending(), 2*live, live)
	}
	e.RunAll()
	if len(fired) != n/4 {
		t.Fatalf("%d events fired, want %d", len(fired), n/4)
	}
	for j, i := range fired {
		if i != j*4 {
			t.Fatalf("firing order broken at %d: got event %d, want %d", j, i, j*4)
		}
	}
}

// TestCancelSmallQueueStaysLazy: below the compaction floor the queue
// keeps canceled events and drops them lazily at pop, which must still
// yield the right survivors.
func TestCancelSmallQueueStaysLazy(t *testing.T) {
	e := NewEngine()
	a := e.Schedule(1, func() {})
	ran := false
	e.Schedule(2, func() { ran = true })
	e.Cancel(a)
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 (tiny queues are not compacted)", e.Pending())
	}
	e.RunAll()
	if !ran {
		t.Fatal("surviving event did not fire")
	}
	if e.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1 (canceled event must not count)", e.Processed())
	}
}

// TestCancelAfterPopIsNoop: canceling an event that already fired (or
// was already discarded) must not corrupt the canceled-counter
// bookkeeping that drives compaction.
func TestCancelAfterPopIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.RunAll()
	e.Cancel(ev) // already fired: stale generation, counter must not move
	e.Cancel(ev) // and double-cancel is equally harmless
	for i := 0; i < 100; i++ {
		e.Schedule(float64(i), func() {})
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending = %d, want 100", e.Pending())
	}
	e.RunAll()
	if e.Processed() != 101 {
		t.Fatalf("Processed = %d, want 101", e.Processed())
	}
}
