package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a collection of named, independently-seeded random number streams.
//
// Simulations draw randomness for distinct concerns (mobility, traffic,
// backoff, placement, ...) from distinct streams so that adding draws to
// one concern does not perturb any other. Each stream is seeded from the
// root seed and the stream name, so a (seed, name) pair always yields the
// same sequence.
type RNG struct {
	seed    int64
	streams map[string]*rand.Rand
}

// NewRNG returns a stream collection rooted at seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, streams: make(map[string]*rand.Rand)}
}

// Seed returns the root seed.
func (r *RNG) Seed() int64 { return r.seed }

// Stream returns the named stream, creating it on first use.
func (r *RNG) Stream(name string) *rand.Rand {
	if s, ok := r.streams[name]; ok {
		return s
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	s := rand.New(rand.NewSource(r.seed ^ int64(h.Sum64())))
	r.streams[name] = s
	return s
}

// Uniform draws from [lo, hi) on the named stream. It panics if hi < lo.
func (r *RNG) Uniform(name string, lo, hi float64) float64 {
	if hi < lo {
		panic("sim: Uniform with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + r.Stream(name).Float64()*(hi-lo)
}

// Intn draws a uniform integer in [0, n) on the named stream.
func (r *RNG) Intn(name string, n int) int {
	return r.Stream(name).Intn(n)
}

// Exp draws an exponentially-distributed value with the given mean.
func (r *RNG) Exp(name string, mean float64) float64 {
	return r.Stream(name).ExpFloat64() * mean
}

// Perm returns a random permutation of [0, n) on the named stream.
func (r *RNG) Perm(name string, n int) []int {
	return r.Stream(name).Perm(n)
}
