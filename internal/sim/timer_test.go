package sim

import "testing"

func TestTimerFires(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	tm.Reset(2)
	if !tm.Active() {
		t.Fatal("Active() = false after Reset")
	}
	if tm.Deadline() != 2 {
		t.Fatalf("Deadline() = %v, want 2", tm.Deadline())
	}
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if tm.Active() {
		t.Fatal("Active() = true after firing")
	}
}

func TestTimerResetReplacesPending(t *testing.T) {
	e := NewEngine()
	var at []float64
	tm := NewTimer(e, func() { at = append(at, e.Now()) })
	tm.Reset(2)
	tm.Reset(5) // supersedes the t=2 firing
	e.RunAll()
	if len(at) != 1 || at[0] != 5 {
		t.Fatalf("fired at %v, want [5]", at)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Reset(1)
	tm.Stop()
	tm.Stop() // idempotent
	e.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopInactive(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e, func() {})
	tm.Stop() // no-op on never-started timer
	if tm.Active() {
		t.Fatal("Active() = true on never-started timer")
	}
	if tm.Deadline() != 0 {
		t.Fatalf("Deadline() = %v on inactive timer, want 0", tm.Deadline())
	}
}

func TestTimerResetFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		count++
		if count < 3 {
			tm.Reset(1)
		}
	})
	tm.Reset(1)
	e.Run(100)
	if count != 3 {
		t.Fatalf("self-resetting timer fired %d times, want 3", count)
	}
}

func TestNewTimerNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimer(nil, nil) did not panic")
		}
	}()
	NewTimer(nil, nil)
}

func TestTickerPeriodic(t *testing.T) {
	e := NewEngine()
	var at []float64
	tk := NewTicker(e, 2, 0, func() { at = append(at, e.Now()) })
	e.Run(7)
	tk.Stop()
	want := []float64{2, 4, 6}
	if len(at) != len(want) {
		t.Fatalf("ticks at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("ticks at %v, want %v", at, want)
		}
	}
}

func TestTickerPhase(t *testing.T) {
	e := NewEngine()
	var first float64 = -1
	NewTicker(e, 2, 0.5, func() {
		if first < 0 {
			first = e.Now()
		}
	})
	e.Run(3)
	if first != 2.5 {
		t.Fatalf("first tick at %v, want 2.5", first)
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 1, 0, func() {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run(100)
	if count != 2 {
		t.Fatalf("ticker fired %d times after Stop from callback, want 2", count)
	}
}

func TestTickerStopOutside(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := NewTicker(e, 1, 0, func() { count++ })
	e.Run(3.5)
	tk.Stop()
	e.Run(100)
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerNonPositivePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(period=0) did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, 0, func() {})
}

func TestTickerCountProperty(t *testing.T) {
	// Over a horizon H, a ticker with period p and phase f fires
	// floor((H-f)/p) times (first tick at p+f).
	for _, c := range []struct{ period, phase, horizon float64 }{
		{1, 0, 10},
		{2, 0.5, 10},
		{0.3, 0.1, 5},
		{5, 0, 4},
	} {
		e := NewEngine()
		n := 0
		NewTicker(e, c.period, c.phase, func() { n++ })
		e.Run(c.horizon)
		want := int((c.horizon - c.phase) / c.period)
		if want < 0 {
			want = 0
		}
		if n != want {
			t.Errorf("period=%v phase=%v horizon=%v: %d ticks, want %d",
				c.period, c.phase, c.horizon, n, want)
		}
	}
}
