package sim

import (
	"strings"
	"testing"
)

// TestStreamRegistryUnique pins the registry's core contract: no two
// registered names (and no two names after expanding a format family
// with the same index) may map to the same seeded stream.
func TestStreamRegistryUnique(t *testing.T) {
	seen := make(map[string]bool, len(StreamRegistry))
	for _, name := range StreamRegistry {
		if name == "" {
			t.Error("empty stream name registered")
		}
		if seen[name] {
			t.Errorf("stream name %q registered twice", name)
		}
		seen[name] = true
	}
}

// TestStreamFamiliesAreFormats: any name containing a verb must be a
// family expanded via Sprintf, and plain names must not contain one —
// passing an unexpanded format to Stream would silently mint a literal
// "mob.%d" stream.
func TestStreamFamiliesAreFormats(t *testing.T) {
	families := map[string]bool{
		StreamMobility:         true,
		StreamScengenManhattan: true,
		StreamScengenGroup:     true,
		StreamShardAudit:       true,
	}
	for _, name := range StreamRegistry {
		if strings.Contains(name, "%") != families[name] {
			t.Errorf("stream %q: %% in non-family name (or family not declared)", name)
		}
	}
}
