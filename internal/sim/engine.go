// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which makes runs exactly reproducible: given the same seed and the same
// sequence of Schedule calls, every run produces the identical trace.
//
// Time is a float64 number of seconds since the start of the simulation.
// All protocol and radio code in this repository runs inside engine events;
// nothing uses wall-clock time.
//
// # Event recycling
//
// Fired and canceled events return to a free list and are reused by later
// Schedule calls, so the steady-state path allocates nothing. Schedule and
// At therefore hand out a Handle — the event pointer plus the event's
// generation at scheduling time — instead of a raw pointer. Every recycle
// bumps the generation, so a stale Handle (kept after its event fired or
// was canceled and collected) no longer matches and Cancel, Reschedule and
// When on it are harmless no-ops rather than corruption of whatever event
// now occupies the recycled slot.
//
// # Schedulers
//
// Two interchangeable queue implementations order the events: a binary
// heap (the original implementation, kept byte-identical in behavior as
// the reference — the Radio.BruteForce of the event core) and a calendar
// queue (the default) that is O(1) amortized per operation, the same
// structure ns-2 uses. Both pop in exactly (when, seq) order, so runs are
// byte-identical across schedulers; internal/runner's equivalence test
// and the cross-scheduler property test in this package enforce that.
package sim

import (
	"fmt"
	"math"
)

// Time is a simulation timestamp in seconds.
type Time = float64

// event is a scheduled callback. The callback runs with the engine clock
// set to the event's timestamp. Events are pooled: after firing (or being
// canceled and collected) the struct is recycled for a later Schedule
// call under a bumped generation.
type event struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   func()
	gen  uint64 // incremented on every recycle; Handles must match it

	// slot is scheduler-private bookkeeping: the heap index for the heap
	// scheduler, the bucket index for the calendar queue; -1 when the
	// event is not queued.
	slot int
	// vidx is the calendar queue's virtual bucket index, computed once
	// per push. Both bucket membership and the window test derive from
	// it, so pop order never depends on float boundary rounding.
	vidx     int64
	canceled bool // canceled events stay queued but do not fire
}

// Handle identifies a scheduled event: the pooled event plus the
// generation it had when scheduled. The zero Handle refers to no event.
// A Handle goes stale once its event fires or is collected after Cancel;
// stale Handles are detected by the generation check and every operation
// on them is a no-op.
type Handle struct {
	ev  *event
	gen uint64
}

// live reports whether the handle still names the incarnation it was
// created for (the event is queued: fired/collected events are recycled
// immediately, which bumps the generation).
func (h Handle) live() bool { return h.ev != nil && h.ev.gen == h.gen }

// Pending reports whether the event is still queued to fire: not yet
// fired, not canceled, not stale.
func (h Handle) Pending() bool { return h.live() && !h.ev.canceled }

// When returns the simulation time at which the event fires. It returns
// 0 when the handle is stale (the event already fired or was collected).
func (h Handle) When() Time {
	if !h.live() {
		return 0
	}
	return h.ev.when
}

// Canceled reports whether Cancel was called on the (still queued)
// event. Stale handles report false.
func (h Handle) Canceled() bool { return h.live() && h.ev.canceled }

// scheduler is the event queue contract shared by the heap reference and
// the calendar queue. Push/pop maintain an exact (when, seq) total
// order; remove detaches a queued event (the Reschedule fast path);
// sweep drops every canceled event in one pass (heap compaction).
type scheduler interface {
	push(ev *event)
	// popLE removes and returns the minimum event if its timestamp is
	// ≤ limit, else nil (leaving the queue untouched).
	popLE(limit Time) *event
	remove(ev *event)
	size() int
	sweep(recycle func(*event))
}

// SchedulerKind selects the event queue implementation.
type SchedulerKind int

const (
	// Calendar is the default: a calendar queue, O(1) amortized per
	// event with bucket-width adaptation (the ns-2 scheduler).
	Calendar SchedulerKind = iota
	// Heap is the binary-heap reference implementation. It exists as
	// the oracle for the equivalence tests and for debugging, exactly
	// like Radio.BruteForce on the radio path.
	Heap
)

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	sched   scheduler
	nextSeq uint64
	running bool
	stopped bool

	// processed counts events that actually fired (excludes canceled).
	processed uint64
	// canceled counts queued events whose Cancel flag is set; it drives
	// queue compaction so timer-heavy protocols cannot bloat the queue.
	canceled int

	// free recycles fired/canceled event structs; see the package note
	// on event recycling.
	free []*event
}

// compactFloor is the queue size below which Cancel never compacts:
// tiny queues are cheap to carry and compacting them would just churn.
const compactFloor = 64

// NewEngine returns an engine with the clock at zero, an empty queue,
// and the default (calendar queue) scheduler.
func NewEngine() *Engine {
	return NewEngineWith(Calendar)
}

// NewEngineWith returns an engine using the given scheduler. Both kinds
// produce byte-identical runs; Heap is the reference implementation.
func NewEngineWith(kind SchedulerKind) *Engine {
	e := &Engine{}
	switch kind {
	case Heap:
		e.sched = &heapQueue{}
	default:
		e.sched = newCalendarQueue()
	}
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of queued events, including canceled ones
// that have not yet been discarded.
func (e *Engine) Pending() int { return e.sched.size() }

// Schedule queues fn to run after delay seconds. A negative delay is an
// error in the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay Time, fn func()) Handle {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute time when. Scheduling in the past panics.
func (e *Engine) At(when Time, fn func()) Handle {
	if when < e.now || math.IsNaN(when) {
		panic(fmt.Sprintf("sim: At with time %v in the past of %v", when, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.when, ev.seq, ev.fn = when, e.nextSeq, fn
	e.nextSeq++
	e.sched.push(ev)
	return Handle{ev: ev, gen: ev.gen}
}

// recycle returns a no-longer-queued event to the free list. The
// generation bump is what invalidates every outstanding Handle.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	ev.slot = -1
	e.free = append(e.free, ev)
}

// Cancel marks an event so it will not fire. Canceling an event that has
// already fired (a stale handle — detected by the generation check), or
// canceling twice, is a harmless no-op.
//
// Canceled events normally stay queued until they reach the queue head
// and are dropped lazily; when they come to outnumber live events,
// Cancel compacts the whole queue in one O(n) pass so Pending() and
// queue operations track the live population, not the churn.
func (e *Engine) Cancel(h Handle) {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.canceled {
		return
	}
	ev.canceled = true
	e.canceled++
	if e.canceled > e.sched.size()/2 && e.sched.size() >= compactFloor {
		e.compact()
	}
}

// Reschedule moves a still-pending event to fire after delay seconds
// from now, reusing its queue slot instead of canceling and allocating a
// fresh event. The rescheduled firing takes a new sequence number, so it
// orders among equal timestamps exactly as a cancel-plus-Schedule would.
// It reports false — and does nothing — when the handle is stale or the
// event was canceled; the caller should fall back to Schedule.
func (e *Engine) Reschedule(h Handle, delay Time) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.canceled {
		return false
	}
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Reschedule with invalid delay %v at t=%v", delay, e.now))
	}
	e.sched.remove(ev)
	ev.when = e.now + delay
	ev.seq = e.nextSeq
	e.nextSeq++
	e.sched.push(ev)
	return true
}

// compact removes every canceled event from the queue in one pass.
// Ordering of the survivors is unaffected: (when, seq) is a total order,
// so the pop sequence is a pure function of the queued member set.
func (e *Engine) compact() {
	e.sched.sweep(e.recycle)
	e.canceled = 0
}

// Stop requests that Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether the last Run returned because Stop was
// called. Run clears the flag on entry, so a windowed driver that calls
// Run repeatedly (internal/shard's coordinator) can distinguish "window
// exhausted, keep going" from "the simulation asked to end".
func (e *Engine) Stopped() bool { return e.stopped }

// Run processes events in timestamp order until the queue is empty, the
// clock would pass until, or Stop is called. Events with timestamp exactly
// equal to until still fire. It returns the final clock value, which is
// until when the run ended because simulated time was exhausted.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopped = false

	for !e.stopped {
		ev := e.sched.popLE(until)
		if ev == nil {
			break
		}
		if ev.canceled {
			e.canceled--
			e.recycle(ev)
			continue
		}
		e.now = ev.when
		e.processed++
		fn := ev.fn
		// Recycle before running: the callback may Schedule and get
		// this very struct back, under a new generation.
		e.recycle(ev)
		fn()
	}
	if !e.stopped && e.now < until && !math.IsInf(until, 1) {
		e.now = until
	}
	return e.now
}

// RunAll processes every queued event regardless of timestamp. It is meant
// for tests; simulations should use Run with an explicit horizon.
func (e *Engine) RunAll() Time {
	return e.Run(math.Inf(1))
}
