// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which makes runs exactly reproducible: given the same seed and the same
// sequence of Schedule calls, every run produces the identical trace.
//
// Time is a float64 number of seconds since the start of the simulation.
// All protocol and radio code in this repository runs inside engine events;
// nothing uses wall-clock time.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in seconds.
type Time = float64

// Event is a scheduled callback. The callback runs with the engine clock
// set to the event's timestamp.
type Event struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among equal timestamps
	fn   func()

	index    int  // heap index, -1 when not queued
	canceled bool // canceled events stay queued but do not fire
}

// When returns the simulation time at which the event fires (or fired).
func (e *Event) When() Time { return e.when }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue implements heap.Interface ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	running bool
	stopped bool

	// processed counts events that actually fired (excludes canceled).
	processed uint64
	// canceled counts queued events whose Cancel flag is set; it drives
	// heap compaction so timer-heavy protocols cannot bloat the queue.
	canceled int
}

// compactFloor is the queue size below which Cancel never compacts:
// tiny heaps are cheap to carry and compacting them would just churn.
const compactFloor = 64

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events that have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of queued events, including canceled ones
// that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay seconds. A negative delay is an
// error in the caller; Schedule panics to surface the bug immediately.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: Schedule with invalid delay %v at t=%v", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At queues fn to run at absolute time when. Scheduling in the past panics.
func (e *Engine) At(when Time, fn func()) *Event {
	if when < e.now || math.IsNaN(when) {
		panic(fmt.Sprintf("sim: At with time %v in the past of %v", when, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Event{when: when, seq: e.nextSeq, fn: fn, index: -1}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel marks an event so it will not fire. Canceling an event that has
// already fired, or canceling twice, is a harmless no-op.
//
// Canceled events normally stay queued until they reach the heap top
// and are dropped lazily; when they come to outnumber live events,
// Cancel compacts the whole queue in one O(n) pass so Pending() and
// heap operations track the live population, not the churn.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index < 0 {
		return // already popped: nothing queued to account for
	}
	e.canceled++
	if e.canceled > len(e.queue)/2 && len(e.queue) >= compactFloor {
		e.compact()
	}
}

// compact removes every canceled event from the queue and re-heapifies.
// Ordering of the survivors is unaffected: (when, seq) is a total order,
// so the heap's pop sequence is a pure function of its member set.
func (e *Engine) compact() {
	kept := e.queue[:0]
	for _, ev := range e.queue {
		if ev.canceled {
			ev.index = -1
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = kept
	for i, ev := range e.queue {
		ev.index = i
	}
	heap.Init(&e.queue)
	e.canceled = 0
}

// Stop requests that Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the queue is empty, the
// clock would pass until, or Stop is called. Events with timestamp exactly
// equal to until still fire. It returns the final clock value, which is
// until when the run ended because simulated time was exhausted.
func (e *Engine) Run(until Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopped = false

	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.when > until {
			break
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			e.canceled--
			continue
		}
		e.now = ev.when
		e.processed++
		ev.fn()
	}
	if !e.stopped && e.now < until && !math.IsInf(until, 1) {
		e.now = until
	}
	return e.now
}

// RunAll processes every queued event regardless of timestamp. It is meant
// for tests; simulations should use Run with an explicit horizon.
func (e *Engine) RunAll() Time {
	return e.Run(math.Inf(1))
}
