package sim

// calendarQueue is the default scheduler: a calendar queue in the style
// of Brown (CACM '88) and the ns-2 scheduler. Simulated time is divided
// into fixed-width windows ("days"); window v hashes to bucket v&mask on
// a power-of-two ring ("year"), and each bucket keeps its events sorted
// by (when, seq). Dequeue scans forward from the current window and pops
// bucket fronts; with the bucket width adapted to the event density,
// both enqueue and dequeue are O(1) amortized.
//
// Determinism: an event's virtual window index vidx is computed once, at
// push, and both bucket placement and the dequeue window test use that
// integer — never a recomputed float boundary. vindex is monotone in
// when, events sharing a window share a bucket (sorted), so the pop
// sequence is exactly the (when, seq) total order: byte-identical to the
// heap reference regardless of how float rounding assigns boundary
// events to windows.
type calendarQueue struct {
	buckets [][]*event
	mask    int     // len(buckets)-1; len is a power of two
	width   float64 // seconds per window
	n       int     // queued events, including canceled ones
	curV    int64   // current scan window; invariant: curV ≤ min queued vidx
}

const (
	// calMinBuckets is the smallest ring; resize never shrinks below it.
	calMinBuckets = 32
	// calMaxVirtual clamps the virtual window index so that huge or
	// infinite timestamps stay representable: everything at or beyond
	// calMaxVirtual windows shares one overflow window (still sorted
	// within its bucket, so order is preserved). 2^48 windows at the
	// minimum width is ~78 hours of simulated time per 2^48 slots —
	// unreachable by the scan, only by the direct-min jump.
	calMaxVirtual = 1 << 48
	// calMinWidth keeps when/width finite and the virtual index sane
	// even if the sampled event spacing collapses to nanoseconds.
	calMinWidth = 1e-9
	// calSample is how many of the smallest queued events the width
	// adaptation inspects on resize.
	calSample = 32
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*event, calMinBuckets),
		mask:    calMinBuckets - 1,
		width:   1.0,
	}
}

// vindex maps a timestamp to its virtual window. Monotone in when;
// clamps non-finite and astronomically large values to the overflow
// window before any float→int conversion can misbehave.
func (q *calendarQueue) vindex(when Time) int64 {
	v := when / q.width
	if !(v < calMaxVirtual) { // also catches +Inf
		return calMaxVirtual
	}
	return int64(v)
}

// insert places ev into its bucket in (when, seq) order, scanning from
// the back: the common case — timestamps arriving roughly in order —
// appends in O(1).
func (q *calendarQueue) insert(ev *event) {
	v := q.vindex(ev.when)
	ev.vidx = v
	i := int(v & int64(q.mask))
	b := q.buckets[i]
	j := len(b)
	for j > 0 && eventLess(ev, b[j-1]) {
		j--
	}
	b = append(b, nil)
	copy(b[j+1:], b[j:])
	b[j] = ev
	q.buckets[i] = b
	ev.slot = i
}

func (q *calendarQueue) push(ev *event) {
	q.insert(ev)
	q.n++
	// Back the scan up if this event's window precedes it (or the
	// queue was empty), preserving the curV ≤ min-vidx invariant.
	if q.n == 1 || ev.vidx < q.curV {
		q.curV = ev.vidx
	}
	if q.n > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

func (q *calendarQueue) popLE(limit Time) *event {
	if q.n == 0 {
		return nil
	}
	for {
		// Scan up to one year of windows. The invariant guarantees the
		// first front whose vidx matches the scan window is the global
		// minimum: fronts are per-bucket minima (buckets sorted, vindex
		// monotone), and no queued event lives in an earlier window.
		for k := 0; k <= q.mask; k++ {
			i := int(q.curV & int64(q.mask))
			b := q.buckets[i]
			if len(b) > 0 && b[0].vidx <= q.curV {
				ev := b[0]
				if ev.when > limit {
					return nil
				}
				copy(b, b[1:])
				b[len(b)-1] = nil
				q.buckets[i] = b[:len(b)-1]
				ev.slot = -1
				q.n--
				if q.n < len(q.buckets)/2 && len(q.buckets) > calMinBuckets {
					q.resize(len(q.buckets) / 2)
				}
				return ev
			}
			q.curV++
		}
		// A whole year with nothing due: the next event is more than a
		// year of windows away. Jump straight to its window.
		min := q.minEvent()
		if min.when > limit {
			return nil
		}
		q.curV = min.vidx
	}
}

// minEvent returns the (when, seq)-minimum queued event by comparing
// bucket fronts. O(buckets); only used for the year-jump fallback and
// for re-establishing the scan window after a resize. Caller ensures
// n > 0.
func (q *calendarQueue) minEvent() *event {
	var min *event
	for _, b := range q.buckets {
		if len(b) > 0 && (min == nil || eventLess(b[0], min)) {
			min = b[0]
		}
	}
	return min
}

func (q *calendarQueue) remove(ev *event) {
	b := q.buckets[ev.slot]
	for j := range b {
		if b[j] == ev {
			copy(b[j:], b[j+1:])
			b[len(b)-1] = nil
			q.buckets[ev.slot] = b[:len(b)-1]
			break
		}
	}
	ev.slot = -1
	q.n--
}

func (q *calendarQueue) size() int { return q.n }

func (q *calendarQueue) sweep(recycle func(*event)) {
	for i, b := range q.buckets {
		kept := b[:0]
		for _, ev := range b {
			if ev.canceled {
				q.n--
				recycle(ev)
			} else {
				kept = append(kept, ev)
			}
		}
		for j := len(kept); j < len(b); j++ {
			b[j] = nil
		}
		q.buckets[i] = kept
	}
	if q.n < len(q.buckets)/2 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
}

// resize rebuilds the ring with nb buckets and a freshly adapted width,
// then re-establishes the scan window at the minimum event. Triggered
// when the population exceeds twice the bucket count (grow) or falls
// below half (shrink), so the amortized cost per event stays O(1).
func (q *calendarQueue) resize(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	q.width = q.newWidth()
	old := q.buckets
	q.buckets = make([][]*event, nb)
	q.mask = nb - 1
	for _, b := range old {
		for _, ev := range b {
			q.insert(ev)
		}
	}
	q.curV = 0
	if q.n > 0 {
		q.curV = q.minEvent().vidx
	}
}

// newWidth estimates the bucket width as three times the average gap
// between the calSample earliest queued events, discarding outlier gaps
// larger than twice the raw average (Brown's refinement). Falls back to
// the current width when the population is too small or the sampled
// events are simultaneous. Deterministic: the sample is the multiset of
// smallest timestamps, independent of bucket iteration order.
func (q *calendarQueue) newWidth() float64 {
	if q.n < 2 {
		return q.width
	}
	k := calSample
	if q.n < k {
		k = q.n
	}
	sample := make([]float64, 0, k)
	for _, b := range q.buckets {
		for _, ev := range b {
			w := ev.when
			if len(sample) == k {
				if w >= sample[k-1] {
					continue
				}
				sample = sample[:k-1]
			}
			j := len(sample)
			sample = append(sample, 0)
			for j > 0 && sample[j-1] > w {
				sample[j] = sample[j-1]
				j--
			}
			sample[j] = w
		}
	}
	span := sample[len(sample)-1] - sample[0]
	if span <= 0 {
		return q.width
	}
	avg := span / float64(len(sample)-1)
	sum, cnt := 0.0, 0
	for i := 1; i < len(sample); i++ {
		if gap := sample[i] - sample[i-1]; gap <= 2*avg {
			sum += gap
			cnt++
		}
	}
	if cnt > 0 && sum > 0 {
		avg = sum / float64(cnt)
	}
	w := 3 * avg
	if w < calMinWidth {
		w = calMinWidth
	}
	return w
}
