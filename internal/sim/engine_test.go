package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineClockAdvancesDuringEvents(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.Schedule(2.5, func() { at = e.Now() })
	e.RunAll()
	if at != 2.5 {
		t.Fatalf("Now() inside event = %v, want 2.5", at)
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	end := e.Run(5)
	if fired != 1 {
		t.Fatalf("fired %d events before horizon, want 1", fired)
	}
	if end != 5 {
		t.Fatalf("Run returned %v, want 5", end)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Resuming past the horizon fires the rest.
	e.Run(20)
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}

func TestEngineEventAtHorizonFires(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() { fired = true })
	e.Run(5)
	if !fired {
		t.Fatal("event scheduled exactly at horizon did not fire")
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(Handle{})
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if ev.Canceled() {
		t.Fatal("Canceled() = true on a stale handle (event was recycled)")
	}
}

func TestEngineCancelFromWithinEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	var ev Handle
	e.Schedule(1, func() { e.Cancel(ev) })
	ev = e.Schedule(2, func() { fired = true })
	e.RunAll()
	if fired {
		t.Fatal("event canceled by an earlier event still fired")
	}
}

func TestEngineScheduleFromWithinEvent(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		e.Schedule(1, func() { times = append(times, e.Now()) })
	})
	e.RunAll()
	if len(times) != 1 || times[0] != 2 {
		t.Fatalf("nested event fired at %v, want [2]", times)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++; e.Stop() })
	e.Schedule(2, func() { fired++ })
	e.Run(10)
	if fired != 1 {
		t.Fatalf("fired %d events after Stop, want 1", fired)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.RunAll()
}

func TestEngineNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(NaN) did not panic")
		}
	}()
	NewEngine().Schedule(math.NaN(), func() {})
}

func TestEngineNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil fn) did not panic")
		}
	}()
	NewEngine().At(1, nil)
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	e.Cancel(ev)
	e.RunAll()
	if e.Processed() != 1 {
		t.Fatalf("Processed() = %d, want 1 (canceled events excluded)", e.Processed())
	}
}

// Property: for any batch of delays, pop order is non-decreasing in time.
func TestEnginePopOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []float64
		for _, d := range delays {
			when := float64(d) / 16
			e.Schedule(when, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		return sort.Float64sAreSorted(fired) && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved schedule/cancel keeps ordering and fires exactly
// the non-canceled events.
func TestEngineCancelProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		e := NewEngine()
		fired := make(map[int]bool)
		events := make([]Handle, 0, n)
		for i := 0; i < int(n); i++ {
			i := i
			events = append(events, e.Schedule(r.Float64()*100, func() { fired[i] = true }))
		}
		canceled := make(map[int]bool)
		for i, ev := range events {
			if r.Intn(3) == 0 {
				e.Cancel(ev)
				canceled[i] = true
			}
		}
		e.RunAll()
		for i := range events {
			if canceled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllReturnsLastEventTime(t *testing.T) {
	e := NewEngine()
	e.Schedule(3.25, func() {})
	if end := e.RunAll(); end != 3.25 {
		t.Fatalf("RunAll() = %v, want 3.25", end)
	}
}
