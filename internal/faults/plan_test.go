package faults

import (
	"path/filepath"
	"strings"
	"testing"
)

// validatePlan runs Validate against a fixed 10-host, 1000 m, 100 s
// scenario, the frame all rejection cases below are phrased in.
func validatePlan(p Plan) error { return p.Validate(10, 1000, 100) }

func TestValidateRejectsBadPlans(t *testing.T) {
	region := Region{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"crash host out of range", Plan{Crashes: []Crash{{Host: 10, At: 5}}}, "out of range"},
		{"crash negative host", Plan{Crashes: []Crash{{Host: -1, At: 5}}}, "out of range"},
		{"crash beyond duration", Plan{Crashes: []Crash{{Host: 0, At: 101}}}, "outside [0, 100]"},
		{"crash negative time", Plan{Crashes: []Crash{{Host: 0, At: -1}}}, "outside [0, 100]"},
		{"crash negative downtime", Plan{Crashes: []Crash{{Host: 0, At: 5, Downtime: -1}}}, "negative downtime"},
		{"shock zero fraction", Plan{Shocks: []BatteryShock{{Host: 0, At: 5}}}, "fraction"},
		{"shock fraction above one", Plan{Shocks: []BatteryShock{{Host: 0, At: 5, Fraction: 1.5}}}, "fraction"},
		{"shock host out of range", Plan{Shocks: []BatteryShock{{Host: 99, At: 5, Fraction: 0.5}}}, "out of range"},
		{"jam negative start", Plan{Jams: []Jam{{Region: region, From: -1, Until: 10, DropProb: 1}}}, "negative start"},
		{"jam empty window", Plan{Jams: []Jam{{Region: region, From: 10, Until: 10, DropProb: 1}}}, "empty"},
		{"jam beyond duration", Plan{Jams: []Jam{{Region: region, From: 10, Until: 200, DropProb: 1}}}, "beyond"},
		{"jam probability above one", Plan{Jams: []Jam{{Region: region, From: 1, Until: 10, DropProb: 1.1}}}, "probability"},
		{"jam negative probability", Plan{Jams: []Jam{{Region: region, From: 1, Until: 10, DropProb: -0.1}}}, "probability"},
		{"jam empty region", Plan{Jams: []Jam{{Region: Region{MinX: 5, MinY: 5, MaxX: 5, MaxY: 9}, From: 1, Until: 10, DropProb: 1}}}, "empty region"},
		{"jam region outside area", Plan{Jams: []Jam{{Region: Region{MinX: 900, MinY: 900, MaxX: 1100, MaxY: 1100}, From: 1, Until: 10, DropProb: 1}}}, "outside"},
		{"paging loss bad probability", Plan{PagingLoss: []PagingLoss{{From: 1, Until: 10, DropProb: 2}}}, "probability"},
		{"paging loss empty window", Plan{PagingLoss: []PagingLoss{{From: 10, Until: 5, DropProb: 0.5}}}, "empty"},
		{"gps zero error", Plan{GPSErrors: []GPSError{{From: 1, Until: 10}}}, "max error"},
		{"gps negative resample", Plan{GPSErrors: []GPSError{{From: 1, Until: 10, MaxMeters: 5, Resample: -1}}}, "resample"},
		{"gps host out of range", Plan{GPSErrors: []GPSError{{From: 1, Until: 10, MaxMeters: 5, Hosts: []int{10}}}}, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validatePlan(c.plan)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestValidateAcceptsNilAndZeroPlans(t *testing.T) {
	var nilPlan *Plan
	if err := nilPlan.Validate(10, 1000, 100); err != nil {
		t.Fatalf("nil plan: %v", err)
	}
	if err := validatePlan(Plan{}); err != nil {
		t.Fatalf("zero plan: %v", err)
	}
	if !nilPlan.Empty() || !(&Plan{}).Empty() {
		t.Fatal("nil/zero plan not Empty")
	}
	if (&Plan{Crashes: []Crash{{Host: 0, At: 1}}}).Empty() {
		t.Fatal("plan with a crash is Empty")
	}
}

func TestPresetsAreValid(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Preset(name, 50, 1000, 600)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		if p.Empty() {
			t.Errorf("preset %s is empty", name)
		}
		if err := p.Validate(50, 1000, 600); err != nil {
			t.Errorf("preset %s invalid for its own dimensions: %v", name, err)
		}
	}
	if _, err := Preset("nope", 50, 1000, 600); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestChurnPresetWithFewHosts(t *testing.T) {
	// Fewer hosts than crash slots must not produce out-of-range indices.
	p, err := Preset("churn", 2, 1000, 600)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(2, 1000, 600); err != nil {
		t.Fatalf("churn on 2 hosts invalid: %v", err)
	}
}

func TestWindows(t *testing.T) {
	p := &Plan{
		Crashes: []Crash{
			{Host: 0, At: 10, Downtime: 5},
			{Host: 1, At: 50}, // permanent: extends to the duration
		},
		Shocks: []BatteryShock{{Host: 0, At: 40, Fraction: 0.5}}, // instantaneous
		Jams: []Jam{{
			Region: Region{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
			From:   20, Until: 30, DropProb: 1,
		}},
	}
	got := p.Windows(100)
	want := []Window{{From: 10, Until: 15}, {From: 50, Until: 100}, {From: 20, Until: 30}}
	if len(got) != len(want) {
		t.Fatalf("Windows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if ws := (*Plan)(nil).Windows(100); ws != nil {
		t.Fatalf("nil plan windows = %v", ws)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p, err := Preset("mixed", 50, 1000, 600)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Crashes) != len(p.Crashes) || len(back.Shocks) != len(p.Shocks) ||
		len(back.Jams) != len(p.Jams) || len(back.PagingLoss) != len(p.PagingLoss) ||
		len(back.GPSErrors) != len(p.GPSErrors) {
		t.Fatalf("round trip lost faults: %+v vs %+v", back, p)
	}
	if back.Crashes[0] != p.Crashes[0] || back.Jams[0] != p.Jams[0] {
		t.Fatalf("round trip changed values: %+v vs %+v", back.Crashes[0], p.Crashes[0])
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestResolve(t *testing.T) {
	p, err := Resolve("gateway-crash", 50, 1000, 600)
	if err != nil || len(p.Crashes) != 1 {
		t.Fatalf("preset resolve: %v, %+v", err, p)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	fromFile, err := Resolve(path, 50, 1000, 600)
	if err != nil || len(fromFile.Crashes) != 1 {
		t.Fatalf("file resolve: %v, %+v", err, fromFile)
	}
	if _, err := Resolve("notapreset", 50, 1000, 600); err == nil ||
		!strings.Contains(err.Error(), "gateway-crash") {
		t.Fatalf("bad spec error should name the presets, got: %v", err)
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{MinX: 10, MinY: 20, MaxX: 30, MaxY: 40}
	for _, c := range []struct {
		x, y float64
		in   bool
	}{
		{20, 30, true},
		{10, 20, true}, // inclusive bounds
		{30, 40, true},
		{9.9, 30, false},
		{20, 40.1, false},
	} {
		if got := r.Contains(c.x, c.y); got != c.in {
			t.Errorf("Contains(%g, %g) = %v, want %v", c.x, c.y, got, c.in)
		}
	}
}
