// Package faults implements declarative, deterministic fault injection
// for the simulator: a Plan schedules typed fault events — node
// crash/recover, battery shocks, spatial jamming, RAS paging loss, and
// GPS position error — through the discrete-event engine, so the
// protocol's robustness machinery (§3's RETIRE on exhaustion and the
// no-gateway re-election) can be exercised and measured instead of
// merely unit-tested.
//
// Determinism contract: every probabilistic decision draws from
// dedicated named streams of the run's seeded sim.RNG ("faults.jam",
// "faults.page"), and GPS noise is a pure hash of (seed, host, epoch) —
// no wall clock, no global randomness, no map iteration. Two runs of
// the same scenario with the same plan are byte-identical.
package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Region is an axis-aligned rectangle in the simulation plane, in
// meters, with (0, 0) at the south-west corner.
type Region struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Contains reports whether the point (x, y) lies inside the region
// (inclusive bounds).
func (r Region) Contains(x, y float64) bool {
	return x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY
}

// Crash powers a host off at time At: it detaches from the radio channel
// and the RAS bus, its protocol state is dropped, and — if Downtime is
// positive — it rejoins cold (fresh protocol, empty tables) after that
// long. Downtime 0 means the host never recovers.
type Crash struct {
	// Host is the index of the energy-limited host to crash.
	Host int `json:"host"`
	// AnyGateway, when true, crashes the lowest-index host currently
	// serving as a gateway at time At instead of the fixed Host index;
	// Host is the fallback when no host is a gateway (e.g. under AODV).
	// This is how a plan guarantees it hits a gateway without knowing
	// the election outcome in advance.
	AnyGateway bool    `json:"any_gateway,omitempty"`
	At         float64 `json:"at"`
	Downtime   float64 `json:"downtime"`
}

// BatteryShock instantly drains a fraction of the host's full charge
// (R_brc drops by Fraction), modeling battery damage or a sensing load
// outside the radio model. A shock that empties the battery kills the
// host through the normal death path.
type BatteryShock struct {
	Host     int     `json:"host"`
	At       float64 `json:"at"`
	Fraction float64 `json:"fraction"`
}

// Jam corrupts frames whose sender or receiver lies inside Region during
// [From, Until): each such reception is independently dropped with
// probability DropProb (1 = total blackout). Receivers still pay the
// reception energy, exactly as with a real collision.
type Jam struct {
	Region   Region  `json:"region"`
	From     float64 `json:"from"`
	Until    float64 `json:"until"`
	DropProb float64 `json:"drop_prob"`
}

// PagingLoss makes the RAS paging channel lossy during [From, Until):
// each wakeup that would have been delivered is independently missed
// with probability DropProb.
type PagingLoss struct {
	From     float64 `json:"from"`
	Until    float64 `json:"until"`
	DropProb float64 `json:"drop_prob"`
}

// GPSError adds bounded position noise to the hosts' GPS readings during
// [From, Until): the reported position (which feeds grid membership,
// distance-to-center election fields, and dwell estimates) is the true
// position plus an offset uniform in [-MaxMeters, MaxMeters]² that is
// redrawn every Resample seconds. The radio keeps using true positions —
// only the protocol's view of geography degrades.
type GPSError struct {
	From      float64 `json:"from"`
	Until     float64 `json:"until"`
	MaxMeters float64 `json:"max_meters"`
	// Resample is the seconds between offset redraws; 0 means one fixed
	// offset per host for the whole window.
	Resample float64 `json:"resample,omitempty"`
	// Hosts restricts the error to the given host indices; empty means
	// every energy-limited host.
	Hosts []int `json:"hosts,omitempty"`
}

// Plan is a complete fault schedule for one run. The zero value injects
// nothing.
type Plan struct {
	Crashes    []Crash        `json:"crashes,omitempty"`
	Shocks     []BatteryShock `json:"shocks,omitempty"`
	Jams       []Jam          `json:"jams,omitempty"`
	PagingLoss []PagingLoss   `json:"paging_loss,omitempty"`
	GPSErrors  []GPSError     `json:"gps_errors,omitempty"`
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || len(p.Crashes) == 0 && len(p.Shocks) == 0 &&
		len(p.Jams) == 0 && len(p.PagingLoss) == 0 && len(p.GPSErrors) == 0
}

// Validate checks the plan against the scenario it will run in: hosts
// energy-limited hosts, a square area of side areaSize meters, and
// duration simulated seconds. It rejects negative times, windows beyond
// the duration, regions outside the area, probabilities outside [0, 1],
// out-of-range host indices, and shock fractions outside (0, 1].
func (p *Plan) Validate(hosts int, areaSize, duration float64) error {
	if p == nil {
		return nil
	}
	window := func(what string, from, until float64) error {
		if from < 0 || math.IsNaN(from) {
			return fmt.Errorf("faults: %s: negative start %g", what, from)
		}
		if until <= from {
			return fmt.Errorf("faults: %s: window [%g, %g) is empty", what, from, until)
		}
		if until > duration {
			return fmt.Errorf("faults: %s: window ends at %g, beyond the %g s duration", what, until, duration)
		}
		return nil
	}
	hostIdx := func(what string, h int) error {
		if h < 0 || h >= hosts {
			return fmt.Errorf("faults: %s: host %d out of range [0, %d)", what, h, hosts)
		}
		return nil
	}
	prob := func(what string, v float64) error {
		if v < 0 || v > 1 || math.IsNaN(v) {
			return fmt.Errorf("faults: %s: probability %g outside [0, 1]", what, v)
		}
		return nil
	}
	for i, c := range p.Crashes {
		what := fmt.Sprintf("crash %d", i)
		if err := hostIdx(what, c.Host); err != nil {
			return err
		}
		if c.At < 0 || c.At > duration || math.IsNaN(c.At) {
			return fmt.Errorf("faults: %s: time %g outside [0, %g]", what, c.At, duration)
		}
		if c.Downtime < 0 || math.IsNaN(c.Downtime) {
			return fmt.Errorf("faults: %s: negative downtime %g", what, c.Downtime)
		}
	}
	for i, s := range p.Shocks {
		what := fmt.Sprintf("shock %d", i)
		if err := hostIdx(what, s.Host); err != nil {
			return err
		}
		if s.At < 0 || s.At > duration || math.IsNaN(s.At) {
			return fmt.Errorf("faults: %s: time %g outside [0, %g]", what, s.At, duration)
		}
		if s.Fraction <= 0 || s.Fraction > 1 || math.IsNaN(s.Fraction) {
			return fmt.Errorf("faults: %s: fraction %g outside (0, 1]", what, s.Fraction)
		}
	}
	for i, j := range p.Jams {
		what := fmt.Sprintf("jam %d", i)
		if err := window(what, j.From, j.Until); err != nil {
			return err
		}
		if err := prob(what, j.DropProb); err != nil {
			return err
		}
		r := j.Region
		if r.MinX >= r.MaxX || r.MinY >= r.MaxY {
			return fmt.Errorf("faults: %s: empty region [%g,%g]x[%g,%g]", what, r.MinX, r.MaxX, r.MinY, r.MaxY)
		}
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > areaSize || r.MaxY > areaSize {
			return fmt.Errorf("faults: %s: region [%g,%g]x[%g,%g] outside the %g m area",
				what, r.MinX, r.MaxX, r.MinY, r.MaxY, areaSize)
		}
	}
	for i, l := range p.PagingLoss {
		what := fmt.Sprintf("paging loss %d", i)
		if err := window(what, l.From, l.Until); err != nil {
			return err
		}
		if err := prob(what, l.DropProb); err != nil {
			return err
		}
	}
	for i, g := range p.GPSErrors {
		what := fmt.Sprintf("gps error %d", i)
		if err := window(what, g.From, g.Until); err != nil {
			return err
		}
		if g.MaxMeters <= 0 || math.IsNaN(g.MaxMeters) {
			return fmt.Errorf("faults: %s: non-positive max error %g", what, g.MaxMeters)
		}
		if g.Resample < 0 || math.IsNaN(g.Resample) {
			return fmt.Errorf("faults: %s: negative resample period %g", what, g.Resample)
		}
		for _, h := range g.Hosts {
			if err := hostIdx(what, h); err != nil {
				return err
			}
		}
	}
	return nil
}

// Window is a [From, Until) interval of simulated time during which some
// fault is active.
type Window struct {
	From, Until float64
}

// Windows returns the time intervals during which any fault in the plan
// is active, for classifying traffic as inside or outside fault windows.
// Permanent crashes (Downtime 0) extend to the run's duration; shocks
// are instantaneous and contribute no window.
func (p *Plan) Windows(duration float64) []Window {
	if p == nil {
		return nil
	}
	var ws []Window
	clamp := func(from, until float64) {
		if until > duration {
			until = duration
		}
		if until > from {
			ws = append(ws, Window{From: from, Until: until})
		}
	}
	for _, c := range p.Crashes {
		until := c.At + c.Downtime
		if c.Downtime <= 0 {
			until = duration
		}
		clamp(c.At, until)
	}
	for _, j := range p.Jams {
		clamp(j.From, j.Until)
	}
	for _, l := range p.PagingLoss {
		clamp(l.From, l.Until)
	}
	for _, g := range p.GPSErrors {
		clamp(g.From, g.Until)
	}
	return ws
}

// Load reads a plan from a JSON file. The plan is syntactically parsed
// only; call Validate with the scenario's dimensions before running.
func Load(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: parse %s: %w", path, err)
	}
	return &p, nil
}

// Save writes the plan to path as indented JSON.
func (p *Plan) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("faults: marshal: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	return nil
}
