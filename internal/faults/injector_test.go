package faults

import (
	"math"
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/sim"
)

// fakeTarget records injector calls against one host index.
type fakeTarget struct {
	crashes  []float64
	recovers []float64
	shocks   []float64
	gateway  bool
	noise    func(t float64) (dx, dy float64)
}

func (f *fakeTarget) target(e *sim.Engine) Target {
	return Target{
		Crash:       func() { f.crashes = append(f.crashes, e.Now()) },
		Recover:     func() { f.recovers = append(f.recovers, e.Now()) },
		Shock:       func(fr float64) { f.shocks = append(f.shocks, fr) },
		IsGateway:   func() bool { return f.gateway },
		SetGPSNoise: func(fn func(t float64) (dx, dy float64)) { f.noise = fn },
	}
}

func newTestInjector(plan *Plan, n int) (*sim.Engine, []*fakeTarget, *Injector) {
	e := sim.NewEngine()
	fakes := make([]*fakeTarget, n)
	targets := make([]Target, n)
	for i := range fakes {
		fakes[i] = &fakeTarget{}
		targets[i] = fakes[i].target(e)
	}
	return e, fakes, NewInjector(e, sim.NewRNG(1), plan, targets)
}

func TestCrashAndRecoverSchedule(t *testing.T) {
	plan := &Plan{Crashes: []Crash{{Host: 1, At: 10, Downtime: 5}}}
	e, fakes, inj := newTestInjector(plan, 3)
	var events []string
	inj.OnFault = func(kind string, host int, at float64) {
		events = append(events, kind)
		if kind == "crash" && host != 1 {
			t.Errorf("crash host = %d, want 1", host)
		}
	}
	inj.Start()
	e.Run(100)
	if len(fakes[1].crashes) != 1 || fakes[1].crashes[0] != 10 {
		t.Fatalf("crashes = %v, want [10]", fakes[1].crashes)
	}
	if len(fakes[1].recovers) != 1 || fakes[1].recovers[0] != 15 {
		t.Fatalf("recovers = %v, want [15]", fakes[1].recovers)
	}
	if len(fakes[0].crashes)+len(fakes[2].crashes) != 0 {
		t.Fatal("wrong host crashed")
	}
	if len(events) != 2 || events[0] != "crash" || events[1] != "recover" {
		t.Fatalf("events = %v", events)
	}
}

func TestPermanentCrashNeverRecovers(t *testing.T) {
	plan := &Plan{Crashes: []Crash{{Host: 0, At: 10}}}
	e, fakes, inj := newTestInjector(plan, 1)
	inj.Start()
	e.Run(100)
	if len(fakes[0].crashes) != 1 || len(fakes[0].recovers) != 0 {
		t.Fatalf("crashes=%v recovers=%v", fakes[0].crashes, fakes[0].recovers)
	}
}

func TestAnyGatewayPicksFirstGateway(t *testing.T) {
	plan := &Plan{Crashes: []Crash{{Host: 0, AnyGateway: true, At: 10, Downtime: 1}}}
	e, fakes, inj := newTestInjector(plan, 3)
	fakes[2].gateway = true
	inj.Start()
	e.Run(20)
	if len(fakes[2].crashes) != 1 {
		t.Fatalf("gateway host not crashed: %+v", fakes[2])
	}
	if len(fakes[0].crashes) != 0 {
		t.Fatal("fallback host crashed although a gateway existed")
	}
}

func TestAnyGatewayFallsBackToFixedHost(t *testing.T) {
	plan := &Plan{Crashes: []Crash{{Host: 1, AnyGateway: true, At: 10, Downtime: 1}}}
	e, fakes, inj := newTestInjector(plan, 3)
	inj.Start()
	e.Run(20)
	if len(fakes[1].crashes) != 1 {
		t.Fatalf("fallback host not crashed: %+v", fakes[1])
	}
}

func TestShockDelivered(t *testing.T) {
	plan := &Plan{Shocks: []BatteryShock{{Host: 2, At: 5, Fraction: 0.4}}}
	e, fakes, inj := newTestInjector(plan, 3)
	inj.Start()
	e.Run(10)
	if len(fakes[2].shocks) != 1 || fakes[2].shocks[0] != 0.4 {
		t.Fatalf("shocks = %v, want [0.4]", fakes[2].shocks)
	}
}

func TestFrameJammed(t *testing.T) {
	region := Region{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200}
	plan := &Plan{Jams: []Jam{{Region: region, From: 10, Until: 20, DropProb: 1}}}
	e, _, inj := newTestInjector(plan, 1)
	inj.Start()
	inside := geom.Point{X: 150, Y: 150}
	outside := geom.Point{X: 500, Y: 500}

	check := func(at float64, from, to geom.Point, want bool, what string) {
		e.At(at, func() {
			if got := inj.FrameJammed(from, to); got != want {
				t.Errorf("%s at t=%g: jammed=%v, want %v", what, at, got, want)
			}
		})
	}
	check(5, inside, outside, false, "before window")
	check(15, inside, outside, true, "sender in region")
	check(16, outside, inside, true, "receiver in region")
	check(17, outside, outside, false, "both outside region")
	check(25, inside, outside, false, "after window")
	e.Run(30)
}

func TestFrameJammedProbabilistic(t *testing.T) {
	region := Region{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	plan := &Plan{Jams: []Jam{{Region: region, From: 0, Until: 100, DropProb: 0.5}}}
	e, _, inj := newTestInjector(plan, 1)
	p := geom.Point{X: 50, Y: 50}
	jammed := 0
	const trials = 1000
	e.At(1, func() {
		for i := 0; i < trials; i++ {
			if inj.FrameJammed(p, p) {
				jammed++
			}
		}
	})
	e.Run(10)
	if jammed < trials/3 || jammed > 2*trials/3 {
		t.Fatalf("jammed %d of %d at p=0.5", jammed, trials)
	}
}

func TestPageDropped(t *testing.T) {
	plan := &Plan{PagingLoss: []PagingLoss{{From: 10, Until: 20, DropProb: 1}}}
	e, _, inj := newTestInjector(plan, 1)
	check := func(at float64, want bool) {
		e.At(at, func() {
			if got := inj.PageDropped(); got != want {
				t.Errorf("PageDropped at t=%g = %v, want %v", at, got, want)
			}
		})
	}
	check(5, false)
	check(15, true)
	check(25, false)
	e.Run(30)
}

func TestGPSNoiseInstalledAndRemoved(t *testing.T) {
	plan := &Plan{GPSErrors: []GPSError{{From: 10, Until: 20, MaxMeters: 50, Resample: 5, Hosts: []int{1}}}}
	e, fakes, inj := newTestInjector(plan, 3)
	inj.Start()
	e.At(15, func() {
		if fakes[1].noise == nil {
			t.Error("noise not installed during window")
		}
		if fakes[0].noise != nil || fakes[2].noise != nil {
			t.Error("noise installed on unlisted hosts")
		}
	})
	e.Run(30)
	if fakes[1].noise != nil {
		t.Fatal("noise not removed after window")
	}
}

func TestGPSNoiseAppliesToAllHostsByDefault(t *testing.T) {
	plan := &Plan{GPSErrors: []GPSError{{From: 10, Until: 20, MaxMeters: 50}}}
	e, fakes, inj := newTestInjector(plan, 2)
	inj.Start()
	e.At(15, func() {
		if fakes[0].noise == nil || fakes[1].noise == nil {
			t.Error("noise missing on some host")
		}
	})
	e.Run(30)
}

func TestGPSOffsetProperties(t *testing.T) {
	const maxM, resample = 50.0, 20.0
	for host := 0; host < 5; host++ {
		for _, tm := range []float64{0, 7, 19.9, 20, 500} {
			dx, dy := gpsOffset(42, host, maxM, resample, tm)
			if math.Abs(dx) > maxM || math.Abs(dy) > maxM {
				t.Fatalf("offset (%g, %g) exceeds bound %g", dx, dy, maxM)
			}
		}
	}
	// Piecewise constant within an epoch, pure in its inputs.
	ax, ay := gpsOffset(42, 1, maxM, resample, 3)
	bx, by := gpsOffset(42, 1, maxM, resample, 19)
	if ax != bx || ay != by {
		t.Fatal("offset changed within one resample epoch")
	}
	cx, cy := gpsOffset(42, 1, maxM, resample, 21)
	if ax == cx && ay == cy {
		t.Fatal("offset did not change across epochs")
	}
	// Resample 0: one fixed offset for the whole run.
	dx1, dy1 := gpsOffset(42, 1, maxM, 0, 3)
	dx2, dy2 := gpsOffset(42, 1, maxM, 0, 1e6)
	if dx1 != dx2 || dy1 != dy2 {
		t.Fatal("resample 0 should freeze the offset")
	}
	// Different hosts and seeds decorrelate.
	ex, ey := gpsOffset(42, 2, maxM, resample, 3)
	if ax == ex && ay == ey {
		t.Fatal("hosts share an offset")
	}
	fx, fy := gpsOffset(43, 1, maxM, resample, 3)
	if ax == fx && ay == fy {
		t.Fatal("seeds share an offset")
	}
}

func TestNewInjectorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil plan did not panic")
		}
	}()
	NewInjector(sim.NewEngine(), sim.NewRNG(1), nil, nil)
}
