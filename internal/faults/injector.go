package faults

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"ecgrid/internal/geom"
	"ecgrid/internal/sim"
)

// Target is the injector's handle on one host. The runner supplies
// closures so the faults package stays decoupled from the node and
// protocol layers (no import cycle, and tests can inject into fakes).
// Every closure must tolerate being called on an already-dead or
// already-crashed host (no-op).
type Target struct {
	// Crash powers the host off: detach from channel and RAS, drop
	// protocol state.
	Crash func()
	// Recover powers the host back on with a cold-started protocol.
	Recover func()
	// Shock drains the given fraction of the host's full charge.
	Shock func(fraction float64)
	// IsGateway reports whether the host currently serves as a gateway
	// (false or nil for protocols without the concept).
	IsGateway func() bool
	// SetGPSNoise installs (or, with nil, removes) a position-noise
	// function on the host's GPS.
	SetGPSNoise func(fn func(t float64) (dx, dy float64))
}

// Injector schedules a Plan's events through the engine and answers the
// per-frame and per-page questions the radio and RAS hooks ask. All
// methods run inside engine events (single-threaded).
type Injector struct {
	engine  *sim.Engine
	rng     *sim.RNG
	plan    *Plan
	targets []Target

	// OnFault, if set, observes every fault transition: kind is one of
	// "crash", "recover", "shock", "jam-on", "jam-off", "paging-on",
	// "paging-off", "gps-on", "gps-off"; host is the affected host index
	// or -1 for network-wide events.
	OnFault func(kind string, host int, at float64)
}

// NewInjector builds an injector for the given validated plan. The
// targets slice is indexed by host index; plan validation guarantees all
// referenced indices are in range.
func NewInjector(engine *sim.Engine, rng *sim.RNG, plan *Plan, targets []Target) *Injector {
	if engine == nil || rng == nil || plan == nil {
		panic("faults: nil engine, rng, or plan")
	}
	return &Injector{engine: engine, rng: rng, plan: plan, targets: targets}
}

func (in *Injector) fault(kind string, host int) {
	if in.OnFault != nil {
		in.OnFault(kind, host, in.engine.Now())
	}
}

// Start schedules every event of the plan. Call once, before the run.
func (in *Injector) Start() {
	for i := range in.plan.Crashes {
		c := in.plan.Crashes[i]
		in.engine.At(c.At, func() { in.fireCrash(c) })
	}
	for i := range in.plan.Shocks {
		s := in.plan.Shocks[i]
		in.engine.At(s.At, func() {
			if sh := in.targets[s.Host].Shock; sh != nil {
				sh(s.Fraction)
			}
			in.fault("shock", s.Host)
		})
	}
	// Jams and paging loss are window-checked on each frame/page; the
	// scheduled events only announce the transitions (trace, metrics).
	for i := range in.plan.Jams {
		j := in.plan.Jams[i]
		in.engine.At(j.From, func() { in.fault("jam-on", -1) })
		in.engine.At(j.Until, func() { in.fault("jam-off", -1) })
	}
	for i := range in.plan.PagingLoss {
		l := in.plan.PagingLoss[i]
		in.engine.At(l.From, func() { in.fault("paging-on", -1) })
		in.engine.At(l.Until, func() { in.fault("paging-off", -1) })
	}
	for i := range in.plan.GPSErrors {
		g := in.plan.GPSErrors[i]
		in.engine.At(g.From, func() { in.gpsOn(g) })
		in.engine.At(g.Until, func() { in.gpsOff(g) })
	}
}

// fireCrash resolves the crash target (fixed index, or the first current
// gateway for AnyGateway) and powers it off, scheduling recovery if the
// crash has a downtime.
func (in *Injector) fireCrash(c Crash) {
	idx := c.Host
	if c.AnyGateway {
		for j := range in.targets {
			if g := in.targets[j].IsGateway; g != nil && g() {
				idx = j
				break
			}
		}
	}
	t := in.targets[idx]
	if t.Crash != nil {
		t.Crash()
	}
	in.fault("crash", idx)
	if c.Downtime > 0 && t.Recover != nil {
		in.engine.Schedule(c.Downtime, func() {
			t.Recover()
			in.fault("recover", idx)
		})
	}
}

// gpsHosts returns the host indices a GPSError applies to.
func (in *Injector) gpsHosts(g GPSError) []int {
	if len(g.Hosts) > 0 {
		return g.Hosts
	}
	all := make([]int, len(in.targets))
	for i := range all {
		all[i] = i
	}
	return all
}

func (in *Injector) gpsOn(g GPSError) {
	seed := in.rng.Seed()
	for _, h := range in.gpsHosts(g) {
		if set := in.targets[h].SetGPSNoise; set != nil {
			host := h
			set(func(t float64) (dx, dy float64) {
				return gpsOffset(seed, host, g.MaxMeters, g.Resample, t)
			})
		}
	}
	in.fault("gps-on", -1)
}

func (in *Injector) gpsOff(g GPSError) {
	for _, h := range in.gpsHosts(g) {
		if set := in.targets[h].SetGPSNoise; set != nil {
			set(nil)
		}
	}
	in.fault("gps-off", -1)
}

// gpsOffset derives a bounded, piecewise-constant position error as a
// pure hash of (seed, host, epoch): no RNG stream state is consumed, so
// GPS queries — whose count varies with protocol decisions — can never
// perturb any other random stream.
func gpsOffset(seed int64, host int, maxM, resample, t float64) (dx, dy float64) {
	var epoch int64
	if resample > 0 {
		epoch = int64(math.Floor(t / resample))
	}
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(host)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(epoch))
	h := fnv.New64a()
	_, _ = h.Write(buf[:])
	sum := h.Sum64()
	u1 := float64(uint32(sum>>32)) / float64(1<<32)
	u2 := float64(uint32(sum)) / float64(1<<32)
	return (2*u1 - 1) * maxM, (2*u2 - 1) * maxM
}

// FrameJammed reports whether a frame transmitted from `from` toward a
// receiver at `to` is killed by an active jamming region at the current
// simulation time. The radio channel consults it once per in-range
// receiver; each consultation is an independent Bernoulli draw on the
// "faults.jam" stream (no draw when the answer is certain).
func (in *Injector) FrameJammed(from, to geom.Point) bool {
	now := in.engine.Now()
	for _, j := range in.plan.Jams {
		if now < j.From || now >= j.Until {
			continue
		}
		if !j.Region.Contains(from.X, from.Y) && !j.Region.Contains(to.X, to.Y) {
			continue
		}
		if j.DropProb >= 1 {
			return true
		}
		if j.DropProb > 0 && in.rng.Uniform(sim.StreamFaultJam, 0, 1) < j.DropProb {
			return true
		}
	}
	return false
}

// PageDropped reports whether one RAS wakeup delivery is lost to an
// active paging-loss fault at the current simulation time. The bus
// consults it once per wakeup it would otherwise deliver.
func (in *Injector) PageDropped() bool {
	now := in.engine.Now()
	for _, l := range in.plan.PagingLoss {
		if now < l.From || now >= l.Until {
			continue
		}
		if l.DropProb >= 1 {
			return true
		}
		if l.DropProb > 0 && in.rng.Uniform(sim.StreamFaultPaging, 0, 1) < l.DropProb {
			return true
		}
	}
	return false
}
