package faults

import (
	"fmt"
	"strings"
)

// Named presets scale to the scenario they run in (its host count, area
// side, and duration), so one `-faults gateway-crash` works for a 60 s
// smoke run and a 2000 s figure run alike. Chaos sweeps that need the
// *identical* schedule across differently-sized runs should use a plan
// file instead.

// PresetNames lists the available preset plans, in documentation order.
func PresetNames() []string {
	return []string{"gateway-crash", "churn", "jam-center", "lossy-ras", "gps-drift", "mixed"}
}

// Preset builds the named plan for a scenario with the given number of
// energy-limited hosts, square area side, and duration.
func Preset(name string, hosts int, areaSize, duration float64) (*Plan, error) {
	gatewayCrash := Crash{
		Host:       0,
		AnyGateway: true,
		At:         0.25 * duration,
		Downtime:   0.25 * duration,
	}
	jamCenter := Jam{
		Region:   Region{MinX: 0.3 * areaSize, MinY: 0.3 * areaSize, MaxX: 0.7 * areaSize, MaxY: 0.7 * areaSize},
		From:     0.3 * duration,
		Until:    0.6 * duration,
		DropProb: 1,
	}
	lossyRAS := PagingLoss{From: 0.25 * duration, Until: 0.75 * duration, DropProb: 0.5}
	gpsDrift := GPSError{From: 0.25 * duration, Until: 0.75 * duration, MaxMeters: 0.1 * areaSize, Resample: 20}

	switch name {
	case "gateway-crash":
		return &Plan{Crashes: []Crash{gatewayCrash}}, nil
	case "churn":
		// Staggered crash/recover of a spread of fixed hosts: dense
		// membership churn without singling out gateways.
		n := 4
		if hosts < n {
			n = hosts
		}
		var crashes []Crash
		for i := 0; i < n; i++ {
			crashes = append(crashes, Crash{
				Host:     (i * hosts) / n,
				At:       (0.2 + 0.1*float64(i)) * duration,
				Downtime: 0.15 * duration,
			})
		}
		return &Plan{Crashes: crashes}, nil
	case "jam-center":
		return &Plan{Jams: []Jam{jamCenter}}, nil
	case "lossy-ras":
		return &Plan{PagingLoss: []PagingLoss{lossyRAS}}, nil
	case "gps-drift":
		return &Plan{GPSErrors: []GPSError{gpsDrift}}, nil
	case "mixed":
		return &Plan{
			Crashes:    []Crash{gatewayCrash},
			Shocks:     []BatteryShock{{Host: hosts / 2, At: 0.4 * duration, Fraction: 0.5}},
			Jams:       []Jam{jamCenter},
			PagingLoss: []PagingLoss{lossyRAS},
			GPSErrors:  []GPSError{gpsDrift},
		}, nil
	default:
		return nil, fmt.Errorf("faults: unknown preset %q (known: %s)", name, strings.Join(PresetNames(), ", "))
	}
}

// Resolve turns a -faults flag value into a plan: a known preset name is
// built for the scenario's dimensions; anything containing a path
// separator or a dot is loaded as a JSON plan file.
func Resolve(spec string, hosts int, areaSize, duration float64) (*Plan, error) {
	for _, n := range PresetNames() {
		if spec == n {
			return Preset(spec, hosts, areaSize, duration)
		}
	}
	if strings.ContainsAny(spec, "./\\") {
		return Load(spec)
	}
	return nil, fmt.Errorf("faults: %q is neither a preset (%s) nor a plan file path",
		spec, strings.Join(PresetNames(), ", "))
}
