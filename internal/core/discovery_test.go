package core

import (
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// These tests poke the discovery, forwarding and repair paths with
// controlled topologies built on the integration testbed.

func TestSearchAreaUnknownDestinationIsGlobal(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	area := p.searchAreaFor(hostid.ID(99), 0)
	if area.Cells() != 100 {
		t.Fatalf("unknown destination searched %d cells, want global 100", area.Cells())
	}
}

func TestSearchAreaConfinedWithKnownDestGrid(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	p.table.Update(routing.Entry{
		Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, DestGrid: grid.Coord{X: 4, Y: 1}, Seq: 1,
	}, tb.engine.Now())
	area := p.searchAreaFor(99, 0)
	// Smallest rectangle covering (1,1) and (4,1), expanded by one.
	if !area.Contains(grid.Coord{X: 1, Y: 1}) || !area.Contains(grid.Coord{X: 4, Y: 1}) {
		t.Fatalf("area %v misses the endpoints", area)
	}
	if area.Cells() >= 100 {
		t.Fatalf("area not confined: %d cells", area.Cells())
	}
	// Retries widen to global, per §3.3.
	if p.searchAreaFor(99, 1).Cells() != 100 {
		t.Fatal("retry did not widen to a global search")
	}
}

func TestGlobalFloodOnlyOption(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.GlobalFloodOnly = true
	p := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	p.table.Update(routing.Entry{Dst: 99, DestGrid: grid.Coord{X: 2, Y: 1}, Seq: 1}, tb.engine.Now())
	if p.searchAreaFor(99, 0).Cells() != 100 {
		t.Fatal("GlobalFloodOnly still confined the search")
	}
}

func TestRREQOutsideAreaIgnored(t *testing.T) {
	tb := newTestbed(t)
	// Gateways in cells (1,1) and (2,1); the RREQ's area covers only
	// column 5+, so neither may rebroadcast.
	a := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.add(DefaultOptions(), nil, 250, 150, 500)
	tb.start()
	tb.engine.Run(5)
	before := a.Stats.RREQsSent
	req := &routing.RREQ{
		Src: 98, SrcSeq: 1, Dst: 99, BcastID: 1,
		Area:     grid.NewSearchArea(grid.Coord{X: 5, Y: 0}, grid.Coord{X: 9, Y: 9}),
		OrigGrid: grid.Coord{X: 5, Y: 5}, PrevGrid: grid.Coord{X: 5, Y: 5},
	}
	a.handleRREQ(req)
	if a.Stats.RREQsSent != before {
		t.Fatal("gateway outside the searching area still forwarded the RREQ")
	}
}

func TestRREQDuplicateSuppressed(t *testing.T) {
	tb := newTestbed(t)
	a := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	req := &routing.RREQ{
		Src: 98, SrcSeq: 1, Dst: 99, BcastID: 7,
		Area:     grid.GlobalSearchArea(tb.partition),
		OrigGrid: grid.Coord{X: 5, Y: 5}, PrevGrid: grid.Coord{X: 2, Y: 1},
	}
	a.handleRREQ(req)
	first := a.Stats.RREQsSent
	a.handleRREQ(req) // identical (Src, BcastID)
	if a.Stats.RREQsSent != first {
		t.Fatal("duplicate RREQ rebroadcast")
	}
}

func TestRREQInstallsReverseRoute(t *testing.T) {
	tb := newTestbed(t)
	a := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	req := &routing.RREQ{
		Src: 98, SrcSeq: 5, Dst: 99, BcastID: 1,
		Area:     grid.GlobalSearchArea(tb.partition),
		OrigGrid: grid.Coord{X: 5, Y: 5}, PrevGrid: grid.Coord{X: 2, Y: 1}, Hops: 3,
	}
	a.handleRREQ(req)
	e, ok := a.table.Lookup(98, tb.engine.Now())
	if !ok {
		t.Fatal("no reverse route installed")
	}
	if e.NextGrid != (grid.Coord{X: 2, Y: 1}) || e.Seq != 5 || e.DestGrid != (grid.Coord{X: 5, Y: 5}) {
		t.Fatalf("reverse route = %+v", e)
	}
}

func TestInterRREPAnswersFromFreshRoute(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.InterRREP = true
	a := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	a.table.Update(routing.Entry{
		Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, DestGrid: grid.Coord{X: 4, Y: 1}, Seq: 9, Hops: 3,
	}, tb.engine.Now())
	before := a.Stats.RREPsSent
	a.handleRREQ(&routing.RREQ{
		Src: 98, SrcSeq: 1, Dst: 99, DstSeq: 5, BcastID: 2,
		Area:     grid.GlobalSearchArea(tb.partition),
		OrigGrid: grid.Coord{X: 5, Y: 5}, PrevGrid: grid.Coord{X: 2, Y: 1},
	})
	if a.Stats.RREPsSent != before+1 {
		t.Fatal("intermediate gateway with a fresh route did not reply")
	}
}

func TestPacketTTLExpiry(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(15)
	old := pkt(1, 1, gw.host.ID(), hostid.ID(99), tb.engine.Now()-60) // 60 s old
	gw.routeData(&routing.Data{Packet: old, TargetGrid: gw.myGrid})
	if gw.Stats.DropExpired != 1 {
		t.Fatalf("expired packet not dropped: %+v", gw.Stats)
	}
}

func TestLeaveInstallsForwardingStub(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	gw.handleLeave(&routing.Leave{
		ID: 42, Grid: grid.Coord{X: 1, Y: 1}, NewGrid: grid.Coord{X: 2, Y: 1},
	})
	e, ok := gw.table.Lookup(42, tb.engine.Now())
	if !ok {
		t.Fatal("no stub installed")
	}
	if e.NextGrid != (grid.Coord{X: 2, Y: 1}) || e.Hops != 1 {
		t.Fatalf("stub = %+v", e)
	}
}

func TestLeaveForOtherGridIgnored(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	gw.hosts.Note(42, routing.HostActive, tb.engine.Now())
	gw.handleLeave(&routing.Leave{
		ID: 42, Grid: grid.Coord{X: 7, Y: 7}, NewGrid: grid.Coord{X: 8, Y: 7},
	})
	if !gw.KnowsMember(42) {
		t.Fatal("LEAVE for another grid removed a local member")
	}
}

func TestGreedyNeighborStrictProgress(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	now := tb.engine.Now()
	gw.neighbors[grid.Coord{X: 2, Y: 1}] = neighborGW{id: 7, seen: now}
	gw.neighbors[grid.Coord{X: 0, Y: 1}] = neighborGW{id: 8, seen: now}
	// Target east of us: only (2,1) makes progress.
	id, next, ok := gw.greedyNeighbor(grid.Coord{X: 5, Y: 1})
	if !ok || id != 7 || next != (grid.Coord{X: 2, Y: 1}) {
		t.Fatalf("greedy picked %v/%v/%v", id, next, ok)
	}
	// Target our own cell: nothing is strictly closer.
	if _, _, ok := gw.greedyNeighbor(grid.Coord{X: 1, Y: 1}); ok {
		t.Fatal("greedy progressed toward our own cell")
	}
	// Stale neighbors are not candidates.
	gw.neighbors[grid.Coord{X: 2, Y: 1}] = neighborGW{id: 7, seen: now - 100}
	if _, _, ok := gw.greedyNeighbor(grid.Coord{X: 5, Y: 1}); ok {
		t.Fatal("greedy used a stale neighbor")
	}
}

func TestTxFailedClearsBadNeighborAndReroutes(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	now := tb.engine.Now()
	gw.neighbors[grid.Coord{X: 2, Y: 1}] = neighborGW{id: 55, seen: now}
	data := &routing.Data{
		Packet:     pkt(1, 1, gw.host.ID(), 99, now),
		TargetGrid: grid.Coord{X: 2, Y: 1},
		DestGrid:   grid.Coord{X: 5, Y: 1},
		HasDest:    true,
	}
	gw.TxFailed(&radio.Frame{Kind: "data", Src: gw.host.ID(), Dst: 55, Bytes: 100, Payload: data})
	if _, ok := gw.neighbors[grid.Coord{X: 2, Y: 1}]; ok {
		t.Fatal("failed neighbor not purged")
	}
}

func TestTxFailedIgnoresControlFrames(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	// Must not panic or change state for non-data payloads.
	gw.TxFailed(&radio.Frame{Kind: "hello", Dst: 3, Bytes: 20, Payload: &routing.Hello{}})
}

func TestPendingRREQAnsweredLate(t *testing.T) {
	tb := newTestbed(t)
	gw := tb.add(DefaultOptions(), nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	// An RREQ for an unknown member arrives and is remembered...
	gw.handleRREQ(&routing.RREQ{
		Src: 98, SrcSeq: 1, Dst: 42, BcastID: 3,
		Area:     grid.GlobalSearchArea(tb.partition),
		OrigGrid: grid.Coord{X: 5, Y: 5}, PrevGrid: grid.Coord{X: 2, Y: 1},
	})
	before := gw.Stats.RREPsSent
	// ...then host 42 announces itself awake in this grid.
	gw.hosts.Note(42, routing.HostActive, tb.engine.Now())
	gw.answerPendingRREQ(42)
	if gw.Stats.RREPsSent != before+1 {
		t.Fatal("late answer not sent")
	}
	// A second announce must not answer twice.
	gw.answerPendingRREQ(42)
	if gw.Stats.RREPsSent != before+1 {
		t.Fatal("pending request answered twice")
	}
}

func TestRetireCarriesNewGridForMovedGateway(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	// Gateway moving east out of (1,1); a member stays behind.
	mov := constVel{from: geom.Point{X: 150, Y: 150}, v: geom.Vector{DX: 3}}
	a := tb.add(opt, mov, 0, 0, 500)
	b := tb.add(opt, nil, 160, 140, 500)
	tb.start()
	tb.engine.Run(10)
	if !a.IsGateway() {
		t.Fatalf("setup: a is %v", a.Role())
	}
	tb.engine.Run(40) // a crosses x=200 at ≈16.7 s; b takes over
	if !b.IsGateway() {
		t.Fatalf("b is %v", b.Role())
	}
	// b must hold a §3.4 stub for a pointing at a's new grid.
	e, ok := b.table.Lookup(a.host.ID(), tb.engine.Now())
	if !ok {
		t.Fatal("successor has no stub for the departed gateway")
	}
	if e.NextGrid != (grid.Coord{X: 2, Y: 1}) {
		t.Fatalf("stub points at %v", e.NextGrid)
	}
}

func TestMemberRedirectsMisdirectedData(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	member := tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(5)
	// Wake the member and mark activity so it stays in its idle window;
	// the Awake probe refreshes its gateway knowledge.
	tb.hosts[1].WakeByTimer()
	member.touchActivity()
	tb.engine.Run(5.2)
	if member.IsGateway() || tb.hosts[1].Asleep() || !member.gatewayFresh() {
		t.Fatalf("setup: member=%v asleep=%v fresh=%v",
			member.Role(), tb.hosts[1].Asleep(), member.gatewayFresh())
	}
	// Deliver a data frame for a third host to the member, as a stale
	// sender would: it must hand it to the real gateway, who will treat
	// it (no route, origin unknown) without crashing.
	member.handleData(&routing.Data{
		Packet:     pkt(1, 1, 98, 99, tb.engine.Now()),
		TargetGrid: grid.Coord{X: 1, Y: 1},
	})
	if member.Stats.DataDropped != 0 {
		t.Fatal("member dropped instead of redirecting while gateway known")
	}
	_ = gw
}

func TestSearchExpandingPolicy(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.Search = SearchExpanding
	opt.DiscoveryRetries = 3
	p := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	p.table.Update(routing.Entry{
		Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, DestGrid: grid.Coord{X: 3, Y: 1}, Seq: 1,
	}, tb.engine.Now())
	a0 := p.searchAreaFor(99, 0).Cells()
	a1 := p.searchAreaFor(99, 1).Cells()
	a2 := p.searchAreaFor(99, 2).Cells()
	final := p.searchAreaFor(99, 3).Cells()
	if !(a0 < a1 && a1 < a2) {
		t.Fatalf("areas not expanding: %d, %d, %d", a0, a1, a2)
	}
	if final != 100 {
		t.Fatalf("final attempt searched %d cells, want global 100", final)
	}
}

func TestSearchPolicyString(t *testing.T) {
	if SearchConfinedThenGlobal.String() != "confined-then-global" ||
		SearchExpanding.String() != "expanding" ||
		SearchGlobal.String() != "global" {
		t.Error("policy names wrong")
	}
	if SearchPolicy(9).String() != "SearchPolicy(?)" {
		t.Error("unknown policy string wrong")
	}
}
