package core

import (
	"math"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// testbed wires a small deterministic world for protocol tests.
type testbed struct {
	engine    *sim.Engine
	rng       *sim.RNG
	channel   *radio.Channel
	bus       *ras.Bus
	partition *grid.Partition
	hosts     []*node.Host
	protos    []*Protocol
	delivered []*routing.DataPacket
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	e := sim.NewEngine()
	rng := sim.NewRNG(7)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	cfg := radio.DefaultConfig()
	return &testbed{
		engine:    e,
		rng:       rng,
		channel:   radio.NewChannel(e, rng, cfg),
		bus:       ras.NewBus(e, part, cfg.Range, ras.DefaultLatency),
		partition: part,
	}
}

// add creates a host running the protocol with the given options. mob may
// be nil for a stationary host at (x, y).
func (tb *testbed) add(opt Options, mob mobility.Model, x, y float64, joules float64) *Protocol {
	if mob == nil {
		mob = mobility.Stationary{At: geom.Point{X: x, Y: y}}
	}
	var bat *energy.Battery
	if math.IsInf(joules, 1) {
		bat = energy.NewInfiniteBattery(energy.PaperModel())
	} else {
		bat = energy.NewBattery(energy.PaperModel(), joules)
	}
	h := node.New(node.Config{
		ID: hostid.ID(len(tb.hosts)), Engine: tb.engine, RNG: tb.rng,
		Channel: tb.channel, Bus: tb.bus, Partition: tb.partition,
		Mobility: mob, Battery: bat,
	})
	p := New(h, opt)
	p.OnDeliver = func(pkt *routing.DataPacket) { tb.delivered = append(tb.delivered, pkt) }
	h.SetProtocol(p)
	tb.hosts = append(tb.hosts, h)
	tb.protos = append(tb.protos, p)
	return p
}

func (tb *testbed) start() {
	for _, h := range tb.hosts {
		h.Start()
	}
}

func (tb *testbed) gatewaysIn(cell grid.Coord) []*Protocol {
	var out []*Protocol
	for i, p := range tb.protos {
		if p.IsGateway() && tb.hosts[i].Cell() == cell && !tb.hosts[i].Dead() {
			out = append(out, p)
		}
	}
	return out
}

func pkt(flow, seq int, src, dst hostid.ID, at float64) *routing.DataPacket {
	return &routing.DataPacket{Flow: flow, Seq: seq, Src: src, Dst: dst, Bytes: 512, SentAt: at}
}

// --- election -----------------------------------------------------------------

func TestInitialElectionOneGatewayPerGrid(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	// Three hosts in cell (1,1), two in cell (2,1).
	tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 160, 160, 500)
	tb.add(opt, nil, 140, 140, 500)
	tb.add(opt, nil, 250, 150, 500)
	tb.add(opt, nil, 260, 160, 500)
	tb.start()
	tb.engine.Run(10)

	if n := len(tb.gatewaysIn(grid.Coord{X: 1, Y: 1})); n != 1 {
		t.Fatalf("cell (1,1) has %d gateways, want 1", n)
	}
	if n := len(tb.gatewaysIn(grid.Coord{X: 2, Y: 1})); n != 1 {
		t.Fatalf("cell (2,1) has %d gateways, want 1", n)
	}
}

func TestElectionPrefersCenterWhenLevelsEqual(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	center := tb.add(opt, nil, 150, 150, 500) // exactly at cell center
	tb.add(opt, nil, 190, 190, 500)
	tb.add(opt, nil, 110, 120, 500)
	tb.start()
	tb.engine.Run(10)
	if !center.IsGateway() {
		t.Fatalf("center host not elected; roles: %v %v %v",
			tb.protos[0].Role(), tb.protos[1].Role(), tb.protos[2].Role())
	}
}

func TestElectionPrefersHigherBatteryLevel(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	tb.add(opt, nil, 150, 150, 500) // upper level but center
	strong := tb.add(opt, nil, 190, 190, 500)
	weak := tb.protos[0]
	// Drain host 0 to boundary level before the election completes: use
	// a smaller battery instead (200 J < 60% from the start ⇒ boundary
	// after... Rbrc is relative to its own full capacity, so use mode
	// drain: pre-drain by setting transmit mode briefly.
	weak.host.Battery().SetMode(0, energy.Transmit)
	tb.engine.Schedule(0.0001, func() {}) // placeholder tick
	tb.start()
	// Drain: 500 J at 1.433 W needs ~140 s to drop below 60% (300 J).
	// Too slow for the window; instead verify the comparator directly.
	me := &helloInfo{id: 0, level: energy.Boundary, dist: 0}
	other := &helloInfo{id: 1, level: energy.Upper, dist: 50}
	if !strong.better(other, me) {
		t.Fatal("upper-level candidate does not beat boundary-level candidate at better dist")
	}
	_ = weak
}

func TestGridOptionsElectionIgnoresBattery(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(GridOptions(), nil, 150, 150, 500)
	a := &helloInfo{id: 1, level: energy.Lower, dist: 5}
	b := &helloInfo{id: 2, level: energy.Upper, dist: 50}
	if !p.better(a, b) {
		t.Fatal("GRID election must prefer the center host regardless of battery")
	}
}

func TestElectionTieBreaksBySmallestID(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(DefaultOptions(), nil, 150, 150, 500)
	a := &helloInfo{id: 3, level: energy.Upper, dist: 10}
	b := &helloInfo{id: 7, level: energy.Upper, dist: 10}
	if !p.better(a, b) || p.better(b, a) {
		t.Fatal("equal level and distance must break ties by smaller ID")
	}
}

// --- sleeping -----------------------------------------------------------------

func TestMembersSleepAfterElection(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 180, 180, 500)
	tb.add(opt, nil, 120, 130, 500)
	tb.start()
	tb.engine.Run(15)
	sleeping := 0
	for _, h := range tb.hosts {
		if h.Asleep() {
			sleeping++
		}
	}
	if sleeping != 2 {
		t.Fatalf("%d hosts asleep, want 2 (all non-gateways)", sleeping)
	}
}

func TestGridBaselineNeverSleeps(t *testing.T) {
	tb := newTestbed(t)
	opt := GridOptions()
	tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(30)
	for i, h := range tb.hosts {
		if h.Asleep() {
			t.Fatalf("host %d asleep under GRID options", i)
		}
	}
}

func TestSleepingMembersSaveEnergy(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(100)
	gwIdx, memIdx := 0, 1
	if !tb.protos[0].IsGateway() {
		gwIdx, memIdx = 1, 0
	}
	gw := tb.hosts[gwIdx].Battery().Consumed(100)
	mem := tb.hosts[memIdx].Battery().Consumed(100)
	if mem >= gw {
		t.Fatalf("sleeping member consumed %v J ≥ gateway's %v J", mem, gw)
	}
	// The member should be near the sleep floor (0.163 W) plus wake
	// blips; the gateway near idle (0.863 W) plus HELLOs.
	if mem > 0.35*gw {
		t.Fatalf("member consumed %v J, more than 35%% of gateway's %v J", mem, gw)
	}
}

// --- local data delivery -------------------------------------------------------

func TestDataToSleepingMemberIsPagedAndDelivered(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	dst := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(15)
	if !gw.IsGateway() || !tb.hosts[1].Asleep() {
		t.Fatalf("setup wrong: roles %v/%v", gw.Role(), dst.Role())
	}
	// Inject a packet at the gateway addressed to the sleeping member.
	tb.engine.Schedule(0.01, func() {
		gw.SubmitData(pkt(1, 1, gw.host.ID(), dst.host.ID(), tb.engine.Now()))
	})
	tb.engine.Run(17)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1 (page+buffer+flush)", len(tb.delivered))
	}
	if gw.Stats.PagesSent == 0 {
		t.Fatal("gateway did not page the sleeping destination")
	}
}

func TestSleepingSourceWakesAndSends(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	src := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(15)
	if !tb.hosts[1].Asleep() {
		t.Fatal("source not asleep")
	}
	tb.engine.Schedule(0.01, func() {
		src.SubmitData(pkt(1, 1, src.host.ID(), gw.host.ID(), tb.engine.Now()))
	})
	tb.engine.Run(17)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1 (ACQ handshake)", len(tb.delivered))
	}
	if src.Stats.ACQsSent == 0 {
		t.Fatal("source sent no ACQ")
	}
}

// --- multi-grid routing ---------------------------------------------------------

// line lays out one host per cell along row 1, at cell centers, plus a
// member beside the first and last gateways.
func lineTopology(tb *testbed, opt Options, cells int) (src, dst *Protocol) {
	for i := 0; i < cells; i++ {
		tb.add(opt, nil, 150+float64(i)*100, 150, 500)
	}
	src = tb.add(opt, nil, 130, 170, 500)                      // member in first cell
	dst = tb.add(opt, nil, 170+float64(cells-1)*100, 170, 500) // member in last cell
	return src, dst
}

func TestRouteDiscoveryAndDeliveryAcrossGrids(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	src, dst := lineTopology(tb, opt, 5)
	tb.start()
	tb.engine.Run(15)
	tb.engine.Schedule(0.01, func() {
		src.SubmitData(pkt(1, 1, src.host.ID(), dst.host.ID(), tb.engine.Now()))
	})
	tb.engine.Run(20)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d packets across 5 grids, want 1", len(tb.delivered))
	}
	if tb.delivered[0].Dst != dst.host.ID() {
		t.Fatalf("wrong packet delivered: %v", tb.delivered[0])
	}
}

func TestStreamOfPacketsAcrossGrids(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	src, dst := lineTopology(tb, opt, 4)
	tb.start()
	tb.engine.Run(15)
	for i := 0; i < 20; i++ {
		seq := i + 1
		tb.engine.At(15+float64(i), func() {
			src.SubmitData(pkt(1, seq, src.host.ID(), dst.host.ID(), tb.engine.Now()))
		})
	}
	tb.engine.Run(40)
	if len(tb.delivered) < 19 {
		t.Fatalf("delivered %d/20 packets", len(tb.delivered))
	}
}

func TestGridBaselineRoutesToo(t *testing.T) {
	tb := newTestbed(t)
	opt := GridOptions()
	src, dst := lineTopology(tb, opt, 3)
	tb.start()
	tb.engine.Run(15)
	tb.engine.Schedule(0.01, func() {
		src.SubmitData(pkt(1, 1, src.host.ID(), dst.host.ID(), tb.engine.Now()))
	})
	tb.engine.Run(20)
	if len(tb.delivered) != 1 {
		t.Fatalf("GRID delivered %d packets, want 1", len(tb.delivered))
	}
}

// --- gateway handover -----------------------------------------------------------

func TestRetireElectsSuccessorAndTransfersTable(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.RouteTTL = 0 // disable expiry so inheritance is observable late
	// a wins the first election (Upper band, at the center) but its
	// smaller battery drops to the boundary band while serving, which
	// triggers the load-balance retirement; b (still Upper) inherits.
	a := tb.add(opt, nil, 150, 150, 320) // below 60% (192 J) after ≈140 s of duty
	b := tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(15)
	if !a.IsGateway() {
		t.Fatalf("setup: a is %v", a.Role())
	}
	// Seed a routing entry so inheritance is observable.
	a.Table().Update(routing.Entry{Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, Seq: 5, Hops: 1}, tb.engine.Now())
	tb.engine.Run(250)
	if a.IsGateway() {
		t.Fatalf("a still gateway after dropping to %v band", tb.hosts[0].Level())
	}
	if !b.IsGateway() {
		t.Fatalf("successor not elected: b is %v", b.Role())
	}
	if a.Stats.RetiresSent == 0 {
		t.Fatal("no RETIRE sent")
	}
	if _, ok := b.Table().Lookup(99, tb.engine.Now()); !ok {
		t.Fatal("successor did not inherit the routing table")
	}
}

func TestGatewayDeathTriggersReelection(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.RetireEnergySecs = 0 // die abruptly: no graceful retire
	opt.LoadBalance = false  // and no band-drop retirement either
	// Host 0 wins the first election (center) but has a tiny battery.
	a := tb.add(opt, nil, 150, 150, 12)
	b := tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(5)
	if !a.IsGateway() {
		t.Fatalf("setup: a is %v", a.Role())
	}
	// a dies abruptly at ≈13 s. b sleeps with the 60 s dwell cap; on
	// its re-check wake the Awake probe goes unanswered — the paper's
	// no-gateway event case 2 — and b elects itself.
	tb.engine.Run(90)
	if !tb.hosts[0].Dead() {
		t.Fatal("a should be dead")
	}
	if !b.IsGateway() {
		t.Fatalf("b did not take over after gateway death: %v", b.Role())
	}
	if b.Stats.NoGatewayEvnts == 0 {
		t.Fatal("no no-gateway event recorded")
	}
}

func TestLoadBalanceRotatesGateways(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	// Two hosts: the first is elected, burns energy as gateway, drops a
	// band, retires; the second (still upper) takes over.
	tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 170, 170, 500)
	tb.start()
	// Gateway at ~0.9 W drops below 60% (300 J) after ≈222 s; member
	// asleep at 0.163 W barely drains. By 400 s roles must have
	// swapped at least once.
	tb.engine.Run(400)
	if tb.protos[0].Stats.RetiresSent == 0 && tb.protos[1].Stats.RetiresSent == 0 {
		t.Fatal("no load-balance retirement in 400 s")
	}
	// Exactly one gateway must exist at the end.
	if n := len(tb.gatewaysIn(grid.Coord{X: 1, Y: 1})); n != 1 {
		t.Fatalf("%d gateways after rotation, want 1", n)
	}
}

func TestNoLoadBalanceWhenDisabled(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.LoadBalance = false
	tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(400)
	total := tb.protos[0].Stats.RetiresSent + tb.protos[1].Stats.RetiresSent
	if total != 0 {
		t.Fatalf("%d retirements with load balance disabled", total)
	}
}

// --- mobility-driven handover ----------------------------------------------------

func TestGatewayMovingOutHandsOver(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	// Moving host: crosses from cell (1,1) into (2,1) at t=20
	// (x: 150→210 at 3 m/s crosses 200 after ~16.7 s).
	mov := constVel{from: geom.Point{X: 150, Y: 150}, v: geom.Vector{DX: 3}}
	a := tb.add(opt, mov, 0, 0, 500)
	b := tb.add(opt, nil, 165, 165, 500)
	tb.start()
	tb.engine.Run(10)
	if !a.IsGateway() {
		t.Fatalf("setup: a is %v", a.Role())
	}
	tb.engine.Run(30)
	if b.Role() == "member" && !b.IsGateway() {
		// b must have been woken and elected.
		t.Fatalf("b did not take over after a left: %v", b.Role())
	}
	if got := tb.hosts[0].Cell(); got != (grid.Coord{X: 2, Y: 1}) {
		t.Fatalf("a in cell %v, want (2,1)", got)
	}
}

func TestMemberMovingOutNotifiesGateway(t *testing.T) {
	tb := newTestbed(t)
	opt := GridOptions() // keep everyone awake so the LEAVE is observable
	tb.add(opt, nil, 150, 150, 500)
	mov := constVel{from: geom.Point{X: 170, Y: 150}, v: geom.Vector{DX: 3}}
	m := tb.add(opt, mov, 0, 0, 500)
	tb.start()
	tb.engine.Run(30) // crosses x=200 at t=10
	if m.Stats.LeavesSent == 0 {
		t.Fatal("moving member sent no LEAVE")
	}
}

// --- helpers -------------------------------------------------------------------

type constVel struct {
	from geom.Point
	v    geom.Vector
}

func (m constVel) Position(t float64) geom.Point  { return m.from.Add(m.v.Scale(t)) }
func (m constVel) Velocity(t float64) geom.Vector { return m.v }
