package core

import (
	"fmt"

	"ecgrid/internal/energy"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// role is the host's current protocol role. Sleep state lives in the
// node layer (host.Asleep()); a sleeping host keeps roleMember.
type role int

const (
	roleMember role = iota
	roleGateway
)

func (r role) String() string {
	if r == roleGateway {
		return "gateway"
	}
	return "member"
}

// helloInfo is what a host remembers about a neighbor's last HELLO, the
// raw material of the gateway election rules.
type helloInfo struct {
	id    hostid.ID
	level energy.Level
	dist  float64
	gflag bool
	at    float64
}

// neighborGW caches the gateway identity of a nearby grid, learned from
// overheard gflag HELLOs; used to unicast grid-addressed messages.
type neighborGW struct {
	id   hostid.ID
	seen float64
}

// Protocol is the per-host ECGRID instance. Construct with New, attach
// via host.SetProtocol, then start the host.
type Protocol struct {
	host *node.Host
	opt  Options

	role role

	// OnDeliver, if set, receives every data packet that reaches this
	// host as its final destination.
	OnDeliver func(pkt *routing.DataPacket)

	// OnGateway, if set, is called whenever this host declares itself
	// gateway of a grid (recovery metrics: re-election latency).
	OnGateway func(g grid.Coord, at float64)

	// --- shared state (any role) ---
	myGrid      grid.Coord // grid this host currently operates in
	gatewayID   hostid.ID  // believed gateway of myGrid
	lastGWHello float64
	heard       map[hostid.ID]*helloInfo
	helloTicker *sim.Ticker
	seqNo       uint32
	bcastID     uint32
	cellScratch []grid.Coord // sortedNeighborCells reuse

	// --- election ---
	electing      bool
	electionTimer *sim.Timer
	inheritRoutes []routing.Entry
	inheritHosts  []routing.HostEntry
	gwWaitTimer   *sim.Timer // waiting for a gateway HELLO after grid entry / wake

	// --- gateway state ---
	hosts      *routing.HostTable
	table      *routing.Table
	buffer     *routing.Buffer
	dup        *routing.DupCache
	neighbors  map[grid.Coord]neighborGW
	gwLevelAt  energy.Level // battery band when elected (load balance)
	discovery  map[hostid.ID]*discoveryState
	holds      map[hostid.ID]int // per-destination handover hold retries
	pendingReq map[hostid.ID]pendingRREQ
	lastPage   map[hostid.ID]float64 // rate limit for search pages
	helloReply float64               // last time we sent an unscheduled HELLO reply

	// --- member state ---
	sleepTimer *sim.Timer // dwell wake timer
	idleTimer  *sim.Timer // sleep after inactivity
	sleepToken int        // invalidates a sleep pending its grace period
	sleptCell  grid.Coord // cell the host was in when it went to sleep
	pendingOut []*routing.DataPacket
	acqTimer   *sim.Timer
	acqTries   int

	stopped bool

	Stats Stats
}

// New creates an ECGRID (or, with GridOptions, GRID) instance for host h.
func New(h *node.Host, opt Options) *Protocol {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	p := &Protocol{
		host:       h,
		opt:        opt,
		gatewayID:  hostid.None,
		heard:      make(map[hostid.ID]*helloInfo),
		hosts:      routing.NewHostTableTTL(opt.MemberActiveTTL, opt.MemberSleepTTL),
		table:      routing.NewTable(opt.RouteTTL),
		buffer:     routing.NewBuffer(opt.BufferPerDest),
		dup:        routing.NewDupCache(opt.DupTTL),
		neighbors:  make(map[grid.Coord]neighborGW),
		discovery:  make(map[hostid.ID]*discoveryState),
		holds:      make(map[hostid.ID]int),
		pendingReq: make(map[hostid.ID]pendingRREQ),
		lastPage:   make(map[hostid.ID]float64),
	}
	p.electionTimer = sim.NewTimer(h.Engine(), p.finishElection)
	p.gwWaitTimer = sim.NewTimer(h.Engine(), p.gwWaitExpired)
	p.sleepTimer = sim.NewTimer(h.Engine(), p.dwellExpired)
	p.idleTimer = sim.NewTimer(h.Engine(), p.idleExpired)
	p.acqTimer = sim.NewTimer(h.Engine(), p.acqExpired)
	return p
}

// Role returns the current role, for tests and diagnostics.
func (p *Protocol) Role() string {
	if p.host.Asleep() {
		return "sleeping"
	}
	return p.role.String()
}

// IsGateway reports whether this host currently serves as gateway.
func (p *Protocol) IsGateway() bool { return p.role == roleGateway }

// GatewayID returns the believed gateway of the host's grid.
func (p *Protocol) GatewayID() hostid.ID { return p.gatewayID }

// Grid returns the grid this host currently operates in.
func (p *Protocol) Grid() grid.Coord { return p.myGrid }

// Table exposes the routing table for tests.
func (p *Protocol) Table() *routing.Table { return p.table }

// KnowsMember reports whether this host, as gateway, has a live host-table
// row for id (test and tooling hook).
func (p *Protocol) KnowsMember(id hostid.ID) bool {
	_, ok := p.hosts.Fresh(id, p.host.Now())
	return ok
}

// --- node.Protocol implementation -----------------------------------------

// Start begins protocol operation: the initial HELLO exchange and
// election of §3.1.
func (p *Protocol) Start() {
	p.myGrid = p.host.Cell()
	// Every active host broadcasts HELLO periodically; the phase is
	// jittered per host.
	phase := p.host.RNG().Uniform(sim.StreamHelloPhase, 0, p.opt.HelloPeriod*p.opt.HelloJitterFrac)
	p.helloTicker = sim.NewTicker(p.host.Engine(), p.opt.HelloPeriod, phase, p.helloTick)
	// Initial state: all hosts active, exchange HELLOs, elect after one
	// HELLO period (§3.1 step 2). The first HELLO is jittered so the
	// whole network does not key up in the same slot.
	p.sendHelloJittered(p.opt.HelloPeriod * p.opt.HelloJitterFrac)
	p.startElection()
}

// Stopped handles battery death: cancel all timers.
func (p *Protocol) Stopped() {
	p.stopped = true
	if p.helloTicker != nil {
		p.helloTicker.Stop()
	}
	for _, t := range []*sim.Timer{p.electionTimer, p.gwWaitTimer, p.sleepTimer, p.idleTimer, p.acqTimer} {
		t.Stop()
	}
	for _, d := range p.discovery { //simlint:ordered stops every timer; order-insensitive
		d.timer.Stop()
	}
}

// Receive dispatches an incoming frame by payload type.
func (p *Protocol) Receive(f *radio.Frame) {
	if p.stopped {
		return
	}
	switch m := f.Payload.(type) {
	case *routing.Hello:
		p.handleHello(m)
	case *routing.RREQ:
		p.handleRREQ(m)
	case *routing.RREP:
		p.handleRREP(m)
	case *routing.RERR:
		p.handleRERR(m)
	case *routing.Retire:
		p.handleRetire(m)
	case *routing.Transfer:
		p.handleTransfer(m)
	case *routing.ACQ:
		p.handleACQ(m, f.Src)
	case *routing.Leave:
		p.handleLeave(m)
	case *routing.Data:
		p.handleData(m)
	default:
		panic(fmt.Sprintf("core: unknown payload %T", f.Payload))
	}
}

// Woken runs when the host returns to active mode.
func (p *Protocol) Woken(cause node.WakeCause) {
	if p.stopped {
		return
	}
	p.sleepTimer.Stop()
	cur := p.host.Cell()
	moved := cur != p.sleptCell

	if moved {
		// §3.2: the host is leaving (has left) its sleep-time grid.
		// Notify the old gateway and find footing in the new grid.
		p.sendLeave(p.sleptCell)
		p.enterGrid(cur)
		p.touchActivity()
		return
	}

	switch cause {
	case node.WakeSelf:
		if len(p.pendingOut) > 0 {
			// Woke up to transmit: run the ACQ handshake (§3.3).
			p.startACQ()
			return
		}
		// Still in the same grid with nothing to send: announce we are
		// (briefly) awake and wait for the gateway's HELLO before
		// sleeping again. The paper's host only re-checks its
		// position, but the tiny Awake broadcast keeps a successor
		// gateway's host table complete and turns a dead-gateway grid
		// self-healing: no response is the paper's no-gateway event
		// case 2.
		p.sendAwake()
		p.acqTries = 0
		p.acqTimer.Reset(p.opt.AcqTimeout)
	case node.WakePage:
		// The gateway has traffic for us: announce we are awake so the
		// buffer flushes, then stay active for the idle window.
		p.sendAwake()
		p.touchActivity()
	case node.WakeGridPage:
		// Election imminent (a RETIRE or a no-gateway event follows).
		// Stay awake; if nothing arrives, the gateway-wait fallback
		// triggers an election.
		p.touchActivity()
		p.gwWaitTimer.Reset(p.opt.GatewayTimeout)
	}
}

// CellChanged handles an awake host crossing a grid boundary.
func (p *Protocol) CellChanged(old, cur grid.Coord) {
	if p.stopped {
		return
	}
	if p.role == roleGateway {
		// §3.2 "hosts move out of a grid", gateway case: hand over to
		// a successor in the old grid, then join the new grid.
		p.retire(old, "moved")
		p.enterGrid(cur)
		return
	}
	// Member case: unicast a departure notice, then join the new grid.
	p.sendLeave(old)
	p.enterGrid(cur)
}

// SubmitData accepts an application packet for delivery (traffic layer
// entry point).
func (p *Protocol) SubmitData(pkt *routing.DataPacket) {
	if p.stopped {
		return
	}
	if pkt.Dst == p.host.ID() {
		// Loopback: deliver immediately.
		p.deliver(pkt)
		return
	}
	if p.role == roleGateway {
		p.routeData(&routing.Data{Packet: pkt, TargetGrid: p.myGrid})
		return
	}
	p.pendingOut = append(p.pendingOut, pkt)
	if p.host.Asleep() {
		// Wake up to transmit; Woken(WakeSelf) sees pendingOut and
		// runs the ACQ handshake.
		p.host.WakeByTimer()
		return
	}
	p.touchActivity()
	if p.gatewayFresh() {
		p.drainPending()
		return
	}
	if !p.acqTimer.Active() && !p.electing {
		p.startACQ()
	}
}

// --- HELLO machinery --------------------------------------------------------

func (p *Protocol) helloTick() {
	if p.stopped || p.host.Asleep() {
		return
	}
	p.sendHello()
	if p.role == roleGateway {
		p.gatewayPeriodic()
		return
	}
	// No-gateway detection, case 1: an active member that has not heard
	// its gateway for too long (or has none at all).
	if !p.electing && !p.gwWaitTimer.Active() && !p.gatewayFresh() {
		p.noGatewayEvent("silent gateway")
	}
}

func (p *Protocol) sendHello() {
	h := &routing.Hello{
		ID:    p.host.ID(),
		Grid:  p.host.Cell(),
		GFlag: p.role == roleGateway,
		Level: int(p.host.Level()),
		Dist:  p.host.DistToCellCenter(),
	}
	p.Stats.HellosSent++
	p.host.SendFrame("hello", hostid.Broadcast, routing.HelloBytes+radio.MACHeaderBytes, h)
}

func (p *Protocol) handleHello(m *routing.Hello) {
	now := p.host.Now()
	if m.Grid != p.host.Cell() {
		// Different grid: only gateway identities matter (they let us
		// unicast grid-addressed traffic).
		if m.GFlag {
			p.neighbors[m.Grid] = neighborGW{id: m.ID, seen: now}
		}
		return
	}
	// Same grid: record for elections, updating the existing entry in
	// place — neighbors re-HELLO every period, so the steady state is an
	// overwrite, not an insert.
	if hi := p.heard[m.ID]; hi != nil {
		hi.level, hi.dist, hi.gflag, hi.at = energy.Level(m.Level), m.Dist, m.GFlag, now
	} else {
		p.heard[m.ID] = &helloInfo{id: m.ID, level: energy.Level(m.Level), dist: m.Dist, gflag: m.GFlag, at: now}
	}

	if m.GFlag {
		p.sawGatewayHello(m, now)
		return
	}

	if p.role == roleGateway {
		// §3.2: a gateway hearing a new host's HELLO re-broadcasts its
		// own so the newcomer learns who is in charge. Rate-limited so
		// HELLO exchanges cannot feed themselves.
		p.hosts.Note(m.ID, routing.HostActive, now)
		p.flushBuffer(m.ID) // the host is provably awake
		if now-p.helloReply > 0.2 {
			p.helloReply = now
			p.sendHello()
		}
	}
	// Members record the HELLO (done above) and let elections read it.
}

// sendHelloJittered broadcasts a HELLO after a uniform random delay in
// [0, maxJitter), de-synchronizing bursts triggered by a common event
// (startup, RETIRE, grid pages).
func (p *Protocol) sendHelloJittered(maxJitter float64) {
	if maxJitter <= 0 {
		p.sendHello()
		return
	}
	d := p.host.RNG().Uniform(sim.StreamHelloJitter, 0, maxJitter)
	p.host.Engine().Schedule(d, func() {
		if p.stopped || p.host.Asleep() {
			return
		}
		p.sendHello()
	})
}

// sawGatewayHello processes a gflag HELLO from this host's own grid.
func (p *Protocol) sawGatewayHello(m *routing.Hello, now float64) {
	if p.role == roleGateway && m.ID != p.host.ID() {
		// Gateway conflict (split brain after mobility or elections
		// racing). The election comparator decides who abdicates.
		if p.loses(m) {
			p.abdicateTo(m.ID)
		}
		return
	}

	p.gatewayID = m.ID
	p.lastGWHello = now
	if p.electing {
		// Someone already won: stand down.
		p.cancelElection()
	}
	p.gwWaitTimer.Stop()
	if p.acqTimer.Active() {
		// The gateway answered our ACQ/Awake: hand over pending data
		// now rather than waiting for the timeout.
		p.acqTimer.Stop()
		if len(p.pendingOut) > 0 {
			p.drainPending()
		}
	}

	// §3.2 case "hosts move into a new grid": replace the gateway only
	// with a strictly higher battery level.
	if p.opt.EnergyAwareElection && p.role == roleMember &&
		int(p.host.Level()) > m.Level && !p.host.Asleep() && p.opt.SleepEnabled {
		p.declareGateway("replacement")
		return
	}

	// §3.1 step 4: members with nothing to send may sleep.
	p.maybeSleep()
}

// loses reports whether this host loses the election comparison against
// the sender of HELLO m.
func (p *Protocol) loses(m *routing.Hello) bool {
	me := &helloInfo{id: p.host.ID(), level: p.host.Level(), dist: p.host.DistToCellCenter()}
	other := &helloInfo{id: m.ID, level: energy.Level(m.Level), dist: m.Dist}
	return p.better(other, me)
}

// --- sleep management --------------------------------------------------------

// touchActivity resets the idle countdown that eventually puts a member
// to sleep, and cancels a sleep already in its grace period.
func (p *Protocol) touchActivity() {
	if !p.opt.SleepEnabled || p.role == roleGateway || p.host.Asleep() {
		return
	}
	p.sleepToken++ // abort a pending grace-period sleep
	p.idleTimer.Reset(p.opt.IdleTimeout)
}

// maybeSleep puts a member to sleep if nothing keeps it awake and no
// recent activity suggests more traffic (the idle timer is armed instead).
// A member may only sleep under a live gateway (§3.1 step 4: members
// sleep after receiving the gateway's HELLO); without one it stays awake
// so the no-gateway machinery can run.
func (p *Protocol) maybeSleep() {
	if !p.opt.SleepEnabled || p.role == roleGateway || p.host.Asleep() ||
		p.electing || len(p.pendingOut) > 0 || p.acqTimer.Active() ||
		!p.gatewayFresh() {
		return
	}
	if p.idleTimer.Active() {
		return // recent activity: let the idle timer decide
	}
	p.goToSleep()
}

func (p *Protocol) idleExpired() {
	if p.stopped {
		return
	}
	p.maybeSleep()
}

// goToSleep announces sleep status, then — after a short grace period
// that lets the notice (and anything else queued at the MAC) actually go
// on air — sets the dwell wake timer and turns the transceiver off. Any
// activity during the grace period cancels the sleep.
func (p *Protocol) goToSleep() {
	if p.host.Asleep() || p.stopped || p.role == roleGateway {
		return
	}
	// Tell the gateway our status is now "sleep mode" so its host table
	// is accurate (§3: the host table stores transmit/sleep status).
	p.sendSleepNotice()
	p.sleepToken++
	tok := p.sleepToken
	p.host.Engine().Schedule(sleepGrace, func() {
		if p.stopped || tok != p.sleepToken || p.host.Asleep() ||
			p.role == roleGateway || p.electing ||
			len(p.pendingOut) > 0 || p.acqTimer.Active() ||
			!p.gatewayFresh() {
			return
		}
		p.sleptCell = p.host.Cell()
		dwell := p.host.EstimateDwell(p.opt.MaxDwell)
		if dwell <= 0 {
			dwell = 0.1 // on a boundary: re-check almost immediately
		}
		p.sleepTimer.Reset(dwell)
		p.Stats.SleepsEntered++
		p.host.Sleep()
	})
}

// sleepGrace is the delay between the sleep notice and the transceiver
// switching off: long enough for a queued 42-byte frame plus CSMA
// backoff, short enough to be negligible against the idle draw.
const sleepGrace = 0.01

func (p *Protocol) dwellExpired() {
	if p.stopped {
		return
	}
	// Wake to re-check position, per §3.2.
	p.host.WakeByTimer()
}

// sendSleepNotice broadcasts a tiny status update; the gateway marks us
// sleeping.
func (p *Protocol) sendSleepNotice() {
	p.host.SendFrame("sleep", hostid.Broadcast,
		routing.AwakeBytes+radio.MACHeaderBytes, &routing.ACQ{Grid: p.host.Cell(), Src: p.host.ID(), Dst: sleepMarker})
}

// sendAwake broadcasts an awake notice; the gateway marks us active and
// flushes buffered packets.
func (p *Protocol) sendAwake() {
	p.Stats.ACQsSent++
	p.host.SendFrame("awake", hostid.Broadcast,
		routing.AwakeBytes+radio.MACHeaderBytes, &routing.ACQ{Grid: p.host.Cell(), Src: p.host.ID(), Dst: hostid.None})
}

// sleepMarker distinguishes a sleep notice from an awake notice in the
// shared ACQ payload.
const sleepMarker hostid.ID = -3

// --- ACQ handshake (member with data to send) -------------------------------

func (p *Protocol) startACQ() {
	p.acqTries = 0
	p.sendACQ()
}

func (p *Protocol) sendACQ() {
	dst := hostid.None
	if len(p.pendingOut) > 0 {
		dst = p.pendingOut[0].Dst
	}
	p.Stats.ACQsSent++
	p.host.SendFrame("acq", hostid.Broadcast,
		routing.ACQBytes+radio.MACHeaderBytes, &routing.ACQ{Grid: p.host.Cell(), Src: p.host.ID(), Dst: dst})
	p.acqTimer.Reset(p.opt.AcqTimeout)
}

func (p *Protocol) acqExpired() {
	if p.stopped || p.role == roleGateway {
		return
	}
	if p.gatewayFresh() {
		p.drainPending()
		p.maybeSleep()
		return
	}
	p.acqTries++
	if p.acqTries <= p.opt.AcqRetries {
		p.sendACQ()
		return
	}
	// No-gateway event, case 2: a host woke (to transmit, or for its
	// dwell re-check) and got no response from any gateway.
	p.noGatewayEvent("acq unanswered")
}

// gatewayFresh reports whether we have heard our grid's gateway recently
// enough to trust a unicast to it.
func (p *Protocol) gatewayFresh() bool {
	return p.gatewayID != hostid.None && p.gatewayID != p.host.ID() &&
		p.host.Now()-p.lastGWHello <= p.opt.GatewayTimeout
}

// drainPending unicasts queued outbound packets to the gateway.
func (p *Protocol) drainPending() {
	if len(p.pendingOut) == 0 {
		return
	}
	if p.role == roleGateway {
		for _, pkt := range p.pendingOut {
			p.routeData(&routing.Data{Packet: pkt, TargetGrid: p.myGrid})
		}
		p.pendingOut = nil
		return
	}
	if !p.gatewayFresh() {
		return
	}
	p.acqTimer.Stop()
	for _, pkt := range p.pendingOut {
		p.host.SendFrame("data", p.gatewayID,
			pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, &routing.Data{Packet: pkt, TargetGrid: p.host.Cell()})
	}
	p.pendingOut = nil
	p.touchActivity()
}

// --- grid entry ---------------------------------------------------------------

// enterGrid is the §3.2 "hosts move into a new grid" procedure.
func (p *Protocol) enterGrid(cur grid.Coord) {
	p.role = roleMember
	p.myGrid = cur
	p.gatewayID = hostid.None
	p.cancelElection()
	p.heard = make(map[hostid.ID]*helloInfo)
	p.sendHello()
	// If no gateway HELLO arrives within a HELLO period, the grid is
	// empty: declare ourselves gateway.
	p.gwWaitTimer.Reset(p.opt.HelloPeriod)
	p.touchActivity()
}

// gwWaitExpired fires when no gateway announced itself in time.
func (p *Protocol) gwWaitExpired() {
	if p.stopped || p.role == roleGateway || p.host.Asleep() {
		return
	}
	if p.gatewayFresh() {
		return
	}
	if p.electing {
		return
	}
	// Nobody with a gflag answered our HELLO. The grid may be truly
	// empty (§3.2: declare ourselves) — or it may hold only sleeping
	// hosts whose gateway is gone. We cannot tell the difference
	// without waking them, and the paper requires all hosts awake for
	// an election anyway ("To elect a new gateway, all hosts in the
	// same grid must be in active mode"), so both cases run through
	// the no-gateway procedure: page the grid, exchange HELLOs, elect.
	// In a truly empty grid the election is a one-candidate landslide.
	p.noGatewayEvent("no gateway hello")
}

// sendLeave notifies the gateway of oldCell that we are departing, and
// where to, so it can keep forwarding our traffic (§3.4). The notice is
// broadcast rather than unicast: the old grid's gateway may have changed
// while we slept, and whoever holds the role now is the one that needs
// the stub.
func (p *Protocol) sendLeave(oldCell grid.Coord) {
	p.Stats.LeavesSent++
	p.host.SendFrame("leave", hostid.Broadcast,
		routing.LeaveBytes+radio.MACHeaderBytes, &routing.Leave{ID: p.host.ID(), Grid: oldCell, NewGrid: p.host.Cell()})
}

// handleLeave removes the departed member and installs §3.4's forwarding
// stub: traffic for the host is now one hop longer, through its new grid.
func (p *Protocol) handleLeave(m *routing.Leave) {
	if p.role != roleGateway || m.Grid != p.myGrid {
		return
	}
	p.hosts.Remove(m.ID)
	if m.NewGrid != m.Grid && p.host.Partition().Valid(m.NewGrid) && m.NewGrid != p.myGrid {
		seq := uint32(1)
		if e, ok := p.table.Lookup(m.ID, p.host.Now()); ok {
			seq = e.Seq + 1
		}
		p.table.Update(routing.Entry{
			Dst:      m.ID,
			NextGrid: m.NewGrid,
			DestGrid: m.NewGrid,
			Seq:      seq,
			Hops:     1,
		}, p.host.Now())
		// Any packets buffered for the departed host follow it.
		p.host.Engine().Schedule(0, func() {
			if !p.stopped && p.role == roleGateway && !p.host.Asleep() {
				p.flushRouted(m.ID)
			}
		})
	}
}

// deliver hands a packet that reached its final destination to the
// application layer.
func (p *Protocol) deliver(pkt *routing.DataPacket) {
	p.Stats.DataDelivered++
	p.touchActivity()
	if p.OnDeliver != nil {
		p.OnDeliver(pkt)
	}
}

// nextSeq increments and returns this host's sequence number.
func (p *Protocol) nextSeq() uint32 {
	p.seqNo++
	return p.seqNo
}

// nextBcastID increments and returns this host's RREQ broadcast id.
func (p *Protocol) nextBcastID() uint32 {
	p.bcastID++
	return p.bcastID
}
