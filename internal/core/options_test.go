package core

import "testing"

func TestDefaultOptionsValid(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("DefaultOptions invalid: %v", err)
	}
	if err := GridOptions().Validate(); err != nil {
		t.Fatalf("GridOptions invalid: %v", err)
	}
}

func TestOptionsValidateRejects(t *testing.T) {
	mutations := map[string]func(*Options){
		"hello period":    func(o *Options) { o.HelloPeriod = 0 },
		"jitter frac":     func(o *Options) { o.HelloJitterFrac = 1 },
		"negative tau":    func(o *Options) { o.Tau = -1 },
		"gateway timeout": func(o *Options) { o.GatewayTimeout = o.HelloPeriod },
		"buffer":          func(o *Options) { o.BufferPerDest = 0 },
		"max dwell":       func(o *Options) { o.MaxDwell = 0 },
		"idle timeout":    func(o *Options) { o.IdleTimeout = 0 },
		"acq":             func(o *Options) { o.AcqTimeout = 0 },
		"discovery":       func(o *Options) { o.DiscoveryRetries = -1 },
		"dup ttl":         func(o *Options) { o.DupTTL = 0 },
		"sleep ttl<dwell": func(o *Options) { o.MemberSleepTTL = o.MaxDwell / 2 },
		"search policy":   func(o *Options) { o.Search = SearchPolicy(9) },
	}
	for name, mutate := range mutations {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNewPanicsOnInvalidOptions(t *testing.T) {
	tb := newTestbed(t)
	bad := DefaultOptions()
	bad.HelloPeriod = 0
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid options did not panic")
		}
	}()
	tb.add(bad, nil, 100, 100, 500)
}
