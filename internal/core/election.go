package core

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// This file implements the gateway election of §3 and §3.1, plus the
// RETIRE/TRANSFER handover of §3.2.
//
// Election rules (§3):
//  1. higher battery-level band wins;
//  2. among equal bands, smaller distance to the grid center wins;
//  3. finally, the smaller host ID wins.
//
// With EnergyAwareElection off (the GRID baseline), rule 1 is skipped:
// GRID elects purely by position, as the paper suggests for GRID
// ("the gateway host of a grid should be the one nearest to the physical
// center of the grid").

// better reports whether candidate a beats candidate b.
func (p *Protocol) better(a, b *helloInfo) bool {
	if p.opt.EnergyAwareElection && a.level != b.level {
		return a.level > b.level
	}
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// startElection begins the distributed election: broadcast HELLOs are
// already flowing (callers send one), and after a HELLO period every
// participant applies the rules to what it heard.
func (p *Protocol) startElection() {
	if p.electing || p.stopped {
		return
	}
	p.electing = true
	p.Stats.ElectionsRun++
	wait := p.opt.ElectionWait
	if wait <= 0 {
		wait = p.opt.HelloPeriod
	}
	p.electionTimer.Reset(wait)
}

func (p *Protocol) cancelElection() {
	p.electing = false
	p.electionTimer.Stop()
}

// finishElection applies the election rules after the HELLO window.
func (p *Protocol) finishElection() {
	if p.stopped || !p.electing {
		return
	}
	p.electing = false
	if p.host.Asleep() || p.role == roleGateway {
		return
	}
	me := &helloInfo{
		id:    p.host.ID(),
		level: p.host.Level(),
		dist:  p.host.DistToCellCenter(),
	}
	winner := me
	now := p.host.Now()
	//simlint:ordered better() is a strict total order (id tie-break), so the argmax is unique
	for _, h := range p.heard {
		if h.id == p.host.ID() {
			continue
		}
		// Only fresh HELLOs participate; stale entries are hosts that
		// likely left or slept.
		if now-h.at > p.opt.HelloPeriod+p.opt.GatewayTimeout {
			continue
		}
		if p.better(h, winner) {
			winner = h
		}
	}
	if winner == me {
		p.declareGateway("won election")
		return
	}
	// Someone else should win; wait for their gflag HELLO. If it never
	// comes (they left, or the HELLO collided), the gateway-wait
	// fallback triggers another round.
	p.gwWaitTimer.Reset(p.opt.GatewayTimeout)
}

// declareGateway makes this host the grid's gateway (§3.1 step 3): a
// gflag HELLO announces it, and any inherited tables are installed.
func (p *Protocol) declareGateway(reason string) {
	wasGateway := p.role == roleGateway
	p.cancelElection()
	p.gwWaitTimer.Stop()
	p.idleTimer.Stop()
	p.sleepTimer.Stop()
	p.role = roleGateway
	p.myGrid = p.host.Cell()
	p.gatewayID = p.host.ID()
	p.lastGWHello = p.host.Now()
	p.gwLevelAt = p.host.Level()
	if !wasGateway {
		p.Stats.BecameGateway++
		if p.OnGateway != nil {
			p.OnGateway(p.myGrid, p.host.Now())
		}
	}
	if p.inheritRoutes != nil {
		p.table.Merge(p.inheritRoutes, p.host.Now())
		p.inheritRoutes = nil
	}
	if p.inheritHosts != nil {
		p.hosts.Merge(p.inheritHosts)
		p.inheritHosts = nil
	}
	p.hosts.Remove(p.host.ID())
	p.sendHello() // gflag set: this is the declaration
	// A member that became gateway routes its own pending data directly.
	if len(p.pendingOut) > 0 {
		p.drainPending()
	}
}

// abdicateTo resolves a two-gateways conflict: hand our tables to the
// stronger gateway and fall back to member.
func (p *Protocol) abdicateTo(to hostid.ID) {
	if p.role != roleGateway {
		return
	}
	p.Stats.TransfersSent++
	tr := &routing.Transfer{
		Grid:   p.myGrid,
		Routes: p.table.Snapshot(p.host.Now()),
		Hosts:  p.hosts.Snapshot(),
	}
	p.host.SendFrame("transfer", to, tr.SizeBytes()+radio.MACHeaderBytes, tr)
	p.role = roleMember
	p.gatewayID = to
	p.lastGWHello = p.host.Now()
	p.touchActivity()
}

// noGatewayEvent reacts to a detected no-gateway condition (§3.2): wake
// the whole grid and run a fresh election.
func (p *Protocol) noGatewayEvent(reason string) {
	if p.electing || p.stopped {
		return
	}
	p.Stats.NoGatewayEvnts++
	p.gatewayID = hostid.None
	if p.opt.SleepEnabled && p.opt.UseRAS {
		p.Stats.GridPagesSent++
		p.host.PageGrid(p.host.Cell())
	}
	// Give woken hosts time to come up, then exchange HELLOs.
	p.host.Engine().Schedule(p.opt.Tau, func() {
		if p.stopped || p.host.Asleep() || p.role == roleGateway {
			return
		}
		p.sendHelloJittered(p.opt.HelloPeriod * p.opt.HelloJitterFrac)
		p.startElection()
	})
}

// handleRetire processes a departing gateway's RETIRE (§3.2): store the
// tables and elect a successor.
func (p *Protocol) handleRetire(m *routing.Retire) {
	if p.host.Cell() != m.Grid || p.role == roleGateway {
		return
	}
	p.gatewayID = hostid.None
	p.inheritRoutes = m.Routes
	p.inheritHosts = m.Hosts
	if m.HasNew && m.NewGrid != m.Grid {
		// §3.4 stub: the departing gateway's own traffic follows it
		// into its new grid, one hop longer.
		seq := uint32(1)
		for _, e := range m.Routes {
			if e.Dst == m.Leaving && e.Seq >= seq {
				seq = e.Seq + 1
			}
		}
		p.inheritRoutes = append(append([]routing.Entry(nil), m.Routes...), routing.Entry{
			Dst:      m.Leaving,
			NextGrid: m.NewGrid,
			DestGrid: m.NewGrid,
			Seq:      seq,
			Hops:     1,
		})
	}
	p.gwWaitTimer.Stop()
	if m.Successor == p.host.ID() {
		// Designated: take over immediately; the inherited tables were
		// stored above and install on declaration.
		p.declareGateway("designated successor")
		return
	}
	if m.Successor.IsUnicast() {
		// Someone else was designated: expect their gflag HELLO soon;
		// fall back to a full election if it never comes.
		p.gwWaitTimer.Reset(p.opt.GatewayTimeout)
		p.maybeSleepLater()
		return
	}
	p.sendHelloJittered(p.opt.HelloPeriod * p.opt.HelloJitterFrac)
	p.startElection()
}

// maybeSleepLater arms the idle countdown so a woken host that has
// nothing to do (it merely witnessed a designated handover) returns to
// sleep once the successor's HELLO confirms the grid is served.
func (p *Protocol) maybeSleepLater() {
	p.touchActivity()
}

// handleTransfer installs tables handed over by a gateway we replaced.
func (p *Protocol) handleTransfer(m *routing.Transfer) {
	if p.role != roleGateway || m.Grid != p.myGrid {
		return
	}
	p.table.Merge(m.Routes, p.host.Now())
	p.hosts.Merge(m.Hosts)
	p.hosts.Remove(p.host.ID())
}
