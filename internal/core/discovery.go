package core

import (
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// This file implements §3.3: route discovery confined to a searching
// area, the RREQ flood, the RREP reverse-path reply, and RERR recovery.

// pendingRREQ is a recently forwarded, unanswered request; if its
// destination announces itself here shortly after, the gateway answers
// late.
type pendingRREQ struct {
	req routing.RREQ
	at  float64
}

// pendingReqTTL bounds how stale a request a late answer may serve.
const pendingReqTTL = 2.0

// answerPendingRREQ sends a late RREP if a fresh pending request for id
// exists and id is now a registered local member.
func (p *Protocol) answerPendingRREQ(id hostid.ID) {
	pr, ok := p.pendingReq[id]
	if !ok || p.role != roleGateway {
		return
	}
	if p.host.Now()-pr.at > pendingReqTTL {
		delete(p.pendingReq, id)
		return
	}
	if p.isLocal(id) {
		delete(p.pendingReq, id)
		p.replyRREP(&pr.req, p.myGrid, 1)
	}
}

// discoveryState tracks one outstanding route discovery at the origin
// gateway.
type discoveryState struct {
	dst     hostid.ID
	tries   int
	timer   *sim.Timer
	lastReq *routing.RREQ
}

// startDiscovery begins (or restarts) route discovery for dst. Packets
// for dst wait in the buffer until an RREP installs a route.
func (p *Protocol) startDiscovery(dst hostid.ID) {
	if _, busy := p.discovery[dst]; busy {
		return
	}
	d := &discoveryState{dst: dst}
	d.timer = sim.NewTimer(p.host.Engine(), func() { p.discoveryTimeout(d) })
	p.discovery[dst] = d
	p.sendRREQ(d)
}

// searchAreaFor picks the searching area: the smallest rectangle covering
// our grid and the destination's last known grid (expanded by one cell as
// a mobility margin), or the whole partition when the destination's
// location is unknown — "a global search for a route is also needed when
// the source does not have location information concerning the
// destination" (§3.3).
func (p *Protocol) searchAreaFor(dst hostid.ID, attempt int) grid.SearchArea {
	part := p.host.Partition()
	policy := p.opt.Search
	if p.opt.GlobalFloodOnly {
		policy = SearchGlobal
	}
	if policy == SearchGlobal {
		return grid.GlobalSearchArea(part)
	}
	// The final retry always searches everywhere.
	if attempt > p.opt.DiscoveryRetries-1 ||
		(policy == SearchConfinedThenGlobal && attempt > 0) {
		return grid.GlobalSearchArea(part)
	}
	margin := 1
	if policy == SearchExpanding {
		margin = 1 << attempt // 1, 2, 4, ...
	}
	if e, ok := p.table.Lookup(dst, p.host.Now()); ok && part.Valid(e.DestGrid) {
		return grid.NewSearchArea(p.myGrid, e.DestGrid).Expand(margin, part)
	}
	if _, ok := p.hosts.Fresh(dst, p.host.Now()); ok {
		// Destination in our own grid: a small area suffices.
		return grid.NewSearchArea(p.myGrid, p.myGrid).Expand(margin, part)
	}
	return grid.GlobalSearchArea(part)
}

func (p *Protocol) sendRREQ(d *discoveryState) {
	req := &routing.RREQ{
		Src:      p.host.ID(),
		SrcSeq:   p.nextSeq(),
		Dst:      d.dst,
		BcastID:  p.nextBcastID(),
		Area:     p.searchAreaFor(d.dst, d.tries),
		OrigGrid: p.myGrid,
		PrevGrid: p.myGrid,
		Hops:     0,
		// Retried searches engage the RAS: somewhere a sleeping
		// destination may simply be unregistered (its sleep notice was
		// lost); paging it makes it announce itself.
		Page: d.tries > 0 && p.opt.UseRAS,
	}
	if e, ok := p.table.Lookup(d.dst, p.host.Now()); ok {
		req.DstSeq = e.Seq
	}
	d.lastReq = req
	// Mark our own request as seen so our rebroadcast logic ignores it.
	p.dup.Seen(req.Src, req.BcastID, p.host.Now())
	p.Stats.RREQsSent++
	p.host.SendFrame("rreq", hostid.Broadcast, routing.RREQBytes+radio.MACHeaderBytes, req)
	d.timer.Reset(p.opt.DiscoveryTimeout)
}

// discoveryTimeout retries a failed search with a wider (global) area,
// per §3.3: "Routes may fail to exist in the searching area. In such a
// situation, another round of route searching should be initialized to
// search all areas."
func (p *Protocol) discoveryTimeout(d *discoveryState) {
	if p.stopped || p.role != roleGateway {
		p.clearDiscovery(d.dst)
		return
	}
	if _, ok := p.table.Lookup(d.dst, p.host.Now()); ok {
		p.clearDiscovery(d.dst)
		p.flushRouted(d.dst)
		return
	}
	d.tries++
	if d.tries > p.opt.DiscoveryRetries {
		// Give up: drop the waiting packets.
		dropped := p.buffer.PopAll(d.dst)
		p.Stats.DataDropped += uint64(len(dropped))
		p.Stats.DropDiscovery += uint64(len(dropped))
		if DebugDrop != nil {
			for _, pk := range dropped {
				DebugDrop("discfail", pk)
			}
		}
		p.clearDiscovery(d.dst)
		return
	}
	p.sendRREQ(d)
}

func (p *Protocol) clearDiscovery(dst hostid.ID) {
	if d, ok := p.discovery[dst]; ok {
		d.timer.Stop()
		delete(p.discovery, dst)
	}
}

// handleRREQ processes a route request at a gateway (§3.3). Non-gateway
// hosts that happen to be awake ignore RREQs unless they are the
// destination themselves.
func (p *Protocol) handleRREQ(m *routing.RREQ) {
	now := p.host.Now()

	// A non-gateway destination replies through its own gateway, so a
	// member ignores RREQs entirely; the host-table check below covers
	// it at the gateway.
	if p.role != roleGateway {
		return
	}
	// "the gateway will first check whether it is within the area
	// defined by range" (§3.3).
	if !m.Area.Contains(p.myGrid) {
		return
	}
	if p.dup.Seen(m.Src, m.BcastID, now) {
		return
	}
	// Reverse route toward the source.
	p.table.Update(routing.Entry{
		Dst:      m.Src,
		NextGrid: m.PrevGrid,
		DestGrid: m.OrigGrid,
		Seq:      m.SrcSeq,
		Hops:     m.Hops,
	}, now)

	// Are we the destination, or its gateway?
	if m.Dst == p.host.ID() {
		p.replyRREP(m, p.myGrid, 0)
		return
	}
	if _, ok := p.hosts.Fresh(m.Dst, now); ok {
		p.replyRREP(m, p.myGrid, 1)
		return
	}
	// Optional AODV-style intermediate reply.
	if p.opt.InterRREP {
		if e, ok := p.table.Lookup(m.Dst, now); ok && e.Seq >= m.DstSeq && e.Seq > 0 {
			p.replyRREP(m, e.DestGrid, e.Hops)
			return
		}
	}
	// Paging search: transmit the destination's paging sequence in case
	// it sleeps unregistered in our grid, and remember the request so
	// its Awake answer can still be served.
	if m.Page && p.opt.UseRAS {
		if now-p.lastPage[m.Dst] > 1.0 {
			p.lastPage[m.Dst] = now
			p.Stats.PagesSent++
			p.host.Page(m.Dst)
		}
	}
	p.pendingReq[m.Dst] = pendingRREQ{req: *m, at: now}
	// Rebroadcast with ourselves as the previous grid.
	fwd := *m
	fwd.PrevGrid = p.myGrid
	fwd.Hops = m.Hops + 1
	p.Stats.RREQsSent++
	p.host.SendFrame("rreq", hostid.Broadcast, routing.RREQBytes+radio.MACHeaderBytes, &fwd)
}

// replyRREP unicasts a reply back along the reverse path.
func (p *Protocol) replyRREP(req *routing.RREQ, destGrid grid.Coord, hops int) {
	rep := &routing.RREP{
		Src:      req.Src,
		Dst:      req.Dst,
		DstSeq:   p.nextSeq(),
		DestGrid: destGrid,
		Hops:     hops,
		PrevGrid: p.myGrid,
		ToGrid:   req.PrevGrid,
	}
	p.Stats.RREPsSent++
	if req.PrevGrid == p.myGrid {
		// Single-grid discovery: install the route locally.
		p.table.Update(routing.Entry{
			Dst: req.Dst, NextGrid: destGrid, DestGrid: destGrid,
			Seq: rep.DstSeq, Hops: hops,
		}, p.host.Now())
		p.flushRouted(req.Dst)
		return
	}
	p.sendToGrid(req.PrevGrid, "rrep", routing.RREPBytes+radio.MACHeaderBytes, rep)
}

// handleRREP processes a route reply travelling the reverse path.
func (p *Protocol) handleRREP(m *routing.RREP) {
	if p.role != roleGateway || m.ToGrid != p.myGrid {
		return
	}
	now := p.host.Now()
	// Forward route: Dst is reachable via the grid the RREP came from.
	p.table.Update(routing.Entry{
		Dst:      m.Dst,
		NextGrid: m.PrevGrid,
		DestGrid: m.DestGrid,
		Seq:      m.DstSeq,
		Hops:     m.Hops + 1,
	}, now)

	if m.Src == p.host.ID() || p.isLocal(m.Src) {
		// The reply reached the origin gateway: discovery complete.
		p.clearDiscovery(m.Dst)
		p.flushRouted(m.Dst)
		return
	}
	// Continue along the reverse path using the stored reverse route.
	rev, ok := p.table.Lookup(m.Src, now)
	if !ok {
		return // reverse route expired; the origin will retry
	}
	fwd := *m
	fwd.PrevGrid = p.myGrid
	fwd.Hops = m.Hops + 1
	fwd.ToGrid = rev.NextGrid
	p.Stats.RREPsSent++
	p.sendToGrid(rev.NextGrid, "rrep", routing.RREPBytes+radio.MACHeaderBytes, &fwd)
}

// isLocal reports whether dst is a live member of this gateway's grid:
// its host-table row exists and has not aged out.
func (p *Protocol) isLocal(dst hostid.ID) bool {
	_, ok := p.hosts.Fresh(dst, p.host.Now())
	return ok
}

// flushRouted sends every buffered packet for dst now that a route (or
// the host itself) is available.
func (p *Protocol) flushRouted(dst hostid.ID) {
	for _, pkt := range p.buffer.PopAll(dst) {
		p.routeData(&routing.Data{Packet: pkt, TargetGrid: p.myGrid})
	}
}

// sendRERR reports a broken route for dst back toward the packet source,
// along the reverse path.
func (p *Protocol) sendRERR(pktSrc, dst hostid.ID) {
	rev, ok := p.table.Lookup(pktSrc, p.host.Now())
	if !ok {
		return
	}
	p.Stats.RERRsSent++
	p.sendToGrid(rev.NextGrid, "rerr", routing.RERRBytes+radio.MACHeaderBytes, &routing.RERR{
		Src:    pktSrc,
		Dst:    dst,
		ToGrid: rev.NextGrid,
	})
}

// handleRERR purges the broken route and propagates hop by hop toward the
// source's gateway, which will re-discover on the next packet.
func (p *Protocol) handleRERR(m *routing.RERR) {
	if p.role != roleGateway || m.ToGrid != p.myGrid {
		return
	}
	p.table.Remove(m.Dst)
	if m.Src == p.host.ID() || p.isLocal(m.Src) {
		return // reached the origin gateway; the purge is enough
	}
	rev, ok := p.table.Lookup(m.Src, p.host.Now())
	if !ok {
		return
	}
	fwd := *m
	fwd.ToGrid = rev.NextGrid
	p.Stats.RERRsSent++
	p.sendToGrid(rev.NextGrid, "rerr", routing.RERRBytes+radio.MACHeaderBytes, &fwd)
}
