package core

import (
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/routing"
)

// Tests for the handover and failure-recovery machinery beyond what the
// integration file covers.

func TestGatewayConflictResolvedByAbdication(t *testing.T) {
	tb := newTestbed(t)
	opt := GridOptions() // keep everyone awake so the conflict is visible
	a := tb.add(opt, nil, 150, 150, 500)
	b := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(5)
	if !a.IsGateway() || b.IsGateway() {
		t.Fatalf("setup: a=%v b=%v", a.Role(), b.Role())
	}
	// Force a split brain: b declares itself gateway too. a is closer to
	// the center, so on hearing a's next gflag HELLO b must abdicate.
	b.declareGateway("forced by test")
	if !b.IsGateway() {
		t.Fatal("forced declaration failed")
	}
	tb.engine.Run(10)
	gws := tb.gatewaysIn(grid.Coord{X: 1, Y: 1})
	if len(gws) != 1 {
		t.Fatalf("%d gateways after conflict, want 1", len(gws))
	}
	if gws[0] != a {
		t.Fatal("the weaker candidate won the conflict")
	}
	if b.Stats.TransfersSent == 0 {
		t.Fatal("abdication did not transfer tables")
	}
}

func TestAbdicationTransfersTables(t *testing.T) {
	tb := newTestbed(t)
	opt := GridOptions()
	a := tb.add(opt, nil, 150, 150, 500)
	b := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(5)
	// Give b (the member) a table entry, force it gateway, then let it
	// abdicate to a: a must inherit.
	b.declareGateway("forced by test")
	b.table.Update(routing.Entry{Dst: 77, NextGrid: grid.Coord{X: 2, Y: 1}, Seq: 3}, tb.engine.Now())
	tb.engine.Run(8)
	if b.IsGateway() {
		t.Fatal("b did not abdicate")
	}
	if _, ok := a.Table().Lookup(77, tb.engine.Now()); !ok {
		t.Fatal("a did not inherit b's table on abdication")
	}
}

func TestHigherLevelNewcomerReplacesGateway(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	// The sitting gateway has a boundary-band battery (55 %); the
	// newcomer arrives with a full one and must take over (§3.2 case 1).
	weak := tb.add(opt, nil, 150, 150, 500)
	// Gateway duty at ≈0.9 W drops weak below the 60 % band edge
	// (300 J) at ≈220 s. The newcomer drifts in at 0.4 m/s from two
	// cells away, entering cell (1,1) at t ≈ 325 — by then weak is in
	// the boundary band and the full-battery newcomer must take over on
	// its entry HELLO exchange.
	// The newcomer serves as the gateway of cell (2,1) on its way over
	// (nobody else lives there), so give it a battery big enough to
	// stay in its upper band despite that duty.
	strong := tb.add(opt, constVel{from: geom.Point{X: 330, Y: 150}, v: geom.Vector{DX: -0.4}}, 0, 0, 1200)
	tb.start()
	tb.engine.Run(340)
	if weak.host.Level() != energy.Boundary && weak.host.Level() != energy.Lower {
		t.Fatalf("weak still at %v band", weak.host.Level())
	}
	if strong.host.Cell() != (grid.Coord{X: 1, Y: 1}) {
		t.Fatalf("newcomer in %v", strong.host.Cell())
	}
	if !strong.IsGateway() {
		t.Fatalf("full-battery newcomer did not replace the worn gateway: %v vs %v (weak level %v)",
			strong.Role(), weak.Role(), weak.host.Level())
	}
}

func TestNoGatewayEventWakesGridAndElects(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.LoadBalance = false
	opt.RetireEnergySecs = 0
	// Two members sleep under a gateway that dies without warning.
	gw := tb.add(opt, nil, 150, 150, 14) // dies at ≈15 s
	tb.add(opt, nil, 170, 160, 500)
	tb.add(opt, nil, 130, 140, 500)
	tb.start()
	tb.engine.Run(5)
	if !gw.IsGateway() {
		t.Fatalf("setup: %v", gw.Role())
	}
	tb.engine.Run(90) // members' dwell wakes probe, detect, page, elect
	alive := tb.gatewaysIn(grid.Coord{X: 1, Y: 1})
	if len(alive) != 1 {
		t.Fatalf("%d gateways after silent death, want 1", len(alive))
	}
	total := tb.protos[1].Stats.NoGatewayEvnts + tb.protos[2].Stats.NoGatewayEvnts
	if total == 0 {
		t.Fatal("no no-gateway event recorded")
	}
}

func TestRetireBeforeBatteryExhaustion(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.LoadBalance = false // isolate the exhaustion path
	a := tb.add(opt, nil, 150, 150, 30)
	b := tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(40)
	if a.Stats.RetiresSent == 0 {
		t.Fatal("dying gateway never sent RETIRE")
	}
	if !b.IsGateway() {
		t.Fatalf("successor is %v", b.Role())
	}
}

func TestECGRIDSourceKeepsSendingAcrossGatewayChange(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.LoadBalance = false
	opt.RetireEnergySecs = 0
	// The source's gateway dies mid-flow; the source's ACQ handshake
	// must find (or become) the replacement and keep delivering.
	gw := tb.add(opt, nil, 150, 150, 40) // dies at ≈45 s
	src := tb.add(opt, nil, 170, 160, 500)
	dst := tb.add(opt, nil, 250, 150, 500) // gateway of (2,1)
	tb.start()
	tb.engine.Run(5)
	if !gw.IsGateway() || !dst.IsGateway() {
		t.Fatalf("setup: %v %v", gw.Role(), dst.Role())
	}
	for i := 0; i < 90; i++ {
		seq := i + 1
		tb.engine.At(5+float64(i), func() {
			src.SubmitData(pkt(1, seq, src.host.ID(), dst.host.ID(), tb.engine.Now()))
		})
	}
	tb.engine.Run(100)
	// The death costs a window of packets (detection + election), but
	// the flow must recover and deliver the bulk.
	if len(tb.delivered) < 60 {
		t.Fatalf("delivered %d/90 across a gateway death", len(tb.delivered))
	}
}

func TestDupAcqHandlingIsIdempotent(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	m := &routing.ACQ{Grid: grid.Coord{X: 1, Y: 1}, Src: 42, Dst: hostid.None}
	gw.handleACQ(m, 42)
	gw.handleACQ(m, 42)
	if !gw.KnowsMember(42) {
		t.Fatal("awake notice not registered")
	}
}

func TestStoppedProtocolIgnoresEverything(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	p := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	p.Stopped()
	// None of these may panic or schedule anything after stop.
	p.SubmitData(pkt(1, 1, p.host.ID(), 9, tb.engine.Now()))
	p.handleLeave(&routing.Leave{ID: 3, Grid: grid.Coord{X: 1, Y: 1}})
	p.Woken(0)
	p.CellChanged(grid.Coord{X: 1, Y: 1}, grid.Coord{X: 2, Y: 1})
	tb.engine.Run(10)
}

func TestDesignatedSuccessorTakesOverImmediately(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.DesignateSuccessor = true
	a := tb.add(opt, nil, 150, 150, 500)
	b := tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(5)
	if !a.IsGateway() {
		t.Fatalf("setup: a is %v", a.Role())
	}
	// a must pick b as successor from its HELLO data.
	if got := a.pickSuccessor(); got != b.host.ID() {
		t.Fatalf("pickSuccessor = %v, want %v", got, b.host.ID())
	}
	// A designated RETIRE makes the named member gateway without any
	// election round.
	tb.hosts[1].WakeByTimer()
	elections := b.Stats.ElectionsRun
	b.handleRetire(&routing.Retire{
		Grid:      grid.Coord{X: 1, Y: 1},
		Successor: b.host.ID(),
		Routes:    []routing.Entry{{Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, Seq: 4}},
	})
	if !b.IsGateway() {
		t.Fatalf("designated successor is %v", b.Role())
	}
	if b.Stats.ElectionsRun != elections {
		t.Fatal("designation still ran an election")
	}
	if _, ok := b.Table().Lookup(99, tb.engine.Now()); !ok {
		t.Fatal("designated successor did not inherit the tables")
	}
}

func TestRetireNamesOtherSuccessor(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.DesignateSuccessor = true
	tb.add(opt, nil, 150, 150, 500)
	b := tb.add(opt, nil, 170, 170, 500)
	tb.start()
	tb.engine.Run(5)
	tb.hosts[1].WakeByTimer()
	elections := b.Stats.ElectionsRun
	// Someone ELSE is designated: b just waits for their HELLO instead
	// of electing.
	b.handleRetire(&routing.Retire{
		Grid:      grid.Coord{X: 1, Y: 1},
		Successor: hostid.ID(77),
	})
	if b.IsGateway() {
		t.Fatal("non-designated member grabbed the role")
	}
	if b.Stats.ElectionsRun != elections {
		t.Fatal("witness ran an election despite a designation")
	}
}
