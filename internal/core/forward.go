package core

import (
	"cmp"
	"slices"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// DebugDrop, when non-nil, observes every dropped data packet (debug
// builds only).
var DebugDrop func(where string, pkt *routing.DataPacket)

// This file implements the data path: grid-by-grid forwarding, buffering
// for sleeping destinations, and origin-side discovery triggering.

// handleData processes an incoming data frame.
func (p *Protocol) handleData(m *routing.Data) {
	pkt := m.Packet
	if pkt.Dst == p.host.ID() {
		// Final destination (any role, including a member that was
		// paged awake for exactly this).
		p.deliver(pkt)
		return
	}
	if p.role != roleGateway {
		// A data frame can reach a member through a stale unicast (the
		// sender still believes we are this grid's gateway). Hand it
		// to the real gateway rather than dropping it.
		if p.gatewayFresh() {
			p.host.SendFrame("data", p.gatewayID,
				pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, &routing.Data{Packet: pkt, TargetGrid: p.host.Cell(), DestGrid: m.DestGrid, HasDest: m.HasDest})
			return
		}
		p.Stats.DataDropped++
		p.Stats.DropMisdirect++
		if DebugDrop != nil {
			DebugDrop("misdirect", pkt)
		}
		return
	}
	if m.TargetGrid != p.myGrid {
		// Broadcast-fallback copy meant for another grid's gateway.
		return
	}
	p.routeData(m)
}

// routeData forwards a data packet from this gateway: deliver locally,
// pass to the next grid on the route, or start a discovery.
func (p *Protocol) routeData(m *routing.Data) {
	pkt := m.Packet
	now := p.host.Now()

	if p.opt.PacketTTL > 0 && now-pkt.SentAt > p.opt.PacketTTL {
		p.Stats.DataDropped++
		p.Stats.DropExpired++
		if DebugDrop != nil {
			DebugDrop("expired", pkt)
		}
		return
	}
	if pkt.Dst == p.host.ID() {
		p.deliver(pkt)
		return
	}
	// Destination inside our own grid: last-hop delivery (§3.3 —
	// "the gateway of D must wake D before forwarding data packets").
	if p.isLocal(pkt.Dst) {
		p.deliverLocal(pkt.Dst, pkt)
		return
	}
	// Forward along the grid route, but only if the next grid's gateway
	// is known to be alive: forwarding into a gatewayless grid is a
	// silent blackhole, and a route break we can detect here is a route
	// break the source can recover from.
	if e, ok := p.table.Lookup(pkt.Dst, now); ok {
		if gw, alive := p.freshNeighbor(e.NextGrid); alive {
			delete(p.holds, pkt.Dst)
			p.table.Touch(pkt.Dst, now)
			p.table.Touch(pkt.Src, now) // keep the reverse path alive too
			p.Stats.DataForwarded++
			fwd := &routing.Data{Packet: pkt, TargetGrid: e.NextGrid, DestGrid: e.DestGrid, HasDest: true}
			p.host.SendFrame("data", gw, pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, fwd)
			return
		}
		// The next grid has no (known) gateway right now. Routes are
		// grid chains, so a handover there repairs itself as soon as a
		// successor announces: hold the packet briefly and retry
		// rather than tearing the route down.
		if p.holds[pkt.Dst] < p.opt.HoldRetries {
			p.holds[pkt.Dst]++
			p.buffer.Push(pkt.Dst, pkt)
			dst := pkt.Dst
			p.host.Engine().Schedule(p.opt.HoldDelay, func() {
				if p.stopped || p.role != roleGateway || p.host.Asleep() {
					return
				}
				p.flushRouted(dst)
			})
			return
		}
		// Still no gateway after the hold window: the route is broken.
		delete(p.holds, pkt.Dst)
		p.table.Remove(pkt.Dst)
	}
	// No route entry, but the packet says the destination lives here:
	// page-and-buffer delivery. A host table that has never heard of
	// the destination still reaches a sleeping member through the RAS
	// page; a truly absent one triggers the unreachable verdict.
	if m.HasDest && m.DestGrid == p.myGrid {
		p.deliverLocal(pkt.Dst, pkt)
		return
	}
	// No usable route, but the packet knows where its destination
	// lives: forward greedily toward that grid through any alive
	// neighbor gateway that is strictly closer (location-aware
	// forwarding in the GRID spirit; strict progress prevents loops).
	if m.HasDest {
		if gw, next, ok := p.greedyNeighbor(m.DestGrid); ok {
			p.Stats.DataForwarded++
			fwd := &routing.Data{Packet: pkt, TargetGrid: next, DestGrid: m.DestGrid, HasDest: true}
			p.host.SendFrame("data", gw, pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, fwd)
			return
		}
	}
	// If we are the origin gateway (the packet entered the grid system
	// here), buffer and discover; otherwise report the break upstream
	// and drop.
	if p.originFor(pkt) {
		p.buffer.Push(pkt.Dst, pkt)
		p.startDiscovery(pkt.Dst)
		return
	}
	p.Stats.DataDropped++
	p.Stats.DropNoRoute++
	if DebugDrop != nil {
		DebugDrop("noroute", pkt)
	}
	p.sendRERR(pkt.Src, pkt.Dst)
}

// sortedNeighborCells returns the neighbor-table keys sorted by (X, Y),
// so hot-path decisions iterate the table in an order independent of
// Go's per-process map hash. The returned slice is a per-protocol
// scratch buffer, valid until the next call.
func (p *Protocol) sortedNeighborCells() []grid.Coord {
	cells := p.cellScratch[:0]
	//simlint:ordered keys are sorted immediately below
	for c := range p.neighbors {
		cells = append(cells, c)
	}
	slices.SortFunc(cells, func(a, b grid.Coord) int {
		if a.X != b.X {
			return cmp.Compare(a.X, b.X)
		}
		return cmp.Compare(a.Y, b.Y)
	})
	p.cellScratch = cells
	return cells
}

// greedyNeighbor picks the alive neighbor gateway whose grid is strictly
// closer (in grid hops) to target than our own, preferring the closest.
// Iterating cells in sorted order makes the equal-distance tie-break the
// (X, Y)-smallest cell, independent of map iteration order.
func (p *Protocol) greedyNeighbor(target grid.Coord) (gw hostid.ID, next grid.Coord, ok bool) {
	now := p.host.Now()
	best := p.myGrid.ChebyshevDist(target)
	found := false
	for _, c := range p.sortedNeighborCells() {
		n := p.neighbors[c]
		if now-n.seen > p.opt.NeighborGWTTL {
			continue
		}
		// Strict progress toward the target; the first cell at the
		// winning distance keeps the slot.
		if d := c.ChebyshevDist(target); d < best {
			best, gw, next, found = d, n.id, c, true
		}
	}
	return gw, next, found
}

// freshNeighbor returns the believed-alive gateway of cell c. A gateway
// is believed alive while its gflag HELLOs keep arriving.
func (p *Protocol) freshNeighbor(c grid.Coord) (gw hostid.ID, alive bool) {
	n, ok := p.neighbors[c]
	if !ok || p.host.Now()-n.seen > p.opt.NeighborGWTTL {
		return hostid.None, false
	}
	return n.id, true
}

// originFor reports whether this gateway is the packet's entry point into
// the grid-routing system: the source itself, or the gateway of the
// source's grid.
func (p *Protocol) originFor(pkt *routing.DataPacket) bool {
	return pkt.Src == p.host.ID() || p.isLocal(pkt.Src)
}
