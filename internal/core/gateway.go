package core

import (
	"ecgrid/internal/energy"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// This file implements the gateway-side duties: periodic self-checks
// (load balance, §3.2; energy-exhaustion retirement), the RETIRE
// handover, and the ACQ/awake/sleep bookkeeping of the host table.

// gatewayPeriodic runs on every HELLO tick while serving as gateway.
func (p *Protocol) gatewayPeriodic() {
	now := p.host.Now()

	// Retire before the battery runs out, so the RETIRE handover still
	// goes on air (§3.2).
	if !p.host.Battery().IsInfinite() &&
		p.host.Battery().TimeToEmpty(now, energy.Idle) < p.opt.RetireEnergySecs {
		p.retire(p.myGrid, "battery exhausted")
		return
	}

	// Load balance: quit when the battery band drops (upper→boundary or
	// boundary→lower). A gateway elected at the lower band serves until
	// the end (§3.2).
	if p.opt.LoadBalance && p.gwLevelAt != energy.Lower {
		if lvl := p.host.Level(); lvl < p.gwLevelAt {
			p.retire(p.myGrid, "load balance")
			return
		}
	}
}

// retire performs the §3.2 departure procedure for cell: wake everyone
// with the broadcast sequence, wait τ, then hand the tables over in a
// RETIRE broadcast. Afterwards this host is a plain member.
func (p *Protocol) retire(cell grid.Coord, reason string) {
	if p.role != roleGateway {
		return
	}
	p.role = roleMember
	p.gatewayID = hostid.None
	p.Stats.RetiresSent++
	if p.opt.SleepEnabled && p.opt.UseRAS {
		p.Stats.GridPagesSent++
		p.host.PageGrid(cell)
	}
	retireMsg := &routing.Retire{
		Grid:      cell,
		Routes:    p.table.Snapshot(p.host.Now()),
		Hosts:     p.hosts.Snapshot(),
		Leaving:   p.host.ID(),
		Successor: hostid.None,
	}
	if p.opt.DesignateSuccessor {
		retireMsg.Successor = p.pickSuccessor()
	}
	p.hosts = routing.NewHostTableTTL(p.opt.MemberActiveTTL, p.opt.MemberSleepTTL)
	p.host.Engine().Schedule(p.opt.Tau, func() {
		if p.stopped || p.host.Asleep() {
			return
		}
		if p.role == roleGateway {
			return // re-elected meanwhile; stay in charge
		}
		if cur := p.host.Cell(); cur != cell {
			// We moved out: tell the successor where our traffic
			// should follow (§3.4 for gateways).
			retireMsg.NewGrid = cur
			retireMsg.HasNew = true
		} else {
			// In-place retirement (load balance / exhaustion): we stay
			// as a member; the successor should know us.
			retireMsg.Hosts = append(retireMsg.Hosts, routing.HostEntry{
				ID: p.host.ID(), Status: routing.HostActive, LastSeen: p.host.Now(),
			})
		}
		p.host.SendFrame("retire", hostid.Broadcast,
			retireMsg.SizeBytes()+radio.MACHeaderBytes, retireMsg)
		// If we retired in place (load balance / exhaustion) we also
		// take part in the successor election as a regular member.
		if p.host.Cell() == cell {
			p.sendHelloJittered(p.opt.HelloPeriod * p.opt.HelloJitterFrac)
			p.startElection()
		}
	})
}

// pickSuccessor applies the election rules to the freshest HELLO data
// the retiring gateway holds about its grid-mates. hostid.None means no
// viable candidate is known and receivers run a normal election.
func (p *Protocol) pickSuccessor() hostid.ID {
	now := p.host.Now()
	var best *helloInfo
	//simlint:ordered better() is a strict total order (id tie-break), so the argmax is unique
	for _, h := range p.heard {
		if h.id == p.host.ID() {
			continue
		}
		if now-h.at > p.opt.MemberSleepTTL {
			continue
		}
		if _, member := p.hosts.Fresh(h.id, now); !member {
			continue
		}
		if best == nil || p.better(h, best) {
			best = h
		}
	}
	if best == nil {
		return hostid.None
	}
	return best.id
}

// handleACQ processes the shared ACQ payload, which carries three
// meanings distinguished by Dst:
//
//   - Dst == sleepMarker: a member announcing it is going to sleep;
//   - Dst == hostid.None: a member announcing it is awake (flush buffer);
//   - otherwise: §3.3's acquire message — a woken member wants to send
//     to Dst; respond with a HELLO so it learns the current gateway.
func (p *Protocol) handleACQ(m *routing.ACQ, from hostid.ID) {
	if p.role != roleGateway || m.Grid != p.myGrid {
		return
	}
	now := p.host.Now()
	switch m.Dst {
	case sleepMarker:
		p.hosts.Note(m.Src, routing.HostSleeping, now)
		return
	case hostid.None:
		p.hosts.Note(m.Src, routing.HostActive, now)
		p.flushBuffer(m.Src)
		p.answerPendingRREQ(m.Src)
		// Reply so hosts whose gateway changed while they slept learn
		// the new identity (the paper's handshake rationale).
		p.sendHello()
		return
	default:
		p.hosts.Note(m.Src, routing.HostActive, now)
		p.flushBuffer(m.Src)
		p.answerPendingRREQ(m.Src)
		p.sendHello()
	}
	_ = from
}

// flushBuffer forwards every packet buffered for dst, which is now awake.
func (p *Protocol) flushBuffer(dst hostid.ID) {
	for _, pkt := range p.buffer.PopAll(dst) {
		p.sendDataToLocal(dst, pkt)
	}
}

// sendDataToLocal unicasts a data packet to a host in this gateway's own
// grid.
func (p *Protocol) sendDataToLocal(dst hostid.ID, pkt *routing.DataPacket) {
	p.Stats.DataForwarded++
	p.host.SendFrame("data", dst,
		pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, &routing.Data{Packet: pkt, TargetGrid: p.myGrid})
}

// deliverLocal moves a packet the last hop inside the grid: directly if
// the destination is known active, via page-and-buffer if it sleeps.
func (p *Protocol) deliverLocal(dst hostid.ID, pkt *routing.DataPacket) {
	now := p.host.Now()
	st, known := p.hosts.Fresh(dst, now)
	if known && st.Status == routing.HostActive {
		p.sendDataToLocal(dst, pkt)
		return
	}
	// Sleeping or unknown: buffer, page, and give the destination a
	// chance to answer before declaring it unreachable.
	p.buffer.Push(dst, pkt)
	if p.opt.UseRAS {
		p.Stats.PagesSent++
		p.host.Page(dst)
	}
	// Verdict delay: with RAS the page answer arrives within
	// milliseconds; without it, a known sleeper flushes on its own
	// wake (no verdict scheduled) and an unknown host gets one HELLO
	// period to show up.
	var wait float64
	switch {
	case p.opt.UseRAS:
		wait = p.opt.FlushDelay
	case !known:
		wait = 1.2 * p.opt.HelloPeriod
	default:
		return // known sleeper, no paging: wait for its dwell wake-up
	}
	p.host.Engine().Schedule(wait, func() {
		if p.stopped || p.role != roleGateway || p.host.Asleep() {
			return
		}
		if p.buffer.Pending(dst) == 0 {
			return // the Awake notice already flushed it
		}
		if p.isLocal(dst) {
			// We have heard of the host; the page should have woken
			// it. Send even if no Awake arrived — MAC retries cover a
			// lost first frame.
			p.flushBuffer(dst)
			return
		}
		// No trace of the destination in this grid: it moved away (or
		// died). Drop and tell the source so it re-discovers.
		dropped := p.buffer.PopAll(dst)
		p.Stats.DataDropped += uint64(len(dropped))
		p.Stats.DropUnreach += uint64(len(dropped))
		if DebugDrop != nil {
			for _, d := range dropped {
				DebugDrop("unreach", d)
			}
		}
		p.sendRERR(pkt.Src, dst)
	})
}

// sendToGrid forwards a grid-addressed payload: unicast to the cached
// gateway of the target grid when known and fresh, else broadcast (the
// gateway of that grid filters by TargetGrid).
func (p *Protocol) sendToGrid(target grid.Coord, kind string, bytes int, payload any) {
	now := p.host.Now()
	if gw, ok := p.neighbors[target]; ok && now-gw.seen <= p.opt.NeighborGWTTL {
		p.host.SendFrame(kind, gw.id, bytes, payload)
		return
	}
	p.host.SendFrame(kind, hostid.Broadcast, bytes, payload)
}
