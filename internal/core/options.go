// Package core implements ECGRID, the paper's contribution: an
// energy-conserving, grid-based, location-aware routing protocol for
// mobile ad hoc networks.
//
// One host per grid cell is elected gateway and stays awake to forward
// route discovery and data; every other host turns its transceiver off.
// Sleeping hosts are woken on demand through the RAS paging substrate, so
// no periodic wakeups are needed and packets to sleeping destinations are
// buffered at the gateway instead of lost.
//
// The same implementation also serves as the GRID baseline: GRID is
// ECGRID with energy management disabled (no sleeping, no energy-aware
// election, no load balancing), which is exactly how the paper relates
// the two protocols. Use GridOptions for that configuration.
package core

import "fmt"

// Options are the protocol's tunables and feature switches. The zero
// value is not meaningful; start from DefaultOptions or GridOptions.
type Options struct {
	// HelloPeriod is the interval between periodic HELLO broadcasts of
	// active hosts (§3.1 step 1) and the window of the election
	// algorithm (step 2).
	HelloPeriod float64
	// HelloJitterFrac randomizes each host's HELLO phase by a uniform
	// fraction of the period, de-synchronizing broadcasts.
	HelloJitterFrac float64
	// Tau is the paper's τ: the time a retiring gateway waits between
	// paging the grid's broadcast sequence and sending RETIRE, so that
	// sleeping hosts are awake to hear it.
	Tau float64
	// ElectionWait is the HELLO-exchange window of the election
	// algorithm (§3.1 step 2). Handover elections leave the grid
	// gatewayless for this long, so it is kept shorter than the
	// periodic HelloPeriod: all participants are awake and send their
	// HELLOs within the jitter window anyway.
	ElectionWait float64
	// HoldRetries and HoldDelay govern forwarding across a handover
	// gap: a gateway that cannot reach the next grid's gateway holds
	// the packet and retries instead of immediately declaring the
	// route broken, bridging the gatewayless window of an election.
	HoldRetries int
	HoldDelay   float64
	// GatewayTimeout is how long an active member tolerates silence
	// from its gateway before declaring a no-gateway event (case 1 of
	// §3.2).
	GatewayTimeout float64
	// RouteTTL expires unused routing-table entries.
	RouteTTL float64
	// DupTTL expires duplicate-RREQ records.
	DupTTL float64
	// BufferPerDest bounds the gateway's per-destination data buffer.
	BufferPerDest int
	// MaxDwell caps the sleep timer derived from the GPS dwell
	// estimate; a paused host re-checks at least this often.
	MaxDwell float64
	// IdleTimeout is how long a non-gateway host stays active after its
	// last send or receive before going (back) to sleep.
	IdleTimeout float64
	// AcqTimeout and AcqRetries govern the ACQ handshake of a host that
	// woke up to transmit (§3.3): no gateway response within the
	// timeout re-sends the ACQ; exhausting retries is a no-gateway
	// event (case 2 of §3.2).
	AcqTimeout float64
	AcqRetries int
	// DiscoveryTimeout and DiscoveryRetries govern route discovery:
	// a confined search that yields no RREP is retried, finally with a
	// global search area, matching §3.3.
	DiscoveryTimeout float64
	DiscoveryRetries int
	// FlushDelay is the wait between paging a sleeping destination and
	// force-flushing its buffered packets if no Awake notice arrived.
	FlushDelay float64
	// NeighborGWTTL expires the cache of neighboring grids' gateway
	// identities (learned from overheard gflag HELLOs).
	NeighborGWTTL float64
	// MemberActiveTTL and MemberSleepTTL age the gateway's host table:
	// an active member re-HELLOs every period, so a silent one has
	// left; a sleeping member stays silent until its dwell wake-up
	// (bounded by MaxDwell), so its row must outlive that.
	MemberActiveTTL float64
	MemberSleepTTL  float64
	// PacketTTL drops data packets older than this at every forwarding
	// decision, bounding queueing tails (a default AODV-style lifetime).
	PacketTTL float64
	// RetireEnergySecs makes a gateway retire when its remaining
	// battery, at idle draw, is below this many seconds — the paper's
	// "the gateway will issue a broadcast sequence and a RETIRE message
	// before its battery runs out".
	RetireEnergySecs float64

	// SleepEnabled turns the energy-conserving machinery on. False
	// reproduces GRID: every host stays awake.
	SleepEnabled bool
	// EnergyAwareElection uses the paper's battery-level election rules.
	// False elects purely by distance to the grid center (GRID's rule).
	EnergyAwareElection bool
	// LoadBalance makes a gateway retire when its battery band drops
	// (upper→boundary or boundary→lower), §3.2.
	LoadBalance bool
	// UseRAS enables on-demand paging of sleeping hosts. When false
	// (ablation), sleeping destinations receive buffered packets only
	// when their own dwell timers happen to wake them — GAF-style.
	UseRAS bool
	// GlobalFloodOnly disables search-area confinement (ablation): all
	// RREQs flood the whole partition. Equivalent to SearchGlobal.
	GlobalFloodOnly bool
	// Search selects the searching-area confinement policy (§3.3; the
	// GRID paper offers several). See the SearchPolicy constants.
	Search SearchPolicy
	// DesignateSuccessor lets a retiring gateway name the election
	// winner inside its RETIRE message (computed with the same rules
	// from its freshest HELLO data), removing the handover's
	// gatewayless election window. Off by default: measurements (see
	// BenchmarkAblationDesignate) show the stale designations of
	// long-sleeping members cost as much via the fallback timeout as
	// the skipped election saves.
	DesignateSuccessor bool
	// InterRREP lets intermediate gateways holding a fresh-enough route
	// answer RREQs, AODV-style. Off by default: the paper routes RREQs
	// all the way to the destination's gateway.
	InterRREP bool
}

// DefaultOptions returns the ECGRID configuration used throughout the
// evaluation.
func DefaultOptions() Options {
	return Options{
		HelloPeriod:         1.0,
		HelloJitterFrac:     0.25,
		Tau:                 0.05,
		ElectionWait:        0.5,
		HoldRetries:         3,
		HoldDelay:           0.7,
		GatewayTimeout:      2.5,
		RouteTTL:            30,
		DupTTL:              30,
		BufferPerDest:       32,
		MaxDwell:            60,
		IdleTimeout:         0.6,
		AcqTimeout:          0.3,
		AcqRetries:          2,
		DiscoveryTimeout:    0.5,
		DiscoveryRetries:    2,
		FlushDelay:          0.05,
		NeighborGWTTL:       3.0,
		MemberActiveTTL:     2.5,
		MemberSleepTTL:      90.0,
		PacketTTL:           10.0,
		RetireEnergySecs:    5,
		SleepEnabled:        true,
		EnergyAwareElection: true,
		LoadBalance:         true,
		UseRAS:              true,
	}
}

// SearchPolicy selects how route searches are confined (§3.3).
type SearchPolicy int

const (
	// SearchConfinedThenGlobal (the default, and the paper's two-round
	// scheme): first search the smallest rectangle covering the source
	// and the destination's last known grid, then fall back to a global
	// search — "another round of route searching should be initialized
	// to search all areas".
	SearchConfinedThenGlobal SearchPolicy = iota
	// SearchExpanding widens the rectangle's margin exponentially per
	// retry (1, 2, 4, ... cells) before the final global round — one of
	// the GRID paper's alternative confinement schemes.
	SearchExpanding
	// SearchGlobal never confines: every request floods the partition.
	SearchGlobal
)

// String names the policy.
func (p SearchPolicy) String() string {
	switch p {
	case SearchConfinedThenGlobal:
		return "confined-then-global"
	case SearchExpanding:
		return "expanding"
	case SearchGlobal:
		return "global"
	default:
		return "SearchPolicy(?)"
	}
}

// Validate reports configuration mistakes: non-positive periods and
// windows, or caps that cannot work together. New panics on an invalid
// Options; library users building custom configurations can check first.
func (o Options) Validate() error {
	switch {
	case o.HelloPeriod <= 0:
		return fmt.Errorf("core: HelloPeriod %v must be positive", o.HelloPeriod)
	case o.HelloJitterFrac < 0 || o.HelloJitterFrac >= 1:
		return fmt.Errorf("core: HelloJitterFrac %v must be in [0, 1)", o.HelloJitterFrac)
	case o.Tau < 0:
		return fmt.Errorf("core: Tau %v must be non-negative", o.Tau)
	case o.GatewayTimeout <= o.HelloPeriod:
		return fmt.Errorf("core: GatewayTimeout %v must exceed HelloPeriod %v (a single missed HELLO is not silence)", o.GatewayTimeout, o.HelloPeriod)
	case o.BufferPerDest <= 0:
		return fmt.Errorf("core: BufferPerDest %d must be positive", o.BufferPerDest)
	case o.MaxDwell <= 0:
		return fmt.Errorf("core: MaxDwell %v must be positive", o.MaxDwell)
	case o.IdleTimeout <= 0:
		return fmt.Errorf("core: IdleTimeout %v must be positive", o.IdleTimeout)
	case o.AcqTimeout <= 0 || o.AcqRetries < 0:
		return fmt.Errorf("core: invalid ACQ parameters (%v, %d)", o.AcqTimeout, o.AcqRetries)
	case o.DiscoveryTimeout <= 0 || o.DiscoveryRetries < 0:
		return fmt.Errorf("core: invalid discovery parameters (%v, %d)", o.DiscoveryTimeout, o.DiscoveryRetries)
	case o.DupTTL <= 0:
		return fmt.Errorf("core: DupTTL %v must be positive", o.DupTTL)
	case o.SleepEnabled && o.MemberSleepTTL > 0 && o.MemberSleepTTL < o.MaxDwell:
		return fmt.Errorf("core: MemberSleepTTL %v must cover MaxDwell %v or sleepers expire mid-sleep", o.MemberSleepTTL, o.MaxDwell)
	}
	switch o.Search {
	case SearchConfinedThenGlobal, SearchExpanding, SearchGlobal:
	default:
		return fmt.Errorf("core: unknown search policy %d", int(o.Search))
	}
	return nil
}

// GridOptions returns the GRID baseline: the same grid routing with all
// energy conservation disabled.
func GridOptions() Options {
	o := DefaultOptions()
	o.SleepEnabled = false
	o.EnergyAwareElection = false
	o.LoadBalance = false
	o.UseRAS = false
	// Nobody sleeps under GRID, so a silent member has simply left:
	// no demotion window.
	o.MemberSleepTTL = o.MemberActiveTTL
	return o
}

// Stats counts protocol events on one host; the runner aggregates them
// across hosts for the overhead metrics.
type Stats struct {
	HellosSent     uint64
	RREQsSent      uint64 // originated or forwarded
	RREPsSent      uint64
	RERRsSent      uint64
	RetiresSent    uint64
	TransfersSent  uint64
	ACQsSent       uint64
	LeavesSent     uint64
	DataForwarded  uint64
	DataDelivered  uint64
	DataDropped    uint64
	DropMisdirect  uint64 // stale unicast reached a member with no gateway
	DropNoRoute    uint64 // transit gateway without a route
	DropDiscovery  uint64 // origin discovery exhausted its retries
	DropUnreach    uint64 // paged destination never answered
	DropExpired    uint64 // packet exceeded PacketTTL in queues
	PagesSent      uint64
	GridPagesSent  uint64
	ElectionsRun   uint64
	BecameGateway  uint64
	NoGatewayEvnts uint64
	SleepsEntered  uint64
}
