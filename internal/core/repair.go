package core

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// TxFailed is the link-layer "max retries exceeded" indication. ECGRID
// uses it the way AODV uses link-layer feedback: learn that the addressed
// host is gone and re-route the packet instead of losing it silently.
func (p *Protocol) TxFailed(f *radio.Frame) {
	if p.stopped || p.host.Asleep() {
		return
	}
	m, ok := f.Payload.(*routing.Data)
	if !ok {
		return // control traffic has its own timeout machinery
	}
	// Negative neighbor feedback: if the dead unicast addressed a
	// cached neighbor gateway, that cache entry is wrong — drop it so
	// the next decision does not repeat the mistake.
	for _, c := range p.sortedNeighborCells() {
		if p.neighbors[c].id == f.Dst {
			delete(p.neighbors, c)
		}
	}
	if p.role != roleGateway {
		// A member's unicast to its gateway died: the gateway is gone.
		// Re-queue the packet and run the ACQ/no-gateway machinery.
		if p.gatewayID == f.Dst {
			p.gatewayID = hostid.None
		}
		p.pendingOut = append(p.pendingOut, m.Packet)
		if !p.acqTimer.Active() && !p.electing {
			p.startACQ()
		}
		return
	}
	// A gateway's forward died. If it was the last hop to a local
	// member, that member left or died: forget it and let the routing
	// path (stub, greedy, discovery) take over.
	if m.TargetGrid == p.myGrid {
		p.hosts.Remove(f.Dst)
	}
	p.routeData(m)
}
