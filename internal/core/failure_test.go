package core

import (
	"testing"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// Failure-path tests: discovery exhaustion, RERR propagation, unreachable
// destinations, and member-side link failures.

func TestDiscoveryRetriesThenDrops(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	// Destination 99 does not exist anywhere: the gateway buffers the
	// packet, retries the search (confined → global), and finally drops.
	gw.SubmitData(pkt(1, 1, gw.host.ID(), hostid.ID(99), tb.engine.Now()))
	tb.engine.Run(15)
	if gw.Stats.DropDiscovery != 1 {
		t.Fatalf("DropDiscovery = %d, want 1", gw.Stats.DropDiscovery)
	}
	// The confined attempt plus global retries all went on air.
	if gw.Stats.RREQsSent < 2 {
		t.Fatalf("RREQsSent = %d, want ≥ 2 (retries)", gw.Stats.RREQsSent)
	}
	if len(tb.delivered) != 0 {
		t.Fatal("phantom delivery")
	}
}

func TestDiscoveryRecoversIfRouteAppearsBeforeTimeout(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	tb.add(opt, nil, 250, 150, 500) // the live gateway of cell (2,1)
	tb.start()
	tb.engine.Run(5)
	gw.SubmitData(pkt(1, 1, gw.host.ID(), hostid.ID(99), tb.engine.Now()))
	// A route materializes (e.g. via another flow's RREP) before the
	// discovery gives up: the buffered packet must flush along it toward
	// the (real, HELLO-known) neighbor gateway instead of being dropped
	// by the origin's discovery timeout.
	tb.engine.Schedule(0.2, func() {
		gw.table.Update(routing.Entry{
			Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, DestGrid: grid.Coord{X: 2, Y: 1}, Seq: 9,
		}, tb.engine.Now())
	})
	tb.engine.Run(10)
	if gw.Stats.DropDiscovery != 0 {
		t.Fatal("buffered packet dropped despite a route appearing")
	}
	if gw.Stats.DataForwarded == 0 {
		t.Fatal("buffered packet never forwarded")
	}
}

func TestRERRPropagatesToOrigin(t *testing.T) {
	tb := newTestbed(t)
	opt := GridOptions()
	// Three gateways in a row; the origin is the leftmost.
	a := tb.add(opt, nil, 150, 150, 500)
	b := tb.add(opt, nil, 250, 150, 500)
	c := tb.add(opt, nil, 350, 150, 500)
	tb.start()
	tb.engine.Run(5)
	now := tb.engine.Now()
	// Hand-build a route a→b→c for destination 99 with reverse routes
	// back toward a (whose grid hosts the flow source: a itself).
	a.table.Update(routing.Entry{Dst: 99, NextGrid: grid.Coord{X: 2, Y: 1}, DestGrid: grid.Coord{X: 3, Y: 1}, Seq: 1}, now)
	b.table.Update(routing.Entry{Dst: 99, NextGrid: grid.Coord{X: 3, Y: 1}, DestGrid: grid.Coord{X: 3, Y: 1}, Seq: 1}, now)
	b.table.Update(routing.Entry{Dst: a.host.ID(), NextGrid: grid.Coord{X: 1, Y: 1}, Seq: 1}, now)
	c.table.Update(routing.Entry{Dst: a.host.ID(), NextGrid: grid.Coord{X: 2, Y: 1}, Seq: 1}, now)

	// c reports a break for 99 toward the source a.
	tb.engine.Schedule(0.01, func() { c.sendRERR(a.host.ID(), 99) })
	tb.engine.Run(8)
	if _, ok := b.table.Lookup(99, tb.engine.Now()); ok {
		t.Fatal("transit gateway kept the broken route")
	}
	if _, ok := a.table.Lookup(99, tb.engine.Now()); ok {
		t.Fatal("origin gateway kept the broken route")
	}
}

func TestUnreachableVerdictDropsAndReports(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	// Data claims its destination lives here, but the gateway has never
	// heard of host 77 and the page goes unanswered: after FlushDelay
	// the packets are dropped as unreachable.
	gw.routeData(&routing.Data{
		Packet:     pkt(1, 1, hostid.ID(88), hostid.ID(77), tb.engine.Now()),
		TargetGrid: grid.Coord{X: 1, Y: 1},
		DestGrid:   grid.Coord{X: 1, Y: 1},
		HasDest:    true,
	})
	tb.engine.Run(6)
	if gw.Stats.DropUnreach != 1 {
		t.Fatalf("DropUnreach = %d, want 1", gw.Stats.DropUnreach)
	}
	if gw.Stats.PagesSent != 1 {
		t.Fatalf("PagesSent = %d, want 1", gw.Stats.PagesSent)
	}
}

func TestPagedSleepingMemberBeatsVerdict(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	member := tb.add(opt, nil, 170, 160, 500)
	tb.start()
	tb.engine.Run(15)
	if !tb.hosts[1].Asleep() {
		t.Fatal("member not asleep")
	}
	// Even a gateway that has LOST its host table (fresh election with
	// no inheritance) can deliver to a sleeping member via DestGrid +
	// page.
	gw.hosts.Remove(member.host.ID())
	gw.routeData(&routing.Data{
		Packet:     pkt(1, 1, gw.host.ID(), member.host.ID(), tb.engine.Now()),
		TargetGrid: grid.Coord{X: 1, Y: 1},
		DestGrid:   grid.Coord{X: 1, Y: 1},
		HasDest:    true,
	})
	tb.engine.Run(17)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (page must beat the verdict)", len(tb.delivered))
	}
	if gw.Stats.DropUnreach != 0 {
		t.Fatal("verdict dropped a reachable member")
	}
}

func TestMemberTxFailedRequeuesAndRecovers(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	member := tb.add(opt, nil, 170, 160, 500)
	tb.start()
	tb.engine.Run(2)
	if member.IsGateway() {
		t.Fatal("wrong election")
	}
	// Simulate a failed unicast to a vanished gateway: the member must
	// requeue the packet and re-run the ACQ handshake; since the real
	// gateway is alive, the packet eventually flows.
	p := pkt(1, 1, member.host.ID(), gw.host.ID(), tb.engine.Now())
	tb.engine.Schedule(0.01, func() {
		if tb.hosts[1].Asleep() {
			tb.hosts[1].WakeByTimer()
		}
		member.TxFailed(&radio.Frame{
			Kind: "data", Src: member.host.ID(), Dst: 99, Bytes: 574,
			Payload: &routing.Data{Packet: p, TargetGrid: grid.Coord{X: 1, Y: 1}},
		})
	})
	tb.engine.Run(8)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d after member-side repair, want 1", len(tb.delivered))
	}
}

func TestGatewayIDAccessor(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	m := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(2)
	if got := m.GatewayID(); got != gw.host.ID() {
		t.Fatalf("member's GatewayID = %v, want %v", got, gw.host.ID())
	}
	if got := gw.GatewayID(); got != gw.host.ID() {
		t.Fatalf("gateway's GatewayID = %v", got)
	}
}

func TestRoleStringsAndLifecycle(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	m := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(15)
	if gw.Role() != "gateway" || m.Role() != "sleeping" {
		t.Fatalf("roles: %v / %v", gw.Role(), m.Role())
	}
	if roleMember.String() != "member" || roleGateway.String() != "gateway" {
		t.Fatal("role names wrong")
	}
}

func TestBroadcastFallbackWhenNeighborUnknownForRREP(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	gw := tb.add(opt, nil, 150, 150, 500)
	tb.start()
	tb.engine.Run(5)
	// replyRREP toward a grid whose gateway we have never heard:
	// sendToGrid must fall back to broadcast without panicking.
	gw.replyRREP(&routing.RREQ{
		Src: 98, SrcSeq: 1, Dst: gw.host.ID(), BcastID: 4,
		Area:     grid.GlobalSearchArea(tb.partition),
		OrigGrid: grid.Coord{X: 7, Y: 7}, PrevGrid: grid.Coord{X: 7, Y: 7},
	}, grid.Coord{X: 1, Y: 1}, 0)
	if gw.Stats.RREPsSent != 1 {
		t.Fatalf("RREPsSent = %d", gw.Stats.RREPsSent)
	}
	tb.engine.Run(6)
}

func TestDwellWakeChecksCellAndResleeps(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	opt.MaxDwell = 5 // short dwell: frequent probe wakes
	tb.add(opt, nil, 150, 150, 500)
	member := tb.add(opt, nil, 180, 180, 500)
	tb.start()
	tb.engine.Run(30)
	// The stationary member must have cycled sleep→probe→sleep several
	// times (dwell cap 5 s) and be asleep again now.
	if member.Stats.SleepsEntered < 3 {
		t.Fatalf("only %d sleeps with a 5 s dwell cap", member.Stats.SleepsEntered)
	}
	if !tb.hosts[1].Asleep() {
		t.Fatalf("member is %v, want sleeping", member.Role())
	}
	// Each probe produced an Awake the gateway answered.
	if member.Stats.ACQsSent < 3 {
		t.Fatalf("only %d probes", member.Stats.ACQsSent)
	}
}

func TestDrainPendingAsFreshGateway(t *testing.T) {
	tb := newTestbed(t)
	opt := DefaultOptions()
	lone := tb.add(opt, nil, 150, 150, 500)
	dst := tb.add(opt, nil, 250, 150, 500)
	tb.start()
	tb.engine.Run(0.2) // before the election: both are members
	if lone.IsGateway() {
		t.Skip("election finished earlier than expected")
	}
	// Packets submitted before any gateway exists pend; when the host
	// wins its own election it must drain them itself.
	lone.SubmitData(pkt(1, 1, lone.host.ID(), dst.host.ID(), tb.engine.Now()))
	tb.engine.Run(10)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d, want 1 (drain on self-election)", len(tb.delivered))
	}
}
