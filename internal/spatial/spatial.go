// Package spatial provides the deterministic spatial hash behind the
// radio hot path: a uniform "loose grid" over the simulation plane that
// answers range-bounded neighbor queries in O(local density) instead of
// O(population).
//
// # The loose-grid trick
//
// Every tracked host is bucketed into the square cell containing its
// position at bucketing time. The bucket is allowed to go stale: a host
// only re-buckets when its position leaves its cell's bounds *expanded
// by the slack margin*. The invariant maintained at every event time is
// therefore
//
//	position(now) ∈ cell ⊕ slack
//
// which lets a query for "all hosts within radius r of p" scan only the
// cells intersecting the square [p − (r+slack), p + (r+slack)]² — a
// superset of every host truly in range — while stationary or paused
// hosts never re-bucket at all. Re-bucketing is event-driven: each entry
// supplies a NextExit oracle (backed by the host's mobility legs, see
// mobility.NextRectExit) and the index schedules one engine event at the
// earliest time the position may escape the loose bounds. Because a
// fresh bucket always contains the position with at least slack of
// margin on every side, consecutive re-bucket events of one host are
// separated by the time it takes to travel the slack distance — the
// slack is what bounds the maintenance rate for bounded host speed.
//
// # Determinism
//
// Nearby returns candidates sorted by host ID, so iteration order is a
// pure function of the tracked population and the query — never of map
// hash order or insertion history. Buckets themselves are slices;
// nothing in this package ranges over a map. Re-bucket events touch no
// random stream and no state outside the index, so interleaving them
// into a simulation cannot perturb any other event's behavior: a run
// with the index produces byte-identical traces to a brute-force scan
// (see internal/runner's equivalence test).
package spatial

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// NextExit is the re-bucketing oracle for one tracked host: it returns
// the earliest simulation time ≥ t at which the host's position may lie
// outside bounds, or +Inf if it provably never leaves. It must be
// conservative (never late); returning early merely costs an extra
// event. mobility.NextRectExit implements it for every mobility model.
type NextExit func(t float64, bounds geom.Rect) float64

// slackGuard widens every query rectangle by a millimeter so the
// superset guarantee survives floating-point slop: positions are
// re-derived by leg interpolation and may land nanometers outside the
// loose bounds the re-bucket event was scheduled against. One
// millimeter dwarfs any accumulated rounding while staying far below
// the scale of a radio range.
const slackGuard = 1e-3

// minRebucketDelay keeps a degenerate oracle (one that returns the
// current instant) from scheduling a zero-delay event loop.
const minRebucketDelay = 1e-9

type cellKey struct{ cx, cy int32 }

type entry[T any] struct {
	id      hostid.ID
	payload T
	pos     func() geom.Point
	next    NextExit
	key     cellKey
	ev      sim.Handle
	// rebucketFn is the re-bucket callback bound once at Insert, so the
	// steady re-bucket cycle schedules without allocating a closure.
	rebucketFn func()
}

// Candidate is one Nearby result.
type Candidate[T any] struct {
	ID      hostid.ID
	Payload T
	// Sure reports that the host is certainly within the query radius
	// (its whole loose cell is), so the caller may skip the exact
	// distance check. Sure is sound, not complete: a host in range near
	// the query boundary is reported with Sure == false.
	Sure bool
}

// Index is a loose uniform grid of mobile hosts. All methods must be
// called from simulation events (the engine is single-threaded).
type Index[T any] struct {
	engine *sim.Engine
	side   float64
	slack  float64
	cells  cellGrid[T]
	byID   map[hostid.ID]*entry[T]
}

// cellGrid is the bucket store: a dense row-major array covering the
// bounding box of every occupied cell. Mobility areas are bounded, so
// the box stays small and a bucket fetch is one slice load — the query
// loop touches dozens of cells per transmission, where a map lookup
// per cell was measurably hot.
//
// epochs runs parallel to buckets: a monotonic per-cell counter bumped
// on every membership change of the cell (add, remove, re-bucket in or
// out) and on every explicit Touch. Cells outside the occupied box have
// the implicit epoch 0, and growth relocates counters with their cells,
// so the epoch of an absolute cell coordinate never moves backwards —
// an (epoch now == epoch then) comparison proves the cell's membership
// (and every Touch-signalled payload state) is unchanged since then.
type cellGrid[T any] struct {
	minX, minY int32
	w, h       int32
	buckets    [][]*entry[T]
	epochs     []uint64
}

// at returns the bucket for (cx, cy), nil when outside the occupied box.
func (g *cellGrid[T]) at(cx, cy int32) []*entry[T] {
	cx -= g.minX
	cy -= g.minY
	if uint32(cx) >= uint32(g.w) || uint32(cy) >= uint32(g.h) {
		return nil
	}
	return g.buckets[cy*g.w+cx]
}

func (g *cellGrid[T]) add(k cellKey, e *entry[T]) {
	g.ensure(k)
	i := (k.cy-g.minY)*g.w + (k.cx - g.minX)
	g.buckets[i] = append(g.buckets[i], e)
	g.epochs[i]++
}

// epochAt returns the epoch of (cx, cy); cells outside the occupied box
// are implicitly at epoch 0 (growth starts them there, so the value is
// stable until a first add).
func (g *cellGrid[T]) epochAt(cx, cy int32) uint64 {
	cx -= g.minX
	cy -= g.minY
	if uint32(cx) >= uint32(g.w) || uint32(cy) >= uint32(g.h) {
		return 0
	}
	return g.epochs[cy*g.w+cx]
}

// bump advances the epoch of an occupied cell. The cell must be inside
// the box: callers bump the cell an existing entry is bucketed in.
func (g *cellGrid[T]) bump(k cellKey) {
	g.epochs[(k.cy-g.minY)*g.w+(k.cx-g.minX)]++
}

// ensure grows the box to include k, over-allocating a two-cell margin
// per side so a host oscillating at the frontier doesn't re-grow.
func (g *cellGrid[T]) ensure(k cellKey) {
	if g.w == 0 {
		g.minX, g.minY = k.cx-2, k.cy-2
		g.w, g.h = 5, 5
		g.buckets = make([][]*entry[T], int(g.w)*int(g.h))
		g.epochs = make([]uint64, int(g.w)*int(g.h))
		return
	}
	if k.cx >= g.minX && k.cy >= g.minY && k.cx < g.minX+g.w && k.cy < g.minY+g.h {
		return
	}
	minX, minY := g.minX, g.minY
	maxX, maxY := g.minX+g.w-1, g.minY+g.h-1
	if k.cx < minX {
		minX = k.cx - 2
	}
	if k.cy < minY {
		minY = k.cy - 2
	}
	if k.cx > maxX {
		maxX = k.cx + 2
	}
	if k.cy > maxY {
		maxY = k.cy + 2
	}
	w, h := maxX-minX+1, maxY-minY+1
	buckets := make([][]*entry[T], int(w)*int(h))
	epochs := make([]uint64, int(w)*int(h))
	for y := int32(0); y < g.h; y++ {
		copy(buckets[(y+g.minY-minY)*w+(g.minX-minX):], g.buckets[y*g.w:(y+1)*g.w])
		copy(epochs[(y+g.minY-minY)*w+(g.minX-minX):], g.epochs[y*g.w:(y+1)*g.w])
	}
	g.minX, g.minY, g.w, g.h, g.buckets, g.epochs = minX, minY, w, h, buckets, epochs
}

func (g *cellGrid[T]) remove(k cellKey, e *entry[T]) bool {
	cx, cy := k.cx-g.minX, k.cy-g.minY
	if uint32(cx) >= uint32(g.w) || uint32(cy) >= uint32(g.h) {
		return false
	}
	i := cy*g.w + cx
	bucket := g.buckets[i]
	for j, o := range bucket {
		if o == e {
			bucket[j] = bucket[len(bucket)-1]
			bucket[len(bucket)-1] = nil
			g.buckets[i] = bucket[:len(bucket)-1]
			g.epochs[i]++
			return true
		}
	}
	return false
}

// NewIndex creates an index with the given cell side and slack margin,
// both in meters. It panics on non-positive geometry: a zero slack
// would let a host sitting on a cell line re-bucket forever without
// advancing time.
func NewIndex[T any](engine *sim.Engine, side, slack float64) *Index[T] {
	if engine == nil || side <= 0 || slack <= 0 {
		panic(fmt.Sprintf("spatial: invalid index geometry (side=%v, slack=%v)", side, slack))
	}
	return &Index[T]{
		engine: engine,
		side:   side,
		slack:  slack,
		byID:   make(map[hostid.ID]*entry[T]),
	}
}

// Len returns the number of tracked hosts.
func (ix *Index[T]) Len() int { return len(ix.byID) }

func (ix *Index[T]) coord(x float64) int32 {
	return int32(math.Floor(x / ix.side))
}

func (ix *Index[T]) keyOf(p geom.Point) cellKey {
	return cellKey{ix.coord(p.X), ix.coord(p.Y)}
}

// looseBounds is the cell rectangle expanded by the slack margin — the
// region an entry's position may roam before it must re-bucket.
func (ix *Index[T]) looseBounds(k cellKey) geom.Rect {
	return geom.Rect{
		Min: geom.Point{X: float64(k.cx)*ix.side - ix.slack, Y: float64(k.cy)*ix.side - ix.slack},
		Max: geom.Point{X: float64(k.cx+1)*ix.side + ix.slack, Y: float64(k.cy+1)*ix.side + ix.slack},
	}
}

// Insert starts tracking a host. pos must return the host's position at
// the current simulation time; next is its re-bucketing oracle.
// Inserting an ID already tracked panics (it is an attach bug).
func (ix *Index[T]) Insert(id hostid.ID, payload T, pos func() geom.Point, next NextExit) {
	if _, dup := ix.byID[id]; dup {
		panic(fmt.Sprintf("spatial: duplicate insert of %v", id))
	}
	e := &entry[T]{id: id, payload: payload, pos: pos, next: next}
	e.rebucketFn = func() { ix.rebucket(e) }
	e.key = ix.keyOf(pos())
	ix.cells.add(e.key, e)
	ix.byID[id] = e
	ix.scheduleRebucket(e)
}

// Remove stops tracking a host and cancels its pending re-bucket event.
// Removing an unknown ID is a no-op.
func (ix *Index[T]) Remove(id hostid.ID) {
	e, ok := ix.byID[id]
	if !ok {
		return
	}
	delete(ix.byID, id)
	ix.engine.Cancel(e.ev)
	e.ev = sim.Handle{}
	ix.dropFromCell(e)
}

func (ix *Index[T]) dropFromCell(e *entry[T]) {
	if !ix.cells.remove(e.key, e) {
		panic(fmt.Sprintf("spatial: entry %v missing from its cell", e.id))
	}
}

func (ix *Index[T]) scheduleRebucket(e *entry[T]) {
	now := ix.engine.Now()
	at := e.next(now, ix.looseBounds(e.key))
	if math.IsInf(at, 1) {
		e.ev = sim.Handle{}
		return // provably confined (e.g. stationary): zero maintenance
	}
	delay := at - now
	if delay < minRebucketDelay {
		delay = minRebucketDelay
	}
	e.ev = ix.engine.Schedule(delay, e.rebucketFn)
}

func (ix *Index[T]) rebucket(e *entry[T]) {
	e.ev = sim.Handle{}
	if ix.byID[e.id] != e {
		return // removed (or replaced) while the event was in flight
	}
	if k := ix.keyOf(e.pos()); k != e.key {
		ix.dropFromCell(e)
		e.key = k
		ix.cells.add(k, e)
	}
	ix.scheduleRebucket(e)
}

// Nearby appends to dst every tracked host whose position may be within
// radius of p — a guaranteed superset of the hosts truly in range — and
// returns dst sorted by host ID. The caller owns the exact distance
// check (except where Sure makes it redundant) and should pass a
// recycled dst[:0] to keep the query allocation-free.
func (ix *Index[T]) Nearby(p geom.Point, radius float64, dst []Candidate[T]) []Candidate[T] {
	dst = ix.NearbyAppend(p, radius, dst)
	slices.SortFunc(dst, func(a, b Candidate[T]) int { return cmp.Compare(a.ID, b.ID) })
	return dst
}

// NearbyAppend is Nearby without the sort: candidates are appended in
// cell-scan order, which depends on bucketing history and must not leak
// into simulation decisions. Callers that need determinism (the radio
// channel) impose host-ID order themselves; everyone else should use
// Nearby.
//
// The scan walks, row by row, the cells within reach of the query disc
// — the per-row column span shrinks by the circle equation, skipping
// the corners of the bounding square. Reach is radius plus the slack a
// bucketed position may have drifted, plus the float-slop guard.
func (ix *Index[T]) NearbyAppend(p geom.Point, radius float64, dst []Candidate[T]) []Candidate[T] {
	cy0, cy1 := ix.rowRange(p, radius)
	r := radius + slackGuard
	r2 := radius * radius
	for cy := cy0; cy <= cy1; cy++ {
		cx0, cx1, ok := ix.rowSpan(p, r, cy)
		if !ok {
			continue
		}
		for cx := cx0; cx <= cx1; cx++ {
			bucket := ix.cells.at(cx, cy)
			if len(bucket) == 0 {
				continue
			}
			sure := ix.surelyWithin(cellKey{cx, cy}, p, r2)
			for _, e := range bucket {
				dst = append(dst, Candidate[T]{ID: e.id, Payload: e.payload, Sure: sure})
			}
		}
	}
	return dst
}

// rowRange returns the inclusive cell-row range a query disc can reach.
func (ix *Index[T]) rowRange(p geom.Point, radius float64) (cy0, cy1 int32) {
	yReach := radius + ix.slack + slackGuard
	return ix.coord(p.Y - yReach), ix.coord(p.Y + yReach)
}

// rowSpan returns the inclusive cell-column span of row cy that the
// query disc (p, radius) can reach, with r = radius + slackGuard; ok is
// false when the row is entirely out of reach. Shared by NearbyAppend
// and CoverEpochs so the scanned cell set and the epoch cover are one
// geometry by construction.
//
// Distance from p to the row's slack-expanded y-interval bounds the
// y-component of any candidate in the row; the x-interval that can
// still reach the disc follows from the circle equation.
func (ix *Index[T]) rowSpan(p geom.Point, r float64, cy int32) (cx0, cx1 int32, ok bool) {
	lo := float64(cy)*ix.side - ix.slack
	hi := lo + ix.side + 2*ix.slack
	rowDy := 0.0
	if p.Y < lo {
		rowDy = lo - p.Y
	} else if p.Y > hi {
		rowDy = p.Y - hi
	}
	if rowDy > r {
		return 0, 0, false
	}
	halfW := math.Sqrt(r*r-rowDy*rowDy) + ix.slack
	return ix.coord(p.X - halfW), ix.coord(p.X + halfW), true
}

// CellEpoch records one cell of a query cover together with the epoch
// it held when the cover was taken. The coordinates are absolute cell
// coordinates, so a recorded cover stays comparable across grid growth.
type CellEpoch struct {
	CX, CY int32
	Epoch  uint64
}

// CoverEpochs appends to dst one CellEpoch per cell a NearbyAppend scan
// with the same (p, radius) would visit — including currently empty and
// out-of-box cells (implicit epoch 0), because a later add there would
// change the scan's result — and returns dst. Two equal covers prove
// that between the two calls no tracked host was added to, removed
// from, or re-bucketed through any cell the scan reads, and that no
// covered host was Touched; a NearbyAppend at the second instant would
// therefore return exactly the candidates it returned at the first.
// Pass a recycled dst[:0] to keep the digest allocation-free.
func (ix *Index[T]) CoverEpochs(p geom.Point, radius float64, dst []CellEpoch) []CellEpoch {
	cy0, cy1 := ix.rowRange(p, radius)
	r := radius + slackGuard
	for cy := cy0; cy <= cy1; cy++ {
		cx0, cx1, ok := ix.rowSpan(p, r, cy)
		if !ok {
			continue
		}
		for cx := cx0; cx <= cx1; cx++ {
			dst = append(dst, CellEpoch{CX: cx, CY: cy, Epoch: ix.cells.epochAt(cx, cy)})
		}
	}
	return dst
}

// Touch bumps the epoch of the cell currently holding id, invalidating
// every cover that includes the host's cell. Callers use it to signal a
// payload state change (a radio listen flip) that epoch comparisons
// must observe even though nothing moved. Touching an untracked ID is a
// no-op: such hosts are outside every cover anyway.
func (ix *Index[T]) Touch(id hostid.ID) {
	if e, ok := ix.byID[id]; ok {
		ix.cells.bump(e.key)
	}
}

// surelyWithin reports whether every point of the cell's loose bounds
// lies within the query disc, i.e. whether each of the cell's hosts is
// in range regardless of where inside its slack margin it drifted. The
// farthest-corner distance is computed with monotone float operations
// only, so it can never round below the exact per-host distance: a true
// answer is always sound.
func (ix *Index[T]) surelyWithin(k cellKey, p geom.Point, r2 float64) bool {
	b := ix.looseBounds(k)
	dx := math.Max(p.X-b.Min.X, b.Max.X-p.X)
	dy := math.Max(p.Y-b.Min.Y, b.Max.Y-p.Y)
	return dx*dx+dy*dy <= r2
}
