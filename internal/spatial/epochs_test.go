package spatial

import (
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// coverAt is shorthand for a fresh CoverEpochs scan.
func coverAt(ix *Index[int], p geom.Point, r float64) []CellEpoch {
	return ix.CoverEpochs(p, r, nil)
}

// coversEqual reports whether two covers are identical cell for cell.
func coversEqual(a, b []CellEpoch) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// coverDiff counts cells whose epoch (or identity) changed between two
// covers of the same query.
func coverDiff(a, b []CellEpoch) int {
	if len(a) != len(b) {
		return len(a) + len(b)
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestCoverEpochsIncludesEmptyCellsAndIsStable(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 125, 31.25)
	q := geom.Point{X: 500, Y: 500}

	// An empty index still yields a cover (the empty cells at their
	// implicit epoch 0): a host arriving in any of them must be able to
	// change the cover.
	c0 := coverAt(ix, q, 200)
	if len(c0) == 0 {
		t.Fatal("cover over an empty index is empty; empty cells must be covered")
	}
	for _, ce := range c0 {
		if ce.Epoch != 0 {
			t.Fatalf("empty cell (%d,%d) at epoch %d, want 0", ce.CX, ce.CY, ce.Epoch)
		}
	}
	// No events: the cover is bit-stable across calls.
	if !coversEqual(c0, coverAt(ix, q, 200)) {
		t.Fatal("cover changed with no membership events")
	}
}

func TestCoverEpochsBumpOnInsertRemoveTouch(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 125, 31.25)
	q := geom.Point{X: 500, Y: 500}
	at := func() []CellEpoch { return coverAt(ix, q, 200) }

	before := at()
	pos := geom.Point{X: 510, Y: 490}
	ix.Insert(7, 7, func() geom.Point { return pos }, never)
	after := at()
	if d := coverDiff(before, after); d != 1 {
		t.Fatalf("Insert changed %d covered cells, want exactly the arrival cell", d)
	}

	// Touch bumps the holder's cell even though nothing moved.
	before = after
	ix.Touch(7)
	after = at()
	if d := coverDiff(before, after); d != 1 {
		t.Fatalf("Touch changed %d covered cells, want 1", d)
	}

	// Touching an untracked ID is a no-op.
	before = after
	ix.Touch(99)
	if !coversEqual(before, at()) {
		t.Fatal("Touch of an untracked ID changed the cover")
	}

	before = at()
	ix.Remove(7)
	after = at()
	if d := coverDiff(before, after); d != 1 {
		t.Fatalf("Remove changed %d covered cells, want 1", d)
	}

	// A host bucketed far outside the query disc never perturbs its cover.
	before = after
	far := geom.Point{X: 5000, Y: 5000}
	ix.Insert(8, 8, func() geom.Point { return far }, never)
	ix.Touch(8)
	if !coversEqual(before, at()) {
		t.Fatal("events outside the cover changed it")
	}
}

func TestCoverEpochsBumpOnRebucket(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 125, 31.25)

	// A host walking +x at 10 m/s: starts in the cell of x=100, exits
	// its loose bounds (x=156.25) at t≈5.6s and re-buckets into the cell
	// of x≈156.
	exit := func(t float64, bounds geom.Rect) float64 {
		x := 100 + 10*t
		if x >= bounds.Max.X {
			return t
		}
		return t + (bounds.Max.X-x)/10
	}
	ix.Insert(3, 3, func() geom.Point {
		return geom.Point{X: 100 + 10*engine.Now(), Y: 100}
	}, exit)

	oldCover := coverAt(ix, geom.Point{X: 100, Y: 100}, 60)
	newCover := coverAt(ix, geom.Point{X: 250, Y: 100}, 60)
	engine.Run(20) // drive the scheduled re-bucket events

	if coversEqual(oldCover, coverAt(ix, geom.Point{X: 100, Y: 100}, 60)) {
		t.Fatal("re-bucket did not bump the departed cell's epoch")
	}
	if coversEqual(newCover, coverAt(ix, geom.Point{X: 250, Y: 100}, 60)) {
		t.Fatal("re-bucket did not bump the arrival cell's epoch")
	}
}

func TestGridGrowthPreservesEpochs(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 125, 31.25)

	// Churn a neighborhood so its cells carry non-zero epochs.
	home := geom.Point{X: 200, Y: 200}
	for id := hostid.ID(0); id < 10; id++ {
		p := geom.Point{X: 150 + 10*float64(id), Y: 200}
		ix.Insert(id, int(id), func() geom.Point { return p }, never)
		ix.Touch(id)
	}
	before := coverAt(ix, home, 300)
	nonzero := false
	for _, ce := range before {
		nonzero = nonzero || ce.Epoch != 0
	}
	if !nonzero {
		t.Fatal("fixture produced no non-zero epochs")
	}

	// Force the dense cell box to grow in every direction; growth must
	// relocate the counters with their cells, not reset them.
	corners := []geom.Point{{X: -4000, Y: -4000}, {X: 9000, Y: -4000}, {X: -4000, Y: 9000}, {X: 9000, Y: 9000}}
	for i, p := range corners {
		pp := p
		ix.Insert(hostid.ID(100+i), 0, func() geom.Point { return pp }, never)
	}
	if !coversEqual(before, coverAt(ix, home, 300)) {
		t.Fatal("grid growth moved cell epochs: cover over an untouched neighborhood changed")
	}

	// And the epoch order is monotonic through growth: another event in
	// the home neighborhood still reads as exactly one bumped cell.
	ix.Touch(5)
	if d := coverDiff(before, coverAt(ix, home, 300)); d != 1 {
		t.Fatalf("post-growth Touch changed %d covered cells, want 1", d)
	}
}

// TestCoverMatchesScanCells pins the contract rxcache relies on: the
// cover lists exactly the cells a NearbyAppend of the same query scans,
// so a host admitted by the scan is always bucketed inside the cover.
func TestCoverMatchesScanCells(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 125, 31.25)
	rng := &lcg{s: 99}
	for id := hostid.ID(0); id < 200; id++ {
		p := geom.Point{X: rng.next() * 1000, Y: rng.next() * 1000}
		pp := p
		ix.Insert(id, int(id), func() geom.Point { return pp }, never)
	}
	for trial := 0; trial < 40; trial++ {
		q := geom.Point{X: rng.next()*1200 - 100, Y: rng.next()*1200 - 100}
		radius := 30 + rng.next()*300
		cover := coverAt(ix, q, radius)
		covered := make(map[[2]int32]bool, len(cover))
		for _, ce := range cover {
			covered[[2]int32{ce.CX, ce.CY}] = true
		}
		for _, cd := range ix.NearbyAppend(q, radius, nil) {
			e := ix.byID[cd.ID]
			if !covered[[2]int32{e.key.cx, e.key.cy}] {
				t.Fatalf("trial %d: candidate %d bucketed at (%d,%d) outside the cover",
					trial, cd.ID, e.key.cx, e.key.cy)
			}
		}
	}
}
