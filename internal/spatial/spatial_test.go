package spatial

import (
	"math"
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
	"ecgrid/internal/sim"
)

// lcg is a tiny deterministic generator for test positions; the stdlib
// sources would also do, but a three-line generator makes the fixture
// values obvious from the test alone.
type lcg struct{ s uint64 }

func (r *lcg) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / float64(1<<53)
}

// never is the NextExit oracle of a host that provably stays put.
func never(float64, geom.Rect) float64 { return math.Inf(1) }

// bruteNearby is the reference the index is checked against: the exact
// in-range set by linear scan.
func bruteNearby(pts map[hostid.ID]geom.Point, p geom.Point, radius float64) map[hostid.ID]bool {
	in := make(map[hostid.ID]bool)
	for id, q := range pts {
		if q.Dist2(p) <= radius*radius {
			in[id] = true
		}
	}
	return in
}

func TestNearbySupersetAndSorted(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 125, 31.25)
	rng := &lcg{s: 7}
	pts := make(map[hostid.ID]geom.Point)
	for id := hostid.ID(0); id < 120; id++ {
		p := geom.Point{X: rng.next() * 1000, Y: rng.next() * 1000}
		pts[id] = p
		pp := p // capture
		ix.Insert(id, int(id), func() geom.Point { return pp }, never)
	}
	if ix.Len() != 120 {
		t.Fatalf("Len = %d, want 120", ix.Len())
	}

	var dst []Candidate[int]
	for trial := 0; trial < 50; trial++ {
		q := geom.Point{X: rng.next()*1400 - 200, Y: rng.next()*1400 - 200}
		radius := 50 + rng.next()*300
		dst = ix.Nearby(q, radius, dst[:0])

		got := make(map[hostid.ID]bool)
		for i, cd := range dst {
			if i > 0 && dst[i-1].ID >= cd.ID {
				t.Fatalf("trial %d: results not strictly ID-sorted at %d: %v then %v", trial, i, dst[i-1].ID, cd.ID)
			}
			got[cd.ID] = true
			if cd.Payload != int(cd.ID) {
				t.Fatalf("trial %d: payload %d under ID %v", trial, cd.Payload, cd.ID)
			}
			if cd.Sure && pts[cd.ID].Dist2(q) > radius*radius {
				t.Fatalf("trial %d: host %v marked Sure at dist %v > radius %v",
					trial, cd.ID, pts[cd.ID].Dist(q), radius)
			}
		}
		for id := range bruteNearby(pts, q, radius) {
			if !got[id] {
				t.Fatalf("trial %d: in-range host %v missing from candidates (q=%v r=%v)", trial, id, q, radius)
			}
		}
	}
}

func TestMovingHostRebuckets(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[struct{}](engine, 100, 10)

	// A host crossing many cells: x = 20 t, so it traverses a 100 m cell
	// every 5 s. The oracle is the exact ray exit of the loose bounds.
	pos := func() geom.Point { return geom.Point{X: 20 * engine.Now(), Y: 50} }
	exit := func(t float64, b geom.Rect) float64 {
		return t + (b.Max.X-20*t)/20
	}
	ix.Insert(1, struct{}{}, pos, exit)
	// A second, stationary host far away: must never appear near the mover.
	ix.Insert(2, struct{}{}, func() geom.Point { return geom.Point{X: 5000, Y: 5000} }, never)

	for _, at := range []float64{3, 17, 42, 99} {
		at := at
		engine.At(at, func() {
			p := pos()
			got := ix.Nearby(p, 30, nil)
			found := false
			for _, cd := range got {
				if cd.ID == 2 {
					t.Errorf("t=%v: distant host in candidates near %v", at, p)
				}
				found = found || cd.ID == 1
			}
			if !found {
				t.Errorf("t=%v: moving host missing from query at its own position %v", at, p)
			}
		})
	}
	engine.Run(100)
}

func TestRemoveStopsTracking(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[struct{}](engine, 100, 10)
	ix.Insert(1, struct{}{}, func() geom.Point { return geom.Point{X: 5, Y: 5} }, never)
	ix.Remove(1)
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after Remove, want 0", ix.Len())
	}
	if got := ix.Nearby(geom.Point{X: 5, Y: 5}, 50, nil); len(got) != 0 {
		t.Fatalf("removed host still returned: %v", got)
	}
	ix.Remove(1) // unknown ID: must be a no-op
	// Re-inserting the ID must be legal after removal.
	ix.Insert(1, struct{}{}, func() geom.Point { return geom.Point{X: 5, Y: 5} }, never)
}

func TestDuplicateInsertPanics(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[struct{}](engine, 100, 10)
	ix.Insert(1, struct{}{}, func() geom.Point { return geom.Point{} }, never)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert did not panic")
		}
	}()
	ix.Insert(1, struct{}{}, func() geom.Point { return geom.Point{} }, never)
}

func TestInvalidGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ side, slack float64 }{{0, 1}, {1, 0}, {-5, 1}, {1, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewIndex(side=%v, slack=%v) did not panic", tc.side, tc.slack)
				}
			}()
			NewIndex[struct{}](sim.NewEngine(), tc.side, tc.slack)
		}()
	}
}

// TestGridGrowth drives the dense bucket array through several
// re-allocations by inserting hosts at ever-farther cells (including
// negative coordinates) and checks nothing is lost in the copies.
func TestGridGrowth(t *testing.T) {
	engine := sim.NewEngine()
	ix := NewIndex[int](engine, 10, 1)
	pts := make(map[hostid.ID]geom.Point)
	coords := []float64{5, -5, 95, -95, 1005, -1005, 4005, -4005}
	id := hostid.ID(0)
	for _, x := range coords {
		for _, y := range coords {
			p := geom.Point{X: x, Y: y}
			pts[id] = p
			pp := p
			ix.Insert(id, int(id), func() geom.Point { return pp }, never)
			id++
		}
	}
	for hid, p := range pts {
		got := ix.Nearby(p, 1, nil)
		found := false
		for _, cd := range got {
			found = found || cd.ID == hid
		}
		if !found {
			t.Fatalf("host %v at %v lost after grid growth", hid, p)
		}
	}
}

func TestPointSet(t *testing.T) {
	ps := NewPointSet(100)
	if ps.AnyWithin(geom.Point{}, 1e9) {
		t.Fatal("empty set reported a point")
	}
	a := geom.Point{X: 10, Y: 10}
	b := geom.Point{X: 500, Y: 500}
	ps.Add(1, a)
	ps.Add(2, b)
	if ps.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ps.Len())
	}
	if !ps.AnyWithin(geom.Point{X: 40, Y: 50}, 50) {
		t.Error("point at exactly radius distance not found") // dist(10,10 → 40,50) = 50
	}
	if ps.AnyWithin(geom.Point{X: 250, Y: 250}, 100) {
		t.Error("found a point nowhere near the query")
	}
	ps.Remove(1, a)
	if ps.AnyWithin(geom.Point{X: 40, Y: 50}, 50) {
		t.Error("removed point still found")
	}
	if !ps.AnyWithin(b, 0) {
		t.Error("zero-radius query at a stored point must hit it")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of unknown point did not panic")
		}
	}()
	ps.Remove(99, geom.Point{})
}
