package spatial

import (
	"fmt"
	"math"

	"ecgrid/internal/geom"
)

// PointSet is an exact (slack-free) spatial hash over immobile points —
// in the radio channel it holds the origin of every in-flight
// transmission so carrier sense asks "is anything radiating within
// range of p?" against the local cells only. Points never move between
// Add and Remove, so they are bucketed by their exact coordinates and
// queries need no staleness margin beyond the float-slop guard.
type PointSet struct {
	side  float64
	cells map[cellKey][]anchored
	n     int
}

type anchored struct {
	id uint64
	at geom.Point
}

// NewPointSet creates a set with the given cell side in meters.
func NewPointSet(side float64) *PointSet {
	if side <= 0 {
		panic(fmt.Sprintf("spatial: invalid point-set cell side %v", side))
	}
	return &PointSet{side: side, cells: make(map[cellKey][]anchored)}
}

// Len returns the number of stored points.
func (ps *PointSet) Len() int { return ps.n }

func (ps *PointSet) keyOf(p geom.Point) cellKey {
	return cellKey{
		int32(math.Floor(p.X / ps.side)),
		int32(math.Floor(p.Y / ps.side)),
	}
}

// Add stores a point under the caller's id. The same id must not be
// live twice.
func (ps *PointSet) Add(id uint64, at geom.Point) {
	k := ps.keyOf(at)
	ps.cells[k] = append(ps.cells[k], anchored{id: id, at: at})
	ps.n++
}

// Remove deletes the point previously added under id at the identical
// coordinates. Removing a point that was never added panics: it means
// the caller's bookkeeping diverged from the set's.
func (ps *PointSet) Remove(id uint64, at geom.Point) {
	k := ps.keyOf(at)
	bucket := ps.cells[k]
	for i := range bucket {
		if bucket[i].id == id {
			bucket[i] = bucket[len(bucket)-1]
			ps.cells[k] = bucket[:len(bucket)-1]
			ps.n--
			return
		}
	}
	panic(fmt.Sprintf("spatial: point %d missing from its cell", id))
}

// AnyWithin reports whether any stored point lies within radius of p
// (boundary inclusive, matching the channel's closed range check). The
// scan covers only the cells overlapping the query square; each
// candidate is confirmed with the exact squared distance, so the answer
// is identical to a linear scan over every stored point.
func (ps *PointSet) AnyWithin(p geom.Point, radius float64) bool {
	if ps.n == 0 {
		return false
	}
	reach := radius + slackGuard
	cx0 := int32(math.Floor((p.X - reach) / ps.side))
	cx1 := int32(math.Floor((p.X + reach) / ps.side))
	cy0 := int32(math.Floor((p.Y - reach) / ps.side))
	cy1 := int32(math.Floor((p.Y + reach) / ps.side))
	r2 := radius * radius
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, a := range ps.cells[cellKey{cx, cy}] {
				if a.at.Dist2(p) <= r2 {
					return true
				}
			}
		}
	}
	return false
}
