package experiment

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllListsTenFigures(t *testing.T) {
	figs := All()
	if len(figs) != 10 {
		t.Fatalf("All() lists %d figures, want 10", len(figs))
	}
	seen := map[Figure]bool{}
	for _, f := range figs {
		if seen[f] {
			t.Fatalf("duplicate figure %s", f)
		}
		seen[f] = true
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := Run(Figure("9z"), Options{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFig4aFastShape(t *testing.T) {
	res, err := Run(Fig4a, Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("fig 4a has %d series, want 3 (grid, ecgrid, gaf)", len(res.Series))
	}
	byLabel := map[string]Series{}
	for _, s := range res.Series {
		byLabel[s.Label] = s
		// Alive fractions live in [0, 1] and start at 1.
		if s.Points[0].Y != 1 {
			t.Errorf("%s does not start fully alive: %v", s.Label, s.Points[0])
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 1 {
				t.Errorf("%s alive fraction out of range: %+v", s.Label, p)
			}
		}
	}
	// The Fig 4 headline: GRID collapses around 590 s while ECGRID and
	// GAF stay mostly alive.
	last := func(l string) float64 {
		pts := byLabel[l].Points
		return pts[len(pts)-1].Y
	}
	if last("grid") > 0.1 {
		t.Errorf("GRID still %.2f alive at the horizon", last("grid"))
	}
	if last("ecgrid") < 0.5 || last("gaf") < 0.5 {
		t.Errorf("energy-aware protocols died early: ecgrid=%.2f gaf=%.2f",
			last("ecgrid"), last("gaf"))
	}
}

func TestFig5aFastShape(t *testing.T) {
	res, err := Run(Fig5a, Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Point{}
	for _, s := range res.Series {
		byLabel[s.Label] = s.Points
		prev := -1.0
		for _, p := range s.Points {
			if p.Y < prev-1e-9 {
				t.Errorf("%s aen decreased at t=%v", s.Label, p.X)
			}
			prev = p.Y
		}
	}
	// Fig 5 headline: GRID consumes the most at any common time.
	at := func(l string, x float64) float64 {
		for _, p := range byLabel[l] {
			if p.X == x {
				return p.Y
			}
		}
		t.Fatalf("%s has no sample at %v", l, x)
		return 0
	}
	if at("grid", 500) <= at("ecgrid", 500) || at("grid", 500) <= at("gaf", 500) {
		t.Errorf("aen ordering wrong at t=500: grid=%.3f ecgrid=%.3f gaf=%.3f",
			at("grid", 500), at("ecgrid", 500), at("gaf", 500))
	}
}

func TestFig7aFastShape(t *testing.T) {
	res, err := Run(Fig7a, Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y < 0.5 || p.Y > 1 {
				t.Errorf("%s delivery rate %.3f at pause %v out of plausible band",
					s.Label, p.Y, p.X)
			}
		}
	}
}

func TestFig6aFastShape(t *testing.T) {
	res, err := Run(Fig6a, Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.Y <= 0 || p.Y > 500 {
				t.Errorf("%s latency %.1f ms at pause %v implausible", s.Label, p.Y, p.X)
			}
		}
	}
}

func TestFig8aFastShape(t *testing.T) {
	res, err := Run(Fig8a, Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fast mode: grid and ecgrid at 50 and 200 hosts → 4 series.
	if len(res.Series) != 4 {
		t.Fatalf("fig 8a has %d series, want 4", len(res.Series))
	}
	last := map[string]float64{}
	for _, s := range res.Series {
		last[s.Label] = s.Points[len(s.Points)-1].Y
	}
	// Fig 8 headline: density helps ECGRID, not GRID.
	if last["ecgrid n=200"] <= last["grid n=200"] {
		t.Errorf("ECGRID (%.2f) not above GRID (%.2f) at n=200",
			last["ecgrid n=200"], last["grid n=200"])
	}
}

// TestParallelMatchesSerial: the same figure, with seed replicates,
// produces byte-identical serialized results at workers=1 and workers=8
// — the batch layer's core guarantee, asserted at the figure level.
func TestParallelMatchesSerial(t *testing.T) {
	opt := Options{Seed: 1, Seeds: 2, Fast: true}
	opt.Workers = 1
	serial, err := Run(Fig7a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 8
	parallel, err := Run(Fig7a, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("workers=1 and workers=8 disagree:\n%s\n%s", a, b)
	}
}

// TestManifestResumeReproducesFigure: a figure regenerated from its own
// manifest (all runs resumed) equals the original.
func TestManifestResumeReproducesFigure(t *testing.T) {
	opt := Options{Seed: 1, Fast: true}
	opt.Manifest = filepath.Join(t.TempDir(), "fig.jsonl")
	first, err := Run(Fig7a, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	resumed := 0
	opt.Progress = func(s string) {
		if strings.Contains(s, "(resumed)") {
			resumed++
		}
	}
	second, err := Run(Fig7a, opt)
	if err != nil {
		t.Fatal(err)
	}
	if resumed == 0 {
		t.Fatal("no runs were resumed from the manifest")
	}
	a, _ := json.Marshal(first)
	b, _ := json.Marshal(second)
	if string(a) != string(b) {
		t.Fatal("resumed figure differs from the original")
	}
}

func TestProgressCallback(t *testing.T) {
	var lines []string
	_, err := Run(Fig7a, Options{Seed: 1, Fast: true, Progress: func(s string) {
		lines = append(lines, s)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no progress lines")
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	res := &Result{
		Figure: Fig7a,
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{0, 1}, {1, 0.5}}},
			{Label: "b", Points: []Point{{0, 0.9}}},
		},
	}
	var tbl bytes.Buffer
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"Figure 7a", "demo", "a", "b", "1.0000", "0.9000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Series b has no sample at x=1: the table marks it with '-'.
	if !strings.Contains(out, "-") {
		t.Error("missing-sample marker absent")
	}

	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Errorf("csv header = %q", lines[0])
	}
	if lines[1] != "0,1,0.9" {
		t.Errorf("csv row = %q", lines[1])
	}
	if lines[2] != "1,0.5," {
		t.Errorf("csv missing-value row = %q", lines[2])
	}
}

func TestMultiSeedAveraging(t *testing.T) {
	res, err := Run(Fig7a, Options{Seed: 1, Seeds: 2, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.CI == nil || len(s.CI) != len(s.Points) {
			t.Fatalf("%s: missing CI (%d vs %d points)", s.Label, len(s.CI), len(s.Points))
		}
		for i, ci := range s.CI {
			if ci < 0 {
				t.Fatalf("%s: negative CI at %d", s.Label, i)
			}
		}
	}
	var tbl bytes.Buffer
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "±") {
		t.Fatal("multi-seed table has no ± column")
	}
}

func TestOverheadExperiment(t *testing.T) {
	res := RunOverhead(Options{Seed: 1, Fast: true})
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	byProto := map[string]OverheadRow{}
	for _, r := range res.Rows {
		byProto[string(r.Protocol)] = r
		if r.Delivered == 0 {
			t.Errorf("%s delivered nothing", r.Protocol)
		}
		if r.DataBytes == 0 || r.ControlBytes == 0 {
			t.Errorf("%s has empty breakdown: %+v", r.Protocol, r)
		}
		if r.ControlBytesPerDelivered() <= 0 {
			t.Errorf("%s zero control cost", r.Protocol)
		}
	}
	// ECGRID's defining overhead: it pages sleeping destinations and
	// exchanges sleep/awake notices; GRID does none of that.
	ec := byProto["ecgrid"].ByKind
	if ec["acq"].Frames == 0 && ec["awake"].Frames == 0 {
		t.Error("ECGRID shows no ACQ/awake traffic")
	}
	gr := byProto["grid"].ByKind
	if gr["sleep"].Frames != 0 {
		t.Error("GRID shows sleep notices")
	}

	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ctrl-B/deliv") {
		t.Fatalf("table missing header: %s", buf.String())
	}
}

func TestOverheadRowZeroDelivered(t *testing.T) {
	r := OverheadRow{ControlBytes: 100}
	if r.ControlBytesPerDelivered() != 0 {
		t.Fatal("division by zero delivered not guarded")
	}
}

func TestLoadSweepExtension(t *testing.T) {
	res, err := RunLoadSweep(Options{Seed: 1, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0.3 || p.Y > 1 {
				t.Errorf("%s delivery %.3f at rate %v implausible", s.Label, p.Y, p.X)
			}
		}
	}
}
