package experiment

import (
	"fmt"
	"io"
	"sort"

	"ecgrid/internal/batch"
	"ecgrid/internal/radio"
	"ecgrid/internal/scenario"
)

// Overhead is an extension experiment beyond the paper's figures: it
// breaks down each protocol's on-air bytes into data versus control
// traffic and reports the control cost per delivered packet. The paper
// reasons about this overhead qualitatively ("the increased power
// consumption results from the exchanging of the HELLO message");
// this experiment measures it.

// OverheadRow is one protocol's air-usage breakdown.
type OverheadRow struct {
	Protocol      scenario.ProtocolKind
	Delivered     int
	DataBytes     uint64
	ControlBytes  uint64
	ControlFrames uint64
	// ByKind is the full per-frame-kind split.
	ByKind map[string]radio.KindCount
}

// ControlBytesPerDelivered returns the control cost of one delivered
// packet, in bytes.
func (r OverheadRow) ControlBytesPerDelivered() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.ControlBytes) / float64(r.Delivered)
}

// OverheadResult is the experiment outcome.
type OverheadResult struct {
	Rows []OverheadRow
}

// RunOverhead measures the air-usage breakdown of all three protocols on
// the paper's common setup, running the protocols concurrently through
// the batch pool. It panics if a run fails (the configs are fixed and
// known-valid; only resource exhaustion can fail here).
func RunOverhead(opt Options) *OverheadResult {
	duration := 400.0
	if opt.Fast {
		duration = 120
	}
	var jobs []batch.Job
	for _, p := range protocols {
		cfg := baseConfig(p, 1, opt.Seed)
		cfg.Duration = duration
		jobs = append(jobs, batch.Job{Tag: fmt.Sprintf("overhead: %v", cfg), Cfg: cfg})
	}
	runs, err := runJobs(jobs, opt)
	if err != nil {
		panic(err)
	}
	res := &OverheadResult{}
	for i, p := range protocols {
		r := runs[i]
		row := OverheadRow{
			Protocol:  p,
			Delivered: r.Delivered,
			ByKind:    r.PerKind,
		}
		for kind, kc := range r.PerKind {
			if kind == "data" {
				row.DataBytes += kc.Bytes
				continue
			}
			row.ControlBytes += kc.Bytes
			row.ControlFrames += kc.Frames
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// WriteTable renders the breakdown.
func (o *OverheadResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Extension: on-air overhead breakdown (bytes on air)"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %12s %12s %10s %14s\n",
		"proto", "delivered", "data-B", "control-B", "ctrl-frames", "ctrl-B/deliv")
	for _, r := range o.Rows {
		fmt.Fprintf(w, "%-8s %10d %12d %12d %10d %14.1f\n",
			r.Protocol, r.Delivered, r.DataBytes, r.ControlBytes,
			r.ControlFrames, r.ControlBytesPerDelivered())
	}
	fmt.Fprintln(w)
	for _, r := range o.Rows {
		kinds := make([]string, 0, len(r.ByKind))
		for k := range r.ByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Fprintf(w, "%-8s", r.Protocol)
		for _, k := range kinds {
			fmt.Fprintf(w, " %s=%d/%dB", k, r.ByKind[k].Frames, r.ByKind[k].Bytes)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}
