package experiment

import (
	"fmt"

	"ecgrid/internal/batch"
)

// RunLoadSweep is an extension experiment covering the paper's second
// traffic point: §4 says each source sends "one or ten 512-byte packets
// per second", but every figure uses the 10 pkt/s network load (ten
// 1 pkt/s flows). This sweep varies the per-flow rate from the paper's
// light setting up to its heavy one (10 flows × 10 pkt/s = 100 pkt/s
// network load, 20 % of the 2 Mbps channel) and reports how delivery and
// latency hold up for each protocol. Like the figures, the whole
// (protocol × rate) grid fans out across the batch worker pool.
func RunLoadSweep(opt Options) (*Result, error) {
	rates := []float64{1, 2, 5, 10}
	duration := 400.0
	if opt.Fast {
		rates = []float64{1, 10}
		duration = 120
	}
	res := &Result{
		Figure: Figure("load"),
		Title:  "Extension: delivery rate vs per-flow CBR rate (10 flows, speed ≤ 1 m/s)",
		XLabel: "Per-flow rate (pkt/s)",
		YLabel: "Delivery rate",
	}
	var jobs []batch.Job
	for _, p := range protocols {
		for _, rate := range rates {
			cfg := baseConfig(p, 1, opt.Seed)
			cfg.RatePerFlow = rate
			cfg.Duration = duration
			jobs = append(jobs, batch.Job{Tag: fmt.Sprintf("load sweep: %v", cfg), Cfg: cfg})
		}
	}
	runs, err := runJobs(jobs, opt)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, p := range protocols {
		s := Series{Label: string(p)}
		for _, rate := range rates {
			s.Points = append(s.Points, Point{X: rate, Y: runs[i].DeliveryRate})
			i++
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
