// Package experiment reproduces the paper's evaluation (§4): every figure
// is a named experiment that sweeps the right parameters, runs the
// simulator, and returns the same series the paper plots.
//
//	Fig 4 — fraction of alive hosts vs time (GRID, ECGRID, GAF)
//	Fig 5 — mean energy consumption per host (aen) vs time
//	Fig 6 — packet delivery latency vs pause time
//	Fig 7 — packet delivery rate vs pause time
//	Fig 8 — fraction of alive hosts vs time across host densities
//
// The (a) variants use a 1 m/s top speed, the (b) variants 10 m/s, as in
// the paper.
//
// Execution is batched: each figure first plans every simulation it
// needs (all protocols, sweep points, and seed replicates), then fans
// the whole job list across internal/batch's worker pool and folds the
// indexed results back into series. Because every simulation is
// deterministic and results are collected by job index, any Workers
// setting reproduces the serial output exactly.
package experiment

import (
	"context"
	"fmt"
	"io"
	"sort"

	"ecgrid/internal/batch"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
	"ecgrid/internal/stats"
)

// Figure names one of the paper's evaluation figures.
type Figure string

// The ten figures of §4.
const (
	Fig4a Figure = "4a"
	Fig4b Figure = "4b"
	Fig5a Figure = "5a"
	Fig5b Figure = "5b"
	Fig6a Figure = "6a"
	Fig6b Figure = "6b"
	Fig7a Figure = "7a"
	Fig7b Figure = "7b"
	Fig8a Figure = "8a"
	Fig8b Figure = "8b"
)

// All lists every figure in paper order.
func All() []Figure {
	return []Figure{Fig4a, Fig4b, Fig5a, Fig5b, Fig6a, Fig6b, Fig7a, Fig7b, Fig8a, Fig8b}
}

// Options tune an experiment run.
type Options struct {
	// Seed roots all randomness; runs with equal seeds are identical.
	Seed int64
	// Seeds, when > 1, repeats the whole sweep with seeds Seed,
	// Seed+1, ..., and returns per-point means with 95 % confidence
	// half-widths in Series.CI.
	Seeds int
	// Fast shrinks the sweep (shorter horizon, fewer pause points) for
	// benchmarks and smoke tests. The series keep their shape.
	Fast bool
	// Progress, if non-nil, receives a line per sub-run. It is invoked
	// from one goroutine at a time (serialized through a batch.Sink), so
	// plain closures are safe even with Workers > 1; lines arrive in
	// completion order, not plan order.
	Progress func(string)
	// Workers caps concurrent simulation runs; <= 0 uses GOMAXPROCS.
	// Results are identical for every value (see the package comment).
	Workers int
	// Retries is the number of extra attempts after a failed run.
	Retries int
	// Manifest, when non-empty, appends a JSONL manifest entry per
	// completed run to this path (see internal/batch).
	Manifest string
	// Resume, when true, loads Manifest first and skips runs whose
	// results are already recorded there.
	Resume bool
	// Store, if non-nil, is a persistent content-addressed result cache
	// consulted before each run and filled after (see batch.ResultStore
	// and internal/store). Unlike Resume it survives across processes
	// and is shared with cmd/simd.
	Store batch.ResultStore
	// Context, when non-nil, cancels in-flight sweeps.
	Context context.Context
	// Gen, when non-nil, overlays a scenario-generator spec onto every
	// figure config: the paper's sweeps re-run under generated
	// deployments, mobility, traffic shapes, or propagation maps
	// (cmd/figures -scenario). Changing Gen changes every batch key, so
	// stressed and plain figure runs never collide in a shared store.
	Gen *scengen.Spec
	// Shards, when ≥ 2, runs every figure simulation on the sharded
	// parallel engine (scenario.Config.Shards). Results are
	// byte-identical for any value, but the field is part of the batch
	// key, so sharded and serial figure runs cache separately — exactly
	// like HeapScheduler.
	Shards int
	// NoRxCache runs every figure simulation with the receiver-plane
	// cache disabled (radio.Config.NoRxCache), the uncached reference
	// path. Results are byte-identical either way, but the flag is part
	// of the batch key, so cached and reference runs store separately.
	NoRxCache bool
}

// Point is one sample of a result series.
type Point struct {
	X, Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
	// CI, when non-nil, holds the 95 % confidence half-width of each
	// point's Y (multi-seed runs).
	CI []float64
}

// Result is a reproduced figure.
type Result struct {
	Figure Figure
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// plan is a set of simulations plus the fold that turns their indexed
// results into a figure.
type plan struct {
	res  *Result
	jobs []batch.Job
	fold func(runs []*runner.Results)
}

// add appends one simulation to the plan.
func (p *plan) add(tag string, cfg scenario.Config) {
	p.jobs = append(p.jobs, batch.Job{Tag: tag, Cfg: cfg})
}

// Run reproduces the given figure. With Options.Seeds > 1 the sweep is
// repeated across seeds and the series report means with confidence
// half-widths; all replicates join one batch, so seed repeats fan out
// across workers just like sweep points do.
func Run(fig Figure, opt Options) (*Result, error) {
	seeds := opt.Seeds
	if seeds < 1 {
		seeds = 1
	}
	plans := make([]*plan, seeds)
	var jobs []batch.Job
	for i := 0; i < seeds; i++ {
		o := opt
		o.Seed = opt.Seed + int64(i)
		p, err := planOne(fig, o)
		if err != nil {
			return nil, err
		}
		plans[i] = p
		jobs = append(jobs, p.jobs...)
	}
	runs, err := runJobs(jobs, opt)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, seeds)
	off := 0
	for i, p := range plans {
		p.fold(runs[off : off+len(p.jobs)])
		off += len(p.jobs)
		results[i] = p.res
	}
	if seeds == 1 {
		return results[0], nil
	}
	return average(results), nil
}

// runJobs executes a job list under the options' batch settings and
// returns the results in job order, or an error if any job failed.
func runJobs(jobs []batch.Job, opt Options) ([]*runner.Results, error) {
	if opt.Gen != nil {
		for i := range jobs {
			jobs[i].Cfg.Gen = opt.Gen
			if opt.Gen.Mobility != nil {
				// The generator's mobility axis replaces the base model;
				// leaving both set would fail validation as ambiguous.
				jobs[i].Cfg.Mobility = ""
			}
		}
	}
	if opt.Shards != 0 {
		for i := range jobs {
			jobs[i].Cfg.Shards = opt.Shards
		}
	}
	if opt.NoRxCache {
		for i := range jobs {
			jobs[i].Cfg.Radio.NoRxCache = true
		}
	}
	bopt := batch.Options{
		Workers:  opt.Workers,
		Retries:  opt.Retries,
		Progress: batch.NewSink(opt.Progress),
		Store:    opt.Store,
	}
	if opt.Manifest != "" {
		if opt.Resume {
			resume, err := batch.LoadManifest(opt.Manifest)
			if err != nil {
				return nil, err
			}
			bopt.Resume = resume
		}
		m, err := batch.CreateManifest(opt.Manifest)
		if err != nil {
			return nil, err
		}
		defer m.Close()
		bopt.Manifest = m
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results, sum := batch.Run(ctx, jobs, bopt)
	if err := sum.Err(); err != nil {
		return nil, err
	}
	out := make([]*runner.Results, len(results))
	for i, r := range results {
		out[i] = r.Res
	}
	return out, nil
}

// average merges same-shaped results into per-point means with 95 %
// confidence half-widths.
func average(results []*Result) *Result {
	out := *results[0]
	out.Series = make([]Series, len(results[0].Series))
	for si, base := range results[0].Series {
		s := Series{Label: base.Label}
		for pi, p := range base.Points {
			ys := make([]float64, 0, len(results))
			for _, r := range results {
				ys = append(ys, r.Series[si].Points[pi].Y)
			}
			mean, hw := stats.MeanCI(ys)
			s.Points = append(s.Points, Point{X: p.X, Y: mean})
			s.CI = append(s.CI, hw)
		}
		out.Series[si] = s
	}
	return &out
}

// planOne builds the figure's simulation plan for a single seed.
func planOne(fig Figure, opt Options) (*plan, error) {
	speed := 1.0
	switch fig {
	case Fig4b, Fig5b, Fig6b, Fig7b, Fig8b:
		speed = 10
	case Fig4a, Fig5a, Fig6a, Fig7a, Fig8a:
	default:
		return nil, fmt.Errorf("experiment: unknown figure %q", fig)
	}
	switch fig {
	case Fig4a, Fig4b:
		return planAliveVsTime(fig, speed, opt), nil
	case Fig5a, Fig5b:
		return planAenVsTime(fig, speed, opt), nil
	case Fig6a, Fig6b:
		return planPauseSweep(fig, speed, opt, true), nil
	case Fig7a, Fig7b:
		return planPauseSweep(fig, speed, opt, false), nil
	default: // 8a, 8b
		return planDensity(fig, speed, opt), nil
	}
}

// baseConfig is the paper's common setup at the given speed.
func baseConfig(p scenario.ProtocolKind, speed float64, seed int64) scenario.Config {
	cfg := scenario.Default(p)
	cfg.MaxSpeedMS = speed
	cfg.Seed = seed
	return cfg
}

// protocols in the order the paper's legends use.
var protocols = []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID, scenario.GAF}

// sampleSeries reads a collector time series at step intervals.
func sampleSeries(label string, s *stats.Series, horizon, step float64) Series {
	out := Series{Label: label}
	for x := 0.0; x <= horizon; x += step {
		out.Points = append(out.Points, Point{X: x, Y: s.At(x)})
	}
	return out
}

// planAliveVsTime reproduces Fig 4: fraction of alive hosts vs simulation
// time, 100 hosts, 10 pkt/s, pause 0.
func planAliveVsTime(fig Figure, speed float64, opt Options) *plan {
	horizon, step := 2000.0, 100.0
	if opt.Fast {
		horizon, step = 700, 100
	}
	p := &plan{res: &Result{
		Figure: fig,
		Title:  fmt.Sprintf("Fraction of alive hosts vs time (speed ≤ %g m/s)", speed),
		XLabel: "Simulation time (s)",
		YLabel: "Fraction of alive hosts",
	}}
	for _, proto := range protocols {
		cfg := baseConfig(proto, speed, opt.Seed)
		cfg.Duration = horizon
		p.add(fmt.Sprintf("fig %s: %v", fig, cfg), cfg)
	}
	p.fold = func(runs []*runner.Results) {
		for i, proto := range protocols {
			p.res.Series = append(p.res.Series,
				sampleSeries(string(proto), &runs[i].Collector.Alive, horizon, step))
		}
	}
	return p
}

// planAenVsTime reproduces Fig 5: the paper's Eq. (2), normalized by the
// initial per-host energy so the y-axis runs 0..1.
func planAenVsTime(fig Figure, speed float64, opt Options) *plan {
	horizon, step := 2000.0, 100.0
	if opt.Fast {
		horizon, step = 700, 100
	}
	p := &plan{res: &Result{
		Figure: fig,
		Title:  fmt.Sprintf("Mean energy consumption per host (aen) vs time (speed ≤ %g m/s)", speed),
		XLabel: "Simulation time (s)",
		YLabel: "aen (fraction of initial energy)",
	}}
	for _, proto := range protocols {
		cfg := baseConfig(proto, speed, opt.Seed)
		cfg.Duration = horizon
		p.add(fmt.Sprintf("fig %s: %v", fig, cfg), cfg)
	}
	p.fold = func(runs []*runner.Results) {
		for i, proto := range protocols {
			p.res.Series = append(p.res.Series,
				sampleSeries(string(proto), &runs[i].Collector.Aen, horizon, step))
		}
	}
	return p
}

// planPauseSweep reproduces Figs 6 and 7: latency (ms) or delivery rate vs
// pause time, at simulation time 590 s (when the GRID network exhausts).
func planPauseSweep(fig Figure, speed float64, opt Options, latency bool) *plan {
	pauses := []float64{0, 100, 200, 300, 400, 500, 600}
	duration := 590.0
	if opt.Fast {
		pauses = []float64{0, 300, 600}
		duration = 300
	}
	p := &plan{res: &Result{Figure: fig, XLabel: "Pause time (s)"}}
	if latency {
		p.res.Title = fmt.Sprintf("Packet delivery latency vs pause time (speed ≤ %g m/s)", speed)
		p.res.YLabel = "Latency (ms)"
	} else {
		p.res.Title = fmt.Sprintf("Packet delivery rate vs pause time (speed ≤ %g m/s)", speed)
		p.res.YLabel = "Delivery rate"
	}
	for _, proto := range protocols {
		for _, pause := range pauses {
			cfg := baseConfig(proto, speed, opt.Seed)
			cfg.PauseTime = pause
			cfg.Duration = duration
			p.add(fmt.Sprintf("fig %s: %v", fig, cfg), cfg)
		}
	}
	p.fold = func(runs []*runner.Results) {
		i := 0
		for _, proto := range protocols {
			s := Series{Label: string(proto)}
			for _, pause := range pauses {
				r := runs[i]
				i++
				y := r.DeliveryRate
				if latency {
					y = r.MeanLatency * 1000
				}
				s.Points = append(s.Points, Point{X: pause, Y: y})
			}
			p.res.Series = append(p.res.Series, s)
		}
	}
	return p
}

// planDensity reproduces Fig 8: alive fraction vs time for GRID and ECGRID
// at 50, 100, 150 and 200 hosts.
func planDensity(fig Figure, speed float64, opt Options) *plan {
	horizon, step := 2000.0, 100.0
	densities := []int{50, 100, 150, 200}
	if opt.Fast {
		horizon = 700
		densities = []int{50, 200}
	}
	p := &plan{res: &Result{
		Figure: fig,
		Title:  fmt.Sprintf("Alive hosts vs time across host densities (speed ≤ %g m/s)", speed),
		XLabel: "Simulation time (s)",
		YLabel: "Fraction of alive hosts",
	}}
	densityProtocols := []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID}
	for _, proto := range densityProtocols {
		for _, n := range densities {
			cfg := baseConfig(proto, speed, opt.Seed)
			cfg.Hosts = n
			cfg.Duration = horizon
			p.add(fmt.Sprintf("fig %s: %v", fig, cfg), cfg)
		}
	}
	p.fold = func(runs []*runner.Results) {
		i := 0
		for _, proto := range densityProtocols {
			for _, n := range densities {
				p.res.Series = append(p.res.Series,
					sampleSeries(fmt.Sprintf("%s n=%d", proto, n), &runs[i].Collector.Alive, horizon, step))
				i++
			}
		}
	}
	return p
}

// WriteTable renders the figure as an aligned text table: one row per X,
// one column per series.
func (r *Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", r.Figure, r.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%16s", s.Label)
	}
	fmt.Fprintln(w)
	xs := r.xValues()
	for _, x := range xs {
		fmt.Fprintf(w, "%-18.6g", x)
		for _, s := range r.Series {
			v, ci, ok := valueCIAt(s, x)
			switch {
			case ok && ci > 0:
				fmt.Fprintf(w, "%16s", fmt.Sprintf("%.4f±%.4f", v, ci))
			case ok:
				fmt.Fprintf(w, "%16.4f", v)
			default:
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the figure as CSV with an x column and one column per
// series.
func (r *Result) WriteCSV(w io.Writer) error {
	fmt.Fprintf(w, "x")
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	for _, x := range r.xValues() {
		fmt.Fprintf(w, "%g", x)
		for _, s := range r.Series {
			if v, ok := valueAt(s, x); ok {
				fmt.Fprintf(w, ",%g", v)
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// xValues collects the union of X coordinates across series, ascending.
func (r *Result) xValues() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func valueAt(s Series, x float64) (float64, bool) {
	v, _, ok := valueCIAt(s, x)
	return v, ok
}

func valueCIAt(s Series, x float64) (v, ci float64, ok bool) {
	for i, p := range s.Points {
		if p.X == x {
			if s.CI != nil {
				ci = s.CI[i]
			}
			return p.Y, ci, true
		}
	}
	return 0, 0, false
}
