// Package experiment reproduces the paper's evaluation (§4): every figure
// is a named experiment that sweeps the right parameters, runs the
// simulator, and returns the same series the paper plots.
//
//	Fig 4 — fraction of alive hosts vs time (GRID, ECGRID, GAF)
//	Fig 5 — mean energy consumption per host (aen) vs time
//	Fig 6 — packet delivery latency vs pause time
//	Fig 7 — packet delivery rate vs pause time
//	Fig 8 — fraction of alive hosts vs time across host densities
//
// The (a) variants use a 1 m/s top speed, the (b) variants 10 m/s, as in
// the paper.
package experiment

import (
	"fmt"
	"io"
	"sort"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/stats"
)

// Figure names one of the paper's evaluation figures.
type Figure string

// The ten figures of §4.
const (
	Fig4a Figure = "4a"
	Fig4b Figure = "4b"
	Fig5a Figure = "5a"
	Fig5b Figure = "5b"
	Fig6a Figure = "6a"
	Fig6b Figure = "6b"
	Fig7a Figure = "7a"
	Fig7b Figure = "7b"
	Fig8a Figure = "8a"
	Fig8b Figure = "8b"
)

// All lists every figure in paper order.
func All() []Figure {
	return []Figure{Fig4a, Fig4b, Fig5a, Fig5b, Fig6a, Fig6b, Fig7a, Fig7b, Fig8a, Fig8b}
}

// Options tune an experiment run.
type Options struct {
	// Seed roots all randomness; runs with equal seeds are identical.
	Seed int64
	// Seeds, when > 1, repeats the whole sweep with seeds Seed,
	// Seed+1, ..., and returns per-point means with 95 % confidence
	// half-widths in Series.CI.
	Seeds int
	// Fast shrinks the sweep (shorter horizon, fewer pause points) for
	// benchmarks and smoke tests. The series keep their shape.
	Fast bool
	// Progress, if non-nil, receives a line per sub-run.
	Progress func(string)
}

// Point is one sample of a result series.
type Point struct {
	X, Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
	// CI, when non-nil, holds the 95 % confidence half-width of each
	// point's Y (multi-seed runs).
	CI []float64
}

// Result is a reproduced figure.
type Result struct {
	Figure Figure
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Run reproduces the given figure. With Options.Seeds > 1 the sweep is
// repeated across seeds and the series report means with confidence
// half-widths.
func Run(fig Figure, opt Options) (*Result, error) {
	seeds := opt.Seeds
	if seeds <= 1 {
		return runOne(fig, opt)
	}
	results := make([]*Result, 0, seeds)
	for i := 0; i < seeds; i++ {
		o := opt
		o.Seeds = 1
		o.Seed = opt.Seed + int64(i)
		r, err := runOne(fig, o)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return average(results), nil
}

// average merges same-shaped results into per-point means with 95 %
// confidence half-widths.
func average(results []*Result) *Result {
	out := *results[0]
	out.Series = make([]Series, len(results[0].Series))
	for si, base := range results[0].Series {
		s := Series{Label: base.Label}
		for pi, p := range base.Points {
			ys := make([]float64, 0, len(results))
			for _, r := range results {
				ys = append(ys, r.Series[si].Points[pi].Y)
			}
			mean, hw := stats.MeanCI(ys)
			s.Points = append(s.Points, Point{X: p.X, Y: mean})
			s.CI = append(s.CI, hw)
		}
		out.Series[si] = s
	}
	return &out
}

// runOne reproduces the figure for a single seed.
func runOne(fig Figure, opt Options) (*Result, error) {
	speed := 1.0
	switch fig {
	case Fig4b, Fig5b, Fig6b, Fig7b, Fig8b:
		speed = 10
	case Fig4a, Fig5a, Fig6a, Fig7a, Fig8a:
	default:
		return nil, fmt.Errorf("experiment: unknown figure %q", fig)
	}
	switch fig {
	case Fig4a, Fig4b:
		return runAliveVsTime(fig, speed, opt)
	case Fig5a, Fig5b:
		return runAenVsTime(fig, speed, opt)
	case Fig6a, Fig6b:
		return runPauseSweep(fig, speed, opt, true)
	case Fig7a, Fig7b:
		return runPauseSweep(fig, speed, opt, false)
	default: // 8a, 8b
		return runDensity(fig, speed, opt)
	}
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// baseConfig is the paper's common setup at the given speed.
func baseConfig(p scenario.ProtocolKind, speed float64, seed int64) scenario.Config {
	cfg := scenario.Default(p)
	cfg.MaxSpeedMS = speed
	cfg.Seed = seed
	return cfg
}

// protocols in the order the paper's legends use.
var protocols = []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID, scenario.GAF}

// runAliveVsTime reproduces Fig 4: fraction of alive hosts vs simulation
// time, 100 hosts, 10 pkt/s, pause 0.
func runAliveVsTime(fig Figure, speed float64, opt Options) (*Result, error) {
	horizon, step := 2000.0, 100.0
	if opt.Fast {
		horizon, step = 700, 100
	}
	res := &Result{
		Figure: fig,
		Title:  fmt.Sprintf("Fraction of alive hosts vs time (speed ≤ %g m/s)", speed),
		XLabel: "Simulation time (s)",
		YLabel: "Fraction of alive hosts",
	}
	for _, p := range protocols {
		cfg := baseConfig(p, speed, opt.Seed)
		cfg.Duration = horizon
		opt.progress("fig %s: %v", fig, cfg)
		r := runner.Run(cfg)
		s := Series{Label: string(p)}
		for x := 0.0; x <= horizon; x += step {
			s.Points = append(s.Points, Point{X: x, Y: r.Collector.Alive.At(x)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runAenVsTime reproduces Fig 5: the paper's Eq. (2), normalized by the
// initial per-host energy so the y-axis runs 0..1.
func runAenVsTime(fig Figure, speed float64, opt Options) (*Result, error) {
	horizon, step := 2000.0, 100.0
	if opt.Fast {
		horizon, step = 700, 100
	}
	res := &Result{
		Figure: fig,
		Title:  fmt.Sprintf("Mean energy consumption per host (aen) vs time (speed ≤ %g m/s)", speed),
		XLabel: "Simulation time (s)",
		YLabel: "aen (fraction of initial energy)",
	}
	for _, p := range protocols {
		cfg := baseConfig(p, speed, opt.Seed)
		cfg.Duration = horizon
		opt.progress("fig %s: %v", fig, cfg)
		r := runner.Run(cfg)
		s := Series{Label: string(p)}
		for x := 0.0; x <= horizon; x += step {
			s.Points = append(s.Points, Point{X: x, Y: r.Collector.Aen.At(x)})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runPauseSweep reproduces Figs 6 and 7: latency (ms) or delivery rate vs
// pause time, at simulation time 590 s (when the GRID network exhausts).
func runPauseSweep(fig Figure, speed float64, opt Options, latency bool) (*Result, error) {
	pauses := []float64{0, 100, 200, 300, 400, 500, 600}
	duration := 590.0
	if opt.Fast {
		pauses = []float64{0, 300, 600}
		duration = 300
	}
	res := &Result{Figure: fig, XLabel: "Pause time (s)"}
	if latency {
		res.Title = fmt.Sprintf("Packet delivery latency vs pause time (speed ≤ %g m/s)", speed)
		res.YLabel = "Latency (ms)"
	} else {
		res.Title = fmt.Sprintf("Packet delivery rate vs pause time (speed ≤ %g m/s)", speed)
		res.YLabel = "Delivery rate"
	}
	for _, p := range protocols {
		s := Series{Label: string(p)}
		for _, pause := range pauses {
			cfg := baseConfig(p, speed, opt.Seed)
			cfg.PauseTime = pause
			cfg.Duration = duration
			opt.progress("fig %s: %v", fig, cfg)
			r := runner.Run(cfg)
			y := r.DeliveryRate
			if latency {
				y = r.MeanLatency * 1000
			}
			s.Points = append(s.Points, Point{X: pause, Y: y})
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// runDensity reproduces Fig 8: alive fraction vs time for GRID and ECGRID
// at 50, 100, 150 and 200 hosts.
func runDensity(fig Figure, speed float64, opt Options) (*Result, error) {
	horizon, step := 2000.0, 100.0
	densities := []int{50, 100, 150, 200}
	if opt.Fast {
		horizon = 700
		densities = []int{50, 200}
	}
	res := &Result{
		Figure: fig,
		Title:  fmt.Sprintf("Alive hosts vs time across host densities (speed ≤ %g m/s)", speed),
		XLabel: "Simulation time (s)",
		YLabel: "Fraction of alive hosts",
	}
	for _, p := range []scenario.ProtocolKind{scenario.GRID, scenario.ECGRID} {
		for _, n := range densities {
			cfg := baseConfig(p, speed, opt.Seed)
			cfg.Hosts = n
			cfg.Duration = horizon
			opt.progress("fig %s: %v", fig, cfg)
			r := runner.Run(cfg)
			s := Series{Label: fmt.Sprintf("%s n=%d", p, n)}
			for x := 0.0; x <= horizon; x += step {
				s.Points = append(s.Points, Point{X: x, Y: r.Collector.Alive.At(x)})
			}
			res.Series = append(res.Series, s)
		}
	}
	return res, nil
}

// WriteTable renders the figure as an aligned text table: one row per X,
// one column per series.
func (r *Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", r.Figure, r.Title); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(w, "%16s", s.Label)
	}
	fmt.Fprintln(w)
	xs := r.xValues()
	for _, x := range xs {
		fmt.Fprintf(w, "%-18.6g", x)
		for _, s := range r.Series {
			v, ci, ok := valueCIAt(s, x)
			switch {
			case ok && ci > 0:
				fmt.Fprintf(w, "%16s", fmt.Sprintf("%.4f±%.4f", v, ci))
			case ok:
				fmt.Fprintf(w, "%16.4f", v)
			default:
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the figure as CSV with an x column and one column per
// series.
func (r *Result) WriteCSV(w io.Writer) error {
	fmt.Fprintf(w, "x")
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", s.Label)
	}
	fmt.Fprintln(w)
	for _, x := range r.xValues() {
		fmt.Fprintf(w, "%g", x)
		for _, s := range r.Series {
			if v, ok := valueAt(s, x); ok {
				fmt.Fprintf(w, ",%g", v)
			} else {
				fmt.Fprintf(w, ",")
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// xValues collects the union of X coordinates across series, ascending.
func (r *Result) xValues() []float64 {
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range r.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func valueAt(s Series, x float64) (float64, bool) {
	v, _, ok := valueCIAt(s, x)
	return v, ok
}

func valueCIAt(s Series, x float64) (v, ci float64, ok bool) {
	for i, p := range s.Points {
		if p.X == x {
			if s.CI != nil {
				ci = s.CI[i]
			}
			return p.Y, ci, true
		}
	}
	return 0, 0, false
}
