package shard

import (
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
)

func testPartition(area float64, cell float64) *grid.Partition {
	return grid.NewPartition(geom.NewRect(geom.Point{}, geom.Point{X: area, Y: area}), cell)
}

// uniformStarts spreads n hosts across the area deterministically.
func uniformStarts(n int, area float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: (float64(i) + 0.5) * area / float64(n),
			Y: area / 2,
		}
	}
	return pts
}

func TestPlanPartitionsEveryHostOnce(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(97, 1000)
	for _, k := range []int{1, 2, 4, 7, 10} {
		p := NewPlan(part, k, starts, nil)
		seen := make(map[int]int)
		for s := 0; s < p.K(); s++ {
			prev := -1
			for _, i := range p.List(s) {
				if i <= prev {
					t.Fatalf("k=%d shard %d list not ascending: %v", k, s, p.List(s))
				}
				prev = i
				seen[i]++
				if p.Owner(i) != s {
					t.Fatalf("k=%d host %d on list %d but owner %d", k, i, s, p.Owner(i))
				}
			}
		}
		if len(seen) != len(starts) {
			t.Fatalf("k=%d: %d hosts owned, want %d", k, len(seen), len(starts))
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("k=%d host %d owned %d times", k, i, c)
			}
		}
	}
}

func TestPlanBalancesByHostCount(t *testing.T) {
	part := testPartition(1000, 100)
	// All hosts crowd the left edge: a naive equal-column split would
	// put everyone in shard 0.
	starts := make([]geom.Point, 100)
	for i := range starts {
		starts[i] = geom.Point{X: float64(i%2) * 90, Y: 500} // columns 0 only
	}
	// Mix in a spread population so balancing has something to do.
	for i := 50; i < 100; i++ {
		starts[i] = geom.Point{X: (float64(i) / 100) * 1000, Y: 500}
	}
	p := NewPlan(part, 4, starts, nil)
	for s := 0; s < 4; s++ {
		if n := len(p.List(s)); n == 0 {
			t.Errorf("shard %d owns no hosts: balancing failed", s)
		}
	}
}

func TestPlanStripsAreContiguous(t *testing.T) {
	part := testPartition(1000, 100)
	p := NewPlan(part, 4, uniformStarts(40, 1000), nil)
	prev := 0
	for col, s := range p.colShard {
		if s < prev || s > prev+1 {
			t.Fatalf("column %d jumps from shard %d to %d", col, prev, s)
		}
		prev = s
	}
	if prev != 3 {
		t.Fatalf("last column on shard %d, want 3", prev)
	}
}

func TestPlanPinsGroups(t *testing.T) {
	part := testPartition(1000, 100)
	// Two groups of 3, spread across the whole width — members would
	// land on different strips if not pinned.
	starts := []geom.Point{
		{X: 50, Y: 0}, {X: 450, Y: 0}, {X: 950, Y: 0},
		{X: 150, Y: 0}, {X: 550, Y: 0}, {X: 850, Y: 0},
	}
	groups := []int{0, 0, 0, 1, 1, 1}
	p := NewPlan(part, 4, starts, groups)
	for g := 0; g < 2; g++ {
		lead := p.Owner(g * 3)
		for m := 0; m < 3; m++ {
			if got := p.Owner(g*3 + m); got != lead {
				t.Errorf("group %d split: member %d on shard %d, leader on %d", g, m, got, lead)
			}
		}
	}
}

func TestPlanRebalanceHandsOffAndStaysConsistent(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(10, 1000)
	p := NewPlan(part, 2, starts, nil)
	// Everyone walks to the far right: all of shard 0's hosts must hand
	// over to the last strip's owner.
	var hops []int
	p.OnHandoff = func(host, from, to int) {
		if from == to {
			t.Errorf("self-handoff of host %d", host)
		}
		hops = append(hops, host)
	}
	moved := p.Rebalance(func(i int) geom.Point { return geom.Point{X: 999, Y: 500} })
	if moved == 0 || moved != len(hops) {
		t.Fatalf("moved %d, observed %d handoffs", moved, len(hops))
	}
	last := p.ShardOf(geom.Point{X: 999, Y: 500})
	for i := range starts {
		if p.Owner(i) != last {
			t.Errorf("host %d owner %d after everyone moved right, want %d", i, p.Owner(i), last)
		}
	}
	if len(p.List(last)) != len(starts) {
		t.Errorf("list of shard %d has %d hosts, want all %d", last, len(p.List(last)), len(starts))
	}
	// A second rebalance from the same positions is a no-op.
	if again := p.Rebalance(func(i int) geom.Point { return geom.Point{X: 999, Y: 500} }); again != 0 {
		t.Errorf("stable positions produced %d handoffs", again)
	}
}

func TestPlanRebalanceMovesGroupsWhole(t *testing.T) {
	part := testPartition(1000, 100)
	starts := []geom.Point{{X: 100, Y: 0}, {X: 120, Y: 0}, {X: 140, Y: 0}, {X: 800, Y: 0}}
	groups := []int{7, 7, 7, -1}
	p := NewPlan(part, 2, starts, groups)
	// The group's leader crosses to the right half; followers' own
	// positions say "stay" but they must move with the leader.
	pos := []geom.Point{{X: 900, Y: 0}, {X: 120, Y: 0}, {X: 140, Y: 0}, {X: 800, Y: 0}}
	p.Rebalance(func(i int) geom.Point { return pos[i] })
	want := p.ShardOf(geom.Point{X: 900, Y: 0})
	for m := 0; m < 3; m++ {
		if p.Owner(m) != want {
			t.Errorf("group member %d on shard %d after leader moved, want %d", m, p.Owner(m), want)
		}
	}
}

func TestPlanPanicsOnBadArguments(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(5, 1000)
	for name, fn := range map[string]func(){
		"zero shards":     func() { NewPlan(part, 0, starts, nil) },
		"too many shards": func() { NewPlan(part, 11, starts, nil) },
		"groups mismatch": func() { NewPlan(part, 2, starts, []int{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
