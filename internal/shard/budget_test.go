package shard

import (
	"runtime"
	"testing"
)

// The budget tests drain and refill the package-level semaphore, so
// they must not run concurrently with each other or with pool tests
// that acquire workers — the package's tests are sequential (no
// t.Parallel) precisely for this.

func TestBudgetWorkersAreBoundedByGOMAXPROCS(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	got := AcquireWorkers(max * 10)
	if got > max {
		t.Fatalf("acquired %d workers with GOMAXPROCS=%d", got, max)
	}
	if got == 0 {
		t.Fatalf("budget empty at test start: a previous user leaked slots")
	}
	// Budget exhausted: further worker requests must degrade to zero,
	// not block.
	if extra := AcquireWorkers(1); extra != 0 {
		ReleaseWorkers(extra)
		t.Errorf("acquired %d workers past exhaustion", extra)
	}
	ReleaseWorkers(got)
}

func TestBudgetRunAndWorkersShareOnePool(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	AcquireRun() // one run slot held…
	got := AcquireWorkers(max * 10)
	if got != max-1 {
		t.Errorf("run slot held: got %d workers, want %d", got, max-1)
	}
	ReleaseWorkers(got)
	ReleaseRun()
}

func TestBudgetOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	ReleaseWorkers(1) // nothing acquired: the pool is already full
}
