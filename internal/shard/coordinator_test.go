package shard

import (
	"fmt"
	"testing"
	"testing/quick"

	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/sim"
)

// scheduleWorkload queues a fixed event mix that exercises the window
// seams: events exactly on boundaries, FIFO ties, and events that
// schedule follow-ups across and onto boundaries.
func scheduleWorkload(eng *sim.Engine, log *[]string) {
	rec := func(name string) func() {
		return func() { *log = append(*log, fmt.Sprintf("%s@%.3f", name, eng.Now())) }
	}
	eng.At(0.5, rec("a"))
	eng.At(1.0, rec("b1")) // exactly on the first window boundary
	eng.At(1.0, func() { rec("b2")(); eng.Schedule(0.25, rec("b2+")) })
	eng.At(0.9, func() { rec("c")(); eng.Schedule(0.3, rec("c+")) }) // follow-up crosses the boundary
	eng.At(2.0, func() { rec("d")(); eng.At(2.0, rec("d+")) })       // same-instant reschedule on a boundary
	eng.At(3.7, rec("e"))
}

func emptyCoordinator(eng *sim.Engine, window float64) *Coordinator {
	part := testPartition(1000, 100)
	pool := NewPool(NewPlan(part, 4, nil, nil), nil, 0)
	return NewCoordinator(eng, pool, window, 0.01, nil)
}

func TestCoordinatorMatchesSerialEngine(t *testing.T) {
	var want []string
	serial := sim.NewEngine()
	scheduleWorkload(serial, &want)
	serial.Run(4)

	for _, window := range []float64{1.0, 0.3, 4.0, 10.0} {
		var got []string
		eng := sim.NewEngine()
		scheduleWorkload(eng, &got)
		c := emptyCoordinator(eng, window)
		if end := c.Run(4); end != 4 {
			t.Fatalf("window=%g: final clock %g, want 4", window, end)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("window=%g: event order diverged\n got %v\nwant %v", window, got, want)
		}
	}
}

func TestCoordinatorHonorsStop(t *testing.T) {
	var fired []string
	eng := sim.NewEngine()
	eng.At(0.5, func() { fired = append(fired, "first") })
	eng.At(1.5, func() { fired = append(fired, "stopper"); eng.Stop() })
	eng.At(2.5, func() { fired = append(fired, "never") })
	c := emptyCoordinator(eng, 1.0)
	c.Run(10)
	if fmt.Sprint(fired) != "[first stopper]" {
		t.Fatalf("fired %v", fired)
	}
	if c.Stats().Windows != 2 {
		t.Errorf("windows = %d, want 2 (loop must end at the Stop)", c.Stats().Windows)
	}
}

// TestCoordinatorHandoffsAreConservative is the lookahead property on a
// live run: at the instant a host is handed between shards, both the
// old and the new owner must already have materialized mobility beyond
// the handoff time plus the lookahead — so no in-flight event can ever
// touch a host past its materialized horizon, whichever side of the
// handoff it lands on.
func TestCoordinatorHandoffsAreConservative(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(40, 1000)
	fakes, nodes := makeFakes(starts)
	eng := sim.NewEngine()
	for _, f := range fakes {
		f.vx = 37 // crosses several 100 m columns over 10 s
		f.clock = eng.Now
	}
	plan := NewPlan(part, 4, starts, nil)
	pool := NewPool(plan, nodes, 2)
	defer pool.Close()
	const lookahead = 0.0054
	c := NewCoordinator(eng, pool, 1.0, lookahead, sim.NewRNG(7))

	handoffs := 0
	plan.OnHandoff = func(host, from, to int) {
		handoffs++
		now := eng.Now()
		for _, s := range []int{from, to} {
			if got := pool.AdvancedTo(s); got < now+lookahead {
				t.Errorf("handoff of host %d at t=%g: shard %d advanced to %g < %g",
					host, now, s, got, now+lookahead)
			}
		}
	}
	// Keep the engine busy so every window commits something.
	var tick func()
	tick = func() { eng.Schedule(0.125, tick) }
	eng.At(0, tick)
	c.Run(10)

	if handoffs == 0 {
		t.Fatal("no handoffs: hosts moving 370 m never changed strips?")
	}
	st := c.Stats()
	if st.BoundaryEvents != uint64(handoffs) {
		t.Errorf("BoundaryEvents = %d, observed %d handoffs", st.BoundaryEvents, handoffs)
	}
	if st.Windows != 10 {
		t.Errorf("Windows = %d, want 10", st.Windows)
	}
	if st.Audited == 0 {
		t.Error("audit never ran despite an RNG being supplied")
	}
	if st.Shards != 4 || st.Workers != 3 {
		t.Errorf("Shards/Workers = %d/%d, want 4/3", st.Shards, st.Workers)
	}
}

// TestLookaheadForDominatesInFlight is the conservativeness property of
// the margin itself: for any frame no larger than the declared maximum,
// the full pessimal pipeline — medium-access backoff, serialization,
// propagation, paging — fits inside the lookahead.
func TestLookaheadForDominatesInFlight(t *testing.T) {
	rc := radio.DefaultConfig()
	prop := func(maxExtra, under uint16) bool {
		maxBytes := 64 + int(maxExtra)%4096
		frame := int(under) % (maxBytes + 1) // any frame ≤ the declared max
		la := LookaheadFor(rc, maxBytes, ras.DefaultLatency)
		inFlight := rc.DIFS + float64(rc.MaxBackoffSlots)*rc.SlotTime +
			rc.AirTime(frame) + rc.PropDelay + ras.DefaultLatency
		return inFlight <= la
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewCoordinatorRejectsBadTimes(t *testing.T) {
	eng := sim.NewEngine()
	part := testPartition(1000, 100)
	pool := NewPool(NewPlan(part, 2, nil, nil), nil, 0)
	for name, fn := range map[string]func(){
		"zero window":        func() { NewCoordinator(eng, pool, 0, 0.01, nil) },
		"negative lookahead": func() { NewCoordinator(eng, pool, 1, -0.01, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestAuditIsFreeOfSideEffects: two identical runs, one with the audit
// RNG and one without, must drive the engine identically — the audit's
// draws come from dedicated streams and feed nothing.
func TestAuditIsFreeOfSideEffects(t *testing.T) {
	run := func(rng *sim.RNG) []string {
		part := testPartition(1000, 100)
		starts := uniformStarts(12, 1000)
		fakes, nodes := makeFakes(starts)
		eng := sim.NewEngine()
		for _, f := range fakes {
			f.vx = 25
			f.clock = eng.Now
		}
		pool := NewPool(NewPlan(part, 3, starts, nil), nodes, 0)
		defer pool.Close()
		c := NewCoordinator(eng, pool, 1.0, 0.005, rng)
		var log []string
		scheduleWorkload(eng, &log)
		c.Run(5)
		return log
	}
	with, without := run(sim.NewRNG(3)), run(nil)
	if fmt.Sprint(with) != fmt.Sprint(without) {
		t.Fatalf("audit perturbed the run:\n with %v\nwithout %v", with, without)
	}
}
