package shard

import (
	"math"
	"testing"

	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
)

// fakeNode is a scriptable Node: position is a linear trajectory so the
// coordinator tests can drive hosts across strip boundaries.
type fakeNode struct {
	id       hostid.ID
	start    geom.Point
	vx       float64
	clock    func() float64 // Position evaluates the trajectory here
	dead     bool
	advanced float64
}

func (f *fakeNode) ID() hostid.ID { return f.id }
func (f *fakeNode) Dead() bool    { return f.dead }
func (f *fakeNode) at(t float64) geom.Point {
	return geom.Point{X: f.start.X + f.vx*t, Y: f.start.Y}
}
func (f *fakeNode) Position() geom.Point {
	t := 0.0
	if f.clock != nil {
		t = f.clock()
	}
	return f.at(t)
}
func (f *fakeNode) AdvanceMobility(t float64) {
	if t > f.advanced {
		f.advanced = t
	}
}

// StaysWithin is exact for the straight-line trajectory: x is monotone
// and y constant, so containment at both endpoints is containment
// throughout.
func (f *fakeNode) StaysWithin(from, until float64, bounds geom.Rect) bool {
	return bounds.Contains(f.at(from)) && bounds.Contains(f.at(until))
}

func makeFakes(starts []geom.Point) ([]*fakeNode, []Node) {
	fakes := make([]*fakeNode, len(starts))
	nodes := make([]Node, len(starts))
	for i, s := range starts {
		fakes[i] = &fakeNode{id: hostid.ID(i), start: s}
		nodes[i] = fakes[i]
	}
	return fakes, nodes
}

func TestPoolAdvanceReachesEveryLiveHost(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(23, 1000)
	for _, helpers := range []int{0, 3} {
		fakes, nodes := makeFakes(starts)
		fakes[5].dead = true
		pool := NewPool(NewPlan(part, 4, starts, nil), nodes, helpers)
		pool.Advance(0, 17.5)
		for i, f := range fakes {
			want := 17.5
			if f.dead {
				want = 0
			}
			if f.advanced != want {
				t.Errorf("helpers=%d host %d advanced to %g, want %g", helpers, i, f.advanced, want)
			}
		}
		for s := 0; s < 4; s++ {
			if pool.AdvancedTo(s) != 17.5 {
				t.Errorf("helpers=%d shard %d horizon %g", helpers, s, pool.AdvancedTo(s))
			}
		}
		pool.Close()
	}
}

func TestPoolScanMatchesSerialFilterInIDOrder(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(57, 1000)
	probe := func(id hostid.ID) bool { return id%3 == 0 || id%7 == 0 }
	var want []hostid.ID
	for i := range starts {
		if probe(hostid.ID(i)) {
			want = append(want, hostid.ID(i))
		}
	}
	for _, helpers := range []int{0, 1, 6} {
		_, nodes := makeFakes(starts)
		pool := NewPool(NewPlan(part, 7, starts, nil), nodes, helpers)
		for round := 0; round < 3; round++ { // scratch reuse must not leak state
			got := pool.Scan(probe, math.Inf(-1), math.Inf(1))
			if len(got) != len(want) {
				t.Fatalf("helpers=%d round %d: %d ids, want %d", helpers, round, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("helpers=%d round %d: ids[%d]=%d, want %d", helpers, round, j, got[j], want[j])
				}
			}
		}
		pool.Close()
	}
}

func TestPoolScanAfterRebalanceStillCoversEveryHost(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(30, 1000)
	fakes, nodes := makeFakes(starts)
	pool := NewPool(NewPlan(part, 3, starts, nil), nodes, 2)
	defer pool.Close()
	// Shift everyone right by 400 m and rebalance: ownership moves, the
	// scan must still probe each host exactly once, ascending.
	now := 10.0
	for _, f := range fakes {
		f.vx = 40
		f.clock = func() float64 { return now }
	}
	if moved := pool.Rebalance(); moved == 0 {
		t.Fatal("no handoffs after everyone moved 400 m")
	}
	got := pool.Scan(func(hostid.ID) bool { return true }, math.Inf(-1), math.Inf(1))
	if len(got) != len(starts) {
		t.Fatalf("scan returned %d ids, want %d", len(got), len(starts))
	}
	for j, id := range got {
		if id != hostid.ID(j) {
			t.Fatalf("ids[%d]=%d after rebalance", j, id)
		}
	}
}

// TestPoolScanPrunesPinnedHostsOutsideSpan drives the strip-pruning
// fast path: after an Advance has pinned the hosts that provably stay
// inside their strip, a Scan bounded to a far cell's x-span must skip
// exactly the pinned hosts of non-overlapping strips — and still return
// the same IDs, in the same order, as an unpruned serial filter.
func TestPoolScanPrunesPinnedHostsOutsideSpan(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(40, 1000)
	const now, xlo, xhi = 1.0, 800.0, 900.0 // paging a column-8 cell
	for _, helpers := range []int{0, 3} {
		fakes, nodes := makeFakes(starts)
		fakes[1].dead = true // dead: never pinned, still probed
		fakes[2].vx = 500    // leaves its strip inside the window: straggler
		for _, f := range fakes {
			f.clock = func() float64 { return now }
		}
		plan := NewPlan(part, 4, starts, nil)
		pool := NewPool(plan, nodes, helpers)
		pool.Advance(0, 2)

		probed := make([]bool, len(starts))
		probe := func(id hostid.ID) bool {
			probed[id] = true
			f := fakes[id]
			if f.dead {
				return false
			}
			x := f.at(now).X
			return x >= xlo && x <= xhi
		}
		var want []hostid.ID
		for i, f := range fakes {
			if x := f.at(now).X; !f.dead && x >= xlo && x <= xhi {
				want = append(want, hostid.ID(i))
			}
		}
		got := pool.Scan(probe, xlo, xhi)
		if len(got) != len(want) {
			t.Fatalf("helpers=%d: %v ids, want %v", helpers, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("helpers=%d: ids[%d]=%d, want %d", helpers, j, got[j], want[j])
			}
		}

		pruned := 0
		for i := range fakes {
			r := plan.StripRect(plan.Owner(i))
			overlaps := r.Max.X >= xlo && r.Min.X <= xhi
			wantProbe := overlaps || i == 1 || i == 2 // stragglers always probed
			if probed[i] != wantProbe {
				t.Errorf("helpers=%d: host %d probed=%v, want %v", helpers, i, probed[i], wantProbe)
			}
			if !wantProbe {
				pruned++
			}
		}
		if pruned == 0 {
			t.Fatal("no host was pruned: the fast path never ran")
		}
		pool.Close()
	}
}

func TestPoolHelperClamp(t *testing.T) {
	part := testPartition(1000, 100)
	starts := uniformStarts(8, 1000)
	_, nodes := makeFakes(starts)
	// More helpers than shards-1: the pool must clamp, not leak
	// goroutines that would never receive work.
	pool := NewPool(NewPlan(part, 2, starts, nil), nodes, 16)
	pool.Advance(0, 1)
	pool.Close() // hangs if a helper is stuck
}
