package shard

import "runtime"

// The process-wide worker budget. Batch-level parallelism (one token
// per concurrently executing run, internal/batch) and intra-run shard
// pools (one token per helper goroutine) draw from the same pool of
// GOMAXPROCS tokens, so composing `sweep -parallel` with `-shards`
// degrades gracefully instead of oversubscribing the machine: when the
// batch layer has claimed every slot, pools simply get zero helpers and
// run their phases serially. Helper counts never change results — the
// pool partitions work by the plan, not by worker — so the negotiation
// is free to be best-effort.
var budget = newBudget(runtime.GOMAXPROCS(0))

func newBudget(n int) chan struct{} {
	c := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		c <- struct{}{}
	}
	return c
}

// AcquireRun blocks until a run slot is free and claims it. Every
// concurrently executing simulation should hold exactly one for its
// duration; internal/batch wraps each job in AcquireRun/ReleaseRun.
func AcquireRun() { <-budget }

// ReleaseRun returns a run slot claimed by AcquireRun.
func ReleaseRun() { release(1) }

// AcquireWorkers claims up to want helper slots without blocking and
// returns how many it got — possibly zero, which a caller must treat as
// "run serial", never as an error.
func AcquireWorkers(want int) int {
	got := 0
	for got < want {
		select {
		case <-budget:
			got++
		default:
			return got
		}
	}
	return got
}

// ReleaseWorkers returns n helper slots claimed by AcquireWorkers.
func ReleaseWorkers(n int) { release(n) }

func release(n int) {
	for ; n > 0; n-- {
		select {
		case budget <- struct{}{}:
		default:
			// More releases than acquisitions: a caller bug that would
			// otherwise silently inflate the budget forever.
			panic("shard: worker budget released more slots than were acquired")
		}
	}
}
