// Package shard executes one simulation run on several cooperating
// goroutines without giving up the repository's core invariant: every
// run is byte-identical to the single-threaded reference, event for
// event, random draw for random draw.
//
// # Why a conventional parallel DES cannot be byte-identical here
//
// Classic conservative PDES (Chandy–Misra–Bryant) gives each spatial
// partition its own event queue and clock and lets partitions run ahead
// of each other up to a lookahead bound. That design is unavailable
// here for two structural reasons. First, the simulator's random
// streams (radio backoff, election jitter, paging loss…) are shared
// sequences: the value of a draw depends on how many draws preceded it
// across the whole run, so any reordering of events between partitions
// reorders draws and changes every figure downstream. Second, carrier
// sense is instantaneous — a transmission started this very instant
// anywhere within range must be visible to a host's next medium probe —
// which makes the honest cross-partition lookahead zero exactly where
// the traffic is.
//
// # The windowed advance/commit design
//
// So the engine stays serial and the parallelism moves to the pure part
// of the workload. Time is cut into fixed windows. Each window runs two
// phases:
//
//   - advance (parallel): one worker per shard materializes the mobility
//     history of the hosts it owns out to the window end plus the
//     lookahead margin. Mobility models are per-host lazy generators
//     that keep their full leg history, so materializing early is
//     byte-identical to materializing on demand — the draws come from
//     each host's private stream either way.
//   - commit (serial): the event engine runs the window's events in
//     exact (when, seq) order on one goroutine, exactly as the
//     reference does. Position reads inside events become pure lookups
//     into history the advance phase already wrote.
//
// The same worker pool also accelerates the hottest per-event scan —
// the RAS bus's grid-page sweep over every attached switch — by
// splitting it into a parallel pure probe (position, cell membership,
// range) and a serial ascending-ID apply (sleep checks, paging-loss
// draws, wakeups), which provably admits the same hosts in the same
// order as the reference's sort-then-scan loop.
//
// At each window boundary the plan re-homes hosts to the strip of their
// current column; each transfer is a boundary event (counted in
// Stats.BoundaryEvents). The lookahead margin guarantees a handed-off
// host's mobility is already materialized past every in-flight
// physical-layer event that could touch it, so no worker ever reads
// state another worker is still writing; the per-window audit
// (StreamShardAudit) spot-checks that invariant on live runs.
//
// Ownership is what makes the parallel phases race-free: every host
// belongs to exactly one shard, only its owner's worker touches its
// mobility state, and hosts sharing a group-mobility reference point
// are pinned to one owner so the shared reference has a single writer.
package shard

import (
	"fmt"

	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
)

// Plan is the ownership map of one sharded run: which column strip of
// grid cells each shard covers, and which shard currently owns each
// host. Strips are contiguous runs of whole grid columns, balanced by
// initial host count, so the shard of a position is one array lookup
// away from its cell coordinate.
type Plan struct {
	part     *grid.Partition
	k        int
	colShard []int // grid column -> shard
	owner    []int // host index -> owning shard
	group    []int // host index -> group id, -1 when ungrouped
	leader   []int // host index -> lowest-index member of its group (itself when ungrouped)
	members  map[int][]int
	lists    [][]int     // shard -> owned host indices, ascending
	strips   []geom.Rect // shard -> pin rectangle, see StripRect

	// OnHandoff, when non-nil, observes every ownership transfer made by
	// Rebalance: host moved from shard `from` to shard `to`. Tests use it
	// to assert the conservative-synchronization contract on real runs.
	OnHandoff func(host, from, to int)
}

// NewPlan partitions the grid's columns into k contiguous strips,
// balancing by the hosts' starting positions, and assigns each host to
// the strip containing its start. groups pins co-movement: hosts with
// the same non-negative groups entry share mutable mobility state (a
// group reference point) and are therefore always owned — and handed
// off — as a unit. Pass nil for groups when no hosts are grouped.
func NewPlan(part *grid.Partition, k int, starts []geom.Point, groups []int) *Plan {
	cols := part.Cols()
	if k < 1 || k > cols {
		panic(fmt.Sprintf("shard: %d shards over a %d-column grid", k, cols))
	}
	if groups != nil && len(groups) != len(starts) {
		panic("shard: groups and starts length mismatch")
	}
	p := &Plan{
		part:     part,
		k:        k,
		colShard: make([]int, cols),
		owner:    make([]int, len(starts)),
		group:    make([]int, len(starts)),
		leader:   make([]int, len(starts)),
		members:  make(map[int][]int),
		lists:    make([][]int, k),
	}

	// Strip boundaries: walk columns left to right, closing strip s once
	// its cumulative host count reaches the s-th fraction of the total.
	// A strip never closes while empty (clustered deployments leave runs
	// of bare columns between the mass) unless the remaining strips need
	// every remaining column.
	colCount := make([]int, cols)
	for _, pt := range starts {
		colCount[part.CellOf(pt).X]++
	}
	total := len(starts)
	cum, s, stripStart := 0, 0, 0
	for col := 0; col < cols; col++ {
		p.colShard[col] = s
		cum += colCount[col]
		left := k - 1 - s
		if left == 0 {
			continue
		}
		if (cum*k >= (s+1)*total && cum > stripStart) || cols-1-col == left {
			s++
			stripStart = cum
		}
	}

	// Pin rectangles: each strip's x-span expanded by one cell size on
	// every side (and past the area edges on the outer strips). The slack
	// lets hosts grazing a strip boundary keep their pin; the price is
	// that pages in the one-cell ring beside a strip never skip it.
	p.strips = make([]geom.Rect, k)
	area := part.Area()
	for col := 0; col < cols; col++ {
		b := part.Bounds(grid.Coord{X: col})
		r := geom.Rect{
			Min: geom.Point{X: b.Min.X, Y: area.Min.Y},
			Max: geom.Point{X: b.Max.X, Y: area.Max.Y},
		}
		if s := p.colShard[col]; p.strips[s].Width() == 0 {
			p.strips[s] = r
		} else {
			p.strips[s] = p.strips[s].Union(r)
		}
	}
	for s := range p.strips {
		p.strips[s] = p.strips[s].Expand(part.CellSize())
	}

	for i := range starts {
		p.owner[i] = p.colShard[part.CellOf(starts[i]).X]
		p.group[i] = -1
		p.leader[i] = i
		if groups != nil && groups[i] >= 0 {
			p.group[i] = groups[i]
			if m := p.members[groups[i]]; len(m) > 0 {
				p.leader[i] = m[0]
			}
			p.members[groups[i]] = append(p.members[groups[i]], i)
		}
	}
	// Pin every group to its leader's strip so the shared reference
	// point has exactly one writer.
	for i := range starts {
		p.owner[i] = p.owner[p.leader[i]]
	}
	p.rebuildLists()
	return p
}

// K returns the number of shards.
func (p *Plan) K() int { return p.k }

// Owner returns the shard currently owning host i.
func (p *Plan) Owner(i int) int { return p.owner[i] }

// List returns the host indices shard s currently owns, in ascending
// order. The slice is owned by the plan; do not mutate it.
func (p *Plan) List(s int) []int { return p.lists[s] }

// ShardOf returns the shard whose strip contains the point.
func (p *Plan) ShardOf(pt geom.Point) int {
	return p.colShard[p.part.CellOf(pt).X]
}

// StripRect returns shard s's pin rectangle: the x-span of its
// contiguous grid columns expanded by one cell size on every side. A
// host provably inside it for a whole window (the pool's pin test)
// cannot be in any grid cell whose x-span misses the rectangle, which
// is what lets Scan skip whole strips per paged cell.
func (p *Plan) StripRect(s int) geom.Rect { return p.strips[s] }

// Rebalance re-homes each host to the strip of its current position
// (grouped hosts follow their leader, so a group always moves whole)
// and returns the number of ownership transfers — the run's boundary
// events. pos must return host i's position at the current boundary.
func (p *Plan) Rebalance(pos func(i int) geom.Point) int {
	moved := 0
	for i := range p.owner {
		if p.leader[i] != i {
			continue // followers are re-homed with their leader below
		}
		dst := p.colShard[p.part.CellOf(pos(i)).X]
		if dst == p.owner[i] {
			continue
		}
		if g := p.group[i]; g >= 0 {
			for _, j := range p.members[g] {
				p.handoff(j, dst)
				moved++
			}
		} else {
			p.handoff(i, dst)
			moved++
		}
	}
	if moved > 0 {
		p.rebuildLists()
	}
	return moved
}

func (p *Plan) handoff(i, dst int) {
	if p.OnHandoff != nil {
		p.OnHandoff(i, p.owner[i], dst)
	}
	p.owner[i] = dst
}

// rebuildLists refreshes the per-shard ownership lists. Host indices
// ascend within each list because the single pass visits them in order.
func (p *Plan) rebuildLists() {
	for s := range p.lists {
		p.lists[s] = p.lists[s][:0]
	}
	for i, s := range p.owner {
		p.lists[s] = append(p.lists[s], i)
	}
}
