package shard

import (
	"fmt"

	"ecgrid/internal/radio"
	"ecgrid/internal/sim"
)

// DefaultWindow is the synchronization window in simulated seconds: the
// cadence of the advance/commit cycle and of ownership rebalancing. One
// second is hundreds of times the physical-layer lookahead and small
// against mobility timescales, so windows are long enough to amortize
// the phase barrier and short enough that strips track the hosts.
const DefaultWindow = 1.0

// LookaheadFor derives the conservative lookahead margin from the
// physical layer: the longest interval an event already committed can
// project into the future through in-flight channel or paging activity.
// That is a maximal medium-access delay (DIFS plus a full contention
// window of backoff slots), the on-air interval of the largest frame
// (serialization plus propagation, radio.Config.OnAirInterval), and the
// RAS page-to-wake latency. Hosts are always materialized this far past
// the window end, so a host handed between shards at a boundary has its
// state finalized beyond every event the old window can still land on
// it. The windowed design is safe for any margin ≥ 0 — the margin is
// what keeps handoffs conservative, and the per-window audit checks it.
func LookaheadFor(rc radio.Config, maxFrameBytes int, pagingLatency float64) float64 {
	access := rc.DIFS + float64(rc.MaxBackoffSlots)*rc.SlotTime
	return access + rc.OnAirInterval(maxFrameBytes) + pagingLatency
}

// Stats reports how a sharded run executed. Pure telemetry: none of it
// feeds back into the simulation.
type Stats struct {
	// Shards and Workers record the plan width and how many goroutines
	// actually ran it (helpers + the commit goroutine).
	Shards  int
	Workers int
	// Windows counts advance/commit cycles.
	Windows uint64
	// BoundaryEvents counts host ownership handoffs between shards at
	// window boundaries.
	BoundaryEvents uint64
	// StallNS is the cumulative wall-clock time the commit goroutine
	// spent blocked at phase barriers waiting for straggler workers.
	StallNS int64
	// Audited counts per-window invariant spot-checks that passed (a
	// failed check panics: it means the conservative contract broke).
	Audited uint64
}

// Coordinator drives one sharded run: the windowed advance/commit loop
// described in the package comment.
type Coordinator struct {
	engine    *sim.Engine
	pool      *Pool
	window    float64
	lookahead float64
	rng       *sim.RNG // audit sampling; nil disables the audit

	// auditStreams[s] is the shard's audit RNG stream name, formatted
	// once here: the audit runs every window, and a Sprintf per shard per
	// window is an allocation the steady state must not make.
	auditStreams []string

	stats Stats
}

// NewCoordinator wires a coordinator over an engine and a pool. window
// and lookahead are in simulated seconds (DefaultWindow / LookaheadFor
// are the standard choices). rng, when non-nil, enables the per-window
// sampling audit on the StreamShardAudit streams; the draws feed no
// simulation decision, so runs are byte-identical with auditing on or
// off.
func NewCoordinator(engine *sim.Engine, pool *Pool, window, lookahead float64, rng *sim.RNG) *Coordinator {
	if window <= 0 || lookahead < 0 {
		panic(fmt.Sprintf("shard: invalid window %v or lookahead %v", window, lookahead))
	}
	c := &Coordinator{engine: engine, pool: pool, window: window, lookahead: lookahead, rng: rng}
	c.stats.Shards = pool.plan.k
	c.stats.Workers = 1 + pool.helpers
	if rng != nil {
		c.auditStreams = make([]string, pool.plan.k)
		for s := range c.auditStreams {
			c.auditStreams[s] = fmt.Sprintf(sim.StreamShardAudit, s)
		}
	}
	return c
}

// Run executes the simulation to the horizon and returns the final
// clock value, exactly like Engine.Run — the event order, and therefore
// every metric and trace byte, matches a single Engine.Run(until) call.
func (c *Coordinator) Run(until float64) float64 {
	for t := c.engine.Now(); t < until; {
		next := t + c.window
		if next > until {
			next = until
		}
		c.pool.Advance(t, next+c.lookahead)
		c.audit(next + c.lookahead)
		c.engine.Run(next)
		c.stats.Windows++
		if c.engine.Stopped() {
			break
		}
		if next < until {
			c.stats.BoundaryEvents += uint64(c.pool.Rebalance())
		}
		t = next
	}
	c.stats.StallNS = c.pool.StallNS()
	return c.engine.Now()
}

// Stats returns the run's execution telemetry. Valid after Run.
func (c *Coordinator) Stats() Stats { return c.stats }

// audit spot-checks the conservative contract each window: one sampled
// host per shard must be owned by the shard whose list it sits on, must
// be co-owned with its whole group, and its shard must have advanced to
// the safe horizon. Violations panic — they mean a data race on
// mobility state is possible and every result after this point is
// suspect.
func (c *Coordinator) audit(horizon float64) {
	if c.rng == nil {
		return
	}
	plan := c.pool.plan
	for s := 0; s < plan.k; s++ {
		list := plan.lists[s]
		if len(list) == 0 {
			continue
		}
		//simlint:stream auditStreams[s] is fmt.Sprintf(sim.StreamShardAudit, s), hoisted out of the window loop
		i := list[c.rng.Intn(c.auditStreams[s], len(list))]
		if plan.owner[i] != s {
			panic(fmt.Sprintf("shard: audit: host %d on shard %d's list but owned by %d", i, s, plan.owner[i]))
		}
		if g := plan.group[i]; g >= 0 {
			for _, j := range plan.members[g] {
				if plan.owner[j] != plan.owner[i] {
					panic(fmt.Sprintf("shard: audit: group %d split across shards %d and %d", g, plan.owner[i], plan.owner[j]))
				}
			}
		}
		if got := c.pool.advancedTo[s]; got < horizon {
			panic(fmt.Sprintf("shard: audit: shard %d advanced to %g, safe horizon %g", s, got, horizon))
		}
		c.stats.Audited++
	}
}
