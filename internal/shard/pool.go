package shard

import (
	"sync"
	"sync/atomic"
	"time"

	"ecgrid/internal/geom"
	"ecgrid/internal/hostid"
)

// Node is the per-host surface the pool needs: identity, liveness, the
// memoized current position (for rebalancing), the ability to
// materialize mobility history ahead of time, and a containment proof
// for the scan-pruning pin test. internal/node's Host implements it.
//
// StaysWithin must be exact-or-false: answer true only when the host
// provably cannot leave bounds anywhere in [from, until]. A false
// negative costs a redundant probe; a false positive would prune a host
// a reference scan admits and break byte-identity.
type Node interface {
	ID() hostid.ID
	Dead() bool
	Position() geom.Point
	AdvanceMobility(t float64)
	StaysWithin(from, until float64, bounds geom.Rect) bool
}

// Pool runs the parallel phases of a sharded run: the per-window
// mobility advance and the per-event paging-scan probe. It owns a fixed
// set of helper goroutines; the caller's goroutine always participates
// too, so a pool with zero helpers degrades to a plain serial loop.
//
// Every parallel phase partitions its work by the plan's ownership
// lists — worker w touches only hosts owned by the shards it picks up —
// so results are a pure function of the plan and never of how many
// helpers happen to be available.
type Pool struct {
	plan  *Plan
	nodes []Node
	ids   []hostid.ID // nodes[i].ID(), cached to keep hot loops monomorphic

	keep    []bool         // Scan scratch: per-host probe verdicts
	out     []hostid.ID    // Scan scratch: the returned ID slice
	pinned  []bool         // per-host pin verdicts from the last Advance
	jobs    chan poolJob   // nil when the pool has no helpers
	helpers int            // goroutines beyond the caller's own
	wg      sync.WaitGroup // helper lifetime
	barrier sync.WaitGroup // run's per-phase barrier, reused across phases

	// Advance and Scan run every window (Scan every paged event), so
	// their per-shard closures are built once here and parameterized
	// through these fields — a fresh capturing closure per call would
	// escape into the jobs channel and allocate in the steady state. The
	// fields are written before run dispatches and only read by workers,
	// so the channel send orders the accesses.
	advanceFn      func(s int)
	advFrom, advTo float64
	scanFn         func(s int)
	scanProbe      func(target hostid.ID) bool
	scanXlo        float64
	scanXhi        float64

	// advancedTo[s] is the horizon shard s's mobility has been
	// materialized to — written only by the worker running shard s's
	// advance, read between phases by the audit.
	advancedTo []float64

	stallNS atomic.Int64
}

type poolJob struct {
	fn func(s int)
	s  int
	wg *sync.WaitGroup
}

// NewPool builds a pool over the plan's shards with the given number of
// helper goroutines (clamped to shards-1: the caller works too, and
// more workers than shards would idle). Close releases the helpers.
func NewPool(plan *Plan, nodes []Node, helpers int) *Pool {
	p := &Pool{
		plan:       plan,
		nodes:      nodes,
		ids:        make([]hostid.ID, len(nodes)),
		keep:       make([]bool, len(nodes)),
		pinned:     make([]bool, len(nodes)),
		advancedTo: make([]float64, plan.k),
	}
	for i, n := range nodes {
		p.ids[i] = n.ID()
	}
	p.advanceFn = p.advanceShard
	p.scanFn = p.scanShard
	if helpers > plan.k-1 {
		helpers = plan.k - 1
	}
	if helpers < 0 {
		helpers = 0
	}
	p.helpers = helpers
	if helpers > 0 {
		p.jobs = make(chan poolJob, plan.k)
		p.wg.Add(helpers)
		for w := 0; w < helpers; w++ {
			go func() {
				defer p.wg.Done()
				for j := range p.jobs {
					j.fn(j.s)
					j.wg.Done()
				}
			}()
		}
	}
	return p
}

// Close shuts the helper goroutines down. The pool must be idle.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
		p.wg.Wait()
		p.jobs = nil
	}
}

// run executes fn(s) for every shard, distributing shards across the
// helpers; the caller's goroutine handles shard 0 (and anything the
// helpers have not claimed by the time it finishes). Time the caller
// then spends blocked on the stragglers is the run's stall time.
func (p *Pool) run(fn func(s int)) {
	if p.jobs == nil {
		for s := 0; s < p.plan.k; s++ {
			fn(s)
		}
		return
	}
	p.barrier.Add(p.plan.k)
	for s := 1; s < p.plan.k; s++ {
		p.jobs <- poolJob{fn, s, &p.barrier}
	}
	fn(0)
	p.barrier.Done()
	start := time.Now() //simlint:walltime — stall telemetry only, never simulation state
	p.barrier.Wait()
	p.stallNS.Add(time.Since(start).Nanoseconds()) //simlint:walltime — stall telemetry only
}

// Advance materializes every live host's mobility history over the
// window [from, to], each shard's hosts on that shard's worker. Dead
// hosts are skipped: their radios are detached, so nothing will read
// their position again.
//
// While it is there, each worker also classifies its hosts for Scan's
// strip pruning: a host whose trajectory provably stays inside the
// shard's pin rectangle for the whole window is pinned; everything else
// (dead, freshly handed in near a seam, or fast enough to cross) is a
// straggler that every Scan still probes. The pin test runs after the
// mobility advance on purpose — it then walks legs that already exist
// and consumes no random draws.
func (p *Pool) Advance(from, to float64) {
	p.advFrom, p.advTo = from, to
	p.run(p.advanceFn)
}

// advanceShard is Advance's per-shard body (p.advanceFn), parameterized
// by p.advFrom/p.advTo.
func (p *Pool) advanceShard(s int) {
	from, to := p.advFrom, p.advTo
	rect := p.plan.StripRect(s)
	for _, i := range p.plan.lists[s] {
		n := p.nodes[i]
		if n.Dead() {
			p.pinned[i] = false
			continue
		}
		n.AdvanceMobility(to)
		p.pinned[i] = n.StaysWithin(from, to, rect)
	}
	p.advancedTo[s] = to
}

// Scan evaluates probe against every host — each shard's worker probes
// the hosts it owns, so a pure probe (position, cell, range) runs
// race-free in parallel — and returns the IDs that passed, ascending.
// Host index equals host ID here (the runner numbers hosts densely),
// which is what makes the index-order sweep an ID-order result. The
// returned slice is reused by the next Scan.
//
// [xlo, xhi] is the x-span the probe can possibly admit (the paged
// cell's bounds): a shard whose pin rectangle misses the span skips its
// pinned hosts — they are provably inside the rectangle at the probe
// instant, so the reference probe would reject them — and probes only
// its stragglers. Callers that cannot bound the probe pass an infinite
// span and every host is probed.
func (p *Pool) Scan(probe func(target hostid.ID) bool, xlo, xhi float64) []hostid.ID {
	p.scanProbe, p.scanXlo, p.scanXhi = probe, xlo, xhi
	p.run(p.scanFn)
	p.scanProbe = nil // drop the caller's closure; it may capture a frame
	out := p.out[:0]
	for i, pass := range p.keep {
		if pass {
			out = append(out, p.ids[i])
		}
	}
	p.out = out
	return out
}

// scanShard is Scan's per-shard body (p.scanFn), parameterized by
// p.scanProbe and the [p.scanXlo, p.scanXhi] admissible span.
func (p *Pool) scanShard(s int) {
	probe := p.scanProbe
	if r := p.plan.StripRect(s); r.Max.X < p.scanXlo || r.Min.X > p.scanXhi {
		for _, i := range p.plan.lists[s] {
			if p.pinned[i] {
				p.keep[i] = false // scratch reuse: stale verdicts must not leak
			} else {
				p.keep[i] = probe(p.ids[i])
			}
		}
		return
	}
	for _, i := range p.plan.lists[s] {
		p.keep[i] = probe(p.ids[i])
	}
}

// Rebalance re-homes ownership to the hosts' current positions and
// returns the number of handoffs (boundary events).
func (p *Pool) Rebalance() int {
	return p.plan.Rebalance(func(i int) geom.Point { return p.nodes[i].Position() })
}

// StallNS returns the cumulative time the commit goroutine has spent
// blocked at phase barriers waiting for straggler workers.
func (p *Pool) StallNS() int64 { return p.stallNS.Load() }

// AdvancedTo returns the mobility horizon of shard s, for the audit and
// the conservativeness tests.
func (p *Pool) AdvancedTo(s int) float64 { return p.advancedTo[s] }
