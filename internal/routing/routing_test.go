package routing

import (
	"testing"
	"testing/quick"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
)

func TestTableLookupMissing(t *testing.T) {
	tbl := NewTable(10)
	if _, ok := tbl.Lookup(1, 0); ok {
		t.Fatal("lookup on empty table succeeded")
	}
}

func TestTableUpdateAndLookup(t *testing.T) {
	tbl := NewTable(10)
	e := Entry{Dst: 1, NextGrid: grid.Coord{X: 2, Y: 3}, Seq: 5, Hops: 2}
	if !tbl.Update(e, 0) {
		t.Fatal("first update rejected")
	}
	got, ok := tbl.Lookup(1, 5)
	if !ok || got.NextGrid != (grid.Coord{X: 2, Y: 3}) || got.Seq != 5 {
		t.Fatalf("Lookup = %+v, %v", got, ok)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
}

func TestTableFreshnessRules(t *testing.T) {
	tbl := NewTable(0) // no expiry
	tbl.Update(Entry{Dst: 1, Seq: 5, Hops: 3, NextGrid: grid.Coord{X: 1, Y: 0}}, 0)

	// Staler seq rejected.
	if tbl.Update(Entry{Dst: 1, Seq: 4, Hops: 1, NextGrid: grid.Coord{X: 9, Y: 9}}, 1) {
		t.Fatal("staler seq accepted")
	}
	// Same seq, more hops rejected.
	if tbl.Update(Entry{Dst: 1, Seq: 5, Hops: 4, NextGrid: grid.Coord{X: 9, Y: 9}}, 1) {
		t.Fatal("longer route with same seq accepted")
	}
	// Same seq, fewer hops accepted.
	if !tbl.Update(Entry{Dst: 1, Seq: 5, Hops: 2, NextGrid: grid.Coord{X: 2, Y: 0}}, 1) {
		t.Fatal("shorter route with same seq rejected")
	}
	// Higher seq always accepted, even with more hops.
	if !tbl.Update(Entry{Dst: 1, Seq: 6, Hops: 9, NextGrid: grid.Coord{X: 3, Y: 0}}, 1) {
		t.Fatal("fresher seq rejected")
	}
	got, _ := tbl.Lookup(1, 1)
	if got.Seq != 6 || got.NextGrid != (grid.Coord{X: 3, Y: 0}) {
		t.Fatalf("final entry = %+v", got)
	}
}

func TestTableSeqNeverDecreasesProperty(t *testing.T) {
	f := func(seqs []uint8) bool {
		tbl := NewTable(0)
		var maxSeq uint32
		for i, s := range seqs {
			tbl.Update(Entry{Dst: 1, Seq: uint32(s), Hops: i % 5}, float64(i))
			if e, ok := tbl.Lookup(1, float64(i)); ok {
				if e.Seq < maxSeq {
					return false
				}
				maxSeq = e.Seq
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableExpiry(t *testing.T) {
	tbl := NewTable(10)
	tbl.Update(Entry{Dst: 1, Seq: 1}, 0)
	if _, ok := tbl.Lookup(1, 9); !ok {
		t.Fatal("entry expired early")
	}
	if _, ok := tbl.Lookup(1, 11); ok {
		t.Fatal("entry survived past TTL")
	}
	// An expired entry is replaced regardless of freshness.
	tbl.Update(Entry{Dst: 2, Seq: 9}, 0)
	if !tbl.Update(Entry{Dst: 2, Seq: 1}, 20) {
		t.Fatal("stale-seq update rejected for expired entry")
	}
}

func TestTableTouch(t *testing.T) {
	tbl := NewTable(10)
	tbl.Update(Entry{Dst: 1, Seq: 1}, 0)
	tbl.Touch(1, 8)
	if _, ok := tbl.Lookup(1, 15); !ok {
		t.Fatal("touched entry expired")
	}
	tbl.Touch(99, 8) // no-op on missing entry
}

func TestTableRemove(t *testing.T) {
	tbl := NewTable(0)
	tbl.Update(Entry{Dst: 1, Seq: 1}, 0)
	tbl.Remove(1)
	if _, ok := tbl.Lookup(1, 0); ok {
		t.Fatal("removed entry still present")
	}
}

func TestTableSnapshotAndMerge(t *testing.T) {
	tbl := NewTable(10)
	tbl.Update(Entry{Dst: 3, Seq: 1}, 0)
	tbl.Update(Entry{Dst: 1, Seq: 2}, 0)
	tbl.Update(Entry{Dst: 2, Seq: 3}, 0)
	snap := tbl.Snapshot(5)
	if len(snap) != 3 || snap[0].Dst != 1 || snap[1].Dst != 2 || snap[2].Dst != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Expired entries are excluded from snapshots.
	snap = tbl.Snapshot(20)
	if len(snap) != 0 {
		t.Fatalf("snapshot after expiry = %+v", snap)
	}

	dst := NewTable(10)
	dst.Update(Entry{Dst: 1, Seq: 9}, 0) // fresher than snapshot's seq 2
	dst.Merge([]Entry{{Dst: 1, Seq: 2}, {Dst: 5, Seq: 1}}, 1)
	if e, _ := dst.Lookup(1, 1); e.Seq != 9 {
		t.Fatal("merge overwrote fresher entry")
	}
	if _, ok := dst.Lookup(5, 1); !ok {
		t.Fatal("merge dropped new entry")
	}
}

func TestHostTable(t *testing.T) {
	ht := NewHostTable()
	ht.Note(3, HostActive, 1)
	ht.Note(1, HostSleeping, 2)
	if ht.Len() != 2 {
		t.Fatalf("Len = %d", ht.Len())
	}
	e, ok := ht.Status(1)
	if !ok || e.Status != HostSleeping || e.LastSeen != 2 {
		t.Fatalf("Status(1) = %+v, %v", e, ok)
	}
	if _, ok := ht.Status(9); ok {
		t.Fatal("unknown host present")
	}
	ht.Note(1, HostActive, 3) // update
	if e, _ := ht.Status(1); e.Status != HostActive {
		t.Fatal("Note did not update status")
	}
	ids := ht.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("IDs = %v", ids)
	}
	ht.Remove(3)
	if ht.Len() != 1 {
		t.Fatal("Remove failed")
	}
}

func TestHostTableSnapshotMerge(t *testing.T) {
	a := NewHostTable()
	a.Note(1, HostActive, 5)
	a.Note(2, HostSleeping, 3)
	snap := a.Snapshot()
	if len(snap) != 2 || snap[0].ID != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	b := NewHostTable()
	b.Note(1, HostSleeping, 9) // more recent than a's
	b.Merge(snap)
	if e, _ := b.Status(1); e.LastSeen != 9 {
		t.Fatal("merge overwrote fresher row")
	}
	if e, _ := b.Status(2); e.Status != HostSleeping {
		t.Fatal("merge dropped row")
	}
}

func TestDupCache(t *testing.T) {
	c := NewDupCache(10)
	if c.Seen(1, 100, 0) {
		t.Fatal("fresh record reported seen")
	}
	if !c.Seen(1, 100, 5) {
		t.Fatal("repeat within TTL not detected")
	}
	if c.Seen(1, 101, 5) {
		t.Fatal("different id reported seen")
	}
	if c.Seen(2, 100, 5) {
		t.Fatal("different src reported seen")
	}
	// After TTL the same pair counts as new.
	if c.Seen(1, 100, 16) {
		t.Fatal("expired record still reported seen")
	}
	if c.Len() == 0 {
		t.Fatal("cache empty")
	}
}

func TestDupCachePanicsOnBadTTL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDupCache(0) did not panic")
		}
	}()
	NewDupCache(0)
}

func TestBufferFIFOAndOverflow(t *testing.T) {
	b := NewBuffer(3)
	for i := 0; i < 5; i++ {
		b.Push(1, &DataPacket{Seq: i})
	}
	if b.Pending(1) != 3 {
		t.Fatalf("Pending = %d, want 3", b.Pending(1))
	}
	if b.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", b.Dropped())
	}
	got := b.PopAll(1)
	if len(got) != 3 || got[0].Seq != 2 || got[2].Seq != 4 {
		t.Fatalf("PopAll = %+v (oldest must be dropped first)", got)
	}
	if b.Pending(1) != 0 || b.Destinations() != 0 {
		t.Fatal("buffer not empty after PopAll")
	}
}

func TestBufferPerDestinationIsolation(t *testing.T) {
	b := NewBuffer(2)
	b.Push(1, &DataPacket{Seq: 1})
	b.Push(2, &DataPacket{Seq: 2})
	if b.Destinations() != 2 {
		t.Fatalf("Destinations = %d", b.Destinations())
	}
	if len(b.PopAll(1)) != 1 || b.Pending(2) != 1 {
		t.Fatal("queues interfered")
	}
}

func TestBufferPanicsOnBadCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBuffer(0) did not panic")
		}
	}()
	NewBuffer(0)
}

func TestAODVTable(t *testing.T) {
	tbl := NewAODVTable(10)
	tbl.Update(AODVEntry{Dst: 1, NextHop: 5, Seq: 2, Hops: 3}, 0)
	e, ok := tbl.Lookup(1, 5)
	if !ok || e.NextHop != 5 {
		t.Fatalf("Lookup = %+v, %v", e, ok)
	}
	if _, ok := tbl.Lookup(1, 20); ok {
		t.Fatal("expired AODV entry returned")
	}
	tbl.Update(AODVEntry{Dst: 1, NextHop: 6, Seq: 3}, 20)
	tbl.Touch(1, 29)
	if _, ok := tbl.Lookup(1, 38); !ok {
		t.Fatal("touched AODV entry expired")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	tbl.Remove(1)
	if tbl.Len() != 0 {
		t.Fatal("Remove failed")
	}
}

func TestAODVFreshness(t *testing.T) {
	tbl := NewAODVTable(0)
	tbl.Update(AODVEntry{Dst: 1, NextHop: 5, Seq: 5, Hops: 2}, 0)
	if tbl.Update(AODVEntry{Dst: 1, NextHop: 9, Seq: 4, Hops: 1}, 0) {
		t.Fatal("staler AODV seq accepted")
	}
	if !tbl.Update(AODVEntry{Dst: 1, NextHop: 9, Seq: 5, Hops: 1}, 0) {
		t.Fatal("shorter AODV route rejected")
	}
}

func TestAODVRemoveVia(t *testing.T) {
	tbl := NewAODVTable(0)
	tbl.Update(AODVEntry{Dst: 1, NextHop: 5, Seq: 1}, 0)
	tbl.Update(AODVEntry{Dst: 2, NextHop: 5, Seq: 1}, 0)
	tbl.Update(AODVEntry{Dst: 3, NextHop: 6, Seq: 1}, 0)
	gone := tbl.RemoveVia(5)
	if len(gone) != 2 || gone[0] != 1 || gone[1] != 2 {
		t.Fatalf("RemoveVia = %v", gone)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len after RemoveVia = %d", tbl.Len())
	}
}

func TestRetireAndTransferSizes(t *testing.T) {
	r := &Retire{Routes: make([]Entry, 3), Hosts: make([]HostEntry, 2)}
	if got := r.SizeBytes(); got != RetireBase+5*RetireEntry {
		t.Fatalf("Retire.SizeBytes = %d", got)
	}
	tr := &Transfer{Routes: make([]Entry, 1)}
	if got := tr.SizeBytes(); got != RetireBase+RetireEntry {
		t.Fatalf("Transfer.SizeBytes = %d", got)
	}
}

func TestMessageStrings(t *testing.T) {
	h := &Hello{ID: 1, Grid: grid.Coord{X: 2, Y: 3}, GFlag: true, Level: 2, Dist: 7.5}
	if h.String() == "" {
		t.Fatal("empty Hello string")
	}
	rq := &RREQ{Src: 1, Dst: 2, BcastID: 7}
	if rq.String() == "" {
		t.Fatal("empty RREQ string")
	}
	rp := &RREP{Src: 1, Dst: 2}
	if rp.String() == "" {
		t.Fatal("empty RREP string")
	}
	p := &DataPacket{Flow: 1, Seq: 2, Src: 3, Dst: 4}
	if p.String() != "pkt{flow=1 seq=2 host-3->host-4}" {
		t.Fatalf("DataPacket.String = %q", p.String())
	}
	_ = hostid.Broadcast
}
