package routing

import "ecgrid/internal/hostid"

// DupCache remembers recently seen broadcast identifiers so floods
// terminate. The paper uses the (Src, id) pair of RREQ packets.
type DupCache struct {
	ttl  float64
	seen map[dupKey]float64 // key -> time first seen
}

type dupKey struct {
	src hostid.ID
	id  uint32
}

// NewDupCache creates a cache whose records expire after ttl seconds.
func NewDupCache(ttl float64) *DupCache {
	if ttl <= 0 {
		panic("routing: non-positive dup-cache ttl")
	}
	return &DupCache{ttl: ttl, seen: make(map[dupKey]float64)}
}

// Seen records (src, id) and reports whether it was already present and
// unexpired. Expired records are pruned lazily.
func (c *DupCache) Seen(src hostid.ID, id uint32, now float64) bool {
	k := dupKey{src, id}
	if t, ok := c.seen[k]; ok && now-t <= c.ttl {
		return true
	}
	c.seen[k] = now
	if len(c.seen) > 4096 {
		c.prune(now)
	}
	return false
}

func (c *DupCache) prune(now float64) {
	for k, t := range c.seen { //simlint:ordered deletion-only sweep

		if now-t > c.ttl {
			delete(c.seen, k)
		}
	}
}

// Len returns the number of stored records (including expired ones not
// yet pruned).
func (c *DupCache) Len() int { return len(c.seen) }

// Buffer holds data packets awaiting a route or a sleeping destination's
// wake-up. Each destination gets a bounded FIFO; overflow drops the
// oldest packet (the paper buffers at the gateway while the destination
// sleeps, and a real gateway has finite memory).
type Buffer struct {
	perDest int
	queues  map[hostid.ID][]*DataPacket
	dropped uint64
}

// NewBuffer creates a buffer holding at most perDest packets per
// destination.
func NewBuffer(perDest int) *Buffer {
	if perDest <= 0 {
		panic("routing: non-positive buffer capacity")
	}
	return &Buffer{perDest: perDest, queues: make(map[hostid.ID][]*DataPacket)}
}

// Push queues pkt for dst, dropping the oldest packet if full.
func (b *Buffer) Push(dst hostid.ID, pkt *DataPacket) {
	q := b.queues[dst]
	if len(q) >= b.perDest {
		q = q[1:]
		b.dropped++
	}
	b.queues[dst] = append(q, pkt)
}

// PopAll removes and returns every packet queued for dst, in FIFO order.
func (b *Buffer) PopAll(dst hostid.ID) []*DataPacket {
	q := b.queues[dst]
	delete(b.queues, dst)
	return q
}

// Pending returns the number of packets queued for dst.
func (b *Buffer) Pending(dst hostid.ID) int { return len(b.queues[dst]) }

// Destinations returns the number of destinations with queued packets.
func (b *Buffer) Destinations() int { return len(b.queues) }

// Dropped returns how many packets overflow has discarded.
func (b *Buffer) Dropped() uint64 { return b.dropped }
