package routing

import (
	"slices"

	"ecgrid/internal/hostid"
)

// AODVEntry is a host-by-host routing-table row used by the AODV layer
// that runs underneath GAF: to reach Dst, forward to NextHop.
type AODVEntry struct {
	Dst       hostid.ID
	NextHop   hostid.ID
	Seq       uint32
	Hops      int
	UpdatedAt float64
}

// AODVTable is a host-based routing table with TTL expiry and AODV
// freshness rules, mirroring Table but keyed on next-hop hosts instead of
// grids.
type AODVTable struct {
	ttl     float64
	entries map[hostid.ID]AODVEntry
}

// NewAODVTable creates a table whose entries expire ttl seconds after
// their last update. Non-positive ttl disables expiry.
func NewAODVTable(ttl float64) *AODVTable {
	return &AODVTable{ttl: ttl, entries: make(map[hostid.ID]AODVEntry)}
}

// Lookup returns the live entry for dst.
func (t *AODVTable) Lookup(dst hostid.ID, now float64) (AODVEntry, bool) {
	e, ok := t.entries[dst]
	if !ok {
		return AODVEntry{}, false
	}
	if t.expired(e, now) {
		delete(t.entries, dst)
		return AODVEntry{}, false
	}
	return e, true
}

func (t *AODVTable) expired(e AODVEntry, now float64) bool {
	return t.ttl > 0 && now-e.UpdatedAt > t.ttl
}

// Update installs e under the same freshness rules as Table.Update and
// reports whether the table changed.
func (t *AODVTable) Update(e AODVEntry, now float64) bool {
	e.UpdatedAt = now
	old, ok := t.entries[e.Dst]
	if ok && !t.expired(old, now) {
		if e.Seq < old.Seq {
			return false
		}
		if e.Seq == old.Seq && e.Hops > old.Hops {
			return false
		}
	}
	t.entries[e.Dst] = e
	return true
}

// Touch refreshes the TTL of dst's entry if present.
func (t *AODVTable) Touch(dst hostid.ID, now float64) {
	if e, ok := t.entries[dst]; ok && !t.expired(e, now) {
		e.UpdatedAt = now
		t.entries[dst] = e
	}
}

// Remove deletes the entry for dst.
func (t *AODVTable) Remove(dst hostid.ID) { delete(t.entries, dst) }

// RemoveVia deletes every entry whose next hop is the given host (used
// when a neighbor is detected gone) and returns the affected
// destinations.
func (t *AODVTable) RemoveVia(hop hostid.ID) []hostid.ID {
	dsts := make([]hostid.ID, 0, len(t.entries))
	//simlint:ordered keys are sorted immediately below
	for dst := range t.entries {
		dsts = append(dsts, dst)
	}
	slices.Sort(dsts)
	var out []hostid.ID
	for _, dst := range dsts {
		if t.entries[dst].NextHop == hop {
			delete(t.entries, dst)
			out = append(out, dst)
		}
	}
	return out
}

// Len returns the number of stored entries.
func (t *AODVTable) Len() int { return len(t.entries) }
