// Package routing holds the wire formats and table machinery shared by
// the grid-based protocols (GRID and ECGRID) and the host-based AODV used
// under GAF.
//
// Messages travel as radio.Frame payloads. The simulator passes payload
// structs by reference instead of serializing them; the Bytes fields of
// frames still reflect realistic on-air sizes so airtime and energy are
// right. Receivers must treat payloads as immutable.
package routing

import (
	"fmt"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
)

// On-air payload sizes in bytes (MAC framing is added by the senders via
// radio.MACHeaderBytes). Sizes follow the fields the paper lists for each
// message, at IPv4-address scale.
const (
	HelloBytes    = 20 // id, grid, gflag, level, dist
	RREQBytes     = 44 // S, s_seq, D, d_seq, id, range, orig/prev grids
	RREPBytes     = 32 // S, D, d_seq, dest grid, hops, prev grid
	RERRBytes     = 16 // unreachable dst, seq
	RetireBase    = 12 // grid + counts; plus per-entry cost below
	RetireEntry   = 12 // one routing- or host-table entry
	ACQBytes      = 16 // gid, D
	LeaveBytes    = 12 // id, grid
	AwakeBytes    = 8  // id (sleep-wake handshake)
	DataHeader    = 28 // flow, seq, src, dst, target grid
	DiscoveryByte = 20 // GAF: id, grid, rank, enat
)

// Hello is the paper's HELLO message (§3.1): every active host broadcasts
// it periodically; the gateway sets GFlag.
type Hello struct {
	ID    hostid.ID
	Grid  grid.Coord
	GFlag bool
	Level int     // energy.Level as int, to avoid an import cycle here
	Dist  float64 // distance to the geographic center of Grid
}

func (h *Hello) String() string {
	return fmt.Sprintf("HELLO{%v %v gflag=%t level=%d dist=%.1f}", h.ID, h.Grid, h.GFlag, h.Level, h.Dist)
}

// RREQ is the route request flooded grid-by-grid within the search area.
type RREQ struct {
	Src      hostid.ID
	SrcSeq   uint32
	Dst      hostid.ID
	DstSeq   uint32 // last known destination sequence (0 = unknown)
	BcastID  uint32 // (Src, BcastID) detects duplicates
	Area     grid.SearchArea
	OrigGrid grid.Coord // grid of the requesting gateway
	PrevGrid grid.Coord // grid of the gateway that forwarded this copy
	Hops     int
	// Page marks a retried search: gateways in the area transmit the
	// destination's paging sequence so a sleeping destination whose
	// registration was lost wakes up and re-announces itself.
	Page bool
}

func (r *RREQ) String() string {
	return fmt.Sprintf("RREQ{%v->%v id=%d area=%v hops=%d}", r.Src, r.Dst, r.BcastID, r.Area, r.Hops)
}

// RREP is the route reply unicast back along the reverse path.
type RREP struct {
	Src      hostid.ID // original requester
	Dst      hostid.ID // destination the route reaches
	DstSeq   uint32
	DestGrid grid.Coord // grid where Dst currently lives
	Hops     int        // hops from the replying gateway to Dst
	PrevGrid grid.Coord // grid of the gateway that forwarded this copy
	ToGrid   grid.Coord // grid this copy is addressed to (next on reverse path)
}

func (r *RREP) String() string {
	return fmt.Sprintf("RREP{%v->%v destGrid=%v hops=%d}", r.Src, r.Dst, r.DestGrid, r.Hops)
}

// RERR reports a broken route back toward the source so upstream
// gateways purge the entry and sources re-discover. It travels the
// reverse path hop by hop until it reaches the gateway serving Src.
type RERR struct {
	Src    hostid.ID // source whose traffic hit the break
	Dst    hostid.ID // unreachable destination
	Seq    uint32
	ToGrid grid.Coord
}

// Retire is the gateway's departure announcement (§3.2): it carries the
// routing and host tables so the successor can take over, plus the grid
// coordinate. When the gateway retires because it moved out, Leaving and
// NewGrid let the successor keep forwarding the ex-gateway's traffic
// (§3.4 applied to gateways). Tables are snapshots — the receiver owns
// them.
type Retire struct {
	Grid    grid.Coord
	Routes  []Entry
	Hosts   []HostEntry
	Leaving hostid.ID  // the departing gateway
	NewGrid grid.Coord // its new grid (meaningful when HasNew)
	HasNew  bool
	// Successor, when not hostid.None, names the member the retiring
	// gateway computed as the election winner from its last HELLO
	// data. Since the election rules are a deterministic function of
	// shared information, precomputing them removes the gatewayless
	// window; receivers still fall back to a full election if the
	// designate never takes over.
	Successor hostid.ID
}

// SizeBytes returns the on-air size of the retire message, which grows
// with the transferred tables.
func (r *Retire) SizeBytes() int {
	return RetireBase + RetireEntry*(len(r.Routes)+len(r.Hosts))
}

// Transfer hands the tables from a replaced gateway to its successor
// after the successor declared itself (incoming-host replacement, §3.2
// case 1). Same shape as Retire but unicast.
type Transfer struct {
	Grid   grid.Coord
	Routes []Entry
	Hosts  []HostEntry
}

// SizeBytes returns the on-air size, like Retire.SizeBytes.
func (t *Transfer) SizeBytes() int {
	return RetireBase + RetireEntry*(len(t.Routes)+len(t.Hosts))
}

// ACQ is the acquire message a sleeping host sends after waking to
// transmit (§3.3): it tells the (possibly changed) gateway that the host
// is awake and wants a route to Dst.
type ACQ struct {
	Grid grid.Coord
	Src  hostid.ID
	Dst  hostid.ID // hostid.None when waking only to receive pages
}

// Leave is the unicast departure notice of a non-gateway host (§3.2).
// NewGrid implements §3.4's route maintenance: the old gateway installs a
// one-hop forwarding stub toward the host's new grid, so in-flight
// traffic follows the move instead of breaking.
type Leave struct {
	ID      hostid.ID
	Grid    grid.Coord // grid being left
	NewGrid grid.Coord // grid the host moved into
}

// Data wraps an application packet as it moves grid-by-grid (GRID/ECGRID)
// or host-by-host (GAF/AODV).
type Data struct {
	Packet     *DataPacket
	TargetGrid grid.Coord // grid the current copy is addressed to
	DestGrid   grid.Coord // grid the destination was last known to live in
	HasDest    bool       // whether DestGrid is meaningful
}

// DataPacket is one application-layer packet, created by the traffic
// generator and consumed by the metrics collector at delivery.
type DataPacket struct {
	Flow   int
	Seq    int
	Src    hostid.ID
	Dst    hostid.ID
	Bytes  int     // payload size (the paper uses 512)
	SentAt float64 // simulation time the source emitted it
}

func (p *DataPacket) String() string {
	return fmt.Sprintf("pkt{flow=%d seq=%d %v->%v}", p.Flow, p.Seq, p.Src, p.Dst)
}

// Discovery is GAF's discovery message: active and discovery-state hosts
// broadcast it so grid peers can rank each other.
type Discovery struct {
	ID    hostid.ID
	Grid  grid.Coord
	State int     // gaf state enum, kept as int to avoid import cycles
	Enat  float64 // expected node active time (rank key)
}

// AODVRREQ is the host-by-host route request used under GAF.
type AODVRREQ struct {
	Src     hostid.ID
	SrcSeq  uint32
	Dst     hostid.ID
	DstSeq  uint32
	BcastID uint32
	PrevHop hostid.ID
	Hops    int
}

// AODVRREP is the host-by-host route reply used under GAF.
type AODVRREP struct {
	Src    hostid.ID
	Dst    hostid.ID
	DstSeq uint32
	Hops   int
	To     hostid.ID // next hop on the reverse path
}
