package routing

import (
	"cmp"
	"slices"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
)

// Entry is one grid routing-table row: to reach Dst, forward to the
// gateway of NextGrid. Seq carries AODV-style freshness; fresher (higher
// Seq) routes replace staler ones, and equal-freshness routes with fewer
// hops win.
type Entry struct {
	Dst       hostid.ID
	NextGrid  grid.Coord
	DestGrid  grid.Coord // grid where Dst was last known to live
	Seq       uint32
	Hops      int
	UpdatedAt float64
}

// Table is a grid routing table with per-entry TTL expiry. The zero value
// is not usable; construct with NewTable.
type Table struct {
	ttl     float64
	entries map[hostid.ID]Entry
}

// NewTable creates a table whose entries expire ttl seconds after their
// last update. A non-positive ttl disables expiry.
func NewTable(ttl float64) *Table {
	return &Table{ttl: ttl, entries: make(map[hostid.ID]Entry)}
}

// Lookup returns the live entry for dst. Expired entries are removed and
// reported absent.
func (t *Table) Lookup(dst hostid.ID, now float64) (Entry, bool) {
	e, ok := t.entries[dst]
	if !ok {
		return Entry{}, false
	}
	if t.expired(e, now) {
		delete(t.entries, dst)
		return Entry{}, false
	}
	return e, true
}

func (t *Table) expired(e Entry, now float64) bool {
	return t.ttl > 0 && now-e.UpdatedAt > t.ttl
}

// Update installs e if it is fresher than the existing entry: a higher
// sequence number always wins; an equal sequence wins with fewer hops; an
// expired or missing entry is always replaced. It reports whether the
// table changed.
func (t *Table) Update(e Entry, now float64) bool {
	e.UpdatedAt = now
	old, ok := t.entries[e.Dst]
	if ok && !t.expired(old, now) {
		if e.Seq < old.Seq {
			return false
		}
		if e.Seq == old.Seq && e.Hops > old.Hops {
			return false
		}
	}
	t.entries[e.Dst] = e
	return true
}

// Touch refreshes the TTL of dst's entry if present (used when a route
// forwards traffic successfully).
func (t *Table) Touch(dst hostid.ID, now float64) {
	if e, ok := t.entries[dst]; ok && !t.expired(e, now) {
		e.UpdatedAt = now
		t.entries[dst] = e
	}
}

// Remove deletes the entry for dst.
func (t *Table) Remove(dst hostid.ID) {
	delete(t.entries, dst)
}

// Len returns the number of stored (possibly stale) entries.
func (t *Table) Len() int { return len(t.entries) }

// Snapshot returns the live entries sorted by destination, for transfer
// in RETIRE/TRANSFER messages. The returned slice is owned by the caller.
func (t *Table) Snapshot(now float64) []Entry {
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries { //simlint:ordered output is sorted by Dst below

		if !t.expired(e, now) {
			out = append(out, e)
		}
	}
	slices.SortFunc(out, func(a, b Entry) int { return cmp.Compare(a.Dst, b.Dst) })
	return out
}

// Merge installs every entry of snapshot that is fresher than what the
// table holds (successor gateways inherit their predecessor's table).
func (t *Table) Merge(snapshot []Entry, now float64) {
	for _, e := range snapshot {
		t.Update(e, now)
	}
}

// HostStatus is a host-table row's liveness state.
type HostStatus int

const (
	// HostActive: the host is awake (can receive directly).
	HostActive HostStatus = iota
	// HostSleeping: the host is in sleep mode (page before sending).
	HostSleeping
)

// HostEntry is one row of the gateway's host table (§3): the hosts known
// to live in the gateway's grid and their transmit/sleep status.
type HostEntry struct {
	ID       hostid.ID
	Status   HostStatus
	LastSeen float64
}

// HostTable is the gateway's membership table. Entries age out with
// status-dependent TTLs: an active member re-HELLOs every period, so its
// entry goes stale quickly once it leaves; a sleeping member is silent by
// design and its entry must survive until its next dwell wake-up.
type HostTable struct {
	activeTTL float64 // expiry for HostActive rows (0 = never)
	sleepTTL  float64 // expiry for HostSleeping rows (0 = never)
	hosts     map[hostid.ID]HostEntry
}

// NewHostTable returns an empty host table without expiry (rows live
// until removed). Protocols that track live membership use
// NewHostTableTTL.
func NewHostTable() *HostTable {
	return NewHostTableTTL(0, 0)
}

// NewHostTableTTL returns an empty host table whose rows expire
// activeTTL (active) or sleepTTL (sleeping) seconds after last being
// seen. Zero disables expiry for that status.
func NewHostTableTTL(activeTTL, sleepTTL float64) *HostTable {
	return &HostTable{
		activeTTL: activeTTL,
		sleepTTL:  sleepTTL,
		hosts:     make(map[hostid.ID]HostEntry),
	}
}

// Fresh returns the entry for id if it has not expired at time now.
//
// An Active row past activeTTL is demoted to Sleeping rather than
// deleted (when sleepTTL allows): a member that went silent either left
// the grid or fell asleep with its notice lost, and presuming sleep keeps
// it reachable through paging. Rows past sleepTTL are removed.
func (h *HostTable) Fresh(id hostid.ID, now float64) (HostEntry, bool) {
	e, ok := h.hosts[id]
	if !ok {
		return HostEntry{}, false
	}
	if e.Status == HostActive && h.activeTTL > 0 && now-e.LastSeen > h.activeTTL {
		if h.sleepTTL > h.activeTTL && now-e.LastSeen <= h.sleepTTL {
			e.Status = HostSleeping
			h.hosts[id] = e
		} else {
			delete(h.hosts, id)
			return HostEntry{}, false
		}
	}
	if e.Status == HostSleeping && h.sleepTTL > 0 && now-e.LastSeen > h.sleepTTL {
		delete(h.hosts, id)
		return HostEntry{}, false
	}
	return e, true
}

// Note records that host id was seen with the given status.
func (h *HostTable) Note(id hostid.ID, status HostStatus, now float64) {
	h.hosts[id] = HostEntry{ID: id, Status: status, LastSeen: now}
}

// Status returns the host's entry if present.
func (h *HostTable) Status(id hostid.ID) (HostEntry, bool) {
	e, ok := h.hosts[id]
	return e, ok
}

// Remove deletes a host (it left the grid or died).
func (h *HostTable) Remove(id hostid.ID) {
	delete(h.hosts, id)
}

// Len returns the number of known hosts.
func (h *HostTable) Len() int { return len(h.hosts) }

// Snapshot returns the rows sorted by ID, for table transfer.
func (h *HostTable) Snapshot() []HostEntry {
	out := make([]HostEntry, 0, len(h.hosts))
	for _, e := range h.hosts { //simlint:ordered output is sorted by ID below

		out = append(out, e)
	}
	slices.SortFunc(out, func(a, b HostEntry) int { return cmp.Compare(a.ID, b.ID) })
	return out
}

// Merge installs rows, keeping the most recently seen on conflict.
func (h *HostTable) Merge(rows []HostEntry) {
	for _, e := range rows {
		if old, ok := h.hosts[e.ID]; !ok || e.LastSeen > old.LastSeen {
			h.hosts[e.ID] = e
		}
	}
}

// IDs returns the member IDs sorted ascending.
func (h *HostTable) IDs() []hostid.ID {
	out := make([]hostid.ID, 0, len(h.hosts))
	for id := range h.hosts { //simlint:ordered output is sorted below

		out = append(out, id)
	}
	slices.Sort(out)
	return out
}
