package batch

import (
	"context"
	"sync"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// Executor runs configs submitted one at a time, from any goroutine,
// through a shared worker pool. Where Run wants the whole job list up
// front, Executor serves consumers that discover their runs dynamically
// — cmd/repro's claims each request the simulations they need from
// inside their check functions, and internal/server turns each HTTP
// request into a submission.
//
// Submissions are deduplicated by content key: concurrent and repeated
// submissions of the same canonical config share one execution (and one
// manifest entry), and completed results are cached for the executor's
// lifetime. With Options.Store set, results are also checked against and
// written to the persistent store, so identical submissions across
// executor (and process) lifetimes run once ever. Panic isolation,
// retries, the resume manifest, and the progress sink behave exactly as
// in Run.
type Executor struct {
	ctx context.Context
	opt Options
	sem chan struct{}

	mu    sync.Mutex
	calls map[string]*call
}

// call is one deduplicated execution.
type call struct {
	done chan struct{}
	res  *runner.Results
	err  error
}

// NewExecutor returns an executor whose workers, retries, progress,
// manifest, resume map, and store come from opt. Cancelling ctx fails
// pending and future submissions with the context's error.
func NewExecutor(ctx context.Context, opt Options) *Executor {
	return &Executor{
		ctx:   ctx,
		opt:   opt,
		sem:   make(chan struct{}, opt.workers()),
		calls: make(map[string]*call),
	}
}

// Run executes cfg (or joins an identical in-flight execution, or
// satisfies it from the resume manifest or result store) and blocks
// until its results are available. It is RunCtx without a per-call
// context.
func (x *Executor) Run(tag string, cfg scenario.Config) (*runner.Results, error) {
	return x.RunCtx(context.Background(), tag, cfg)
}

// RunCtx is Run with a per-call context: ctx bounds this submission —
// its wait to join an in-flight execution, its wait for a worker slot,
// and (for the submission that ends up owning the execution) the
// decision to start at all. A simulation already running is not
// interrupted: runner.Run has no preemption points, so cancellation
// takes effect at the next wait, and a result computed after the caller
// gave up still lands in the store and manifest for whoever asks next.
//
// A call abandoned by its owner *before* executing (per-call or executor
// context cancelled while queued) is removed from the dedup map, so a
// later submission of the same config starts fresh instead of
// inheriting a stale cancellation error. Failures from an actual
// execution stay cached for the executor's lifetime: the simulator is
// deterministic, so re-running the same config would fail identically.
func (x *Executor) RunCtx(ctx context.Context, tag string, cfg scenario.Config) (*runner.Results, error) {
	key := Key(cfg)
	x.mu.Lock()
	if c, ok := x.calls[key]; ok {
		x.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err
		case <-x.ctx.Done():
			return nil, context.Cause(x.ctx)
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	c := &call{done: make(chan struct{})}
	x.calls[key] = c
	x.mu.Unlock()

	defer close(c.done)
	// abandon fails the call without poisoning the key: joiners waiting
	// on c.done see the error, but the next submission re-executes.
	abandon := func(err error) (*runner.Results, error) {
		c.err = err
		x.mu.Lock()
		delete(x.calls, key)
		x.mu.Unlock()
		return nil, err
	}

	if e, ok := x.opt.Resume[key]; ok && e.Resumable() {
		x.opt.Progress.Log("%s (resumed)", tag)
		c.res = e.Results
		return c.res, nil
	}
	if x.opt.Store != nil {
		res, ok, err := x.opt.Store.Get(key)
		if err != nil {
			x.opt.Progress.Log("%s: store read: %v", tag, err)
		}
		if ok {
			x.opt.Progress.Log("%s (cached)", tag)
			c.res = res
			return c.res, nil
		}
	}
	// Explicit pre-checks: a select with several cases ready picks
	// randomly, which would let a cancelled executor accept work.
	if x.ctx.Err() != nil {
		return abandon(context.Cause(x.ctx))
	}
	if ctx.Err() != nil {
		return abandon(context.Cause(ctx))
	}
	select {
	case x.sem <- struct{}{}:
	case <-x.ctx.Done():
		return abandon(context.Cause(x.ctx))
	case <-ctx.Done():
		return abandon(context.Cause(ctx))
	}
	defer func() { <-x.sem }()

	res, attempts, err := execute(tag, cfg, x.opt)
	if err == nil && x.opt.Store != nil {
		if perr := x.opt.Store.Put(key, res); perr != nil {
			x.opt.Progress.Log("%s: store write: %v", tag, perr)
		}
	}
	c.res, c.err = res, err
	record(x.opt.Manifest, cfg, Result{Key: key, Tag: tag, Res: res, Attempts: attempts, Err: err})
	return c.res, c.err
}
