package batch

import (
	"context"
	"sync"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// Executor runs configs submitted one at a time, from any goroutine,
// through a shared worker pool. Where Run wants the whole job list up
// front, Executor serves consumers that discover their runs dynamically
// — cmd/repro's claims each request the simulations they need from
// inside their check functions, and several claims need the same runs.
//
// Submissions are deduplicated by content key: concurrent and repeated
// submissions of the same canonical config share one execution (and one
// manifest entry), and completed results are cached for the executor's
// lifetime. Panic isolation, retries, the resume manifest, and the
// progress sink behave exactly as in Run.
type Executor struct {
	ctx context.Context
	opt Options
	sem chan struct{}

	mu    sync.Mutex
	calls map[string]*call
}

// call is one deduplicated execution.
type call struct {
	done chan struct{}
	res  *runner.Results
	err  error
}

// NewExecutor returns an executor whose workers, retries, progress,
// manifest, and resume map come from opt. Cancelling ctx fails pending
// and future submissions with the context's error.
func NewExecutor(ctx context.Context, opt Options) *Executor {
	return &Executor{
		ctx:   ctx,
		opt:   opt,
		sem:   make(chan struct{}, opt.workers()),
		calls: make(map[string]*call),
	}
}

// Run executes cfg (or joins an identical in-flight execution, or
// rehydrates it from the resume manifest) and blocks until its results
// are available.
func (x *Executor) Run(tag string, cfg scenario.Config) (*runner.Results, error) {
	key := Key(cfg)
	x.mu.Lock()
	if c, ok := x.calls[key]; ok {
		x.mu.Unlock()
		select {
		case <-c.done:
			return c.res, c.err
		case <-x.ctx.Done():
			return nil, context.Cause(x.ctx)
		}
	}
	c := &call{done: make(chan struct{})}
	x.calls[key] = c
	x.mu.Unlock()

	defer close(c.done)
	if e, ok := x.opt.Resume[key]; ok && e.Resumable() {
		x.opt.Progress.Log("%s (resumed)", tag)
		c.res = e.Results
		return c.res, nil
	}
	// Explicit pre-check: a select with both cases ready picks randomly,
	// which would let a cancelled executor accept work.
	if x.ctx.Err() != nil {
		c.err = context.Cause(x.ctx)
		return nil, c.err
	}
	select {
	case x.sem <- struct{}{}:
	case <-x.ctx.Done():
		c.err = context.Cause(x.ctx)
		return nil, c.err
	}
	defer func() { <-x.sem }()

	res, attempts, err := execute(tag, cfg, x.opt)
	c.res, c.err = res, err
	record(x.opt.Manifest, cfg, Result{Key: key, Tag: tag, Res: res, Attempts: attempts, Err: err})
	return c.res, c.err
}
