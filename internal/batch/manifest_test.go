package batch

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecgrid/internal/scenario"
)

func TestManifestResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	jobs := tinyJobs()

	m, err := CreateManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	// First invocation: run only half the jobs, as if interrupted.
	first, sum := Run(context.Background(), jobs[:3], Options{Workers: 2, Manifest: m})
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("manifest holds %d entries, want 3", len(entries))
	}

	// Second invocation: the full job list with resume. The recorded
	// jobs must be skipped, the rest executed.
	m2, err := CreateManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	second, sum2 := Run(context.Background(), jobs, Options{
		Workers:  2,
		Manifest: m2,
		Resume:   entries,
		Progress: NewSink(func(s string) { lines = append(lines, s) }),
	})
	if err := sum2.Err(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	if sum2.Resumed != 3 || sum2.Executed != len(jobs)-3 {
		t.Fatalf("summary = %+v, want 3 resumed / %d executed", sum2, len(jobs)-3)
	}
	resumedLines := 0
	for _, l := range lines {
		if strings.Contains(l, "(resumed)") {
			resumedLines++
		}
	}
	if resumedLines != 3 {
		t.Errorf("progress shows %d resumed lines, want 3", resumedLines)
	}

	// Rehydrated results must match the originals byte for byte on the
	// serialized (exported) state consumers read.
	for i := 0; i < 3; i++ {
		if !second[i].Resumed {
			t.Errorf("job %d not marked resumed", i)
		}
		a, b := marshal(t, first[i].Res), marshal(t, second[i].Res)
		if string(a) != string(b) {
			t.Errorf("job %d: rehydrated results differ from the recorded run", i)
		}
		r := second[i].Res
		if r.Collector == nil || len(r.Collector.Alive.Points) == 0 {
			t.Errorf("job %d: rehydrated collector series missing", i)
		}
	}

	// Third invocation resumes everything: zero executions.
	third, sum3 := Run(context.Background(), jobs, Options{Resume: mustLoad(t, path)})
	if sum3.Executed != 0 || sum3.Resumed != len(jobs) {
		t.Fatalf("full resume executed %d jobs", sum3.Executed)
	}
	if len(third) != len(jobs) {
		t.Fatalf("result count %d", len(third))
	}
}

func mustLoad(t *testing.T, path string) map[string]Entry {
	t.Helper()
	entries, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func TestFailedEntriesAreNotResumable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	bad := tinyCfg(scenario.ECGRID, 1)
	bad.Hosts = -1
	m, err := CreateManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	_, sum := Run(context.Background(), []Job{{Tag: "bad", Cfg: bad}}, Options{Manifest: m})
	if sum.Failed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	entries := mustLoad(t, path)
	e, ok := entries[Key(bad)]
	if !ok {
		t.Fatal("failed run missing from manifest")
	}
	if e.Status != StatusFailed || e.Error == "" || e.Stack == "" || e.Cfg == nil {
		t.Fatalf("failed entry incomplete: %+v", e)
	}
	if e.Resumable() {
		t.Fatal("failed entry claims to be resumable")
	}
	// Resuming with it must re-run (and fail again, configs being
	// deterministic) rather than skip.
	_, sum2 := Run(context.Background(), []Job{{Tag: "bad", Cfg: bad}}, Options{Resume: entries})
	if sum2.Resumed != 0 || sum2.Failed != 1 {
		t.Fatalf("failed entry was resumed: %+v", sum2)
	}
}

// TestLoadManifestTruncatedFinalLine models a crash mid-append: the
// file ends in a partial JSON line. The load must skip that line and
// return every complete entry, so -resume recovers the sweep instead of
// refusing the manifest it was built to rescue.
func TestLoadManifestTruncatedFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	jobs := tinyJobs()[:2]
	m, err := CreateManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	first, sum := Run(context.Background(), jobs, Options{Workers: 1, Manifest: m})
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The torn append: a prefix of a third entry, no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"0000","tag":"interrupted","status":"ok","results":{"Sent`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("truncated final line poisoned the manifest: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("recovered %d entries, want 2", len(entries))
	}

	// The recovered entries must still resume.
	second, sum2 := Run(context.Background(), jobs, Options{Resume: entries})
	if sum2.Resumed != 2 || sum2.Executed != 0 {
		t.Fatalf("summary after recovery = %+v, want 2 resumed", sum2)
	}
	for i := range jobs {
		if string(marshal(t, first[i].Res)) != string(marshal(t, second[i].Res)) {
			t.Errorf("job %d: recovered results differ", i)
		}
	}
}

// TestLoadManifestMidFileCorruption: garbage that is *not* the final
// line cannot come from a torn append and must still fail the load.
func TestLoadManifestMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	content := `{"key":"aa","status":"ok"}` + "\n" +
		`GARBAGE NOT JSON` + "\n" +
		`{"key":"bb","status":"ok"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

func TestLoadManifestMissingFile(t *testing.T) {
	entries, err := LoadManifest(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil {
		t.Fatalf("missing manifest is an error: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("missing manifest yields %d entries", len(entries))
	}
}
