package batch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ecgrid/internal/scenario"
	"ecgrid/internal/shard"
)

// tinyCfg is a fast-to-simulate but non-trivial scenario.
func tinyCfg(p scenario.ProtocolKind, seed int64) scenario.Config {
	cfg := scenario.Default(p)
	cfg.Hosts = 12
	cfg.AreaSize = 500
	cfg.Duration = 30
	cfg.SampleEvery = 10
	cfg.Flows = 2
	cfg.Seed = seed
	return cfg
}

// tinyJobs is a small mixed sweep: two protocols at three seeds.
func tinyJobs() []Job {
	var jobs []Job
	for _, p := range []scenario.ProtocolKind{scenario.ECGRID, scenario.GRID} {
		for seed := int64(1); seed <= 3; seed++ {
			jobs = append(jobs, Job{Tag: fmt.Sprintf("%s seed=%d", p, seed), Cfg: tinyCfg(p, seed)})
		}
	}
	return jobs
}

// marshal serializes one run's results for byte-level comparison.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterminismAcrossWorkers is the core guarantee: the same job list
// produces byte-identical serialized results at workers=1 and workers=8.
func TestDeterminismAcrossWorkers(t *testing.T) {
	jobs := tinyJobs()
	serial, sum1 := Run(context.Background(), jobs, Options{Workers: 1})
	if err := sum1.Err(); err != nil {
		t.Fatal(err)
	}
	parallel, sum8 := Run(context.Background(), jobs, Options{Workers: 8})
	if err := sum8.Err(); err != nil {
		t.Fatal(err)
	}
	if sum1.Executed != len(jobs) || sum8.Executed != len(jobs) {
		t.Fatalf("executed %d / %d jobs, want %d", sum1.Executed, sum8.Executed, len(jobs))
	}
	for i := range jobs {
		a, b := marshal(t, serial[i].Res), marshal(t, parallel[i].Res)
		if string(a) != string(b) {
			t.Errorf("job %d (%s): serialized results differ between workers=1 and workers=8",
				i, jobs[i].Tag)
		}
	}
}

// TestShardedJobsShareWorkerBudget: a parallel batch of sharded runs
// must negotiate goroutines through the shared budget — same results as
// a serial unsharded batch, and every budget slot returned afterwards
// (a leak would starve all later runs of helpers forever).
func TestShardedJobsShareWorkerBudget(t *testing.T) {
	jobs := tinyJobs()
	sharded := make([]Job, len(jobs))
	for i, j := range jobs {
		j.Cfg.Shards = 3 // 500 m area, 100 m cells: 5 columns, 3 strips
		sharded[i] = j
	}
	ref, sumRef := Run(context.Background(), jobs, Options{Workers: 1})
	got, sumGot := Run(context.Background(), sharded, Options{Workers: 4})
	if err := errors.Join(sumRef.Err(), sumGot.Err()); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		a, b := marshal(t, ref[i].Res.Collector), marshal(t, got[i].Res.Collector)
		if string(a) != string(b) {
			t.Errorf("job %d (%s): sharded parallel batch diverged from serial reference", i, jobs[i].Tag)
		}
	}
	max := runtime.GOMAXPROCS(0)
	if free := shard.AcquireWorkers(max * 2); free != max {
		shard.ReleaseWorkers(free)
		t.Fatalf("%d of %d budget slots free after the batch: slots leaked", free, max)
	} else {
		shard.ReleaseWorkers(free)
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	bad := tinyCfg(scenario.ECGRID, 1)
	bad.Hosts = -1 // fails Validate, so runner.Run panics
	jobs := []Job{
		{Tag: "good-1", Cfg: tinyCfg(scenario.ECGRID, 1)},
		{Tag: "bad", Cfg: bad},
		{Tag: "good-2", Cfg: tinyCfg(scenario.ECGRID, 2)},
	}
	results, sum := Run(context.Background(), jobs, Options{Workers: 4, Retries: 1})
	if sum.Failed != 1 || sum.Executed != 2 {
		t.Fatalf("summary = %+v, want 1 failed / 2 executed", sum)
	}
	if sum.Err() == nil {
		t.Fatal("summary reports no error despite a failed job")
	}
	r := results[1]
	if r.Err == nil || r.Res != nil {
		t.Fatalf("bad job result = %+v, want error and nil results", r)
	}
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("bad job error %T, want *PanicError", r.Err)
	}
	if pe.Stack == "" || !strings.Contains(pe.Value, "at least one host") {
		t.Errorf("panic capture incomplete: value=%q stack len=%d", pe.Value, len(pe.Stack))
	}
	if r.Attempts != 2 {
		t.Errorf("bad job ran %d attempts, want 2 (1 + 1 retry)", r.Attempts)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Res == nil {
			t.Errorf("job %d should have survived the neighbour's panic: %+v", i, results[i])
		}
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, sum := Run(ctx, tinyJobs(), Options{Workers: 2})
	if sum.Cancelled != len(results) {
		t.Fatalf("cancelled %d of %d", sum.Cancelled, len(results))
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d error = %v, want context.Canceled", r.Index, r.Err)
		}
	}
	if sum.Err() == nil {
		t.Fatal("cancelled batch reports success")
	}
}

func TestKeyStability(t *testing.T) {
	a := tinyCfg(scenario.ECGRID, 1)
	b := tinyCfg(scenario.ECGRID, 1)
	if Key(a) != Key(b) {
		t.Fatal("equal configs produced different keys")
	}
	c := tinyCfg(scenario.ECGRID, 2)
	if Key(a) == Key(c) {
		t.Fatal("different seeds share a key")
	}
	d := tinyCfg(scenario.GRID, 1)
	if Key(a) == Key(d) {
		t.Fatal("different protocols share a key")
	}
}

func TestProgressSinkSerializes(t *testing.T) {
	var lines []string // plain slice: the sink's contract makes this safe
	sink := NewSink(func(s string) { lines = append(lines, s) })
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sink.Log("worker %d line %d", i, j)
			}
		}(i)
	}
	wg.Wait()
	if len(lines) != 16*50 {
		t.Fatalf("lost lines: %d of %d", len(lines), 16*50)
	}
	var nilSink *Sink
	nilSink.Log("dropped")          // must not panic
	NewSink(nil).Log("dropped too") // must not panic
}
