package batch

import (
	"context"
	"sync"
	"testing"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// memStore is an in-memory ResultStore that counts traffic, standing in
// for *store.Store (whose own tests live in internal/store; batch only
// sees the interface).
type memStore struct {
	mu   sync.Mutex
	m    map[string]*runner.Results
	puts int
	hits int
}

func newMemStore() *memStore { return &memStore{m: make(map[string]*runner.Results)} }

func (s *memStore) Get(key string) (*runner.Results, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, ok := s.m[key]
	if ok {
		s.hits++
	}
	return res, ok, nil
}

func (s *memStore) Put(key string, res *runner.Results) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = res
	s.puts++
	return nil
}

// TestRunStoreBacked: a second batch over the same store executes
// nothing and reproduces the first batch's results exactly.
func TestRunStoreBacked(t *testing.T) {
	jobs := tinyJobs()
	st := newMemStore()

	first, sum := Run(context.Background(), jobs, Options{Workers: 4, Store: st})
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	if sum.Executed != len(jobs) || sum.Cached != 0 {
		t.Fatalf("cold batch: executed=%d cached=%d, want %d/0", sum.Executed, sum.Cached, len(jobs))
	}
	if st.puts != len(jobs) {
		t.Fatalf("store puts = %d, want %d", st.puts, len(jobs))
	}

	second, sum2 := Run(context.Background(), jobs, Options{Workers: 4, Store: st})
	if err := sum2.Err(); err != nil {
		t.Fatal(err)
	}
	if sum2.Executed != 0 || sum2.Cached != len(jobs) {
		t.Fatalf("warm batch: executed=%d cached=%d, want 0/%d", sum2.Executed, sum2.Cached, len(jobs))
	}
	for i := range jobs {
		if !second[i].Cached {
			t.Errorf("job %d not marked cached", i)
		}
		if string(marshal(t, first[i].Res)) != string(marshal(t, second[i].Res)) {
			t.Errorf("job %d (%s): cached results differ from executed ones", i, jobs[i].Tag)
		}
	}
}

// TestExecutorStoreBacked: executions land in the store, and a fresh
// executor over the same store serves them without re-running.
func TestExecutorStoreBacked(t *testing.T) {
	st := newMemStore()
	cfg := tinyCfg(scenario.ECGRID, 5)

	x1 := NewExecutor(context.Background(), Options{Workers: 2, Store: st})
	res1, err := x1.Run("cold", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.puts != 1 {
		t.Fatalf("store puts = %d, want 1", st.puts)
	}

	// A new executor (cold dedup map) must hit the store, not re-run.
	x2 := NewExecutor(context.Background(), Options{Workers: 2, Store: st})
	res2, err := x2.Run("warm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.puts != 1 {
		t.Fatalf("warm executor re-ran the job: puts = %d", st.puts)
	}
	if st.hits == 0 {
		t.Fatal("warm executor never consulted the store")
	}
	if string(marshal(t, res1)) != string(marshal(t, res2)) {
		t.Fatal("store-served results differ from executed ones")
	}
}

// TestExecutorRunCtxCancelled: a cancelled per-call context fails the
// submission without poisoning the key — the next submission runs.
func TestExecutorRunCtxCancelled(t *testing.T) {
	x := NewExecutor(context.Background(), Options{Workers: 1})
	cfg := tinyCfg(scenario.ECGRID, 9)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.RunCtx(ctx, "cancelled", cfg); err == nil {
		t.Fatal("RunCtx with cancelled context succeeded")
	}

	// Same key, live context: must execute normally, not replay the
	// cancellation.
	res, err := x.RunCtx(context.Background(), "retry", cfg)
	if err != nil {
		t.Fatalf("submission after a cancelled one failed: %v", err)
	}
	if res == nil || res.Sent == 0 {
		t.Fatal("retry produced no results")
	}
}

// TestExecutorRunCtxDeadlineWhileQueued: a per-call context that expires
// while the submission waits behind the worker pool fails that
// submission only.
func TestExecutorRunCtxDeadlineWhileQueued(t *testing.T) {
	x := NewExecutor(context.Background(), Options{Workers: 1})

	// Occupy the single worker slot so the next submission queues.
	release := make(chan struct{})
	x.sem <- struct{}{}
	go func() {
		<-release
		<-x.sem
	}()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := x.RunCtx(ctx, "queued", tinyCfg(scenario.ECGRID, 11))
		errc <- err
	}()
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("queued submission survived its context being cancelled")
	}
}
