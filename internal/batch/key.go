package batch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"ecgrid/internal/scenario"
)

// Key returns the job's stable content key: the hex SHA-256 of the
// config's canonical JSON encoding. Two configs with equal keys describe
// the same simulation, and a deterministic simulator therefore the same
// results — the property manifests and resume rely on. The encoding is
// canonical because Config is a plain struct (fields encode in
// declaration order, no maps) and its runtime-only Trace recorder is
// excluded from serialization.
func Key(cfg scenario.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain data struct; it cannot fail to marshal.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
