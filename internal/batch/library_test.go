package batch

import (
	"path/filepath"
	"testing"

	"ecgrid/internal/scenario"
)

// TestScenarioLibraryKeysStable pins the identity of every committed
// scenarios/ entry: loading a file twice yields equal configs and equal
// batch keys, and the key survives an encode→decode round trip. This is
// the contract that lets the CI soak job (and any shared store) address
// results of the library by content — an accidental change to the spec
// encoding or to Config field order shows up here, not as a silently
// cold cache.
func TestScenarioLibraryKeysStable(t *testing.T) {
	files, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed scenario files found")
	}
	seen := make(map[string]string)
	for _, f := range files {
		a, err := scenario.Load(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		b, err := scenario.Load(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		ka, kb := Key(a), Key(b)
		if ka != kb {
			t.Errorf("%s: two loads produced keys %s and %s", f, ka, kb)
		}
		if a.Gen.Empty() {
			t.Errorf("%s: library entry carries no generator spec", f)
		}
		if prev, dup := seen[ka]; dup {
			t.Errorf("%s and %s share key %s", f, prev, ka)
		}
		seen[ka] = f
	}
}

// TestDenseManhattanSoakSpec sanity-checks the soak workload: the
// population really is the dense 10k tier and the horizon is short
// enough for CI to run it under -race.
func TestDenseManhattanSoakSpec(t *testing.T) {
	cfg, err := scenario.Load("../../scenarios/dense-manhattan-10k.json")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hosts != 10000 {
		t.Errorf("soak scenario has %d hosts, want 10000", cfg.Hosts)
	}
	if cfg.Duration > 30 {
		t.Errorf("soak horizon %g s is too long for CI", cfg.Duration)
	}
	g := cfg.Gen
	if g == nil || g.Deployment == nil || g.Mobility == nil || g.Traffic == nil || g.Propagation == nil {
		t.Fatal("soak scenario must exercise all four generator axes")
	}
}
