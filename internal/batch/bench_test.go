package batch

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"ecgrid/internal/scenario"
)

// benchJobs is a small multi-seed figure-style sweep: one protocol, six
// seed replicates — the shape cmd/figures -seeds produces.
func benchJobs() []Job {
	var jobs []Job
	for seed := int64(1); seed <= 6; seed++ {
		cfg := tinyCfg(scenario.ECGRID, seed)
		cfg.Duration = 60
		jobs = append(jobs, Job{Tag: fmt.Sprintf("bench seed=%d", seed), Cfg: cfg})
	}
	return jobs
}

func benchBatch(b *testing.B, workers int) {
	b.ReportAllocs()
	jobs := benchJobs()
	for i := 0; i < b.N; i++ {
		results, sum := Run(context.Background(), jobs, Options{Workers: workers})
		if err := sum.Err(); err != nil {
			b.Fatal(err)
		}
		if results[0].Res == nil {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkBatchSerial and BenchmarkBatchParallel run the same sweep at
// workers=1 and workers=GOMAXPROCS; their ratio is the wall-clock
// speedup the pool buys on this machine (≈1 on a single core, ≈cores on
// multi-core hardware since the jobs are embarrassingly parallel).
func BenchmarkBatchSerial(b *testing.B) { benchBatch(b, 1) }

func BenchmarkBatchParallel(b *testing.B) { benchBatch(b, runtime.GOMAXPROCS(0)) }
