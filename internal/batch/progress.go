package batch

import (
	"fmt"
	"sync"
)

// Sink serializes progress lines from concurrent workers into a single
// callback. It replaces handing a raw func(string) to code that may call
// it from many goroutines: the sink guarantees the callback runs in one
// goroutine at a time, so plain closures (appending to a slice, writing
// a terminal line) need no locking of their own. A nil *Sink, or a Sink
// around a nil callback, drops lines, so callers can log
// unconditionally.
type Sink struct {
	mu sync.Mutex
	fn func(string)
}

// NewSink wraps fn; fn may be nil.
func NewSink(fn func(string)) *Sink {
	return &Sink{fn: fn}
}

// Log formats and delivers one progress line.
func (s *Sink) Log(format string, args ...any) {
	if s == nil || s.fn == nil {
		return
	}
	line := fmt.Sprintf(format, args...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fn(line)
}
