package batch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// Manifest file format: one JSON Entry per line (JSONL), appended as jobs
// complete. A sweep interrupted halfway leaves a manifest whose
// successful entries let the next invocation skip straight to the
// missing jobs (--resume); the recorded Results are rehydrated so
// consumers cannot tell a resumed job from a fresh one.
//
// Rehydration caveat: a Results decoded from JSON carries the exported
// state only — every scalar metric plus the Collector's Alive/Aen
// series. Collector methods backed by unexported accumulators (Sent,
// LatencyPercentile, ...) read zero on a rehydrated value; consumers
// that need such quantities across resume must use the exported Results
// fields (Sent, MedianLatency, ...), which all of this repository's do.

// Entry status values.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Entry is one manifest line: the outcome of one job.
type Entry struct {
	Key      string `json:"key"`
	Tag      string `json:"tag,omitempty"`
	Status   string `json:"status"`
	Attempts int    `json:"attempts"`
	// Error and Stack describe a failed run (Stack only for panics).
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
	// Cfg is recorded for failed runs so they can be reproduced; for
	// successful runs the config is inside Results.
	Cfg *scenario.Config `json:"cfg,omitempty"`
	// Results is the full serialized outcome of a successful run.
	Results *runner.Results `json:"results,omitempty"`
}

// Resumable reports whether the entry can satisfy a job without
// re-running it. Failed entries are not resumable: rerunning with
// --resume retries exactly the jobs that failed or never ran.
func (e Entry) Resumable() bool {
	return e.Status == StatusOK && e.Results != nil
}

// Manifest appends entries to a JSONL stream. Append is safe to call
// from concurrent workers; entries land in completion order (resume is
// keyed by content, so order carries no meaning).
type Manifest struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	err error
}

// NewManifest writes entries to w.
func NewManifest(w io.Writer) *Manifest {
	return &Manifest{w: w}
}

// CreateManifest opens path for appending, creating it if needed, so an
// interrupted sweep's manifest keeps growing across invocations.
func CreateManifest(path string) (*Manifest, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("batch: manifest: %w", err)
	}
	return &Manifest{w: f, c: f}, nil
}

// Append records one entry. Errors are sticky and reported by Close, so
// workers need not handle them mid-run.
func (m *Manifest) Append(e Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		m.err = fmt.Errorf("batch: manifest: marshal: %w", err)
		return
	}
	data = append(data, '\n')
	if _, err := m.w.Write(data); err != nil {
		m.err = fmt.Errorf("batch: manifest: %w", err)
	}
}

// Close flushes the manifest and returns the first write error, if any.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.c != nil {
		if err := m.c.Close(); err != nil && m.err == nil {
			m.err = fmt.Errorf("batch: manifest: %w", err)
		}
		m.c = nil
	}
	return m.err
}

// LoadManifest reads a manifest back as a key→entry map for
// Options.Resume. The latest entry per key wins, so a key that failed
// and then succeeded on a later invocation resumes. A missing file is an
// empty manifest, not an error — the first run of a sweep may pass
// --resume unconditionally.
//
// A process killed mid-Append leaves a truncated final line; erroring on
// it would poison -resume with exactly the manifest it exists to rescue.
// An unparseable *final* line is therefore skipped with a warning on
// stderr — the interrupted job simply re-runs and re-appends. Garbage
// anywhere *before* the last line cannot come from a torn append and
// still fails the load.
func LoadManifest(path string) (map[string]Entry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return map[string]Entry{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("batch: manifest: %w", err)
	}
	defer f.Close() //simlint:err read-only file; Close cannot lose data
	entries := map[string]Entry{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	line := 0
	// A parse failure is held back one iteration: only once another line
	// follows do we know it was not a tail truncation.
	var badErr error
	badLine := 0
	for sc.Scan() {
		line++
		if badErr != nil {
			return nil, fmt.Errorf("batch: manifest %s:%d: %w", path, badLine, badErr)
		}
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			badErr, badLine = err, line
			continue
		}
		entries[e.Key] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: manifest %s: %w", path, err)
	}
	if badErr != nil {
		//simlint:err best-effort stderr warning; a failed write must not fail the load
		fmt.Fprintf(os.Stderr, "batch: manifest %s:%d: skipping truncated final entry (%v)\n", path, badLine, badErr)
	}
	return entries, nil
}
