// Package batch fans independent simulation runs across a worker pool
// while preserving bit-identical, deterministically ordered results.
//
// Every (protocol, sweep-point, seed) simulation in this repository is an
// independent deterministic computation: runner.Run builds a private
// engine, RNG, channel, and collector per call, so runs can execute
// concurrently without sharing state. This package supplies the
// orchestration the evaluation layers need on top of that fact:
//
//   - a Job/Result model where results are collected by job index, never
//     by completion order, so any worker count reproduces the serial
//     output exactly;
//   - a stable content key per job (SHA-256 of the canonical config
//     encoding, see Key) and a JSONL manifest written as runs complete,
//     so a partially finished sweep can be resumed with the completed
//     jobs skipped and their recorded results rehydrated;
//   - per-job panic isolation with the goroutine stack captured, a
//     bounded retry policy, and a failed-jobs Summary instead of one bad
//     configuration killing a 200-run sweep;
//   - context.Context cancellation and a goroutine-safe progress Sink
//     that serializes lines from concurrent workers.
//
// Run executes a job list known up front; Executor accepts jobs
// discovered dynamically (cmd/repro's claims) and deduplicates identical
// submissions.
package batch

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/shard"
)

// Job is one simulation to run.
type Job struct {
	// Tag is an optional human-readable label used in progress lines and
	// manifest entries.
	Tag string
	// Cfg is the scenario to run. It must be valid; an invalid config
	// panics inside runner.Run and surfaces as a failed Result.
	Cfg scenario.Config
}

// Result is the outcome of one job. Run returns results in job order.
type Result struct {
	// Index is the job's position in the submitted list.
	Index int
	// Tag echoes Job.Tag.
	Tag string
	// Key is the job's stable content key (see Key).
	Key string
	// Res holds the simulation results; nil when Err is non-nil.
	Res *runner.Results
	// Err is the terminal failure after all attempts, a *PanicError when
	// the run panicked, or the context error when cancelled before the
	// job could run.
	Err error
	// Attempts counts executions, 0 for resumed, cached, or cancelled
	// jobs.
	Attempts int
	// Resumed marks a job satisfied from the resume manifest.
	Resumed bool
	// Cached marks a job satisfied from Options.Store.
	Cached bool
}

// ResultStore caches completed results by content key, across processes
// and forever: determinism (DESIGN.md §8) means a key's results never go
// stale. *store.Store implements it; batch depends only on this
// interface so the store package stays an optional layer above.
//
// The store is strictly an optimization: Get errors make the job run,
// Put errors make it uncached — neither fails the batch.
type ResultStore interface {
	// Get returns the cached results for key, or ok=false on a miss.
	Get(key string) (*runner.Results, bool, error)
	// Put records res under key, overwriting any previous entry.
	Put(key string, res *runner.Results) error
}

// Options tune a batch run.
type Options struct {
	// Workers caps concurrent simulations; <= 0 uses GOMAXPROCS.
	Workers int
	// Retries is the number of extra attempts after a failed run.
	Retries int
	// Progress, if non-nil, receives one line as each job starts, resumes,
	// or fails.
	Progress *Sink
	// Manifest, if non-nil, records an Entry as each job completes.
	Manifest *Manifest
	// Resume maps content keys to previously completed manifest entries
	// (from LoadManifest); jobs whose key has a successful entry are not
	// re-run — their results are rehydrated from the entry.
	Resume map[string]Entry
	// Store, if non-nil, is consulted before each job runs (a hit skips
	// the run, like Resume but persistent and cross-process) and filled
	// after each successful run. See ResultStore.
	Store ResultStore
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerCount resolves the Workers setting the way Run and Executor do:
// the value itself when positive, GOMAXPROCS otherwise. Exposed so
// layers sizing their own pools against this one (internal/server's
// worker slots) agree with it exactly.
func (o Options) WorkerCount() int { return o.workers() }

// Summary aggregates a batch run's outcome.
type Summary struct {
	Total     int
	Executed  int
	Resumed   int
	Cached    int
	Failed    int
	Cancelled int
	// FailedJobs lists the failed results (also present in the main
	// slice) so callers can report them without rescanning.
	FailedJobs []Result
}

// Err returns nil when every job produced results, and otherwise an
// error describing the failed and cancelled jobs.
func (s Summary) Err() error {
	if s.Failed == 0 && s.Cancelled == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "batch: %d of %d jobs failed", s.Failed+s.Cancelled, s.Total)
	for i, r := range s.FailedJobs {
		if i == 3 {
			fmt.Fprintf(&b, "; ...")
			break
		}
		fmt.Fprintf(&b, "; job %d (%s): %v", r.Index, r.Tag, r.Err)
	}
	return fmt.Errorf("%s", b.String())
}

// PanicError is a panic captured from a simulation run.
type PanicError struct {
	Value string // the panic value, stringified
	Stack string // the goroutine stack at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic: %s", e.Value)
}

// Run executes the jobs across a worker pool and returns one Result per
// job, in job order. A failed or panicking job never stops the others;
// consult the Summary (or each Result.Err) for failures. Cancelling ctx
// stops feeding new jobs; jobs never started carry ctx's error.
func Run(ctx context.Context, jobs []Job, opt Options) ([]Result, Summary) {
	results := make([]Result, len(jobs))
	pending := make([]int, 0, len(jobs))
	sum := Summary{Total: len(jobs)}

	for i, j := range jobs {
		results[i] = Result{Index: i, Tag: j.Tag, Key: Key(j.Cfg)}
		if e, ok := opt.Resume[results[i].Key]; ok && e.Resumable() {
			results[i].Res = e.Results
			results[i].Resumed = true
			sum.Resumed++
			opt.Progress.Log("%s (resumed)", j.Tag)
			continue
		}
		if opt.Store != nil {
			res, ok, err := opt.Store.Get(results[i].Key)
			if err != nil {
				// The store is an optimization; a read error just runs
				// the job.
				opt.Progress.Log("%s: store read: %v", j.Tag, err)
			}
			if ok {
				results[i].Res = res
				results[i].Cached = true
				sum.Cached++
				opt.Progress.Log("%s (cached)", j.Tag)
				continue
			}
		}
		pending = append(pending, i)
	}

	workers := opt.workers()
	if workers > len(pending) {
		workers = len(pending)
	}
	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for _, i := range pending {
			// ctx.Err first: when both select cases are ready the choice
			// is random, and an already-cancelled batch must feed nothing.
			if ctx.Err() != nil {
				return
			}
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//simlint:ctx workers drain idxCh, which the ctx-aware feeder closes on cancellation
		go func() {
			defer wg.Done()
			for i := range idxCh {
				res, attempts, err := execute(jobs[i].Tag, jobs[i].Cfg, opt)
				results[i].Res = res
				results[i].Attempts = attempts
				results[i].Err = err
				if err == nil && opt.Store != nil {
					if perr := opt.Store.Put(results[i].Key, res); perr != nil {
						opt.Progress.Log("%s: store write: %v", jobs[i].Tag, perr)
					}
				}
				record(opt.Manifest, jobs[i].Cfg, results[i])
			}
		}()
	}
	wg.Wait()

	for _, i := range pending {
		r := &results[i]
		switch {
		case r.Err != nil:
			sum.Failed++
			sum.FailedJobs = append(sum.FailedJobs, *r)
		case r.Res != nil:
			sum.Executed++
		default: // never fed: the context was cancelled first
			r.Err = context.Cause(ctx)
			sum.Cancelled++
			sum.FailedJobs = append(sum.FailedJobs, *r)
		}
	}
	return results, sum
}

// execute runs one config with panic isolation and the retry policy.
func execute(tag string, cfg scenario.Config, opt Options) (res *runner.Results, attempts int, err error) {
	// Hold one slot of the process-wide worker budget for the duration
	// of the job: batch-level parallelism and intra-run sharding draw
	// from the same GOMAXPROCS pool, so composing a wide `-parallel`
	// with `-shards` degrades the runs to serial phases instead of
	// oversubscribing the machine with workers × shards goroutines.
	shard.AcquireRun()
	defer shard.ReleaseRun()
	for attempts = 1; ; attempts++ {
		opt.Progress.Log("%s", tag)
		res, err = runOnce(cfg)
		if err == nil || attempts > opt.Retries {
			return res, attempts, err
		}
		opt.Progress.Log("%s: attempt %d failed (%v), retrying", tag, attempts, err)
	}
}

// runOnce executes a single simulation, converting a panic into an error
// with the captured stack.
func runOnce(cfg scenario.Config) (res *runner.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	return runner.Run(cfg), nil
}

// record appends the job's manifest entry, if a manifest is attached.
func record(m *Manifest, cfg scenario.Config, r Result) {
	if m == nil {
		return
	}
	e := Entry{Key: r.Key, Tag: r.Tag, Status: StatusOK, Attempts: r.Attempts, Results: r.Res}
	if r.Err != nil {
		e.Status = StatusFailed
		e.Error = r.Err.Error()
		if p, ok := r.Err.(*PanicError); ok {
			e.Stack = p.Stack
		}
		e.Cfg = &cfg
	}
	m.Append(e)
}
