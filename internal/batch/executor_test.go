package batch

import (
	"context"
	"strings"
	"sync"
	"testing"

	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
)

// TestExecutorDedup: concurrent submissions of the same config share one
// execution and return the same results value.
func TestExecutorDedup(t *testing.T) {
	var lines []string
	x := NewExecutor(context.Background(), Options{
		Workers:  4,
		Progress: NewSink(func(s string) { lines = append(lines, s) }),
	})
	cfg := tinyCfg(scenario.ECGRID, 7)
	const callers = 8
	got := make([]*runner.Results, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := x.Run("dedup", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = r
		}(i)
	}
	wg.Wait()
	if len(lines) != 1 {
		t.Fatalf("%d executions for %d identical submissions, want 1", len(lines), callers)
	}
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d got a different results value", i)
		}
	}
	// A later repeat submission hits the cache too.
	r, err := x.Run("dedup", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r != got[0] || len(lines) != 1 {
		t.Fatal("repeat submission re-ran the simulation")
	}
}

func TestExecutorPanicIsolation(t *testing.T) {
	x := NewExecutor(context.Background(), Options{Workers: 2})
	bad := tinyCfg(scenario.ECGRID, 1)
	bad.Hosts = -1
	if _, err := x.Run("bad", bad); err == nil {
		t.Fatal("invalid config did not error")
	}
	// The executor stays usable after a panic.
	if _, err := x.Run("good", tinyCfg(scenario.ECGRID, 2)); err != nil {
		t.Fatal(err)
	}
	// The failure is cached like any other outcome.
	_, err := x.Run("bad again", bad)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("cached failure = %v", err)
	}
}

func TestExecutorResume(t *testing.T) {
	cfg := tinyCfg(scenario.GRID, 3)
	// Record the run once.
	results, sum := Run(context.Background(), []Job{{Tag: "seed", Cfg: cfg}}, Options{})
	if err := sum.Err(); err != nil {
		t.Fatal(err)
	}
	entries := map[string]Entry{
		Key(cfg): {Key: Key(cfg), Status: StatusOK, Results: results[0].Res},
	}
	var lines []string
	x := NewExecutor(context.Background(), Options{
		Resume:   entries,
		Progress: NewSink(func(s string) { lines = append(lines, s) }),
	})
	r, err := x.Run("resumed", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r != results[0].Res {
		t.Fatal("resume did not hand back the recorded results")
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "(resumed)") {
		t.Fatalf("progress = %v, want one resumed line", lines)
	}
}

func TestExecutorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := NewExecutor(ctx, Options{Workers: 1})
	if _, err := x.Run("cancelled", tinyCfg(scenario.ECGRID, 9)); err == nil {
		t.Fatal("cancelled executor accepted work")
	}
}
