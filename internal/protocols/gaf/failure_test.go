package gaf

import (
	"math"
	"testing"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
)

// Failure-path and lifecycle tests for the GAF + AODV baseline.

func TestSleepingSourceWakesToSend(t *testing.T) {
	tb := newTestbed(t)
	// Two forwarders in one cell (one will sleep) plus a destination
	// endpoint in range.
	a := tb.add(150, 150, 500, false)
	b := tb.add(160, 160, 500, false)
	dst := tb.add(250, 150, math.Inf(1), true)
	tb.start()
	tb.engine.Run(10)
	sleeper := a
	if !tb.hosts[0].Asleep() {
		sleeper = b
		if !tb.hosts[1].Asleep() {
			t.Fatal("nobody sleeping")
		}
	}
	sleeper.SubmitData(pkt(1, sleeper.host.ID(), dst.host.ID(), tb.engine.Now()))
	tb.engine.Run(20)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d from a sleeping source, want 1", len(tb.delivered))
	}
}

func TestTxFailedPurgesRouteAndRediscovers(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 100, math.Inf(1), true)
	tb.add(250, 100, 500, false) // real forwarder
	dst := tb.add(450, 100, math.Inf(1), true)
	tb.start()
	tb.engine.Run(5)
	now := tb.engine.Now()
	// Poison the source's table with a dead next hop, then fail a frame
	// on it: TxFailed must purge and re-route via discovery.
	src.table.Update(routing.AODVEntry{Dst: dst.host.ID(), NextHop: 77, Seq: 9}, now)
	p := pkt(1, src.host.ID(), dst.host.ID(), now)
	tb.engine.Schedule(0.01, func() {
		src.TxFailed(&radio.Frame{
			Kind: "data", Src: src.host.ID(), Dst: 77, Bytes: 574,
			Payload: &routing.Data{Packet: p},
		})
	})
	tb.engine.Run(10)
	if _, ok := src.table.Lookup(dst.host.ID(), tb.engine.Now()); !ok {
		t.Fatal("no fresh route after repair")
	}
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d after link-failure repair, want 1", len(tb.delivered))
	}
}

func TestTxFailedDropsExpiredPacket(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 100, math.Inf(1), true)
	tb.start()
	tb.engine.Run(15)
	old := pkt(1, src.host.ID(), hostid.ID(9), tb.engine.Now()-60)
	src.TxFailed(&radio.Frame{
		Kind: "data", Src: src.host.ID(), Dst: 77, Bytes: 574,
		Payload: &routing.Data{Packet: old},
	})
	if src.Stats.DataDropped != 1 {
		t.Fatalf("expired packet not dropped: %+v", src.Stats)
	}
}

func TestTxFailedIgnoresControl(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 100, 500, false)
	tb.start()
	tb.engine.Run(2)
	src.TxFailed(&radio.Frame{Kind: "rrep", Dst: 3, Bytes: 66, Payload: &routing.AODVRREP{}})
}

func TestTransitNoRouteSendsRERRToSource(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 100, math.Inf(1), true)
	mid := tb.add(300, 100, 500, false)
	tb.start()
	tb.engine.Run(5)
	now := tb.engine.Now()
	// The source believes mid can reach 99; mid has no route and must
	// drop + RERR, and the source must purge its entry.
	src.table.Update(routing.AODVEntry{Dst: 99, NextHop: mid.host.ID(), Seq: 5}, now)
	mid.table.Update(routing.AODVEntry{Dst: src.host.ID(), NextHop: src.host.ID(), Seq: 5}, now)
	tb.engine.Schedule(0.01, func() {
		src.SubmitData(pkt(1, src.host.ID(), hostid.ID(99), tb.engine.Now()))
	})
	tb.engine.Run(8)
	if mid.Stats.RERRsSent == 0 {
		t.Fatal("transit forwarder sent no RERR")
	}
	if _, ok := src.table.Lookup(99, tb.engine.Now()); ok {
		t.Fatal("source kept the broken route after RERR")
	}
}

func TestCellChangedRestartsDiscoveryState(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(150, 150, 500, false)
	tb.start()
	tb.engine.Run(3)
	if p.State() != "active" {
		t.Fatalf("setup: %s", p.State())
	}
	p.CellChanged(grid.Coord{X: 1, Y: 1}, grid.Coord{X: 2, Y: 1})
	if p.State() != "discovery" {
		t.Fatalf("state after cell change = %s", p.State())
	}
	if p.Stats.DiscoveriesSent < 2 {
		t.Fatalf("no step-down announcement: %d", p.Stats.DiscoveriesSent)
	}
}

func TestStoppedLifecycle(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(150, 150, 500, false)
	tb.start()
	tb.engine.Run(2)
	p.Stopped()
	// Nothing may fire or panic afterwards.
	p.SubmitData(pkt(1, p.host.ID(), 9, tb.engine.Now()))
	p.Woken(0)
	p.CellChanged(grid.Coord{X: 1, Y: 1}, grid.Coord{X: 2, Y: 1})
	tb.engine.Run(20)
}

func TestDuplicateSubmitWhileDiscoveryPending(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 100, math.Inf(1), true)
	tb.add(250, 100, 500, false)
	tb.start()
	tb.engine.Run(5)
	// Two packets to an unreachable destination: one discovery runs,
	// both packets buffered, both dropped on exhaustion.
	src.SubmitData(pkt(1, src.host.ID(), hostid.ID(99), tb.engine.Now()))
	src.SubmitData(pkt(2, src.host.ID(), hostid.ID(99), tb.engine.Now()))
	tb.engine.Run(15)
	if src.Stats.DataDropped != 2 {
		t.Fatalf("DataDropped = %d, want 2", src.Stats.DataDropped)
	}
}

func TestGAFOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	mutations := map[string]func(*Options){
		"td":      func(o *Options) { o.Td = 0 },
		"ta frac": func(o *Options) { o.TaFrac = 2 },
		"ta max":  func(o *Options) { o.TaMax = 0 },
		"dup ttl": func(o *Options) { o.DupTTL = 0 },
		"buffer":  func(o *Options) { o.BufferPerDest = 0 },
		"disc":    func(o *Options) { o.DiscoveryTimeout = 0 },
	}
	for name, mutate := range mutations {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPlainAODVNeverSleepsButRelays(t *testing.T) {
	tb := newTestbed(t)
	// Build an AODV host manually (testbed adds GAF ones).
	h := nodeNew(tb, 300, 100)
	relay := NewAODV(h, DefaultOptions())
	relay.OnDeliver = func(pkt *routing.DataPacket) { tb.delivered = append(tb.delivered, pkt) }
	h.SetProtocol(relay)
	tb.hosts = append(tb.hosts, h)
	tb.protos = append(tb.protos, relay)

	src := tb.add(100, 100, math.Inf(1), true)
	dst := tb.add(500, 100, math.Inf(1), true)
	tb.start()
	tb.engine.Run(5)
	if relay.State() != "aodv" {
		t.Fatalf("state = %s", relay.State())
	}
	src.SubmitData(pkt(1, src.host.ID(), dst.host.ID(), tb.engine.Now()))
	tb.engine.Run(60)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d via the AODV relay, want 1", len(tb.delivered))
	}
	if tb.hosts[0].Asleep() {
		t.Fatal("plain AODV host slept")
	}
}
