// Package gaf implements the GAF baseline (Xu, Heidemann & Estrin,
// MobiCom'01) the paper compares against: Geographic Adaptive Fidelity.
//
// GAF partitions the plane into the same logical grid and treats hosts in
// one cell as routing-equivalent. Each host cycles through three states:
//
//	discovery — transceiver on, exchanging discovery messages to find
//	            the cell's active node;
//	active    — the cell's designated forwarder for a period Ta;
//	sleeping  — transceiver off for a period Ts, then back to discovery.
//
// Unlike ECGRID there is no paging: sleeping hosts wake only when their
// own timers expire. Packets addressed to a sleeping host are simply
// lost, which is why the paper's Model 1 gives GAF ten infinite-energy
// endpoint hosts that never sleep (and do not forward): sources and
// destinations are always reachable, and only the 100 energy-limited
// forwarders run GAF.
//
// Routing is host-by-host AODV, as in the GAF paper's evaluation.
package gaf

import (
	"fmt"
	"math"

	"ecgrid/internal/energy"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// state is the GAF node state machine.
type state int

const (
	stateDiscovery state = iota
	stateActive
	stateSleeping
)

func (s state) String() string {
	switch s {
	case stateDiscovery:
		return "discovery"
	case stateActive:
		return "active"
	case stateSleeping:
		return "sleeping"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Options are GAF's tunables.
type Options struct {
	// Td is the discovery window: a node broadcasts its discovery
	// message at a random point within it and leaves discovery at its
	// end.
	Td float64
	// TaFrac scales the active period: Ta = TaFrac × enat, where enat
	// is the node's expected active lifetime (GAF uses enat/2).
	TaFrac float64
	// TaMax caps the active period so rotation happens at least this
	// often.
	TaMax float64
	// TsMax caps the sleep period; the dwell estimate (GAF-ma) bounds
	// it further.
	TsMax float64
	// RouteTTL and DupTTL mirror the AODV parameters.
	RouteTTL float64
	DupTTL   float64
	// BufferPerDest bounds the origin's pending-packet buffer.
	BufferPerDest int
	// DiscoveryTimeout and DiscoveryRetries govern AODV route requests.
	DiscoveryTimeout float64
	DiscoveryRetries int
}

// DefaultOptions returns the configuration used in the evaluation.
func DefaultOptions() Options {
	return Options{
		Td:               1.0,
		TaFrac:           0.5,
		TaMax:            60,
		TsMax:            60,
		RouteTTL:         30,
		DupTTL:           30,
		BufferPerDest:    32,
		DiscoveryTimeout: 0.5,
		DiscoveryRetries: 2,
	}
}

// Validate reports configuration mistakes.
func (o Options) Validate() error {
	switch {
	case o.Td <= 0:
		return fmt.Errorf("gaf: Td %v must be positive", o.Td)
	case o.TaFrac <= 0 || o.TaFrac > 1:
		return fmt.Errorf("gaf: TaFrac %v must be in (0, 1]", o.TaFrac)
	case o.TaMax <= 0 || o.TsMax <= 0:
		return fmt.Errorf("gaf: TaMax/TsMax (%v, %v) must be positive", o.TaMax, o.TsMax)
	case o.DupTTL <= 0:
		return fmt.Errorf("gaf: DupTTL %v must be positive", o.DupTTL)
	case o.BufferPerDest <= 0:
		return fmt.Errorf("gaf: BufferPerDest %d must be positive", o.BufferPerDest)
	case o.DiscoveryTimeout <= 0 || o.DiscoveryRetries < 0:
		return fmt.Errorf("gaf: invalid discovery parameters (%v, %d)", o.DiscoveryTimeout, o.DiscoveryRetries)
	}
	return nil
}

// Stats counts protocol events on one host.
type Stats struct {
	DiscoveriesSent uint64
	RREQsSent       uint64
	RREPsSent       uint64
	RERRsSent       uint64
	DataForwarded   uint64
	DataDelivered   uint64
	DataDropped     uint64
	SleepsEntered   uint64
	ActivePeriods   uint64
}

// Protocol is one host's GAF + AODV instance.
type Protocol struct {
	host *node.Host
	opt  Options

	// Endpoint marks the paper's Model 1 infinite-energy hosts: they
	// never sleep, never relay data, and never forward floods.
	endpoint bool
	// alwaysOn disables the GAF state machine entirely (plain AODV):
	// the host never sleeps but still relays.
	alwaysOn bool

	st         state
	stateTimer *sim.Timer
	annTimer   *sim.Timer // discovery-message broadcast within Td
	yielded    bool       // heard a higher-ranked grid-mate this round

	table  *routing.AODVTable
	dup    *routing.DupCache
	buffer *routing.Buffer
	disc   map[hostid.ID]*pendingDiscovery
	seqNo  uint32
	bcast  uint32

	// OnDeliver receives packets whose final destination is this host.
	OnDeliver func(pkt *routing.DataPacket)

	stopped bool
	Stats   Stats
}

type pendingDiscovery struct {
	tries int
	timer *sim.Timer
}

// NewAODV creates a plain AODV instance: the same host-by-host routing
// this package runs under GAF, but with the fidelity state machine off —
// the host never sleeps and always relays. It is the always-on baseline
// GRID descends from ("GRID ... is modified from AODV protocol", §3.3)
// and isolates what grid-based routing adds or costs.
func NewAODV(h *node.Host, opt Options) *Protocol {
	p := New(h, opt, false)
	p.alwaysOn = true
	return p
}

// New creates a GAF instance. endpoint marks Model 1 always-on hosts.
func New(h *node.Host, opt Options, endpoint bool) *Protocol {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	p := &Protocol{
		host:     h,
		opt:      opt,
		endpoint: endpoint,
		table:    routing.NewAODVTable(opt.RouteTTL),
		dup:      routing.NewDupCache(opt.DupTTL),
		buffer:   routing.NewBuffer(opt.BufferPerDest),
		disc:     make(map[hostid.ID]*pendingDiscovery),
	}
	p.stateTimer = sim.NewTimer(h.Engine(), p.stateExpired)
	p.annTimer = sim.NewTimer(h.Engine(), p.announce)
	return p
}

// State returns the GAF state name, for tests.
func (p *Protocol) State() string {
	if p.endpoint {
		return "endpoint"
	}
	if p.alwaysOn {
		return "aodv"
	}
	return p.st.String()
}

// enat is the expected node active time: how long the battery would last
// at idle draw.
func (p *Protocol) enat() float64 {
	return p.host.Battery().TimeToEmpty(p.host.Now(), energy.Idle)
}

// enatBucket quantizes expected lifetimes for ranking. Comparisons mix a
// peer's announcement-time snapshot with our current value, which has
// drained a little since — without coarsening, every host would see every
// peer as longer-lived and the whole grid would sleep.
const enatBucket = 10.0

// rank orders grid-mates: active beats discovery, then longer expected
// lifetime (in coarse buckets), then smaller ID. Returns true if
// (aState, aEnat, aID) wins against (bState, bEnat, bID).
func rank(aState state, aEnat float64, aID hostid.ID, bState state, bEnat float64, bID hostid.ID) bool {
	if (aState == stateActive) != (bState == stateActive) {
		return aState == stateActive
	}
	qa, qb := math.Floor(aEnat/enatBucket), math.Floor(bEnat/enatBucket)
	if qa != qb {
		return qa > qb
	}
	return aID < bID
}

// --- node.Protocol ----------------------------------------------------------

// Start enters discovery (forwarders) or permanent activity (endpoints
// and plain-AODV hosts).
func (p *Protocol) Start() {
	if p.endpoint || p.alwaysOn {
		return // always listening; no GAF cycling
	}
	p.enterDiscovery()
}

// Stopped cancels all timers on death.
func (p *Protocol) Stopped() {
	p.stopped = true
	p.stateTimer.Stop()
	p.annTimer.Stop()
	for _, d := range p.disc { //simlint:ordered stops every timer; order-insensitive
		d.timer.Stop()
	}
}

// Woken resumes the cycle after a sleep period.
func (p *Protocol) Woken(cause node.WakeCause) {
	if p.stopped || p.endpoint || p.alwaysOn {
		return
	}
	p.enterDiscovery()
}

// CellChanged restarts discovery in the new cell: grid-equivalence only
// holds within one cell.
func (p *Protocol) CellChanged(old, cur grid.Coord) {
	if p.stopped || p.endpoint || p.alwaysOn {
		return
	}
	if p.st == stateActive {
		// Tell the old cell's neighbors we are gone so routes purge.
		p.broadcastDiscovery(stateSleeping)
	}
	p.enterDiscovery()
}

// Receive dispatches frames.
func (p *Protocol) Receive(f *radio.Frame) {
	if p.stopped {
		return
	}
	switch m := f.Payload.(type) {
	case *routing.Discovery:
		p.handleDiscovery(m)
	case *routing.AODVRREQ:
		p.handleRREQ(m)
	case *routing.AODVRREP:
		p.handleRREP(m, f.Src)
	case *routing.RERR:
		p.handleRERR(m, f.Src)
	case *routing.Data:
		p.handleData(m)
	default:
		panic(fmt.Sprintf("gaf: unknown payload %T", f.Payload))
	}
}

// --- GAF state machine -------------------------------------------------------

func (p *Protocol) enterDiscovery() {
	p.st = stateDiscovery
	p.yielded = false
	// Announce at a random point within the discovery window.
	p.annTimer.Reset(p.host.RNG().Uniform(sim.StreamGAFAnnounce, 0, p.opt.Td))
	p.stateTimer.Reset(p.opt.Td)
}

// announce broadcasts this node's discovery message.
func (p *Protocol) announce() {
	if p.stopped || p.host.Asleep() {
		return
	}
	p.broadcastDiscovery(p.st)
}

func (p *Protocol) broadcastDiscovery(st state) {
	p.Stats.DiscoveriesSent++
	p.host.SendFrame("gaf-disc", hostid.Broadcast,
		routing.DiscoveryByte+radio.MACHeaderBytes, &routing.Discovery{
			ID:    p.host.ID(),
			Grid:  p.host.Cell(),
			State: int(st),
			Enat:  p.enat(),
		})
}

// stateExpired advances the state machine.
func (p *Protocol) stateExpired() {
	if p.stopped || p.host.Asleep() {
		return
	}
	switch p.st {
	case stateDiscovery:
		if p.yielded {
			p.goToSleep()
			return
		}
		p.becomeActive()
	case stateActive:
		// Hand the cell over: re-enter discovery so longer-lived
		// peers can take the duty.
		p.broadcastDiscovery(stateSleeping) // purge routes via us
		p.enterDiscovery()
	}
}

func (p *Protocol) becomeActive() {
	p.st = stateActive
	p.Stats.ActivePeriods++
	ta := p.opt.TaFrac * p.enat()
	if ta > p.opt.TaMax {
		ta = p.opt.TaMax
	}
	if ta < p.opt.Td {
		ta = p.opt.Td
	}
	p.stateTimer.Reset(ta)
	p.broadcastDiscovery(stateActive)
}

func (p *Protocol) goToSleep() {
	if p.endpoint || p.host.Asleep() || p.st == stateSleeping {
		return
	}
	ts := p.opt.TsMax
	// GAF-ma: do not sleep past the expected grid dwell, so movement is
	// noticed.
	if dwell := p.host.EstimateDwell(p.opt.TsMax); dwell < ts {
		ts = dwell
	}
	if ts <= 0 {
		ts = p.opt.Td
	}
	p.st = stateSleeping
	p.stateTimer.Stop()
	p.annTimer.Stop()
	p.Stats.SleepsEntered++
	// Give any queued frame (the step-down announcement) a moment to go
	// on air before the transceiver switches off.
	p.host.Engine().Schedule(sleepGrace, func() {
		if p.stopped || p.st != stateSleeping || p.host.Asleep() {
			return
		}
		wake := sim.NewTimer(p.host.Engine(), func() { p.host.WakeByTimer() })
		wake.Reset(ts)
		p.host.Sleep()
	})
}

// sleepGrace is the delay between the last transmission request and the
// transceiver switching off.
const sleepGrace = 0.01

// handleDiscovery applies the ranking rule to same-cell peers.
func (p *Protocol) handleDiscovery(m *routing.Discovery) {
	if m.State == int(stateSleeping) {
		// A peer is stepping down: purge routes through it.
		for range p.table.RemoveVia(m.ID) {
		}
		return
	}
	if p.endpoint || p.host.Asleep() {
		return
	}
	if m.Grid != p.host.Cell() {
		return
	}
	if p.st == stateSleeping {
		return
	}
	theirs := state(m.State)
	if rank(theirs, m.Enat, m.ID, p.st, p.enat(), p.host.ID()) {
		// They outrank us.
		switch p.st {
		case stateDiscovery:
			p.yielded = true
			if theirs == stateActive {
				// The cell has its active node: sleep immediately.
				p.goToSleep()
			}
		case stateActive:
			// Duplicate active nodes after mobility: the loser steps
			// down.
			p.broadcastDiscovery(stateSleeping)
			p.goToSleep()
		}
	}
}
