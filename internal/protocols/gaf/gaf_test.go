package gaf

import (
	"math"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

type testbed struct {
	engine    *sim.Engine
	rng       *sim.RNG
	channel   *radio.Channel
	bus       *ras.Bus
	partition *grid.Partition
	hosts     []*node.Host
	protos    []*Protocol
	delivered []*routing.DataPacket
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	e := sim.NewEngine()
	rng := sim.NewRNG(5)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	cfg := radio.DefaultConfig()
	return &testbed{
		engine:    e,
		rng:       rng,
		channel:   radio.NewChannel(e, rng, cfg),
		bus:       ras.NewBus(e, part, cfg.Range, ras.DefaultLatency),
		partition: part,
	}
}

func (tb *testbed) add(x, y float64, joules float64, endpoint bool) *Protocol {
	var bat *energy.Battery
	if math.IsInf(joules, 1) {
		bat = energy.NewInfiniteBattery(energy.PaperModel())
	} else {
		bat = energy.NewBattery(energy.PaperModel(), joules)
	}
	h := node.New(node.Config{
		ID: hostid.ID(len(tb.hosts)), Engine: tb.engine, RNG: tb.rng,
		Channel: tb.channel, Bus: tb.bus, Partition: tb.partition,
		Mobility: mobility.Stationary{At: geom.Point{X: x, Y: y}}, Battery: bat,
	})
	p := New(h, DefaultOptions(), endpoint)
	p.OnDeliver = func(pkt *routing.DataPacket) { tb.delivered = append(tb.delivered, pkt) }
	h.SetProtocol(p)
	tb.hosts = append(tb.hosts, h)
	tb.protos = append(tb.protos, p)
	return p
}

func (tb *testbed) start() {
	for _, h := range tb.hosts {
		h.Start()
	}
}

func pkt(seq int, src, dst hostid.ID, at float64) *routing.DataPacket {
	return &routing.DataPacket{Flow: 1, Seq: seq, Src: src, Dst: dst, Bytes: 512, SentAt: at}
}

func TestOneActiveNodePerGrid(t *testing.T) {
	tb := newTestbed(t)
	tb.add(150, 150, 500, false)
	tb.add(160, 160, 500, false)
	tb.add(140, 140, 500, false)
	tb.start()
	tb.engine.Run(10)
	active, sleeping := 0, 0
	for i, p := range tb.protos {
		switch p.State() {
		case "active":
			active++
		case "sleeping":
			if !tb.hosts[i].Asleep() {
				t.Errorf("host %d claims sleeping but is awake", i)
			}
			sleeping++
		}
	}
	if active != 1 {
		t.Fatalf("%d active nodes in one grid, want 1", active)
	}
	if sleeping != 2 {
		t.Fatalf("%d sleeping nodes, want 2", sleeping)
	}
}

func TestEndpointsNeverSleep(t *testing.T) {
	tb := newTestbed(t)
	tb.add(150, 150, 500, false)
	ep := tb.add(160, 160, math.Inf(1), true)
	tb.start()
	tb.engine.Run(60)
	if ep.State() != "endpoint" {
		t.Fatalf("endpoint state = %s", ep.State())
	}
	if tb.hosts[1].Asleep() {
		t.Fatal("endpoint slept")
	}
}

func TestRankPrefersActiveThenLifetimeThenID(t *testing.T) {
	if !rank(stateActive, 10, 5, stateDiscovery, 100, 1) {
		t.Error("active must outrank discovery")
	}
	if !rank(stateDiscovery, 100, 5, stateDiscovery, 10, 1) {
		t.Error("longer lifetime must win")
	}
	if !rank(stateDiscovery, 10, 1, stateDiscovery, 10, 5) {
		t.Error("smaller ID must break ties")
	}
	if rank(stateDiscovery, 10, 5, stateDiscovery, 10, 1) {
		t.Error("rank not antisymmetric")
	}
}

func TestAODVDeliveryAcrossHops(t *testing.T) {
	tb := newTestbed(t)
	// A line of forwarders 200 m apart; endpoints at the ends.
	src := tb.add(0, 500, math.Inf(1), true)
	tb.add(200, 500, 500, false)
	tb.add(400, 500, 500, false)
	tb.add(600, 500, 500, false)
	dst := tb.add(800, 500, math.Inf(1), true)
	tb.start()
	tb.engine.Run(5)
	tb.engine.Schedule(0.01, func() {
		src.SubmitData(pkt(1, src.host.ID(), dst.host.ID(), tb.engine.Now()))
	})
	tb.engine.Run(10)
	if len(tb.delivered) != 1 {
		t.Fatalf("delivered %d packets across 4 hops, want 1", len(tb.delivered))
	}
}

func TestStreamSurvivesActiveRotation(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(0, 500, math.Inf(1), true)
	tb.add(200, 500, 500, false)
	// Two routing-equivalent forwarders in the middle cell: rotation
	// between them must not break the flow for long.
	tb.add(440, 500, 500, false)
	tb.add(460, 500, 500, false)
	dst := tb.add(660, 500, math.Inf(1), true)
	_ = dst
	tb.start()
	tb.engine.Run(5)
	for i := 0; i < 60; i++ {
		seq := i + 1
		tb.engine.At(5+float64(i), func() {
			src.SubmitData(pkt(seq, src.host.ID(), tb.hosts[4].ID(), tb.engine.Now()))
		})
	}
	tb.engine.Run(70)
	if len(tb.delivered) < 50 {
		t.Fatalf("delivered %d/60 packets across rotations", len(tb.delivered))
	}
}

func TestLoopbackDelivery(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(100, 100, 500, false)
	tb.start()
	tb.engine.Run(3)
	p.SubmitData(pkt(1, p.host.ID(), p.host.ID(), tb.engine.Now()))
	if len(tb.delivered) != 1 {
		t.Fatal("loopback packet not delivered")
	}
}

func TestSleepingForwarderSavesEnergy(t *testing.T) {
	tb := newTestbed(t)
	tb.add(150, 150, 500, false)
	tb.add(160, 160, 500, false)
	tb.start()
	tb.engine.Run(50)
	a := tb.hosts[0].Battery().Consumed(50)
	b := tb.hosts[1].Battery().Consumed(50)
	lo, hi := math.Min(a, b), math.Max(a, b)
	if lo >= hi {
		t.Fatalf("no asymmetry between active (%.1f J) and sleeper (%.1f J)", hi, lo)
	}
	if lo > 0.6*hi {
		t.Fatalf("sleeper consumed %.1f J vs active %.1f J: saving too small", lo, hi)
	}
}

func TestDiscoveryFailsGracefully(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 100, math.Inf(1), true)
	tb.add(200, 100, 500, false)
	tb.start()
	tb.engine.Run(5)
	// Destination 99 does not exist: the discovery must fail and drop.
	src.SubmitData(pkt(1, src.host.ID(), hostid.ID(99), tb.engine.Now()))
	tb.engine.Run(15)
	if len(tb.delivered) != 0 {
		t.Fatal("packet to nonexistent destination delivered")
	}
	if src.Stats.DataDropped == 0 {
		t.Fatal("failed discovery did not record a drop")
	}
}

func TestStateString(t *testing.T) {
	if stateDiscovery.String() != "discovery" || stateActive.String() != "active" ||
		stateSleeping.String() != "sleeping" {
		t.Error("state names wrong")
	}
	if state(9).String() != "state(9)" {
		t.Error("unknown state string wrong")
	}
}

// nodeNew builds a bare host for protocols constructed outside tb.add.
func nodeNew(tb *testbed, x, y float64) *node.Host {
	return node.New(node.Config{
		ID: hostid.ID(len(tb.hosts) + 50), Engine: tb.engine, RNG: tb.rng,
		Channel: tb.channel, Bus: tb.bus, Partition: tb.partition,
		Mobility: mobility.Stationary{At: geom.Point{X: x, Y: y}},
		Battery:  energy.NewBattery(energy.PaperModel(), 500),
	})
}
