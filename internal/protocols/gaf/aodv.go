package gaf

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// This file is the host-by-host AODV layer GAF routes with. Awake
// forwarders relay floods and data; endpoints originate and terminate
// traffic but never relay (the paper's Model 1: "these hosts do not ...
// forward traffic").

// SubmitData accepts an application packet.
func (p *Protocol) SubmitData(pkt *routing.DataPacket) {
	if p.stopped {
		return
	}
	if pkt.Dst == p.host.ID() {
		p.deliver(pkt)
		return
	}
	if p.host.Asleep() {
		// A sleeping source wakes itself to transmit; under GAF this
		// restarts discovery, after which the send proceeds.
		p.buffer.Push(pkt.Dst, pkt)
		p.host.WakeByTimer()
		p.startDiscovery(pkt.Dst)
		return
	}
	now := p.host.Now()
	if e, ok := p.table.Lookup(pkt.Dst, now); ok {
		p.forwardData(e.NextHop, pkt)
		return
	}
	p.buffer.Push(pkt.Dst, pkt)
	p.startDiscovery(pkt.Dst)
}

func (p *Protocol) deliver(pkt *routing.DataPacket) {
	p.Stats.DataDelivered++
	if p.OnDeliver != nil {
		p.OnDeliver(pkt)
	}
}

func (p *Protocol) forwardData(nextHop hostid.ID, pkt *routing.DataPacket) {
	p.Stats.DataForwarded++
	p.host.SendFrame("data", nextHop,
		pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, &routing.Data{Packet: pkt})
}

// startDiscovery floods an AODV RREQ for dst.
func (p *Protocol) startDiscovery(dst hostid.ID) {
	if _, busy := p.disc[dst]; busy {
		return
	}
	d := &pendingDiscovery{}
	d.timer = sim.NewTimer(p.host.Engine(), func() { p.discoveryTimeout(dst, d) })
	p.disc[dst] = d
	p.sendRREQ(dst, d)
}

func (p *Protocol) sendRREQ(dst hostid.ID, d *pendingDiscovery) {
	if p.host.Asleep() {
		return
	}
	p.seqNo++
	p.bcast++
	req := &routing.AODVRREQ{
		Src:     p.host.ID(),
		SrcSeq:  p.seqNo,
		Dst:     dst,
		BcastID: p.bcast,
		PrevHop: p.host.ID(),
	}
	if e, ok := p.table.Lookup(dst, p.host.Now()); ok {
		req.DstSeq = e.Seq
	}
	p.dup.Seen(req.Src, req.BcastID, p.host.Now())
	p.Stats.RREQsSent++
	p.host.SendFrame("rreq", hostid.Broadcast, routing.RREQBytes+radio.MACHeaderBytes, req)
	d.timer.Reset(p.opt.DiscoveryTimeout)
}

func (p *Protocol) discoveryTimeout(dst hostid.ID, d *pendingDiscovery) {
	if p.stopped {
		return
	}
	if _, ok := p.table.Lookup(dst, p.host.Now()); ok {
		p.clearDiscovery(dst)
		p.flush(dst)
		return
	}
	d.tries++
	if d.tries > p.opt.DiscoveryRetries {
		dropped := p.buffer.PopAll(dst)
		p.Stats.DataDropped += uint64(len(dropped))
		p.clearDiscovery(dst)
		return
	}
	p.sendRREQ(dst, d)
}

func (p *Protocol) clearDiscovery(dst hostid.ID) {
	if d, ok := p.disc[dst]; ok {
		d.timer.Stop()
		delete(p.disc, dst)
	}
}

func (p *Protocol) flush(dst hostid.ID) {
	now := p.host.Now()
	e, ok := p.table.Lookup(dst, now)
	if !ok {
		return
	}
	for _, pkt := range p.buffer.PopAll(dst) {
		p.forwardData(e.NextHop, pkt)
	}
}

// handleRREQ relays or answers a flood.
func (p *Protocol) handleRREQ(m *routing.AODVRREQ) {
	if p.host.Asleep() {
		return
	}
	now := p.host.Now()
	if p.dup.Seen(m.Src, m.BcastID, now) {
		return
	}
	// Reverse route to the requester.
	p.table.Update(routing.AODVEntry{
		Dst: m.Src, NextHop: m.PrevHop, Seq: m.SrcSeq, Hops: m.Hops,
	}, now)

	if m.Dst == p.host.ID() {
		p.seqNo++
		p.sendRREP(&routing.AODVRREP{
			Src: m.Src, Dst: m.Dst, DstSeq: p.seqNo, Hops: 0, To: m.PrevHop,
		})
		return
	}
	// Endpoints do not relay floods: routes must avoid them.
	if p.endpoint {
		return
	}
	// Only the cell's active node relays, keeping fidelity while peers
	// sleep. Discovery-state nodes relay too (no active node may exist
	// yet).
	fwd := *m
	fwd.PrevHop = p.host.ID()
	fwd.Hops = m.Hops + 1
	p.Stats.RREQsSent++
	p.host.SendFrame("rreq", hostid.Broadcast, routing.RREQBytes+radio.MACHeaderBytes, &fwd)
}

func (p *Protocol) sendRREP(rep *routing.AODVRREP) {
	p.Stats.RREPsSent++
	p.host.SendFrame("rrep", rep.To, routing.RREPBytes+radio.MACHeaderBytes, rep)
}

// handleRREP installs the forward route — next hop is whoever
// transmitted this copy, exactly as AODV uses the sender MAC address —
// and relays the reply toward the origin along the reverse route.
func (p *Protocol) handleRREP(m *routing.AODVRREP, from hostid.ID) {
	if p.host.Asleep() || m.To != p.host.ID() {
		return
	}
	now := p.host.Now()
	p.table.Update(routing.AODVEntry{
		Dst: m.Dst, NextHop: from, Seq: m.DstSeq, Hops: m.Hops + 1,
	}, now)
	if m.Src == p.host.ID() {
		// Discovery complete at the origin.
		p.clearDiscovery(m.Dst)
		p.flush(m.Dst)
		return
	}
	rev, ok := p.table.Lookup(m.Src, now)
	if !ok {
		return
	}
	fwd := *m
	fwd.Hops = m.Hops + 1
	fwd.To = rev.NextHop
	p.sendRREP(&fwd)
}

// TxFailed is the link-layer retry-exhausted indication: the next hop is
// gone. Purge routes through it and re-route the packet (AODV-style
// link-layer feedback).
func (p *Protocol) TxFailed(f *radio.Frame) {
	if p.stopped || p.host.Asleep() {
		return
	}
	m, ok := f.Payload.(*routing.Data)
	if !ok {
		return
	}
	p.table.RemoveVia(f.Dst)
	pkt := m.Packet
	if p.host.Now()-pkt.SentAt > 10 {
		p.Stats.DataDropped++
		return
	}
	if pkt.Src == p.host.ID() {
		// Our own packet: buffer and re-discover.
		p.buffer.Push(pkt.Dst, pkt)
		p.startDiscovery(pkt.Dst)
		return
	}
	// Transit packet: try an alternate route, else report back.
	if e, ok := p.table.Lookup(pkt.Dst, p.host.Now()); ok {
		p.forwardData(e.NextHop, pkt)
		return
	}
	p.Stats.DataDropped++
	if rev, ok := p.table.Lookup(pkt.Src, p.host.Now()); ok {
		p.Stats.RERRsSent++
		p.host.SendFrame("rerr", rev.NextHop,
			routing.RERRBytes+radio.MACHeaderBytes, &routing.RERR{Dst: pkt.Dst})
	}
}

// handleRERR purges a broken route and forwards the report toward the
// source.
func (p *Protocol) handleRERR(m *routing.RERR, from hostid.ID) {
	if p.host.Asleep() {
		return
	}
	p.table.Remove(m.Dst)
	_ = from
}

// handleData delivers or relays a data frame.
func (p *Protocol) handleData(m *routing.Data) {
	if p.host.Asleep() {
		return
	}
	pkt := m.Packet
	if pkt.Dst == p.host.ID() {
		p.deliver(pkt)
		return
	}
	if p.endpoint {
		return // endpoints never relay
	}
	now := p.host.Now()
	if e, ok := p.table.Lookup(pkt.Dst, now); ok {
		p.table.Touch(pkt.Dst, now)
		p.forwardData(e.NextHop, pkt)
		return
	}
	// Broken route: drop and tell the source.
	p.Stats.DataDropped++
	if rev, ok := p.table.Lookup(pkt.Src, now); ok {
		p.Stats.RERRsSent++
		p.host.SendFrame("rerr", rev.NextHop,
			routing.RERRBytes+radio.MACHeaderBytes, &routing.RERR{Dst: pkt.Dst})
	}
}
