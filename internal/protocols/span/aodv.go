package span

import (
	"ecgrid/internal/hostid"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// AODV over the coordinator backbone: only coordinators relay floods and
// transit data; any awake host may originate, terminate, or answer for
// itself. A final-hop coordinator holding traffic for a sleeping
// destination buffers it until the destination's next wake beacon — the
// PSM behaviour the paper contrasts with ECGRID's instant RAS paging.

// SubmitData accepts an application packet.
func (p *Protocol) SubmitData(pkt *routing.DataPacket) {
	if p.stopped {
		return
	}
	if pkt.Dst == p.host.ID() {
		p.deliver(pkt)
		return
	}
	if p.host.Asleep() {
		// Wake out of the duty cycle to transmit.
		p.buffer.Push(pkt.Dst, pkt)
		p.host.WakeByTimer()
		p.startDiscovery(pkt.Dst)
		return
	}
	if e, ok := p.table.Lookup(pkt.Dst, p.host.Now()); ok {
		p.forwardData(e.NextHop, pkt)
		return
	}
	p.buffer.Push(pkt.Dst, pkt)
	p.startDiscovery(pkt.Dst)
}

func (p *Protocol) deliver(pkt *routing.DataPacket) {
	p.Stats.DataDelivered++
	if p.OnDeliver != nil {
		p.OnDeliver(pkt)
	}
}

func (p *Protocol) forwardData(nextHop hostid.ID, pkt *routing.DataPacket) {
	// Sleeping next hop or destination: hold until its wake beacon.
	if n, ok := p.neighbors[nextHop]; ok && !n.coordinator && nextHop == pkt.Dst {
		// Final hop to a duty-cycled host: it may be asleep right now;
		// buffering until its beacon-window HELLO is Span's PSM
		// behaviour. If it is awake, the flush happens within one
		// beacon period anyway.
		p.buffer.Push(pkt.Dst, pkt)
		return
	}
	p.Stats.DataForwarded++
	p.host.SendFrame("data", nextHop,
		pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, &routing.Data{Packet: pkt})
}

// flushTo sends everything buffered for a host that just proved awake.
func (p *Protocol) flushTo(dst hostid.ID) {
	if p.host.Asleep() {
		return
	}
	pkts := p.buffer.PopAll(dst)
	for _, pkt := range pkts {
		p.Stats.DataForwarded++
		p.host.SendFrame("data", dst,
			pkt.Bytes+routing.DataHeader+radio.MACHeaderBytes, &routing.Data{Packet: pkt})
	}
}

func (p *Protocol) startDiscovery(dst hostid.ID) {
	if _, busy := p.disc[dst]; busy {
		return
	}
	d := &pendingDiscovery{}
	d.timer = sim.NewTimer(p.host.Engine(), func() { p.discoveryTimeout(dst, d) })
	p.disc[dst] = d
	p.sendRREQ(dst, d)
}

func (p *Protocol) sendRREQ(dst hostid.ID, d *pendingDiscovery) {
	if p.host.Asleep() {
		return
	}
	p.seqNo++
	p.bcast++
	req := &routing.AODVRREQ{
		Src: p.host.ID(), SrcSeq: p.seqNo, Dst: dst,
		BcastID: p.bcast, PrevHop: p.host.ID(),
	}
	p.dup.Seen(req.Src, req.BcastID, p.host.Now())
	p.Stats.RREQsSent++
	p.host.SendFrame("rreq", hostid.Broadcast, routing.RREQBytes+radio.MACHeaderBytes, req)
	d.timer.Reset(p.opt.DiscoveryTimeout)
}

func (p *Protocol) discoveryTimeout(dst hostid.ID, d *pendingDiscovery) {
	if p.stopped {
		return
	}
	if p.host.Asleep() {
		// Mid-duty-cycle: try again in the next awake window.
		d.timer.Reset(p.opt.BeaconPeriod)
		return
	}
	if _, ok := p.table.Lookup(dst, p.host.Now()); ok {
		p.clearDiscovery(dst)
		p.flushRouted(dst)
		return
	}
	d.tries++
	if d.tries > p.opt.DiscoveryRetries {
		dropped := p.buffer.PopAll(dst)
		p.Stats.DataDropped += uint64(len(dropped))
		p.clearDiscovery(dst)
		return
	}
	p.sendRREQ(dst, d)
}

func (p *Protocol) clearDiscovery(dst hostid.ID) {
	if d, ok := p.disc[dst]; ok {
		d.timer.Stop()
		delete(p.disc, dst)
	}
}

func (p *Protocol) flushRouted(dst hostid.ID) {
	if p.host.Asleep() {
		return
	}
	e, ok := p.table.Lookup(dst, p.host.Now())
	if !ok {
		return
	}
	for _, pkt := range p.buffer.PopAll(dst) {
		p.forwardData(e.NextHop, pkt)
	}
}

func (p *Protocol) handleRREQ(m *routing.AODVRREQ) {
	if p.host.Asleep() {
		return
	}
	now := p.host.Now()
	if p.dup.Seen(m.Src, m.BcastID, now) {
		return
	}
	p.table.Update(routing.AODVEntry{
		Dst: m.Src, NextHop: m.PrevHop, Seq: m.SrcSeq, Hops: m.Hops,
	}, now)

	if m.Dst == p.host.ID() {
		p.seqNo++
		p.sendRREP(&routing.AODVRREP{Src: m.Src, Dst: m.Dst, DstSeq: p.seqNo, To: m.PrevHop})
		return
	}
	// A coordinator answers for a duty-cycled neighbor that may be
	// asleep: it knows the neighbor from its HELLOs and will buffer the
	// traffic until the neighbor's wake beacon.
	if p.coordinator {
		if n, ok := p.neighbors[m.Dst]; ok && now-n.seen <= p.opt.NeighborTTL {
			p.seqNo++
			p.Stats.RREPsSent++
			p.host.SendFrame("rrep", m.PrevHop,
				routing.RREPBytes+radio.MACHeaderBytes, &routing.AODVRREP{Src: m.Src, Dst: m.Dst, DstSeq: p.seqNo, Hops: 1, To: m.PrevHop})
			// Our own next hop for the destination is the destination
			// itself.
			p.table.Update(routing.AODVEntry{Dst: m.Dst, NextHop: m.Dst, Seq: p.seqNo, Hops: 1}, now)
			return
		}
	}
	// Only the backbone relays floods.
	if !p.coordinator {
		return
	}
	fwd := *m
	fwd.PrevHop = p.host.ID()
	fwd.Hops = m.Hops + 1
	p.Stats.RREQsSent++
	p.host.SendFrame("rreq", hostid.Broadcast, routing.RREQBytes+radio.MACHeaderBytes, &fwd)
}

func (p *Protocol) sendRREP(rep *routing.AODVRREP) {
	p.Stats.RREPsSent++
	p.host.SendFrame("rrep", rep.To, routing.RREPBytes+radio.MACHeaderBytes, rep)
}

func (p *Protocol) handleRREP(m *routing.AODVRREP, from hostid.ID) {
	if p.host.Asleep() || m.To != p.host.ID() {
		return
	}
	now := p.host.Now()
	p.table.Update(routing.AODVEntry{
		Dst: m.Dst, NextHop: from, Seq: m.DstSeq, Hops: m.Hops + 1,
	}, now)
	if m.Src == p.host.ID() {
		p.clearDiscovery(m.Dst)
		p.flushRouted(m.Dst)
		return
	}
	rev, ok := p.table.Lookup(m.Src, now)
	if !ok {
		return
	}
	fwd := *m
	fwd.Hops = m.Hops + 1
	fwd.To = rev.NextHop
	p.sendRREP(&fwd)
}

func (p *Protocol) handleData(m *routing.Data) {
	if p.host.Asleep() {
		return
	}
	pkt := m.Packet
	if pkt.Dst == p.host.ID() {
		p.deliver(pkt)
		return
	}
	now := p.host.Now()
	if e, ok := p.table.Lookup(pkt.Dst, now); ok {
		p.table.Touch(pkt.Dst, now)
		p.forwardData(e.NextHop, pkt)
		return
	}
	p.Stats.DataDropped++
	if rev, ok := p.table.Lookup(pkt.Src, now); ok {
		p.host.SendFrame("rerr", rev.NextHop,
			routing.RERRBytes+radio.MACHeaderBytes, &routing.RERR{Dst: pkt.Dst})
	}
}

// TxFailed purges routes through a dead next hop and re-routes the
// packet, as in the other protocols.
func (p *Protocol) TxFailed(f *radio.Frame) {
	if p.stopped || p.host.Asleep() {
		return
	}
	m, ok := f.Payload.(*routing.Data)
	if !ok {
		return
	}
	p.table.RemoveVia(f.Dst)
	pkt := m.Packet
	if p.host.Now()-pkt.SentAt > 10 {
		p.Stats.DataDropped++
		return
	}
	if e, ok := p.table.Lookup(pkt.Dst, p.host.Now()); ok {
		p.forwardData(e.NextHop, pkt)
		return
	}
	if pkt.Src == p.host.ID() {
		p.buffer.Push(pkt.Dst, pkt)
		p.startDiscovery(pkt.Dst)
		return
	}
	// Final-hop loss to a duty-cycled destination: hold for its beacon.
	if pkt.Dst == f.Dst {
		p.buffer.Push(pkt.Dst, pkt)
		return
	}
	p.Stats.DataDropped++
}
