package span

import (
	"math"
	"testing"

	"ecgrid/internal/energy"
	"ecgrid/internal/geom"
	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/mobility"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/ras"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

type testbed struct {
	engine    *sim.Engine
	rng       *sim.RNG
	channel   *radio.Channel
	bus       *ras.Bus
	partition *grid.Partition
	hosts     []*node.Host
	protos    []*Protocol
	delivered []*routing.DataPacket
}

func newTestbed(t *testing.T) *testbed {
	t.Helper()
	e := sim.NewEngine()
	rng := sim.NewRNG(3)
	area := geom.NewRect(geom.Point{}, geom.Point{X: 1000, Y: 1000})
	part := grid.NewPartition(area, 100)
	cfg := radio.DefaultConfig()
	return &testbed{
		engine:    e,
		rng:       rng,
		channel:   radio.NewChannel(e, rng, cfg),
		bus:       ras.NewBus(e, part, cfg.Range, ras.DefaultLatency),
		partition: part,
	}
}

func (tb *testbed) add(x, y float64) *Protocol {
	h := node.New(node.Config{
		ID: hostid.ID(len(tb.hosts)), Engine: tb.engine, RNG: tb.rng,
		Channel: tb.channel, Bus: tb.bus, Partition: tb.partition,
		Mobility: mobility.Stationary{At: geom.Point{X: x, Y: y}},
		Battery:  energy.NewBattery(energy.PaperModel(), 500),
	})
	p := New(h, DefaultOptions())
	p.OnDeliver = func(pkt *routing.DataPacket) { tb.delivered = append(tb.delivered, pkt) }
	h.SetProtocol(p)
	tb.hosts = append(tb.hosts, h)
	tb.protos = append(tb.protos, p)
	return p
}

func (tb *testbed) start() {
	for _, h := range tb.hosts {
		h.Start()
	}
}

func pkt(seq int, src, dst hostid.ID, at float64) *routing.DataPacket {
	return &routing.DataPacket{Flow: 1, Seq: seq, Src: src, Dst: dst, Bytes: 512, SentAt: at}
}

func TestBridgeHostBecomesCoordinator(t *testing.T) {
	tb := newTestbed(t)
	// A classic bridge: a and c are 400 m apart (out of range); b sits
	// between them. b's eligibility rule must fire.
	tb.add(100, 500)
	b := tb.add(300, 500)
	tb.add(500, 500)
	tb.start()
	tb.engine.Run(10)
	if !b.Coordinator() {
		t.Fatalf("bridge host not coordinator; announces=%d", b.Stats.CoordAnnounces)
	}
	if tb.hosts[1].Asleep() {
		t.Fatal("coordinator asleep")
	}
}

func TestCliqueNeedsNoCoordinator(t *testing.T) {
	tb := newTestbed(t)
	// Three mutually-in-range hosts: no pair is uncovered, so nobody
	// should serve (and everyone duty-cycles).
	tb.add(100, 100)
	tb.add(150, 100)
	tb.add(125, 140)
	tb.start()
	tb.engine.Run(20)
	for i, p := range tb.protos {
		if p.Coordinator() {
			t.Fatalf("host %d is coordinator in a clique", i)
		}
	}
	// And the duty cycle actually sleeps them part-time.
	slept := tb.protos[0].Stats.SleepsEntered + tb.protos[1].Stats.SleepsEntered + tb.protos[2].Stats.SleepsEntered
	if slept == 0 {
		t.Fatal("clique hosts never duty-cycled")
	}
}

func TestNonCoordinatorsDutyCycle(t *testing.T) {
	tb := newTestbed(t)
	tb.add(100, 500)
	tb.add(300, 500)
	tb.add(500, 500)
	tb.start()
	tb.engine.Run(60)
	// Energy check: a duty-cycled host must consume clearly less than
	// always-on idle but clearly more than pure sleep.
	idle := 0.863 * 60
	sleep := 0.163 * 60
	for i, p := range tb.protos {
		if p.Coordinator() {
			continue
		}
		c := tb.hosts[i].Battery().Consumed(60)
		if c >= idle*0.95 {
			t.Errorf("host %d consumed %.1f J, like always-on (%.1f)", i, c, idle)
		}
		if c <= sleep*1.05 {
			t.Errorf("host %d consumed %.1f J, like pure sleep (%.1f)", i, c, sleep)
		}
	}
}

func TestDeliveryAcrossBackbone(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 500)
	tb.add(300, 500) // bridge
	dst := tb.add(500, 500)
	tb.start()
	tb.engine.Run(10)
	for i := 0; i < 20; i++ {
		seq := i + 1
		tb.engine.At(10+float64(i), func() {
			src.SubmitData(pkt(seq, src.host.ID(), dst.host.ID(), tb.engine.Now()))
		})
	}
	tb.engine.Run(40)
	if len(tb.delivered) < 15 {
		t.Fatalf("delivered %d/20 across the backbone", len(tb.delivered))
	}
}

func TestBufferedDeliveryToSleepingDestination(t *testing.T) {
	tb := newTestbed(t)
	src := tb.add(100, 500)
	coord := tb.add(300, 500)
	dst := tb.add(500, 500)
	tb.start()
	tb.engine.Run(10)
	if !coord.Coordinator() {
		t.Skip("topology did not elect the bridge (unexpected)")
	}
	// One packet; even if dst is asleep when it arrives, the per-beacon
	// wake must deliver it within roughly one beacon period.
	sendAt := 0.0
	var deliveredAt float64 = -1
	src.OnDeliver = nil
	dst.OnDeliver = func(p *routing.DataPacket) { deliveredAt = tb.engine.Now() }
	tb.engine.Schedule(0.35, func() { // mid-cycle: dst likely asleep
		sendAt = tb.engine.Now()
		src.SubmitData(pkt(1, src.host.ID(), dst.host.ID(), sendAt))
	})
	tb.engine.Run(20)
	if deliveredAt < 0 {
		t.Fatal("packet never delivered")
	}
	if wait := deliveredAt - sendAt; wait > 3*DefaultOptions().BeaconPeriod {
		t.Fatalf("waited %.2f s, more than ~3 beacon periods", wait)
	}
}

func TestWithdrawWhenCovered(t *testing.T) {
	tb := newTestbed(t)
	// Bridge scenario; then the far host "moves away" (dies), making
	// the coordinator redundant: it must withdraw and resume sleeping.
	tb.add(100, 500)
	b := tb.add(300, 500)
	far := tb.add(500, 500)
	tb.start()
	tb.engine.Run(10)
	if !b.Coordinator() {
		t.Fatal("setup: no coordinator")
	}
	// Remove the far host: b's remaining neighborhood is a clique.
	tb.engine.Schedule(0.1, func() { tb.channel.Detach(far.host.ID()) })
	far.Stopped()
	tb.engine.Run(10 + DefaultOptions().NeighborTTL + DefaultOptions().WithdrawGrace + 5)
	if b.Coordinator() {
		t.Fatal("redundant coordinator never withdrew")
	}
	if b.Stats.Withdrawals == 0 {
		t.Fatal("no withdrawal recorded")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	mutations := map[string]func(*Options){
		"period":       func(o *Options) { o.BeaconPeriod = 0 },
		"awake frac":   func(o *Options) { o.AwakeFrac = 1 },
		"neighbor ttl": func(o *Options) { o.NeighborTTL = 0.5 },
		"buffer":       func(o *Options) { o.BufferPerDest = 0 },
		"grace":        func(o *Options) { o.WithdrawGrace = -1 },
	}
	for name, mutate := range mutations {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestHelloBytesGrowWithNeighbors(t *testing.T) {
	if helloBytes(0) >= helloBytes(10) {
		t.Fatal("hello size does not grow with the neighbor list")
	}
}

func TestCellChangedIsNoOp(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(100, 100)
	tb.start()
	tb.engine.Run(2)
	p.CellChanged(grid.Coord{X: 1, Y: 1}, grid.Coord{X: 2, Y: 1}) // must not panic
}

func TestStoppedLifecycle(t *testing.T) {
	tb := newTestbed(t)
	p := tb.add(100, 100)
	tb.start()
	tb.engine.Run(2)
	p.Stopped()
	p.SubmitData(pkt(1, p.host.ID(), 9, tb.engine.Now()))
	p.Woken(0)
	tb.engine.Run(20)
}

func TestDutyCycleMath(t *testing.T) {
	// Sanity on the energy arithmetic the package doc claims: a 25%
	// duty cycle costs 0.25·idle + 0.75·sleep.
	o := DefaultOptions()
	want := o.AwakeFrac*0.863 + (1-o.AwakeFrac)*0.163
	if math.Abs(want-0.338) > 0.01 {
		t.Fatalf("duty-cycle draw %v W, want ≈0.338", want)
	}
}
