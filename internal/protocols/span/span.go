// Package span implements a faithful-in-spirit version of Span (Chen,
// Jamieson, Balakrishnan, Morris; MobiCom'01), the third protocol the
// paper positions ECGRID against in §1.
//
// Span elects a connected backbone of always-on coordinators using only
// topology knowledge (no GPS): a host volunteers as coordinator when two
// of its neighbors cannot reach each other directly or through an
// existing coordinator, after a randomized backoff that favours
// high-energy, high-utility hosts. Every other host runs an 802.11
// PSM-style duty cycle — awake for a beacon window each period, asleep
// the rest — because, unlike ECGRID, Span has no remote wake hardware:
// traffic for a sleeping host waits for its next scheduled window.
//
// The paper's §1 makes two comparative claims this package lets the
// repository test:
//
//   - ECGRID needs no periodic wakeups while "Span non-coordinators ...
//     wake up periodically" (the duty cycle bounds Span's saving), and
//   - "Span (not location-aware) does not benefit from increasing host
//     density": the coordinator backbone scales with coverage, not with
//     density, and every non-coordinator still pays the duty cycle.
//
// Routing is host-by-host AODV restricted to the coordinator backbone,
// with final-hop buffering for sleeping destinations flushed on their
// periodic wake beacons.
package span

import (
	"fmt"
	"slices"

	"ecgrid/internal/grid"
	"ecgrid/internal/hostid"
	"ecgrid/internal/node"
	"ecgrid/internal/radio"
	"ecgrid/internal/routing"
	"ecgrid/internal/sim"
)

// Options are Span's tunables.
type Options struct {
	// HelloPeriod is the interval between topology announcements.
	HelloPeriod float64
	// BeaconPeriod and AwakeFrac define the PSM duty cycle of
	// non-coordinators: awake AwakeFrac of every period.
	BeaconPeriod float64
	AwakeFrac    float64
	// CheckPeriod is how often the eligibility/withdrawal rules run.
	CheckPeriod float64
	// WithdrawGrace delays withdrawal so the backbone does not flap.
	WithdrawGrace float64
	// NeighborTTL expires neighbors that stopped announcing. Must
	// comfortably exceed BeaconPeriod: sleeping neighbors announce only
	// once per cycle.
	NeighborTTL float64
	// AODV parameters, as in the gaf package.
	RouteTTL         float64
	DupTTL           float64
	BufferPerDest    int
	DiscoveryTimeout float64
	DiscoveryRetries int
}

// DefaultOptions returns the configuration used by the extension
// experiments.
func DefaultOptions() Options {
	return Options{
		HelloPeriod:      1.0,
		BeaconPeriod:     1.0,
		AwakeFrac:        0.25,
		CheckPeriod:      1.0,
		WithdrawGrace:    4.0,
		NeighborTTL:      4.0,
		RouteTTL:         30,
		DupTTL:           30,
		BufferPerDest:    32,
		DiscoveryTimeout: 0.6,
		DiscoveryRetries: 3,
	}
}

// Validate reports configuration mistakes.
func (o Options) Validate() error {
	switch {
	case o.HelloPeriod <= 0 || o.BeaconPeriod <= 0 || o.CheckPeriod <= 0:
		return fmt.Errorf("span: periods must be positive")
	case o.AwakeFrac <= 0 || o.AwakeFrac >= 1:
		return fmt.Errorf("span: AwakeFrac %v must be in (0, 1)", o.AwakeFrac)
	case o.NeighborTTL <= o.BeaconPeriod:
		return fmt.Errorf("span: NeighborTTL %v must exceed BeaconPeriod %v", o.NeighborTTL, o.BeaconPeriod)
	case o.BufferPerDest <= 0 || o.DupTTL <= 0 || o.DiscoveryTimeout <= 0 || o.DiscoveryRetries < 0:
		return fmt.Errorf("span: invalid AODV parameters")
	case o.WithdrawGrace < 0:
		return fmt.Errorf("span: negative WithdrawGrace")
	}
	return nil
}

// Stats counts protocol events on one host.
type Stats struct {
	HellosSent     uint64
	CoordAnnounces uint64
	Withdrawals    uint64
	RREQsSent      uint64
	RREPsSent      uint64
	DataForwarded  uint64
	DataDelivered  uint64
	DataDropped    uint64
	SleepsEntered  uint64
}

// neighborInfo is what a host knows about a neighbor from its HELLOs.
type neighborInfo struct {
	coordinator bool
	seen        float64
	neighbors   map[hostid.ID]bool // the neighbor's own neighbor set
}

// Hello is Span's topology announcement.
type Hello struct {
	ID          hostid.ID
	Coordinator bool
	Rbrc        float64
	Neighbors   []hostid.ID
}

// helloBytes sizes the announcement: base fields plus 4 bytes per listed
// neighbor.
func helloBytes(neighbors int) int { return 16 + 4*neighbors }

// Protocol is one host's Span instance.
type Protocol struct {
	host *node.Host
	opt  Options

	coordinator   bool
	coordSince    float64
	withdrawSince float64 // when withdrawal first looked safe; 0 = not pending

	neighbors map[hostid.ID]*neighborInfo

	helloTicker *sim.Ticker
	checkTicker *sim.Ticker
	cycleTimer  *sim.Timer // PSM duty cycle
	pendingAnn  sim.Handle // randomized coordinator announcement backoff

	table  *routing.AODVTable
	dup    *routing.DupCache
	buffer *routing.Buffer
	disc   map[hostid.ID]*pendingDiscovery
	seqNo  uint32
	bcast  uint32

	// OnDeliver receives packets whose final destination is this host.
	OnDeliver func(pkt *routing.DataPacket)

	stopped bool
	Stats   Stats
}

type pendingDiscovery struct {
	tries int
	timer *sim.Timer
}

// New creates a Span instance for host h.
func New(h *node.Host, opt Options) *Protocol {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	p := &Protocol{
		host:      h,
		opt:       opt,
		neighbors: make(map[hostid.ID]*neighborInfo),
		table:     routing.NewAODVTable(opt.RouteTTL),
		dup:       routing.NewDupCache(opt.DupTTL),
		buffer:    routing.NewBuffer(opt.BufferPerDest),
		disc:      make(map[hostid.ID]*pendingDiscovery),
	}
	p.cycleTimer = sim.NewTimer(h.Engine(), p.cycleSleep)
	return p
}

// Coordinator reports whether the host currently serves on the backbone.
func (p *Protocol) Coordinator() bool { return p.coordinator }

// --- node.Protocol -----------------------------------------------------------

// Start launches the announcement, eligibility, and duty-cycle machinery.
func (p *Protocol) Start() {
	jitter := p.host.RNG().Uniform(sim.StreamSpanPhase, 0, p.opt.HelloPeriod/2)
	p.helloTicker = sim.NewTicker(p.host.Engine(), p.opt.HelloPeriod, jitter, p.helloTick)
	p.checkTicker = sim.NewTicker(p.host.Engine(), p.opt.CheckPeriod, jitter/2, p.checkTick)
	p.sendHello()
	// Give the first topology exchange a couple of periods before the
	// duty cycle starts putting hosts to sleep.
	p.cycleTimer.Reset(2*p.opt.HelloPeriod + jitter)
}

// Stopped cancels everything on battery death.
func (p *Protocol) Stopped() {
	p.stopped = true
	if p.helloTicker != nil {
		p.helloTicker.Stop()
	}
	if p.checkTicker != nil {
		p.checkTicker.Stop()
	}
	p.cycleTimer.Stop()
	p.host.Engine().Cancel(p.pendingAnn)
	p.pendingAnn = sim.Handle{}
	for _, d := range p.disc { //simlint:ordered stops every timer; order-insensitive
		d.timer.Stop()
	}
}

// Woken resumes the awake part of the duty cycle.
func (p *Protocol) Woken(cause node.WakeCause) {
	if p.stopped {
		return
	}
	// Announce presence so forwarders flush buffered traffic, then stay
	// awake for the window.
	p.sendHello()
	p.cycleTimer.Reset(p.opt.AwakeFrac * p.opt.BeaconPeriod)
}

// CellChanged is a no-op: Span is not location-aware.
func (p *Protocol) CellChanged(old, cur grid.Coord) {}

// Receive dispatches frames.
func (p *Protocol) Receive(f *radio.Frame) {
	if p.stopped {
		return
	}
	switch m := f.Payload.(type) {
	case *Hello:
		p.handleHello(m)
	case *routing.AODVRREQ:
		p.handleRREQ(m)
	case *routing.AODVRREP:
		p.handleRREP(m, f.Src)
	case *routing.RERR:
		p.table.Remove(m.Dst)
	case *routing.Data:
		p.handleData(m)
	default:
		panic(fmt.Sprintf("span: unknown payload %T", f.Payload))
	}
}

// --- duty cycle ----------------------------------------------------------------

// cycleSleep ends an awake window: non-coordinators sleep until the next
// beacon.
func (p *Protocol) cycleSleep() {
	if p.stopped || p.coordinator || p.host.Asleep() {
		// Coordinators stay awake; re-arm the cycle so a later
		// withdrawal resumes sleeping.
		p.cycleTimer.Reset(p.opt.BeaconPeriod)
		return
	}
	if p.pendingAnn.Pending() {
		// About to volunteer: stay awake one more window.
		p.cycleTimer.Reset(p.opt.AwakeFrac * p.opt.BeaconPeriod)
		return
	}
	sleepFor := (1 - p.opt.AwakeFrac) * p.opt.BeaconPeriod
	p.Stats.SleepsEntered++
	wake := sim.NewTimer(p.host.Engine(), func() { p.host.WakeByTimer() })
	wake.Reset(sleepFor)
	p.host.Sleep()
}

// --- topology and the coordinator rule ------------------------------------------

func (p *Protocol) helloTick() {
	if p.stopped || p.host.Asleep() {
		return
	}
	p.sendHello()
}

func (p *Protocol) sendHello() {
	ids := p.freshNeighborIDs()
	p.Stats.HellosSent++
	p.host.SendFrame("span-hello", hostid.Broadcast,
		helloBytes(len(ids))+radio.MACHeaderBytes, &Hello{
			ID:          p.host.ID(),
			Coordinator: p.coordinator,
			Rbrc:        p.host.Battery().Rbrc(p.host.Now()),
			Neighbors:   ids,
		})
}

func (p *Protocol) freshNeighborIDs() []hostid.ID {
	now := p.host.Now()
	ids := make([]hostid.ID, 0, len(p.neighbors))
	for id, n := range p.neighbors { //simlint:ordered output is sorted below

		if now-n.seen <= p.opt.NeighborTTL {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	return ids
}

func (p *Protocol) handleHello(m *Hello) {
	n, ok := p.neighbors[m.ID]
	if !ok {
		n = &neighborInfo{neighbors: make(map[hostid.ID]bool)}
		p.neighbors[m.ID] = n
	}
	n.coordinator = m.Coordinator
	n.seen = p.host.Now()
	clear(n.neighbors)
	for _, id := range m.Neighbors {
		n.neighbors[id] = true
	}
	// The sender is provably awake: flush anything held for its beacon
	// window.
	if p.buffer.Pending(m.ID) > 0 {
		p.flushTo(m.ID)
	}
}

// checkTick applies the coordinator eligibility and withdrawal rules.
func (p *Protocol) checkTick() {
	if p.stopped || p.host.Asleep() {
		return
	}
	p.pruneNeighbors()
	if p.coordinator {
		p.maybeWithdraw()
		return
	}
	p.maybeVolunteer()
}

func (p *Protocol) pruneNeighbors() {
	now := p.host.Now()
	for id, n := range p.neighbors { //simlint:ordered deletion-only sweep
		if now-n.seen > p.opt.NeighborTTL {
			delete(p.neighbors, id)
		}
	}
}

// uncoveredPair reports whether some pair of this host's neighbors cannot
// reach each other directly or through a coordinator other than `skip`
// (pass hostid.None to exclude nobody). This is Span's eligibility
// condition, restricted to one intermediate coordinator.
func (p *Protocol) uncoveredPair(skip hostid.ID) bool {
	ids := p.freshNeighborIDs()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			u, v := p.neighbors[ids[i]], p.neighbors[ids[j]]
			if u.neighbors[ids[j]] || v.neighbors[ids[i]] {
				continue // direct link
			}
			if p.coveredByCoordinator(ids[i], ids[j], skip) {
				continue
			}
			return true
		}
	}
	return false
}

// coveredByCoordinator reports whether some coordinator (≠ skip) is a
// mutual neighbor of a and b.
func (p *Protocol) coveredByCoordinator(a, b, skip hostid.ID) bool {
	//simlint:ordered existential scan: any witness gives the same answer
	for cid, c := range p.neighbors {
		if cid == skip || !c.coordinator {
			continue
		}
		if now := p.host.Now(); now-c.seen > p.opt.NeighborTTL {
			continue
		}
		if c.neighbors[a] && c.neighbors[b] {
			return true
		}
	}
	return false
}

// maybeVolunteer schedules a coordinator announcement when the
// eligibility rule holds, after Span's randomized backoff (favouring
// high-energy hosts so they win the race).
func (p *Protocol) maybeVolunteer() {
	if p.pendingAnn.Pending() {
		return
	}
	if !p.uncoveredPair(hostid.None) {
		return
	}
	rbrc := p.host.Battery().Rbrc(p.host.Now())
	backoff := p.host.RNG().Uniform(sim.StreamSpanBackoff, 0, 1) * (1.5 - rbrc) * p.opt.CheckPeriod
	p.pendingAnn = p.host.Engine().Schedule(backoff, func() {
		p.pendingAnn = sim.Handle{}
		if p.stopped || p.coordinator || p.host.Asleep() {
			return
		}
		// Re-check: someone may have volunteered during the backoff.
		if !p.uncoveredPair(hostid.None) {
			return
		}
		p.coordinator = true
		p.coordSince = p.host.Now()
		p.withdrawSince = 0
		p.Stats.CoordAnnounces++
		p.sendHello()
	})
}

// maybeWithdraw steps down when the backbone covers every neighbor pair
// without us, after a grace period.
func (p *Protocol) maybeWithdraw() {
	if p.uncoveredPair(p.host.ID()) {
		p.withdrawSince = 0
		return
	}
	now := p.host.Now()
	if p.withdrawSince == 0 {
		p.withdrawSince = now
		return
	}
	if now-p.withdrawSince < p.opt.WithdrawGrace {
		return
	}
	p.coordinator = false
	p.withdrawSince = 0
	p.Stats.Withdrawals++
	p.sendHello()
	// The duty cycle resumes at its next firing (cycleSleep re-arms
	// while we were coordinator).
}
