// Package geom provides the planar geometry used throughout the simulator:
// points, vectors, axis-aligned rectangles, and distance computations.
// The simulation plane uses meters on both axes with the origin at the
// south-west corner, matching the paper's 1000×1000 m region.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in meters.
type Point struct {
	X, Y float64
}

// String formats the point with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by the vector v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance, avoiding the square root
// for comparisons.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Vector is a displacement in the plane, in meters.
type Vector struct {
	DX, DY float64
}

// Len returns the vector's Euclidean length.
func (v Vector) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v multiplied by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.DX * s, v.DY * s} }

// Unit returns the unit vector in v's direction. The zero vector is
// returned unchanged.
func (v Vector) Unit() Vector {
	l := v.Len()
	if l == 0 { //simlint:exact only an exactly-zero length cannot be normalized
		return v
	}
	return Vector{v.DX / l, v.DY / l}
}

// Rect is an axis-aligned rectangle. Min is the south-west corner and Max
// the north-east corner; a well-formed rectangle has Min.X ≤ Max.X and
// Min.Y ≤ Max.Y. Rectangles are closed: boundary points are contained.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points, in either
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// String formats the rectangle as [min, max].
func (r Rect) String() string { return fmt.Sprintf("[%v, %v]", r.Min, r.Max) }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Expand returns r grown by m meters on every side.
func (r Rect) Expand(m float64) Rect {
	return Rect{
		Min: Point{r.Min.X - m, r.Min.Y - m},
		Max: Point{r.Max.X + m, r.Max.Y + m},
	}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Clamp returns the point of r closest to p; if p is inside r, p itself.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}
