package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0, 0}, Point{0, 7}, 7},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEqual(got, c.want) {
			t.Errorf("Dist(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := c.p.Dist2(c.q); !almostEqual(got, c.want*c.want) {
			t.Errorf("Dist2(%v, %v) = %v, want %v", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetricProperty(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		p := Point{float64(ax), float64(ay)}
		q := Point{float64(bx), float64(by)}
		return almostEqual(p.Dist(q), q.Dist(p)) && p.Dist(q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Len(); !almostEqual(got, 5) {
		t.Errorf("Len = %v, want 5", got)
	}
	if got := v.Scale(2); got != (Vector{6, 8}) {
		t.Errorf("Scale(2) = %v", got)
	}
	u := v.Unit()
	if !almostEqual(u.Len(), 1) {
		t.Errorf("Unit().Len() = %v, want 1", u.Len())
	}
	if z := (Vector{}).Unit(); z != (Vector{}) {
		t.Errorf("zero vector Unit = %v, want zero", z)
	}
}

func TestPointAddSub(t *testing.T) {
	p := Point{1, 2}
	q := p.Add(Vector{3, -1})
	if q != (Point{4, 1}) {
		t.Fatalf("Add = %v", q)
	}
	if d := q.Sub(p); d != (Vector{3, -1}) {
		t.Fatalf("Sub = %v", d)
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(Point{5, 1}, Point{2, 7})
	if r.Min != (Point{2, 1}) || r.Max != (Point{5, 7}) {
		t.Fatalf("NewRect = %v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // boundary inclusive
		{Point{10, 10}, true}, // boundary inclusive
		{Point{10.001, 5}, false},
		{Point{-0.001, 5}, false},
		{Point{5, 11}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectDimensionsAndCenter(t *testing.T) {
	r := NewRect(Point{2, 3}, Point{8, 11})
	if r.Width() != 6 || r.Height() != 8 {
		t.Fatalf("Width,Height = %v,%v", r.Width(), r.Height())
	}
	if r.Center() != (Point{5, 7}) {
		t.Fatalf("Center = %v", r.Center())
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(Point{2, 2}, Point{4, 4}).Expand(1)
	if r.Min != (Point{1, 1}) || r.Max != (Point{5, 5}) {
		t.Fatalf("Expand = %v", r)
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{5, -1}, Point{6, 1})
	u := a.Union(b)
	if u.Min != (Point{0, -1}) || u.Max != (Point{6, 2}) {
		t.Fatalf("Union = %v", u)
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	cases := []struct{ in, want Point }{
		{Point{5, 5}, Point{5, 5}},
		{Point{-3, 5}, Point{0, 5}},
		{Point{12, 15}, Point{10, 10}},
		{Point{4, -2}, Point{4, 0}},
	}
	for _, c := range cases {
		if got := r.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampedPointContainedProperty(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1000, 1000})
	f := func(x, y int32) bool {
		return r.Contains(r.Clamp(Point{float64(x), float64(y)}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnionContainsBothProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int16) bool {
		a := NewRect(Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)})
		b := NewRect(Point{float64(cx), float64(cy)}, Point{float64(dx), float64(dy)})
		u := a.Union(b)
		return u.Contains(a.Min) && u.Contains(a.Max) && u.Contains(b.Min) && u.Contains(b.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	if s := (Point{1, 2}).String(); s != "(1.00, 2.00)" {
		t.Errorf("Point.String() = %q", s)
	}
	if s := NewRect(Point{0, 0}, Point{1, 1}).String(); s != "[(0.00, 0.00), (1.00, 1.00)]" {
		t.Errorf("Rect.String() = %q", s)
	}
}
