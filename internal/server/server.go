// Package server exposes the simulator as an HTTP/JSON service: POST a
// scenario config, get runner.Results back — from the persistent
// content-addressed store when the scenario has ever been run before
// (by this daemon or by a CLI sharing the store), from a fresh
// simulation otherwise.
//
// The request path is built for heavy concurrent traffic over a
// mostly-repeated workload:
//
//   - store first: a hit is answered inline with the stored canonical
//     bytes, byte-identical to the run that produced them (determinism,
//     DESIGN.md §8, makes the cache exact rather than approximate);
//   - singleflight: N concurrent requests for the same content key
//     admit ONE job and all wait on it — the simulation runs once;
//   - bounded admission: at most QueueDepth distinct jobs may be in
//     flight, at most PerClient of them owned by one client token;
//     beyond either limit the request gets 429 with Retry-After, so
//     overload degrades into fast, explicit backpressure instead of an
//     unbounded goroutine pile;
//   - blocking or async: callers either wait (bounded by ?wait=) for
//     the result, or take a 202 + poll URL immediately and fetch the
//     result from GET /v1/result/{key} when it lands.
//
// Endpoints: POST /v1/run, GET /v1/result/{key}, GET /v1/jobs,
// POST /v1/generate, GET /healthz, GET /metrics.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"ecgrid/internal/batch"
	"ecgrid/internal/runner"
	"ecgrid/internal/scenario"
	"ecgrid/internal/store"
)

// RunFunc executes one simulation. The default implementation routes
// through a store-backed batch.Executor; tests substitute their own.
type RunFunc func(ctx context.Context, tag string, cfg scenario.Config) (*runner.Results, error)

// Config assembles a Server.
type Config struct {
	// Store is the persistent result store. Required.
	Store *store.Store
	// Workers caps concurrently executing simulations; <= 0 uses
	// GOMAXPROCS (via batch.Options).
	Workers int
	// QueueDepth caps distinct in-flight jobs (queued + running);
	// <= 0 uses 64. Admission beyond it answers 429.
	QueueDepth int
	// PerClient caps in-flight jobs owned by one client token, so one
	// client cannot occupy the whole queue; <= 0 uses
	// max(1, QueueDepth/4).
	PerClient int
	// MaxHosts rejects configs whose total host count exceeds it
	// (cmd/simd's -max-n guardrail); <= 0 disables the check.
	MaxHosts int
	// Shards, when >= 2, runs incoming configs that do not pick a shard
	// count themselves (Shards == 0) on the spatially-sharded parallel
	// engine with this many strips. Results are byte-identical either
	// way (DESIGN.md §15), so this is purely an execution default; a
	// config that sets its own Shards keeps it, and configs whose cell
	// grid is too narrow for the default fall back to the serial engine.
	// The overlay happens before key computation, so a sharded server's
	// cache keys are self-consistent (and /v1/generate previews them).
	// Negative values are rejected by New.
	Shards int
	// NoRxCache runs incoming configs with the receiver-plane cache
	// disabled (radio.Config.NoRxCache) unless the config already asked
	// for it. Results are byte-identical either way, so like Shards this
	// is an execution default — but it is part of the batch key, so a
	// reference server's cache entries never alias a cached server's.
	// Exists for the CI soak diff (cmd/simd -norxcache) and debugging.
	NoRxCache bool
	// RunTimeout bounds one job from admission to completion; <= 0
	// leaves jobs unbounded. A simulation cannot be preempted
	// mid-event-loop, so the timeout takes effect at the executor's
	// wait points (see batch.Executor.RunCtx).
	RunTimeout time.Duration
	// MaxWait caps how long a blocking request may hold its connection
	// before being converted to 202 + poll URL; <= 0 uses 120 s.
	MaxWait time.Duration
	// Run overrides the execution function (tests). nil uses the
	// store-backed batch.Executor.
	Run RunFunc
}

// job is one admitted, in-flight simulation: the singleflight unit.
type job struct {
	key      string
	tag      string
	client   string
	cfg      scenario.Config
	enqueued time.Time

	// done closes after bytes/err are set.
	done  chan struct{}
	bytes []byte
	err   error
}

// Server implements the HTTP service. Create with New, serve Handler().
type Server struct {
	cfg      Config
	store    *store.Store
	run      RunFunc
	sem      chan struct{} // worker slots
	baseCtx  context.Context
	cancel   context.CancelFunc
	mux      *http.ServeMux
	met      *metricsSet
	maxWait  time.Duration
	queueCap int
	perCap   int

	mu        sync.Mutex
	jobs      map[string]*job
	perClient map[string]int
}

// New builds a server over the given store.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("server: Config.Shards %d: shard count cannot be negative", cfg.Shards)
	}
	queueCap := cfg.QueueDepth
	if queueCap <= 0 {
		queueCap = 64
	}
	perCap := cfg.PerClient
	if perCap <= 0 {
		perCap = queueCap / 4
		if perCap < 1 {
			perCap = 1
		}
	}
	maxWait := cfg.MaxWait
	if maxWait <= 0 {
		maxWait = 120 * time.Second
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	workers := batch.Options{Workers: cfg.Workers}.WorkerCount()
	s := &Server{
		cfg:       cfg,
		store:     cfg.Store,
		sem:       make(chan struct{}, workers),
		baseCtx:   baseCtx,
		cancel:    cancel,
		maxWait:   maxWait,
		queueCap:  queueCap,
		perCap:    perCap,
		jobs:      make(map[string]*job),
		perClient: make(map[string]int),
	}
	s.run = cfg.Run
	if s.run == nil {
		exec := batch.NewExecutor(baseCtx, batch.Options{Workers: cfg.Workers, Store: cfg.Store})
		s.run = exec.RunCtx
	}
	s.met = newMetricsSet(
		func() int {
			s.mu.Lock()
			defer s.mu.Unlock()
			return len(s.jobs)
		},
		func() int {
			n, err := cfg.Store.Len()
			if err != nil {
				return -1
			}
			return n
		},
	)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.timed("run", s.handleRun))
	mux.HandleFunc("POST /v1/generate", s.timed("generate", s.handleGenerate))
	mux.HandleFunc("GET /v1/result/{key}", s.timed("result", s.handleResult))
	mux.HandleFunc("GET /v1/jobs", s.timed("jobs", s.handleJobs))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close cancels the server's base context, failing jobs still waiting
// for worker slots. Call it after draining the HTTP listener
// (http.Server.Shutdown), not before: in-flight simulations cannot be
// preempted, but their waiters should be allowed to collect results.
func (s *Server) Close() { s.cancel() }

// timed wraps a handler with its endpoint latency histogram.
func (s *Server) timed(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.met.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		hist.Observe(time.Since(t0))
	}
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	b = append(b, '\n')
	w.Write(b) //simlint:err response write after headers; a gone client leaves nothing to do
}

// fail sends {"error": …} with the given status.
func fail(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// clientToken identifies the requester for per-client fairness: the
// X-Client header, else the ?client query parameter, else the remote
// host. Tokens are advisory (fairness, not auth).
func clientToken(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if c := r.URL.Query().Get("client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// decodeConfig builds the scenario from the request: an optional
// ?base=<protocol> starting point (scenario.Default) with the JSON body
// layered on top. Unknown fields are rejected — a typoed knob must be a
// 400, not a silently different simulation.
func decodeConfig(r *http.Request) (scenario.Config, error) {
	var cfg scenario.Config
	if base := r.URL.Query().Get("base"); base != "" {
		p, err := scenario.ParseProtocol(base)
		if err != nil {
			return cfg, err
		}
		cfg = scenario.Default(p)
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20+1))
	if err != nil {
		return cfg, fmt.Errorf("read body: %w", err)
	}
	if len(body) > 1<<20 {
		return cfg, errors.New("config body exceeds 1 MiB")
	}
	if len(bytes.TrimSpace(body)) == 0 {
		if r.URL.Query().Get("base") == "" {
			return cfg, errors.New("empty body and no ?base protocol")
		}
		return cfg, nil
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("parse config: %w", err)
	}
	return cfg, nil
}

// totalHosts is the population the -max-n guardrail meters: simulation
// cost scales with every host, endpoint or not.
func totalHosts(cfg scenario.Config) int {
	n := cfg.Hosts
	if cfg.Protocol == scenario.GAF {
		n += cfg.EndpointHosts
	}
	return n
}

// parseWait reads ?wait=<duration>: how long the request may block for
// a fresh result before converting to 202 + poll URL. Absent uses the
// server's MaxWait; "0" asks for pure async; anything above MaxWait is
// clamped.
func (s *Server) parseWait(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return s.maxWait, nil
	}
	if raw == "0" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad wait %q: %w", raw, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative wait %q", raw)
	}
	if d > s.maxWait {
		d = s.maxWait
	}
	return d, nil
}

// applyShards overlays the server's default shard count onto a config
// that did not choose one. The overlay must not turn a runnable config
// into a 400: when the default does not fit (the strip count exceeds
// the config's cell grid) the config silently keeps the serial engine,
// which produces the same results anyway. Configs invalid for other
// reasons are left alone so the handler's Validate reports the real
// error.
func (s *Server) applyShards(cfg *scenario.Config) {
	if s.cfg.Shards < 2 || cfg.Shards != 0 {
		return
	}
	cfg.Shards = s.cfg.Shards
	if err := cfg.Validate(); err != nil {
		cfg.Shards = 0
	}
}

// applyRxCache overlays the server's NoRxCache execution default onto a
// config that did not disable the cache itself. Unlike applyShards
// there is no fit check to fall back from: the flag is valid for every
// config.
func (s *Server) applyRxCache(cfg *scenario.Config) {
	if s.cfg.NoRxCache {
		cfg.Radio.NoRxCache = true
	}
}

// handleRun is POST /v1/run.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	cfg, err := decodeConfig(r)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyShards(&cfg)
	s.applyRxCache(&cfg)
	// scenario.Validate is the API's 4xx surface: every config mistake a
	// CLI would exit(2) on becomes a 400 with the same message.
	if err := cfg.Validate(); err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.MaxHosts > 0 && totalHosts(cfg) > s.cfg.MaxHosts {
		fail(w, http.StatusBadRequest,
			"config asks for %d hosts; this server caps runs at %d (-max-n)",
			totalHosts(cfg), s.cfg.MaxHosts)
		return
	}
	wait, err := s.parseWait(r)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}

	key := batch.Key(cfg)
	if b, ok, err := s.store.GetBytes(key); err == nil && ok {
		s.met.hits.Add(1)
		s.writeResult(w, key, "hit", b)
		return
	}

	j, joined, reason := s.admit(key, clientToken(r), cfg)
	if j == nil {
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusTooManyRequests, "%s", reason)
		return
	}
	cache := "miss"
	if joined {
		cache = "join"
		s.met.coalesced.Add(1)
	} else {
		s.met.misses.Add(1)
	}

	if wait == 0 {
		s.writeAccepted(w, key)
		return
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-j.done:
		if j.err != nil {
			status := http.StatusInternalServerError
			if errors.Is(j.err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			fail(w, status, "run %s: %v", key, j.err)
			return
		}
		s.writeResult(w, key, cache, j.bytes)
	case <-timer.C:
		// Still running; hand out the poll URL. The job keeps going.
		s.writeAccepted(w, key)
	case <-r.Context().Done():
		// Caller hung up; nothing to write. The job keeps going and its
		// result lands in the store for the retry.
	}
}

// handleGenerate is POST /v1/generate: validate a scenario — typically
// one carrying a generator spec — and return its canonical config plus
// the batch key, without running anything. Clients use it to preview
// what a spec expands to and which store entry a run would land under;
// the key here always equals the key a later POST /v1/run computes.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	cfg, err := decodeConfig(r)
	if err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.applyShards(&cfg)
	s.applyRxCache(&cfg)
	if err := cfg.Validate(); err != nil {
		fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":    batch.Key(cfg),
		"config": cfg,
	})
}

// admit joins an in-flight job for key, or creates one within the queue
// and per-client bounds. nil means rejected, with the reason.
func (s *Server) admit(key, client string, cfg scenario.Config) (j *job, joined bool, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[key]; ok {
		// Coalesced requests consume no queue slot: they add waiters,
		// not work.
		return j, true, ""
	}
	if len(s.jobs) >= s.queueCap {
		return nil, false, fmt.Sprintf("queue full (%d jobs in flight)", len(s.jobs))
	}
	if s.perClient[client] >= s.perCap {
		return nil, false, fmt.Sprintf("client %q already owns %d in-flight jobs (limit %d)",
			client, s.perClient[client], s.perCap)
	}
	j = &job{
		key:      key,
		tag:      cfg.String(),
		client:   client,
		cfg:      cfg,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	s.jobs[key] = j
	s.perClient[client]++
	go s.runJob(j)
	return j, false, ""
}

// runJob owns one admitted job: acquire a worker slot, execute, store,
// publish, release.
func (s *Server) runJob(j *job) {
	defer func() {
		s.mu.Lock()
		delete(s.jobs, j.key)
		if s.perClient[j.client]--; s.perClient[j.client] <= 0 {
			delete(s.perClient, j.client)
		}
		s.mu.Unlock()
		if j.err != nil {
			s.met.failed.Add(1)
		} else {
			s.met.executed.Add(1)
		}
		close(j.done)
	}()

	ctx := s.baseCtx
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RunTimeout)
		defer cancel()
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		j.err = ctx.Err()
		return
	}
	defer func() { <-s.sem }()
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	res, err := s.run(ctx, j.tag, j.cfg)
	if err != nil {
		j.err = err
		return
	}
	// Sharded-engine telemetry rides along on fresh runs only: results
	// rehydrated from the store carry no Shard stats (the field is
	// execution metadata, not part of the canonical result bytes).
	if res.Shard != nil {
		s.met.observeShard(res.Shard)
	}
	// The default RunFunc (store-backed executor) has already stored the
	// result; read back the canonical bytes so hit and miss responses
	// are byte-identical. A substituted RunFunc may not have stored —
	// put on its behalf.
	b, ok, err := s.store.GetBytes(j.key)
	if err == nil && !ok {
		if err = s.store.Put(j.key, res); err == nil {
			b, ok, err = s.store.GetBytes(j.key)
		}
	}
	if err != nil {
		j.err = err
		return
	}
	if !ok {
		j.err = fmt.Errorf("result for %s vanished from the store", j.key)
		return
	}
	j.bytes = b
}

// writeResult sends stored canonical result bytes.
func (s *Server) writeResult(w http.ResponseWriter, key, cache string, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.Header().Set("X-Content-Key", key)
	w.WriteHeader(http.StatusOK)
	w.Write(b) //simlint:err response write after headers; a gone client leaves nothing to do
}

// writeAccepted sends 202 with the poll URL.
func (s *Server) writeAccepted(w http.ResponseWriter, key string) {
	w.Header().Set("Location", "/v1/result/"+key)
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusAccepted, map[string]string{
		"key":    key,
		"status": "running",
		"poll":   "/v1/result/" + key,
	})
}

// handleResult is GET /v1/result/{key}.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		fail(w, http.StatusBadRequest, "malformed content key %q", key)
		return
	}
	if b, ok, err := s.store.GetBytes(key); err != nil {
		fail(w, http.StatusInternalServerError, "%v", err)
		return
	} else if ok {
		s.met.hits.Add(1)
		s.writeResult(w, key, "hit", b)
		return
	}
	s.mu.Lock()
	_, inflight := s.jobs[key]
	s.mu.Unlock()
	if inflight {
		s.writeAccepted(w, key)
		return
	}
	fail(w, http.StatusNotFound, "no result for key %s (POST /v1/run to compute it)", key)
}

// jobInfo is one row of GET /v1/jobs.
type jobInfo struct {
	Key        string  `json:"key"`
	Tag        string  `json:"tag"`
	Client     string  `json:"client"`
	AgeSeconds float64 `json:"age_seconds"`
}

// handleJobs is GET /v1/jobs: a snapshot of in-flight jobs, oldest
// first.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	s.mu.Lock()
	infos := make([]jobInfo, 0, len(s.jobs))
	for _, j := range s.jobs {
		infos = append(infos, jobInfo{
			Key:        j.key,
			Tag:        j.tag,
			Client:     j.client,
			AgeSeconds: now.Sub(j.enqueued).Seconds(),
		})
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, k int) bool {
		if infos[i].AgeSeconds != infos[k].AgeSeconds {
			return infos[i].AgeSeconds > infos[k].AgeSeconds
		}
		return infos[i].Key < infos[k].Key
	})
	writeJSON(w, http.StatusOK, map[string]any{"count": len(infos), "jobs": infos})
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n") //simlint:err health probe response; a gone client leaves nothing to do
}

// handleMetrics is GET /metrics: the expvar tree as one JSON object.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s.met.top.String()) //simlint:err metrics response; a gone client leaves nothing to do
	io.WriteString(w, "\n")               //simlint:err metrics response; a gone client leaves nothing to do
}
