package server

import (
	"encoding/json"
	"expvar"
	"sync"
	"time"

	"ecgrid/internal/shard"
)

// histBounds are the latency histogram bucket upper bounds. Log-spaced:
// cache hits land in the low milliseconds, small simulations in the
// hundreds, dense ones in the tens of seconds.
var histBounds = []time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
	60 * time.Second,
	120 * time.Second,
}

// latencyHist is a fixed-bucket latency histogram. It implements
// expvar.Var: String renders the counts plus estimated quantiles as
// JSON, so a histogram nests directly inside an expvar.Map.
type latencyHist struct {
	mu     sync.Mutex
	counts []uint64 // len(histBounds)+1; last bucket is +inf
	sum    time.Duration
	n      uint64
}

func newLatencyHist() *latencyHist {
	return &latencyHist{counts: make([]uint64, len(histBounds)+1)}
}

// Observe records one request duration.
func (h *latencyHist) Observe(d time.Duration) {
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.n++
	h.sum += d
	h.mu.Unlock()
}

// quantileLocked returns an upper-bound estimate of the q-quantile: the
// bound of the bucket where the cumulative count crosses q·n. Callers
// hold h.mu.
func (h *latencyHist) quantileLocked(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(histBounds) {
				return histBounds[i]
			}
			return -1 // beyond the last bound; reported as "inf"
		}
	}
	return -1
}

// histBucket is one rendered histogram bucket.
type histBucket struct {
	LE string `json:"le"` // bucket upper bound, or "inf"
	N  uint64 `json:"n"`
}

// String implements expvar.Var with a JSON object:
// count, mean/percentile estimates in milliseconds, non-empty buckets.
func (h *latencyHist) String() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := struct {
		Count   uint64       `json:"count"`
		MeanMS  float64      `json:"mean_ms"`
		P50MS   any          `json:"p50_ms"`
		P95MS   any          `json:"p95_ms"`
		P99MS   any          `json:"p99_ms"`
		Buckets []histBucket `json:"buckets"`
	}{Count: h.n}
	if h.n > 0 {
		out.MeanMS = float64(h.sum.Microseconds()) / float64(h.n) / 1000
	}
	out.P50MS = quantileMS(h.quantileLocked(0.50))
	out.P95MS = quantileMS(h.quantileLocked(0.95))
	out.P99MS = quantileMS(h.quantileLocked(0.99))
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		le := "inf"
		if i < len(histBounds) {
			le = histBounds[i].String()
		}
		out.Buckets = append(out.Buckets, histBucket{LE: le, N: c})
	}
	b, err := json.Marshal(out)
	if err != nil {
		return `{"error":"histogram marshal"}`
	}
	return string(b)
}

// quantileMS renders a quantile estimate for JSON: milliseconds, or
// "inf" past the last bucket bound.
func quantileMS(d time.Duration) any {
	if d < 0 {
		return "inf"
	}
	return float64(d.Microseconds()) / 1000
}

// metricsSet is one server's instrumentation. Counters are expvar types
// assembled into a private expvar.Map (not published to the global
// expvar registry, which would panic on the second server in one
// process); /metrics serves the map's JSON rendering.
type metricsSet struct {
	hits      expvar.Int // /v1/run answered straight from the store
	misses    expvar.Int // /v1/run that admitted a new job
	coalesced expvar.Int // /v1/run that joined an in-flight job
	rejected  expvar.Int // 429s (queue full or per-client limit)
	executed  expvar.Int // jobs completed successfully
	failed    expvar.Int // jobs completed with an error
	running   expvar.Int // jobs holding a worker slot right now

	shardBoundary expvar.Int // cross-shard ownership handoffs across sharded runs
	shardStallNS  expvar.Int // wall-clock ns shard coordinators waited on stragglers

	start     time.Time
	endpoints map[string]*latencyHist
	top       *expvar.Map
}

// newMetricsSet builds the instrumentation tree. queueDepth and
// storeLen are sampled at render time.
func newMetricsSet(queueDepth func() int, storeLen func() int) *metricsSet {
	m := &metricsSet{
		start:     time.Now(),
		endpoints: make(map[string]*latencyHist),
	}
	lat := new(expvar.Map).Init()
	for _, name := range []string{"run", "result", "jobs", "generate"} {
		h := newLatencyHist()
		m.endpoints[name] = h
		lat.Set(name, h)
	}
	top := new(expvar.Map).Init()
	top.Set("hits", &m.hits)
	top.Set("misses", &m.misses)
	top.Set("coalesced", &m.coalesced)
	top.Set("rejected", &m.rejected)
	top.Set("executed", &m.executed)
	top.Set("failed", &m.failed)
	top.Set("in_flight", &m.running)
	top.Set("shard_boundary_events", &m.shardBoundary)
	top.Set("shard_stall_seconds", expvar.Func(func() any {
		return float64(m.shardStallNS.Value()) / 1e9
	}))
	top.Set("queue_depth", expvar.Func(func() any { return queueDepth() }))
	top.Set("store_entries", expvar.Func(func() any { return storeLen() }))
	top.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	top.Set("latency", lat)
	m.top = top
	return m
}

// observeShard folds one completed sharded run's engine telemetry into
// the counters: how many hosts crossed a strip boundary (ownership
// handoffs at window edges) and how long the coordinator's commit phase
// stalled waiting for the slowest worker. Both grow monotonically
// across runs; a stall share near the run's wall-clock means the
// server's shard default oversubscribes its worker budget.
func (m *metricsSet) observeShard(st *shard.Stats) {
	m.shardBoundary.Add(int64(st.BoundaryEvents))
	m.shardStallNS.Add(st.StallNS)
}

// endpoint returns the named latency histogram (panics on a name not
// registered in newMetricsSet — a programming error, caught by any
// test that touches the endpoint).
func (m *metricsSet) endpoint(name string) *latencyHist {
	h, ok := m.endpoints[name]
	if !ok {
		panic("server: unknown metrics endpoint " + name)
	}
	return h
}
