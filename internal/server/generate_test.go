package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ecgrid/internal/batch"
	"ecgrid/internal/scenario"
	"ecgrid/internal/scengen"
)

func postGenerate(t *testing.T, ts *httptest.Server, cfg scenario.Config) *http.Response {
	t.Helper()
	body, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestGenerateReturnsRunKey: /v1/generate previews exactly the identity
// a run would have — its key must equal batch.Key of the posted config,
// and the echoed config must round-trip to the same key.
func TestGenerateReturnsRunKey(t *testing.T) {
	ts, _, _ := newTestServer(t, nil)
	cfg := smallCfg(3)
	cfg.Gen = &scengen.Spec{
		Deployment: &scengen.Deployment{Kind: scengen.DeployClustered, Clusters: 2, StdDevM: 80},
		Mobility:   &scengen.Mobility{Kind: scengen.MobilityManhattan, BlockM: 100},
	}

	resp := postGenerate(t, ts, cfg)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d: %s", resp.StatusCode, readAll(t, resp))
	}
	var out struct {
		Key    string          `json:"key"`
		Config scenario.Config `json:"config"`
	}
	if err := json.Unmarshal(readAll(t, resp), &out); err != nil {
		t.Fatal(err)
	}
	if want := batch.Key(cfg); out.Key != want {
		t.Fatalf("generate key %s, want %s", out.Key, want)
	}
	if batch.Key(out.Config) != out.Key {
		t.Fatal("echoed config does not hash back to the returned key")
	}
	if out.Config.Gen == nil || out.Config.Gen.Mobility == nil {
		t.Fatal("generator spec lost in the echo")
	}
}

// TestGenerateRejectsInvalid: validation failures surface as 400s, same
// as /v1/run, without touching the store or the job table.
func TestGenerateRejectsInvalid(t *testing.T) {
	ts, srv, _ := newTestServer(t, nil)
	cfg := smallCfg(3)
	cfg.Gen = &scengen.Spec{Mobility: &scengen.Mobility{Kind: "teleport"}}
	resp := postGenerate(t, ts, cfg)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec got status %d", resp.StatusCode)
	}
	readAll(t, resp)
	srv.mu.Lock()
	jobs := len(srv.jobs)
	srv.mu.Unlock()
	if jobs != 0 {
		t.Fatalf("generate enqueued %d jobs", jobs)
	}
}
